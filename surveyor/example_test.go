package surveyor_test

import (
	"fmt"
	"sort"

	"repro/surveyor"
)

// The basic flow: register entities, mine raw text, read back opinions.
func ExampleSystem_Mine() {
	sys := surveyor.NewSystem()
	sys.AddEntity("kitten", "animal", false, nil)
	sys.AddEntity("scorpion", "animal", false, nil)

	res := sys.Mine([]surveyor.Document{
		{Text: "Kittens are cute. Everyone agrees that kittens are cute animals."},
		{Text: "I don't think that scorpions are cute. Scorpions are never cute."},
	}, surveyor.Config{Rho: 1})

	for _, name := range []string{"kitten", "scorpion"} {
		op, _ := res.Opinion(name, "cute")
		fmt.Printf("%s cute: %s (+%d/-%d)\n", name, op.Opinion, op.Pos, op.Neg)
	}
	// Output:
	// kitten cute: + (+2/-0)
	// scorpion cute: - (+0/-2)
}

// The model works on bare statement counts — no text required — and
// classifies even the zero-count tuple.
func ExampleFitModel() {
	model := surveyor.FitModel([]surveyor.Counts{
		{Pos: 40, Neg: 1}, {Pos: 52, Neg: 0}, {Pos: 45, Neg: 2}, // applies
		{Pos: 2, Neg: 5}, {Pos: 0, Neg: 6}, {Pos: 1, Neg: 4}, // does not
		{Pos: 0, Neg: 0}, // never mentioned
	})
	fmt.Println("never mentioned:", model.Decide(surveyor.Counts{}))
	fmt.Println("heavily asserted:", model.Decide(surveyor.Counts{Pos: 48, Neg: 1}))
	// Output:
	// never mentioned: -
	// heavily asserted: +
}

// Subjective queries are answered from the mined opinion store.
func ExampleResult_Query() {
	sys := surveyor.NewSystem()
	for _, a := range []string{"kitten", "puppy", "wasp"} {
		sys.AddEntity(a, "animal", false, nil)
	}
	res := sys.Mine([]surveyor.Document{
		{Text: "Kittens are cute. Puppies are cute. Wasps are not cute."},
		{Text: "The kitten is really cute. I think that puppies are cute."},
	}, surveyor.Config{Rho: 1})

	answers, _ := res.Query("cute animals")
	names := make([]string, len(answers))
	for i, a := range answers {
		names[i] = a.Entity
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output:
	// [kitten puppy]
}
