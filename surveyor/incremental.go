package surveyor

import (
	"context"
	"time"

	"repro/internal/corpus"
	"repro/internal/incremental"
)

// IncrementalMiner mines a corpus epoch by epoch: each Ingest folds a new
// document batch into the cumulative evidence, re-fits only the
// (type, property) groups the batch touched, and publishes a refreshed
// Result. The published Result after any sequence of epochs is
// bit-identical to one Mine call over the concatenation of those epochs —
// the differential epoch harness in internal/testkit proves it for
// arbitrary splits, worker counts, and quarantined documents.
type IncrementalMiner struct {
	sys   *System
	miner *incremental.Miner
}

// EpochStats reports one ingested epoch.
type EpochStats struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// Documents counts documents committed this epoch; Quarantined counts
	// documents removed by the panic boundary.
	Documents   int
	Quarantined int
	// Statements counts evidence statements the epoch added.
	Statements int64
	// DirtyGroups counts (type, property) groups the epoch's evidence
	// touched; RefitGroups of them were modelled (at or above ρ) and
	// re-fitted, over RefitTuples entity tuples. ModelledGroups is the
	// total after the splice — RefitGroups/ModelledGroups is the fraction
	// of modelling work the epoch actually redid.
	DirtyGroups    int
	RefitGroups    int
	RefitTuples    int64
	ModelledGroups int
	// Duration is wall-clock epoch latency (outside the determinism
	// contract, like Stats timings).
	Duration time.Duration
}

func fromInternalEpoch(st incremental.EpochStats) EpochStats {
	return EpochStats{
		Epoch:          st.Epoch,
		Documents:      st.Documents,
		Quarantined:    st.Quarantined,
		Statements:     st.Statements,
		DirtyGroups:    st.DirtyGroups,
		RefitGroups:    st.RefitGroups,
		RefitTuples:    st.RefitTuples,
		ModelledGroups: st.ModelledGroups,
		Duration:       st.Duration,
	}
}

// MineIncremental starts an always-on incremental mining session over the
// system's knowledge base. The returned miner is ready immediately; its
// Snapshot before any epoch is an empty result.
func (s *System) MineIncremental(cfg Config) *IncrementalMiner {
	s.registerPending()
	return &IncrementalMiner{
		sys:   s,
		miner: incremental.New(s.kb, s.lex, s.pipelineConfig(cfg)),
	}
}

// Epoch ingests one document batch and publishes the refreshed snapshot.
// Epochs are atomic: on error (cancellation mid-epoch) nothing is
// committed and the previously published snapshot stands.
func (m *IncrementalMiner) Epoch(ctx context.Context, docs []Document) (EpochStats, error) {
	internalDocs := make([]corpus.Document, len(docs))
	for i, d := range docs {
		internalDocs[i] = corpus.Document{URL: d.URL, Domain: d.Domain, Text: d.Text}
	}
	st, err := m.miner.Ingest(ctx, internalDocs)
	return fromInternalEpoch(st), err
}

// Snapshot returns the current published mining result — the complete,
// batch-identical result over every document ingested so far. Safe to
// call concurrently with Epoch; it never blocks on an ingest in progress.
func (m *IncrementalMiner) Snapshot() *Result {
	return &Result{sys: m.sys, res: m.miner.Snapshot()}
}

// Epochs returns the number of epochs ingested so far.
func (m *IncrementalMiner) Epochs() int { return m.miner.Epochs() }
