// Multi-process mining: the public face of internal/dist. A coordinator
// splits the corpus into contiguous shards and ships each to a worker —
// a child process re-executing this binary (DistributedOptions.Command),
// or an in-process goroutine worker when no command is configured — then
// merges the returned evidence deltas and models the union once. The
// result is bit-identical to Mine over the same documents.
package surveyor

import (
	"context"
	"io"
	"net"
	"time"

	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/obs"
)

// DistributedOptions configures MineDistributed.
type DistributedOptions struct {
	// Workers is the number of worker processes (shards). Zero or negative
	// means 1.
	Workers int
	// Command launches one worker process: Command[0] is the executable,
	// the rest its arguments. The process must speak the worker protocol
	// on stdin/stdout — cmd/surveyor's -dist-worker mode does — and must
	// reconstruct the same knowledge base and lexicon as the coordinator.
	// Empty runs the workers in-process (goroutines speaking the same
	// protocol over in-memory pipes): the right default when the corpus
	// fits one machine and the win is CPU parallelism.
	Command []string
	// WorkerAttempt, when non-nil alongside Command, appends per-launch
	// arguments telling a worker process which (shard, attempt) it
	// serves. cmd/surveyor uses it to thread -dist-attempt through.
	WorkerAttempt func(shard, attempt int) []string
	// Connect lists socket worker endpoints ("host:port") running
	// ServeSocketWorker (`surveyor -dist-listen`). Non-empty selects the
	// TCP transport and takes precedence over Command: shards are dialed
	// out instead of forked out, with reconnect-and-backoff across the
	// endpoints.
	Connect []string
	// Retries is the total attempt budget per shard (first launch
	// included). Zero or one means no retry — the historical behavior.
	Retries int
	// RetryBackoff is the base delay before a shard's first retry,
	// doubled per further retry with seeded jitter. Zero means 50ms.
	RetryBackoff time.Duration
	// ShardDeadline bounds one shard attempt's wall time; a worker past
	// it is presumed hung and the shard reassigned. Zero disables the
	// deadline.
	ShardDeadline time.Duration
	// Seed derives the backoff jitter (retry and reconnect alike), so a
	// rerun replays the same retry schedule. cmd/surveyor passes its run
	// seed.
	Seed uint64
	// Stderr receives the worker processes' stderr (nil discards it).
	Stderr io.Writer
}

// ShardFailure reports one corpus shard lost to a worker failure after
// its retry budget was exhausted. The mined result excludes exactly that
// shard's documents.
type ShardFailure struct {
	// Shard is the failed shard's index in [0, Workers).
	Shard int
	// Docs is the number of documents the shard covered.
	Docs int
	// Attempts is the number of workers burned on the shard.
	Attempts int
	// Err is the underlying worker failure.
	Err error
}

// MineDistributed mines docs across opts.Workers workers, each extracting
// evidence from one contiguous corpus shard, and models the merged
// evidence once. On a healthy run — and, with a retry budget, under any
// transient fault pattern the budget absorbs — the result is
// bit-identical to MineContext over the same documents with the same
// Config.
//
// Workers that stay failed past their retry budget degrade the run
// instead of aborting it: each lost shard is reported as a ShardFailure
// and the result is exactly what MineContext would have produced over the
// corpus minus those shards' documents. The returned error is non-nil
// only on cancellation (alongside the partial result, as a *PartialError)
// or when every shard failed.
func (s *System) MineDistributed(ctx context.Context, docs []Document, opts DistributedOptions, cfg Config) (*Result, []ShardFailure, error) {
	s.registerPending()
	internalDocs := make([]corpus.Document, len(docs))
	for i, d := range docs {
		internalDocs[i] = corpus.Document{URL: d.URL, Domain: d.Domain, Text: d.Text}
	}
	pcfg := s.pipelineConfig(cfg)
	var transport dist.Transport
	switch {
	case len(opts.Connect) > 0:
		transport = &dist.SocketTransport{
			Addrs: opts.Connect,
			Seed:  opts.Seed,
			Obs:   pcfg.Obs,
		}
	case len(opts.Command) > 0:
		transport = &dist.ProcTransport{
			Path:      opts.Command[0],
			Args:      opts.Command[1:],
			ExtraArgs: opts.WorkerAttempt,
			Stderr:    opts.Stderr,
		}
	default:
		lt := &dist.LocalTransport{Base: s.kb, Lex: s.lex, Pipeline: pcfg}
		if pcfg.Obs != nil {
			// Mirror the multi-process reality in-process: each worker runs
			// its own observability and ships it back as a telemetry frame,
			// rather than writing into the coordinator's registry directly.
			lt.WorkerObs = func(int) *obs.RunObs { return obs.New() }
		}
		transport = lt
	}
	pres, shardErrs, err := dist.Mine(ctx, internalDocs, s.kb, dist.Config{
		Shards:    opts.Workers,
		Transport: transport,
		Pipeline:  pcfg,
		Retry: dist.RetryPolicy{
			MaxAttempts:   opts.Retries,
			BaseBackoff:   opts.RetryBackoff,
			ShardDeadline: opts.ShardDeadline,
			Seed:          opts.Seed,
		},
	})
	res := &Result{sys: s, res: pres}
	var failures []ShardFailure
	for _, se := range shardErrs {
		failures = append(failures, ShardFailure{Shard: se.Shard, Docs: se.Docs, Attempts: se.Attempts, Err: se.Err})
	}
	if err != nil && ctx.Err() != nil {
		return res, failures, &PartialError{Result: res, Documents: pres.Documents, Err: err}
	}
	return res, failures, err
}

// ServeWorker runs one distributed-mining worker over a pipe pair: read
// the job from r, extract the shard's evidence, ship the delta on w, and
// return. cmd/surveyor's hidden -dist-worker mode calls this on
// stdin/stdout; the system must hold the same knowledge base and lexicon
// the coordinator mined with.
func (s *System) ServeWorker(ctx context.Context, r io.Reader, w io.Writer, cfg Config) error {
	s.registerPending()
	return dist.RunWorker(ctx, r, w, s.kb, s.lex, s.pipelineConfig(cfg))
}

// SocketWorkerOptions configures ServeSocketWorker.
type SocketWorkerOptions struct {
	// Heartbeat is the liveness emission interval while mining. Zero
	// means 1s.
	Heartbeat time.Duration
	// ErrLog receives per-connection serve errors (nil discards them).
	ErrLog io.Writer
}

// ServeSocketWorker runs a standalone socket worker server on ln until
// ctx is cancelled: each accepted connection carries one shard attempt
// of the worker protocol, with heartbeat frames interleaved while mining
// so the coordinator can tell a slow shard from a dead one. cmd/surveyor's
// -dist-listen mode calls this; coordinators reach it via
// DistributedOptions.Connect.
func (s *System) ServeSocketWorker(ctx context.Context, ln net.Listener, cfg Config, opts SocketWorkerOptions) error {
	s.registerPending()
	return dist.ServeSocket(ctx, ln, s.kb, s.lex, s.pipelineConfig(cfg), dist.SocketServerConfig{
		Heartbeat: opts.Heartbeat,
		ErrLog:    opts.ErrLog,
	})
}
