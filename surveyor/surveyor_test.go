package surveyor

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func demoSystem() *System {
	sys := NewSystem()
	sys.AddEntity("kitten", "animal", false, nil)
	sys.AddEntity("puppy", "animal", false, nil)
	sys.AddEntity("spider", "animal", false, nil)
	sys.AddEntity("scorpion", "animal", false, nil)
	return sys
}

func demoDocs() []Document {
	texts := []string{
		"Kittens are cute. I think that puppies are cute.",
		"Kittens are really cute animals. Puppies are cute.",
		"Spiders are not cute. I don't think that scorpions are cute.",
		"The kitten is cute. The puppy is a cute animal.",
		"Spiders aren't cute. Scorpions are never cute.",
		"Everyone agrees that kittens are cute.",
		"Kittens are cute and lovely. Puppies seem cute.",
		"I don't think that spiders are cute.",
	}
	docs := make([]Document, len(texts))
	for i, t := range texts {
		docs[i] = Document{URL: "http://example.com", Domain: "com", Text: t}
	}
	return docs
}

func TestMineEndToEnd(t *testing.T) {
	sys := demoSystem()
	res := sys.Mine(demoDocs(), Config{Rho: 1})

	for name, want := range map[string]Opinion{
		"kitten": Positive, "puppy": Positive,
		"spider": Negative, "scorpion": Negative,
	} {
		op, ok := res.Opinion(name, "cute")
		if !ok {
			t.Fatalf("%s/cute not classified", name)
		}
		if op.Opinion != want {
			t.Errorf("%s cute = %v (p=%.3f), want %v", name, op.Opinion, op.Probability, want)
		}
	}
}

func TestMineStatementCounts(t *testing.T) {
	sys := demoSystem()
	res := sys.Mine(demoDocs(), Config{Rho: 1})
	op, ok := res.Opinion("kitten", "cute")
	if !ok || op.Pos < 4 {
		t.Fatalf("kitten counts: %+v ok=%v", op, ok)
	}
	if op.Neg != 0 {
		t.Fatalf("kitten should have no negative statements: %+v", op)
	}
	sp, _ := res.Opinion("spider", "cute")
	if sp.Neg < 2 || sp.Pos != 0 {
		t.Fatalf("spider counts: %+v", sp)
	}
}

func TestOpinionUnknownEntity(t *testing.T) {
	sys := demoSystem()
	res := sys.Mine(demoDocs(), Config{Rho: 1})
	if _, ok := res.Opinion("unicorn", "cute"); ok {
		t.Fatal("unknown entity resolved")
	}
}

func TestGroupsAndStats(t *testing.T) {
	sys := demoSystem()
	res := sys.Mine(demoDocs(), Config{Rho: 1})
	groups := res.Groups()
	found := false
	for _, g := range groups {
		if g.Type == "animal" && g.Property == "cute" {
			found = true
			if len(g.Entities) != 4 {
				t.Errorf("group entities = %d, want 4", len(g.Entities))
			}
			if g.PA <= 0.5 || g.PA > 1 {
				t.Errorf("fitted PA = %v", g.PA)
			}
		}
	}
	if !found {
		t.Fatal("animal/cute group missing")
	}
	st := res.Stats()
	if st.Statements == 0 || st.Documents != 8 || st.Sentences < 8 {
		t.Fatalf("stats: %+v", st)
	}
	if !strings.Contains(st.String(), "statements=") {
		t.Error("Stats.String unhelpful")
	}
}

func TestEvidenceExport(t *testing.T) {
	sys := demoSystem()
	res := sys.Mine(demoDocs(), Config{Rho: 1})
	ev := res.Evidence()
	if len(ev) == 0 {
		t.Fatal("no evidence exported")
	}
	seen := false
	for _, e := range ev {
		if e.Entity == "kitten" && e.Property == "cute" && e.Pos > 0 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("kitten/cute evidence missing")
	}
}

func TestSaveEvidenceAndKB(t *testing.T) {
	sys := demoSystem()
	res := sys.Mine(demoDocs(), Config{Rho: 1})
	var buf bytes.Buffer
	if err := res.SaveEvidence(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty evidence dump")
	}
	buf.Reset()
	if err := sys.SaveKB(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kitten") {
		t.Fatal("KB dump missing entities")
	}
}

func TestFitModelLowLevel(t *testing.T) {
	// Counts straight from the paper's Example 2 shape.
	tuples := make([]Counts, 0, 300)
	for i := 0; i < 100; i++ { // positive entities: many positive mentions
		tuples = append(tuples, Counts{Pos: 40 + i%20, Neg: i % 3})
	}
	for i := 0; i < 200; i++ { // negative entities: few statements
		tuples = append(tuples, Counts{Pos: i % 3, Neg: 3 + i%5})
	}
	m := FitModel(tuples)
	if m.PA <= 0.5 || m.NpPlus <= m.NpMinus {
		t.Fatalf("fitted model: %+v", m)
	}
	if p := m.ProbabilityPositive(Counts{Pos: 45, Neg: 1}); p < 0.9 {
		t.Fatalf("Pr(+|45,1) = %v", p)
	}
	if m.Decide(Counts{}) != Negative {
		t.Fatal("zero-evidence should decide negative in this world")
	}
}

func TestMajorityVoteHelper(t *testing.T) {
	if MajorityVote(Counts{3, 1}) != Positive ||
		MajorityVote(Counts{1, 3}) != Negative ||
		MajorityVote(Counts{0, 0}) != Unsolved {
		t.Fatal("MajorityVote wrong")
	}
}

func TestOpinionString(t *testing.T) {
	if Positive.String() != "+" || Negative.String() != "-" || Unsolved.String() != "N" {
		t.Fatal("Opinion.String mismatch")
	}
}

func TestBuiltinKB(t *testing.T) {
	sys := NewSystemWithBuiltinKB(1)
	if sys.EntityCount() < 500 {
		t.Fatalf("builtin KB has %d entities", sys.EntityCount())
	}
	types := sys.Types()
	if len(types) < 8 {
		t.Fatalf("builtin KB types: %v", types)
	}
}

func TestAddSubjectiveAdjective(t *testing.T) {
	sys := NewSystem()
	sys.AddEntity("gadget", "device", false, nil)
	sys.AddSubjectiveAdjective("spiffy", "shabby")
	res := sys.Mine([]Document{
		{Text: "Gadgets are spiffy. The gadget is spiffy."},
		{Text: "Gadgets are really spiffy devices."},
	}, Config{Rho: 1})
	op, ok := res.Opinion("gadget", "spiffy")
	if !ok || op.Opinion != Positive {
		t.Fatalf("custom adjective: %+v ok=%v", op, ok)
	}
}

func TestEntityNameRoundTrip(t *testing.T) {
	sys := NewSystem()
	id := sys.AddEntity("Palo Alto", "city", true, map[string]float64{"population": 64000})
	if sys.EntityName(id) != "Palo Alto" {
		t.Fatal("EntityName mismatch")
	}
}

func TestLearnRule(t *testing.T) {
	sys := NewSystem()
	// Cities with population attributes; statements only about big ones.
	bigs := []string{"Megaton", "Grandville", "Hugeport", "Vastburg"}
	smalls := []string{"Tinyton", "Littleville", "Smallport", "Weeburg"}
	for i, n := range bigs {
		sys.AddEntity(n, "city", true, map[string]float64{"population": 1_000_000 + float64(i)})
	}
	for i, n := range smalls {
		sys.AddEntity(n, "city", true, map[string]float64{"population": 5_000 + float64(i)})
	}
	var docs []Document
	for _, n := range bigs {
		docs = append(docs,
			Document{Text: n + " is a big city. " + n + " is big. Everyone agrees that " + n + " is big."},
			Document{Text: "I think that " + n + " is big. " + n + " is really big."})
	}
	for _, n := range smalls {
		docs = append(docs, Document{Text: n + " is not a big city. " + n + " isn't big."})
	}
	res := sys.Mine(docs, Config{Rho: 1})
	rule, ok := res.LearnRule("city", "big", "population")
	if !ok {
		t.Fatal("LearnRule failed")
	}
	if !rule.AppliesAbove {
		t.Fatalf("direction wrong: %+v", rule)
	}
	if rule.Threshold < 5_000 || rule.Threshold > 1_000_000 {
		t.Fatalf("threshold = %v", rule.Threshold)
	}
	if rule.Agreement < 0.9 {
		t.Fatalf("agreement = %v", rule.Agreement)
	}
	if !strings.Contains(rule.String(), "population") {
		t.Fatalf("String() = %q", rule.String())
	}
	// Missing attribute or unmodelled group fail cleanly.
	if _, ok := res.LearnRule("city", "big", "nonexistent_attr"); ok {
		t.Fatal("rule on missing attribute should fail")
	}
	if _, ok := res.LearnRule("city", "purple", "population"); ok {
		t.Fatal("rule on unmodelled property should fail")
	}
}

func TestQueryFacade(t *testing.T) {
	sys := demoSystem()
	res := sys.Mine(demoDocs(), Config{Rho: 1})
	answers, err := res.Query("cute animals")
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) < 2 {
		t.Fatalf("answers = %v", answers)
	}
	names := map[string]bool{}
	for _, a := range answers {
		names[a.Entity] = true
	}
	if !names["kitten"] || !names["puppy"] || names["spider"] {
		t.Fatalf("cute animals = %v", answers)
	}
	neg, err := res.Query("not cute animals")
	if err != nil {
		t.Fatal(err)
	}
	negNames := map[string]bool{}
	for _, a := range neg {
		negNames[a.Entity] = true
	}
	if !negNames["spider"] || negNames["kitten"] {
		t.Fatalf("not cute animals = %v", neg)
	}
	if _, err := res.Query("gibberish"); err == nil {
		t.Fatal("bad query should error")
	}
	props := res.QueryableProperties("animal")
	if len(props) == 0 {
		t.Fatal("no queryable properties")
	}
}

func TestPatternVersionViaFacade(t *testing.T) {
	sys := NewSystem()
	sys.AddEntity("tiger", "animal", false, nil)
	docs := []Document{
		{Text: "Tigers seem dangerous. Tigers seem dangerous."},
		{Text: "Tigers are dangerous."},
	}
	// V4 (default) ignores broad copulas; V2 counts them.
	resV4 := sys.Mine(docs, Config{Rho: 1})
	resV2 := sys.Mine(docs, Config{Rho: 1, PatternVersion: 2})
	op4, _ := resV4.Opinion("tiger", "dangerous")
	op2, _ := resV2.Opinion("tiger", "dangerous")
	if op4.Pos != 1 {
		t.Fatalf("V4 counted %d positives, want 1", op4.Pos)
	}
	if op2.Pos != 3 {
		t.Fatalf("V2 counted %d positives, want 3", op2.Pos)
	}
}

func TestEMIterationsCap(t *testing.T) {
	sys := demoSystem()
	// One EM iteration still produces sane opinions on clean data.
	res := sys.Mine(demoDocs(), Config{Rho: 1, EMIterations: 1})
	op, ok := res.Opinion("kitten", "cute")
	if !ok || op.Opinion != Positive {
		t.Fatalf("capped EM: %+v ok=%v", op, ok)
	}
}

func TestMineEmptyCorpus(t *testing.T) {
	sys := demoSystem()
	res := sys.Mine(nil, Config{})
	if st := res.Stats(); st.Statements != 0 || st.ModelledGroups != 0 {
		t.Fatalf("empty mine stats: %+v", st)
	}
	if _, ok := res.Opinion("kitten", "cute"); ok {
		t.Fatal("empty corpus should classify nothing")
	}
	if got := res.Evidence(); len(got) != 0 {
		t.Fatalf("empty corpus evidence: %v", got)
	}
}

func TestRhoDefaultIsPaper100(t *testing.T) {
	sys := demoSystem()
	// With the default ρ=100 the tiny demo corpus yields no groups.
	res := sys.Mine(demoDocs(), Config{})
	if st := res.Stats(); st.ModelledGroups != 0 {
		t.Fatalf("default rho should filter the demo corpus, got %d groups", st.ModelledGroups)
	}
}

func TestOutOfRangeHandles(t *testing.T) {
	sys := demoSystem()
	res := sys.Mine(demoDocs(), Config{Rho: 1})
	for _, id := range []int{-1, 9999} {
		if _, ok := res.OpinionByID(id, "cute"); ok {
			t.Fatalf("OpinionByID(%d) should fail", id)
		}
		if got := sys.EntityName(id); got != "" {
			t.Fatalf("EntityName(%d) = %q", id, got)
		}
	}
}

func TestMineJSONLMatchesMine(t *testing.T) {
	// Streamed mining must produce the same opinions as in-memory mining.
	inMem := demoSystem().Mine(demoDocs(), Config{Rho: 1})

	var buf bytes.Buffer
	for _, d := range demoDocs() {
		buf.WriteString(`{"URL":"http://example.com","Domain":"com","Text":` + jsonString(d.Text) + "}\n")
	}
	sys := demoSystem()
	res, err := sys.MineJSONL(context.Background(), &buf, StreamOptions{}, Config{Rho: 1})
	if err != nil {
		t.Fatalf("MineJSONL: %v", err)
	}
	a, b := inMem.Stats(), res.Stats()
	if a.Documents != b.Documents || a.Statements != b.Statements || a.ModelledGroups != b.ModelledGroups {
		t.Fatalf("stream stats %+v, in-memory %+v", b, a)
	}
	for _, name := range []string{"kitten", "puppy", "spider", "scorpion"} {
		wa, ok1 := inMem.Opinion(name, "cute")
		wb, ok2 := res.Opinion(name, "cute")
		if ok1 != ok2 || wa.Opinion != wb.Opinion {
			t.Errorf("%s: stream %v vs in-memory %v", name, wb.Opinion, wa.Opinion)
		}
	}
}

func TestMineJSONLLenientSkips(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("this is not json\n")
	for _, d := range demoDocs() {
		buf.WriteString(`{"Text":` + jsonString(d.Text) + "}\n")
	}
	buf.WriteString("{broken\n")
	sys := demoSystem()
	res, err := sys.MineJSONL(context.Background(), &buf, StreamOptions{Lenient: true}, Config{Rho: 1})
	if err != nil {
		t.Fatalf("lenient MineJSONL: %v", err)
	}
	st := res.Stats()
	if st.SkippedLines != 2 {
		t.Errorf("SkippedLines = %d, want 2", st.SkippedLines)
	}
	if st.Documents != len(demoDocs()) {
		t.Errorf("Documents = %d, want %d", st.Documents, len(demoDocs()))
	}
	if !strings.Contains(st.String(), "skipped_lines=2") {
		t.Errorf("Stats.String() = %q, want skipped-line count", st.String())
	}
}

func TestMineContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before mining starts: nothing may be processed
	sys := demoSystem()
	res, err := sys.MineContext(ctx, demoDocs(), Config{Rho: 1})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause = %v, want context.Canceled", err)
	}
	if pe.Result != res || res == nil {
		t.Fatal("PartialError must carry the returned result")
	}
	if pe.Documents != 0 || res.Stats().Documents != 0 {
		t.Errorf("pre-cancelled mine processed %d documents", pe.Documents)
	}
}

func TestQuarantinedSurfacesInStats(t *testing.T) {
	// A healthy run reports no quarantine.
	res := demoSystem().Mine(demoDocs(), Config{Rho: 1})
	if q := res.Quarantined(); len(q) != 0 {
		t.Fatalf("healthy run quarantined %v", q)
	}
	if st := res.Stats(); st.QuarantinedDocs != 0 || strings.Contains(st.String(), "quarantined") {
		t.Fatalf("healthy stats advertise quarantine: %v", st)
	}
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
