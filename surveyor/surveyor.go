// Package surveyor is the public API of the Surveyor reproduction — the
// system described in "Mining Subjective Properties on the Web" (Trummer,
// Halevy, Lee, Sarawagi, Gupta; SIGMOD 2015).
//
// Surveyor mines the dominant opinion about whether a subjective property
// (an adjective such as "cute" or "big") applies to a knowledge-base
// entity, from free web text. The pipeline extracts positive and negative
// statements with dependency patterns, aggregates them into per-entity
// counters, fits a per-(type, property) probabilistic model of author
// behaviour with EM, and classifies every entity of the type — including
// entities never mentioned at all.
//
// Quick start:
//
//	sys := surveyor.NewSystem()
//	sys.AddEntity("kitten", "animal", false, nil)
//	sys.AddEntity("spider", "animal", false, nil)
//	docs := []surveyor.Document{{Text: "Kittens are cute. Spiders are not cute."}}
//	res := sys.Mine(docs, surveyor.Config{Rho: 1})
//	op, _ := res.Opinion("kitten", "cute")
//
// The lower-level model API (FitModel / Model.ProbabilityPositive) works
// directly on statement counts with no text processing at all.
package surveyor

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/threshold"
)

// Opinion is a mined dominant opinion.
type Opinion int8

// Opinion values. Unsolved means the system produced no decision for the
// pair (posterior exactly one half, or the pair was never modelled).
const (
	Negative Opinion = -1
	Unsolved Opinion = 0
	Positive Opinion = +1
)

// String renders the opinion as the paper's +/−/N notation.
func (o Opinion) String() string { return core.Opinion(o).String() }

func fromCore(o core.Opinion) Opinion { return Opinion(o) }

// Document is one unit of web content, assumed to have a single author.
type Document struct {
	URL    string
	Domain string
	Text   string
}

// System bundles a knowledge base and lexicon and runs the mining
// pipeline. Create with NewSystem, then register entities (or load the
// built-in evaluation knowledge base) before mining.
type System struct {
	kb  *kb.KB
	lex *lexicon.Lexicon
	// registered tracks whether entity names still need lexicon
	// registration before the next Mine.
	dirty bool
}

// NewSystem returns a System with the built-in English lexicon and an
// empty knowledge base.
func NewSystem() *System {
	return &System{kb: kb.New(), lex: lexicon.Default()}
}

// NewSystemWithBuiltinKB returns a System preloaded with the synthetic
// evaluation knowledge base (cities, animals, celebrities, professions,
// sports, countries, lakes, mountains). seed controls the deterministic
// synthesis of the long-tail entities.
func NewSystemWithBuiltinKB(seed uint64) *System {
	return &System{kb: kb.Default(seed), lex: lexicon.Default(), dirty: true}
}

// AddEntity registers an entity with its most notable type. proper marks
// proper names ("Chicago") as opposed to common nouns ("kitten"); attrs
// are optional objective attributes. Returns a handle usable with
// Result.OpinionByID.
func (s *System) AddEntity(name, typ string, proper bool, attrs map[string]float64) int {
	id := s.kb.Add(kb.Entity{Name: name, Type: typ, Proper: proper, Attributes: attrs})
	s.dirty = true
	return int(id)
}

// AddSubjectiveAdjective extends the lexicon with an adjective unknown to
// the built-in inventory, optionally wiring antonyms.
func (s *System) AddSubjectiveAdjective(adj string, antonyms ...string) {
	s.lex.AddAdjective(adj, true, antonyms...)
}

// EntityCount returns the number of registered entities.
func (s *System) EntityCount() int { return s.kb.Len() }

// Types returns the registered entity types.
func (s *System) Types() []string { return s.kb.Types() }

// EntityName resolves an entity handle to its canonical name. Unknown
// handles resolve to "".
func (s *System) EntityName(id int) string {
	if id < 0 || id >= s.kb.Len() {
		return ""
	}
	return s.kb.Get(kb.EntityID(id)).Name
}

// SaveKB serialises the knowledge base (JSON lines).
func (s *System) SaveKB(w io.Writer) error { return s.kb.Save(w) }

// Config controls a mining run.
type Config struct {
	// Workers is the parallelism (0 = all cores).
	Workers int
	// Rho is the minimum statement count for a (type, property) pair to
	// be modelled. Default 100, as in the paper.
	Rho int64
	// PatternVersion selects the extraction pattern version 1-4 of the
	// paper's Appendix B; 0 or 4 selects the shipped configuration.
	PatternVersion int
	// EMIterations caps the per-group EM loop (0 = default 50).
	EMIterations int
	// Obs is an optional observability sink (metrics, tracing, EM
	// telemetry, live progress). Nil disables all telemetry; mined results
	// are bit-identical either way.
	Obs *obs.RunObs
}

// Result exposes the mined opinions.
type Result struct {
	sys *System
	res *pipeline.Result
}

// PartialError reports a mining run that stopped early — cancelled through
// its context, or cut short by a corpus read error. Result always carries
// the consistent partial output: the complete mining result over exactly
// Documents committed documents.
type PartialError struct {
	// Result is the partial result, never nil.
	Result *Result
	// Documents counts the fully processed documents.
	Documents int
	// Err is the cause (errors.Is sees context.Canceled or the read error
	// through it).
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("surveyor: mining stopped after %d documents: %v", e.Documents, e.Err)
}

// Unwrap exposes the cause.
func (e *PartialError) Unwrap() error { return e.Err }

// wrapPartial converts a pipeline error into the public error surface,
// attaching the already-wrapped result.
func wrapPartial(res *Result, err error) error {
	if err == nil {
		return nil
	}
	var pe *pipeline.PartialError
	if errors.As(err, &pe) {
		return &PartialError{Result: res, Documents: pe.Processed, Err: pe.Err}
	}
	return err
}

func (s *System) pipelineConfig(cfg Config) pipeline.Config {
	pcfg := pipeline.Config{
		Workers: cfg.Workers,
		Rho:     cfg.Rho,
		Version: extract.Version(cfg.PatternVersion),
		Obs:     cfg.Obs,
	}
	if cfg.EMIterations > 0 {
		pcfg.EM = core.DefaultEMConfig()
		pcfg.EM.MaxIterations = cfg.EMIterations
	}
	return pcfg
}

func (s *System) registerPending() {
	if s.dirty {
		s.kb.RegisterLexicon(s.lex)
		s.dirty = false
	}
}

// Mine runs the full pipeline over the documents. It never stops early;
// use MineContext for cancellation.
func (s *System) Mine(docs []Document, cfg Config) *Result {
	res, _ := s.MineContext(context.Background(), docs, cfg)
	return res
}

// MineContext is Mine with document-granular cancellation: when ctx fires
// mid-run, the documents processed so far are still grouped and modelled,
// and that partial result is returned both directly and inside a
// *PartialError. Documents whose processing panics are quarantined (see
// Result.Quarantined) instead of failing the run.
func (s *System) MineContext(ctx context.Context, docs []Document, cfg Config) (*Result, error) {
	s.registerPending()
	internalDocs := make([]corpus.Document, len(docs))
	for i, d := range docs {
		internalDocs[i] = corpus.Document{URL: d.URL, Domain: d.Domain, Text: d.Text}
	}
	pres, err := pipeline.RunContext(ctx, internalDocs, s.kb, s.lex, s.pipelineConfig(cfg))
	res := &Result{sys: s, res: pres}
	return res, wrapPartial(res, err)
}

// StreamOptions controls MineJSONL's corpus ingestion.
type StreamOptions struct {
	// Lenient skips and counts malformed or oversized corpus lines instead
	// of failing the run (see Stats.SkippedLines).
	Lenient bool
	// MaxLineBytes caps one corpus line (0 = 4 MiB).
	MaxLineBytes int
	// Buffer bounds the number of in-flight documents between the reader
	// and the workers (0 = 4× workers).
	Buffer int
}

// MineJSONL mines a JSONL corpus directly from a reader in bounded memory —
// the entry point for corpora larger than RAM. Cancellation and panic
// quarantine behave as in MineContext; a corpus read error likewise
// surfaces as a *PartialError carrying the result over the documents read
// before the failure.
func (s *System) MineJSONL(ctx context.Context, r io.Reader, opts StreamOptions, cfg Config) (*Result, error) {
	s.registerPending()
	it := corpus.NewIterator(r, corpus.IteratorConfig{
		Lenient:      opts.Lenient,
		MaxLineBytes: opts.MaxLineBytes,
	})
	pcfg := s.pipelineConfig(cfg)
	pcfg.StreamBuffer = opts.Buffer
	pres, err := pipeline.RunStream(ctx, it, s.kb, s.lex, pcfg)
	res := &Result{sys: s, res: pres}
	return res, wrapPartial(res, err)
}

// QuarantinedDoc identifies one document removed from a run by the panic
// boundary.
type QuarantinedDoc struct {
	// Doc is the document's index in the mined slice (or its sequence
	// number in the JSONL stream).
	Doc int
	// Reason is the rendered panic value.
	Reason string
}

// Quarantined lists the documents the fault boundary removed from the run,
// in document order. Empty on a healthy run. The mined result is exactly
// what a run without those documents would have produced.
func (r *Result) Quarantined() []QuarantinedDoc {
	out := make([]QuarantinedDoc, len(r.res.Quarantined))
	for i, q := range r.res.Quarantined {
		out[i] = QuarantinedDoc{Doc: q.Doc, Reason: q.Reason}
	}
	return out
}

// EntityOpinion is one classified entity-property pair.
type EntityOpinion struct {
	Entity      string // canonical entity name
	EntityID    int
	Property    string
	Pos, Neg    int64 // extracted statement counts
	Probability float64
	Opinion     Opinion
}

// Opinion looks up the mined opinion for an entity by canonical name (or
// alias) and property. The boolean is false when the entity is unknown,
// ambiguous, or its (type, property) group was not modelled.
func (r *Result) Opinion(entityName, property string) (EntityOpinion, bool) {
	cands := r.sys.kb.Candidates(entityName)
	if len(cands) != 1 {
		return EntityOpinion{}, false
	}
	return r.OpinionByID(int(cands[0]), property)
}

// OpinionByID looks up by entity handle. Out-of-range handles resolve
// to false.
func (r *Result) OpinionByID(id int, property string) (EntityOpinion, bool) {
	if id < 0 || id >= r.sys.kb.Len() {
		return EntityOpinion{}, false
	}
	op, ok := r.res.Opinion(kb.EntityID(id), property)
	if !ok {
		return EntityOpinion{}, false
	}
	return EntityOpinion{
		Entity:      r.sys.kb.Get(kb.EntityID(id)).Name,
		EntityID:    id,
		Property:    property,
		Pos:         op.Pos,
		Neg:         op.Neg,
		Probability: op.Probability,
		Opinion:     fromCore(op.Opinion),
	}, true
}

// GroupSummary describes one modelled (type, property) combination.
type GroupSummary struct {
	Type, Property string
	// Fitted model parameters (Section 5): agreement probability and the
	// two emission rates.
	PA, NpPlus, NpMinus float64
	// Entities is the per-entity classification, in KB order, covering
	// every entity of the type.
	Entities []EntityOpinion
}

// Groups returns every modelled (type, property) combination.
func (r *Result) Groups() []GroupSummary {
	out := make([]GroupSummary, len(r.res.Groups))
	for i := range r.res.Groups {
		g := &r.res.Groups[i]
		gs := GroupSummary{
			Type:     g.Key.Type,
			Property: g.Key.Property,
			PA:       g.Model.Params.PA,
			NpPlus:   g.Model.Params.NpPlus,
			NpMinus:  g.Model.Params.NpMinus,
			Entities: make([]EntityOpinion, len(g.Entities)),
		}
		for j, eo := range g.Entities {
			gs.Entities[j] = EntityOpinion{
				Entity:      r.sys.kb.Get(eo.Entity).Name,
				EntityID:    int(eo.Entity),
				Property:    g.Key.Property,
				Pos:         eo.Pos,
				Neg:         eo.Neg,
				Probability: eo.Probability,
				Opinion:     fromCore(eo.Opinion),
			}
		}
		out[i] = gs
	}
	return out
}

// Stats summarises the run (the Section-7.1 numbers at our scale).
type Stats struct {
	Documents         int
	Sentences         int64
	Statements        int64
	DistinctPairs     int   // (entity, property) pairs with evidence
	PairsBeforeFilter int   // (type, property) pairs before ρ
	ModelledGroups    int   // (type, property) pairs after ρ
	OpinionsProduced  int64 // entity-property classifications emitted
	QuarantinedDocs   int   // documents removed by the panic boundary
	SkippedLines      int64 // corpus lines skipped by lenient streaming
	ExtractionMillis  int64
	GroupingMillis    int64
	EMMillis          int64
	IndexMillis       int64 // lookup-index construction
	TotalMillis       int64 // whole run, end to end
}

// Stats returns the run statistics.
func (r *Result) Stats() Stats {
	var opinions int64
	for i := range r.res.Groups {
		opinions += int64(len(r.res.Groups[i].Entities))
	}
	return Stats{
		Documents:         r.res.Documents,
		Sentences:         r.res.Sentences,
		Statements:        r.res.TotalStatements,
		DistinctPairs:     r.res.DistinctPairs,
		PairsBeforeFilter: r.res.PairsBeforeFilter,
		ModelledGroups:    len(r.res.Groups),
		OpinionsProduced:  opinions,
		QuarantinedDocs:   len(r.res.Quarantined),
		SkippedLines:      r.res.SkippedLines,
		ExtractionMillis:  r.res.Timings.Extraction.Milliseconds(),
		GroupingMillis:    r.res.Timings.Grouping.Milliseconds(),
		EMMillis:          r.res.Timings.EM.Milliseconds(),
		IndexMillis:       r.res.Timings.Index.Milliseconds(),
		TotalMillis:       r.res.Timings.Total.Milliseconds(),
	}
}

// SaveEvidence serialises the raw evidence counters.
func (r *Result) SaveEvidence(w io.Writer) error { return r.res.Store.Save(w) }

// String renders a short report.
func (s Stats) String() string {
	health := ""
	if s.QuarantinedDocs > 0 || s.SkippedLines > 0 {
		health = fmt.Sprintf(" quarantined=%d skipped_lines=%d", s.QuarantinedDocs, s.SkippedLines)
	}
	return fmt.Sprintf(
		"documents=%d sentences=%d statements=%d pairs=%d groups=%d/%d opinions=%d%s (extract %dms, group %dms, em %dms, index %dms, total %dms)",
		s.Documents, s.Sentences, s.Statements, s.DistinctPairs,
		s.ModelledGroups, s.PairsBeforeFilter, s.OpinionsProduced, health,
		s.ExtractionMillis, s.GroupingMillis, s.EMMillis, s.IndexMillis, s.TotalMillis)
}

// --- Subjective query answering (the paper's motivating application) --------

// QueryAnswer is one ranked result of a subjective query.
type QueryAnswer struct {
	Entity      string
	Probability float64
	Pos, Neg    int64
}

// Query answers a subjective query string — "big cities", "very cute
// animals", "not dangerous sports" — from the mined opinions: the
// structured-results capability the paper's introduction motivates. The
// answer list is ranked by confidence, then supporting evidence.
func (r *Result) Query(q string) ([]QueryAnswer, error) {
	eng := query.NewEngine(r.sys.kb, r.sys.lex, r.res)
	answers, err := eng.Run(q)
	if err != nil {
		return nil, err
	}
	out := make([]QueryAnswer, len(answers))
	for i, a := range answers {
		out[i] = QueryAnswer{
			Entity:      a.Entity,
			Probability: a.Probability,
			Pos:         a.Evidence.Pos,
			Neg:         a.Evidence.Neg,
		}
	}
	return out, nil
}

// QueryableProperties lists the properties the result can answer queries
// about for a given type.
func (r *Result) QueryableProperties(typ string) []string {
	return query.NewEngine(r.sys.kb, r.sys.lex, r.res).Properties(typ)
}

// --- Subjective-to-objective rules (the paper's future work) ---------------

// Rule is a learned connection between a subjective property and an
// objective attribute: "users call a city big from about 240,000
// inhabitants" (Section 9's outlook).
type Rule struct {
	Type, Property, Attribute string
	Threshold                 float64
	// AppliesAbove is true when the property holds for attribute values at
	// or above the threshold ("big"), false for below ("calm").
	AppliesAbove bool
	Agreement    float64 // training accuracy of the rule
	Support      int     // decided entities it was fitted on
	Correlation  float64 // opinion/attribute rank correlation
	Usable       bool    // strong enough to act on
}

// LearnRule fits the attribute bound that best separates the mined
// opinions of a (type, property) group. The boolean is false when the
// group was not modelled, the attribute is missing, or no boundary exists.
func (r *Result) LearnRule(typ, property, attribute string) (Rule, bool) {
	g, ok := r.res.Group(typ, property)
	if !ok {
		return Rule{}, false
	}
	attrs := make([]float64, len(g.Entities))
	ops := make([]core.Opinion, len(g.Entities))
	seen := false
	for i, eo := range g.Entities {
		e := r.sys.kb.Get(eo.Entity)
		if _, has := e.Attributes[attribute]; has {
			seen = true
		}
		attrs[i] = e.Attr(attribute, 0)
		ops[i] = eo.Opinion
	}
	if !seen {
		return Rule{}, false
	}
	rule, ok := threshold.Learn(attrs, ops)
	if !ok {
		return Rule{}, false
	}
	return Rule{
		Type: typ, Property: property, Attribute: attribute,
		Threshold:    rule.Threshold,
		AppliesAbove: rule.Direction == threshold.Above,
		Agreement:    rule.Agreement,
		Support:      rule.Support,
		Correlation:  rule.Correlation,
		Usable:       rule.Usable(),
	}, true
}

// String renders the rule as a human-readable bound.
func (r Rule) String() string {
	dir := ">="
	if !r.AppliesAbove {
		dir = "<"
	}
	return fmt.Sprintf("%s %s when %s %s %.4g (agreement %.0f%%, support %d)",
		r.Property, r.Type, r.Attribute, dir, r.Threshold, 100*r.Agreement, r.Support)
}

// --- Low-level model API ---------------------------------------------------

// Counts is the evidence tuple ⟨C+, C−⟩ for one entity.
type Counts struct {
	Pos, Neg int
}

// Model is a fitted user-behaviour model for one (type, property)
// combination.
type Model struct {
	// PA is the probability that an author agrees with the dominant
	// opinion.
	PA float64
	// NpPlus and NpMinus are the expected statement volumes n·p+S, n·p−S.
	NpPlus, NpMinus float64

	inner core.Model
}

// FitModel learns the model from per-entity statement counts alone — the
// paper's Algorithm 2 with no text processing. Entities with zero counts
// participate and are classifiable.
func FitModel(tuples []Counts) Model {
	ct := make([]core.Tuple, len(tuples))
	for i, c := range tuples {
		ct[i] = core.Tuple{Pos: c.Pos, Neg: c.Neg}
	}
	m, _ := core.FitEM(ct, core.DefaultEMConfig())
	return Model{PA: m.Params.PA, NpPlus: m.Params.NpPlus, NpMinus: m.Params.NpMinus, inner: m}
}

// ProbabilityPositive returns Pr(dominant opinion is positive | counts).
func (m Model) ProbabilityPositive(c Counts) float64 {
	return m.inner.PosteriorPositive(core.Tuple{Pos: c.Pos, Neg: c.Neg})
}

// Decide maps counts to an opinion under the fitted model.
func (m Model) Decide(c Counts) Opinion {
	return fromCore(core.Decide(m.ProbabilityPositive(c)))
}

// MajorityVote is the naive baseline of Section 7.4, for comparison.
func MajorityVote(c Counts) Opinion {
	switch {
	case c.Pos > c.Neg:
		return Positive
	case c.Neg > c.Pos:
		return Negative
	default:
		return Unsolved
	}
}

// EvidenceCounts re-exports the raw counters of a result for external
// analysis: one entry per (entity, property) pair with evidence.
type EvidenceCounts struct {
	Entity   string
	Property string
	Pos, Neg int64
}

// Evidence lists the non-zero counters of the run.
func (r *Result) Evidence() []EvidenceCounts {
	snap := r.res.Store.Snapshot()
	out := make([]EvidenceCounts, len(snap))
	for i, e := range snap {
		out[i] = EvidenceCounts{
			Entity:   r.sys.kb.Get(e.Entity).Name,
			Property: e.Property,
			Pos:      e.Pos,
			Neg:      e.Neg,
		}
	}
	return out
}
