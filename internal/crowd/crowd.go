// Package crowd simulates the Amazon Mechanical Turk ground-truth
// collection of Section 7.3: panels of workers voting on whether a
// property applies to an entity. Each worker's vote is an independent
// Bernoulli draw from the latent positive-opinion fraction of the
// population (pA* when the latent dominant opinion is positive, 1−pA*
// otherwise), so worker agreement distributions (Figure 11) and the
// precision-vs-agreement analysis (Figure 12) are reproducible against a
// known truth.
package crowd

import (
	"math"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/stats"
)

// Judgement is the outcome of one worker panel on one entity-property
// pair.
type Judgement struct {
	PositiveVotes int
	Workers       int
}

// Dominant returns the panel's majority opinion; an exact tie is
// unsolved (the paper removed the 4% of tied cases from its test set).
func (j Judgement) Dominant() core.Opinion {
	neg := j.Workers - j.PositiveVotes
	switch {
	case j.PositiveVotes > neg:
		return core.OpinionPositive
	case neg > j.PositiveVotes:
		return core.OpinionNegative
	default:
		return core.OpinionUnsolved
	}
}

// Agreement returns the number of workers sharing the majority opinion
// (the paper's inter-worker agreement measure; 20 = perfect agreement).
func (j Judgement) Agreement() int {
	neg := j.Workers - j.PositiveVotes
	if j.PositiveVotes > neg {
		return j.PositiveVotes
	}
	return neg
}

// IsTie reports whether the panel split exactly evenly.
func (j Judgement) IsTie() bool { return j.Workers == 2*j.PositiveVotes }

// Panel simulates worker panels. Not safe for concurrent use.
type Panel struct {
	workers int
	rng     *stats.RNG
}

// NewPanel returns a panel of the given size (the paper used 20 workers).
func NewPanel(workers int, seed uint64) *Panel {
	return &Panel{workers: workers, rng: stats.NewRNG(seed)}
}

// Collect asks every worker once: each votes positive with probability
// posFraction.
func (p *Panel) Collect(posFraction float64) Judgement {
	return Judgement{
		PositiveVotes: p.rng.Binomial(p.workers, posFraction),
		Workers:       p.workers,
	}
}

// TestCase is one evaluated entity-property pair with its crowd judgement
// and the latent truth it was sampled from.
type TestCase struct {
	Entity   kb.EntityID
	Type     string
	Property string
	// Judgement is the simulated AMT outcome.
	Judgement Judgement
	// LatentTruth is the generative dominant opinion (unknown to any
	// method; used for diagnostics only — the evaluation compares against
	// the crowd's Dominant(), as the paper does).
	LatentTruth bool
}

// CollectCases builds the evaluation test set: for each spec,
// entitiesPerCombo entities sampled with probability proportional to
// prominence — Section 7.3 picked entities "common in the query stream",
// i.e. well-known ones, not a uniform slice of the knowledge base — each
// judged by a fresh panel of the given size. Deterministic in seed.
func CollectCases(base *kb.KB, specs []corpus.Spec, entitiesPerCombo, workers int, seed uint64) []TestCase {
	return collectCases(base, specs, entitiesPerCombo, workers, seed, true)
}

// CollectCasesUniform samples entities uniformly instead — the Appendix-D
// protocol of random entities from the long tail.
func CollectCasesUniform(base *kb.KB, specs []corpus.Spec, entitiesPerCombo, workers int, seed uint64) []TestCase {
	return collectCases(base, specs, entitiesPerCombo, workers, seed, false)
}

func collectCases(base *kb.KB, specs []corpus.Spec, entitiesPerCombo, workers int, seed uint64, byProminence bool) []TestCase {
	rng := stats.NewRNG(seed)
	panel := NewPanel(workers, rng.Uint64())
	var cases []TestCase
	for si := range specs {
		spec := &specs[si]
		ids := base.OfType(spec.Type)
		if len(ids) == 0 {
			continue
		}
		n := entitiesPerCombo
		if n > len(ids) {
			n = len(ids)
		}
		picks := samplePicks(base, ids, n, rng, byProminence)
		for _, idx := range picks {
			e := base.Get(ids[idx])
			f := spec.LatentPosFraction(e, "com")
			cases = append(cases, TestCase{
				Entity:      e.ID,
				Type:        spec.Type,
				Property:    spec.Property,
				Judgement:   panel.Collect(f),
				LatentTruth: spec.LatentTruth(e, "com"),
			})
		}
	}
	return cases
}

// samplePicks draws n distinct indices into ids. With byProminence, the
// draw is weighted by each entity's prominence attribute (well-known
// entities are far more likely to be picked); otherwise uniform.
func samplePicks(base *kb.KB, ids []kb.EntityID, n int, rng *stats.RNG, byProminence bool) []int {
	weights := make([]float64, len(ids))
	total := 0.0
	for i, id := range ids {
		w := 1.0
		if byProminence {
			// Square-root damping: well-known entities dominate the picks
			// without crowding out recognisable mid-tier ones.
			w = math.Sqrt(base.Get(id).Attr("prominence", 0.5))
		}
		weights[i] = w
		total += w
	}
	picked := make([]bool, len(ids))
	var out []int
	for len(out) < n {
		u := rng.Float64() * total
		acc := 0.0
		idx := len(ids) - 1
		for i, w := range weights {
			acc += w
			if u < acc {
				idx = i
				break
			}
		}
		if picked[idx] {
			// Resample; as a bounded fallback take the next free slot.
			free := -1
			for j := 1; j <= len(ids); j++ {
				k := (idx + j) % len(ids)
				if !picked[k] {
					free = k
					break
				}
			}
			if free < 0 {
				break
			}
			if rng.Bernoulli(0.5) {
				idx = free
			} else {
				continue
			}
		}
		picked[idx] = true
		out = append(out, idx)
	}
	return out
}

// MeanAgreement returns the average worker agreement over the cases
// (the paper reports 17 of 20).
func MeanAgreement(cases []TestCase) float64 {
	if len(cases) == 0 {
		return 0
	}
	sum := 0
	for _, c := range cases {
		sum += c.Judgement.Agreement()
	}
	return float64(sum) / float64(len(cases))
}

// DropTies removes exactly-tied cases, as Section 7.3 does (4% of cases).
func DropTies(cases []TestCase) []TestCase {
	out := cases[:0:0]
	for _, c := range cases {
		if !c.Judgement.IsTie() {
			out = append(out, c)
		}
	}
	return out
}

// AgreementHistogram returns, for each threshold a in [minA, workers], the
// number of cases with agreement >= a — the Figure 11 curve.
func AgreementHistogram(cases []TestCase, minA, workers int) []int {
	out := make([]int, workers-minA+1)
	for _, c := range cases {
		a := c.Judgement.Agreement()
		for t := minA; t <= workers && t <= a; t++ {
			out[t-minA]++
		}
	}
	return out
}
