package crowd

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/stats"
)

func TestJudgementDominant(t *testing.T) {
	cases := []struct {
		pos, workers int
		want         core.Opinion
	}{
		{15, 20, core.OpinionPositive},
		{5, 20, core.OpinionNegative},
		{10, 20, core.OpinionUnsolved},
		{0, 20, core.OpinionNegative},
		{20, 20, core.OpinionPositive},
	}
	for _, c := range cases {
		j := Judgement{PositiveVotes: c.pos, Workers: c.workers}
		if got := j.Dominant(); got != c.want {
			t.Errorf("Dominant(%d/%d) = %v, want %v", c.pos, c.workers, got, c.want)
		}
	}
}

func TestJudgementAgreement(t *testing.T) {
	if got := (Judgement{PositiveVotes: 15, Workers: 20}).Agreement(); got != 15 {
		t.Errorf("agreement = %d, want 15", got)
	}
	if got := (Judgement{PositiveVotes: 3, Workers: 20}).Agreement(); got != 17 {
		t.Errorf("agreement = %d, want 17", got)
	}
	if got := (Judgement{PositiveVotes: 10, Workers: 20}).Agreement(); got != 10 {
		t.Errorf("tie agreement = %d, want 10", got)
	}
}

func TestJudgementIsTie(t *testing.T) {
	if !(Judgement{PositiveVotes: 10, Workers: 20}).IsTie() {
		t.Error("10/20 should tie")
	}
	if (Judgement{PositiveVotes: 11, Workers: 20}).IsTie() {
		t.Error("11/20 is not a tie")
	}
}

func TestPanelCollectFrequencies(t *testing.T) {
	p := NewPanel(20, 7)
	// Strong latent agreement: panels should mostly agree.
	sumPos := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		sumPos += p.Collect(0.9).PositiveVotes
	}
	mean := float64(sumPos) / trials
	if math.Abs(mean-18) > 0.3 {
		t.Fatalf("mean positive votes = %v, want ≈ 18", mean)
	}
}

func TestPanelDeterministic(t *testing.T) {
	a, b := NewPanel(20, 3), NewPanel(20, 3)
	for i := 0; i < 100; i++ {
		if a.Collect(0.7) != b.Collect(0.7) {
			t.Fatal("panels with same seed diverged")
		}
	}
}

func evalWorld() (*kb.KB, []corpus.Spec) {
	base := kb.Default(1)
	return base, corpus.Table2Specs()
}

func TestCollectCases500(t *testing.T) {
	base, specs := evalWorld()
	cases := CollectCases(base, specs, 20, 20, 11)
	if len(cases) != 500 {
		t.Fatalf("cases = %d, want 500 (25 combos × 20 entities)", len(cases))
	}
	combos := map[string]bool{}
	for _, c := range cases {
		combos[c.Type+"/"+c.Property] = true
		if c.Judgement.Workers != 20 {
			t.Fatalf("workers = %d", c.Judgement.Workers)
		}
	}
	if len(combos) != 25 {
		t.Fatalf("combos = %d, want 25", len(combos))
	}
}

func TestCollectCasesHighMeanAgreement(t *testing.T) {
	// The paper observed mean agreement ≈ 17/20 with ≈180 perfect cases.
	base, specs := evalWorld()
	cases := CollectCases(base, specs, 20, 20, 13)
	mean := MeanAgreement(cases)
	if mean < 15.5 || mean > 19 {
		t.Fatalf("mean agreement = %v, want ≈ 17", mean)
	}
	perfect := 0
	for _, c := range cases {
		if c.Judgement.Agreement() == 20 {
			perfect++
		}
	}
	if perfect < 50 {
		t.Fatalf("perfect-agreement cases = %d, want a substantial block", perfect)
	}
}

func TestCollectCasesTiesRare(t *testing.T) {
	base, specs := evalWorld()
	cases := CollectCases(base, specs, 20, 20, 17)
	ties := 0
	for _, c := range cases {
		if c.Judgement.IsTie() {
			ties++
		}
	}
	// The paper saw 4%; allow up to 10%.
	if ties > len(cases)/10 {
		t.Fatalf("ties = %d of %d", ties, len(cases))
	}
	dropped := DropTies(cases)
	if len(dropped) != len(cases)-ties {
		t.Fatalf("DropTies kept %d, want %d", len(dropped), len(cases)-ties)
	}
	for _, c := range dropped {
		if c.Judgement.IsTie() {
			t.Fatal("DropTies left a tie")
		}
	}
}

func TestCrowdDominantTracksLatentTruth(t *testing.T) {
	// With pA* well above 1/2, the panel majority should usually equal the
	// latent truth — the premise that makes AMT a usable ground truth.
	base, specs := evalWorld()
	cases := CollectCases(base, specs, 20, 20, 19)
	agree := 0
	for _, c := range cases {
		if c.Judgement.IsTie() {
			continue
		}
		if (c.Judgement.Dominant() == core.OpinionPositive) == c.LatentTruth {
			agree++
		}
	}
	if rate := float64(agree) / float64(len(cases)); rate < 0.9 {
		t.Fatalf("crowd-vs-latent agreement = %v", rate)
	}
}

func TestAgreementHistogramMonotone(t *testing.T) {
	base, specs := evalWorld()
	cases := CollectCases(base, specs, 20, 20, 23)
	hist := AgreementHistogram(cases, 11, 20)
	if len(hist) != 10 {
		t.Fatalf("histogram bins = %d", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i] > hist[i-1] {
			t.Fatalf("cumulative histogram must be non-increasing: %v", hist)
		}
	}
	if hist[0] == 0 {
		t.Fatal("no cases above the lowest threshold")
	}
}

func TestMeanAgreementEmpty(t *testing.T) {
	if got := MeanAgreement(nil); got != 0 {
		t.Fatalf("MeanAgreement(nil) = %v", got)
	}
}

func TestSamplePicksDistinct(t *testing.T) {
	base := kb.New()
	for i := 0; i < 30; i++ {
		base.Add(kb.Entity{Name: fmt.Sprintf("e%d", i), Type: "thing",
			Attributes: map[string]float64{"prominence": 1 / float64(i+1)}})
	}
	ids := base.OfType("thing")
	rng := stats.NewRNG(4)
	picks := samplePicks(base, ids, 20, rng, true)
	if len(picks) != 20 {
		t.Fatalf("picks = %d", len(picks))
	}
	seen := map[int]bool{}
	for _, p := range picks {
		if seen[p] {
			t.Fatalf("duplicate pick %d", p)
		}
		seen[p] = true
	}
}

func TestSamplePicksProminenceBias(t *testing.T) {
	base := kb.New()
	for i := 0; i < 100; i++ {
		prom := 0.01
		if i < 10 {
			prom = 1.0
		}
		base.Add(kb.Entity{Name: fmt.Sprintf("e%d", i), Type: "thing",
			Attributes: map[string]float64{"prominence": prom}})
	}
	ids := base.OfType("thing")
	rng := stats.NewRNG(6)
	popularHits := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		for _, p := range samplePicks(base, ids, 5, rng, true) {
			if p < 10 {
				popularHits++
			}
		}
	}
	// 10 popular entities hold ~10/(10+90*0.1)=~53% of sqrt-damped mass;
	// require they clearly dominate the uniform share (10%).
	frac := float64(popularHits) / float64(trials*5)
	if frac < 0.3 {
		t.Fatalf("popular entities got only %.2f of picks", frac)
	}
	// Uniform sampling must NOT show that bias.
	uniformHits := 0
	for trial := 0; trial < trials; trial++ {
		for _, p := range samplePicks(base, ids, 5, rng, false) {
			if p < 10 {
				uniformHits++
			}
		}
	}
	uFrac := float64(uniformHits) / float64(trials*5)
	if uFrac > 0.2 {
		t.Fatalf("uniform sampling biased: %.2f", uFrac)
	}
}

func TestSamplePicksWantAll(t *testing.T) {
	base := kb.New()
	for i := 0; i < 5; i++ {
		base.Add(kb.Entity{Name: fmt.Sprintf("e%d", i), Type: "thing"})
	}
	ids := base.OfType("thing")
	rng := stats.NewRNG(8)
	picks := samplePicks(base, ids, 5, rng, true)
	if len(picks) != 5 {
		t.Fatalf("picks = %d, want all 5", len(picks))
	}
}

func TestCollectCasesUniformCoversTail(t *testing.T) {
	b := kb.NewBuilder(9)
	types := b.RandomDomains(5, 40)
	base := b.KB()
	specs := corpus.RandomSpecs(types, []string{"big", "cute"}, 9)
	prominenceOfPicks := func(cases []TestCase) float64 {
		sum := 0.0
		for _, c := range cases {
			sum += base.Get(c.Entity).Attr("prominence", 0)
		}
		return sum / float64(len(cases))
	}
	uniform := CollectCasesUniform(base, specs, 7, 20, 10)
	weighted := CollectCases(base, specs, 7, 20, 10)
	if len(uniform) != 35 || len(weighted) != 35 {
		t.Fatalf("cases: %d / %d", len(uniform), len(weighted))
	}
	if prominenceOfPicks(uniform) >= prominenceOfPicks(weighted) {
		t.Fatalf("uniform picks (%.3f) should be less prominent than weighted (%.3f)",
			prominenceOfPicks(uniform), prominenceOfPicks(weighted))
	}
}
