// Package threshold implements the paper's Section-9 future-work
// direction: connecting subjective properties to objective ones by
// learning, from the mined opinions, the attribute bound from which the
// average user applies the property — e.g. "a lower bound on the
// population count of a city starting from which an average user would
// call that city big".
//
// The learner takes the per-entity opinions produced by the model and an
// objective attribute from the knowledge base, and finds the threshold
// (and direction) that best separates positive from negative opinions,
// with a confidence estimate. The paper suggests such rules can then
// improve precision and coverage for correlated properties; Refine
// implements that feedback step.
package threshold

import (
	"math"
	"sort"

	"repro/internal/core"
)

// Direction states which side of the threshold the property applies to.
type Direction int

// Direction values.
const (
	Above Direction = +1 // property applies for attribute >= threshold
	Below Direction = -1 // property applies for attribute < threshold
)

func (d Direction) String() string {
	if d == Above {
		return ">="
	}
	return "<"
}

// Rule is a learned subjective-to-objective connection.
type Rule struct {
	Threshold float64
	Direction Direction
	// Agreement is the fraction of decided entities consistent with the
	// rule — the rule's training accuracy.
	Agreement float64
	// Support is the number of decided entities the rule was fitted on.
	Support int
	// Correlation is the point-biserial-style Spearman correlation between
	// opinion polarity and the attribute; weakly correlated attributes
	// (|corr| < 0.2) should not be trusted even if agreement looks high.
	Correlation float64
}

// Usable reports whether the rule is strong enough to act on (the
// feedback loop of the paper's outlook). The defaults are deliberately
// conservative: 80% agreement on at least 10 entities.
func (r Rule) Usable() bool {
	return r.Support >= 10 && r.Agreement >= 0.8 && math.Abs(r.Correlation) >= 0.2
}

// Learn fits the best single-threshold rule from per-entity attributes
// and opinions (unsolved opinions are ignored). It returns false when
// fewer than 4 decided entities exist or all decided opinions agree
// (no boundary to find).
func Learn(attrs []float64, opinions []core.Opinion) (Rule, bool) {
	var pts []point
	for i, op := range opinions {
		if i >= len(attrs) || op == core.OpinionUnsolved {
			continue
		}
		pts = append(pts, point{attrs[i], op == core.OpinionPositive})
	}
	if len(pts) < 4 {
		return Rule{}, false
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].attr < pts[b].attr })

	totalPos := 0
	for _, p := range pts {
		if p.pos {
			totalPos++
		}
	}
	if totalPos == 0 || totalPos == len(pts) {
		return Rule{}, false
	}

	// Prefix positives: posBelow[k] = positives among pts[0:k].
	n := len(pts)
	posBelow := make([]int, n+1)
	for i, p := range pts {
		posBelow[i+1] = posBelow[i]
		if p.pos {
			posBelow[i+1]++
		}
	}

	best := Rule{Agreement: -1}
	// Candidate cut k: threshold between pts[k-1] and pts[k]. k in [1, n-1]
	// so both sides are non-empty; skip cuts between equal attributes.
	for k := 1; k < n; k++ {
		if pts[k].attr == pts[k-1].attr {
			continue
		}
		// Direction Above: positives at/above the cut, negatives below.
		correctAbove := (k - posBelow[k]) + (totalPos - posBelow[k])
		// Direction Below: the complement.
		correctBelow := n - correctAbove
		cut := (pts[k-1].attr + pts[k].attr) / 2
		if acc := float64(correctAbove) / float64(n); acc > best.Agreement {
			best = Rule{Threshold: cut, Direction: Above, Agreement: acc, Support: n}
		}
		if acc := float64(correctBelow) / float64(n); acc > best.Agreement {
			best = Rule{Threshold: cut, Direction: Below, Agreement: acc, Support: n}
		}
	}
	if best.Agreement < 0 {
		return Rule{}, false
	}
	best.Correlation = polaritySpearman(pts)
	return best, true
}

// Applies evaluates the rule on one attribute value.
func (r Rule) Applies(attr float64) bool {
	if r.Direction == Above {
		return attr >= r.Threshold
	}
	return attr < r.Threshold
}

// Refine implements the paper's suggested feedback: entities whose model
// decision is uncertain (posterior within margin of ½) or unsolved are
// re-decided by a usable rule. Returns the refined opinions and the
// number of changes.
func Refine(rule Rule, attrs []float64, probs []float64, margin float64) ([]core.Opinion, int) {
	out := make([]core.Opinion, len(probs))
	changed := 0
	for i, p := range probs {
		op := core.Decide(p)
		if rule.Usable() && i < len(attrs) && math.Abs(p-0.5) <= margin {
			var ruled core.Opinion
			if rule.Applies(attrs[i]) {
				ruled = core.OpinionPositive
			} else {
				ruled = core.OpinionNegative
			}
			if ruled != op {
				changed++
			}
			op = ruled
		}
		out[i] = op
	}
	return out, changed
}

// point is one decided entity.
type point struct {
	attr float64
	pos  bool
}

// polaritySpearman computes a rank correlation between attribute and
// opinion polarity over the decided points.
func polaritySpearman(pts []point) float64 {
	n := len(pts)
	if n == 0 {
		return 0
	}
	// pts are sorted by attr; use average ranks for ties.
	ranks := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && pts[j+1].attr == pts[i].attr {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[k] = avg
		}
		i = j + 1
	}
	var pol []float64
	for _, p := range pts {
		if p.pos {
			pol = append(pol, 1)
		} else {
			pol = append(pol, -1)
		}
	}
	return pearson(ranks, pol)
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n == 0 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
