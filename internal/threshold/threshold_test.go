package threshold

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/stats"
)

func opinionsFromTruth(attrs []float64, cut float64) []core.Opinion {
	out := make([]core.Opinion, len(attrs))
	for i, a := range attrs {
		if a >= cut {
			out[i] = core.OpinionPositive
		} else {
			out[i] = core.OpinionNegative
		}
	}
	return out
}

func TestLearnRecoversCleanThreshold(t *testing.T) {
	rng := stats.NewRNG(1)
	attrs := make([]float64, 200)
	for i := range attrs {
		attrs[i] = rng.Float64() * 1000
	}
	ops := opinionsFromTruth(attrs, 400)
	rule, ok := Learn(attrs, ops)
	if !ok {
		t.Fatal("Learn failed")
	}
	if rule.Direction != Above {
		t.Fatalf("direction = %v", rule.Direction)
	}
	if rule.Agreement != 1 {
		t.Fatalf("agreement = %v on clean data", rule.Agreement)
	}
	if rule.Threshold < 350 || rule.Threshold > 450 {
		t.Fatalf("threshold = %v, want ≈ 400", rule.Threshold)
	}
	if !rule.Usable() {
		t.Fatalf("clean rule should be usable: %+v", rule)
	}
}

func TestLearnInvertedDirection(t *testing.T) {
	rng := stats.NewRNG(2)
	attrs := make([]float64, 100)
	ops := make([]core.Opinion, 100)
	for i := range attrs {
		attrs[i] = rng.Float64() * 100
		if attrs[i] < 30 { // property applies BELOW the cut ("calm" cities)
			ops[i] = core.OpinionPositive
		} else {
			ops[i] = core.OpinionNegative
		}
	}
	rule, ok := Learn(attrs, ops)
	if !ok || rule.Direction != Below {
		t.Fatalf("rule = %+v ok=%v", rule, ok)
	}
	if rule.Threshold < 20 || rule.Threshold > 40 {
		t.Fatalf("threshold = %v, want ≈ 30", rule.Threshold)
	}
	if rule.Correlation >= 0 {
		t.Fatalf("correlation should be negative for a Below rule: %v", rule.Correlation)
	}
}

func TestLearnNoisyData(t *testing.T) {
	rng := stats.NewRNG(3)
	attrs := make([]float64, 300)
	ops := make([]core.Opinion, 300)
	for i := range attrs {
		attrs[i] = rng.Float64() * 1000
		truth := attrs[i] >= 500
		if rng.Bernoulli(0.1) {
			truth = !truth // 10% label noise
		}
		if truth {
			ops[i] = core.OpinionPositive
		} else {
			ops[i] = core.OpinionNegative
		}
	}
	rule, ok := Learn(attrs, ops)
	if !ok {
		t.Fatal("Learn failed")
	}
	if rule.Agreement < 0.85 {
		t.Fatalf("agreement = %v with 10%% noise", rule.Agreement)
	}
	if rule.Threshold < 350 || rule.Threshold > 650 {
		t.Fatalf("threshold = %v, want ≈ 500", rule.Threshold)
	}
}

func TestLearnIgnoresUnsolved(t *testing.T) {
	attrs := []float64{1, 2, 3, 10, 20, 30, 5}
	ops := []core.Opinion{
		core.OpinionNegative, core.OpinionNegative, core.OpinionNegative,
		core.OpinionPositive, core.OpinionPositive, core.OpinionPositive,
		core.OpinionUnsolved,
	}
	rule, ok := Learn(attrs, ops)
	if !ok {
		t.Fatal("Learn failed")
	}
	if rule.Support != 6 {
		t.Fatalf("support = %d, want 6 (unsolved excluded)", rule.Support)
	}
	if rule.Threshold < 3 || rule.Threshold > 10 {
		t.Fatalf("threshold = %v", rule.Threshold)
	}
}

func TestLearnDegenerateInputs(t *testing.T) {
	// Too few points.
	if _, ok := Learn([]float64{1, 2}, []core.Opinion{core.OpinionPositive, core.OpinionNegative}); ok {
		t.Fatal("Learn should fail on 2 points")
	}
	// All same opinion.
	attrs := []float64{1, 2, 3, 4, 5}
	allPos := make([]core.Opinion, 5)
	for i := range allPos {
		allPos[i] = core.OpinionPositive
	}
	if _, ok := Learn(attrs, allPos); ok {
		t.Fatal("Learn should fail when no boundary exists")
	}
	// Empty.
	if _, ok := Learn(nil, nil); ok {
		t.Fatal("Learn should fail on empty input")
	}
}

func TestRuleApplies(t *testing.T) {
	above := Rule{Threshold: 10, Direction: Above}
	if !above.Applies(10) || !above.Applies(11) || above.Applies(9) {
		t.Fatal("Above rule wrong")
	}
	below := Rule{Threshold: 10, Direction: Below}
	if below.Applies(10) || !below.Applies(9) {
		t.Fatal("Below rule wrong")
	}
}

func TestUsableThresholds(t *testing.T) {
	base := Rule{Threshold: 1, Direction: Above, Agreement: 0.9, Support: 50, Correlation: 0.7}
	if !base.Usable() {
		t.Fatal("strong rule should be usable")
	}
	weak := base
	weak.Agreement = 0.6
	if weak.Usable() {
		t.Fatal("low-agreement rule should not be usable")
	}
	small := base
	small.Support = 5
	if small.Usable() {
		t.Fatal("low-support rule should not be usable")
	}
	uncorr := base
	uncorr.Correlation = 0.05
	if uncorr.Usable() {
		t.Fatal("uncorrelated rule should not be usable")
	}
}

func TestRefineFlipsOnlyUncertain(t *testing.T) {
	rule := Rule{Threshold: 100, Direction: Above, Agreement: 0.95, Support: 50, Correlation: 0.8}
	attrs := []float64{500, 500, 10, 10}
	probs := []float64{0.99, 0.52, 0.48, 0.01}
	ops, changed := Refine(rule, attrs, probs, 0.1)
	// 0.99 stays positive (confident), 0.52 stays positive (rule agrees),
	// 0.48 flips to negative... rule says attr 10 < 100 -> negative, and
	// Decide(0.48) is already negative -> no change. 0.01 stays negative.
	if ops[0] != core.OpinionPositive || ops[1] != core.OpinionPositive ||
		ops[2] != core.OpinionNegative || ops[3] != core.OpinionNegative {
		t.Fatalf("opinions = %v", ops)
	}
	if changed != 0 {
		t.Fatalf("changed = %d, want 0 (rule agreed with the model)", changed)
	}

	// Now a case where the rule overrules an uncertain wrong lean.
	attrs = []float64{500}
	probs = []float64{0.45} // model leans negative, but attr is far above
	ops, changed = Refine(rule, attrs, probs, 0.1)
	if ops[0] != core.OpinionPositive || changed != 1 {
		t.Fatalf("ops=%v changed=%d", ops, changed)
	}
}

func TestRefineUnusableRuleIsNoop(t *testing.T) {
	rule := Rule{Threshold: 100, Direction: Above, Agreement: 0.5, Support: 3}
	probs := []float64{0.52, 0.48}
	ops, changed := Refine(rule, []float64{1000, 1000}, probs, 0.1)
	if changed != 0 {
		t.Fatalf("unusable rule changed %d opinions", changed)
	}
	if ops[0] != core.OpinionPositive || ops[1] != core.OpinionNegative {
		t.Fatalf("ops = %v", ops)
	}
}

func TestDirectionString(t *testing.T) {
	if Above.String() != ">=" || Below.String() != "<" {
		t.Fatal("Direction strings wrong")
	}
}

// Property: the learned rule's agreement is never below 1/2 (one of the
// two directions always gets at least half right), and the threshold lies
// strictly between the min and max attribute.
func TestLearnAgreementBoundProperty(t *testing.T) {
	f := func(raw []uint16, labels []bool) bool {
		n := len(raw)
		if len(labels) < n {
			n = len(labels)
		}
		attrs := make([]float64, n)
		ops := make([]core.Opinion, n)
		for i := 0; i < n; i++ {
			attrs[i] = float64(raw[i])
			if labels[i] {
				ops[i] = core.OpinionPositive
			} else {
				ops[i] = core.OpinionNegative
			}
		}
		rule, ok := Learn(attrs, ops)
		if !ok {
			return true
		}
		if rule.Agreement < 0.5-1e-12 {
			return false
		}
		min, max := math.Inf(1), math.Inf(-1)
		for _, a := range attrs {
			min = math.Min(min, a)
			max = math.Max(max, a)
		}
		return rule.Threshold > min-1e-9 && rule.Threshold < max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
