package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// Profiling bundles the standard Go profiling outputs of a run: a CPU
// profile, a heap profile written at stop, and a runtime execution trace.
// Empty paths disable the corresponding output. It replaces the ad-hoc
// flag handling that used to live in cmd/surveyor.
type Profiling struct {
	CPUProfile string // pprof CPU profile path
	MemProfile string // heap profile path, written at Stop
	Trace      string // runtime/trace path (go tool trace)
}

// Enabled reports whether any output is configured.
func (p Profiling) Enabled() bool {
	return p.CPUProfile != "" || p.MemProfile != "" || p.Trace != ""
}

// Start begins the configured profiles and returns a stop function that
// finishes them (stops the CPU profile and execution trace, then writes
// the heap profile). On error, anything already started is stopped before
// returning; the stop function is non-nil only on success.
func (p Profiling) Start() (stop func() error, err error) {
	var cpuFile, traceFile *os.File

	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if traceFile != nil {
			rtrace.Stop()
			traceFile.Close()
		}
	}

	if p.CPUProfile != "" {
		cpuFile, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if p.Trace != "" {
		traceFile, err = os.Create(p.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: execution trace: %w", err)
		}
		if err := rtrace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("obs: execution trace: %w", err)
		}
	}

	memPath := p.MemProfile
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if traceFile != nil {
			rtrace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("obs: heap profile: %w", err)
				}
			} else {
				runtime.GC() // settle the heap so the profile shows live objects
				if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = fmt.Errorf("obs: heap profile: %w", err)
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}, nil
}
