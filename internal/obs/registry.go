package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Registry holds the named metrics of one process. Metric handles are
// looked up (or created) once at setup time under a mutex; the recording
// methods on the handles are lock-free atomics, and every recording method
// is a no-op on a nil handle, so instrumented code pays a single branch
// when observability is disabled.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// metric is the common interface of the three kinds.
type metric interface {
	kind() MetricKind
	help() string
	snapshot(name string) Metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]metric{}}
}

// MetricKind discriminates Metric snapshots.
type MetricKind int

// Metric kinds.
const (
	KindCounter MetricKind = iota
	KindGauge
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	helpText string
	v        atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter. Zero on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) kind() MetricKind { return KindCounter }
func (c *Counter) help() string     { return c.helpText }
func (c *Counter) snapshot(name string) Metric {
	return Metric{Name: name, Help: c.helpText, Kind: KindCounter, Value: float64(c.v.Load())}
}

// Gauge is an atomic float64 value that may go up and down.
type Gauge struct {
	helpText string
	bits     atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add offsets the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge. Zero on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) kind() MetricKind { return KindGauge }
func (g *Gauge) help() string     { return g.helpText }
func (g *Gauge) snapshot(name string) Metric {
	return Metric{Name: name, Help: g.helpText, Kind: KindGauge, Value: g.Value()}
}

// Histogram is a fixed-bucket histogram. Bucket boundaries are inclusive
// upper bounds; one extra bucket catches everything above the last bound
// (the Prometheus +Inf bucket). Observe is lock-free: a binary search plus
// three atomic adds.
type Histogram struct {
	helpText string
	bounds   []float64 // sorted ascending, exclusive of +Inf
	counts   []atomic.Int64
	count    atomic.Int64
	sumBits  atomic.Uint64
}

// Observe records one sample. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; len(bounds) is the +Inf slot.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations. Zero on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. Zero on a nil histogram.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) kind() MetricKind { return KindHistogram }
func (h *Histogram) help() string     { return h.helpText }
func (h *Histogram) snapshot(name string) Metric {
	m := Metric{Name: name, Help: h.helpText, Kind: KindHistogram,
		Count: h.count.Load(), Sum: h.Sum()}
	m.Buckets = make([]Bucket, len(h.bounds)+1)
	for i := range h.bounds {
		m.Buckets[i] = Bucket{UpperBound: JSONFloat(h.bounds[i]), Count: h.counts[i].Load()}
	}
	m.Buckets[len(h.bounds)] = Bucket{
		UpperBound: JSONFloat(math.Inf(1)), Count: h.counts[len(h.bounds)].Load()}
	return m
}

// JSONFloat is a float64 whose JSON encoding survives non-finite values:
// encoding/json rejects bare Inf/NaN numbers, so they render as the
// strings "+Inf", "-Inf", "NaN" (the Prometheus spellings). Histogram
// overflow bounds and EM log-likelihoods need this.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return []byte(strconv.FormatFloat(v, 'g', -1, 64)), nil
}

// UnmarshalJSON implements json.Unmarshaler, accepting both spellings.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"+Inf"`:
		*f = JSONFloat(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = JSONFloat(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = JSONFloat(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(string(b), 64)
	if err != nil {
		return fmt.Errorf("obs: parse histogram bound %q: %w", b, err)
	}
	*f = JSONFloat(v)
	return nil
}

// Bucket is one histogram bucket in a snapshot: the count of samples in
// (previous bound, UpperBound].
type Bucket struct {
	UpperBound JSONFloat `json:"le"`
	Count      int64     `json:"count"`
}

// Metric is a point-in-time reading of one registered metric.
type Metric struct {
	Name    string     `json:"name"`
	Help    string     `json:"help,omitempty"`
	Kind    MetricKind `json:"-"`
	Value   float64    `json:"value,omitempty"`   // counter, gauge
	Buckets []Bucket   `json:"buckets,omitempty"` // histogram, non-cumulative
	Count   int64      `json:"count,omitempty"`   // histogram
	Sum     float64    `json:"sum,omitempty"`     // histogram
}

// Counter returns the counter registered under name, creating it with the
// given help text on first use. A nil registry returns a nil handle
// (whose methods are no-ops); registering a name that already holds a
// different metric kind panics — that is a programming error.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as counter, was %s", name, m.kind()))
		}
		return c
	}
	c := &Counter{helpText: help}
	r.metrics[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as gauge, was %s", name, m.kind()))
		}
		return g
	}
	g := &Gauge{helpText: help}
	r.metrics[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given inclusive upper bounds (which must be sorted strictly
// ascending) on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q re-registered as histogram, was %s", name, m.kind()))
		}
		return h
	}
	h := &Histogram{
		helpText: help,
		bounds:   append([]float64(nil), bounds...),
		counts:   make([]atomic.Int64, len(bounds)+1),
	}
	r.metrics[name] = h
	return h
}

// Snapshot reads every registered metric, sorted by name. Each individual
// value is an atomic read; the snapshot as a whole is not a cross-metric
// transaction (concurrent writers may land between reads), which is the
// standard contract for scrape-style metrics. A nil registry yields nil.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	handles := make([]metric, len(names))
	sort.Strings(names)
	for i, name := range names {
		handles[i] = r.metrics[name]
	}
	r.mu.Unlock()

	out := make([]Metric, len(names))
	for i, name := range names {
		out[i] = handles[i].snapshot(name)
	}
	return out
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE comment pairs, cumulative histogram
// buckets with an explicit +Inf bucket, _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.Snapshot() {
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, m.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		switch m.Kind {
		case KindHistogram:
			cum := int64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n",
					m.Name, formatLe(float64(b.UpperBound)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
				m.Name, formatValue(m.Sum), m.Name, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatLe renders a bucket bound the way Prometheus expects: "+Inf" for
// the overflow bucket, shortest round-trip decimal otherwise.
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
