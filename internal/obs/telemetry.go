// Telemetry frames: the cross-process half of the observability layer.
// A distributed worker runs its own RunObs and, after the all-or-nothing
// shard commit, ships one compact "SVTM" frame — its full metric
// snapshot, its collected spans, and a pair of clock-alignment anchors —
// appended after the store frame of the shard result. The frame is
// optional and version-gated: a worker with no RunObs ships nothing, and
// the coordinator treats a clean EOF after the store frame as "telemetry
// absent", so old and new processes interoperate in both directions.
//
// Frame body layout (on the internal/wire primitives; all integers
// unsigned varints unless noted):
//
//	telemetryVersion  uvarint (currently 1; unknown versions are rejected)
//	anchorJobReceived uvarint, nanoseconds on the worker clock
//	anchorCaptured    uvarint, nanoseconds on the worker clock
//	metricCount       uvarint, then per metric:
//	    kind     uvarint (0 counter, 1 gauge, 2 histogram)
//	    name     string  ≤ maxTelemetryLabel
//	    help     string  ≤ maxTelemetryHelp
//	    counter/gauge: valueBits uvarint (IEEE 754 bits)
//	    histogram:     count uvarint, sumBits uvarint, buckets uvarint
//	                   (≤ maxTelemetryBuckets, last bound must be +Inf,
//	                   bounds strictly ascending), then per bucket
//	                   ⟨boundBits uvarint, count uvarint⟩
//	spanCount         uvarint, then per span:
//	    name, cat  string ≤ maxTelemetryLabel
//	    tid        uvarint
//	    start, dur uvarint, nanoseconds on the worker clock
//	    argCount   uvarint ≤ maxSpanArgs, then per arg
//	               ⟨key string ≤ maxTelemetryLabel, value varint⟩
//
// Decoding follows the validated-decode discipline of the wire and dist
// codecs: every count is bounds-checked against a named limit and against
// the remaining body capacity before anything is allocated, string
// lengths are capped, and arbitrary bytes fail cleanly with an error —
// never a panic, never an unbounded allocation. FuzzTelemetryDecode holds
// the codec to that contract.
package obs

import (
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/wire/framing"
)

// TelemetryMagic marks a worker telemetry frame.
const TelemetryMagic = "SVTM"

// TelemetryVersion is the telemetry body format version this package
// emits. It is gated separately from the wire frame version so the frame
// envelope and the telemetry payload can evolve independently.
const TelemetryVersion = 1

// Telemetry format limits: what a coordinator will allocate on behalf of
// one worker's frame before its content has proven itself.
const (
	// maxTelemetryMetrics caps the metric snapshot size. A worker registers
	// a few dozen series; thousands is corruption.
	maxTelemetryMetrics = 1 << 12
	// maxTelemetryBuckets caps one histogram's bucket count (including the
	// +Inf bucket).
	maxTelemetryBuckets = 1 << 9
	// maxTelemetrySpans caps the span list; workers cap their own buffers
	// at PerWorkerCap per worker thread, far below this.
	maxTelemetrySpans = 1 << 20
	// maxSpanArgs caps one span's annotation count.
	maxSpanArgs = 1 << 6
	// maxTelemetryLabel caps metric names, span names/categories, and arg
	// keys. maxTelemetryHelp caps metric help strings.
	maxTelemetryLabel = 1 << 10
	maxTelemetryHelp  = 1 << 12
)

// ClockAnchor is the pair of worker-clock readings that lets the
// coordinator align a worker's span timestamps with its own clock: the
// reading when the worker began serving its job, and the reading when the
// telemetry snapshot was captured (just before shipping). The coordinator
// pairs them with its own job-send and result-receive readings and
// estimates the clock offset as the difference of interval midpoints —
// the classic NTP correction:
//
//	offset = (coordSend+coordRecv)/2 − (JobReceived+Captured)/2
type ClockAnchor struct {
	JobReceived time.Duration
	Captured    time.Duration
}

// Telemetry is one worker's shipped observability state: the full metric
// snapshot, every collected span, and the clock anchors. It is passive
// data — the coordinator absorbs it through RunObs.AbsorbShardTelemetry.
type Telemetry struct {
	Anchor  ClockAnchor
	Metrics []Metric
	Spans   []SpanEvent
}

// ShardTelemetry accumulates one worker's run telemetry for export. It is
// created when the worker starts serving a job (anchoring the clock) and
// exported once, after the shard result is shipped.
type ShardTelemetry struct {
	obs         *RunObs
	jobReceived time.Duration
}

// BeginShardTelemetry anchors the start of one worker's shard service.
// Nil (inert) when o is nil — a silent worker ships no telemetry frame.
func (o *RunObs) BeginShardTelemetry() *ShardTelemetry {
	if o == nil {
		return nil
	}
	return &ShardTelemetry{obs: o, jobReceived: o.clock().Now()}
}

// Export captures the worker's telemetry: the metric snapshot, the
// collected spans, and the closing clock anchor. Returns nil on a nil
// receiver, which callers treat as "ship nothing".
func (st *ShardTelemetry) Export() *Telemetry {
	if st == nil {
		return nil
	}
	o := st.obs
	return &Telemetry{
		Anchor:  ClockAnchor{JobReceived: st.jobReceived, Captured: o.clock().Now()},
		Metrics: o.Metrics.Snapshot(),
		Spans:   o.Tracer.Events(),
	}
}

// EncodeTelemetry writes one framed telemetry snapshot and returns the
// bytes written. Encoding the same telemetry always produces the same
// bytes: the metric snapshot is name-sorted and span args are key-sorted.
func EncodeTelemetry(w io.Writer, t *Telemetry) (int64, error) {
	e := framing.NewEncoder(256 + 64*len(t.Metrics) + 64*len(t.Spans))
	e.Uvarint(TelemetryVersion)
	e.Uvarint(uint64(t.Anchor.JobReceived))
	e.Uvarint(uint64(t.Anchor.Captured))
	e.Uvarint(uint64(len(t.Metrics)))
	for i := range t.Metrics {
		m := &t.Metrics[i]
		e.Uvarint(uint64(m.Kind))
		e.String(m.Name)
		e.String(m.Help)
		switch m.Kind {
		case KindHistogram:
			e.Uvarint(uint64(m.Count))
			e.Uvarint(math.Float64bits(m.Sum))
			e.Uvarint(uint64(len(m.Buckets)))
			for _, b := range m.Buckets {
				e.Uvarint(math.Float64bits(float64(b.UpperBound)))
				e.Uvarint(uint64(b.Count))
			}
		default:
			e.Uvarint(math.Float64bits(m.Value))
		}
	}
	e.Uvarint(uint64(len(t.Spans)))
	for i := range t.Spans {
		s := &t.Spans[i]
		e.String(s.Name)
		e.String(s.Cat)
		e.Uvarint(uint64(s.Tid))
		e.Uvarint(uint64(s.Start))
		e.Uvarint(uint64(s.Dur))
		e.Uvarint(uint64(len(s.Args)))
		for _, a := range s.Args {
			e.String(a.Key)
			e.Varint(a.Value)
		}
	}
	n, err := framing.WriteFrame(w, TelemetryMagic, e.Bytes())
	if err != nil {
		return n, fmt.Errorf("obs: write telemetry frame: %w", err)
	}
	return n, nil
}

// DecodeTelemetry reads one framed telemetry snapshot and returns it with
// the bytes consumed. A clean EOF before the first byte is returned as an
// unwrapped io.EOF — the "telemetry absent" signal that keeps the frame
// optional: a coordinator probing after the store frame of an old or
// silent worker sees the stream end instead of an error.
func DecodeTelemetry(r io.Reader) (*Telemetry, int64, error) {
	body, n, err := framing.ReadFrame(r, TelemetryMagic)
	if err != nil {
		if errors.Is(err, io.EOF) && n == 0 {
			return nil, 0, io.EOF //lint:allow errflow documented clean-EOF contract: telemetry frames are optional
		}
		return nil, n, fmt.Errorf("obs: read telemetry frame: %w", err)
	}
	t, bodyErr := DecodeTelemetryBody(body)
	if bodyErr != nil {
		return nil, n, bodyErr
	}
	return t, n, nil
}

// DecodeTelemetryBody parses a telemetry frame body, validating every
// count, length, and histogram shape before allocating for it.
func DecodeTelemetryBody(body []byte) (*Telemetry, error) {
	d := framing.NewDecoder(body)
	version := d.Uvarint()
	jobReceived := d.Uvarint()
	captured := d.Uvarint()
	metricCount := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("obs: decode telemetry header: %w", err)
	}
	if version != TelemetryVersion {
		return nil, fmt.Errorf("obs: unsupported telemetry version %d (want %d)", version, TelemetryVersion)
	}
	if jobReceived > math.MaxInt64 || captured > math.MaxInt64 {
		return nil, fmt.Errorf("obs: implausible telemetry clock anchor")
	}
	if metricCount > maxTelemetryMetrics {
		return nil, fmt.Errorf("obs: metric count %d exceeds limit %d", metricCount, maxTelemetryMetrics)
	}
	// A metric is at least four bytes (kind, two length prefixes, a value
	// varint), so the body bounds the plausible count.
	if metricCount > uint64(d.Remaining())/4+1 {
		return nil, fmt.Errorf("obs: metric count %d exceeds body capacity %d", metricCount, d.Remaining())
	}
	t := &Telemetry{Anchor: ClockAnchor{
		JobReceived: time.Duration(jobReceived),
		Captured:    time.Duration(captured),
	}}
	if metricCount > 0 {
		t.Metrics = make([]Metric, 0, metricCount)
	}
	for i := uint64(0); i < metricCount; i++ {
		m, err := decodeMetric(d)
		if err != nil {
			return nil, fmt.Errorf("obs: telemetry metric %d: %w", i, err)
		}
		t.Metrics = append(t.Metrics, m)
	}
	spanCount := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("obs: decode telemetry span count: %w", err)
	}
	if spanCount > maxTelemetrySpans {
		return nil, fmt.Errorf("obs: span count %d exceeds limit %d", spanCount, maxTelemetrySpans)
	}
	// A span is at least six bytes (two length prefixes, four varints).
	if spanCount > uint64(d.Remaining())/6+1 {
		return nil, fmt.Errorf("obs: span count %d exceeds body capacity %d", spanCount, d.Remaining())
	}
	if spanCount > 0 {
		t.Spans = make([]SpanEvent, 0, spanCount)
	}
	for i := uint64(0); i < spanCount; i++ {
		s, err := decodeSpan(d)
		if err != nil {
			return nil, fmt.Errorf("obs: telemetry span %d: %w", i, err)
		}
		t.Spans = append(t.Spans, s)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("obs: %d trailing bytes in telemetry frame", d.Remaining())
	}
	return t, nil
}

// decodeMetric parses one metric record.
func decodeMetric(d *framing.Decoder) (Metric, error) {
	kind := d.Uvarint()
	name := d.StringMax(maxTelemetryLabel)
	help := d.StringMax(maxTelemetryHelp)
	if err := d.Err(); err != nil {
		return Metric{}, err
	}
	m := Metric{Name: name, Help: help}
	switch MetricKind(kind) {
	case KindCounter, KindGauge:
		m.Kind = MetricKind(kind)
		m.Value = math.Float64frombits(d.Uvarint())
		if err := d.Err(); err != nil {
			return Metric{}, err
		}
	case KindHistogram:
		m.Kind = KindHistogram
		count := d.Uvarint()
		m.Sum = math.Float64frombits(d.Uvarint())
		buckets := d.Uvarint()
		if err := d.Err(); err != nil {
			return Metric{}, err
		}
		if count > math.MaxInt64 {
			return Metric{}, fmt.Errorf("histogram count %d overflows int64", count)
		}
		if buckets == 0 || buckets > maxTelemetryBuckets {
			return Metric{}, fmt.Errorf("histogram bucket count %d outside [1, %d]", buckets, maxTelemetryBuckets)
		}
		// A bucket is at least two bytes (bound bits + count varints).
		if buckets > uint64(d.Remaining())/2+1 {
			return Metric{}, fmt.Errorf("bucket count %d exceeds body capacity %d", buckets, d.Remaining())
		}
		m.Count = int64(count)
		m.Buckets = make([]Bucket, 0, buckets)
		prev := math.Inf(-1)
		for b := uint64(0); b < buckets; b++ {
			bound := math.Float64frombits(d.Uvarint())
			bcount := d.Uvarint()
			if err := d.Err(); err != nil {
				return Metric{}, err
			}
			if bcount > math.MaxInt64 {
				return Metric{}, fmt.Errorf("bucket count %d overflows int64", bcount)
			}
			if math.IsNaN(bound) || (b > 0 && bound <= prev) {
				return Metric{}, fmt.Errorf("histogram bounds not strictly ascending at bucket %d", b)
			}
			prev = bound
			m.Buckets = append(m.Buckets, Bucket{UpperBound: JSONFloat(bound), Count: int64(bcount)})
		}
		if !math.IsInf(prev, 1) {
			return Metric{}, fmt.Errorf("histogram last bound %v is not +Inf", prev)
		}
	default:
		return Metric{}, fmt.Errorf("unknown metric kind %d", kind)
	}
	return m, nil
}

// decodeSpan parses one span record.
func decodeSpan(d *framing.Decoder) (SpanEvent, error) {
	s := SpanEvent{
		Name: d.StringMax(maxTelemetryLabel),
		Cat:  d.StringMax(maxTelemetryLabel),
	}
	tid := d.Uvarint()
	start := d.Uvarint()
	dur := d.Uvarint()
	argCount := d.Uvarint()
	if err := d.Err(); err != nil {
		return SpanEvent{}, err
	}
	if tid > math.MaxInt32 {
		return SpanEvent{}, fmt.Errorf("implausible tid %d", tid)
	}
	if start > math.MaxInt64 || dur > math.MaxInt64 {
		return SpanEvent{}, fmt.Errorf("span timestamp overflows int64")
	}
	if argCount > maxSpanArgs {
		return SpanEvent{}, fmt.Errorf("span arg count %d exceeds limit %d", argCount, maxSpanArgs)
	}
	s.Tid = int64(tid)
	s.Start, s.Dur = time.Duration(start), time.Duration(dur)
	if argCount > 0 {
		s.Args = make([]SpanArg, 0, argCount)
	}
	for a := uint64(0); a < argCount; a++ {
		key := d.StringMax(maxTelemetryLabel)
		val := d.Varint()
		if err := d.Err(); err != nil {
			return SpanEvent{}, err
		}
		s.Args = append(s.Args, SpanArg{Key: key, Value: val})
	}
	return s, nil
}
