package obs

import (
	"testing"
	"time"
)

// TestNilRunObsStillMeasures: a nil RunObs must support the full pipeline
// call sequence — and Phase spans still return real durations, because
// Result.Timings needs them with observability off.
func TestNilRunObsStillMeasures(t *testing.T) {
	var o *RunObs
	o.StartRun(10, 2)
	span := o.Phase("extract")
	w := o.Worker(0)
	w.DocStart()
	w.DocEnd(0, 1, 1)
	w.Close("extract")
	pm := o.PipelineMetrics()
	pm.Documents.Add(1)
	pm.DocSentences.Observe(3)
	if g := o.Grouping(); g != nil {
		t.Error("nil RunObs Grouping() must be nil")
	}
	if eg := o.EMGroup("t", "p", 1); eg != nil {
		t.Error("nil RunObs EMGroup() must be nil")
	}
	if d := span.End(); d < 0 {
		t.Errorf("span duration = %v", d)
	}
	o.EndRun()
}

// TestPhaseDurationUsesInjectedClock: the RunObs clock is the single time
// source for phase spans.
func TestPhaseDurationUsesInjectedClock(t *testing.T) {
	clock := &ManualClock{}
	o := &RunObs{Clock: clock}
	span := o.Phase("em")
	clock.Advance(250 * time.Millisecond)
	if d := span.End(); d != 250*time.Millisecond {
		t.Errorf("duration = %v, want 250ms", d)
	}
}

// TestNewWiresSharedClock: New gives every component the same clock.
func TestNewWiresSharedClock(t *testing.T) {
	o := New()
	if o.Metrics == nil || o.Tracer == nil || o.EM == nil || o.Progress == nil || o.Clock == nil {
		t.Fatalf("New left components nil: %+v", o)
	}
	if o.Tracer.clock != o.Clock || o.Progress.clock != o.Clock {
		t.Error("tracer/progress do not share the RunObs clock")
	}
}

// TestPipelineMetricsIdempotent: resolving the inventory twice returns the
// same underlying handles (same registry entries).
func TestPipelineMetricsIdempotent(t *testing.T) {
	o := &RunObs{Metrics: NewRegistry()}
	a := o.PipelineMetrics()
	b := o.PipelineMetrics()
	a.Documents.Add(2)
	if b.Documents.Value() != 2 {
		t.Error("PipelineMetrics resolved different counter handles")
	}
}

// TestGroupingCounters: the grouping handles register and count.
func TestGroupingCounters(t *testing.T) {
	o := &RunObs{Metrics: NewRegistry()}
	g := o.Grouping()
	if g == nil {
		t.Fatal("Grouping() = nil with a live registry")
	}
	g.PairsScanned.Add(5)
	g.GroupsKept.Inc()
	g.GroupsFiltered.Add(2)
	if g.PairsScanned.Value() != 5 || g.GroupsKept.Value() != 1 || g.GroupsFiltered.Value() != 2 {
		t.Errorf("grouping counters = %d/%d/%d",
			g.PairsScanned.Value(), g.GroupsKept.Value(), g.GroupsFiltered.Value())
	}
}
