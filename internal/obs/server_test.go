package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func populatedRunObs() *RunObs {
	clock := &ManualClock{}
	o := &RunObs{
		Metrics:  NewRegistry(),
		Tracer:   NewTracer(clock),
		EM:       NewEMRecorder(),
		Progress: NewProgress(clock),
		Clock:    clock,
	}
	o.StartRun(4, 1)
	pm := o.PipelineMetrics()
	span := o.Phase("extract")
	w := o.Worker(0)
	w.DocStart()
	clock.Advance(time.Millisecond)
	w.DocEnd(0, 2, 1)
	w.Close("extract")
	pm.Documents.Add(4)
	span.End()
	g := o.EMGroup("city", "big", 3)
	g.Iter(0.8, 1, 0.5, -10)
	g.Done(1, true, -10)
	pm.EMIterations.Observe(1)
	o.EndRun()
	return o
}

func get(t *testing.T, srv *httptest.Server, path string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(body), resp
}

func TestDebugEndpoints(t *testing.T) {
	o := populatedRunObs()
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	body, resp := get(t, srv, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE surveyor_documents_total counter",
		"surveyor_documents_total 4",
		`surveyor_em_iterations_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	body, _ = get(t, srv, "/progress")
	var ps ProgressSnapshot
	if err := json.Unmarshal([]byte(body), &ps); err != nil {
		t.Fatalf("/progress: %v", err)
	}
	if ps.DocumentsProcessed != 1 || ps.DocumentsTotal != 4 || ps.Running {
		t.Errorf("/progress = %+v", ps)
	}

	body, _ = get(t, srv, "/trace")
	var tf chromeFile
	if err := json.Unmarshal([]byte(body), &tf); err != nil {
		t.Fatalf("/trace: %v", err)
	}
	if len(tf.TraceEvents) != 3 {
		t.Errorf("/trace has %d events, want 3", len(tf.TraceEvents))
	}

	body, _ = get(t, srv, "/em")
	var es EMSnapshot
	if err := json.Unmarshal([]byte(body), &es); err != nil {
		t.Fatalf("/em: %v", err)
	}
	if es.Groups != 1 || es.Converged != 1 {
		t.Errorf("/em = %+v", es)
	}

	body, _ = get(t, srv, "/healthz")
	if strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %q", body)
	}

	body, _ = get(t, srv, "/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if _, ok := vars["surveyor_metrics"]; !ok {
		t.Error("/debug/vars missing surveyor_metrics")
	}
	if _, ok := vars["surveyor_progress"]; !ok {
		t.Error("/debug/vars missing surveyor_progress")
	}

	if body, _ = get(t, srv, "/"); !strings.Contains(body, "/debug/pprof/") {
		t.Error("index page missing pprof link")
	}
	if _, resp = get(t, srv, "/nonexistent"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
	if body, _ = get(t, srv, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("pprof index not served")
	}
}

func TestStartDebugServer(t *testing.T) {
	o := populatedRunObs()
	ds, err := StartDebugServer("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	resp, err := http.Get("http://" + ds.Addr + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
	if err := ds.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	var nilServer *DebugServer
	if err := nilServer.Close(); err != nil {
		t.Errorf("nil server close: %v", err)
	}
}

func TestHealthzDegraded(t *testing.T) {
	o := populatedRunObs()
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	if body, _ := get(t, srv, "/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy run: /healthz = %q", body)
	}
	o.PipelineMetrics().QuarantinedDocs.Add(3)
	body, resp := get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("degraded /healthz status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, "degraded") || !strings.Contains(body, "quarantined_docs=3") {
		t.Errorf("/healthz = %q, want degraded with quarantine count", body)
	}
	o.PipelineMetrics().SkippedLines.Add(7)
	if body, _ := get(t, srv, "/healthz"); !strings.Contains(body, "skipped_lines=7") {
		t.Errorf("/healthz = %q, want skipped-line count", body)
	}
}

// TestHealthzDegradedOnFailedShards: lost distributed shards degrade
// /healthz (still HTTP 200) exactly like quarantines and skipped lines.
func TestHealthzDegradedOnFailedShards(t *testing.T) {
	o := populatedRunObs()
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	if body, _ := get(t, srv, "/healthz"); strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthy run: /healthz = %q", body)
	}
	o.Dist().ShardsFailed.Add(2)
	body, resp := get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("degraded /healthz status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(body, "degraded") || !strings.Contains(body, "failed_shards=2") {
		t.Errorf("/healthz = %q, want degraded with failed-shard count", body)
	}
}

// TestClusterEndpoint: /cluster serves the coordinator's fleet view.
func TestClusterEndpoint(t *testing.T) {
	o := populatedRunObs()
	o.Cluster = NewCluster(o.Clock)
	o.Cluster.StartRun(2)
	o.Cluster.JobSent(0, 10, 0)
	o.Cluster.ShardWire(0, 128, 0)
	o.Cluster.ResultReceived(0, 256)
	o.Cluster.ShardCommitted(0, 10, 1, 0.5)
	o.Cluster.TelemetryAbsorbed(0, 7, time.Millisecond)
	o.Cluster.ShardFailed(1, io.ErrUnexpectedEOF)
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()

	body, resp := get(t, srv, "/cluster")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/cluster content type = %q", ct)
	}
	var snap ClusterSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/cluster: %v", err)
	}
	if snap.Workers != 2 || snap.ShardsDone != 1 || snap.ShardsLost != 1 {
		t.Errorf("/cluster summary = %+v", snap)
	}
	if s := snap.Shards[0]; s.Status != ShardDone || s.Spans != 7 || s.Telemetry != "ok" ||
		s.WireBytesOut != 128 || s.WireBytesIn != 256 {
		t.Errorf("/cluster shard 0 = %+v", s)
	}
	if s := snap.Shards[1]; s.Status != ShardLost || s.Failure == "" {
		t.Errorf("/cluster shard 1 = %+v", s)
	}

	if body, _ := get(t, srv, "/"); !strings.Contains(body, "/cluster") {
		t.Error("index page missing /cluster link")
	}
}

// TestBuildInfoMetric: RegisterBuildInfo publishes the build-identification
// gauge on /metrics.
func TestBuildInfoMetric(t *testing.T) {
	o := populatedRunObs()
	o.RegisterBuildInfo()
	srv := httptest.NewServer(Handler(o))
	defer srv.Close()
	body, _ := get(t, srv, "/metrics")
	if !strings.Contains(body, MetricBuildInfo+" 1") {
		t.Errorf("/metrics missing %s gauge in:\n%s", MetricBuildInfo, body)
	}
	bi := ReadBuild()
	if bi.GoVersion == "" || bi.Version == "" || bi.Revision == "" {
		t.Errorf("ReadBuild left fields empty: %+v", bi)
	}
}

// TestCloseGraceful asserts Close lets an in-flight scrape finish instead
// of dropping the connection: a pprof CPU profile held open across Close
// must still complete with a full response.
func TestCloseGraceful(t *testing.T) {
	ds, err := StartDebugServer("127.0.0.1:0", populatedRunObs())
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		status int
		err    error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ds.Addr + "/debug/pprof/profile?seconds=1")
		if err != nil {
			done <- result{err: err}
			return
		}
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		done <- result{status: resp.StatusCode, err: err}
	}()
	time.Sleep(100 * time.Millisecond) // let the scrape reach the handler
	if err := ds.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	r := <-done
	if r.err != nil || r.status != http.StatusOK {
		t.Errorf("in-flight scrape dropped by Close: status %d, err %v", r.status, r.err)
	}
}

func TestHandlerWithNilRunObs(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/progress", "/trace", "/em", "/healthz"} {
		_, resp := get(t, srv, path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with nil RunObs: status %d", path, resp.StatusCode)
		}
	}
}
