package obs

import (
	"errors"
	"testing"
	"time"
)

// TestClusterLifecycle walks one shard through the full protocol and one
// through failure, asserting the snapshot reflects each transition.
func TestClusterLifecycle(t *testing.T) {
	c := NewCluster(&ManualClock{})
	c.StartRun(3)

	snap := c.Snapshot()
	if snap.Workers != 3 {
		t.Fatalf("workers = %d, want 3", snap.Workers)
	}
	for s, v := range snap.Shards {
		if v.Status != ShardPending {
			t.Fatalf("shard %d before dispatch: status %q", s, v.Status)
		}
	}

	c.JobSent(0, 25, 100)
	if v := c.Snapshot().Shards[0]; v.Status != ShardMining || v.Docs != 25 || v.WireBytesOut != 100 {
		t.Fatalf("after JobSent: %+v", v)
	}

	c.ShardWire(0, 28, 0)
	c.ResultReceived(0, 512)
	c.ShardWire(0, 0, 64)
	c.ShardCommitted(0, 24, 1, 1.25)
	c.TelemetryAbsorbed(0, 9, 2*time.Millisecond)

	c.JobSent(1, 10, 50)
	c.ShardFailed(1, errors.New("worker exploded"))
	c.TelemetryMissing(1, "absent")

	snap = c.Snapshot()
	if snap.ShardsDone != 1 || snap.ShardsLost != 1 {
		t.Fatalf("summary = %+v", snap)
	}
	if snap.WireBytesOut != 178 || snap.WireBytesIn != 576 {
		t.Fatalf("wire totals out=%d in=%d, want 178/576", snap.WireBytesOut, snap.WireBytesIn)
	}
	v0 := snap.Shards[0]
	if v0.Status != ShardDone || v0.Consumed != 24 || v0.Quarantined != 1 ||
		v0.MergeMillis != 1.25 || v0.Spans != 9 || v0.SkewMillis != 2 || v0.Telemetry != "ok" {
		t.Errorf("shard 0 = %+v", v0)
	}
	v1 := snap.Shards[1]
	if v1.Status != ShardLost || v1.Failure != "worker exploded" || v1.Telemetry != "absent" {
		t.Errorf("shard 1 = %+v", v1)
	}
	if v2 := snap.Shards[2]; v2.Status != ShardPending {
		t.Errorf("shard 2 = %+v", v2)
	}

	if got := snap.String(); got != "workers=3 done=1 lost=1 wire_out=178 wire_in=576" {
		t.Errorf("String() = %q", got)
	}
}

// TestClusterSkewOffset checks the NTP-midpoint correction against a
// constructed skew: the worker clock runs 10ms ahead of the coordinator,
// so the estimated worker→coordinator offset is -10ms.
func TestClusterSkewOffset(t *testing.T) {
	clock := &ManualClock{}
	c := NewCluster(clock)
	c.StartRun(1)

	clock.Advance(100 * time.Millisecond)
	c.JobSent(0, 1, 0) // coordinator anchor: sent at 100ms

	// Worker observes [112ms, 148ms] on its own clock — the same window
	// the coordinator sees as [100ms, 160ms], shifted +10ms and nested
	// 2ms/12ms inside it.
	anchor := ClockAnchor{
		JobReceived: 112 * time.Millisecond,
		Captured:    148 * time.Millisecond,
	}
	clock.Advance(60 * time.Millisecond)
	c.ResultReceived(0, 0) // coordinator anchor: received at 160ms

	offset, ok := c.skewOffset(0, anchor)
	if !ok {
		t.Fatal("skewOffset not ok with both anchor pairs present")
	}
	if offset != 0 { // midpoints: coord (100+160)/2 = 130, worker (112+148)/2 = 130
		t.Fatalf("symmetric window: offset = %v, want 0", offset)
	}

	// Shift the worker clock 10ms ahead: its midpoint moves to 140ms.
	anchor.JobReceived += 10 * time.Millisecond
	anchor.Captured += 10 * time.Millisecond
	offset, ok = c.skewOffset(0, anchor)
	if !ok || offset != -10*time.Millisecond {
		t.Fatalf("offset = %v ok=%v, want -10ms", offset, ok)
	}
}

// TestClusterSkewOffsetIncomplete: missing coordinator anchors disable
// skew correction rather than producing a garbage offset.
func TestClusterSkewOffsetIncomplete(t *testing.T) {
	c := NewCluster(&ManualClock{})
	c.StartRun(2)
	if _, ok := c.skewOffset(0, ClockAnchor{}); ok {
		t.Error("skewOffset ok before any anchor")
	}
	c.JobSent(0, 1, 0)
	if _, ok := c.skewOffset(0, ClockAnchor{}); ok {
		t.Error("skewOffset ok with only the send anchor")
	}
	if _, ok := c.skewOffset(7, ClockAnchor{}); ok {
		t.Error("skewOffset ok for an out-of-range shard")
	}
}

// TestClusterNilAndUnstarted: every method is a no-op on a nil cluster,
// and recording against a never-started or out-of-range shard is ignored.
func TestClusterNilAndUnstarted(t *testing.T) {
	var c *Cluster
	c.StartRun(2)
	c.JobSent(0, 1, 1)
	c.ShardWire(0, 1, 1)
	c.ResultReceived(0, 1)
	c.ShardCommitted(0, 1, 0, 0)
	c.ShardFailed(0, errors.New("x"))
	c.TelemetryAbsorbed(0, 1, 0)
	c.TelemetryMissing(0, "absent")
	if snap := c.Snapshot(); snap.Workers != 0 || snap.Shards != nil {
		t.Errorf("nil cluster snapshot = %+v", snap)
	}
	if _, ok := c.skewOffset(0, ClockAnchor{}); ok {
		t.Error("nil cluster skewOffset ok")
	}

	fresh := NewCluster(nil)
	fresh.JobSent(0, 1, 1) // before StartRun: no shard records exist
	if snap := fresh.Snapshot(); snap.Workers != 0 || snap.Shards != nil {
		t.Errorf("unstarted cluster snapshot = %+v", snap)
	}

	started := NewCluster(nil)
	started.StartRun(1)
	started.JobSent(5, 1, 1) // out of range: ignored
	if snap := started.Snapshot(); snap.Shards[0].Status != ShardPending {
		t.Errorf("out-of-range write mutated shard 0: %+v", snap.Shards[0])
	}
}
