package obs

import (
	"testing"
	"time"
)

func TestProgressSnapshotMath(t *testing.T) {
	clock := &ManualClock{}
	p := NewProgress(clock)
	p.startRun(10, 2)
	p.setPhase("extract")
	p.worker(0).AddDoc(3, 2)
	p.worker(0).AddDoc(1, 0)
	p.worker(1).AddDoc(4, 5)
	clock.Advance(2 * time.Second)

	snap := p.Snapshot()
	if snap.Phase != "extract" || !snap.Running {
		t.Errorf("phase/running = %q/%v", snap.Phase, snap.Running)
	}
	if snap.DocumentsTotal != 10 || snap.DocumentsProcessed != 3 {
		t.Errorf("documents = %d/%d, want 3/10", snap.DocumentsProcessed, snap.DocumentsTotal)
	}
	if snap.Sentences != 8 || snap.Statements != 7 {
		t.Errorf("sentences/statements = %d/%d, want 8/7", snap.Sentences, snap.Statements)
	}
	if snap.ElapsedSeconds != 2 || snap.DocsPerSec != 1.5 || snap.SentencesPerSec != 4 {
		t.Errorf("rates = %g s, %g docs/s, %g sents/s", snap.ElapsedSeconds, snap.DocsPerSec, snap.SentencesPerSec)
	}
	if len(snap.Workers) != 2 || snap.Workers[1].Documents != 1 {
		t.Errorf("workers = %+v", snap.Workers)
	}

	p.endRun()
	if p.Snapshot().Running {
		t.Error("still running after endRun")
	}
}

func TestProgressRestartResets(t *testing.T) {
	p := NewProgress(&ManualClock{})
	p.startRun(5, 1)
	p.worker(0).AddDoc(1, 1)
	p.startRun(7, 1)
	snap := p.Snapshot()
	if snap.DocumentsTotal != 7 || snap.DocumentsProcessed != 0 {
		t.Errorf("second run snapshot = %+v, want fresh counters", snap)
	}
}

func TestProgressOutOfRangeWorker(t *testing.T) {
	p := NewProgress(&ManualClock{})
	p.startRun(1, 1)
	if p.worker(-1) != nil || p.worker(5) != nil {
		t.Error("out-of-range worker ids must yield nil (inert) slots")
	}
	p.worker(5).AddDoc(1, 1) // must not panic
}

func TestNilProgress(t *testing.T) {
	var p *Progress
	p.startRun(1, 1)
	p.setPhase("x")
	p.worker(0).AddDoc(1, 1)
	p.endRun()
	if snap := p.Snapshot(); snap.Running || snap.DocumentsTotal != 0 {
		t.Errorf("nil progress snapshot = %+v", snap)
	}
}
