package obs

import (
	"math"
	"sort"
	"sync"
)

// EMRecorder collects convergence telemetry from the per-group EM fits:
// iterations-to-convergence and final log-likelihood for every group, and
// full per-iteration trajectories (log-likelihood plus the pA, np+S, np−S
// parameter path) for a deterministically sampled subset, so that large
// runs stay bounded while the Sevüktekin–Singer-style likelihood
// trajectories remain inspectable.
//
// Group selection for full trajectories is by hash of the (type,
// property) key — independent of scheduling — with a hard cap on both the
// number of trajectories and the number of per-group summary rows.
type EMRecorder struct {
	// MaxTrajectories caps the groups whose full per-iteration trajectory
	// is kept (hash-sampled). Set before the run; default 64.
	MaxTrajectories int
	// MaxGroups caps the per-group summary rows; aggregate counters keep
	// counting beyond it. Default 4096.
	MaxGroups int
	// SampleBits selects roughly 1/2^SampleBits of groups for full
	// trajectories by key hash (0 = every group, subject to the cap).
	SampleBits uint

	mu           sync.Mutex
	groups       []EMGroupRecord
	trajectories int
	totalGroups  int64
	totalIters   int64
	converged    int64
}

// NewEMRecorder returns a recorder with the default caps.
func NewEMRecorder() *EMRecorder {
	return &EMRecorder{MaxTrajectories: 64, MaxGroups: 4096}
}

// EMIteration is one EM iteration's state in a recorded trajectory.
type EMIteration struct {
	LogLikelihood JSONFloat `json:"log_likelihood"`
	PA            float64   `json:"pa"`
	NpPlus        float64   `json:"np_plus"`
	NpMinus       float64   `json:"np_minus"`
	// Deltas are the absolute parameter changes against the previous
	// iteration (zero on the first).
	DeltaPA      float64 `json:"delta_pa"`
	DeltaNpPlus  float64 `json:"delta_np_plus"`
	DeltaNpMinus float64 `json:"delta_np_minus"`
}

// EMGroupRecord is the telemetry of one (type, property) fit.
type EMGroupRecord struct {
	Type               string        `json:"type"`
	Property           string        `json:"property"`
	Entities           int           `json:"entities"`
	Iterations         int           `json:"iterations"`
	Converged          bool          `json:"converged"`
	FinalLogLikelihood JSONFloat     `json:"final_log_likelihood"`
	Trajectory         []EMIteration `json:"trajectory,omitempty"`
}

// EMGroupObs accumulates one group's fit, worker-locally, then publishes
// it with Done. Obtained from RunObs.EMGroup; nil-safe throughout.
type EMGroupObs struct {
	rec    *EMRecorder
	record EMGroupRecord
	keep   bool // full trajectory wanted for this group
}

// Group starts recording one group's fit. The trajectory is kept only for
// hash-sampled groups (and only while the trajectory cap has room).
func (r *EMRecorder) Group(typ, property string, entities int) *EMGroupObs {
	if r == nil {
		return nil
	}
	g := &EMGroupObs{rec: r, record: EMGroupRecord{Type: typ, Property: property, Entities: entities}}
	if keyHash(typ, property)>>(64-minBits(r.SampleBits)) == 0 {
		r.mu.Lock()
		g.keep = r.trajectories < r.maxTrajectories()
		r.mu.Unlock()
	}
	return g
}

func minBits(b uint) uint {
	if b > 63 {
		return 63
	}
	return b
}

func (r *EMRecorder) maxTrajectories() int {
	if r.MaxTrajectories <= 0 {
		return 64
	}
	return r.MaxTrajectories
}

func (r *EMRecorder) maxGroups() int {
	if r.MaxGroups <= 0 {
		return 4096
	}
	return r.MaxGroups
}

// keyHash is FNV-1a over the group key, with a separator so ("ab","c")
// and ("a","bc") differ, finished with the splitmix64 avalanche: bare
// FNV-1a leaves the high bits (which the sampler reads) nearly constant
// for short keys.
func keyHash(typ, property string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(typ); i++ {
		h = (h ^ uint64(typ[i])) * 0x100000001b3
	}
	h = (h ^ 0xff) * 0x100000001b3
	for i := 0; i < len(property); i++ {
		h = (h ^ uint64(property[i])) * 0x100000001b3
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Iter records one EM iteration. No-op unless this group's trajectory is
// being kept.
func (g *EMGroupObs) Iter(pa, npPlus, npMinus, logLikelihood float64) {
	if g == nil || !g.keep {
		return
	}
	it := EMIteration{LogLikelihood: JSONFloat(logLikelihood), PA: pa, NpPlus: npPlus, NpMinus: npMinus}
	if n := len(g.record.Trajectory); n > 0 {
		prev := g.record.Trajectory[n-1]
		it.DeltaPA = math.Abs(pa - prev.PA)
		it.DeltaNpPlus = math.Abs(npPlus - prev.NpPlus)
		it.DeltaNpMinus = math.Abs(npMinus - prev.NpMinus)
	}
	g.record.Trajectory = append(g.record.Trajectory, it)
}

// Done publishes the group's record with its final fit summary.
func (g *EMGroupObs) Done(iterations int, converged bool, finalLogLikelihood float64) {
	if g == nil {
		return
	}
	g.record.Iterations = iterations
	g.record.Converged = converged
	g.record.FinalLogLikelihood = JSONFloat(finalLogLikelihood)

	r := g.rec
	r.mu.Lock()
	defer r.mu.Unlock()
	r.totalGroups++
	r.totalIters += int64(iterations)
	if converged {
		r.converged++
	}
	if g.keep && r.trajectories >= r.maxTrajectories() {
		g.record.Trajectory = nil // cap raced; drop the trajectory, keep the summary
		g.keep = false
	}
	if g.keep {
		r.trajectories++
	}
	if len(r.groups) < r.maxGroups() {
		r.groups = append(r.groups, g.record)
	}
}

// EMSnapshot is the recorder's state at a point in time.
type EMSnapshot struct {
	Groups          int64           `json:"groups"`
	Converged       int64           `json:"converged"`
	TotalIterations int64           `json:"total_iterations"`
	MeanIterations  float64         `json:"mean_iterations"`
	Records         []EMGroupRecord `json:"records,omitempty"`
}

// Snapshot returns the aggregate statistics plus the per-group records,
// sorted by (type, property) for deterministic output. A nil recorder
// yields a zero snapshot.
func (r *EMRecorder) Snapshot() EMSnapshot {
	if r == nil {
		return EMSnapshot{}
	}
	r.mu.Lock()
	snap := EMSnapshot{
		Groups:          r.totalGroups,
		Converged:       r.converged,
		TotalIterations: r.totalIters,
		Records:         make([]EMGroupRecord, len(r.groups)),
	}
	copy(snap.Records, r.groups)
	r.mu.Unlock()
	if snap.Groups > 0 {
		snap.MeanIterations = float64(snap.TotalIterations) / float64(snap.Groups)
	}
	sort.Slice(snap.Records, func(a, b int) bool {
		if snap.Records[a].Type != snap.Records[b].Type {
			return snap.Records[a].Type < snap.Records[b].Type
		}
		return snap.Records[a].Property < snap.Records[b].Property
	})
	return snap
}
