package obs

// IncrementalObs is the write-only counter set of the incremental miner
// (internal/incremental): per-epoch dirty-group volume, re-fit work, and
// latency. Like every obs surface it is strictly write-only from the
// miner's perspective — epochs with a live sink publish snapshots
// bit-identical to epochs with a nil one.
type IncrementalObs struct {
	// Epochs counts ingested epochs.
	Epochs *Counter // surveyor_epochs_total
	// DirtyGroups counts (type, property) groups whose counters changed,
	// summed over epochs; the per-epoch distribution is in DirtyPerEpoch.
	DirtyGroups   *Counter   // surveyor_epoch_dirty_groups_total
	DirtyPerEpoch *Histogram // surveyor_epoch_dirty_groups
	// RefitGroups and RefitTuples count the EM re-fit work actually done:
	// dirty groups at or above rho, and the entity tuples their fits
	// processed. RefitTuples versus the corpus-wide tuple count is the
	// proportionality statistic of the incremental differential suite.
	RefitGroups *Counter // surveyor_epoch_refit_groups_total
	RefitTuples *Counter // surveyor_epoch_refit_tuples_total
	// RefitFraction is the last epoch's refit-groups / modelled-groups
	// ratio — the live "how incremental was that" gauge.
	RefitFraction *Gauge // surveyor_epoch_refit_fraction
	// EpochMillis is the end-to-end epoch latency distribution (extract,
	// merge, re-fit, splice, publish).
	EpochMillis *Histogram // surveyor_epoch_latency_ms
}

// defaultEpochMillisBounds spans interactive replays (sub-millisecond
// epochs on test corpora) through production-sized batches.
var defaultEpochMillisBounds = []float64{1, 5, 25, 100, 500, 2500, 10000, 60000}

// defaultDirtyGroupBounds covers dirty-set sizes from a single touched
// group to full-corpus churn.
var defaultDirtyGroupBounds = []float64{1, 2, 5, 10, 25, 50, 100, 250, 1000}

// Incremental resolves the incremental miner's metric inventory on the
// RunObs registry. With a nil RunObs or registry every handle is nil and
// recording is free.
func (o *RunObs) Incremental() *IncrementalObs {
	var r *Registry
	if o != nil {
		r = o.Metrics
	}
	return &IncrementalObs{
		Epochs: r.Counter("surveyor_epochs_total", "corpus epochs ingested by the incremental miner"),
		DirtyGroups: r.Counter("surveyor_epoch_dirty_groups_total",
			"(type, property) groups whose counters changed, summed over epochs"),
		DirtyPerEpoch: r.Histogram("surveyor_epoch_dirty_groups",
			"dirty (type, property) groups per epoch", defaultDirtyGroupBounds),
		RefitGroups: r.Counter("surveyor_epoch_refit_groups_total",
			"modelled groups re-fitted with EM, summed over epochs"),
		RefitTuples: r.Counter("surveyor_epoch_refit_tuples_total",
			"entity tuples processed by epoch re-fits"),
		RefitFraction: r.Gauge("surveyor_epoch_refit_fraction",
			"last epoch's re-fitted share of modelled groups"),
		EpochMillis: r.Histogram("surveyor_epoch_latency_ms",
			"end-to-end epoch latency in milliseconds", defaultEpochMillisBounds),
	}
}
