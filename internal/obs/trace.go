package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects complete ("ph":"X") spans for phases, workers, and
// sampled per-document loops, and exports them as Chrome trace-event JSON
// — the format Perfetto and chrome://tracing load directly.
//
// Phase spans are appended under a mutex (there are a handful per run).
// Worker-loop spans are buffered in worker-owned WorkerTrace slices and
// folded in once per worker, so the hot path never contends on the
// tracer. Event volume is bounded: each worker keeps at most PerWorkerCap
// document spans (beyond that only the drop counter moves), and DocSample
// records every Nth document.
type Tracer struct {
	clock Clock

	// DocSample records one document span per this many documents per
	// worker (1 = every document). Set before the run starts.
	DocSample int
	// PerWorkerCap bounds the document spans buffered per worker.
	PerWorkerCap int

	mu      sync.Mutex
	events  []traceEvent
	procs   map[int]string // foreign pid → process label, for trace metadata
	dropped atomic.Int64
}

const (
	defaultDocSample    = 1
	defaultPerWorkerCap = 1 << 13
)

// NewTracer returns a tracer reading timestamps from clock (nil selects
// the shared system clock).
func NewTracer(clock Clock) *Tracer {
	return &Tracer{
		clock:        clockOrDefault(clock),
		DocSample:    defaultDocSample,
		PerWorkerCap: defaultPerWorkerCap,
	}
}

// traceEvent is one complete span in the Chrome trace-event model.
type traceEvent struct {
	name     string
	cat      string
	pid      int // 0 renders as CoordinatorPid (the local process)
	tid      int64
	start    time.Duration
	duration time.Duration
	args     map[string]int64
}

// tid values: phases render on thread 0, worker w on thread w+1.
const phaseTid = 0

// Process tracks of a stitched distributed trace: the coordinator's own
// spans render on pid 1, and shard s's worker spans on WorkerPid(s) — a
// distinct track per worker process, skew-corrected onto the
// coordinator's clock.
const CoordinatorPid = 1

// WorkerPid returns the trace process id of shard's worker.
func WorkerPid(shard int) int { return shard + 2 }

// append folds events into the shared buffer.
func (t *Tracer) append(evs ...traceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, evs...)
	t.mu.Unlock()
}

// Dropped returns the number of document spans discarded by the
// per-worker cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// WorkerTrace is a worker-owned span buffer: document spans are appended
// without locks and folded into the tracer once, when the worker calls
// close.
type WorkerTrace struct {
	tracer  *Tracer
	tid     int64
	sample  int
	cap     int
	seen    int
	start   time.Duration
	events  []traceEvent
	dropped int64
}

// worker returns a buffer for worker id (zero-based) in the given phase.
func (t *Tracer) worker(id int) *WorkerTrace {
	if t == nil {
		return nil
	}
	sample := t.DocSample
	if sample <= 0 {
		sample = defaultDocSample
	}
	capacity := t.PerWorkerCap
	if capacity <= 0 {
		capacity = defaultPerWorkerCap
	}
	return &WorkerTrace{tracer: t, tid: int64(id) + 1, sample: sample, cap: capacity}
}

// docStart marks the beginning of one document's processing and reports
// whether this document is sampled (callers skip docEnd bookkeeping
// otherwise).
func (wt *WorkerTrace) docStart() bool {
	if wt == nil {
		return false
	}
	wt.seen++
	if (wt.seen-1)%wt.sample != 0 {
		return false
	}
	if len(wt.events) >= wt.cap {
		wt.dropped++
		return false
	}
	wt.start = wt.tracer.clock.Now()
	return true
}

// docEnd closes the span opened by the last successful docStart.
func (wt *WorkerTrace) docEnd(doc int, sentences, statements int64) {
	if wt == nil {
		return
	}
	now := wt.tracer.clock.Now()
	wt.events = append(wt.events, traceEvent{
		name:     "doc",
		cat:      "doc",
		tid:      wt.tid,
		start:    wt.start,
		duration: now - wt.start,
		args:     map[string]int64{"doc": int64(doc), "sentences": sentences, "statements": statements},
	})
}

// close folds the buffered spans (plus one covering span for the worker's
// whole loop) into the tracer.
func (wt *WorkerTrace) close(phase string, loopStart, loopEnd time.Duration, docs int64) {
	if wt == nil {
		return
	}
	wt.events = append(wt.events, traceEvent{
		name:     phase + "/worker",
		cat:      "worker",
		tid:      wt.tid,
		start:    loopStart,
		duration: loopEnd - loopStart,
		args:     map[string]int64{"docs": docs},
	})
	wt.tracer.append(wt.events...)
	if wt.dropped > 0 {
		wt.tracer.dropped.Add(wt.dropped)
	}
	wt.events = nil
}

// SpanEvent is the exported, passive form of one collected span: what
// Events returns and what a worker's telemetry frame ships to the
// coordinator. Args are sorted by key so the encoding of the same span
// set is always the same bytes.
type SpanEvent struct {
	Name       string
	Cat        string
	Pid        int // 0 = the collecting process itself
	Tid        int64
	Start, Dur time.Duration
	Args       []SpanArg
}

// SpanArg is one key/value annotation of a span.
type SpanArg struct {
	Key   string
	Value int64
}

// Events returns the collected spans in collection order, args sorted by
// key. This is a read-side API: it serves the telemetry exporter and
// tests, never instrumented pipeline code (the obsflow contract).
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()

	out := make([]SpanEvent, len(events))
	for i, e := range events {
		out[i] = SpanEvent{
			Name: e.name, Cat: e.cat, Pid: e.pid, Tid: e.tid,
			Start: e.start, Dur: e.duration, Args: sortedArgs(e.args),
		}
	}
	return out
}

// sortedArgs flattens an args map into a key-sorted slice.
func sortedArgs(args map[string]int64) []SpanArg {
	if len(args) == 0 {
		return nil
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]SpanArg, len(keys))
	for i, k := range keys {
		out[i] = SpanArg{Key: k, Value: args[k]}
	}
	return out
}

// AbsorbSpans stitches foreign spans (a worker's, decoded from its
// telemetry frame) into this tracer under the given trace pid and
// process label, shifting every start timestamp by offset — the skew
// correction that aligns the worker's clock with the coordinator's.
func (t *Tracer) AbsorbSpans(pid int, label string, offset time.Duration, spans []SpanEvent) {
	if t == nil || len(spans) == 0 {
		return
	}
	events := make([]traceEvent, len(spans))
	for i, s := range spans {
		ev := traceEvent{
			name: s.Name, cat: s.Cat, pid: pid, tid: s.Tid,
			start: s.Start + offset, duration: s.Dur,
		}
		if len(s.Args) > 0 {
			ev.args = make(map[string]int64, len(s.Args))
			for _, a := range s.Args {
				ev.args[a.Key] = a.Value
			}
		}
		events[i] = ev
	}
	t.mu.Lock()
	t.events = append(t.events, events...)
	if t.procs == nil {
		t.procs = map[int]string{}
	}
	t.procs[pid] = label
	t.mu.Unlock()
}

// chromeEvent is the JSON shape of one trace event.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`  // microseconds
	Dur  float64          `json:"dur"` // microseconds
	Pid  int              `json:"pid"`
	Tid  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeMeta is a metadata record ("ph":"M") naming a process track.
type chromeMeta struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Args struct {
		Name string `json:"name"`
	} `json:"args"`
}

// processName builds one process_name metadata event.
func processName(pid int, label string) chromeMeta {
	m := chromeMeta{Name: "process_name", Ph: "M", Pid: pid}
	m.Args.Name = label
	return m
}

// WriteChromeTrace exports the collected spans as Chrome trace-event JSON
// ({"traceEvents": [...]}), loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Spans absorbed from workers render on their own pid
// tracks, named by process_name metadata records.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		if err != nil {
			return fmt.Errorf("obs: write trace: %w", err)
		}
		return nil
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	procs := make([]chromeMeta, 0, len(t.procs)+1)
	if len(t.procs) > 0 {
		pids := make([]int, 0, len(t.procs))
		for pid := range t.procs {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		procs = append(procs, processName(CoordinatorPid, "coordinator"))
		for _, pid := range pids {
			procs = append(procs, processName(pid, t.procs[pid]))
		}
	}
	t.mu.Unlock()

	out := struct {
		TraceEvents []any `json:"traceEvents"`
	}{TraceEvents: make([]any, 0, len(events)+len(procs))}
	for _, m := range procs {
		out.TraceEvents = append(out.TraceEvents, m)
	}
	for _, e := range events {
		pid := e.pid
		if pid == 0 {
			pid = CoordinatorPid
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.name,
			Cat:  e.cat,
			Ph:   "X",
			Ts:   float64(e.start.Nanoseconds()) / 1e3,
			Dur:  float64(e.duration.Nanoseconds()) / 1e3,
			Pid:  pid,
			Tid:  e.tid,
			Args: e.args,
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: write trace: %w", err)
	}
	return nil
}

// EventCount returns the number of collected spans.
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
