package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects complete ("ph":"X") spans for phases, workers, and
// sampled per-document loops, and exports them as Chrome trace-event JSON
// — the format Perfetto and chrome://tracing load directly.
//
// Phase spans are appended under a mutex (there are a handful per run).
// Worker-loop spans are buffered in worker-owned WorkerTrace slices and
// folded in once per worker, so the hot path never contends on the
// tracer. Event volume is bounded: each worker keeps at most PerWorkerCap
// document spans (beyond that only the drop counter moves), and DocSample
// records every Nth document.
type Tracer struct {
	clock Clock

	// DocSample records one document span per this many documents per
	// worker (1 = every document). Set before the run starts.
	DocSample int
	// PerWorkerCap bounds the document spans buffered per worker.
	PerWorkerCap int

	mu      sync.Mutex
	events  []traceEvent
	dropped atomic.Int64
}

const (
	defaultDocSample    = 1
	defaultPerWorkerCap = 1 << 13
)

// NewTracer returns a tracer reading timestamps from clock (nil selects
// the shared system clock).
func NewTracer(clock Clock) *Tracer {
	return &Tracer{
		clock:        clockOrDefault(clock),
		DocSample:    defaultDocSample,
		PerWorkerCap: defaultPerWorkerCap,
	}
}

// traceEvent is one complete span in the Chrome trace-event model.
type traceEvent struct {
	name     string
	cat      string
	tid      int64
	start    time.Duration
	duration time.Duration
	args     map[string]int64
}

// tid values: phases render on thread 0, worker w on thread w+1.
const phaseTid = 0

// append folds events into the shared buffer.
func (t *Tracer) append(evs ...traceEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, evs...)
	t.mu.Unlock()
}

// Dropped returns the number of document spans discarded by the
// per-worker cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// WorkerTrace is a worker-owned span buffer: document spans are appended
// without locks and folded into the tracer once, when the worker calls
// close.
type WorkerTrace struct {
	tracer  *Tracer
	tid     int64
	sample  int
	cap     int
	seen    int
	start   time.Duration
	events  []traceEvent
	dropped int64
}

// worker returns a buffer for worker id (zero-based) in the given phase.
func (t *Tracer) worker(id int) *WorkerTrace {
	if t == nil {
		return nil
	}
	sample := t.DocSample
	if sample <= 0 {
		sample = defaultDocSample
	}
	capacity := t.PerWorkerCap
	if capacity <= 0 {
		capacity = defaultPerWorkerCap
	}
	return &WorkerTrace{tracer: t, tid: int64(id) + 1, sample: sample, cap: capacity}
}

// docStart marks the beginning of one document's processing and reports
// whether this document is sampled (callers skip docEnd bookkeeping
// otherwise).
func (wt *WorkerTrace) docStart() bool {
	if wt == nil {
		return false
	}
	wt.seen++
	if (wt.seen-1)%wt.sample != 0 {
		return false
	}
	if len(wt.events) >= wt.cap {
		wt.dropped++
		return false
	}
	wt.start = wt.tracer.clock.Now()
	return true
}

// docEnd closes the span opened by the last successful docStart.
func (wt *WorkerTrace) docEnd(doc int, sentences, statements int64) {
	if wt == nil {
		return
	}
	now := wt.tracer.clock.Now()
	wt.events = append(wt.events, traceEvent{
		name:     "doc",
		cat:      "doc",
		tid:      wt.tid,
		start:    wt.start,
		duration: now - wt.start,
		args:     map[string]int64{"doc": int64(doc), "sentences": sentences, "statements": statements},
	})
}

// close folds the buffered spans (plus one covering span for the worker's
// whole loop) into the tracer.
func (wt *WorkerTrace) close(phase string, loopStart, loopEnd time.Duration, docs int64) {
	if wt == nil {
		return
	}
	wt.events = append(wt.events, traceEvent{
		name:     phase + "/worker",
		cat:      "worker",
		tid:      wt.tid,
		start:    loopStart,
		duration: loopEnd - loopStart,
		args:     map[string]int64{"docs": docs},
	})
	wt.tracer.append(wt.events...)
	if wt.dropped > 0 {
		wt.tracer.dropped.Add(wt.dropped)
	}
	wt.events = nil
}

// chromeEvent is the JSON shape of one trace event.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`  // microseconds
	Dur  float64          `json:"dur"` // microseconds
	Pid  int              `json:"pid"`
	Tid  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChromeTrace exports the collected spans as Chrome trace-event JSON
// ({"traceEvents": [...]}), loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()

	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, len(events))}
	for i, e := range events {
		out.TraceEvents[i] = chromeEvent{
			Name: e.name,
			Cat:  e.cat,
			Ph:   "X",
			Ts:   float64(e.start.Nanoseconds()) / 1e3,
			Dur:  float64(e.duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  e.tid,
			Args: e.args,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// EventCount returns the number of collected spans.
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}
