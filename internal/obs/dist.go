package obs

// Metric names shared between the distributed miner's recording side and
// the debug server's read side (/healthz watches shard failures the same
// way it watches quarantines).
const (
	MetricDistWorkers       = "surveyor_dist_workers"
	MetricDistShardsFailed  = "surveyor_dist_shards_failed_total"
	MetricTelemetryRejected = "surveyor_dist_telemetry_rejected_total"
)

// DistObs is the write-only counter set of the distributed miner
// (internal/dist): shards shipped over the wire, wire-codec byte volume
// in both directions, worker count, telemetry frames federated, and the
// coordinator's per-shard merge latency. Like every obs surface it is
// strictly write-only from the miner's perspective — distributed runs
// with a live sink are bit-identical to runs with a nil one.
type DistObs struct {
	// Workers gauges the shard/worker count of the current run.
	Workers *Gauge // surveyor_dist_workers
	// ShardsShipped counts shard evidence deltas received and committed by
	// the coordinator.
	ShardsShipped *Counter // surveyor_dist_shards_shipped_total
	// ShardsFailed counts shards lost to worker crashes or protocol
	// errors; /healthz degrades when it is non-zero.
	ShardsFailed *Counter // surveyor_dist_shards_failed_total
	// TelemetryFrames counts worker telemetry frames received and
	// federated by the coordinator.
	TelemetryFrames *Counter // surveyor_dist_telemetry_frames_total
	// ShardRetries counts shard attempts launched beyond each shard's
	// first — the self-healing scheduler replacing a failed or expired
	// worker.
	ShardRetries *Counter // surveyor_dist_shard_retries_total
	// ShardReassignments counts retries that handed the shard to a
	// different worker (a fresh process/goroutine, or a different socket
	// endpoint).
	ShardReassignments *Counter // surveyor_dist_shard_reassignments_total
	// DeadlinesExpired counts shard attempts reclaimed from hung workers
	// by the per-shard deadline.
	DeadlinesExpired *Counter // surveyor_dist_shard_deadlines_expired_total
	// DuplicateResults counts late shard results discarded because an
	// earlier attempt already committed — the exactly-once shard commit.
	DuplicateResults *Counter // surveyor_dist_duplicate_results_total
	// Heartbeats counts worker liveness frames received over the socket
	// transport.
	Heartbeats *Counter // surveyor_dist_heartbeats_total
	// WireBytesEncoded and WireBytesDecoded count wire-codec traffic:
	// job frames written to workers, result and telemetry frames read
	// back.
	WireBytesEncoded *Counter // surveyor_wire_bytes_encoded_total
	WireBytesDecoded *Counter // surveyor_wire_bytes_decoded_total
	// ShardMergeMillis is the per-shard latency of folding one decoded
	// evidence delta into the coordinator's cumulative store.
	ShardMergeMillis *Histogram // surveyor_dist_shard_merge_ms
}

// defaultShardMergeBounds spans test-sized deltas (sub-millisecond) up to
// merges of production-shard counter sets.
var defaultShardMergeBounds = []float64{0.1, 0.5, 1, 5, 25, 100, 500, 2500}

// Dist resolves the distributed miner's metric inventory on the RunObs
// registry. With a nil RunObs or registry every handle is nil and
// recording is free.
func (o *RunObs) Dist() *DistObs {
	var r *Registry
	if o != nil {
		r = o.Metrics
	}
	return &DistObs{
		Workers: r.Gauge(MetricDistWorkers,
			"worker count of the current distributed run"),
		ShardsShipped: r.Counter("surveyor_dist_shards_shipped_total",
			"shard evidence deltas merged by the coordinator"),
		ShardsFailed: r.Counter(MetricDistShardsFailed,
			"shards lost to worker crashes or protocol errors"),
		TelemetryFrames: r.Counter("surveyor_dist_telemetry_frames_total",
			"worker telemetry frames received by the coordinator"),
		ShardRetries: r.Counter("surveyor_dist_shard_retries_total",
			"shard attempts launched beyond the first (failed or expired workers replaced)"),
		ShardReassignments: r.Counter("surveyor_dist_shard_reassignments_total",
			"shard retries handed to a different worker"),
		DeadlinesExpired: r.Counter("surveyor_dist_shard_deadlines_expired_total",
			"shard attempts reclaimed from hung workers by the per-shard deadline"),
		DuplicateResults: r.Counter("surveyor_dist_duplicate_results_total",
			"late shard results discarded after an earlier attempt committed"),
		Heartbeats: r.Counter("surveyor_dist_heartbeats_total",
			"worker liveness frames received over the socket transport"),
		WireBytesEncoded: r.Counter("surveyor_wire_bytes_encoded_total",
			"wire-codec bytes encoded (job frames to workers)"),
		WireBytesDecoded: r.Counter("surveyor_wire_bytes_decoded_total",
			"wire-codec bytes decoded (result and telemetry frames from workers)"),
		ShardMergeMillis: r.Histogram("surveyor_dist_shard_merge_ms",
			"per-shard evidence merge latency in milliseconds", defaultShardMergeBounds),
	}
}
