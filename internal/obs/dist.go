package obs

// DistObs is the write-only counter set of the distributed miner
// (internal/dist): shards shipped over the wire, wire-codec byte volume
// in both directions, and the coordinator's per-shard merge latency.
// Like every obs surface it is strictly write-only from the miner's
// perspective — distributed runs with a live sink are bit-identical to
// runs with a nil one.
type DistObs struct {
	// ShardsShipped counts shard evidence deltas received and committed by
	// the coordinator.
	ShardsShipped *Counter // surveyor_dist_shards_shipped_total
	// ShardsFailed counts shards lost to worker crashes or protocol
	// errors; /healthz-style monitors watch this next to quarantines.
	ShardsFailed *Counter // surveyor_dist_shards_failed_total
	// WireBytesEncoded and WireBytesDecoded count wire-codec traffic:
	// job frames written to workers, result frames read back.
	WireBytesEncoded *Counter // surveyor_wire_bytes_encoded_total
	WireBytesDecoded *Counter // surveyor_wire_bytes_decoded_total
	// ShardMergeMillis is the per-shard latency of folding one decoded
	// evidence delta into the coordinator's cumulative store.
	ShardMergeMillis *Histogram // surveyor_dist_shard_merge_ms
}

// defaultShardMergeBounds spans test-sized deltas (sub-millisecond) up to
// merges of production-shard counter sets.
var defaultShardMergeBounds = []float64{0.1, 0.5, 1, 5, 25, 100, 500, 2500}

// Dist resolves the distributed miner's metric inventory on the RunObs
// registry. With a nil RunObs or registry every handle is nil and
// recording is free.
func (o *RunObs) Dist() *DistObs {
	var r *Registry
	if o != nil {
		r = o.Metrics
	}
	return &DistObs{
		ShardsShipped: r.Counter("surveyor_dist_shards_shipped_total",
			"shard evidence deltas merged by the coordinator"),
		ShardsFailed: r.Counter("surveyor_dist_shards_failed_total",
			"shards lost to worker crashes or protocol errors"),
		WireBytesEncoded: r.Counter("surveyor_wire_bytes_encoded_total",
			"wire-codec bytes encoded (job frames to workers)"),
		WireBytesDecoded: r.Counter("surveyor_wire_bytes_decoded_total",
			"wire-codec bytes decoded (result frames from workers)"),
		ShardMergeMillis: r.Histogram("surveyor_dist_shard_merge_ms",
			"per-shard evidence merge latency in milliseconds", defaultShardMergeBounds),
	}
}
