package obs

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestFleetMetricName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"surveyor_documents_total", "surveyor_fleet_documents_total"},
		{"custom_series", "surveyor_fleet_custom_series"},
	}
	for _, tc := range cases {
		if got := FleetMetricName(tc.in); got != tc.want {
			t.Errorf("FleetMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// workerSnapshot builds one synthetic worker snapshot. Values are dyadic
// (integers and halves), so federated gauge and histogram sums are exact
// and the order-invariance property below can demand strict equality.
func workerSnapshot(rng *rand.Rand) []Metric {
	r := NewRegistry()
	r.Counter("surveyor_documents_total", "docs").Add(rng.Int63n(1000))
	r.Counter("surveyor_sentences_total", "sentences").Add(rng.Int63n(10000))
	r.Gauge("surveyor_distinct_pairs", "pairs").Set(float64(rng.Int63n(500)) / 2)
	h := r.Histogram("surveyor_doc_sentences", "sentences", []float64{1, 4, 16, 64})
	for i, n := 0, rng.Intn(20); i < n; i++ {
		h.Observe(float64(rng.Int63n(256)) / 2)
	}
	return r.Snapshot()
}

// TestFederationOrderInvariant is the satellite property test: absorbing
// N worker snapshots must produce the same federated registry state in
// every permutation — counter adds are integer-exact and dyadic
// gauge/histogram sums are float-exact, so the assertion is strict
// equality of the full snapshot.
func TestFederationOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const workers = 5
	snaps := make([][]Metric, workers)
	for i := range snaps {
		snaps[i] = workerSnapshot(rng)
	}

	federate := func(order []int) []Metric {
		r := NewRegistry()
		for _, i := range order {
			if err := r.AbsorbSnapshot(snaps[i]); err != nil {
				t.Fatalf("absorb snapshot %d: %v", i, err)
			}
		}
		return r.Snapshot()
	}

	base := federate([]int{0, 1, 2, 3, 4})
	if len(base) == 0 {
		t.Fatal("federation produced no series")
	}
	for trial := 0; trial < 20; trial++ {
		order := rng.Perm(workers)
		if got := federate(order); !reflect.DeepEqual(got, base) {
			t.Fatalf("federation order %v diverged from canonical order:\n got %+v\nwant %+v",
				order, got, base)
		}
	}
}

// TestFederationSumsCounters: the federated series is the exact sum of
// the worker series, under the fleet name.
func TestFederationSumsCounters(t *testing.T) {
	r := NewRegistry()
	var want int64
	for i := 0; i < 4; i++ {
		w := NewRegistry()
		w.Counter("surveyor_documents_total", "docs").Add(int64(10 + i))
		want += int64(10 + i)
		if err := r.AbsorbSnapshot(w.Snapshot()); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range r.Snapshot() {
		if m.Name == "surveyor_fleet_documents_total" {
			if int64(m.Value) != want {
				t.Fatalf("federated sum = %v, want %d", m.Value, want)
			}
			return
		}
	}
	t.Fatal("federated series surveyor_fleet_documents_total not found")
}

// TestFederationHistogramBoundsMismatch: merging a histogram snapshot
// with different bounds fails clean — an error, and the registered
// series untouched (no half-merge).
func TestFederationHistogramBoundsMismatch(t *testing.T) {
	mkSnap := func(bounds []float64) []Metric {
		w := NewRegistry()
		w.Histogram("surveyor_doc_sentences", "s", bounds).Observe(3)
		return w.Snapshot()
	}
	r := NewRegistry()
	if err := r.AbsorbSnapshot(mkSnap([]float64{1, 4, 16})); err != nil {
		t.Fatal(err)
	}
	before := r.Snapshot()

	// Different bound count: rejected at registration shape check.
	if err := r.AbsorbSnapshot(mkSnap([]float64{1, 4})); err == nil {
		t.Fatal("bound-count mismatch absorbed silently")
	}
	// Same count, different bound values: rejected bucket-wise.
	err := r.AbsorbSnapshot(mkSnap([]float64{1, 5, 16}))
	if err == nil || !strings.Contains(err.Error(), "differs from registered bound") {
		t.Fatalf("err = %v, want bound mismatch", err)
	}
	if after := r.Snapshot(); !reflect.DeepEqual(before, after) {
		t.Fatalf("rejected merge mutated the registry:\n before %+v\n after %+v", before, after)
	}
}

// TestFederationKindConflict: a snapshot series whose kind conflicts with
// the already-federated series is rejected with an error, not a panic.
func TestFederationKindConflict(t *testing.T) {
	r := NewRegistry()
	w1 := NewRegistry()
	w1.Counter("surveyor_thing_total", "c").Inc()
	if err := r.AbsorbSnapshot(w1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	w2 := NewRegistry()
	w2.Gauge("surveyor_thing_total", "g").Set(1)
	if err := r.AbsorbSnapshot(w2.Snapshot()); err == nil {
		t.Fatal("kind conflict absorbed silently")
	}
}

// TestFederationRejectsNonIntegralCounter: counters federate by integer
// addition; a fractional or negative "counter" value is corruption.
func TestFederationRejectsNonIntegralCounter(t *testing.T) {
	for _, v := range []float64{1.5, -3, math.NaN(), math.Inf(1)} {
		r := NewRegistry()
		err := r.AbsorbSnapshot([]Metric{{Name: "surveyor_x_total", Kind: KindCounter, Value: v}})
		if err == nil {
			t.Errorf("counter value %v absorbed silently", v)
		}
	}
}

// TestAbsorbShardTelemetryRejectionKeepsTrace: a frame whose metrics are
// rejected must contribute nothing — no fleet series, no spans — and
// must tick the rejection counter and the cluster note.
func TestAbsorbShardTelemetryRejection(t *testing.T) {
	o := New()
	o.Cluster.StartRun(2)
	bad := &Telemetry{
		Metrics: []Metric{{Name: "surveyor_x_total", Kind: KindCounter, Value: 0.5}},
		Spans:   []SpanEvent{{Name: "extract", Cat: "phase"}},
	}
	o.AbsorbShardTelemetry(1, bad)
	if got := o.Metrics.Counter(MetricTelemetryRejected, "").Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if n := o.Tracer.EventCount(); n != 0 {
		t.Fatalf("rejected frame stitched %d spans", n)
	}
	snap := o.Cluster.Snapshot()
	if tel := snap.Shards[1].Telemetry; !strings.HasPrefix(tel, "rejected: ") {
		t.Fatalf("cluster telemetry note = %q, want rejected", tel)
	}
}
