package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
)

// Report is the machine-readable summary of one run, written by
// cmd/surveyor's -report flag: run statistics, per-phase wall times, the
// full metric snapshot, and the EM convergence telemetry.
type Report struct {
	// Run identification.
	GoVersion string    `json:"go_version"`
	Build     BuildInfo `json:"build"`
	Workers   int       `json:"workers"`
	Rho       int64     `json:"rho"`
	Version   int       `json:"pattern_version"`

	// Corpus and output statistics.
	Documents         int   `json:"documents"`
	Sentences         int64 `json:"sentences"`
	Statements        int64 `json:"statements"`
	DistinctPairs     int   `json:"distinct_pairs"`
	PairsBeforeFilter int   `json:"pairs_before_filter"`
	Groups            int   `json:"groups_modelled"`
	Opinions          int64 `json:"opinions"`

	// Fault-boundary outcome: quarantined documents, lenient-mode skipped
	// corpus lines, and whether the run was cut short (SIGINT, stream
	// error) — in which case the statistics above describe the committed
	// partial result.
	QuarantinedDocs int64  `json:"quarantined_docs,omitempty"`
	SkippedLines    int64  `json:"skipped_lines,omitempty"`
	Partial         bool   `json:"partial,omitempty"`
	PartialCause    string `json:"partial_cause,omitempty"`

	// Per-phase wall times, milliseconds.
	TimingsMillis map[string]int64 `json:"timings_ms"`

	// Telemetry snapshots.
	Metrics []Metric         `json:"metrics,omitempty"`
	EM      EMSnapshot       `json:"em,omitempty"`
	Cluster *ClusterSnapshot `json:"cluster,omitempty"`
}

// NewReport returns a report pre-filled with toolchain and build
// identification.
func NewReport() *Report {
	return &Report{
		GoVersion:     runtime.Version(),
		Build:         ReadBuild(),
		TimingsMillis: map[string]int64{},
	}
}

// Attach fills the telemetry sections from a RunObs (nil leaves them
// empty). The cluster section appears only when a distributed run
// populated the fleet view.
func (r *Report) Attach(o *RunObs) {
	if o == nil {
		return
	}
	r.Metrics = o.Metrics.Snapshot()
	r.EM = o.EM.Snapshot()
	if cs := o.Cluster.Snapshot(); cs.Workers > 0 {
		r.Cluster = &cs
	}
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("obs: write report: %w", err)
	}
	return nil
}
