package obs

import (
	"sync"
	"time"
)

// Progress is the live view of a pipeline run: how many documents have
// been processed, by which worker, at what rate. The pipeline writes
// through per-worker slots (one cache line each, no sharing), and the
// debug server's /progress endpoint reads a consistent-enough snapshot at
// any time during the run.
type Progress struct {
	clock Clock

	mu      sync.Mutex
	phase   string
	total   int64
	started time.Duration
	running bool
	workers []*WorkerSlot
}

// NewProgress returns a Progress reading elapsed time from clock (nil
// selects the shared system clock).
func NewProgress(clock Clock) *Progress {
	return &Progress{clock: clockOrDefault(clock)}
}

// WorkerSlot holds one worker's counters. The padding keeps slots on
// separate cache lines so the per-document atomic adds never bounce.
type WorkerSlot struct {
	docs       counterCell
	sentences  counterCell
	statements counterCell
}

// counterCell is a padded atomic counter.
type counterCell struct {
	c Counter
	_ [7]int64
}

// AddDoc records one finished document with its sentence and statement
// counts. No-op on a nil slot.
func (s *WorkerSlot) AddDoc(sentences, statements int64) {
	if s == nil {
		return
	}
	s.docs.c.Add(1)
	s.sentences.c.Add(sentences)
	s.statements.c.Add(statements)
}

// startRun resets the per-run state. Called by the pipeline at the top of
// a run; safe to call again for subsequent runs with the same Progress.
func (p *Progress) startRun(totalDocs, workers int) {
	if p == nil {
		return
	}
	slots := make([]*WorkerSlot, workers)
	for i := range slots {
		slots[i] = &WorkerSlot{}
	}
	p.mu.Lock()
	p.total = int64(totalDocs)
	p.started = p.clock.Now()
	p.running = true
	p.workers = slots
	p.phase = ""
	p.mu.Unlock()
}

// endRun marks the run finished (rates freeze at the final reading).
func (p *Progress) endRun() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.running = false
	p.mu.Unlock()
}

// setPhase records the currently executing phase name.
func (p *Progress) setPhase(name string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phase = name
	p.mu.Unlock()
}

// worker returns the slot for worker id, or nil when id is out of range
// (or p is nil).
func (p *Progress) worker(id int) *WorkerSlot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id < 0 || id >= len(p.workers) {
		return nil
	}
	return p.workers[id]
}

// WorkerCounts is one worker's row in a progress snapshot.
type WorkerCounts struct {
	Worker     int   `json:"worker"`
	Documents  int64 `json:"documents"`
	Sentences  int64 `json:"sentences"`
	Statements int64 `json:"statements"`
}

// ProgressSnapshot is a point-in-time view of the run.
type ProgressSnapshot struct {
	Phase              string         `json:"phase,omitempty"`
	Running            bool           `json:"running"`
	DocumentsTotal     int64          `json:"documents_total"`
	DocumentsProcessed int64          `json:"documents_processed"`
	Sentences          int64          `json:"sentences"`
	Statements         int64          `json:"statements"`
	ElapsedSeconds     float64        `json:"elapsed_seconds"`
	DocsPerSec         float64        `json:"docs_per_sec"`
	SentencesPerSec    float64        `json:"sentences_per_sec"`
	Workers            []WorkerCounts `json:"workers,omitempty"`
}

// Snapshot reads the current progress. Safe to call from any goroutine at
// any time, including mid-run. A nil Progress yields a zero snapshot.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	p.mu.Lock()
	snap := ProgressSnapshot{
		Phase:          p.phase,
		Running:        p.running,
		DocumentsTotal: p.total,
		Workers:        make([]WorkerCounts, len(p.workers)),
	}
	elapsed := p.clock.Now() - p.started
	workers := p.workers
	p.mu.Unlock()

	for i, slot := range workers {
		snap.Workers[i] = WorkerCounts{
			Worker:     i,
			Documents:  slot.docs.c.Value(),
			Sentences:  slot.sentences.c.Value(),
			Statements: slot.statements.c.Value(),
		}
		snap.DocumentsProcessed += snap.Workers[i].Documents
		snap.Sentences += snap.Workers[i].Sentences
		snap.Statements += snap.Workers[i].Statements
	}
	snap.ElapsedSeconds = elapsed.Seconds()
	if snap.ElapsedSeconds > 0 {
		snap.DocsPerSec = float64(snap.DocumentsProcessed) / snap.ElapsedSeconds
		snap.SentencesPerSec = float64(snap.Sentences) / snap.ElapsedSeconds
	}
	return snap
}
