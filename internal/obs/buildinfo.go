package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: the module version, the Go
// toolchain, and the VCS revision baked in by the Go build system.
type BuildInfo struct {
	// Version is the main module version ("(devel)" for a plain build).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit, with a "+dirty" suffix for modified
	// trees; "unknown" when the build carried no VCS stamp.
	Revision string `json:"revision"`
}

// ReadBuild reads the binary's build identification from the runtime's
// embedded build info. Missing fields degrade to "unknown" — the gauge
// and report stay well-formed for test binaries and stripped builds.
func ReadBuild() BuildInfo {
	b := BuildInfo{Version: "unknown", GoVersion: runtime.Version(), Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	var revision, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			modified = s.Value
		}
	}
	if revision != "" {
		if modified == "true" {
			revision += "+dirty"
		}
		b.Revision = revision
	}
	return b
}

// MetricBuildInfo is the build-identification gauge: constant 1 per
// process, with the identification in the help text (the registry has no
// label support; the JSON report carries the structured form). Federated
// across a fleet, the surveyor_fleet_build_info sum counts the workers
// that reported this build.
const MetricBuildInfo = "surveyor_build_info"

// RegisterBuildInfo publishes the build-identification gauge on the
// RunObs registry. No-op on a nil RunObs or registry.
func (o *RunObs) RegisterBuildInfo() {
	if o == nil {
		return
	}
	b := ReadBuild()
	o.Metrics.Gauge(MetricBuildInfo, fmt.Sprintf(
		"build identification (constant 1): version=%s go=%s revision=%s",
		b.Version, b.GoVersion, b.Revision)).Set(1)
}
