package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Errorf("counter = %d, want 4", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Error("re-registering the same counter returned a new handle")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-0.5)
	if got := g.Value(); got != 2.0 {
		t.Errorf("gauge = %g, want 2", got)
	}
}

func TestNilHandlesAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", []float64{1})
	c.Add(1)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil handles must read as zero")
	}
	if snap := r.Snapshot(); snap != nil {
		t.Errorf("nil registry snapshot = %v, want nil", snap)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

// TestHistogramBucketBoundaries pins the bucket semantics: inclusive upper
// bounds, one overflow bucket at +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0001, 2, 5, 5.0001, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(snap))
	}
	m := snap[0]
	wantCounts := []int64{2, 2, 1, 2} // (-inf,1] (1,2] (2,5] (5,+inf)
	wantBounds := []float64{1, 2, 5, math.Inf(1)}
	if len(m.Buckets) != len(wantCounts) {
		t.Fatalf("bucket count = %d, want %d", len(m.Buckets), len(wantCounts))
	}
	for i, b := range m.Buckets {
		if float64(b.UpperBound) != wantBounds[i] || b.Count != wantCounts[i] {
			t.Errorf("bucket %d = {le=%g n=%d}, want {le=%g n=%d}",
				i, float64(b.UpperBound), b.Count, wantBounds[i], wantCounts[i])
		}
	}
	if m.Count != 7 {
		t.Errorf("count = %d, want 7", m.Count)
	}
	if want := 0.5 + 1 + 1.0001 + 2 + 5 + 5.0001 + 100; math.Abs(m.Sum-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", m.Sum, want)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	NewRegistry().Histogram("h", "", []float64{1, 1})
}

// TestSnapshotUnderConcurrentWriters exercises the lock-free write paths
// against concurrent snapshots; run with -race this is the data-race proof,
// and the final totals must be exact.
func TestSnapshotUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{10, 100})

	const writers, perWriter = 8, 1000
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() { // concurrent scraper
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
				r.WritePrometheus(&strings.Builder{})
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Errorf("gauge = %g, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

// TestWritePrometheusGolden pins the exact text exposition output:
// HELP/TYPE lines, cumulative buckets, +Inf, _sum/_count, name-sorted.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("surveyor_documents_total", "documents processed").Add(12)
	r.Gauge("surveyor_groups_modelled", "modelled groups").Set(3.5)
	h := r.Histogram("surveyor_em_iterations", "iterations per fit", []float64{1, 5})
	h.Observe(1)
	h.Observe(4)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP surveyor_documents_total documents processed
# TYPE surveyor_documents_total counter
surveyor_documents_total 12
# HELP surveyor_em_iterations iterations per fit
# TYPE surveyor_em_iterations histogram
surveyor_em_iterations_bucket{le="1"} 1
surveyor_em_iterations_bucket{le="5"} 2
surveyor_em_iterations_bucket{le="+Inf"} 3
surveyor_em_iterations_sum 14
surveyor_em_iterations_count 3
# HELP surveyor_groups_modelled modelled groups
# TYPE surveyor_groups_modelled gauge
surveyor_groups_modelled 3.5
`
	if sb.String() != want {
		t.Errorf("Prometheus text mismatch:\n got:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestJSONFloatRoundTrip: non-finite values survive a JSON round trip as
// strings (encoding/json rejects bare Inf/NaN).
func TestJSONFloatRoundTrip(t *testing.T) {
	in := []JSONFloat{1.5, JSONFloat(math.Inf(1)), JSONFloat(math.Inf(-1)), JSONFloat(math.NaN())}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if want := `[1.5,"+Inf","-Inf","NaN"]`; string(data) != want {
		t.Errorf("marshal = %s, want %s", data, want)
	}
	var out []JSONFloat
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if float64(out[0]) != 1.5 || !math.IsInf(float64(out[1]), 1) ||
		!math.IsInf(float64(out[2]), -1) || !math.IsNaN(float64(out[3])) {
		t.Errorf("round trip = %v", out)
	}
}
