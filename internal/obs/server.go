package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer is the live introspection endpoint of a run: Prometheus
// text metrics, expvar, net/http/pprof, and a JSON progress view. It is
// read-only — serving it cannot perturb pipeline results — and intended
// for operators (and the CI smoke test), not for untrusted networks.
type DebugServer struct {
	// Addr is the bound address (useful when the requested port was 0).
	Addr string

	srv *http.Server
	lis net.Listener
}

// Handler returns the debug mux for o: /metrics (Prometheus text),
// /progress (JSON), /trace (Chrome trace events), /em, /cluster (the
// distributed fleet view), /debug/vars (expvar), /debug/pprof/*,
// /healthz, and an HTML index at /.
func Handler(o *RunObs) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var reg *Registry
		if o != nil {
			reg = o.Metrics
		}
		if err := reg.WritePrometheus(w); err != nil {
			// The scrape connection broke mid-write; nothing to salvage.
			return
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var p *Progress
		if o != nil {
			p = o.Progress
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(p.Snapshot())
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var t *Tracer
		if o != nil {
			t = o.Tracer
		}
		if err := t.WriteChromeTrace(w); err != nil {
			// The scrape connection broke mid-write; nothing to salvage.
			return
		}
	})
	mux.HandleFunc("/em", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var rec *EMRecorder
		if o != nil {
			rec = o.EM
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rec.Snapshot())
	})
	mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var c *Cluster
		if o != nil {
			c = o.Cluster
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(c.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Degraded is still HTTP 200: the process is serving, but the fault
		// boundary has been absorbing damage (quarantined documents, skipped
		// corpus lines, or lost distributed shards) that an operator should
		// look at.
		var quarantined, skipped, failedShards int64
		if o != nil && o.Metrics != nil {
			quarantined = o.Metrics.Counter(MetricQuarantinedDocs,
				"documents quarantined by the per-document panic boundary").Value()
			skipped = o.Metrics.Counter(MetricSkippedLines,
				"corpus lines skipped by lenient streaming ingestion").Value()
			failedShards = o.Metrics.Counter(MetricDistShardsFailed,
				"shards lost to worker crashes or protocol errors").Value()
		}
		if quarantined > 0 || skipped > 0 || failedShards > 0 {
			fmt.Fprintf(w, "degraded quarantined_docs=%d skipped_lines=%d failed_shards=%d\n",
				quarantined, skipped, failedShards)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvarHandlerFor(o))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, `<html><body><h1>surveyor debug</h1><ul>
<li><a href="/metrics">/metrics</a> — Prometheus text</li>
<li><a href="/progress">/progress</a> — live run progress (JSON)</li>
<li><a href="/trace">/trace</a> — Chrome trace events (load in Perfetto)</li>
<li><a href="/em">/em</a> — EM convergence telemetry (JSON)</li>
<li><a href="/cluster">/cluster</a> — distributed fleet view: per-shard status, telemetry, skew (JSON)</li>
<li><a href="/debug/vars">/debug/vars</a> — expvar</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — pprof</li>
</ul></body></html>`)
	})
	return mux
}

// publishOnce guards the process-global expvar namespace: expvar.Publish
// panics on duplicate names, and a process may start several debug
// servers across runs (or tests).
var publishOnce sync.Once

// expvarHandlerFor returns the standard expvar page with the registry and
// progress published under "surveyor_metrics" / "surveyor_progress". The
// expvar vars capture o by reference; the first server's RunObs wins for
// the life of the process, matching expvar's global nature.
func expvarHandlerFor(o *RunObs) http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("surveyor_metrics", expvar.Func(func() any {
			if o == nil {
				return nil
			}
			return o.Metrics.Snapshot()
		}))
		expvar.Publish("surveyor_progress", expvar.Func(func() any {
			if o == nil {
				return nil
			}
			return o.Progress.Snapshot()
		}))
	})
	return expvar.Handler()
}

// StartDebugServer binds addr (e.g. "localhost:8080" or ":0") and serves
// the debug mux on it until Close.
func StartDebugServer(addr string, o *RunObs) (*DebugServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Handler: Handler(o), ReadHeaderTimeout: 5 * time.Second}
	ds := &DebugServer{Addr: lis.Addr().String(), srv: srv, lis: lis}
	go srv.Serve(lis)
	return ds, nil
}

// shutdownTimeout bounds how long Close waits for in-flight scrapes.
const shutdownTimeout = 2 * time.Second

// Close shuts the server down gracefully, letting in-flight scrapes (a
// /metrics poll racing process exit) finish within a short timeout before
// falling back to a hard close.
func (s *DebugServer) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	//lint:allow ctxflow Close owns shutdown: the parent request context is already gone when the server stops
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		if cerr := s.srv.Close(); cerr != nil {
			return fmt.Errorf("obs: debug server close: %w", cerr)
		}
	}
	return nil
}
