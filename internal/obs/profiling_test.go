package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestProfilingDisabled(t *testing.T) {
	var p Profiling
	if p.Enabled() {
		t.Error("zero Profiling reports enabled")
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Errorf("stop with nothing started: %v", err)
	}
}

func TestProfilingWritesFiles(t *testing.T) {
	dir := t.TempDir()
	p := Profiling{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	if !p.Enabled() {
		t.Fatal("configured Profiling reports disabled")
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profiles have something to record.
	sink := 0
	for i := 0; i < 1_000_000; i++ {
		sink += i % 7
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{p.CPUProfile, p.MemProfile, p.Trace} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfilingBadPath(t *testing.T) {
	p := Profiling{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu")}
	if _, err := p.Start(); err == nil {
		t.Error("unwritable CPU profile path did not error")
	}
}
