// Cluster is the coordinator's live fleet view of one distributed run:
// per-shard protocol status, document and quarantine counts, wire byte
// volume, merge latency, and the telemetry/skew outcome of each worker.
// It is written by the distributed coordinator (internal/dist) through
// nil-safe recording methods — write-only from the miner's perspective,
// like every obs surface — and read by the debug server's /cluster
// endpoint and the JSON report.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Shard protocol states, mirroring the state machine in the dist
// protocol documentation. With the self-healing scheduler a shard
// cycles PENDING → MINING → (RETRYING → MINING)* → DONE, and reaches
// LOST only once its retry budget is exhausted.
const (
	ShardPending  = "PENDING"
	ShardMining   = "MINING"
	ShardRetrying = "RETRYING"
	ShardDone     = "DONE"
	ShardLost     = "LOST"
)

// Attempt outcomes recorded in a shard's history by the self-healing
// scheduler.
const (
	AttemptCommitted = "committed" // result committed to the run
	AttemptDuplicate = "duplicate" // late result discarded — an earlier attempt already committed
	AttemptFailed    = "failed"    // worker crashed, spoke a broken protocol, or was cancelled
	AttemptExpired   = "expired"   // shard deadline reclaimed the attempt from a hung worker
)

// Cluster tracks one distributed run. The zero value is unusable; build
// with NewCluster (RunObs.New wires one on the shared clock). All methods
// are safe on a nil receiver and safe for concurrent use.
type Cluster struct {
	clock Clock

	mu      sync.Mutex
	started bool
	shards  []clusterShard
}

// clusterShard is the coordinator's record of one shard.
type clusterShard struct {
	status      string
	docs        int
	consumed    int
	quarantined int
	wireOut     int64 // job-frame bytes shipped to the worker
	wireIn      int64 // result+telemetry bytes read back
	mergeMillis float64
	spans       int
	skew        time.Duration
	hasSkew     bool
	telemetry   string // "", "ok", "absent", or "rejected: <cause>"
	failure     string
	attempts    int                // job frames launched for this shard
	heartbeats  int64              // liveness frames received (socket transport)
	history     []ShardAttemptView // per-attempt outcomes, oldest first

	jobSent    time.Duration
	resultRecv time.Duration
	hasSent    bool
	hasRecv    bool
}

// NewCluster returns an empty cluster view reading timestamps from clock
// (nil selects the shared system clock).
func NewCluster(clock Clock) *Cluster {
	return &Cluster{clock: clockOrDefault(clock)}
}

// StartRun resets the view for a run of the given shard count.
func (c *Cluster) StartRun(shards int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.started = true
	c.shards = make([]clusterShard, shards)
	for s := range c.shards {
		c.shards[s].status = ShardPending
	}
}

// shard returns the record for s, or nil when out of range (a run that
// never called StartRun records nothing).
func (c *Cluster) shard(s int) *clusterShard {
	if s < 0 || s >= len(c.shards) {
		return nil
	}
	return &c.shards[s]
}

// JobSent records the job frame leaving for shard s: its document count,
// the encoded bytes, and the coordinator-clock send anchor used for skew
// correction.
func (c *Cluster) JobSent(s, docs int, wireBytes int64) {
	if c == nil {
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil {
		sh.status = ShardMining
		sh.docs = docs
		sh.wireOut += wireBytes
		sh.jobSent = now
		sh.hasSent = true
		sh.attempts++
	}
}

// maxAttemptHistory bounds one shard's recorded attempt history; a
// pathological retry storm truncates instead of growing without bound.
const maxAttemptHistory = 64

// ShardAttemptEnded appends one attempt's terminal outcome (an Attempt*
// constant) and its cause to shard s's history.
func (c *Cluster) ShardAttemptEnded(s, attempt int, outcome, cause string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil && len(sh.history) < maxAttemptHistory {
		sh.history = append(sh.history, ShardAttemptView{
			Attempt: attempt, Outcome: outcome, Cause: cause,
		})
	}
}

// ShardRetrying marks shard s as lost-but-retrying: a failed or expired
// attempt is being replaced by a fresh worker.
func (c *Cluster) ShardRetrying(s int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil {
		sh.status = ShardRetrying
	}
}

// ShardHeartbeat records one liveness frame received from shard s's
// worker over the socket transport.
func (c *Cluster) ShardHeartbeat(s int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil {
		sh.heartbeats++
	}
}

// ShardWire adds wire byte volume to shard s's record: out counts bytes
// shipped to the worker, in counts bytes read back.
func (c *Cluster) ShardWire(s int, out, in int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil {
		sh.wireOut += out
		sh.wireIn += in
	}
}

// ResultReceived records the shard result arriving from shard s: the
// decoded bytes and the coordinator-clock receive anchor.
func (c *Cluster) ResultReceived(s int, wireBytes int64) {
	if c == nil {
		return
	}
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil {
		sh.wireIn += wireBytes
		sh.resultRecv = now
		sh.hasRecv = true
	}
}

// ShardCommitted marks shard s merged into the cumulative store.
func (c *Cluster) ShardCommitted(s, consumed, quarantined int, mergeMillis float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil {
		sh.status = ShardDone
		sh.consumed = consumed
		sh.quarantined = quarantined
		sh.mergeMillis = mergeMillis
	}
}

// ShardFailed marks shard s lost with its terminal error.
func (c *Cluster) ShardFailed(s int, err error) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil {
		sh.status = ShardLost
		if err != nil {
			sh.failure = err.Error()
		}
	}
}

// TelemetryAbsorbed records a successfully federated telemetry frame:
// the span count stitched into the trace and the estimated clock skew.
func (c *Cluster) TelemetryAbsorbed(s, spans int, skew time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil {
		sh.telemetry = "ok"
		sh.spans = spans
		sh.skew = skew
		sh.hasSkew = true
	}
}

// TelemetryMissing records a shard whose telemetry did not federate:
// absent (old or silent worker, or a lost shard) or rejected (a frame
// that failed validation — the shard's evidence still committed).
func (c *Cluster) TelemetryMissing(s int, reason string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if sh := c.shard(s); sh != nil {
		sh.telemetry = reason
	}
}

// skewOffset estimates the worker→coordinator clock offset for shard s
// from the coordinator's send/receive anchors and the worker's anchor
// pair, as the difference of interval midpoints (the NTP correction).
// ok is false when either anchor pair is incomplete; callers then stitch
// spans unshifted.
func (c *Cluster) skewOffset(s int, a ClockAnchor) (offset time.Duration, ok bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sh := c.shard(s)
	if sh == nil || !sh.hasSent || !sh.hasRecv {
		return 0, false
	}
	coordMid := (sh.jobSent + sh.resultRecv) / 2
	workerMid := (a.JobReceived + a.Captured) / 2
	return coordMid - workerMid, true
}

// ShardAttemptView is the JSON shape of one attempt in a shard's
// history.
type ShardAttemptView struct {
	Attempt int    `json:"attempt"`
	Outcome string `json:"outcome"`
	Cause   string `json:"cause,omitempty"`
}

// ShardView is the JSON shape of one shard in a cluster snapshot.
type ShardView struct {
	Shard        int                `json:"shard"`
	Status       string             `json:"status"`
	Docs         int                `json:"docs"`
	Consumed     int                `json:"consumed"`
	Quarantined  int                `json:"quarantined,omitempty"`
	WireBytesOut int64              `json:"wire_bytes_out"`
	WireBytesIn  int64              `json:"wire_bytes_in"`
	MergeMillis  float64            `json:"merge_ms"`
	Spans        int                `json:"spans,omitempty"`
	SkewMillis   float64            `json:"skew_ms"`
	Telemetry    string             `json:"telemetry,omitempty"`
	Failure      string             `json:"failure,omitempty"`
	Attempts     int                `json:"attempts,omitempty"`
	Heartbeats   int64              `json:"heartbeats,omitempty"`
	History      []ShardAttemptView `json:"history,omitempty"`
}

// ClusterSnapshot is the JSON shape of the /cluster endpoint.
type ClusterSnapshot struct {
	Workers        int         `json:"workers"`
	ShardsDone     int         `json:"shards_done"`
	ShardsLost     int         `json:"shards_lost"`
	ShardsRetrying int         `json:"shards_retrying,omitempty"`
	WireBytesOut   int64       `json:"wire_bytes_out"`
	WireBytesIn    int64       `json:"wire_bytes_in"`
	Shards         []ShardView `json:"shards"`
}

// Snapshot returns the current fleet view. A nil or never-started
// cluster yields the zero snapshot.
func (c *Cluster) Snapshot() ClusterSnapshot {
	if c == nil {
		return ClusterSnapshot{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := ClusterSnapshot{Workers: len(c.shards)}
	if !c.started {
		return snap
	}
	snap.Shards = make([]ShardView, len(c.shards))
	for s := range c.shards {
		sh := &c.shards[s]
		v := ShardView{
			Shard:        s,
			Status:       sh.status,
			Docs:         sh.docs,
			Consumed:     sh.consumed,
			Quarantined:  sh.quarantined,
			WireBytesOut: sh.wireOut,
			WireBytesIn:  sh.wireIn,
			MergeMillis:  sh.mergeMillis,
			Spans:        sh.spans,
			Telemetry:    sh.telemetry,
			Failure:      sh.failure,
			Attempts:     sh.attempts,
			Heartbeats:   sh.heartbeats,
			History:      append([]ShardAttemptView(nil), sh.history...),
		}
		if sh.hasSkew {
			v.SkewMillis = float64(sh.skew) / float64(time.Millisecond)
		}
		snap.Shards[s] = v
		snap.WireBytesOut += sh.wireOut
		snap.WireBytesIn += sh.wireIn
		switch sh.status {
		case ShardDone:
			snap.ShardsDone++
		case ShardLost:
			snap.ShardsLost++
		case ShardRetrying:
			snap.ShardsRetrying++
		}
	}
	return snap
}

// String renders a one-line summary (for logs and tests).
func (s ClusterSnapshot) String() string {
	return fmt.Sprintf("workers=%d done=%d lost=%d wire_out=%d wire_in=%d",
		s.Workers, s.ShardsDone, s.ShardsLost, s.WireBytesOut, s.WireBytesIn)
}
