// Metric federation: folding worker metric snapshots into the
// coordinator's registry. Worker series land under a distinct "fleet"
// namespace (surveyor_X → surveyor_fleet_X) so they can never collide
// with — or double-count against — the coordinator's own series: the
// reduce phase already records coordinator-side document/sentence/
// statement counters, and the fleet series are the sum of what the
// workers themselves observed.
//
// Federation is deterministic: counters and gauges are summed (counter
// values are integral, so addition is exact and order-invariant), and
// histograms are merged bucket-wise, which requires identical bounds —
// a mismatch fails clean instead of producing a silently wrong series.
// The coordinator absorbs shards in shard order, pinning even the
// floating-point sums to one schedule-independent result.
package obs

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// fleetPrefix namespaces federated worker series in the coordinator
// registry.
const fleetPrefix = "surveyor_fleet_"

// FleetMetricName maps a worker-local series name to its federated name
// in the coordinator registry: surveyor_X → surveyor_fleet_X (names
// without the surveyor_ prefix are prefixed whole).
func FleetMetricName(name string) string {
	return fleetPrefix + strings.TrimPrefix(name, "surveyor_")
}

// AbsorbSnapshot folds one worker's metric snapshot into the registry
// under the fleet namespace: counter and gauge values add into the
// federated series, histogram buckets/count/sum merge into a federated
// histogram with identical bounds. The first shape mismatch — a name
// already registered as a different kind, or a histogram with different
// bounds — aborts with an error and leaves the remaining metrics
// unabsorbed; the caller treats the snapshot as rejected.
func (r *Registry) AbsorbSnapshot(metrics []Metric) error {
	if r == nil {
		return nil
	}
	for i := range metrics {
		m := &metrics[i]
		name := FleetMetricName(m.Name)
		if err := r.absorbMetric(name, m); err != nil {
			return fmt.Errorf("obs: federate %s: %w", m.Name, err)
		}
	}
	return nil
}

// absorbMetric folds one snapshot metric into the series named name,
// creating it on first use.
func (r *Registry) absorbMetric(name string, m *Metric) error {
	switch m.Kind {
	case KindCounter:
		c, err := r.counterChecked(name, m.Help)
		if err != nil {
			return err
		}
		if m.Value != math.Trunc(m.Value) || m.Value < 0 || m.Value > math.MaxInt64 {
			return fmt.Errorf("counter value %v is not a plausible count", m.Value)
		}
		c.Add(int64(m.Value))
	case KindGauge:
		g, err := r.gaugeChecked(name, m.Help)
		if err != nil {
			return err
		}
		g.Add(m.Value)
	case KindHistogram:
		return r.absorbHistogram(name, m)
	default:
		return fmt.Errorf("unknown metric kind %d", m.Kind)
	}
	return nil
}

// counterChecked is Registry.Counter without the programming-error panic:
// federated input is data, not code, so a kind conflict is an error.
func (r *Registry) counterChecked(name, help string) (*Counter, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		c, ok := m.(*Counter)
		if !ok {
			return nil, fmt.Errorf("already registered as %s, snapshot says counter", m.kind())
		}
		return c, nil
	}
	c := &Counter{helpText: help}
	r.metrics[name] = c
	return c, nil
}

// gaugeChecked is Registry.Gauge with error reporting instead of panic.
func (r *Registry) gaugeChecked(name, help string) (*Gauge, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			return nil, fmt.Errorf("already registered as %s, snapshot says gauge", m.kind())
		}
		return g, nil
	}
	g := &Gauge{helpText: help}
	r.metrics[name] = g
	return g, nil
}

// absorb merges one histogram snapshot bucket-wise into h. The caller
// has already proven the bucket counts match; the per-bucket bound
// equality is checked here — a mismatch fails clean.
func (h *Histogram) absorb(m *Metric) error {
	// Validate every bound before touching any counter, so a mismatched
	// snapshot rejects whole instead of half-merging.
	for i, b := range m.Buckets[:len(m.Buckets)-1] {
		if float64(b.UpperBound) != h.bounds[i] {
			return fmt.Errorf("bucket %d bound %v differs from registered bound %v",
				i, float64(b.UpperBound), h.bounds[i])
		}
	}
	for i, b := range m.Buckets {
		h.counts[i].Add(b.Count)
	}
	h.count.Add(m.Count)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + m.Sum)
		if h.sumBits.CompareAndSwap(old, next) {
			return nil
		}
	}
}

func (r *Registry) absorbHistogram(name string, m *Metric) error {
	if len(m.Buckets) == 0 {
		return fmt.Errorf("histogram snapshot has no buckets")
	}
	if !math.IsInf(float64(m.Buckets[len(m.Buckets)-1].UpperBound), 1) {
		return fmt.Errorf("last snapshot bucket bound is not +Inf")
	}
	bounds := make([]float64, len(m.Buckets)-1)
	for i := range bounds {
		bounds[i] = float64(m.Buckets[i].UpperBound)
		if math.IsNaN(bounds[i]) || math.IsInf(bounds[i], 0) || (i > 0 && bounds[i] <= bounds[i-1]) {
			return fmt.Errorf("snapshot bounds not strictly ascending at bucket %d", i)
		}
	}

	r.mu.Lock()
	existing, ok := r.metrics[name]
	var h *Histogram
	if ok {
		var isHist bool
		h, isHist = existing.(*Histogram)
		if !isHist {
			r.mu.Unlock()
			return fmt.Errorf("already registered as %s, snapshot says histogram", existing.kind())
		}
		if len(h.bounds) != len(bounds) {
			r.mu.Unlock()
			return fmt.Errorf("snapshot has %d bounds, registered histogram has %d", len(bounds), len(h.bounds))
		}
	} else {
		h = &Histogram{
			helpText: m.Help,
			bounds:   bounds,
			counts:   make([]atomic.Int64, len(bounds)+1),
		}
		r.metrics[name] = h
	}
	r.mu.Unlock()
	return h.absorb(m)
}
