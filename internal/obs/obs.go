// Package obs is the zero-dependency observability layer of the Surveyor
// reproduction: a metrics registry with lock-free counters, gauges, and
// fixed-bucket histograms; span tracing for pipeline phases and per-worker
// document loops with Chrome trace-event export (Perfetto-loadable); EM
// convergence telemetry; live run progress; an optional debug HTTP server
// (Prometheus text, expvar, pprof, progress); and profiling helpers.
//
// Determinism contract: telemetry is strictly write-only from the
// pipeline's perspective. Instrumented code records counts, spans, and
// trajectories but never reads them back — the obsflow analyzer enforces
// this statically, and the testkit differential suite proves that runs
// with a live RunObs are bit-identical to runs with a nil one. All
// timestamps flow through the Clock owned by this package; the only
// timing value that escapes into results is Span.End's duration, which
// feeds the Timings fields that the determinism contract explicitly
// excludes.
//
// Every recording method is safe on a nil receiver, so a disabled
// observability path costs a single branch per call site.
package obs

import (
	"fmt"
	"time"
)

// RunObs bundles the observability sinks of one pipeline run. Any field
// may be nil to disable that aspect; a nil *RunObs disables everything.
// The same RunObs may serve several consecutive runs (metrics and EM
// telemetry accumulate; progress resets per run).
type RunObs struct {
	// Metrics receives pipeline counters, gauges, and histograms.
	Metrics *Registry
	// Tracer receives phase, worker, and sampled document spans.
	Tracer *Tracer
	// EM receives per-group convergence telemetry.
	EM *EMRecorder
	// Progress is the live run view served by the debug server.
	Progress *Progress
	// Cluster is the distributed coordinator's fleet view, served by the
	// debug server's /cluster endpoint. Nil outside distributed runs.
	Cluster *Cluster
	// Clock overrides the time source for spans started through this
	// RunObs. Nil selects the shared system clock. Tracer and Progress
	// carry their own clocks (set at construction).
	Clock Clock
}

// New returns a RunObs with every component enabled, sharing one system
// clock.
func New() *RunObs {
	clock := NewSystemClock()
	return &RunObs{
		Metrics:  NewRegistry(),
		Tracer:   NewTracer(clock),
		EM:       NewEMRecorder(),
		Progress: NewProgress(clock),
		Cluster:  NewCluster(clock),
		Clock:    clock,
	}
}

func (o *RunObs) clock() Clock {
	if o == nil {
		return defaultClock
	}
	return clockOrDefault(o.Clock)
}

// Span is an in-flight measurement. It always measures — even with a nil
// RunObs the pipeline needs phase durations for Result.Timings — and
// additionally records a trace event when a tracer is attached.
type Span struct {
	tracer   *Tracer
	progress *Progress
	clock    Clock
	name     string
	start    time.Duration
}

// Phase starts a span for a named pipeline phase. Works on a nil RunObs
// (the span still measures, records nothing).
func (o *RunObs) Phase(name string) *Span {
	s := &Span{clock: o.clock(), name: name}
	if o != nil {
		s.tracer = o.Tracer
		s.progress = o.Progress
	}
	s.start = s.clock.Now()
	s.progress.setPhase(name)
	return s
}

// End closes the span and returns its duration. The duration feeds
// Result.Timings — the one schedule-dependent output the determinism
// contract excludes; reading any other obs state from instrumented code
// is forbidden (see the obsflow analyzer).
func (s *Span) End() time.Duration {
	d := s.clock.Now() - s.start
	if s.tracer != nil {
		s.tracer.append(traceEvent{
			name: s.name, cat: "phase", tid: phaseTid,
			start: s.start, duration: d,
		})
	}
	return d
}

// StartRun initialises per-run progress state. Call before spawning
// workers.
func (o *RunObs) StartRun(totalDocs, workers int) {
	if o == nil {
		return
	}
	o.Progress.startRun(totalDocs, workers)
}

// EndRun marks the run complete.
func (o *RunObs) EndRun() {
	if o == nil {
		return
	}
	o.Progress.endRun()
}

// WorkerObs is one extraction worker's write-only telemetry handle:
// per-worker progress counters plus sampled document spans. Methods are
// nil-safe; the pipeline holds one per worker goroutine.
type WorkerObs struct {
	trace     *WorkerTrace
	slot      *WorkerSlot
	clock     Clock
	loopStart time.Duration
	docs      int64
	inDoc     bool
}

// Worker returns the telemetry handle for worker id (zero-based). Nil
// when o is nil.
func (o *RunObs) Worker(id int) *WorkerObs {
	if o == nil {
		return nil
	}
	w := &WorkerObs{
		trace: o.Tracer.worker(id),
		slot:  o.Progress.worker(id),
		clock: o.clock(),
	}
	w.loopStart = w.clock.Now()
	return w
}

// DocStart marks the beginning of one document.
func (w *WorkerObs) DocStart() {
	if w == nil {
		return
	}
	w.inDoc = w.trace.docStart()
}

// DocEnd marks the end of one document with its sentence and statement
// counts.
func (w *WorkerObs) DocEnd(doc int, sentences, statements int64) {
	if w == nil {
		return
	}
	w.docs++
	if w.inDoc {
		w.trace.docEnd(doc, sentences, statements)
		w.inDoc = false
	}
	w.slot.AddDoc(sentences, statements)
}

// Close flushes the worker's buffered telemetry. Call once, when the
// worker's loop exits.
func (w *WorkerObs) Close(phase string) {
	if w == nil {
		return
	}
	w.trace.close(phase, w.loopStart, w.clock.Now(), w.docs)
}

// PipelineMetrics is the fixed inventory of pipeline metrics, resolved
// once per run. The zero value (every handle nil) is fully inert.
type PipelineMetrics struct {
	Documents     *Counter // surveyor_documents_total
	Sentences     *Counter // surveyor_sentences_total
	Statements    *Counter // surveyor_statements_total
	DistinctPairs *Gauge   // surveyor_distinct_pairs
	PairsBefore   *Gauge   // surveyor_pairs_before_filter
	Groups        *Gauge   // surveyor_groups_modelled
	Opinions      *Counter // surveyor_opinions_total
	// QuarantinedDocs and SkippedLines are the fault-boundary health
	// signals: /healthz degrades when either is non-zero.
	QuarantinedDocs *Counter // MetricQuarantinedDocs
	SkippedLines    *Counter // MetricSkippedLines
	EMIterations    *Histogram
	DocSentences    *Histogram
}

// Metric names shared between the pipeline's recording side and the debug
// server's /healthz read side.
const (
	MetricQuarantinedDocs = "surveyor_quarantined_docs_total"
	MetricSkippedLines    = "surveyor_corpus_skipped_lines_total"
)

// defaultEMIterBounds covers the DefaultEMConfig iteration budget (50).
var defaultEMIterBounds = []float64{1, 2, 3, 5, 8, 12, 20, 30, 50}

// defaultDocSentenceBounds covers the Zipf-shaped document lengths of
// Figure 9: most documents are a handful of sentences, the tail is long.
var defaultDocSentenceBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// PipelineMetrics registers (or re-resolves) the pipeline's metric
// inventory on the RunObs registry. With a nil RunObs or registry, every
// handle is nil and recording is free.
func (o *RunObs) PipelineMetrics() PipelineMetrics {
	var r *Registry
	if o != nil {
		r = o.Metrics
	}
	return PipelineMetrics{
		Documents:     r.Counter("surveyor_documents_total", "documents processed by extraction"),
		Sentences:     r.Counter("surveyor_sentences_total", "sentences parsed by the NLP front end"),
		Statements:    r.Counter("surveyor_statements_total", "evidence statements extracted"),
		DistinctPairs: r.Gauge("surveyor_distinct_pairs", "distinct (entity, property) pairs with evidence"),
		PairsBefore:   r.Gauge("surveyor_pairs_before_filter", "(type, property) pairs before the rho filter"),
		Groups:        r.Gauge("surveyor_groups_modelled", "(type, property) groups modelled after the rho filter"),
		Opinions:      r.Counter("surveyor_opinions_total", "entity-property opinions classified"),
		QuarantinedDocs: r.Counter(MetricQuarantinedDocs,
			"documents quarantined by the per-document panic boundary"),
		SkippedLines: r.Counter(MetricSkippedLines,
			"corpus lines skipped by lenient streaming ingestion"),
		EMIterations: r.Histogram("surveyor_em_iterations",
			"EM iterations to convergence per modelled group", defaultEMIterBounds),
		DocSentences: r.Histogram("surveyor_doc_sentences",
			"sentences per document (extraction skew)", defaultDocSentenceBounds),
	}
}

// GroupingObs is the write-only counter set the evidence grouping phase
// reports through. The zero value and nil are inert.
type GroupingObs struct {
	// PairsScanned counts (entity, property) keys folded during grouping.
	PairsScanned *Counter
	// GroupsKept and GroupsFiltered count (type, property) groups that
	// passed / failed the rho threshold.
	GroupsKept     *Counter
	GroupsFiltered *Counter
}

// Grouping resolves the grouping-phase counters. Nil when o (or its
// registry) is nil, which the evidence package treats as disabled.
func (o *RunObs) Grouping() *GroupingObs {
	if o == nil || o.Metrics == nil {
		return nil
	}
	return &GroupingObs{
		PairsScanned: o.Metrics.Counter("surveyor_grouping_pairs_scanned_total",
			"(entity, property) keys folded by the grouping phase"),
		GroupsKept: o.Metrics.Counter("surveyor_grouping_groups_kept_total",
			"(type, property) groups at or above rho"),
		GroupsFiltered: o.Metrics.Counter("surveyor_grouping_groups_filtered_total",
			"(type, property) groups below rho"),
	}
}

// EMGroup starts convergence telemetry for one (type, property) fit. Nil
// (inert) when o or its recorder is nil.
func (o *RunObs) EMGroup(typ, property string, entities int) *EMGroupObs {
	if o == nil {
		return nil
	}
	return o.EM.Group(typ, property, entities)
}

// AbsorbShardTelemetry federates one worker's decoded telemetry frame:
// the metric snapshot folds into the fleet namespace of the registry, the
// spans stitch into the trace on the shard's pid track with skew-corrected
// timestamps, and the outcome lands in the cluster view. A nil telemetry
// records "absent". Federation failures are absorbed here — the shard's
// evidence already committed, so a bad frame degrades to a rejection
// counter and a cluster note instead of an error the miner could branch
// on (the write-only contract).
func (o *RunObs) AbsorbShardTelemetry(shard int, t *Telemetry) {
	if o == nil {
		return
	}
	if t == nil {
		o.Cluster.TelemetryMissing(shard, "absent")
		return
	}
	if err := o.Metrics.AbsorbSnapshot(t.Metrics); err != nil {
		o.Metrics.Counter(MetricTelemetryRejected,
			"worker telemetry frames rejected by federation").Inc()
		o.Cluster.TelemetryMissing(shard, "rejected: "+err.Error())
		return
	}
	offset, _ := o.Cluster.skewOffset(shard, t.Anchor)
	o.Tracer.AbsorbSpans(WorkerPid(shard), fmt.Sprintf("worker %d", shard), offset, t.Spans)
	o.Cluster.TelemetryAbsorbed(shard, len(t.Spans), offset)
}

// RejectShardTelemetry records a telemetry frame that failed wire-level
// decoding. Like a federation rejection the shard's evidence is already
// committed, so the damage is observability-only: a rejection counter
// tick and a cluster note.
func (o *RunObs) RejectShardTelemetry(shard int, err error) {
	if o == nil {
		return
	}
	o.Metrics.Counter(MetricTelemetryRejected,
		"worker telemetry frames rejected by federation").Inc()
	o.Cluster.TelemetryMissing(shard, "rejected: "+err.Error())
}
