package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chromeFile mirrors the export shape for decoding in tests.
type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func decodeTrace(t *testing.T, tr *Tracer) chromeFile {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	return f
}

func TestTracerPhaseAndWorkerSpans(t *testing.T) {
	clock := &ManualClock{}
	tr := NewTracer(clock)
	o := &RunObs{Tracer: tr, Clock: clock}

	span := o.Phase("extract")
	wt := o.Worker(0)
	clock.Advance(time.Millisecond)
	wt.DocStart()
	clock.Advance(2 * time.Millisecond)
	wt.DocEnd(7, 3, 2)
	wt.Close("extract")
	clock.Advance(time.Millisecond)
	if d := span.End(); d != 4*time.Millisecond {
		t.Errorf("phase duration = %v, want 4ms", d)
	}

	f := decodeTrace(t, tr)
	if len(f.TraceEvents) != 3 { // doc + worker cover + phase
		t.Fatalf("got %d events, want 3: %+v", len(f.TraceEvents), f.TraceEvents)
	}
	byName := map[string]chromeEvent{}
	for _, e := range f.TraceEvents {
		if e.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", e.Name, e.Ph)
		}
		if e.Pid != 1 {
			t.Errorf("event %q pid = %d, want 1", e.Name, e.Pid)
		}
		byName[e.Name] = e
	}
	doc := byName["doc"]
	if doc.Ts != 1000 || doc.Dur != 2000 { // microseconds
		t.Errorf("doc span ts/dur = %g/%g, want 1000/2000", doc.Ts, doc.Dur)
	}
	if doc.Tid != 1 { // worker 0 renders on tid 1
		t.Errorf("doc tid = %d, want 1", doc.Tid)
	}
	if doc.Args["doc"] != 7 || doc.Args["sentences"] != 3 || doc.Args["statements"] != 2 {
		t.Errorf("doc args = %v", doc.Args)
	}
	phase := byName["extract"]
	if phase.Tid != phaseTid {
		t.Errorf("phase tid = %d, want %d", phase.Tid, phaseTid)
	}
	if phase.Ts != 0 || phase.Dur != 4000 {
		t.Errorf("phase ts/dur = %g/%g, want 0/4000", phase.Ts, phase.Dur)
	}
	if _, ok := byName["extract/worker"]; !ok {
		t.Error("missing the worker covering span")
	}
}

func TestTracerSampling(t *testing.T) {
	clock := &ManualClock{}
	tr := NewTracer(clock)
	tr.DocSample = 3
	wt := tr.worker(0)
	for i := 0; i < 9; i++ {
		if sampled := wt.docStart(); sampled != (i%3 == 0) {
			t.Errorf("doc %d sampled = %v", i, sampled)
		}
		if i%3 == 0 {
			wt.docEnd(i, 1, 0)
		}
	}
	wt.close("extract", 0, clock.Now(), 9)
	if got := tr.EventCount(); got != 4 { // 3 sampled docs + cover span
		t.Errorf("event count = %d, want 4", got)
	}
}

func TestTracerPerWorkerCap(t *testing.T) {
	clock := &ManualClock{}
	tr := NewTracer(clock)
	tr.PerWorkerCap = 2
	wt := tr.worker(0)
	for i := 0; i < 5; i++ {
		if wt.docStart() {
			wt.docEnd(i, 1, 0)
		}
	}
	wt.close("extract", 0, clock.Now(), 5)
	if got := tr.EventCount(); got != 3 { // 2 capped docs + cover span
		t.Errorf("event count = %d, want 3", got)
	}
	if got := tr.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
}

func TestNilTracerWritesEmptyTrace(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Errorf("nil tracer output = %s", buf.String())
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("nil tracer output is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) != 0 {
		t.Errorf("nil tracer has %d events", len(f.TraceEvents))
	}
}
