package obs

import (
	"sync/atomic"
	"time"
)

// Clock is the monotonic time source every timestamp in the observability
// layer flows through. Readings are durations since an arbitrary fixed
// origin, so they are comparable with each other but carry no wall-clock
// meaning. Implementations must be safe for concurrent use.
//
// The clock lives here — and only here — so the rest of the system never
// reads time directly: determinism-critical packages are forbidden from
// calling time.Now by the detrand and obsflow analyzers, and the pipeline
// obtains durations exclusively through Span.End.
type Clock interface {
	Now() time.Duration
}

// systemClock reads the process monotonic clock, anchored at construction.
type systemClock struct {
	base time.Time
}

func (c *systemClock) Now() time.Duration { return time.Since(c.base) }

// NewSystemClock returns a Clock backed by the runtime's monotonic clock,
// with its origin at the call.
//
//lint:allow detrand this is the injectable Clock's one real wall-clock source; tests substitute ManualClock
func NewSystemClock() Clock { return &systemClock{base: time.Now()} }

// defaultClock serves every component that was not given an explicit
// clock, so that a nil *RunObs still yields meaningful phase durations.
var defaultClock = NewSystemClock()

// clockOrDefault maps nil to the shared system clock.
func clockOrDefault(c Clock) Clock {
	if c == nil {
		return defaultClock
	}
	return c
}

// ManualClock is a test clock advanced by hand. The zero value starts at
// zero elapsed time and is ready to use.
type ManualClock struct {
	now atomic.Int64
}

// Now returns the current manual reading.
func (c *ManualClock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d.
func (c *ManualClock) Advance(d time.Duration) { c.now.Add(int64(d)) }

// Set jumps the clock to an absolute reading.
func (c *ManualClock) Set(d time.Duration) { c.now.Store(int64(d)) }
