package obs

import (
	"encoding/json"
	"math"
	"testing"
)

func TestEMRecorderTrajectory(t *testing.T) {
	r := NewEMRecorder()
	g := r.Group("city", "big", 50)
	g.Iter(0.80, 2.0, 0.5, -120)
	g.Iter(0.85, 2.5, 0.4, -100)
	g.Done(2, true, -100)

	snap := r.Snapshot()
	if snap.Groups != 1 || snap.Converged != 1 || snap.TotalIterations != 2 {
		t.Fatalf("aggregates = %+v", snap)
	}
	if snap.MeanIterations != 2 {
		t.Errorf("mean iterations = %g, want 2", snap.MeanIterations)
	}
	rec := snap.Records[0]
	if rec.Type != "city" || rec.Property != "big" || rec.Entities != 50 {
		t.Errorf("record identity = %+v", rec)
	}
	if len(rec.Trajectory) != 2 {
		t.Fatalf("trajectory length = %d, want 2", len(rec.Trajectory))
	}
	first, second := rec.Trajectory[0], rec.Trajectory[1]
	if first.DeltaPA != 0 || first.DeltaNpPlus != 0 || first.DeltaNpMinus != 0 {
		t.Errorf("first iteration deltas = %+v, want zeros", first)
	}
	if math.Abs(second.DeltaPA-0.05) > 1e-12 ||
		math.Abs(second.DeltaNpPlus-0.5) > 1e-12 ||
		math.Abs(second.DeltaNpMinus-0.1) > 1e-12 {
		t.Errorf("second iteration deltas = %+v", second)
	}
	if float64(second.LogLikelihood) != -100 || float64(rec.FinalLogLikelihood) != -100 {
		t.Errorf("log-likelihoods = %v / %v", second.LogLikelihood, rec.FinalLogLikelihood)
	}
}

func TestEMRecorderTrajectoryCap(t *testing.T) {
	r := NewEMRecorder()
	r.MaxTrajectories = 1
	a := r.Group("t", "a", 1)
	a.Iter(0.8, 1, 1, -1)
	a.Done(1, true, -1)
	b := r.Group("t", "b", 1)
	b.Iter(0.8, 1, 1, -1)
	b.Done(1, true, -1)

	snap := r.Snapshot()
	if snap.Groups != 2 {
		t.Fatalf("groups = %d, want 2 (summaries keep counting past the cap)", snap.Groups)
	}
	kept := 0
	for _, rec := range snap.Records {
		if len(rec.Trajectory) > 0 {
			kept++
		}
	}
	if kept != 1 {
		t.Errorf("trajectories kept = %d, want 1", kept)
	}
}

func TestEMRecorderGroupCap(t *testing.T) {
	r := NewEMRecorder()
	r.MaxGroups = 1
	for _, p := range []string{"a", "b", "c"} {
		g := r.Group("t", p, 1)
		g.Done(3, false, -5)
	}
	snap := r.Snapshot()
	if snap.Groups != 3 || snap.TotalIterations != 9 || snap.Converged != 0 {
		t.Errorf("aggregates = %+v, want 3 groups / 9 iters", snap)
	}
	if len(snap.Records) != 1 {
		t.Errorf("records = %d, want 1 (capped)", len(snap.Records))
	}
}

func TestEMRecorderSampling(t *testing.T) {
	r := NewEMRecorder()
	r.SampleBits = 2 // ~1/4 of groups by key hash
	const n = 64
	selected := 0
	for i := 0; i < n; i++ {
		g := r.Group("t", string(rune('a'+i%26))+string(rune('a'+i/26)), 1)
		g.Iter(0.8, 1, 1, -1)
		g.Done(1, true, -1)
	}
	for _, rec := range r.Snapshot().Records {
		if len(rec.Trajectory) > 0 {
			selected++
		}
	}
	if selected == 0 || selected == n {
		t.Errorf("hash sampling selected %d of %d groups; want a strict subset", selected, n)
	}
	// Selection is by key hash: a fresh recorder selects the same groups.
	r2 := NewEMRecorder()
	r2.SampleBits = 2
	for _, rec := range r.Snapshot().Records {
		g := r2.Group(rec.Type, rec.Property, 1)
		g.Iter(0.8, 1, 1, -1)
		g.Done(1, true, -1)
	}
	for i, rec := range r2.Snapshot().Records {
		if (len(rec.Trajectory) > 0) != (len(r.Snapshot().Records[i].Trajectory) > 0) {
			t.Errorf("sampling not deterministic for %s/%s", rec.Type, rec.Property)
		}
	}
}

func TestEMSnapshotSortedAndJSONSafe(t *testing.T) {
	r := NewEMRecorder()
	for _, k := range [][2]string{{"b", "y"}, {"a", "z"}, {"a", "x"}} {
		g := r.Group(k[0], k[1], 1)
		g.Done(1, false, math.Inf(-1)) // degenerate fit: -Inf log-likelihood
	}
	snap := r.Snapshot()
	order := ""
	for _, rec := range snap.Records {
		order += rec.Type + rec.Property + " "
	}
	if order != "ax az by " {
		t.Errorf("records not sorted by (type, property): %s", order)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("-Inf log-likelihood broke JSON encoding: %v", err)
	}
	var back EMSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !math.IsInf(float64(back.Records[0].FinalLogLikelihood), -1) {
		t.Errorf("round-tripped final ll = %v, want -Inf", back.Records[0].FinalLogLikelihood)
	}
}

func TestNilEMRecorder(t *testing.T) {
	var r *EMRecorder
	g := r.Group("t", "p", 1)
	g.Iter(0.8, 1, 1, -1)
	g.Done(1, true, -1)
	if snap := r.Snapshot(); snap.Groups != 0 {
		t.Errorf("nil recorder snapshot = %+v", snap)
	}
}
