package obs

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/wire/framing"
)

// sampleTelemetry builds a representative frame: counters, a gauge, a
// histogram, and spans with args.
func sampleTelemetry() *Telemetry {
	clock := &ManualClock{}
	o := &RunObs{Metrics: NewRegistry(), Tracer: NewTracer(clock), Clock: clock}
	o.Metrics.Counter("surveyor_documents_total", "docs").Add(41)
	o.Metrics.Gauge("surveyor_distinct_pairs", "pairs").Set(7)
	h := o.Metrics.Histogram("surveyor_doc_sentences", "sentences", []float64{1, 4, 16})
	h.Observe(2)
	h.Observe(8)
	h.Observe(100)

	st := o.BeginShardTelemetry()
	clock.Advance(3 * time.Millisecond)
	sp := o.Phase("extract")
	clock.Advance(5 * time.Millisecond)
	sp.End()
	w := o.Worker(0)
	w.DocStart()
	clock.Advance(time.Millisecond)
	w.DocEnd(3, 12, 4)
	w.Close("extract")
	clock.Advance(time.Millisecond)
	return st.Export()
}

func TestTelemetryRoundTrip(t *testing.T) {
	want := sampleTelemetry()
	if len(want.Metrics) == 0 || len(want.Spans) == 0 {
		t.Fatalf("fixture captured nothing: %d metrics, %d spans", len(want.Metrics), len(want.Spans))
	}
	if want.Anchor.Captured <= want.Anchor.JobReceived {
		t.Fatalf("anchor pair not ordered: %+v", want.Anchor)
	}

	var buf bytes.Buffer
	n, err := EncodeTelemetry(&buf, want)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("EncodeTelemetry reported %d bytes, wrote %d", n, buf.Len())
	}
	got, rn, err := DecodeTelemetry(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rn != n {
		t.Fatalf("decode consumed %d bytes, encode wrote %d", rn, n)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestTelemetryEncodingDeterministic(t *testing.T) {
	tel := sampleTelemetry()
	var a, b bytes.Buffer
	if _, err := EncodeTelemetry(&a, tel); err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeTelemetry(&b, tel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("encoding the same telemetry twice produced different bytes")
	}
}

// TestTelemetryAbsentIsCleanEOF: probing an ended stream — an old or
// obs-disabled worker — yields unwrapped io.EOF, the optional-frame
// signal, with zero bytes consumed.
func TestTelemetryAbsentIsCleanEOF(t *testing.T) {
	tel, n, err := DecodeTelemetry(bytes.NewReader(nil))
	if tel != nil || n != 0 || err != io.EOF {
		t.Fatalf("got (%v, %d, %v), want (nil, 0, io.EOF)", tel, n, err)
	}
}

// TestTelemetryVersionGate: a frame with an unknown telemetry version is
// rejected even when the wire envelope is valid.
func TestTelemetryVersionGate(t *testing.T) {
	e := framing.NewEncoder(16)
	e.Uvarint(TelemetryVersion + 1)
	e.Uvarint(0)
	e.Uvarint(0)
	e.Uvarint(0)
	e.Uvarint(0)
	var buf bytes.Buffer
	if _, err := framing.WriteFrame(&buf, TelemetryMagic, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	_, _, err := DecodeTelemetry(&buf)
	if err == nil || !strings.Contains(err.Error(), "unsupported telemetry version") {
		t.Fatalf("err = %v, want version rejection", err)
	}
}

// encodeBody frames a raw telemetry body for decode-rejection tests.
func encodeBody(t *testing.T, build func(e *framing.Encoder)) []byte {
	t.Helper()
	e := framing.NewEncoder(64)
	build(e)
	var buf bytes.Buffer
	if _, err := framing.WriteFrame(&buf, TelemetryMagic, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTelemetryDecodeRejections(t *testing.T) {
	header := func(e *framing.Encoder) {
		e.Uvarint(TelemetryVersion)
		e.Uvarint(0) // jobReceived
		e.Uvarint(0) // captured
	}
	cases := []struct {
		name string
		body func(e *framing.Encoder)
		want string
	}{
		{"metric count over limit", func(e *framing.Encoder) {
			header(e)
			e.Uvarint(maxTelemetryMetrics + 1)
		}, "exceeds limit"},
		{"metric count over capacity", func(e *framing.Encoder) {
			header(e)
			e.Uvarint(1 << 10)
		}, "exceeds body capacity"},
		{"span count over limit", func(e *framing.Encoder) {
			header(e)
			e.Uvarint(0)
			e.Uvarint(maxTelemetrySpans + 1)
		}, "exceeds limit"},
		{"unknown metric kind", func(e *framing.Encoder) {
			header(e)
			e.Uvarint(1)
			e.Uvarint(99)
			e.String("m")
			e.String("")
			e.Uvarint(0)
			e.Uvarint(0)
		}, "unknown metric kind"},
		{"histogram without +Inf", func(e *framing.Encoder) {
			header(e)
			e.Uvarint(1)
			e.Uvarint(uint64(KindHistogram))
			e.String("h")
			e.String("")
			e.Uvarint(1)                   // count
			e.Uvarint(math.Float64bits(1)) // sum
			e.Uvarint(1)                   // buckets
			e.Uvarint(math.Float64bits(5)) // bound: finite, must be +Inf
			e.Uvarint(1)                   // bucket count
			e.Uvarint(0)                   // spans
		}, "not +Inf"},
		{"histogram bounds not ascending", func(e *framing.Encoder) {
			header(e)
			e.Uvarint(1)
			e.Uvarint(uint64(KindHistogram))
			e.String("h")
			e.String("")
			e.Uvarint(1)
			e.Uvarint(math.Float64bits(1))
			e.Uvarint(3)
			e.Uvarint(math.Float64bits(5))
			e.Uvarint(0)
			e.Uvarint(math.Float64bits(2)) // below previous bound
			e.Uvarint(0)
			e.Uvarint(math.Float64bits(math.Inf(1)))
			e.Uvarint(0)
			e.Uvarint(0)
		}, "not strictly ascending"},
		{"implausible span tid", func(e *framing.Encoder) {
			header(e)
			e.Uvarint(0)
			e.Uvarint(1)
			e.String("s")
			e.String("c")
			e.Uvarint(math.MaxUint64) // tid
			e.Uvarint(0)
			e.Uvarint(0)
			e.Uvarint(0)
		}, "implausible tid"},
		{"trailing bytes", func(e *framing.Encoder) {
			header(e)
			e.Uvarint(0)
			e.Uvarint(0)
			e.Uvarint(7)
		}, "trailing bytes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame := encodeBody(t, tc.body)
			_, _, err := DecodeTelemetry(bytes.NewReader(frame))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestTelemetryTruncated: every prefix of a valid frame fails cleanly
// (EOF for the empty prefix, an error for all others), never panics.
func TestTelemetryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if _, err := EncodeTelemetry(&buf, sampleTelemetry()); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	for cut := 0; cut < len(frame); cut++ {
		_, _, err := DecodeTelemetry(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(frame))
		}
		if cut == 0 && !errors.Is(err, io.EOF) {
			t.Fatalf("empty stream: err = %v, want io.EOF", err)
		}
	}
}

// FuzzTelemetryDecode holds the telemetry codec to the validated-decode
// contract: arbitrary bytes must fail cleanly (or round-trip exactly),
// never panic, never over-allocate.
func FuzzTelemetryDecode(f *testing.F) {
	var seed bytes.Buffer
	if _, err := EncodeTelemetry(&seed, sampleTelemetry()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("SVTM"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tel, n, err := DecodeTelemetry(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n > int64(len(data)) {
			t.Fatalf("decode consumed %d bytes of %d", n, len(data))
		}
		// A successful decode must re-encode to a stable frame: encode →
		// decode → encode yields identical bytes. (Byte comparison rather
		// than DeepEqual so NaN-valued metrics from fuzzed bit patterns
		// compare by representation.)
		var buf bytes.Buffer
		if _, err := EncodeTelemetry(&buf, tel); err != nil {
			t.Fatalf("re-encode of decoded telemetry failed: %v", err)
		}
		again, _, err := DecodeTelemetry(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		var buf2 bytes.Buffer
		if _, err := EncodeTelemetry(&buf2, again); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("decode → encode → decode is not byte-stable")
		}
	})
}
