// Package framing is the dependency-free lower half of the wire format:
// the varint body encoder/decoder and the framed-payload reader/writer
// (magic + version + length + body + FNV-1a checksum). Package wire
// re-exports everything here under its own name and layers the
// evidence-store codec on top; package obs builds its telemetry frame
// codec directly on framing so the observability layer never imports the
// evidence graph (which imports obs back — the split exists to break that
// cycle). Error strings keep the "wire:" prefix: framing is an internal
// detail of the wire format, not a separate protocol.
package framing

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// Format limits. They bound what a decoder will allocate on behalf of a
// frame before its content has proven itself.
const (
	// Version is the wire-format version emitted by this package.
	Version = 1
	// MaxFrameBytes caps one frame body (1 GiB). Evidence snapshots are
	// compact — the paper's 40TB crawl reduced to counters — so a larger
	// declared length is corruption, not data.
	MaxFrameBytes = 1 << 30
	// MaxStringLen caps one length-prefixed string inside a body, matching
	// the annotate codec's property bound.
	MaxStringLen = 1 << 20
	// initialAlloc caps what a decoder allocates before the declared
	// length has been backed by actual bytes.
	initialAlloc = 1 << 20
)

// ErrBadMagic reports a frame whose magic does not match the expected
// frame type. Distinguished so protocol code can detect stream desync.
var ErrBadMagic = errors.New("wire: bad frame magic")

// ErrChecksum reports a frame whose body failed checksum validation.
var ErrChecksum = errors.New("wire: frame checksum mismatch")

// --- body encoder ----------------------------------------------------------

// Encoder appends varint-encoded values to a byte slice — the body half
// of a frame. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with a pre-sized buffer.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Uvarint appends one unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends one signed varint (zigzag encoding).
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// String appends one length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes returns the encoded body. The slice aliases the encoder's
// buffer; it is valid until the next append.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded body length so far.
func (e *Encoder) Len() int { return len(e.buf) }

// --- body decoder ----------------------------------------------------------

// Decoder consumes varint-encoded values from a byte slice. The first
// error sticks: every later read returns zero values.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over body.
func NewDecoder(body []byte) *Decoder { return &Decoder{buf: body} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Uvarint consumes one unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Varint consumes one signed varint (zigzag encoding).
func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// String consumes one length-prefixed string, bounds-checked against
// MaxStringLen and the remaining body.
func (d *Decoder) String() string { return d.StringMax(MaxStringLen) }

// StringMax consumes one length-prefixed string under an explicit length
// cap, for fields (document text) whose legitimate size exceeds
// MaxStringLen.
func (d *Decoder) StringMax(max int) string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(max) {
		d.fail("string length %d exceeds limit %d", n, max)
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds remaining body %d", n, d.Remaining())
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// --- framing ---------------------------------------------------------------

// WriteFrame writes one framed body: magic, version byte, uvarint length,
// body, FNV-1a checksum. Returns the total bytes written.
func WriteFrame(w io.Writer, magic string, body []byte) (int64, error) {
	if len(magic) != 4 {
		return 0, fmt.Errorf("wire: frame magic %q must be 4 bytes", magic)
	}
	var hdr [4 + 1 + binary.MaxVarintLen64]byte
	n := copy(hdr[:], magic)
	hdr[n] = Version
	n++
	n += binary.PutUvarint(hdr[n:], uint64(len(body)))
	written := int64(0)
	for _, chunk := range [][]byte{hdr[:n], body, checksum(body)} {
		m, err := w.Write(chunk)
		written += int64(m)
		if err != nil {
			return written, fmt.Errorf("wire: write frame: %w", err)
		}
	}
	return written, nil
}

// checksum returns the 8-byte little-endian FNV-1a digest of body.
func checksum(body []byte) []byte {
	h := fnv.New64a()
	h.Write(body)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	return sum[:]
}

// ReadFrame reads one framed body written by WriteFrame, validating the
// magic, version, declared length, and checksum. Returns the body and the
// total bytes consumed. io.EOF is returned unwrapped when the stream ends
// cleanly before the first magic byte, so callers can iterate frames.
//
// Allocation is bounded: the body buffer starts at min(length,
// initialAlloc) and grows only as actual bytes arrive, so a forged
// multi-gigabyte length costs a bounded allocation before the truncated
// read fails.
func ReadFrame(r io.Reader, magic string) (body []byte, n int64, err error) {
	_, body, n, err = readFrame(r, magic)
	return body, n, err
}

// ReadFrameAny reads one frame of any type and returns its magic
// alongside the body — the demultiplexing primitive for streams that
// interleave frame types (a socket worker's heartbeat frames between its
// result frames). Validation is identical to ReadFrame except that any
// 4-byte magic is accepted.
func ReadFrameAny(r io.Reader) (magic string, body []byte, n int64, err error) {
	return readFrame(r, "")
}

// readFrame is the shared implementation: want == "" accepts any magic.
// A magic mismatch fails before the length is trusted, so a desynced
// stream is reported as ErrBadMagic rather than a garbage length.
func readFrame(r io.Reader, want string) (magic string, body []byte, n int64, err error) {
	var hdr [5]byte
	m, err := io.ReadFull(r, hdr[:])
	n = int64(m)
	if err != nil {
		if errors.Is(err, io.EOF) && m == 0 {
			// Bare io.EOF is the documented clean end-of-stream: callers
			// iterate frames by matching it. (errflow binds to the exported
			// wrappers, which pass it through untouched.)
			return "", nil, 0, io.EOF
		}
		return "", nil, n, fmt.Errorf("wire: read frame header: %w", err)
	}
	magic = string(hdr[:4])
	if want != "" && magic != want {
		return magic, nil, n, fmt.Errorf("%w: got %q, want %q", ErrBadMagic, hdr[:4], want)
	}
	if hdr[4] != Version {
		return magic, nil, n, fmt.Errorf("wire: unsupported frame version %d (want %d)", hdr[4], Version)
	}
	length, m2, err := readUvarint(r)
	n += int64(m2)
	if err != nil {
		return magic, nil, n, fmt.Errorf("wire: read frame length: %w", err)
	}
	if length > MaxFrameBytes {
		return magic, nil, n, fmt.Errorf("wire: frame length %d exceeds limit %d", length, MaxFrameBytes)
	}
	body = make([]byte, 0, min(length, initialAlloc))
	for uint64(len(body)) < length {
		chunk := min(length-uint64(len(body)), initialAlloc)
		start := len(body)
		body = append(body, make([]byte, chunk)...)
		m, err := io.ReadFull(r, body[start:])
		n += int64(m)
		if err != nil {
			return magic, nil, n, fmt.Errorf("wire: read frame body: %w", err)
		}
	}
	var sum [8]byte
	m, err = io.ReadFull(r, sum[:])
	n += int64(m)
	if err != nil {
		return magic, nil, n, fmt.Errorf("wire: read frame checksum: %w", err)
	}
	h := fnv.New64a()
	h.Write(body)
	if binary.LittleEndian.Uint64(sum[:]) != h.Sum64() {
		return magic, nil, n, ErrChecksum
	}
	return magic, body, n, nil
}

// readUvarint reads one varint from r byte by byte, counting consumed
// bytes (bufio would read ahead and desync the frame stream).
func readUvarint(r io.Reader) (uint64, int, error) {
	var v uint64
	var b [1]byte
	for shift, read := 0, 0; ; shift += 7 {
		if shift >= 64 {
			return 0, read, errors.New("varint overflows uint64")
		}
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, read, err
		}
		read++
		v |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			return v, read, nil
		}
	}
}
