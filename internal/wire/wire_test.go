package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"repro/internal/evidence"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/stats"
)

// randomStore builds a store with pseudo-random contents, deterministic
// in seed. Properties reuse a small pool so duplicate (entity, property)
// keys accumulate, as they do in a real run.
func randomStore(seed uint64, entries int) *evidence.Store {
	rng := stats.NewRNG(seed)
	props := []string{"big", "cute", "dangerous", "beautiful", "calm", "famous", ""}
	s := evidence.NewStore()
	for i := 0; i < entries; i++ {
		st := extract.Statement{
			Entity:   kb.EntityID(rng.Uint64() % 64),
			Property: props[rng.Uint64()%uint64(len(props))],
			Polarity: extract.Positive,
		}
		if rng.Uint64()%3 == 0 {
			st.Polarity = extract.Negative
		}
		s.Add(st)
	}
	return s
}

func sameSnapshot(t *testing.T, want, got *evidence.Store) {
	t.Helper()
	ws, gs := want.Snapshot(), got.Snapshot()
	if len(ws) != len(gs) {
		t.Fatalf("snapshot length: want %d, got %d", len(ws), len(gs))
	}
	for i := range ws {
		if ws[i] != gs[i] {
			t.Fatalf("snapshot entry %d: want %+v, got %+v", i, ws[i], gs[i])
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		for _, entries := range []int{0, 1, 7, 500} {
			s := randomStore(seed, entries)
			var buf bytes.Buffer
			wrote, err := EncodeStore(&buf, s)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if wrote != int64(buf.Len()) {
				t.Fatalf("reported %d written bytes, buffer has %d", wrote, buf.Len())
			}
			dec, read, err := DecodeStore(&buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if read != wrote {
				t.Fatalf("decode consumed %d bytes, encode wrote %d", read, wrote)
			}
			sameSnapshot(t, s, dec)
		}
	}
}

// TestEncodeDeterministic pins that two stores with equal content encode
// to identical bytes regardless of insertion order — the property that
// makes coordinator-side byte comparisons meaningful.
func TestEncodeDeterministic(t *testing.T) {
	a := evidence.NewStore()
	b := evidence.NewStore()
	keys := []evidence.Key{
		{Entity: 3, Property: "big"},
		{Entity: 1, Property: "cute"},
		{Entity: 3, Property: "calm"},
	}
	for _, k := range keys {
		a.AddCounts(k, evidence.Counts{Pos: 2, Neg: 1})
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.AddCounts(keys[i], evidence.Counts{Pos: 2, Neg: 1})
	}
	var ab, bb bytes.Buffer
	if _, err := EncodeStore(&ab, a); err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeStore(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab.Bytes(), bb.Bytes()) {
		t.Fatal("equal stores encoded to different bytes")
	}
}

// TestConcatenatedFramesEqualMerge is the shard-invariance property one
// level down: decoding k concatenated shard frames equals Merge over the
// individually decoded shards.
func TestConcatenatedFramesEqualMerge(t *testing.T) {
	shards := []*evidence.Store{
		randomStore(10, 200), randomStore(11, 50), randomStore(12, 0), randomStore(13, 321),
	}
	var concat bytes.Buffer
	merged := evidence.NewStore()
	for _, s := range shards {
		if _, err := EncodeStore(&concat, s); err != nil {
			t.Fatal(err)
		}
		merged.Merge(s)
	}
	dec, n, err := DecodeStores(&concat)
	if err != nil {
		t.Fatalf("decode concatenated: %v", err)
	}
	if n == 0 {
		t.Fatal("decoded zero bytes")
	}
	sameSnapshot(t, merged, dec)
}

func TestDecodeRejects(t *testing.T) {
	var good bytes.Buffer
	if _, err := EncodeStore(&good, randomStore(1, 40)); err != nil {
		t.Fatal(err)
	}
	frame := good.Bytes()

	corrupt := func(mutate func(b []byte) []byte) error {
		b := mutate(append([]byte(nil), frame...))
		_, _, err := DecodeStore(bytes.NewReader(b))
		return err
	}

	if err := corrupt(func(b []byte) []byte { b[0] = 'X'; return b }); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v, want ErrBadMagic", err)
	}
	if err := corrupt(func(b []byte) []byte { b[4] = 99; return b }); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("bad version: got %v", err)
	}
	if err := corrupt(func(b []byte) []byte { b[len(b)/2] ^= 0xff; return b }); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped body byte: got %v, want ErrChecksum", err)
	}
	if err := corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }); !errors.Is(err, ErrChecksum) {
		t.Errorf("flipped checksum byte: got %v, want ErrChecksum", err)
	}
	if err := corrupt(func(b []byte) []byte { return b[:len(b)-9] }); err == nil {
		t.Error("truncated frame decoded without error")
	}
	if _, _, err := DecodeStore(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty stream: got %v, want io.EOF", err)
	}
}

// TestForgedLengthBounded proves a forged multi-gigabyte length fails
// after a bounded allocation: the frame declares MaxFrameBytes but
// carries almost no data, and the decode must error out (truncated body)
// rather than allocate the declared size up front.
func TestForgedLengthBounded(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(StoreMagic)
	buf.WriteByte(Version)
	buf.Write(binary.AppendUvarint(nil, MaxFrameBytes))
	buf.WriteString("short")
	_, _, err := DecodeStore(&buf)
	if err == nil {
		t.Fatal("forged length decoded without error")
	}

	// Over the limit: rejected before any body allocation.
	buf.Reset()
	buf.WriteString(StoreMagic)
	buf.WriteByte(Version)
	buf.Write(binary.AppendUvarint(nil, uint64(MaxFrameBytes)+1))
	_, _, err = DecodeStore(&buf)
	if err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("over-limit length: got %v", err)
	}
}

// TestForgedEntryCountRejected: a tiny body cannot claim millions of
// entries.
func TestForgedEntryCountRejected(t *testing.T) {
	e := NewEncoder(16)
	e.Uvarint(1 << 40) // entry count far beyond the body's capacity
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, StoreMagic, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	_, _, err := DecodeStore(&buf)
	if err == nil || !strings.Contains(err.Error(), "entry count") {
		t.Fatalf("forged entry count: got %v", err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	e := NewEncoder(16)
	e.Uvarint(0) // zero entries
	e.Uvarint(7) // trailing garbage
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, StoreMagic, e.Bytes()); err != nil {
		t.Fatal(err)
	}
	_, _, err := DecodeStore(&buf)
	if err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing bytes: got %v", err)
	}
}

func TestDecoderPrimitives(t *testing.T) {
	e := NewEncoder(0)
	e.Uvarint(0)
	e.Uvarint(1<<63 + 5)
	e.String("hello")
	e.String("")
	d := NewDecoder(e.Bytes())
	if v := d.Uvarint(); v != 0 {
		t.Errorf("uvarint: got %d, want 0", v)
	}
	if v := d.Uvarint(); v != 1<<63+5 {
		t.Errorf("uvarint: got %d", v)
	}
	if s := d.String(); s != "hello" {
		t.Errorf("string: got %q", s)
	}
	if s := d.String(); s != "" {
		t.Errorf("string: got %q, want empty", s)
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Errorf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
	// Reading past the end sticks an error and keeps returning zeros.
	if v := d.Uvarint(); v != 0 || d.Err() == nil {
		t.Errorf("read past end: v=%d err=%v", v, d.Err())
	}
	if s := d.String(); s != "" {
		t.Errorf("string after error: %q", s)
	}
}

func TestStringBounds(t *testing.T) {
	// Length prefix larger than the remaining body.
	d := NewDecoder(binary.AppendUvarint(nil, 100))
	if s := d.String(); s != "" || d.Err() == nil {
		t.Errorf("oversized string: s=%q err=%v", s, d.Err())
	}
	// Length prefix over the absolute cap.
	d = NewDecoder(binary.AppendUvarint(nil, MaxStringLen+1))
	if s := d.String(); s != "" || d.Err() == nil || !strings.Contains(d.Err().Error(), "limit") {
		t.Errorf("over-cap string: s=%q err=%v", s, d.Err())
	}
}

func TestWriteFrameBadMagic(t *testing.T) {
	if _, err := WriteFrame(io.Discard, "TOOLONG", nil); err == nil {
		t.Fatal("5-byte magic accepted")
	}
}
