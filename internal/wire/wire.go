// Package wire is the binary wire format of the distributed miner: a
// compact, length-prefixed, checksummed frame codec for evidence.Store
// snapshots and the low-level primitives (varint encoder/decoder, framed
// payloads) the coordinator/worker protocol of internal/dist builds its
// messages from. The primitives live in the dependency-free subpackage
// framing (so internal/obs can build its telemetry codec on them without
// importing the evidence graph) and are re-exported here — wire remains
// the one name protocol code imports.
//
// Frame layout (all integers unsigned varints unless noted):
//
//	magic    4 bytes, per frame type ("SVWS" for a store snapshot)
//	version  1 byte (currently 1)
//	length   uvarint, byte length of body
//	body     length bytes
//	checksum 8 bytes little-endian, FNV-1a over body
//
// A store body is one uvarint entry count followed by that many entries,
// each ⟨entity, propertyLen, propertyBytes, pos, neg⟩, emitted in the
// deterministic Snapshot order (entity, then property) so encoding the
// same store always yields the same bytes.
//
// Decoding applies the validated-decode lessons of the internal/annotate
// codec: every length and count is bounds-checked before allocation, the
// declared body length is capped (MaxFrameBytes) and read through an
// allocation-bounded loop so a forged header cannot cost gigabytes, the
// checksum is verified before any entry is parsed, and counter values
// must fit in int64. Arbitrary input bytes therefore fail cleanly with an
// error — never a panic, never an over-allocation. FuzzWireDecode holds
// the package to that contract.
package wire

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/evidence"
	"repro/internal/kb"
	"repro/internal/wire/framing"
)

// Format limits, re-exported from framing. They bound what a decoder
// will allocate on behalf of a frame before its content has proven
// itself.
const (
	// Version is the wire-format version emitted by this package.
	Version = framing.Version
	// MaxFrameBytes caps one frame body (1 GiB). Evidence snapshots are
	// compact — the paper's 40TB crawl reduced to counters — so a larger
	// declared length is corruption, not data.
	MaxFrameBytes = framing.MaxFrameBytes
	// MaxStringLen caps one length-prefixed string inside a body, matching
	// the annotate codec's property bound.
	MaxStringLen = framing.MaxStringLen
)

// StoreMagic marks an evidence-store snapshot frame.
const StoreMagic = "SVWS"

// ErrBadMagic reports a frame whose magic does not match the expected
// frame type. Distinguished so protocol code can detect stream desync.
var ErrBadMagic = framing.ErrBadMagic

// ErrChecksum reports a frame whose body failed checksum validation.
var ErrChecksum = framing.ErrChecksum

// Encoder appends varint-encoded values to a byte slice — the body half
// of a frame. The zero value is ready to use.
type Encoder = framing.Encoder

// Decoder consumes varint-encoded values from a byte slice. The first
// error sticks: every later read returns zero values.
type Decoder = framing.Decoder

// NewEncoder returns an encoder with a pre-sized buffer.
func NewEncoder(sizeHint int) *Encoder { return framing.NewEncoder(sizeHint) }

// NewDecoder returns a decoder over body.
func NewDecoder(body []byte) *Decoder { return framing.NewDecoder(body) }

// WriteFrame writes one framed body: magic, version byte, uvarint length,
// body, FNV-1a checksum. Returns the total bytes written.
func WriteFrame(w io.Writer, magic string, body []byte) (int64, error) {
	return framing.WriteFrame(w, magic, body)
}

// ReadFrame reads one framed body written by WriteFrame, validating the
// magic, version, declared length, and checksum. Returns the body and the
// total bytes consumed. io.EOF is returned unwrapped when the stream ends
// cleanly before the first magic byte, so callers can iterate frames.
func ReadFrame(r io.Reader, magic string) (body []byte, n int64, err error) {
	return framing.ReadFrame(r, magic)
}

// ReadFrameAny reads one frame of any type and returns its magic
// alongside the body — the demultiplexing primitive for streams that
// interleave frame types (heartbeats between protocol frames on a socket
// connection).
func ReadFrameAny(r io.Reader) (magic string, body []byte, n int64, err error) {
	return framing.ReadFrameAny(r)
}

// --- evidence store codec --------------------------------------------------

// AppendStore appends the body encoding of the store's snapshot: entry
// count, then ⟨entity, property, pos, neg⟩ per entry in snapshot order.
// Counters are encoded as unsigned varints; the Store never holds
// negative counts.
func AppendStore(e *Encoder, s *evidence.Store) {
	snap := s.Snapshot()
	e.Uvarint(uint64(len(snap)))
	for _, entry := range snap {
		e.Uvarint(uint64(entry.Entity))
		e.String(entry.Property)
		e.Uvarint(uint64(entry.Pos))
		e.Uvarint(uint64(entry.Neg))
	}
}

// EncodeStore writes one framed store snapshot and returns the bytes
// written. Encoding the same store content always produces the same
// bytes: the body iterates the deterministic snapshot order.
func EncodeStore(w io.Writer, s *evidence.Store) (int64, error) {
	e := NewEncoder(16 + 16*s.Len())
	AppendStore(e, s)
	return WriteFrame(w, StoreMagic, e.Bytes())
}

// DecodeStoreBody parses a store frame body into a fresh store.
// Duplicate keys merge additively (encode never emits them, but decode
// accepts any well-formed body).
func DecodeStoreBody(body []byte) (*evidence.Store, error) {
	d := NewDecoder(body)
	count := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("wire: store entry count: %w", err)
	}
	// Each entry is at least 4 bytes (three varints and an empty string's
	// length prefix), so the remaining body bounds the plausible count.
	if count > uint64(d.Remaining())/4+1 {
		return nil, fmt.Errorf("wire: entry count %d exceeds body capacity %d", count, d.Remaining())
	}
	s := evidence.NewStore()
	for i := uint64(0); i < count; i++ {
		ent := d.Uvarint()
		prop := d.String()
		pos := d.Uvarint()
		neg := d.Uvarint()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("wire: store entry %d: %w", i, err)
		}
		if ent > math.MaxInt64 || pos > math.MaxInt64 || neg > math.MaxInt64 {
			return nil, fmt.Errorf("wire: store entry %d: value overflows int64", i)
		}
		s.AddCounts(evidence.Key{Entity: kb.EntityID(ent), Property: prop},
			evidence.Counts{Pos: int64(pos), Neg: int64(neg)})
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d store entries", d.Remaining(), count)
	}
	return s, nil
}

// DecodeStore reads one framed store snapshot and returns the store and
// the bytes consumed.
func DecodeStore(r io.Reader) (*evidence.Store, int64, error) {
	body, n, err := ReadFrame(r, StoreMagic)
	if err != nil {
		return nil, n, err
	}
	s, err := DecodeStoreBody(body)
	return s, n, err
}

// DecodeStores reads concatenated store frames until EOF and merges them
// into one store — the reduce half of the shard-invariance contract:
// decoding k concatenated shard frames equals Merge over the k
// individually decoded stores, which equals the store of the unsharded
// run. Returns the merged store and the total bytes consumed.
func DecodeStores(r io.Reader) (*evidence.Store, int64, error) {
	merged := evidence.NewStore()
	var total int64
	for {
		s, n, err := DecodeStore(r)
		total += n
		if errors.Is(err, io.EOF) {
			return merged, total, nil
		}
		if err != nil {
			return nil, total, err
		}
		merged.Merge(s)
	}
}
