// Package wire is the binary wire format of the distributed miner: a
// compact, length-prefixed, checksummed frame codec for evidence.Store
// snapshots and the low-level primitives (varint encoder/decoder, framed
// payloads) the coordinator/worker protocol of internal/dist builds its
// messages from.
//
// Frame layout (all integers unsigned varints unless noted):
//
//	magic    4 bytes, per frame type ("SVWS" for a store snapshot)
//	version  1 byte (currently 1)
//	length   uvarint, byte length of body
//	body     length bytes
//	checksum 8 bytes little-endian, FNV-1a over body
//
// A store body is one uvarint entry count followed by that many entries,
// each ⟨entity, propertyLen, propertyBytes, pos, neg⟩, emitted in the
// deterministic Snapshot order (entity, then property) so encoding the
// same store always yields the same bytes.
//
// Decoding applies the validated-decode lessons of the internal/annotate
// codec: every length and count is bounds-checked before allocation, the
// declared body length is capped (MaxFrameBytes) and read through an
// allocation-bounded loop so a forged header cannot cost gigabytes, the
// checksum is verified before any entry is parsed, and counter values
// must fit in int64. Arbitrary input bytes therefore fail cleanly with an
// error — never a panic, never an over-allocation. FuzzWireDecode holds
// the package to that contract.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"repro/internal/evidence"
	"repro/internal/kb"
)

// Format limits. They bound what a decoder will allocate on behalf of a
// frame before its content has proven itself.
const (
	// Version is the wire-format version emitted by this package.
	Version = 1
	// MaxFrameBytes caps one frame body (1 GiB). Evidence snapshots are
	// compact — the paper's 40TB crawl reduced to counters — so a larger
	// declared length is corruption, not data.
	MaxFrameBytes = 1 << 30
	// MaxStringLen caps one length-prefixed string inside a body, matching
	// the annotate codec's property bound.
	MaxStringLen = 1 << 20
	// initialAlloc caps what a decoder allocates before the declared
	// length has been backed by actual bytes.
	initialAlloc = 1 << 20
)

// StoreMagic marks an evidence-store snapshot frame.
const StoreMagic = "SVWS"

// ErrBadMagic reports a frame whose magic does not match the expected
// frame type. Distinguished so protocol code can detect stream desync.
var ErrBadMagic = errors.New("wire: bad frame magic")

// ErrChecksum reports a frame whose body failed checksum validation.
var ErrChecksum = errors.New("wire: frame checksum mismatch")

// --- body encoder ----------------------------------------------------------

// Encoder appends varint-encoded values to a byte slice — the body half
// of a frame. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with a pre-sized buffer.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{buf: make([]byte, 0, sizeHint)}
}

// Uvarint appends one unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// String appends one length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes returns the encoded body. The slice aliases the encoder's
// buffer; it is valid until the next append.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the encoded body length so far.
func (e *Encoder) Len() int { return len(e.buf) }

// --- body decoder ----------------------------------------------------------

// Decoder consumes varint-encoded values from a byte slice. The first
// error sticks: every later read returns zero values.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over body.
func NewDecoder(body []byte) *Decoder { return &Decoder{buf: body} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Uvarint consumes one unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or malformed varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// String consumes one length-prefixed string, bounds-checked against
// MaxStringLen and the remaining body.
func (d *Decoder) String() string { return d.StringMax(MaxStringLen) }

// StringMax consumes one length-prefixed string under an explicit length
// cap, for fields (document text) whose legitimate size exceeds
// MaxStringLen.
func (d *Decoder) StringMax(max int) string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(max) {
		d.fail("string length %d exceeds limit %d", n, max)
		return ""
	}
	if n > uint64(d.Remaining()) {
		d.fail("string length %d exceeds remaining body %d", n, d.Remaining())
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// --- framing ---------------------------------------------------------------

// WriteFrame writes one framed body: magic, version byte, uvarint length,
// body, FNV-1a checksum. Returns the total bytes written.
func WriteFrame(w io.Writer, magic string, body []byte) (int64, error) {
	if len(magic) != 4 {
		return 0, fmt.Errorf("wire: frame magic %q must be 4 bytes", magic)
	}
	var hdr [4 + 1 + binary.MaxVarintLen64]byte
	n := copy(hdr[:], magic)
	hdr[n] = Version
	n++
	n += binary.PutUvarint(hdr[n:], uint64(len(body)))
	written := int64(0)
	for _, chunk := range [][]byte{hdr[:n], body, checksum(body)} {
		m, err := w.Write(chunk)
		written += int64(m)
		if err != nil {
			return written, fmt.Errorf("wire: write frame: %w", err)
		}
	}
	return written, nil
}

// checksum returns the 8-byte little-endian FNV-1a digest of body.
func checksum(body []byte) []byte {
	h := fnv.New64a()
	h.Write(body)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], h.Sum64())
	return sum[:]
}

// ReadFrame reads one framed body written by WriteFrame, validating the
// magic, version, declared length, and checksum. Returns the body and the
// total bytes consumed. io.EOF is returned unwrapped when the stream ends
// cleanly before the first magic byte, so callers can iterate frames.
//
// Allocation is bounded: the body buffer starts at min(length,
// initialAlloc) and grows only as actual bytes arrive, so a forged
// multi-gigabyte length costs a bounded allocation before the truncated
// read fails.
func ReadFrame(r io.Reader, magic string) (body []byte, n int64, err error) {
	var hdr [5]byte
	m, err := io.ReadFull(r, hdr[:])
	n = int64(m)
	if err != nil {
		if errors.Is(err, io.EOF) && m == 0 {
			return nil, 0, io.EOF //lint:allow errflow documented clean-EOF contract: callers iterate frames by matching io.EOF
		}
		return nil, n, fmt.Errorf("wire: read frame header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return nil, n, fmt.Errorf("%w: got %q, want %q", ErrBadMagic, hdr[:4], magic)
	}
	if hdr[4] != Version {
		return nil, n, fmt.Errorf("wire: unsupported frame version %d (want %d)", hdr[4], Version)
	}
	length, m2, err := readUvarint(r)
	n += int64(m2)
	if err != nil {
		return nil, n, fmt.Errorf("wire: read frame length: %w", err)
	}
	if length > MaxFrameBytes {
		return nil, n, fmt.Errorf("wire: frame length %d exceeds limit %d", length, MaxFrameBytes)
	}
	body = make([]byte, 0, min(length, initialAlloc))
	for uint64(len(body)) < length {
		chunk := min(length-uint64(len(body)), initialAlloc)
		start := len(body)
		body = append(body, make([]byte, chunk)...)
		m, err := io.ReadFull(r, body[start:])
		n += int64(m)
		if err != nil {
			return nil, n, fmt.Errorf("wire: read frame body: %w", err)
		}
	}
	var sum [8]byte
	m, err = io.ReadFull(r, sum[:])
	n += int64(m)
	if err != nil {
		return nil, n, fmt.Errorf("wire: read frame checksum: %w", err)
	}
	h := fnv.New64a()
	h.Write(body)
	if binary.LittleEndian.Uint64(sum[:]) != h.Sum64() {
		return nil, n, ErrChecksum
	}
	return body, n, nil
}

// readUvarint reads one varint from r byte by byte, counting consumed
// bytes (bufio would read ahead and desync the frame stream).
func readUvarint(r io.Reader) (uint64, int, error) {
	var v uint64
	var b [1]byte
	for shift, read := 0, 0; ; shift += 7 {
		if shift >= 64 {
			return 0, read, errors.New("varint overflows uint64")
		}
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, read, err
		}
		read++
		v |= uint64(b[0]&0x7f) << shift
		if b[0] < 0x80 {
			return v, read, nil
		}
	}
}

// --- evidence store codec --------------------------------------------------

// AppendStore appends the body encoding of the store's snapshot: entry
// count, then ⟨entity, property, pos, neg⟩ per entry in snapshot order.
// Counters are encoded as unsigned varints; the Store never holds
// negative counts.
func AppendStore(e *Encoder, s *evidence.Store) {
	snap := s.Snapshot()
	e.Uvarint(uint64(len(snap)))
	for _, entry := range snap {
		e.Uvarint(uint64(entry.Entity))
		e.String(entry.Property)
		e.Uvarint(uint64(entry.Pos))
		e.Uvarint(uint64(entry.Neg))
	}
}

// EncodeStore writes one framed store snapshot and returns the bytes
// written. Encoding the same store content always produces the same
// bytes: the body iterates the deterministic snapshot order.
func EncodeStore(w io.Writer, s *evidence.Store) (int64, error) {
	e := NewEncoder(16 + 16*s.Len())
	AppendStore(e, s)
	return WriteFrame(w, StoreMagic, e.Bytes())
}

// DecodeStoreBody parses a store frame body into a fresh store.
// Duplicate keys merge additively (encode never emits them, but decode
// accepts any well-formed body).
func DecodeStoreBody(body []byte) (*evidence.Store, error) {
	d := NewDecoder(body)
	count := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, err
	}
	// Each entry is at least 4 bytes (three varints and an empty string's
	// length prefix), so the remaining body bounds the plausible count.
	if count > uint64(d.Remaining())/4+1 {
		return nil, fmt.Errorf("wire: entry count %d exceeds body capacity %d", count, d.Remaining())
	}
	s := evidence.NewStore()
	for i := uint64(0); i < count; i++ {
		ent := d.Uvarint()
		prop := d.String()
		pos := d.Uvarint()
		neg := d.Uvarint()
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("wire: store entry %d: %w", i, err)
		}
		if ent > math.MaxInt64 || pos > math.MaxInt64 || neg > math.MaxInt64 {
			return nil, fmt.Errorf("wire: store entry %d: value overflows int64", i)
		}
		s.AddCounts(evidence.Key{Entity: kb.EntityID(ent), Property: prop},
			evidence.Counts{Pos: int64(pos), Neg: int64(neg)})
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %d store entries", d.Remaining(), count)
	}
	return s, nil
}

// DecodeStore reads one framed store snapshot and returns the store and
// the bytes consumed.
func DecodeStore(r io.Reader) (*evidence.Store, int64, error) {
	body, n, err := ReadFrame(r, StoreMagic)
	if err != nil {
		return nil, n, err
	}
	s, err := DecodeStoreBody(body)
	return s, n, err
}

// DecodeStores reads concatenated store frames until EOF and merges them
// into one store — the reduce half of the shard-invariance contract:
// decoding k concatenated shard frames equals Merge over the k
// individually decoded stores, which equals the store of the unsharded
// run. Returns the merged store and the total bytes consumed.
func DecodeStores(r io.Reader) (*evidence.Store, int64, error) {
	merged := evidence.NewStore()
	var total int64
	for {
		s, n, err := DecodeStore(r)
		total += n
		if errors.Is(err, io.EOF) {
			return merged, total, nil
		}
		if err != nil {
			return nil, total, err
		}
		merged.Merge(s)
	}
}
