package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzWireDecode holds the decoder to the validated-decode contract over
// arbitrary bytes: never panic, never allocate past the declared bounds,
// and stay round-trip consistent — whatever decodes successfully must
// re-encode and decode back to an identical snapshot, and a stream of
// concatenated frames must decode to exactly the Merge of the
// individually decoded frames.
func FuzzWireDecode(f *testing.F) {
	// Seeds: a healthy frame, concatenated frames, an empty store, and a
	// few deliberately broken prefixes.
	var healthy, concat, empty bytes.Buffer
	if _, err := EncodeStore(&healthy, randomStore(1, 64)); err != nil {
		f.Fatal(err)
	}
	if _, err := EncodeStore(&concat, randomStore(2, 32)); err != nil {
		f.Fatal(err)
	}
	concat.Write(healthy.Bytes())
	if _, err := EncodeStore(&empty, randomStore(0, 0)); err != nil {
		f.Fatal(err)
	}
	f.Add(healthy.Bytes())
	f.Add(concat.Bytes())
	f.Add(empty.Bytes())
	f.Add([]byte(StoreMagic))
	f.Add(append([]byte(StoreMagic), Version, 0xff, 0xff, 0xff, 0xff, 0x0f))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Single-frame decode must fail cleanly or produce a store that
		// round-trips bit-identically through a fresh encode.
		s, n, err := DecodeStore(bytes.NewReader(data))
		if err == nil {
			if n > int64(len(data)) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(data))
			}
			var re bytes.Buffer
			if _, err := EncodeStore(&re, s); err != nil {
				t.Fatalf("re-encode of decoded store: %v", err)
			}
			s2, _, err := DecodeStore(bytes.NewReader(re.Bytes()))
			if err != nil {
				t.Fatalf("decode of re-encode: %v", err)
			}
			sameSnapshot(t, s, s2)
		}

		// Frame-stream decode must agree with per-frame decode + Merge over
		// the same bytes, frame by frame, including the error outcome.
		merged, _, streamErr := DecodeStores(bytes.NewReader(data))
		r := bytes.NewReader(data)
		manual := randomStore(0, 0) // empty store
		var manualErr error
		for {
			fs, _, err := DecodeStore(r)
			if err == io.EOF {
				break
			}
			if err != nil {
				manualErr = err
				break
			}
			manual.Merge(fs)
		}
		if (streamErr == nil) != (manualErr == nil) {
			t.Fatalf("stream decode err %v, manual per-frame err %v", streamErr, manualErr)
		}
		if streamErr == nil {
			sameSnapshot(t, manual, merged)
		}
	})
}
