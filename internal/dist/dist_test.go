package dist_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/evidence"
	"repro/internal/kb"
	"repro/internal/pipeline"
	"repro/internal/testkit"
	"repro/internal/wire"
)

func testJob() *dist.Job {
	return &dist.Job{
		Shard:     3,
		DocOffset: 1207,
		Docs: []corpus.Document{
			{URL: "http://a.example/1", Domain: "a.example", Author: 12, Text: "the kitten is cute."},
			{URL: "http://b.example/2", Domain: "b.example", Author: 0, Text: ""},
			{URL: "", Domain: "", Author: 9000, Text: "spiders are not cute!"},
		},
	}
}

func TestJobRoundTrip(t *testing.T) {
	job := testJob()
	var buf bytes.Buffer
	wn, err := dist.WriteJob(&buf, job)
	if err != nil {
		t.Fatalf("WriteJob: %v", err)
	}
	if wn != int64(buf.Len()) {
		t.Fatalf("WriteJob reported %d bytes, wrote %d", wn, buf.Len())
	}
	got, rn, err := dist.ReadJob(&buf)
	if err != nil {
		t.Fatalf("ReadJob: %v", err)
	}
	if rn != wn {
		t.Fatalf("ReadJob consumed %d bytes, frame is %d", rn, wn)
	}
	if got.Shard != job.Shard || got.DocOffset != job.DocOffset {
		t.Fatalf("header mismatch: got shard=%d offset=%d", got.Shard, got.DocOffset)
	}
	if len(got.Docs) != len(job.Docs) {
		t.Fatalf("got %d docs, want %d", len(got.Docs), len(job.Docs))
	}
	for i := range job.Docs {
		if got.Docs[i] != job.Docs[i] {
			t.Errorf("doc %d: got %+v want %+v", i, got.Docs[i], job.Docs[i])
		}
	}
}

func TestShardResultRoundTrip(t *testing.T) {
	store := evidence.NewStore()
	store.AddCounts(evidence.Key{Entity: kb.EntityID(7), Property: "cute"}, evidence.Counts{Pos: 41, Neg: 3})
	store.AddCounts(evidence.Key{Entity: kb.EntityID(2), Property: "scary"}, evidence.Counts{Pos: 1, Neg: 17})
	res := &dist.ShardResult{
		Shard:     2,
		Consumed:  57,
		Sentences: 421,
		Quarantined: []pipeline.Quarantined{
			{Doc: 1210, Reason: "panic: boom"},
			{Doc: 1219, Reason: "panic: worse"},
		},
		Store: store,
	}
	var buf bytes.Buffer
	wn, err := dist.WriteShardResult(&buf, res)
	if err != nil {
		t.Fatalf("WriteShardResult: %v", err)
	}
	got, rn, err := dist.ReadShardResult(&buf)
	if err != nil {
		t.Fatalf("ReadShardResult: %v", err)
	}
	if rn != wn {
		t.Fatalf("read %d bytes of a %d-byte message", rn, wn)
	}
	if got.Shard != res.Shard || got.Consumed != res.Consumed || got.Sentences != res.Sentences {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Quarantined) != len(res.Quarantined) {
		t.Fatalf("got %d quarantine records, want %d", len(got.Quarantined), len(res.Quarantined))
	}
	for i := range res.Quarantined {
		if got.Quarantined[i] != res.Quarantined[i] {
			t.Errorf("quarantine %d: got %+v want %+v", i, got.Quarantined[i], res.Quarantined[i])
		}
	}
	a, b := res.Store.Snapshot(), got.Store.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("store snapshots differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("store entry %d: got %+v want %+v", i, b[i], a[i])
		}
	}
}

func TestReadJobRejectsCorruption(t *testing.T) {
	var healthy bytes.Buffer
	if _, err := dist.WriteJob(&healthy, testJob()); err != nil {
		t.Fatal(err)
	}
	t.Run("wrong magic", func(t *testing.T) {
		raw := append([]byte(nil), healthy.Bytes()...)
		raw[0] ^= 0xff
		if _, _, err := dist.ReadJob(bytes.NewReader(raw)); !errors.Is(err, wire.ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("flipped body bit", func(t *testing.T) {
		raw := append([]byte(nil), healthy.Bytes()...)
		raw[len(raw)/2] ^= 0x04
		if _, _, err := dist.ReadJob(bytes.NewReader(raw)); err == nil {
			t.Fatal("corrupted frame decoded cleanly")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < healthy.Len(); cut += 7 {
			if _, _, err := dist.ReadJob(bytes.NewReader(healthy.Bytes()[:cut])); err == nil {
				t.Fatalf("truncation at %d decoded cleanly", cut)
			}
		}
	})
	t.Run("forged doc count", func(t *testing.T) {
		// A tiny body claiming 2^40 documents must be rejected before any
		// allocation of that order.
		e := wire.NewEncoder(16)
		e.Uvarint(0)
		e.Uvarint(0)
		e.Uvarint(1 << 40)
		var buf bytes.Buffer
		if _, err := wire.WriteFrame(&buf, "SVJB", e.Bytes()); err != nil {
			t.Fatal(err)
		}
		_, _, err := dist.ReadJob(&buf)
		if err == nil || !strings.Contains(err.Error(), "exceeds body capacity") {
			t.Fatalf("got %v, want count bound error", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		e := wire.NewEncoder(16)
		e.Uvarint(0)
		e.Uvarint(0)
		e.Uvarint(0)
		e.Uvarint(99) // junk after the last document
		var buf bytes.Buffer
		if _, err := wire.WriteFrame(&buf, "SVJB", e.Bytes()); err != nil {
			t.Fatal(err)
		}
		_, _, err := dist.ReadJob(&buf)
		if err == nil || !strings.Contains(err.Error(), "trailing bytes") {
			t.Fatalf("got %v, want trailing-bytes error", err)
		}
	})
}

// TestMineMatchesBatch is the quick in-package differential check; the
// full matrix (worker counts, chaos, cancellation) lives in
// internal/testkit's distributed suite.
func TestMineMatchesBatch(t *testing.T) {
	w := testkit.NewWorld(11, 0.05)
	batch := pipeline.Run(w.Docs(), w.KB, w.Lex, pipeline.Config{Workers: 2})
	for _, shards := range []int{1, 3} {
		res, failed, err := dist.Mine(context.Background(), w.Docs(), w.KB, dist.Config{
			Shards:    shards,
			Transport: &dist.LocalTransport{Base: w.KB, Lex: w.Lex, Pipeline: pipeline.Config{Workers: 2}},
			Pipeline:  pipeline.Config{Workers: 2},
		})
		if err != nil || len(failed) != 0 {
			t.Fatalf("shards=%d: err=%v failed=%v", shards, err, failed)
		}
		if diffs := testkit.DiffResults(batch, res); len(diffs) != 0 {
			t.Fatalf("shards=%d: distributed result differs from batch:\n%s",
				shards, strings.Join(diffs, "\n"))
		}
	}
}

func TestMineReportsCrashedShard(t *testing.T) {
	w := testkit.NewWorld(12, 0.05)
	res, failed, err := dist.Mine(context.Background(), w.Docs(), w.KB, dist.Config{
		Shards: 4,
		Transport: &dist.LocalTransport{
			Base: w.KB, Lex: w.Lex, Pipeline: pipeline.Config{Workers: 1},
			Crash: func(shard int) bool { return shard == 2 },
		},
		Pipeline: pipeline.Config{Workers: 1},
	})
	if err != nil {
		t.Fatalf("a single lost shard must degrade, not abort: %v", err)
	}
	if len(failed) != 1 || failed[0].Shard != 2 {
		t.Fatalf("failed=%v, want exactly shard 2", failed)
	}
	if !errors.Is(&failed[0], dist.ErrInjectedCrash) {
		t.Fatalf("shard error %v must unwrap to the injected crash", &failed[0])
	}
	if res == nil || res.Documents == 0 {
		t.Fatal("healthy shards must still commit")
	}
	lo, hi := len(w.Docs())*2/4, len(w.Docs())*3/4
	want := len(w.Docs()) - (hi - lo)
	if res.Documents != want {
		t.Fatalf("partial result has %d documents, want %d (batch minus shard 2)", res.Documents, want)
	}
}

func TestMineAllShardsFailed(t *testing.T) {
	w := testkit.NewTinyWorld(5, 0.05)
	_, failed, err := dist.Mine(context.Background(), w.Docs(), w.KB, dist.Config{
		Shards: 2,
		Transport: &dist.LocalTransport{
			Base: w.KB, Lex: w.Lex,
			Crash: func(int) bool { return true },
		},
	})
	if err == nil {
		t.Fatal("all shards lost must surface an error")
	}
	if len(failed) != 2 {
		t.Fatalf("failed=%v, want both shards", failed)
	}
}

func TestMineCancelled(t *testing.T) {
	w := testkit.NewTinyWorld(6, 0.05)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, failed, err := dist.Mine(ctx, w.Docs(), w.KB, dist.Config{
		Shards:    2,
		Transport: &dist.LocalTransport{Base: w.KB, Lex: w.Lex},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation must still return the partial result")
	}
	// A pre-cancelled context may still let some shards finish (the
	// extraction loop checks ctx per document and a shard can be empty);
	// what is guaranteed is that every shard either committed fully or
	// failed — no torn shards.
	for _, f := range failed {
		if f.Err == nil {
			t.Fatalf("failed shard %d carries no error", f.Shard)
		}
	}
}

func TestRunWorkerOverPipes(t *testing.T) {
	// Drive RunWorker directly over byte buffers — the exact protocol
	// cmd/surveyor's -dist-worker mode speaks on stdin/stdout.
	w := testkit.NewTinyWorld(7, 0.1)
	var in, out bytes.Buffer
	if _, err := dist.WriteJob(&in, &dist.Job{Shard: 0, DocOffset: 0, Docs: w.Docs()}); err != nil {
		t.Fatal(err)
	}
	if err := dist.RunWorker(context.Background(), &in, &out, w.KB, w.Lex, pipeline.Config{Workers: 2}); err != nil {
		t.Fatalf("RunWorker: %v", err)
	}
	res, _, err := dist.ReadShardResult(&out)
	if err != nil {
		t.Fatalf("ReadShardResult: %v", err)
	}
	if res.Consumed != len(w.Docs()) {
		t.Fatalf("consumed %d of %d", res.Consumed, len(w.Docs()))
	}
	ext, err := pipeline.ExtractEvidence(context.Background(), w.Docs(), w.KB, w.Lex, pipeline.Config{Workers: 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := ext.Store.Snapshot(), res.Store.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("shipped store has %d entries, direct extraction %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
