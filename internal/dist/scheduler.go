package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/obs"
)

// RetryPolicy configures the self-healing half of the scheduler: how many
// workers may be burned per shard, how long to back off between them, and
// how long a single attempt may run before its worker is presumed hung
// and the shard reclaimed.
//
// The zero value reproduces the pre-retry scheduler exactly: one attempt
// per shard, no deadline — a failed worker loses its shard.
type RetryPolicy struct {
	// MaxAttempts is the total number of workers a shard may consume
	// (first launch included). Zero or one means no retry.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it. Zero means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Zero means 2s.
	MaxBackoff time.Duration
	// ShardDeadline bounds one attempt's wall time; past it the attempt
	// is abandoned (its worker killed once the run drains) and the shard
	// rescheduled. Zero means no deadline.
	ShardDeadline time.Duration
	// Seed derives the per-(shard, attempt) backoff jitter. The same seed
	// yields the same backoff schedule on every run — the retry path is as
	// replayable as the mining itself.
	Seed uint64
}

// Defaults for RetryPolicy's zero duration fields.
const (
	defaultBaseBackoff = 50 * time.Millisecond
	defaultMaxBackoff  = 2 * time.Second
)

// ErrShardDeadline reports a shard attempt abandoned because its worker
// exceeded RetryPolicy.ShardDeadline. Match with errors.Is.
var ErrShardDeadline = errors.New("dist: shard deadline exceeded")

// shardOutcome is one successfully mined shard: the result and its
// optional telemetry frame (teleErr records a frame that arrived but
// failed validation — observability degrades, the shard does not).
type shardOutcome struct {
	res     *ShardResult
	tele    *obs.Telemetry
	teleErr error
}

// outcome is mineShard's verdict on one shard.
type outcome struct {
	shardOutcome
	attempts int
	err      error
}

// shardCommit is one shard's exactly-once commit cell. Any attempt —
// including one abandoned past its deadline whose worker delivers late —
// may offer a result; exactly the first offer before sealing wins, and
// every other delivery is discarded as a duplicate. Sealing happens when
// the scheduler gives up on the shard, so a result landing after budget
// exhaustion (but before Mine returns) still cannot split the run's view
// of the shard.
type shardCommit struct {
	mu        sync.Mutex
	sealed    bool
	committed bool
	out       shardOutcome
	attempt   int
}

// offer installs out as the shard's result unless one is already
// committed or the cell is sealed. Reports whether this offer won.
func (c *shardCommit) offer(out shardOutcome, attempt int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sealed || c.committed {
		return false
	}
	c.committed = true
	c.out = out
	c.attempt = attempt
	return true
}

// result returns the committed outcome, if any.
func (c *shardCommit) result() (shardOutcome, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.out, c.attempt, c.committed
}

// sealOrResult atomically resolves the shard's fate when the scheduler is
// out of budget: if a late result committed in the meantime it is
// returned (the shard succeeded after all), otherwise the cell seals so
// no later delivery can be half-counted.
func (c *shardCommit) sealOrResult() (shardOutcome, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.committed {
		return c.out, c.attempt, true
	}
	c.sealed = true
	return shardOutcome{}, 0, false
}

// scheduler drives every shard of one distributed run through its retry
// loop and owns the cleanup of every worker connection it launched —
// abandoned stragglers included. One scheduler per Mine call.
type scheduler struct {
	transport Transport
	policy    RetryPolicy
	do        *obs.DistObs
	cl        *obs.Cluster

	wg   sync.WaitGroup
	mu   sync.Mutex
	live map[*attemptHandle]struct{}
}

// attemptHandle is the scheduler's kill switch for one launched attempt.
type attemptHandle struct {
	conn   Conn
	cancel context.CancelFunc
}

func newScheduler(t Transport, p RetryPolicy, do *obs.DistObs, cl *obs.Cluster) *scheduler {
	return &scheduler{transport: t, policy: p, do: do, cl: cl, live: make(map[*attemptHandle]struct{})}
}

func (sc *scheduler) track(h *attemptHandle) {
	sc.mu.Lock()
	sc.live[h] = struct{}{}
	sc.mu.Unlock()
}

func (sc *scheduler) untrack(h *attemptHandle) {
	sc.mu.Lock()
	delete(sc.live, h)
	sc.mu.Unlock()
}

// drain kills every still-live attempt (abandoned stragglers above all)
// and waits for every attempt goroutine to finish. Mine calls it after
// the map phase so no worker process, goroutine, or connection outlives
// the run.
func (sc *scheduler) drain() {
	sc.mu.Lock()
	//lint:allow detmap teardown kill order; every live attempt is killed and nothing is merged here
	for h := range sc.live {
		h.cancel()
		h.conn.Kill()
	}
	sc.mu.Unlock()
	sc.wg.Wait()
}

// mineShard runs one shard to success, budget exhaustion, or
// cancellation. Every attempt is recorded in the cluster view's history;
// retries back off with seeded jitter and count toward the retry and
// reassignment metrics.
func (sc *scheduler) mineShard(ctx context.Context, shard, docOffset int, docs []corpus.Document) outcome {
	maxAttempts := sc.policy.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	commit := &shardCommit{}
	var lastErr error
	lastEndpoint := ""
	attempts := 0
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			sc.do.ShardRetries.Inc()
			sc.cl.ShardRetrying(shard)
			if err := sleepCtx(ctx, sc.backoff(shard, attempt)); err != nil {
				lastErr = err
				break
			}
			// An abandoned earlier attempt may have delivered during the
			// backoff; its committed result makes a fresh launch pointless.
			if out, _, ok := commit.result(); ok {
				return outcome{shardOutcome: out, attempts: attempts}
			}
		}
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		attempts++
		endpoint, err := sc.runAttempt(ctx, shard, attempt, docOffset, docs, commit)
		if attempt > 0 && (endpoint == "" || endpoint != lastEndpoint) {
			// A fresh process/goroutine, or a different socket endpoint,
			// picked the shard up — a reassignment, not a reconnect.
			sc.do.ShardReassignments.Inc()
		}
		lastEndpoint = endpoint
		if err == nil {
			out, _, ok := commit.result()
			if !ok {
				// The attempt finished cleanly but its offer lost: the cell
				// was sealed or raced. Cannot happen while the loop owns the
				// cell, but fail closed rather than merge nothing silently.
				lastErr = fmt.Errorf("dist: shard %d attempt %d: result discarded with no commit", shard, attempt)
				continue
			}
			return outcome{shardOutcome: out, attempts: attempts}
		}
		lastErr = err
		end := obs.AttemptFailed
		if errors.Is(err, ErrShardDeadline) {
			end = obs.AttemptExpired
		}
		sc.cl.ShardAttemptEnded(shard, attempt, end, err.Error())
	}
	// Out of budget (or cancelled). A straggler may still have committed
	// between the last failure and now — take its result; otherwise seal
	// the cell so nothing arriving later is half-counted.
	if out, _, ok := commit.sealOrResult(); ok {
		return outcome{shardOutcome: out, attempts: attempts}
	}
	return outcome{attempts: attempts, err: lastErr}
}

// runAttempt launches one worker for (shard, attempt) and waits for its
// protocol to finish or its deadline to expire. On deadline expiry the
// attempt is abandoned, not killed: its goroutine keeps the connection
// and may still deliver a late result into the commit cell, and drain()
// reaps it at the end of the run. Returns the attempt's endpoint (empty
// when the transport doesn't name one).
func (sc *scheduler) runAttempt(parent context.Context, shard, attempt, docOffset int, docs []corpus.Document, commit *shardCommit) (string, error) {
	actx, cancel := parent, context.CancelFunc(func() {})
	if sc.policy.ShardDeadline > 0 {
		actx, cancel = context.WithTimeout(parent, sc.policy.ShardDeadline)
	} else {
		actx, cancel = context.WithCancel(parent)
	}
	conn, err := sc.transport.Start(actx, shard, attempt)
	if err != nil {
		cancel()
		return "", fmt.Errorf("dist: shard %d attempt %d start: %w", shard, attempt, err)
	}
	endpoint := ""
	if ep, ok := conn.(endpointer); ok {
		endpoint = ep.Endpoint()
	}
	h := &attemptHandle{conn: conn, cancel: cancel}
	sc.track(h)
	done := make(chan error, 1)
	sc.wg.Add(1)
	go func() {
		defer sc.wg.Done()
		err := sc.attemptProtocol(conn, shard, attempt, docOffset, docs, commit)
		sc.untrack(h)
		done <- err
	}()
	select {
	case err := <-done:
		cancel()
		return endpoint, err
	case <-actx.Done():
		if parent.Err() != nil {
			// The run itself was cancelled: kill the worker now and report
			// the cancellation. The goroutine unblocks on the broken pipes
			// and drain() waits for it.
			conn.Kill()
			return endpoint, fmt.Errorf("dist: shard %d attempt %d: %w", shard, attempt, parent.Err())
		}
		// Shard deadline: abandon the attempt. Its worker keeps running —
		// for ProcTransport the expired context kills the child, but a
		// transport-agnostic straggler may still deliver, and the commit
		// cell will either take the late result (if nothing else committed)
		// or discard it as a duplicate.
		sc.do.DeadlinesExpired.Inc()
		return endpoint, fmt.Errorf("dist: shard %d attempt %d: %w after %v", shard, attempt, ErrShardDeadline, sc.policy.ShardDeadline)
	}
}

// attemptProtocol drives one worker through the wire protocol (the same
// frame sequence as the pre-retry scheduler) and offers the validated
// result to the shard's commit cell. A losing offer — this attempt was
// abandoned and another already committed — is counted and recorded as a
// duplicate, never merged.
func (sc *scheduler) attemptProtocol(conn Conn, shard, attempt, docOffset int, docs []corpus.Document, commit *shardCommit) error {
	do, cl := sc.do, sc.cl
	// The send anchor precedes the job write so the worker's job-received
	// anchor falls inside the coordinator's [jobSent, resultRecv] window.
	cl.JobSent(shard, len(docs), 0)
	wn, err := WriteJob(conn.In(), &Job{Shard: shard, DocOffset: docOffset, Docs: docs})
	do.WireBytesEncoded.Add(wn)
	cl.ShardWire(shard, wn, 0)
	if cerr := conn.In().Close(); err == nil {
		err = cerr
	}
	var res *ShardResult
	if err == nil {
		var rn int64
		res, rn, err = ReadShardResult(conn.Out())
		do.WireBytesDecoded.Add(rn)
		cl.ResultReceived(shard, rn)
	}
	var tele *obs.Telemetry
	var teleErr error
	if err == nil {
		// Optional telemetry frame after the store frame: a clean EOF means
		// an old or obs-disabled worker, any other failure is recorded but
		// cannot un-commit the shard's evidence.
		var tn int64
		tele, tn, teleErr = obs.DecodeTelemetry(conn.Out())
		do.WireBytesDecoded.Add(tn)
		cl.ShardWire(shard, 0, tn)
		if errors.Is(teleErr, io.EOF) {
			tele, teleErr = nil, nil
		}
	}
	if err != nil {
		conn.Kill()
		if waitErr := conn.Wait(); waitErr != nil && waitErr != err {
			return fmt.Errorf("dist: shard %d: %w (worker: %v)", shard, err, waitErr)
		}
		return fmt.Errorf("dist: shard %d: %w", shard, err)
	}
	if waitErr := conn.Wait(); waitErr != nil {
		return fmt.Errorf("dist: shard %d worker exit: %w", shard, waitErr)
	}
	if res.Shard != shard {
		return fmt.Errorf("dist: shard %d: worker answered for shard %d", shard, res.Shard)
	}
	if res.Consumed > len(docs) {
		return fmt.Errorf("dist: shard %d: consumed %d of %d documents", shard, res.Consumed, len(docs))
	}
	if !commit.offer(shardOutcome{res: res, tele: tele, teleErr: teleErr}, attempt) {
		do.DuplicateResults.Inc()
		cl.ShardAttemptEnded(shard, attempt, obs.AttemptDuplicate, "late result discarded: shard already committed")
		return nil
	}
	cl.ShardAttemptEnded(shard, attempt, obs.AttemptCommitted, "")
	return nil
}

// backoff returns the delay before launching attempt (1-based retry
// index): exponential from BaseBackoff, capped at MaxBackoff, scaled by a
// jitter factor in [0.5, 1.5) drawn from a generator seeded purely by
// (Seed, shard, attempt) — deterministic across runs and goroutine
// schedules, per the repo's seeded-randomness discipline.
func (sc *scheduler) backoff(shard, attempt int) time.Duration {
	base := sc.policy.BaseBackoff
	if base <= 0 {
		base = defaultBaseBackoff
	}
	ceil := sc.policy.MaxBackoff
	if ceil <= 0 {
		ceil = defaultMaxBackoff
	}
	d := base
	for i := 1; i < attempt && d < ceil; i++ {
		d *= 2
	}
	if d > ceil {
		d = ceil
	}
	seed := sc.policy.Seed ^
		uint64(shard)*0x9e3779b97f4a7c15 ^
		uint64(attempt)*0xbf58476d1ce4e5b9
	return jitterDuration(d, seed)
}

// jitterDuration scales d by a factor in [0.5, 1.5) drawn from a fresh
// generator seeded purely by seed — deterministic across runs and
// goroutine schedules, per the repo's seeded-randomness discipline.
func jitterDuration(d time.Duration, seed uint64) time.Duration {
	rng := rand.New(rand.NewSource(int64(seed)))
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
