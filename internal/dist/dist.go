// Package dist is the multi-process scale-out of the miner: a
// coordinator that splits the corpus into contiguous shards, ships each
// to a worker over the wire protocol in proto.go, merges the returned
// evidence deltas through evidence.Store.Merge in deterministic shard
// order, and runs grouping+EM once over the union. Because Merge is
// commutative and associative (the PR 1 algebra suite) and the reduce
// step reuses the batch pipeline's finishRun phases verbatim
// (pipeline.ReduceStore), a distributed run is bit-identical to a
// single-process run over the same corpus — the testkit differential
// suite proves it for worker counts {1, 2, 4, 8}, with and without
// injected worker crashes.
package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Config configures a distributed mining run.
type Config struct {
	// Shards is the number of workers to launch; each receives one
	// contiguous corpus shard. Zero or negative means 1.
	Shards int
	// Transport launches the workers (ProcTransport for real child
	// processes, LocalTransport for in-process goroutine workers).
	Transport Transport
	// Pipeline is the coordinator-side pipeline config: Rho and EM drive
	// the reduce step, Obs receives the run's telemetry. Worker-side
	// extraction settings (Version, threads per worker, Fault) live on the
	// transport's worker, not here.
	Pipeline pipeline.Config
}

// ShardError reports one shard whose worker failed — crashed, was
// killed, spoke a broken protocol, or was cancelled. The run's result
// excludes exactly that shard's documents.
type ShardError struct {
	// Shard is the failed shard's index.
	Shard int
	// Docs is the number of corpus documents the shard covered (and the
	// partial result is therefore missing).
	Docs int
	// Err is the underlying failure.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("dist: shard %d (%d docs): %v", e.Shard, e.Docs, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Mine runs the distributed map-reduce pipeline over docs: split into
// cfg.Shards contiguous shards (the same len*i/N arithmetic as the
// incremental miner's epoch split, so concatenated per-shard quarantine
// lists are globally sorted), mine every shard concurrently through the
// transport, merge the shipped evidence deltas in shard order, and
// reduce once.
//
// Failed shards degrade rather than abort the run: their documents are
// simply absent from the result — the all-or-nothing shard commit in the
// protocol guarantees a lost worker contributed nothing — and each
// failure is reported as a ShardError. The returned error is non-nil
// only when the context was cancelled (ctx.Err(), alongside the partial
// result) or when every shard failed.
func Mine(ctx context.Context, docs []corpus.Document, base *kb.KB, cfg Config) (*pipeline.Result, []ShardError, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	o := cfg.Pipeline.Obs
	do := o.Dist()
	cl := clusterOf(o)
	do.Workers.Set(float64(shards))
	cl.StartRun(shards)
	o.StartRun(len(docs), shards)
	total := o.Phase("run")

	// Map: launch every shard concurrently. Each slot is owned by exactly
	// one goroutine, so the outcomes slice needs no lock.
	type outcome struct {
		res     *ShardResult
		tele    *obs.Telemetry
		teleErr error
		err     error
	}
	outcomes := make([]outcome, shards)
	lo := make([]int, shards+1)
	for s := 0; s <= shards; s++ {
		lo[s] = len(docs) * s / shards
	}
	extract := o.Phase("extract")
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			res, tele, teleErr, err := runShard(ctx, cfg.Transport, s, lo[s], docs[lo[s]:lo[s+1]], do, cl)
			outcomes[s] = outcome{res: res, tele: tele, teleErr: teleErr, err: err}
		}(s)
	}
	wg.Wait()
	extractDur := extract.End()

	// Reduce, part 1: fold the shipped deltas in shard order. Merge is
	// order-insensitive, but a fixed order keeps the schedule out of the
	// telemetry and mirrors the single-process worker flush.
	store := evidence.NewStore()
	var failed []ShardError
	var sentences int64
	var quarantined []pipeline.Quarantined
	documents := 0
	for s := 0; s < shards; s++ {
		oc := outcomes[s]
		if oc.err != nil {
			do.ShardsFailed.Inc()
			cl.ShardFailed(s, oc.err)
			failed = append(failed, ShardError{Shard: s, Docs: lo[s+1] - lo[s], Err: oc.err})
			continue
		}
		merge := o.Phase("merge")
		store.Merge(oc.res.Store)
		mergeMillis := float64(merge.End()) / float64(time.Millisecond)
		do.ShardMergeMillis.Observe(mergeMillis)
		do.ShardsShipped.Inc()
		cl.ShardCommitted(s, oc.res.Consumed, len(oc.res.Quarantined), mergeMillis)
		// Federate telemetry in the same deterministic shard order as the
		// store fold. Frames are optional and best-effort: a decode failure
		// degrades to a rejection note, never to a shard failure — the
		// shard's evidence is already committed.
		switch {
		case oc.teleErr != nil:
			o.RejectShardTelemetry(s, oc.teleErr)
		case oc.tele != nil:
			do.TelemetryFrames.Inc()
			o.AbsorbShardTelemetry(s, oc.tele)
		default:
			o.AbsorbShardTelemetry(s, nil)
		}
		sentences += oc.res.Sentences
		quarantined = append(quarantined, oc.res.Quarantined...)
		documents += oc.res.Consumed - len(oc.res.Quarantined)
	}

	// Reduce, part 2: grouping + EM + index, bit-identical to the batch
	// finishRun over the same store.
	res := pipeline.ReduceStore(store, base, cfg.Pipeline, pipeline.ReduceStats{
		Sentences:   sentences,
		Documents:   documents,
		Quarantined: quarantined,
	})
	res.Timings.Extraction = extractDur
	res.Timings.Total = total.End()
	o.EndRun()

	if err := ctx.Err(); err != nil {
		return res, failed, err
	}
	if len(failed) == shards && shards > 0 && len(docs) > 0 {
		return res, failed, fmt.Errorf("dist: all %d shards failed: %w", shards, failed[0].Err)
	}
	return res, failed, nil
}

// clusterOf resolves the fleet view of a possibly-nil RunObs. A field
// access rather than a method keeps the nil-safety here, next to the one
// caller that needs it.
func clusterOf(o *obs.RunObs) *obs.Cluster {
	if o == nil {
		return nil
	}
	return o.Cluster
}

// runShard drives one worker through the protocol: launch, write the job
// frame, close the job stream, read the result frames, probe for the
// optional telemetry frame, wait for exit. The telemetry outcome is
// reported separately from the shard outcome: tele is the decoded frame
// (nil when the worker shipped none), teleErr a frame that arrived but
// failed validation — in neither case does the shard itself fail.
func runShard(ctx context.Context, t Transport, shard, docOffset int, docs []corpus.Document, do *obs.DistObs, cl *obs.Cluster) (res *ShardResult, tele *obs.Telemetry, teleErr, err error) {
	if t == nil {
		return nil, nil, nil, fmt.Errorf("dist: shard %d: nil transport", shard)
	}
	conn, err := t.Start(ctx, shard)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dist: shard %d start: %w", shard, err)
	}
	// The send anchor precedes the job write so the worker's job-received
	// anchor falls inside the coordinator's [jobSent, resultRecv] window.
	cl.JobSent(shard, len(docs), 0)
	wn, err := WriteJob(conn.In(), &Job{Shard: shard, DocOffset: docOffset, Docs: docs})
	do.WireBytesEncoded.Add(wn)
	cl.ShardWire(shard, wn, 0)
	if cerr := conn.In().Close(); err == nil {
		err = cerr
	}
	if err == nil {
		var rn int64
		res, rn, err = ReadShardResult(conn.Out())
		do.WireBytesDecoded.Add(rn)
		cl.ResultReceived(shard, rn)
	}
	if err == nil {
		// Optional telemetry frame after the store frame: a clean EOF means
		// an old or obs-disabled worker, any other failure is recorded but
		// cannot un-commit the shard's evidence.
		var tn int64
		tele, tn, teleErr = obs.DecodeTelemetry(conn.Out())
		do.WireBytesDecoded.Add(tn)
		cl.ShardWire(shard, 0, tn)
		if errors.Is(teleErr, io.EOF) {
			tele, teleErr = nil, nil
		}
	}
	if err != nil {
		conn.Kill()
		if waitErr := conn.Wait(); waitErr != nil && waitErr != err {
			return nil, nil, nil, fmt.Errorf("dist: shard %d: %w (worker: %v)", shard, err, waitErr)
		}
		return nil, nil, nil, fmt.Errorf("dist: shard %d: %w", shard, err)
	}
	if waitErr := conn.Wait(); waitErr != nil {
		return nil, nil, nil, fmt.Errorf("dist: shard %d worker exit: %w", shard, waitErr)
	}
	if res.Shard != shard {
		return nil, nil, nil, fmt.Errorf("dist: shard %d: worker answered for shard %d", shard, res.Shard)
	}
	if res.Consumed > len(docs) {
		return nil, nil, nil, fmt.Errorf("dist: shard %d: consumed %d of %d documents", shard, res.Consumed, len(docs))
	}
	return res, tele, teleErr, nil
}
