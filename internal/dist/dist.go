// Package dist is the multi-process scale-out of the miner: a
// coordinator that splits the corpus into contiguous shards, ships each
// to a worker over the wire protocol in proto.go, merges the returned
// evidence deltas through evidence.Store.Merge in deterministic shard
// order, and runs grouping+EM once over the union. Because Merge is
// commutative and associative (the PR 1 algebra suite) and the reduce
// step reuses the batch pipeline's finishRun phases verbatim
// (pipeline.ReduceStore), a distributed run is bit-identical to a
// single-process run over the same corpus — the testkit differential
// suite proves it for worker counts {1, 2, 4, 8}, with and without
// injected worker crashes.
package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/kb"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Config configures a distributed mining run.
type Config struct {
	// Shards is the number of workers to launch; each receives one
	// contiguous corpus shard. Zero or negative means 1.
	Shards int
	// Transport launches the workers (ProcTransport for real child
	// processes, LocalTransport for in-process goroutine workers).
	Transport Transport
	// Pipeline is the coordinator-side pipeline config: Rho and EM drive
	// the reduce step, Obs receives the run's telemetry. Worker-side
	// extraction settings (Version, threads per worker, Fault) live on the
	// transport's worker, not here.
	Pipeline pipeline.Config
	// Retry is the self-healing policy: attempt budget, backoff, and
	// per-shard deadline. The zero value keeps the historical
	// one-attempt-per-shard behavior.
	Retry RetryPolicy
}

// ShardError reports one shard whose retry budget was exhausted — every
// attempt crashed, was killed, spoke a broken protocol, timed out, or was
// cancelled. The run's result excludes exactly that shard's documents.
type ShardError struct {
	// Shard is the failed shard's index.
	Shard int
	// Docs is the number of corpus documents the shard covered (and the
	// partial result is therefore missing).
	Docs int
	// Attempts is the number of workers the scheduler burned on the shard
	// before giving up.
	Attempts int
	// Err is the final attempt's failure.
	Err error
}

func (e *ShardError) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("dist: shard %d (%d docs, %d attempts): %v", e.Shard, e.Docs, e.Attempts, e.Err)
	}
	return fmt.Sprintf("dist: shard %d (%d docs): %v", e.Shard, e.Docs, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Mine runs the distributed map-reduce pipeline over docs: split into
// cfg.Shards contiguous shards (the same len*i/N arithmetic as the
// incremental miner's epoch split, so concatenated per-shard quarantine
// lists are globally sorted), mine every shard concurrently through the
// transport — retrying failed or hung attempts per cfg.Retry — merge the
// shipped evidence deltas in shard order, and reduce once.
//
// Within the retry budget the run self-heals: any transient fault
// pattern (worker crashes, dropped connections, hangs past the shard
// deadline) yields a result bit-identical to the batch pipeline over the
// same corpus, because the exactly-once shard commit guarantees each
// shard's delta is merged from exactly one complete attempt. Only budget
// exhaustion degrades the run: that shard's documents are absent — the
// all-or-nothing shard commit guarantees a lost worker contributed
// nothing — and the failure is reported as a ShardError. The returned
// error is non-nil only when the context was cancelled (ctx.Err(),
// alongside the partial result) or when every shard failed.
func Mine(ctx context.Context, docs []corpus.Document, base *kb.KB, cfg Config) (*pipeline.Result, []ShardError, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	o := cfg.Pipeline.Obs
	do := o.Dist()
	cl := clusterOf(o)
	do.Workers.Set(float64(shards))
	cl.StartRun(shards)
	o.StartRun(len(docs), shards)
	total := o.Phase("run")

	if cfg.Transport == nil {
		cfg.Transport = nilTransport{}
	}
	sc := newScheduler(cfg.Transport, cfg.Retry, do, cl)

	// Map: drive every shard's retry loop concurrently. Each slot is
	// owned by exactly one goroutine, so the outcomes slice needs no
	// lock.
	outcomes := make([]outcome, shards)
	lo := make([]int, shards+1)
	for s := 0; s <= shards; s++ {
		lo[s] = len(docs) * s / shards
	}
	extract := o.Phase("extract")
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			outcomes[s] = sc.mineShard(ctx, s, lo[s], docs[lo[s]:lo[s+1]])
		}(s)
	}
	wg.Wait()
	// Reap every abandoned straggler before merging: after drain no
	// worker process, goroutine, or connection launched by this run is
	// still alive, and no commit cell can change (each was resolved or
	// sealed by its mineShard loop).
	sc.drain()
	extractDur := extract.End()

	// Reduce, part 1: fold the shipped deltas in shard order. Merge is
	// order-insensitive, but a fixed order keeps the schedule out of the
	// telemetry and mirrors the single-process worker flush.
	store := evidence.NewStore()
	var failed []ShardError
	var sentences int64
	var quarantined []pipeline.Quarantined
	documents := 0
	for s := 0; s < shards; s++ {
		oc := outcomes[s]
		if oc.err != nil {
			do.ShardsFailed.Inc()
			cl.ShardFailed(s, oc.err)
			failed = append(failed, ShardError{Shard: s, Docs: lo[s+1] - lo[s], Attempts: oc.attempts, Err: oc.err})
			continue
		}
		merge := o.Phase("merge")
		store.Merge(oc.res.Store)
		mergeMillis := float64(merge.End()) / float64(time.Millisecond)
		do.ShardMergeMillis.Observe(mergeMillis)
		do.ShardsShipped.Inc()
		cl.ShardCommitted(s, oc.res.Consumed, len(oc.res.Quarantined), mergeMillis)
		// Federate telemetry in the same deterministic shard order as the
		// store fold. Frames are optional and best-effort: a decode failure
		// degrades to a rejection note, never to a shard failure — the
		// shard's evidence is already committed.
		switch {
		case oc.teleErr != nil:
			o.RejectShardTelemetry(s, oc.teleErr)
		case oc.tele != nil:
			do.TelemetryFrames.Inc()
			o.AbsorbShardTelemetry(s, oc.tele)
		default:
			o.AbsorbShardTelemetry(s, nil)
		}
		sentences += oc.res.Sentences
		quarantined = append(quarantined, oc.res.Quarantined...)
		documents += oc.res.Consumed - len(oc.res.Quarantined)
	}

	// Reduce, part 2: grouping + EM + index, bit-identical to the batch
	// finishRun over the same store.
	res := pipeline.ReduceStore(store, base, cfg.Pipeline, pipeline.ReduceStats{
		Sentences:   sentences,
		Documents:   documents,
		Quarantined: quarantined,
	})
	res.Timings.Extraction = extractDur
	res.Timings.Total = total.End()
	o.EndRun()

	if err := ctx.Err(); err != nil {
		return res, failed, err
	}
	if len(failed) == shards && shards > 0 && len(docs) > 0 {
		return res, failed, fmt.Errorf("dist: all %d shards failed: %w", shards, failed[0].Err)
	}
	return res, failed, nil
}

// clusterOf resolves the fleet view of a possibly-nil RunObs. A field
// access rather than a method keeps the nil-safety here, next to the one
// caller that needs it.
func clusterOf(o *obs.RunObs) *obs.Cluster {
	if o == nil {
		return nil
	}
	return o.Cluster
}

// nilTransport keeps a misconfigured run (no transport) failing with a
// typed per-shard error instead of a nil dereference.
type nilTransport struct{}

func (nilTransport) Start(context.Context, int, int) (Conn, error) {
	return nil, errors.New("dist: nil transport")
}
