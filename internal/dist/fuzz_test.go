package dist

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/kb"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// FuzzDistProto holds every coordinator-facing decoder of the dist
// protocol — job, shard result, heartbeat — to the validated-decode
// contract over arbitrary bytes: never panic, never allocate past the
// declared bounds, and stay round-trip consistent (whatever decodes
// successfully must re-encode and decode back to an identical value).
// The scheduler feeds these decoders straight from worker pipes and
// sockets, so a malicious or corrupted worker must be able to fail a
// shard attempt but never crash the coordinator.
func FuzzDistProto(f *testing.F) {
	var job bytes.Buffer
	if _, err := WriteJob(&job, &Job{
		Shard:     3,
		DocOffset: 1207,
		Docs: []corpus.Document{
			{URL: "http://a.example/1", Domain: "a.example", Author: 12, Text: "the kitten is cute."},
			{URL: "", Domain: "", Author: 9000, Text: "spiders are not cute!"},
		},
	}); err != nil {
		f.Fatal(err)
	}
	store := evidence.NewStore()
	store.AddCounts(evidence.Key{Entity: kb.EntityID(7), Property: "cute"}, evidence.Counts{Pos: 41, Neg: 3})
	var res bytes.Buffer
	if _, err := WriteShardResult(&res, &ShardResult{
		Shard: 2, Consumed: 57, Sentences: 421,
		Quarantined: []pipeline.Quarantined{{Doc: 1210, Reason: "panic: boom"}},
		Store:       store,
	}); err != nil {
		f.Fatal(err)
	}
	var hb bytes.Buffer
	if _, err := WriteHeartbeat(&hb, 5); err != nil {
		f.Fatal(err)
	}
	f.Add(job.Bytes())
	f.Add(res.Bytes())
	f.Add(hb.Bytes())
	f.Add(job.Bytes()[:job.Len()/2])
	f.Add([]byte(jobMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if j, n, err := ReadJob(bytes.NewReader(data)); err == nil {
			if n > int64(len(data)) {
				t.Fatalf("ReadJob consumed %d of %d bytes", n, len(data))
			}
			var re bytes.Buffer
			if _, err := WriteJob(&re, j); err != nil {
				t.Fatalf("re-encode of decoded job: %v", err)
			}
			j2, _, err := ReadJob(bytes.NewReader(re.Bytes()))
			if err != nil {
				t.Fatalf("decode of re-encoded job: %v", err)
			}
			if !reflect.DeepEqual(j, j2) {
				t.Fatalf("job round-trip drift:\n%+v\n%+v", j, j2)
			}
		}

		if r, n, err := ReadShardResult(bytes.NewReader(data)); err == nil {
			if n > int64(len(data)) {
				t.Fatalf("ReadShardResult consumed %d of %d bytes", n, len(data))
			}
			var re bytes.Buffer
			if _, err := WriteShardResult(&re, r); err != nil {
				t.Fatalf("re-encode of decoded result: %v", err)
			}
			r2, _, err := ReadShardResult(bytes.NewReader(re.Bytes()))
			if err != nil {
				t.Fatalf("decode of re-encoded result: %v", err)
			}
			if r.Shard != r2.Shard || r.Consumed != r2.Consumed || r.Sentences != r2.Sentences ||
				!reflect.DeepEqual(r.Quarantined, r2.Quarantined) ||
				!reflect.DeepEqual(r.Store.Snapshot(), r2.Store.Snapshot()) {
				t.Fatalf("shard result round-trip drift:\n%+v\n%+v", r, r2)
			}
		}

		// The socket demultiplexer's view: any frame, heartbeats decoded
		// and round-tripped, everything else passed through untouched.
		if magic, body, _, err := wire.ReadFrameAny(bytes.NewReader(data)); err == nil && magic == heartbeatMagic {
			if shard, err := decodeHeartbeat(body); err == nil {
				var re bytes.Buffer
				if _, err := WriteHeartbeat(&re, shard); err != nil {
					t.Fatalf("re-encode of decoded heartbeat: %v", err)
				}
				_, body2, _, err := wire.ReadFrameAny(bytes.NewReader(re.Bytes()))
				if err != nil {
					t.Fatalf("decode of re-encoded heartbeat: %v", err)
				}
				if shard2, err := decodeHeartbeat(body2); err != nil || shard2 != shard {
					t.Fatalf("heartbeat round-trip drift: %d vs %d (%v)", shard, shard2, err)
				}
			}
		}
	})
}
