// Wire protocol of the distributed miner. Three message types flow over a
// worker's pipe pair, all built from the internal/wire frame primitives
// (magic + version + length + body + FNV-1a checksum, all integers
// varints):
//
//	coordinator → worker   job frame "SVJB": shard, docOffset, docCount,
//	                       then ⟨url, domain, author, text⟩ per document
//	worker → coordinator   result header frame "SVSR": shard, consumed,
//	                       sentences, quarantine count, ⟨doc, reason⟩
//	                       per record — followed by one store frame
//	                       "SVWS" (the evidence delta, wire.EncodeStore)
//	worker → coordinator   optional telemetry frame "SVTM" (obs package:
//	                       metric snapshot, spans, clock anchors), after
//	                       the store frame. Obs-disabled workers omit it;
//	                       the coordinator treats clean EOF as absent, so
//	                       the frame is backward- and forward-optional.
//	worker → coordinator   heartbeat frame "SVHB" (uvarint shard),
//	                       interleaved while mining on the socket
//	                       transport only. The coordinator's demultiplexer
//	                       counts them as liveness and strips them from
//	                       the protocol stream; pipe transports never send
//	                       them (a child's death already breaks the pipe).
//
// Protocol state machine (one worker attempt):
//
//	IDLE --job frame--> MINING --result+store [+telemetry], exit 0--> DONE
//	                      |  \-- crash / kill -----------------------> LOST
//	                      \---- ctx cancelled, exit nonzero ---------> LOST
//
// The self-healing scheduler layers a shard-level retry loop on top: a
// LOST or deadline-expired attempt moves the shard to RETRYING, and a
// fresh worker (after seeded-jitter backoff) replays the protocol from
// IDLE:
//
//	PENDING -> MINING --commit--------------------------------> DONE
//	             |  \-- attempt lost/expired --> RETRYING --> MINING ...
//	             \---- retry budget exhausted ----------------> LOST
//
// A LOST worker never writes a partial result: the result frames are
// written only after extraction completes, so the coordinator either
// receives a complete, checksummed shard delta or a read error — never a
// torn one. That all-or-nothing attempt commit, combined with the
// coordinator's exactly-once shard commit cell (a late result from an
// abandoned attempt is discarded as a duplicate once any attempt has
// committed), is what makes a run with transient faults bit-identical to
// the batch run, and a budget-exhausted run exactly the batch result
// minus the lost shard's documents. Telemetry rides strictly after the
// commit point: a broken or rejected telemetry frame can degrade
// observability (a rejection counter and a /cluster note) but can never
// fail, or un-commit, the shard.
package dist

import (
	"fmt"
	"io"
	"math"

	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Frame magics of the coordinator/worker protocol.
const (
	jobMagic       = "SVJB"
	resultMagic    = "SVSR"
	heartbeatMagic = "SVHB"
)

// maxDocBytes caps one document's text in a job frame — generous next to
// the corpus reader's 4 MiB line cap, tight next to the 1 GiB frame
// bound.
const maxDocBytes = 1 << 26

// Job is the coordinator→worker shard assignment: a contiguous document
// range and the global index of its first document, so every index the
// worker reports (quarantine records above all) is already corpus-global.
type Job struct {
	Shard     int
	DocOffset int
	Docs      []corpus.Document
}

// WriteJob writes one job frame and returns the bytes written.
func WriteJob(w io.Writer, job *Job) (int64, error) {
	size := 32
	for i := range job.Docs {
		size += 24 + len(job.Docs[i].URL) + len(job.Docs[i].Domain) + len(job.Docs[i].Text)
	}
	e := wire.NewEncoder(size)
	e.Uvarint(uint64(job.Shard))
	e.Uvarint(uint64(job.DocOffset))
	e.Uvarint(uint64(len(job.Docs)))
	for i := range job.Docs {
		d := &job.Docs[i]
		e.String(d.URL)
		e.String(d.Domain)
		e.Uvarint(uint64(d.Author))
		e.String(d.Text)
	}
	return wire.WriteFrame(w, jobMagic, e.Bytes())
}

// ReadJob reads one job frame, validating every length and count before
// allocating for it.
func ReadJob(r io.Reader) (*Job, int64, error) {
	body, n, err := wire.ReadFrame(r, jobMagic)
	if err != nil {
		return nil, n, fmt.Errorf("dist: read job frame: %w", err)
	}
	d := wire.NewDecoder(body)
	job := &Job{}
	shard := d.Uvarint()
	offset := d.Uvarint()
	count := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, n, fmt.Errorf("dist: decode job header: %w", err)
	}
	if shard > math.MaxInt32 || offset > math.MaxInt32 {
		return nil, n, fmt.Errorf("dist: implausible shard %d / offset %d", shard, offset)
	}
	// Each document costs at least four bytes (three length prefixes and
	// an author varint), so the body bounds the plausible count.
	if count > uint64(d.Remaining())/4+1 {
		return nil, n, fmt.Errorf("dist: document count %d exceeds body capacity %d", count, d.Remaining())
	}
	job.Shard, job.DocOffset = int(shard), int(offset)
	job.Docs = make([]corpus.Document, 0, count)
	for i := uint64(0); i < count; i++ {
		var doc corpus.Document
		doc.URL = d.String()
		doc.Domain = d.String()
		author := d.Uvarint()
		doc.Text = d.StringMax(maxDocBytes)
		if err := d.Err(); err != nil {
			return nil, n, fmt.Errorf("dist: job document %d: %w", i, err)
		}
		if author > math.MaxInt32 {
			return nil, n, fmt.Errorf("dist: job document %d: implausible author %d", i, author)
		}
		doc.Author = int(author)
		job.Docs = append(job.Docs, doc)
	}
	if d.Remaining() != 0 {
		return nil, n, fmt.Errorf("dist: %d trailing bytes after %d job documents", d.Remaining(), count)
	}
	return job, n, nil
}

// WriteHeartbeat writes one liveness frame for shard. Socket workers
// emit them on a ticker while mining; heartbeats never interleave with
// protocol frames (the heartbeater stops before the result is written).
func WriteHeartbeat(w io.Writer, shard int) (int64, error) {
	e := wire.NewEncoder(8)
	e.Uvarint(uint64(shard))
	return wire.WriteFrame(w, heartbeatMagic, e.Bytes())
}

// decodeHeartbeat parses a heartbeat frame body into its shard index.
func decodeHeartbeat(body []byte) (int, error) {
	d := wire.NewDecoder(body)
	shard := d.Uvarint()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("dist: decode heartbeat: %w", err)
	}
	if shard > math.MaxInt32 {
		return 0, fmt.Errorf("dist: implausible heartbeat shard %d", shard)
	}
	if d.Remaining() != 0 {
		return 0, fmt.Errorf("dist: %d trailing bytes in heartbeat", d.Remaining())
	}
	return int(shard), nil
}

// ShardResult is the worker→coordinator evidence delta plus the shard's
// input-side metadata. Quarantined documents carry corpus-global indices
// (the job's DocOffset threaded through pipeline.ExtractEvidence).
type ShardResult struct {
	Shard       int
	Consumed    int
	Sentences   int64
	Quarantined []pipeline.Quarantined
	// Store is the shard's evidence delta.
	Store *evidence.Store
}

// WriteShardResult writes the result header frame followed by the store
// frame. Returns the total bytes written. Nothing is written until both
// encodings are complete in memory, so a cancelled worker never emits a
// torn message.
func WriteShardResult(w io.Writer, res *ShardResult) (int64, error) {
	e := wire.NewEncoder(64 + 32*len(res.Quarantined))
	e.Uvarint(uint64(res.Shard))
	e.Uvarint(uint64(res.Consumed))
	e.Uvarint(uint64(res.Sentences))
	e.Uvarint(uint64(len(res.Quarantined)))
	for _, q := range res.Quarantined {
		e.Uvarint(uint64(q.Doc))
		e.String(q.Reason)
	}
	n, err := wire.WriteFrame(w, resultMagic, e.Bytes())
	if err != nil {
		return n, fmt.Errorf("dist: write result frame: %w", err)
	}
	m, err := wire.EncodeStore(w, res.Store)
	if err != nil {
		return n + m, fmt.Errorf("dist: write result store: %w", err)
	}
	return n + m, nil
}

// ReadShardResult reads one result header frame and its store frame.
func ReadShardResult(r io.Reader) (*ShardResult, int64, error) {
	body, n, err := wire.ReadFrame(r, resultMagic)
	if err != nil {
		return nil, n, fmt.Errorf("dist: read result frame: %w", err)
	}
	d := wire.NewDecoder(body)
	res := &ShardResult{}
	shard := d.Uvarint()
	consumed := d.Uvarint()
	sentences := d.Uvarint()
	qcount := d.Uvarint()
	if err := d.Err(); err != nil {
		return nil, n, fmt.Errorf("dist: decode result header: %w", err)
	}
	if shard > math.MaxInt32 || consumed > math.MaxInt32 || sentences > math.MaxInt64 {
		return nil, n, fmt.Errorf("dist: implausible result header (shard %d, consumed %d)", shard, consumed)
	}
	// A quarantine record is at least two bytes (doc varint + empty
	// reason's length prefix).
	if qcount > uint64(d.Remaining())/2+1 {
		return nil, n, fmt.Errorf("dist: quarantine count %d exceeds body capacity %d", qcount, d.Remaining())
	}
	res.Shard, res.Consumed, res.Sentences = int(shard), int(consumed), int64(sentences)
	if qcount > 0 {
		res.Quarantined = make([]pipeline.Quarantined, 0, qcount)
	}
	for i := uint64(0); i < qcount; i++ {
		doc := d.Uvarint()
		reason := d.String()
		if err := d.Err(); err != nil {
			return nil, n, fmt.Errorf("dist: quarantine record %d: %w", i, err)
		}
		if doc > math.MaxInt32 {
			return nil, n, fmt.Errorf("dist: quarantine record %d: implausible document %d", i, doc)
		}
		res.Quarantined = append(res.Quarantined, pipeline.Quarantined{Doc: int(doc), Reason: reason})
	}
	if d.Remaining() != 0 {
		return nil, n, fmt.Errorf("dist: %d trailing bytes in result header", d.Remaining())
	}
	store, m, err := wire.DecodeStore(r)
	n += m
	if err != nil {
		return nil, n, fmt.Errorf("dist: shard %d store frame: %w", res.Shard, err)
	}
	res.Store = store
	return res, n, nil
}
