// Socket transport of the distributed miner: the same coordinator/worker
// protocol as the pipe transports, carried over TCP to standalone worker
// servers (`surveyor -dist-listen`) instead of child processes. One
// connection serves one shard attempt — the coordinator dials, writes the
// job frame, and reads the result frames back; the worker interleaves
// heartbeat frames ("SVHB") while mining so the coordinator can tell a
// slow worker from a dead link, and the coordinator enforces a per-frame
// read deadline as the liveness window. Dial failures reconnect with
// seeded-jitter backoff across the configured endpoints, so the
// scheduler's retry loop doubles as cross-host reassignment.
package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/wire"
)

// Socket transport defaults, applied for zero-valued config fields.
const (
	defaultConnectTimeout  = 5 * time.Second
	defaultConnectAttempts = 3
	defaultConnectBackoff  = 100 * time.Millisecond
	defaultReadTimeout     = 30 * time.Second
	defaultWriteTimeout    = 10 * time.Second
	defaultHeartbeat       = time.Second
)

// SocketTransport launches shard attempts over TCP connections to
// standalone worker servers (ServeSocket / `surveyor -dist-listen`). The
// endpoint for (shard, attempt) rotates through Addrs, so a retry after a
// worker failure naturally reassigns the shard to a different host when
// more than one is configured.
type SocketTransport struct {
	// Addrs are the worker endpoints ("host:port"). At least one is
	// required.
	Addrs []string
	// ConnectTimeout bounds one dial. Zero means 5s.
	ConnectTimeout time.Duration
	// ConnectAttempts is how many dials (rotating through Addrs, with
	// backoff between them) one Start may burn before giving up. Zero
	// means 3.
	ConnectAttempts int
	// ConnectBackoff is the base delay between dial attempts, doubled per
	// attempt and jittered from Seed. Zero means 100ms.
	ConnectBackoff time.Duration
	// ReadTimeout is the liveness window: the longest the coordinator
	// will wait for the next frame (heartbeats included) before declaring
	// the worker dead. Zero means 30s. It must comfortably exceed the
	// worker's heartbeat interval.
	ReadTimeout time.Duration
	// WriteTimeout bounds each job-frame write. Zero means 10s.
	WriteTimeout time.Duration
	// Seed derives the dial-backoff jitter, like RetryPolicy.Seed.
	Seed uint64
	// Obs receives liveness telemetry (heartbeat counters and the
	// /cluster heartbeat column). Optional.
	Obs *obs.RunObs
}

// Start implements Transport: dial an endpoint for (shard, attempt) with
// reconnect-and-backoff across Addrs, and wrap the connection in the
// heartbeat-stripping demultiplexer.
func (t *SocketTransport) Start(ctx context.Context, shard, attempt int) (Conn, error) {
	if len(t.Addrs) == 0 {
		return nil, errors.New("dist: socket transport: no worker addresses")
	}
	tries := t.ConnectAttempts
	if tries <= 0 {
		tries = defaultConnectAttempts
	}
	connectTimeout := t.ConnectTimeout
	if connectTimeout <= 0 {
		connectTimeout = defaultConnectTimeout
	}
	var lastErr error
	for try := 0; try < tries; try++ {
		if try > 0 {
			if err := sleepCtx(ctx, t.dialBackoff(shard, attempt, try)); err != nil {
				return nil, fmt.Errorf("dist: shard %d dial: %w", shard, err)
			}
		}
		// Rotate through the endpoints: a retry (attempt+1) or a failed
		// dial (try+1) moves to the next worker host.
		addr := t.Addrs[(shard+attempt+try)%len(t.Addrs)]
		d := net.Dialer{Timeout: connectTimeout}
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			lastErr = err
			continue
		}
		return newSocketConn(conn, addr, shard, t), nil
	}
	return nil, fmt.Errorf("dist: shard %d: all %d dials failed: %w", shard, tries, lastErr)
}

// dialBackoff mirrors the scheduler's backoff: exponential from
// ConnectBackoff, capped at 8x, jittered in [0.5, 1.5) from a generator
// seeded purely by (Seed, shard, attempt, try).
func (t *SocketTransport) dialBackoff(shard, attempt, try int) time.Duration {
	base := t.ConnectBackoff
	if base <= 0 {
		base = defaultConnectBackoff
	}
	d := base
	for i := 1; i < try && d < 8*base; i++ {
		d *= 2
	}
	seed := t.Seed ^
		uint64(shard)*0x9e3779b97f4a7c15 ^
		uint64(attempt)*0xbf58476d1ce4e5b9 ^
		uint64(try)*0x94d049bb133111eb
	return jitterDuration(d, seed)
}

// socketConn adapts one TCP connection to the Conn interface. A demux
// goroutine owns all reads: it enforces the per-frame liveness deadline,
// strips and counts heartbeat frames, and re-frames every protocol frame
// into an in-memory pipe the scheduler reads as Out(). In() writes the
// job frame directly (with a write deadline); its Close is a no-op so
// the TCP stream stays open — the worker detects coordinator death by
// its read on the socket completing, which must not happen while the run
// is merely done sending.
type socketConn struct {
	conn  net.Conn
	addr  string
	shard int
	t     *SocketTransport

	outR *io.PipeReader
	outW *io.PipeWriter

	demuxDone chan struct{}
	demuxErr  error // terminal demux error; nil for clean EOF. Written before demuxDone closes.

	closeOnce sync.Once
}

func newSocketConn(conn net.Conn, addr string, shard int, t *SocketTransport) *socketConn {
	outR, outW := io.Pipe()
	c := &socketConn{conn: conn, addr: addr, shard: shard, t: t, outR: outR, outW: outW, demuxDone: make(chan struct{})}
	go c.demux()
	return c
}

// Endpoint names the worker host serving this connection; the scheduler
// uses it to distinguish reconnects from reassignments.
func (c *socketConn) Endpoint() string { return c.addr }

func (c *socketConn) In() io.WriteCloser { return socketIn{c} }
func (c *socketConn) Out() io.Reader     { return c.outR }

// Wait blocks until the worker's stream ends (the worker closes its side
// after the last frame) and returns the demux's terminal error — nil for
// a clean end-of-stream.
func (c *socketConn) Wait() error {
	<-c.demuxDone
	c.close()
	return c.demuxErr
}

// Kill tears the connection down; the demux unblocks on the closed
// socket and the scheduler's pending read unblocks on the broken pipe.
func (c *socketConn) Kill() { c.close() }

func (c *socketConn) close() {
	c.closeOnce.Do(func() {
		c.conn.Close()
	})
}

// demux is the connection's read loop: per-frame liveness deadline,
// heartbeats counted and stripped, protocol frames re-framed into the
// Out pipe byte-identically (WriteFrame(ReadFrameAny(...)) round-trips
// the exact frame encoding).
func (c *socketConn) demux() {
	defer close(c.demuxDone)
	readTimeout := c.t.ReadTimeout
	if readTimeout <= 0 {
		readTimeout = defaultReadTimeout
	}
	do := c.t.Obs.Dist()
	cl := clusterOf(c.t.Obs)
	for {
		c.conn.SetReadDeadline(netDeadline(readTimeout))
		magic, body, _, err := wire.ReadFrameAny(c.conn)
		if errors.Is(err, io.EOF) {
			// Clean end-of-stream at a frame boundary: the worker finished
			// and closed. Propagate EOF to the scheduler's reads.
			c.outW.Close()
			return
		}
		if err != nil {
			c.demuxErr = fmt.Errorf("dist: shard %d socket read: %w", c.shard, err)
			c.outW.CloseWithError(c.demuxErr)
			return
		}
		if magic == heartbeatMagic {
			if _, herr := decodeHeartbeat(body); herr != nil {
				c.demuxErr = herr
				c.outW.CloseWithError(herr)
				return
			}
			do.Heartbeats.Inc()
			cl.ShardHeartbeat(c.shard)
			continue
		}
		if _, err := wire.WriteFrame(c.outW, magic, body); err != nil {
			// The scheduler stopped reading (killed attempt); stop pulling
			// frames on its behalf.
			return
		}
	}
}

// socketIn is the coordinator→worker half: deadline-bounded writes,
// no-op close (see socketConn's doc).
type socketIn struct{ c *socketConn }

func (s socketIn) Write(p []byte) (int, error) {
	writeTimeout := s.c.t.WriteTimeout
	if writeTimeout <= 0 {
		writeTimeout = defaultWriteTimeout
	}
	s.c.conn.SetWriteDeadline(netDeadline(writeTimeout))
	n, err := s.c.conn.Write(p)
	if err != nil {
		return n, fmt.Errorf("dist: shard %d socket write: %w", s.c.shard, err)
	}
	return n, nil
}

func (s socketIn) Close() error { return nil }

// netDeadline converts a relative liveness window into the absolute
// deadline the net.Conn API wants. The wall-clock read is confined to
// connection liveness — it can decide that a retry happens, never what
// any shard's evidence contains, so mining output stays bit-reproducible.
func netDeadline(d time.Duration) time.Time {
	//lint:allow obsflow liveness deadline for the kernel's net.Conn, not a telemetry read
	return time.Now().Add(d) //lint:allow detrand network liveness deadline; never reaches mining output
}

// --- worker server ---------------------------------------------------------

// SocketServerConfig tunes a standalone socket worker.
type SocketServerConfig struct {
	// Heartbeat is the liveness emission interval while mining. Zero
	// means 1s. It must be comfortably below the coordinator's
	// ReadTimeout.
	Heartbeat time.Duration
	// ErrLog receives per-connection serve errors (nil discards them); a
	// worker server outlives any single bad connection.
	ErrLog io.Writer
}

// ServeSocket runs a standalone worker server: accept connections on ln
// and serve each with ServeConn until ctx is cancelled. Each connection
// carries exactly one shard attempt. Returns ctx.Err() on cancellation
// (after in-flight handlers finish) or the first accept error.
func ServeSocket(ctx context.Context, ln net.Listener, base *kb.KB, lex *lexicon.Lexicon, cfg pipeline.Config, scfg SocketServerConfig) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return fmt.Errorf("dist: socket worker accept: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			if err := ServeConn(ctx, conn, base, lex, cfg, scfg); err != nil && scfg.ErrLog != nil {
				fmt.Fprintf(scfg.ErrLog, "surveyor: socket worker: %v\n", err)
			}
		}()
	}
}

// ServeConn serves one shard attempt over an established connection:
// RunWorker's protocol plus the two socket extensions — a heartbeater
// that emits liveness frames while mining, and a peer-close watcher that
// cancels the attempt the moment the coordinator hangs up (the
// coordinator writes nothing after the job frame, so any completed read
// past it means the peer is gone). The watcher is what keeps an
// abandoned or orphaned worker from mining for a dead coordinator.
func ServeConn(ctx context.Context, conn net.Conn, base *kb.KB, lex *lexicon.Lexicon, cfg pipeline.Config, scfg SocketServerConfig) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	interval := scfg.Heartbeat
	if interval <= 0 {
		interval = defaultHeartbeat
	}
	hooks := workerHooks{
		afterJob: func(*Job) {
			go func() {
				var b [1]byte
				conn.Read(b[:]) // blocks until the coordinator closes or resets
				cancel()
			}()
		},
		heartbeat: func(shard int) func() {
			return startHeartbeater(conn, shard, interval)
		},
	}
	return runWorker(cctx, conn, conn, base, lex, cfg, hooks)
}

// startHeartbeater emits a liveness frame for shard on w every interval
// until stopped. The returned stop is synchronous: it returns only after
// the emitter goroutine has exited, so no heartbeat write can interleave
// with the protocol frames written after it.
func startHeartbeater(w io.Writer, shard int, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				if _, err := WriteHeartbeat(w, shard); err != nil {
					return
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
