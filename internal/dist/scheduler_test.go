package dist

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestBackoffDeterministicAndBounded pins the retry backoff contract:
// the delay for (shard, attempt) is a pure function of the policy and
// its seed — replayable across runs — and always lands in the jitter
// window [d/2, 3d/2) around the capped exponential d.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	policy := RetryPolicy{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 42}
	sc := newScheduler(nil, policy, nil, nil)
	again := newScheduler(nil, policy, nil, nil)
	for shard := 0; shard < 4; shard++ {
		for attempt := 1; attempt <= 6; attempt++ {
			d := sc.backoff(shard, attempt)
			if d2 := again.backoff(shard, attempt); d2 != d {
				t.Fatalf("shard %d attempt %d: backoff not deterministic: %v vs %v", shard, attempt, d, d2)
			}
			raw := policy.BaseBackoff
			for i := 1; i < attempt && raw < policy.MaxBackoff; i++ {
				raw *= 2
			}
			if raw > policy.MaxBackoff {
				raw = policy.MaxBackoff
			}
			if d < raw/2 || d >= raw+raw/2 {
				t.Errorf("shard %d attempt %d: backoff %v outside jitter window [%v, %v)",
					shard, attempt, d, raw/2, raw+raw/2)
			}
		}
	}
	// Different shards must not march in lockstep: with this seed the
	// first-retry delays differ (a fixed-seed spot check, not a law).
	if sc.backoff(0, 1) == sc.backoff(1, 1) && sc.backoff(0, 1) == sc.backoff(2, 1) {
		t.Error("backoff jitter identical across three shards — seed mixing is broken")
	}
}

// TestBackoffZeroPolicyDefaults checks the documented zero-value
// defaults: 50ms base, 2s cap.
func TestBackoffZeroPolicyDefaults(t *testing.T) {
	sc := newScheduler(nil, RetryPolicy{}, nil, nil)
	d := sc.backoff(0, 1)
	if d < defaultBaseBackoff/2 || d >= defaultBaseBackoff+defaultBaseBackoff/2 {
		t.Errorf("first retry backoff %v outside default window", d)
	}
	// Far past the doubling horizon the delay must stay under 1.5x the cap.
	if d := sc.backoff(0, 30); d >= defaultMaxBackoff+defaultMaxBackoff/2 {
		t.Errorf("attempt 30 backoff %v exceeds the jittered cap", d)
	}
}

// TestShardCommitExactlyOnce races many offers at one commit cell:
// exactly one must win, and the cell must report that winner to every
// later reader — the heart of the duplicate-discard guarantee.
func TestShardCommitExactlyOnce(t *testing.T) {
	c := &shardCommit{}
	const offers = 16
	wins := make(chan int, offers)
	var wg sync.WaitGroup
	for i := 0; i < offers; i++ {
		wg.Add(1)
		go func(attempt int) {
			defer wg.Done()
			if c.offer(shardOutcome{res: &ShardResult{Shard: attempt}}, attempt) {
				wins <- attempt
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []int
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("%d offers won, want exactly 1 (winners %v)", len(winners), winners)
	}
	out, attempt, ok := c.result()
	if !ok || attempt != winners[0] || out.res.Shard != winners[0] {
		t.Fatalf("result() = (%+v, %d, %v), want the winning attempt %d", out.res, attempt, ok, winners[0])
	}
	if c.offer(shardOutcome{}, 99) {
		t.Fatal("offer after commit must lose")
	}
	if _, got, ok := c.sealOrResult(); !ok || got != winners[0] {
		t.Fatalf("sealOrResult after commit = (%d, %v), want the committed attempt", got, ok)
	}
}

// TestShardCommitSealed proves sealing is terminal: once the scheduler
// gives up on a shard, no straggler delivery can commit.
func TestShardCommitSealed(t *testing.T) {
	c := &shardCommit{}
	if _, _, ok := c.sealOrResult(); ok {
		t.Fatal("empty cell sealed with a result")
	}
	if c.offer(shardOutcome{res: &ShardResult{}}, 0) {
		t.Fatal("offer into a sealed cell must lose")
	}
	if _, _, ok := c.result(); ok {
		t.Fatal("sealed cell reports a committed result")
	}
}

// TestHeartbeatRoundTrip pins the liveness frame: a written heartbeat
// reads back through the generic frame reader with the SVHB magic and
// its shard index, and the decoder rejects malformed bodies.
func TestHeartbeatRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteHeartbeat(&buf, 7); err != nil {
		t.Fatalf("WriteHeartbeat: %v", err)
	}
	magic, body, _, err := wire.ReadFrameAny(&buf)
	if err != nil {
		t.Fatalf("ReadFrameAny: %v", err)
	}
	if magic != heartbeatMagic {
		t.Fatalf("magic %q, want %q", magic, heartbeatMagic)
	}
	shard, err := decodeHeartbeat(body)
	if err != nil || shard != 7 {
		t.Fatalf("decodeHeartbeat = (%d, %v), want shard 7", shard, err)
	}
	if _, err := decodeHeartbeat(append(body, 0)); err == nil {
		t.Error("trailing bytes decoded cleanly")
	}
	if _, err := decodeHeartbeat([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}); err == nil {
		t.Error("implausible shard decoded cleanly")
	}
}
