package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"time"

	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Transport launches one worker per shard attempt and exposes its pipe
// pair. Three implementations ship: ProcTransport (real child processes
// over stdin/stdout, what `surveyor -distribute` uses), SocketTransport
// (TCP connections to standalone worker servers, what `-dist-connect`
// uses), and LocalTransport (in-process workers over in-memory pipes,
// what the race-enabled differential suites and the benchmarks use —
// same protocol bytes, no fork/exec noise).
//
// attempt is zero-based and increments each time the self-healing
// scheduler retries the shard on a fresh worker; transports may use it
// to pick a different endpoint (SocketTransport) or to thread chaos
// hooks (LocalTransport).
type Transport interface {
	Start(ctx context.Context, shard, attempt int) (Conn, error)
}

// Conn is one launched worker's endpoint from the coordinator's side.
type Conn interface {
	// In is the coordinator→worker stream (the worker's stdin). The
	// coordinator writes one job frame and closes it.
	In() io.WriteCloser
	// Out is the worker→coordinator stream (the worker's stdout).
	Out() io.Reader
	// Wait blocks until the worker exits and returns its terminal error
	// (nil for a clean exit). Call after Out is drained.
	Wait() error
	// Kill tears the worker down without waiting for a clean exit.
	Kill()
}

// endpointer is the optional Conn refinement that names the worker
// endpoint serving the connection; the scheduler uses it to tell a
// reconnect to the same worker from a reassignment to a different one.
type endpointer interface {
	Endpoint() string
}

// --- child processes -------------------------------------------------------

// procWaitDelay bounds how long Wait blocks on a killed child's pipes
// after its context is cancelled — a wedged worker cannot hang the
// coordinator's shutdown path.
const procWaitDelay = 10 * time.Second

// ProcTransport launches each worker as a child process. The command must
// speak the worker protocol on stdin/stdout (cmd/surveyor's hidden
// -dist-worker mode does); stderr passes through to Stderr for
// debuggability.
type ProcTransport struct {
	// Path is the worker executable.
	Path string
	// Args are the worker's command-line arguments.
	Args []string
	// ExtraArgs, when non-nil, appends per-launch arguments — cmd/surveyor
	// threads the attempt number through so a worker can be told which
	// retry it serves (the CI flake injector keys off it).
	ExtraArgs func(shard, attempt int) []string
	// Stderr receives the workers' stderr streams (nil discards them).
	Stderr io.Writer
}

// Start implements Transport.
func (t *ProcTransport) Start(ctx context.Context, shard, attempt int) (Conn, error) {
	args := t.Args
	if t.ExtraArgs != nil {
		args = append(append([]string(nil), args...), t.ExtraArgs(shard, attempt)...)
	}
	cmd := exec.CommandContext(ctx, t.Path, args...)
	cmd.Stderr = t.Stderr
	// A cancelled attempt kills the child (CommandContext's default); the
	// delay keeps a wedged child's pipes from blocking Wait forever.
	cmd.WaitDelay = procWaitDelay
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: shard %d stdin: %w", shard, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: shard %d stdout: %w", shard, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: shard %d start: %w", shard, err)
	}
	return &procConn{cmd: cmd, in: stdin, out: stdout}, nil
}

type procConn struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	out io.Reader
}

func (c *procConn) In() io.WriteCloser { return c.in }
func (c *procConn) Out() io.Reader     { return c.out }
func (c *procConn) Wait() error        { return c.cmd.Wait() }
func (c *procConn) Kill() {
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
	}
}

// --- in-process workers ----------------------------------------------------

// ErrInjectedCrash is the terminal error of a LocalTransport worker the
// Crash/FailAttempt hooks selected — the in-process stand-in for a
// killed child process: the output pipe breaks before any result frame
// is written.
var ErrInjectedCrash = errors.New("dist: injected worker crash")

// ErrInjectedDrop is the terminal error of a LocalTransport worker whose
// CutResult hook fired: the connection breaks mid-result-frame, leaving
// the coordinator with a torn read.
var ErrInjectedDrop = errors.New("dist: injected connection drop")

// LocalTransport runs each worker as a goroutine speaking the real
// protocol over in-memory pipes. Used by the differential suites (every
// schedule runs under the race detector) and by BenchmarkDistributedMine
// (process-free, so the codec and coordination costs are measured without
// fork/exec noise).
//
// The chaos hooks (Crash, FailAttempt, Hold, CutResult) are the
// deterministic stand-ins for the fleet failure modes of the paper's
// 40TB run: dead machines, transient crashes, stragglers past the
// deadline, and dropped connections. All are optional.
type LocalTransport struct {
	// Base and Lex are the worker-side knowledge base and lexicon — the
	// same immutable structures every worker process would build from the
	// shared seed.
	Base *kb.KB
	Lex  *lexicon.Lexicon
	// Pipeline is the worker-side extraction config (Version, Workers as
	// threads per worker, Fault for chaos injection, Obs).
	Pipeline pipeline.Config
	// Crash, when non-nil, selects shards whose worker dies on every
	// attempt before shipping its result — a permanently dead machine.
	// The worker still consumes its job, then breaks the pipe.
	Crash func(shard int) bool
	// FailAttempt, when non-nil, selects (shard, attempt) pairs whose
	// worker dies like Crash — a transient fault the retry budget can
	// heal.
	FailAttempt func(shard, attempt int) bool
	// Hold, when non-nil, returns a channel the worker blocks on before
	// writing its result (nil means no hold) — a straggler the shard
	// deadline reclaims, whose late result must be discarded exactly
	// once. The held worker has already finished extraction; closing the
	// channel releases the frames.
	Hold func(shard, attempt int) <-chan struct{}
	// CutResult, when non-nil, returns the byte offset after which the
	// worker's result stream breaks (0 means no cut) — a connection
	// dropped mid-frame.
	CutResult func(shard, attempt int) int64
	// OnServe, when non-nil, is called as each worker attempt starts
	// serving — a deterministic sequencing point for the chaos tests.
	OnServe func(shard, attempt int)
	// WorkerObs, when non-nil, gives each worker goroutine its own RunObs
	// (overriding Pipeline.Obs) — the in-process stand-in for each child
	// process running its own observability, so telemetry frames exercise
	// the real capture/ship path. Returning nil for a shard makes that
	// worker silent (no telemetry frame), like an obs-disabled process.
	WorkerObs func(shard int) *obs.RunObs
}

// Start implements Transport.
func (t *LocalTransport) Start(ctx context.Context, shard, attempt int) (Conn, error) {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	c := &localConn{in: jobW, out: resR, done: make(chan error, 1)}
	go func() {
		err := t.serve(ctx, shard, attempt, jobR, resW)
		// Break both pipe ends with the terminal error so a blocked
		// coordinator read fails like a closed stdout would.
		resW.CloseWithError(err)
		jobR.CloseWithError(err)
		c.done <- err
	}()
	return c, nil
}

// serve runs one worker attempt: read job, mine, ship result — or fail
// the way its chaos hooks dictate.
func (t *LocalTransport) serve(ctx context.Context, shard, attempt int, r io.Reader, w io.Writer) error {
	if t.OnServe != nil {
		t.OnServe(shard, attempt)
	}
	if (t.Crash != nil && t.Crash(shard)) ||
		(t.FailAttempt != nil && t.FailAttempt(shard, attempt)) {
		// Drain the job like a real worker that dies mid-mining, then
		// break the pipe without writing a result frame.
		if _, _, err := ReadJob(r); err != nil {
			return err
		}
		return ErrInjectedCrash
	}
	if t.CutResult != nil {
		if cut := t.CutResult(shard, attempt); cut > 0 {
			w = &cutWriter{w: w, budget: cut}
		}
	}
	if t.Hold != nil {
		if ch := t.Hold(shard, attempt); ch != nil {
			w = &holdWriter{w: w, release: ch}
		}
	}
	cfg := t.Pipeline
	if t.WorkerObs != nil {
		cfg.Obs = t.WorkerObs(shard)
	}
	return RunWorker(ctx, r, w, t.Base, t.Lex, cfg)
}

// cutWriter passes budget bytes through, then fails every write — the
// in-process stand-in for a TCP connection dropped mid-frame.
type cutWriter struct {
	w      io.Writer
	budget int64
}

func (c *cutWriter) Write(p []byte) (int, error) {
	if c.budget <= 0 {
		return 0, ErrInjectedDrop
	}
	if int64(len(p)) > c.budget {
		n, _ := c.w.Write(p[:c.budget])
		c.budget = 0
		return n, ErrInjectedDrop
	}
	c.budget -= int64(len(p))
	return c.w.Write(p)
}

// holdWriter blocks the first write until release closes — a straggler
// worker that finishes mining but delivers its result late.
type holdWriter struct {
	w       io.Writer
	release <-chan struct{}
	held    bool
}

func (h *holdWriter) Write(p []byte) (int, error) {
	if !h.held {
		<-h.release
		h.held = true
	}
	return h.w.Write(p)
}

type localConn struct {
	in   *io.PipeWriter
	out  *io.PipeReader
	done chan error
}

func (c *localConn) In() io.WriteCloser { return c.in }
func (c *localConn) Out() io.Reader     { return c.out }
func (c *localConn) Wait() error        { return <-c.done }
func (c *localConn) Kill() {
	c.in.CloseWithError(errors.New("dist: worker killed"))
	c.out.CloseWithError(errors.New("dist: worker killed"))
}
