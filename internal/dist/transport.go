package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os/exec"

	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Transport launches one worker per shard and exposes its pipe pair. Two
// implementations ship: ProcTransport (real child processes over
// stdin/stdout, what `surveyor -distribute` uses) and LocalTransport
// (in-process workers over in-memory pipes, what the race-enabled
// differential suites and the benchmarks use — same protocol bytes, no
// fork/exec noise).
type Transport interface {
	Start(ctx context.Context, shard int) (Conn, error)
}

// Conn is one launched worker's endpoint from the coordinator's side.
type Conn interface {
	// In is the coordinator→worker stream (the worker's stdin). The
	// coordinator writes one job frame and closes it.
	In() io.WriteCloser
	// Out is the worker→coordinator stream (the worker's stdout).
	Out() io.Reader
	// Wait blocks until the worker exits and returns its terminal error
	// (nil for a clean exit). Call after Out is drained.
	Wait() error
	// Kill tears the worker down without waiting for a clean exit.
	Kill()
}

// --- child processes -------------------------------------------------------

// ProcTransport launches each worker as a child process. The command must
// speak the worker protocol on stdin/stdout (cmd/surveyor's hidden
// -dist-worker mode does); stderr passes through to Stderr for
// debuggability.
type ProcTransport struct {
	// Path is the worker executable.
	Path string
	// Args are the worker's command-line arguments.
	Args []string
	// Stderr receives the workers' stderr streams (nil discards them).
	Stderr io.Writer
}

// Start implements Transport.
func (t *ProcTransport) Start(ctx context.Context, shard int) (Conn, error) {
	cmd := exec.CommandContext(ctx, t.Path, t.Args...)
	cmd.Stderr = t.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: shard %d stdin: %w", shard, err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("dist: shard %d stdout: %w", shard, err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: shard %d start: %w", shard, err)
	}
	return &procConn{cmd: cmd, in: stdin, out: stdout}, nil
}

type procConn struct {
	cmd *exec.Cmd
	in  io.WriteCloser
	out io.Reader
}

func (c *procConn) In() io.WriteCloser { return c.in }
func (c *procConn) Out() io.Reader     { return c.out }
func (c *procConn) Wait() error        { return c.cmd.Wait() }
func (c *procConn) Kill() {
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
	}
}

// --- in-process workers ----------------------------------------------------

// ErrInjectedCrash is the terminal error of a LocalTransport worker the
// Crash hook selected — the in-process stand-in for a killed child
// process: the output pipe breaks before any result frame is written.
var ErrInjectedCrash = errors.New("dist: injected worker crash")

// LocalTransport runs each worker as a goroutine speaking the real
// protocol over in-memory pipes. Used by the differential suites (every
// schedule runs under the race detector) and by BenchmarkDistributedMine
// (process-free, so the codec and coordination costs are measured without
// fork/exec noise).
type LocalTransport struct {
	// Base and Lex are the worker-side knowledge base and lexicon — the
	// same immutable structures every worker process would build from the
	// shared seed.
	Base *kb.KB
	Lex  *lexicon.Lexicon
	// Pipeline is the worker-side extraction config (Version, Workers as
	// threads per worker, Fault for chaos injection, Obs).
	Pipeline pipeline.Config
	// Crash, when non-nil, selects shards whose worker dies before
	// shipping its result — deterministic chaos for the crash-differential
	// suite. The worker still consumes its job, then breaks the pipe.
	Crash func(shard int) bool
	// WorkerObs, when non-nil, gives each worker goroutine its own RunObs
	// (overriding Pipeline.Obs) — the in-process stand-in for each child
	// process running its own observability, so telemetry frames exercise
	// the real capture/ship path. Returning nil for a shard makes that
	// worker silent (no telemetry frame), like an obs-disabled process.
	WorkerObs func(shard int) *obs.RunObs
}

// Start implements Transport.
func (t *LocalTransport) Start(ctx context.Context, shard int) (Conn, error) {
	jobR, jobW := io.Pipe()
	resR, resW := io.Pipe()
	c := &localConn{in: jobW, out: resR, done: make(chan error, 1)}
	go func() {
		err := t.serve(ctx, shard, jobR, resW)
		// Break both pipe ends with the terminal error so a blocked
		// coordinator read fails like a closed stdout would.
		resW.CloseWithError(err)
		jobR.CloseWithError(err)
		c.done <- err
	}()
	return c, nil
}

// serve runs one worker: read job, mine, ship result — or crash.
func (t *LocalTransport) serve(ctx context.Context, shard int, r io.Reader, w io.Writer) error {
	if t.Crash != nil && t.Crash(shard) {
		// Drain the job like a real worker that dies mid-mining, then
		// break the pipe without writing a result frame.
		if _, _, err := ReadJob(r); err != nil {
			return err
		}
		return ErrInjectedCrash
	}
	cfg := t.Pipeline
	if t.WorkerObs != nil {
		cfg.Obs = t.WorkerObs(shard)
	}
	return RunWorker(ctx, r, w, t.Base, t.Lex, cfg)
}

type localConn struct {
	in   *io.PipeWriter
	out  *io.PipeReader
	done chan error
}

func (c *localConn) In() io.WriteCloser { return c.in }
func (c *localConn) Out() io.Reader     { return c.out }
func (c *localConn) Wait() error        { return <-c.done }
func (c *localConn) Kill() {
	c.in.CloseWithError(errors.New("dist: worker killed"))
	c.out.CloseWithError(errors.New("dist: worker killed"))
}
