package dist

import (
	"context"
	"fmt"
	"io"

	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// workerHooks are the transport-specific extensions a worker serving loop
// threads through the shared protocol body. Pipe workers use none; socket
// workers use both (heartbeats while mining, a peer-close watcher that
// cancels abandoned work).
type workerHooks struct {
	// afterJob, when non-nil, runs once the job frame is fully read — the
	// point after which the coordinator sends nothing more on this
	// connection.
	afterJob func(job *Job)
	// heartbeat, when non-nil, starts the liveness emitter for the shard
	// and returns its stop function. The returned stop must be
	// synchronous: once it returns, no heartbeat write is in flight, so
	// the result frames that follow never interleave with one.
	heartbeat func(shard int) (stop func())
}

// RunWorker serves one worker's side of the protocol: read a job frame
// from r, mine the shard's evidence with pipeline.ExtractEvidence (the
// map step — the job's DocOffset threads through so every reported
// document index is corpus-global), and ship the delta as a result frame
// on w. cmd/surveyor's hidden -dist-worker mode calls this over
// stdin/stdout; LocalTransport calls it over in-memory pipes; the socket
// server wraps it via ServeConn with heartbeat and peer-watch hooks.
//
// All-or-nothing shard commit: nothing is written to w until extraction
// has completed, so a cancelled or crashed worker leaves the coordinator
// with a read error instead of a torn or partial shard. A cancellation
// mid-extraction returns ctx's error without shipping anything.
//
// A worker with a live RunObs appends one optional telemetry frame
// ("SVTM") after the result frames: its metric snapshot, its collected
// spans, and the clock anchors the coordinator uses for skew correction.
// A worker with a nil RunObs ships nothing extra — the coordinator's
// telemetry probe sees a clean EOF.
func RunWorker(ctx context.Context, r io.Reader, w io.Writer, base *kb.KB, lex *lexicon.Lexicon, cfg pipeline.Config) error {
	return runWorker(ctx, r, w, base, lex, cfg, workerHooks{})
}

// runWorker is the shared protocol body behind RunWorker and ServeConn.
func runWorker(ctx context.Context, r io.Reader, w io.Writer, base *kb.KB, lex *lexicon.Lexicon, cfg pipeline.Config, hooks workerHooks) error {
	st := cfg.Obs.BeginShardTelemetry()
	job, _, err := ReadJob(r)
	if err != nil {
		return fmt.Errorf("dist: worker read job: %w", err)
	}
	if hooks.afterJob != nil {
		hooks.afterJob(job)
	}
	stopHeartbeat := func() {}
	if hooks.heartbeat != nil {
		stop := hooks.heartbeat(job.Shard)
		stopped := false
		stopHeartbeat = func() {
			if !stopped {
				stopped = true
				stop()
			}
		}
	}
	defer stopHeartbeat()
	ext, err := pipeline.ExtractEvidence(ctx, job.Docs, base, lex, cfg, job.DocOffset)
	if err != nil {
		return fmt.Errorf("dist: worker shard %d: %w", job.Shard, err)
	}
	// The shard totals pipeline.Run would add in its reduce step — the
	// worker runs only the map step, so it publishes them here and they
	// reach the coordinator as surveyor_fleet_* series.
	pm := cfg.Obs.PipelineMetrics()
	pm.Documents.Add(int64(ext.Consumed - len(ext.Quarantined)))
	pm.Sentences.Add(ext.Sentences)
	pm.Statements.Add(ext.Store.TotalStatements())
	// The heartbeater must be fully stopped before the first result byte:
	// protocol frames and heartbeat frames share w, and only strict
	// sequencing keeps the stream parseable.
	stopHeartbeat()
	n, err := WriteShardResult(w, &ShardResult{
		Shard:       job.Shard,
		Consumed:    ext.Consumed,
		Sentences:   ext.Sentences,
		Quarantined: ext.Quarantined,
		Store:       ext.Store,
	})
	if err != nil {
		return fmt.Errorf("dist: worker shard %d write result: %w", job.Shard, err)
	}
	cfg.Obs.Dist().WireBytesEncoded.Add(n)
	if t := st.Export(); t != nil {
		if _, err := obs.EncodeTelemetry(w, t); err != nil {
			return fmt.Errorf("dist: worker shard %d write telemetry: %w", job.Shard, err)
		}
	}
	return nil
}
