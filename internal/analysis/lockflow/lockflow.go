// Package lockflow defines an analyzer for the pipeline's concurrency
// invariants. It reports three classes of problem, in every package:
//
//   - copies of sync.Mutex / sync.RWMutex values (assignment, call
//     arguments, range values, returns) — a copied lock guards nothing;
//   - channel sends performed while a mutex is held in the same function —
//     a send can block indefinitely, turning a fine-grained critical
//     section into a convoy (the evidence store's sharded mutexes assume
//     critical sections never block);
//   - evidence.Local values escaping their goroutine — Local is unlocked
//     by construction (PR 2), which is only sound while a single goroutine
//     owns it, so sending one on a channel, passing one to a spawned
//     goroutine, or capturing one in a `go` closure is reported.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/critical"
	"repro/internal/analysis/framework"
)

// Analyzer is the lockflow analyzer.
var Analyzer = &framework.Analyzer{
	Name: "lockflow",
	Doc: "flags mutex value copies, channel sends under a held lock, and " +
		"evidence.Local values escaping their goroutine",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	for _, file := range pass.Files {
		checkCopies(pass, file)
		checkSendsUnderLock(pass, file)
		checkLocalEscape(pass, file)
	}
	return nil, nil
}

// --- mutex value copies ---

// containsLock reports whether a value of type t embeds a sync.Mutex or
// sync.RWMutex (directly, via struct fields, or via array elements).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// copiesLock reports whether evaluating e as a value copies a lock: e must
// denote existing addressable state (identifier, field, element, deref) of
// a lock-containing type. Composite literals and &x do not copy.
func copiesLock(info *types.Info, e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	return containsLock(tv.Type, nil)
}

func checkCopies(pass *framework.Pass, file *ast.File) {
	report := func(pos ast.Node, what string, t types.Type) {
		pass.Reportf(pos.Pos(), "%s copies a value containing a sync mutex (%s); use a pointer",
			what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range x.Rhs {
				if copiesLock(pass.TypesInfo, rhs) {
					report(rhs, "assignment", pass.TypesInfo.Types[rhs].Type)
				}
			}
		case *ast.ValueSpec:
			for _, v := range x.Values {
				if copiesLock(pass.TypesInfo, v) {
					report(v, "variable initialization", pass.TypesInfo.Types[v].Type)
				}
			}
		case *ast.CallExpr:
			for _, arg := range x.Args {
				if copiesLock(pass.TypesInfo, arg) {
					report(arg, "call argument", pass.TypesInfo.Types[arg].Type)
				}
			}
		case *ast.RangeStmt:
			if t := rangeValueType(pass.TypesInfo, x.Value); t != nil && containsLock(t, nil) {
				report(x.Value, "range value", t)
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if copiesLock(pass.TypesInfo, res) {
					report(res, "return", pass.TypesInfo.Types[res].Type)
				}
			}
		}
		return true
	})
}

// rangeValueType resolves the type of a range statement's value variable,
// which lives in Defs when declared by := and in Types when assigned.
func rangeValueType(info *types.Info, v ast.Expr) types.Type {
	if v == nil {
		return nil
	}
	if id, ok := v.(*ast.Ident); ok {
		if obj, ok := info.Defs[id]; ok && obj != nil {
			return obj.Type()
		}
	}
	if tv, ok := info.Types[v]; ok {
		return tv.Type
	}
	return nil
}

// --- channel sends while a lock is held ---

// lockMethods and unlockMethods are the sync.Mutex/RWMutex methods that
// open and close a critical section.
var lockMethods = map[string]bool{"Lock": true, "RLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

func checkSendsUnderLock(pass *framework.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				scanBlock(pass, fn.Body.List, map[string]bool{})
			}
			return false
		case *ast.FuncLit:
			scanBlock(pass, fn.Body.List, map[string]bool{})
			return false
		}
		return true
	})
}

// mutexOfCall returns a stable textual key for the receiver of a
// Lock/Unlock-style call on a sync mutex, or "" if the call is not one.
func mutexOfCall(pass *framework.Pass, call *ast.CallExpr, methods map[string]bool) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !methods[sel.Sel.Name] || len(call.Args) != 0 {
		return ""
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return ""
	}
	return types.ExprString(sel.X)
}

// scanBlock walks a statement list tracking which mutexes are held,
// reporting channel sends inside critical sections. Nested control flow is
// scanned with a copy of the held set (conservative: state changes inside
// a branch do not propagate out); function literals start fresh.
func scanBlock(pass *framework.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if m := mutexOfCall(pass, call, lockMethods); m != "" {
					held[m] = true
				} else if m := mutexOfCall(pass, call, unlockMethods); m != "" {
					delete(held, m)
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to the end of the
			// function, so the held set is left as is.
		case *ast.SendStmt:
			reportSend(pass, s.Pos(), held)
		case *ast.SelectStmt:
			for _, cl := range s.Body.List {
				cc := cl.(*ast.CommClause)
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					reportSend(pass, send.Pos(), held)
				}
				scanBlock(pass, cc.Body, copyHeld(held))
			}
		case *ast.BlockStmt:
			scanBlock(pass, s.List, copyHeld(held))
		case *ast.IfStmt:
			scanBlock(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				scanBlock(pass, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			scanBlock(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			scanBlock(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, cl := range s.Body.List {
				scanBlock(pass, cl.(*ast.CaseClause).Body, copyHeld(held))
			}
		case *ast.TypeSwitchStmt:
			for _, cl := range s.Body.List {
				scanBlock(pass, cl.(*ast.CaseClause).Body, copyHeld(held))
			}
		}
		// Sends nested in expressions (e.g. inside a func literal) start a
		// new goroutine context; checkSendsUnderLock visits literals
		// separately, so nothing more to do here.
	}
}

func reportSend(pass *framework.Pass, pos token.Pos, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	// Sort so the named mutex is stable when several are held — the linter
	// obeys its own determinism rules.
	names := make([]string, 0, len(held))
	for m := range held {
		names = append(names, m)
	}
	sort.Strings(names)
	pass.Reportf(pos,
		"channel send while %s is held; a blocked receiver would stall the critical section — "+
			"send after Unlock", names[0])
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// --- evidence.Local escaping its goroutine ---

// isEvidenceLocal reports whether t is evidence.Local or *evidence.Local.
func isEvidenceLocal(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Local" && obj.Pkg() != nil &&
		critical.PathHasSuffix(obj.Pkg().Path(), "internal/evidence")
}

func checkLocalEscape(pass *framework.Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			if tv, ok := pass.TypesInfo.Types[x.Value]; ok && tv.Type != nil && isEvidenceLocal(tv.Type) {
				pass.Reportf(x.Pos(),
					"evidence.Local sent on a channel: Local is unlocked by construction and must stay "+
						"owned by one goroutine; flush with FlushTo and send the counts instead")
			}
		case *ast.GoStmt:
			for _, arg := range x.Call.Args {
				if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Type != nil && isEvidenceLocal(tv.Type) {
					pass.Reportf(arg.Pos(),
						"evidence.Local passed to a spawned goroutine; create the Local inside the "+
							"goroutine that owns it (evidence.NewLocal) instead of sharing one")
				}
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				checkClosureCapture(pass, lit)
			}
		}
		return true
	})
}

// checkClosureCapture reports evidence.Local variables referenced inside a
// `go func(){...}` literal but declared outside it.
func checkClosureCapture(pass *framework.Pass, lit *ast.FuncLit) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || reported[obj] || !isEvidenceLocal(obj.Type()) {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			reported[obj] = true
			pass.Reportf(id.Pos(),
				"goroutine closure captures evidence.Local %q declared outside it; Local is "+
					"single-owner — allocate it inside the goroutine (evidence.NewLocal)", obj.Name())
		}
		return true
	})
}
