// Fixture for lockflow's evidence.Local ownership check.
package b

import "internal/evidence"

// sendLocal ships the unlocked accumulator across goroutines: flagged.
func sendLocal(ch chan *evidence.Local, l *evidence.Local) {
	ch <- l // want `evidence.Local sent on a channel`
}

// capture shares one accumulator with a spawned goroutine: flagged.
func capture() {
	acc := evidence.NewLocal()
	go func() {
		acc.Add("x") // want `captures evidence.Local "acc"`
	}()
}

// handoff passes the accumulator as a goroutine argument: flagged.
func handoff(l *evidence.Local) {
	go worker(l) // want `evidence.Local passed to a spawned goroutine`
}

func worker(*evidence.Local) {}

// perGoroutine allocates the Local inside the goroutine that owns it —
// the pipeline's worker idiom (one NewLocal per worker, one FlushTo at
// the end): clean.
func perGoroutine(dst map[string]int) {
	go func() {
		acc := evidence.NewLocal()
		acc.Add("x")
		acc.FlushTo(dst)
	}()
}

// sameGoroutine passes the Local to an ordinary call, which stays in the
// owning goroutine: clean.
func sameGoroutine(l *evidence.Local) {
	helper(l)
}

func helper(l *evidence.Local) { l.Add("y") }
