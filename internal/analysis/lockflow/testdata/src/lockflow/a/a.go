// Fixture for lockflow's mutex-copy and send-under-lock checks. lockflow
// runs in every package, so no special package path is needed.
package a

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

var sink int

// copyDeref copies the whole lock-bearing struct: flagged.
func copyDeref(g *guarded) {
	h := *g // want `assignment copies a value containing a sync mutex`
	sink = h.n
}

// copyArg passes a lock-bearing value into a call: flagged.
func copyArg(g *guarded) {
	take(*g) // want `call argument copies a value containing a sync mutex`
}

func take(guarded) {}

// copyRange binds lock-bearing range values: flagged.
func copyRange(gs []guarded) {
	for _, g := range gs { // want `range value copies a value containing a sync mutex`
		sink = g.n
	}
}

// copyReturn returns a lock-bearing value loaded from a pointer: flagged.
func copyReturn(g *guarded) guarded {
	return *g // want `return copies a value containing a sync mutex`
}

// pointers moves the same state around by pointer: clean.
func pointers(g *guarded) *guarded {
	h := g
	take2(h)
	return h
}

func take2(*guarded) {}

// literalInit creates a zero-valued lock in place: clean.
func literalInit() *guarded {
	g := guarded{n: 1}
	return &g
}

// sendUnderLock sends while the mutex is held: flagged.
func sendUnderLock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	ch <- 1 // want `channel send while mu is held`
	mu.Unlock()
}

// sendUnderDeferredUnlock holds the lock to function end: flagged.
func sendUnderDeferredUnlock(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n // want `channel send while g.mu is held`
}

// sendInBranchUnderLock propagates held state into nested blocks: flagged.
func sendInBranchUnderLock(mu *sync.Mutex, ch chan int, cond bool) {
	mu.Lock()
	if cond {
		ch <- 1 // want `channel send while mu is held`
	}
	mu.Unlock()
}

// sendAfterUnlock releases first: clean.
func sendAfterUnlock(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	n := sink
	mu.Unlock()
	ch <- n
}

// sendOtherLockReleased tracks mutexes independently: clean.
func sendOtherLockReleased(a, b *sync.Mutex, ch chan int) {
	a.Lock()
	a.Unlock()
	b.Lock()
	b.Unlock()
	ch <- 1
}

// sendInSpawnedGoroutine starts a fresh lock context: clean.
func sendInSpawnedGoroutine(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	go func() {
		ch <- 1
	}()
	mu.Unlock()
}
