// Minimal stand-in for repro/internal/evidence: lockflow matches the
// Local type by name and package-path suffix, so only the shape matters.
package evidence

type Local struct{ m map[string]int }

func NewLocal() *Local { return &Local{m: map[string]int{}} }

func (l *Local) Add(k string) { l.m[k]++ }

func (l *Local) FlushTo(dst map[string]int) {
	for k, v := range l.m {
		dst[k] += v
		delete(l.m, k)
	}
}
