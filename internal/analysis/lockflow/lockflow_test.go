package lockflow_test

import (
	"testing"

	"repro/internal/analysis/framework/analysistest"
	"repro/internal/analysis/lockflow"
)

func TestLockflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockflow.Analyzer,
		"lockflow/a", "lockflow/b")
}
