// Fixture proving detmap ignores packages outside the
// determinism-critical set: the same loop that is flagged in
// internal/core produces no diagnostic here.
package other

func leak(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum -= sum * v
	}
	return sum
}
