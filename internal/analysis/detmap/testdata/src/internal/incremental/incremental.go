// Fixture for the detmap analyzer's widened scope: the package path ends
// in "internal/incremental", which the DeterminismLint table adds beyond
// the bit-identical core — the incremental miner must produce the same
// epochs for the same inputs.
package incremental

import "sort"

// dirtyGroups consumes a dirty-set map in iteration order: flagged. This
// is exactly the epoch-splice shape where iteration order would leak into
// the published snapshot.
func dirtyGroups(dirty map[string][]int) []int {
	var out []int
	for _, idxs := range dirty { // want `map iteration order`
		out = append(out, idxs...)
	}
	return out
}

// sortedDirtyGroups snapshots and sorts the keys first: clean.
func sortedDirtyGroups(dirty map[string][]int) []int {
	keys := make([]string, 0, len(dirty))
	for k := range dirty {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []int
	for _, k := range keys {
		out = append(out, dirty[k]...)
	}
	return out
}
