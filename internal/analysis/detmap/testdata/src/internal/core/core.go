// Fixture for the detmap analyzer. The package path ends in
// "internal/core", so it counts as determinism-critical.
package core

import "sort"

// leak consumes map values in iteration order without sorting: flagged.
func leak(m map[string]int) int {
	sum := 0
	for _, v := range m { // want `map iteration order`
		sum -= sum * v
	}
	return sum
}

// unsortedSink collects keys but never sorts them: flagged.
func unsortedSink(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order`
		keys = append(keys, k)
	}
	return keys
}

// sortedKeys is the repository's sorted-snapshot idiom: clean.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedEntries collects full entries and sorts with sort.Slice: clean.
func sortedEntries(m map[string]int) []entry {
	var out []entry
	for k, v := range m {
		out = append(out, entry{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

type entry struct {
	key string
	val int
}

// countOnly binds neither key nor value, so order cannot leak: clean.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// overSlice ranges over a slice, not a map: clean.
func overSlice(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}

// sortedInNestedLoop mirrors evidence.Store.Snapshot: the map range sits
// inside an outer loop and the sink is sorted after both: clean.
func sortedInNestedLoop(shards []map[string]int) []string {
	var keys []string
	for _, m := range shards {
		for k := range m {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
