// Package detmap defines an analyzer that flags `for range` over a map in
// the determinism-critical packages (core, evidence, testkit, annotate).
//
// Map iteration order is randomized by the runtime, so any value that
// depends on it breaks the bit-identical determinism contract the
// differential harness (PR 1) checks dynamically. The analyzer recognizes
// the repository's sorted-snapshot idiom — append the entries to a slice
// inside the loop, sort that slice afterwards in the same function — and
// accepts it; loops that only count (neither key nor value bound) are
// order-free and also accepted. Everything else is reported. Genuinely
// commutative folds (e.g. merging counters into a sharded store) are
// suppressed case by case with //lint:allow detmap <reason>.
package detmap

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/critical"
	"repro/internal/analysis/framework"
)

// Analyzer is the detmap analyzer.
var Analyzer = &framework.Analyzer{
	Name: "detmap",
	Doc: "flags map iteration in determinism-critical packages unless " +
		"the entries are collected and sorted before use",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	if !critical.DeterminismLint(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		checkFuncs(pass, file)
	}
	return nil, nil
}

// checkFuncs walks the file keeping track of the innermost enclosing
// function body, which is the scope the sorted-snapshot idiom is detected
// in.
func checkFuncs(pass *framework.Pass, file *ast.File) {
	var stack []*ast.BlockStmt
	var walk func(ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body == nil {
				return false
			}
			stack = append(stack, x.Body)
			ast.Inspect(x.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.FuncLit:
			stack = append(stack, x.Body)
			ast.Inspect(x.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.RangeStmt:
			if len(stack) > 0 {
				checkRange(pass, x, stack[len(stack)-1])
			}
		}
		return true
	}
	ast.Inspect(file, walk)
}

func checkRange(pass *framework.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// A loop that binds neither key nor value cannot observe the order.
	if isBlank(rs.Key) && isBlank(rs.Value) {
		return
	}
	if sortedAfter(pass, rs, fnBody) {
		return
	}
	pass.Report(framework.Diagnostic{
		Pos: rs.Pos(),
		End: rs.X.End(),
		Message: "map iteration order can leak into results in a determinism-critical package; " +
			"collect the entries into a slice and sort it, or justify with //lint:allow detmap <reason>",
		SuggestedFixes: []framework.SuggestedFix{{
			Message: "collect the keys, sort them, then index the map: " +
				"keys := make([]K, 0, len(m)); for k := range m { keys = append(keys, k) }; " +
				"sort.Slice(keys, ...); for _, k := range keys { ... m[k] ... }",
		}},
	})
}

func isBlank(e ast.Expr) bool {
	if e == nil {
		return true
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// sortedAfter reports whether the loop implements the sorted-snapshot
// idiom: its body appends to some slice variable, and after the loop the
// enclosing function sorts that same variable.
func sortedAfter(pass *framework.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	sinks := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return true
		}
		if obj := framework.RootIdentObj(pass.TypesInfo, as.Lhs[0]); obj != nil {
			sinks[obj] = true
		}
		return true
	})
	if len(sinks) == 0 {
		return false
	}

	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted || n == nil || n.End() <= rs.End() {
			return !sorted
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isSortCall(pass.TypesInfo, call) {
			return true
		}
		if obj := framework.RootIdentObj(pass.TypesInfo, call.Args[0]); obj != nil && sinks[obj] {
			sorted = true
		}
		return true
	})
	return sorted
}

var sortFuncs = map[string]bool{
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
}

func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := framework.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return sortFuncs[fn.Name()]
	case "slices":
		return len(fn.Name()) >= 4 && fn.Name()[:4] == "Sort"
	}
	return false
}
