package detmap_test

import (
	"testing"

	"repro/internal/analysis/detmap"
	"repro/internal/analysis/framework/analysistest"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detmap.Analyzer,
		"internal/core", "internal/incremental", "pkg/other")
}
