package errflow_test

import (
	"testing"

	"repro/internal/analysis/errflow"
	"repro/internal/analysis/framework/analysistest"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), errflow.Analyzer,
		"internal/wire", "internal/dist", "pkg/other")
}
