// Package errflow defines an analyzer enforcing PR 7's error contract on
// the decode and transport packages (internal/wire, internal/dist,
// internal/incremental, internal/corpus):
//
//   - error sentinels must be compared with errors.Is, never == or != —
//     the contract wraps errors with %w and typed wrappers (*ShardError,
//     *LineError), so identity comparison silently stops matching;
//   - error results of calls into these packages must not be discarded
//     (an ignored decode or transport error is a silent data loss);
//   - exported functions must not return an error obtained from another
//     package as-is: wrap it with fmt.Errorf("...: %w", err) or a typed
//     wrapper so the failure names the layer it crossed. Errors created
//     in place (fmt.Errorf, errors.New) and context cancellation
//     (ctx.Err()) are already "ours" and pass through freely; a genuine
//     passthrough sentinel (io.EOF as the clean end-of-stream signal)
//     documents itself with //lint:allow.
//
// The passthrough rule rides on the framework taint engine: sources are
// calls into foreign packages that yield errors, wrapping kills the
// taint (fmt/errors constructors do not propagate, composite literals
// are clean under NoCompositeTaint, and a reassignment like
// err = fmt.Errorf("...: %w", err) is recognized as a wrap). Test files
// are exempt: harnesses assert on sentinel identity deliberately.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/critical"
	"repro/internal/analysis/framework"
)

// Analyzer is the errflow analyzer.
var Analyzer = &framework.Analyzer{
	Name: "errflow",
	Doc: "requires errors.Is over ==, forbids discarded decode/transport errors, " +
		"and requires exported functions to wrap foreign errors in contract packages",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	if !critical.ErrContract(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		checkComparisons(pass, file)
		checkDiscarded(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !exportedFunc(pass, fd) {
				return true
			}
			checkReturns(pass, fd)
			return true
		})
	}
	return nil, nil
}

// checkComparisons flags ==/!= between an error and a sentinel (a
// package-level error variable like io.EOF). nil checks and identity
// dedup of two local error values are fine — only sentinel matching
// breaks under wrapping.
func checkComparisons(pass *framework.Pass, file *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(file, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
			return true
		}
		if !isErrorExpr(info, b.X) && !isErrorExpr(info, b.Y) {
			return true
		}
		if isNil(info, b.X) || isNil(info, b.Y) {
			return true
		}
		if !isSentinel(info, b.X) && !isSentinel(info, b.Y) {
			return true
		}
		pass.Reportf(b.Pos(),
			"error compared against a sentinel with %s; the contract wraps errors (%%w, typed wrappers), "+
				"so identity comparison breaks — use errors.Is (or errors.As for typed errors)", b.Op)
		return true
	})
}

// isSentinel reports whether e denotes a package-level error variable.
func isSentinel(info *types.Info, e ast.Expr) bool {
	obj := framework.RootIdentObj(info, e)
	if obj == nil {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			obj = info.Uses[sel.Sel]
		}
	}
	v, ok := obj.(*types.Var)
	return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() && isErrorType(v.Type())
}

// checkDiscarded flags discarded error results of calls into the
// contract packages: bare expression statements and assignments to _.
func checkDiscarded(pass *framework.Pass, file *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := discardsContractError(info, call, nil); ok {
					pass.Reportf(n.Pos(),
						"error result of %s discarded on a decode/transport path; handle it or assign and check it",
						name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := discardsContractError(info, call, n.Lhs); ok {
				pass.Reportf(n.Pos(),
					"error result of %s assigned to _ on a decode/transport path; handle it or assign and check it",
					name)
			}
		}
		return true
	})
}

// discardsContractError reports whether the call returns an error
// declared by a contract package and, given lhs, whether that error
// lands in a blank identifier (lhs == nil means the whole result set is
// dropped).
func discardsContractError(info *types.Info, call *ast.CallExpr, lhs []ast.Expr) (string, bool) {
	fn := framework.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !critical.ErrContract(fn.Pkg().Path()) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		if lhs == nil {
			return fn.Name(), true
		}
		if i < len(lhs) {
			if id, ok := lhs[i].(*ast.Ident); ok && id.Name == "_" {
				return fn.Name(), true
			}
		}
	}
	return "", false
}

// checkReturns flags return statements in exported functions whose error
// operands are unwrapped foreign errors.
func checkReturns(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	taint := framework.NewTaint(fd, framework.TaintConfig{
		Info:             info,
		NoCompositeTaint: true, // a typed wrapper struct IS the wrap
		Source: func(call *ast.CallExpr) bool {
			return foreignErrorCall(pass, call)
		},
	})
	// Refinement over sticky taint: an object rewrapped anywhere in the
	// function (err = fmt.Errorf("...: %w", err)) is considered handled
	// on every path — a linter-friendly under-approximation.
	rewrapped := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			obj := framework.RootIdentObj(info, as.Lhs[i])
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			if call, ok := as.Rhs[i].(*ast.CallExpr); ok && isWrapCall(info, call) {
				rewrapped[obj] = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if !isErrorExpr(info, r) {
				continue
			}
			if obj := framework.RootIdentObj(info, r); obj != nil && rewrapped[obj] {
				continue
			}
			switch {
			case taint.Expr(r):
				pass.Reportf(r.Pos(),
					"exported %s returns an error from another package unwrapped; add this layer's "+
						"context with fmt.Errorf(\"...: %%w\", err) or a typed wrapper", fd.Name.Name)
			case foreignSentinel(pass, r):
				pass.Reportf(r.Pos(),
					"exported %s returns the foreign sentinel %s directly; wrap it — or, if it is the "+
						"documented passthrough signal, justify with //lint:allow errflow", fd.Name.Name, exprString(r))
			}
		}
		return true
	})
}

// foreignErrorCall reports calls into other packages that yield errors —
// the taint sources for the passthrough rule. The error-constructor and
// context packages are exempt: their errors are created, not crossed.
func foreignErrorCall(pass *framework.Pass, call *ast.CallExpr) bool {
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return false
	}
	switch fn.Pkg().Path() {
	case "errors", "fmt", "context":
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// foreignSentinel reports whether e denotes an error variable declared
// in another package (io.EOF, bufio.ErrBufferFull, ...).
func foreignSentinel(pass *framework.Pass, e ast.Expr) bool {
	obj := framework.RootIdentObj(pass.TypesInfo, e)
	if obj == nil {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			obj = pass.TypesInfo.Uses[sel.Sel]
		}
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg() == pass.Pkg {
		return false
	}
	return isErrorType(v.Type())
}

// isWrapCall reports fmt.Errorf / errors wrapping constructors.
func isWrapCall(info *types.Info, call *ast.CallExpr) bool {
	fn := framework.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return fn.Name() == "Errorf"
	case "errors":
		return fn.Name() == "Join" || fn.Name() == "New"
	}
	return false
}

// exportedFunc reports whether the declaration is callable from outside
// the package: an exported function, or an exported method on an
// exported type.
func exportedFunc(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Exported()
	}
	return true
}

func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && isErrorType(tv.Type)
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func exprString(e ast.Expr) string {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
		if x, ok := sel.X.(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "it"
}
