// Package other is outside the error-contract scope: identity sentinel
// comparison and raw returns are legal here.
package other

import "io"

// Drain compares and returns sentinels freely outside the contract
// packages.
func Drain(r io.Reader) error {
	var b [1]byte
	_, err := r.Read(b[:])
	if err == io.EOF {
		return nil
	}
	return err
}
