// Package dist is the transport half of the errflow fixture: discarded
// decode errors and cross-package wrapping.
package dist

import (
	"fmt"
	"io"

	"internal/wire"
)

// Ship discards decode errors two ways.
func Ship(r io.Reader) []byte {
	wire.ReadFrame(r)         // want `error result of ReadFrame discarded on a decode/transport path`
	b, _ := wire.ReadFrame(r) // want `error result of ReadFrame assigned to _ on a decode/transport path`
	return b
}

// ShipChecked handles and wraps: clean.
func ShipChecked(r io.Reader) ([]byte, error) {
	b, err := wire.ReadFrame(r)
	if err != nil {
		return nil, fmt.Errorf("dist: job frame: %w", err)
	}
	return b, nil
}

// ShipLoose returns wire's error with no dist-layer context.
func ShipLoose(r io.Reader) ([]byte, error) {
	b, err := wire.ReadFrame(r)
	return b, err // want `exported ShipLoose returns an error from another package unwrapped`
}
