// Package wire is an errflow fixture: sentinel comparisons, unwrapped
// foreign-error returns, and the conforming wrapped shapes.
package wire

import (
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt is this package's own sentinel.
var ErrCorrupt = errors.New("wire: corrupt frame")

// ReadFrame wraps the reader's errors with this layer's context: clean.
func ReadFrame(r io.Reader) ([]byte, error) {
	buf := make([]byte, 8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: frame header: %w", err)
	}
	return buf, nil
}

// ReadLoose hands the io error to its caller with no context.
func ReadLoose(r io.Reader) ([]byte, error) {
	buf := make([]byte, 8)
	_, err := io.ReadFull(r, buf)
	return buf, err // want `exported ReadLoose returns an error from another package unwrapped`
}

// ReadRewrapped wraps by reassignment — recognized as handled.
func ReadRewrapped(r io.Reader) ([]byte, error) {
	buf := make([]byte, 8)
	_, err := io.ReadFull(r, buf)
	if err != nil {
		err = fmt.Errorf("wire: frame header: %w", err)
	}
	return buf, err
}

// readLoose is unexported: callers inside the package wrap at their own
// exported boundary.
func readLoose(r io.Reader) ([]byte, error) {
	buf := make([]byte, 8)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// IsEOF matches a sentinel by identity — broken under wrapping.
func IsEOF(err error) bool {
	return err == io.EOF // want `error compared against a sentinel with ==`
}

// IsEOFOk matches through wrap chains: clean.
func IsEOFOk(err error) bool {
	return errors.Is(err, io.EOF)
}

// SameError deduplicates one error value by identity — not a sentinel
// match, clean.
func SameError(a, b error) bool {
	return a != nil && a != b
}

// Next passes a foreign sentinel through directly.
func Next(r io.Reader) error {
	var b [1]byte
	if _, err := r.Read(b[:]); err != nil {
		return io.EOF // want `exported Next returns the foreign sentinel io.EOF directly`
	}
	return nil
}

// OwnSentinel returns this package's sentinel: clean (callers match it
// with errors.Is against this very package).
func OwnSentinel() error {
	return ErrCorrupt
}
