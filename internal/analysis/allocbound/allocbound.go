// Package allocbound defines an analyzer enforcing PR 5–7's fail-clean
// decoding rule statically: in the codec and transport packages
// (internal/wire, internal/annotate, internal/dist), every make and
// every loop-driven append whose size derives from decoded input must be
// dominated by a bound check against a *named* limit before the
// allocation happens. This is exactly the bug class the wire and
// annotate fuzz targets catch dynamically — a length-prefixed frame
// claiming 2^60 elements must be rejected by comparing against
// MaxFrameBytes-style constants, not discovered at OOM time.
//
// "Derives from decoded input" is answered by the framework's taint
// pass. Sources are the encoding/binary varint readers, io.ReadFull-
// style calls that fill a caller buffer, reads of a decoder's internal
// []byte buffer, and — via cross-package DecodedSource facts — calls to
// any function whose results were found to be decoded-derived when *its*
// package was analyzed. That last part is what lets internal/dist, which
// contains no raw decoding itself, see that wire.(*Decoder).Uvarint
// yields attacker-controlled numbers.
//
// A bound check guards an allocation when a terminating if compares the
// size above a limit (`if n > MaxFrameBytes { return ... }`), when an
// enclosing if bounds it below one, or when a function carrying a
// ValidatesParam fact was called on it. min(n, limit) at the use site is
// equally safe and needs no guard at all. Guards against bare literals
// are flagged separately: name the limit.
package allocbound

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/critical"
	"repro/internal/analysis/framework"
)

// Analyzer is the allocbound analyzer.
var Analyzer = &framework.Analyzer{
	Name: "allocbound",
	Doc: "requires decoded-input-derived allocation sizes to be bounds-checked " +
		"against a named limit before make/append in codec and transport packages",
	Run:       run,
	FactTypes: []framework.Fact{new(DecodedSource), new(ValidatesParam)},
}

// DecodedSource marks a function or method whose results derive from
// decoded input bytes — calling it is a taint source in every importing
// package.
type DecodedSource struct{}

// AFact marks DecodedSource as a fact type.
func (*DecodedSource) AFact() {}

// ValidatesParam marks a function that bounds-checks its Param'th
// parameter (0-based) against a named limit and terminates on overflow —
// calling it on a decoded size counts as the size's guard.
type ValidatesParam struct {
	Param int
}

// AFact marks ValidatesParam as a fact type.
func (*ValidatesParam) AFact() {}

func run(pass *framework.Pass) (any, error) {
	if !critical.AllocBound(pass.Pkg.Path()) {
		return nil, nil
	}
	a := &analysis{pass: pass, localSources: map[*types.Func]bool{}}
	a.computeFacts()
	a.checkAllocs()
	return nil, nil
}

type analysis struct {
	pass *framework.Pass
	// localSources holds this package's decoded-source functions as the
	// fixpoint discovers them (a function returning another source's
	// result is itself a source).
	localSources map[*types.Func]bool
}

// funcDecls yields every function declaration in the package outside
// _test.go files (fuzz targets feed decoders hostile input on purpose).
func (a *analysis) funcDecls() []*ast.FuncDecl {
	var decls []*ast.FuncDecl
	for _, file := range a.pass.Files {
		pos := a.pass.Fset.Position(file.Pos())
		if isTestFile(pos.Filename) {
			continue
		}
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}
	return decls
}

func isTestFile(name string) bool {
	const suffix = "_test.go"
	return len(name) >= len(suffix) && name[len(name)-len(suffix):] == suffix
}

// computeFacts runs the package-level fixpoint: a function whose return
// values are tainted is a DecodedSource; a function that bounds-checks a
// parameter against a named limit ValidatesParam. Both are exported for
// importing packages.
func (a *analysis) computeFacts() {
	decls := a.funcDecls()
	for {
		grew := false
		for _, fd := range decls {
			fn, ok := a.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || a.localSources[fn] {
				continue
			}
			taint := a.taintFor(fd)
			returnsTaint := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, r := range ret.Results {
					if taint.Expr(r) {
						returnsTaint = true
					}
				}
				return true
			})
			if returnsTaint {
				a.localSources[fn] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	for fn := range a.localSources {
		a.pass.ExportObjectFact(fn, &DecodedSource{})
	}
	for _, fd := range decls {
		fn, ok := a.pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		if i, ok := a.validatedParam(fd); ok {
			a.pass.ExportObjectFact(fn, &ValidatesParam{Param: i})
		}
	}
}

// validatedParam reports the first parameter the function bounds-checks
// against a named limit with a terminating branch.
func (a *analysis) validatedParam(fd *ast.FuncDecl) (int, bool) {
	if fd.Type.Params == nil {
		return 0, false
	}
	taint := a.taintFor(fd)
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := a.pass.TypesInfo.Defs[name]
			if obj != nil && isIntish(obj.Type()) {
				if guarded, named := taint.BoundedAt(fd.Body, lastPosOf(fd.Body), obj, nil); guarded && named {
					return i, true
				}
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return 0, false
}

// lastPosOf returns a node standing for "the end of the body", so
// BoundedAt accepts any guard inside it.
func lastPosOf(b *ast.BlockStmt) ast.Node { return endNode{b} }

type endNode struct{ b *ast.BlockStmt }

func (e endNode) Pos() token.Pos { return e.b.End() }
func (e endNode) End() token.Pos { return e.b.End() }

func isIntish(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// taintFor builds the taint pass for one function: decoded-byte sources
// plus this package's and imported DecodedSource facts.
func (a *analysis) taintFor(fd *ast.FuncDecl) *framework.Taint {
	info := a.pass.TypesInfo
	var recv types.Object
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recv = info.Defs[fd.Recv.List[0].Names[0]]
	}
	return framework.NewTaint(fd, framework.TaintConfig{
		Info: info,
		Source: func(call *ast.CallExpr) bool {
			fn := framework.CalleeFunc(info, call)
			if fn == nil {
				return false
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
				switch fn.Name() {
				case "Uvarint", "Varint", "ReadUvarint", "ReadVarint":
					return true
				}
			}
			if a.localSources[fn] {
				return true
			}
			return a.pass.ImportObjectFact(fn, &DecodedSource{})
		},
		TaintsArgs: func(call *ast.CallExpr) []ast.Expr {
			fn := framework.CalleeFunc(info, call)
			if fn == nil {
				return nil
			}
			// io.ReadFull(r, buf) / io.ReadAtLeast(r, buf, n) fill buf
			// with input bytes; r.Read(buf) likewise.
			if fn.Pkg() != nil && fn.Pkg().Path() == "io" && (fn.Name() == "ReadFull" || fn.Name() == "ReadAtLeast") {
				if len(call.Args) >= 2 {
					return call.Args[1:2]
				}
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && fn.Name() == "Read" {
				if len(call.Args) == 1 {
					return call.Args[:1]
				}
			}
			return nil
		},
		SourceExpr: func(e ast.Expr) bool {
			// A read of the decoder's own []byte buffer (d.buf) is raw
			// input.
			sel, ok := e.(*ast.SelectorExpr)
			if !ok || recv == nil {
				return false
			}
			if framework.RootIdentObj(info, sel.X) != recv {
				return false
			}
			tv, ok := info.Types[e]
			if !ok {
				return false
			}
			return isByteSlice(tv.Type)
		},
	})
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

// checkAllocs walks every function flagging unguarded tainted-size
// allocations: make calls and loops that append under a tainted bound.
func (a *analysis) checkAllocs() {
	info := a.pass.TypesInfo
	for _, fd := range a.funcDecls() {
		taint := a.taintFor(fd)
		validates := func(call *ast.CallExpr, obj types.Object) bool {
			fn := framework.CalleeFunc(info, call)
			if fn == nil {
				return false
			}
			// Same-package ValidatesParam facts were exported during
			// computeFacts, so one store lookup covers both local and
			// imported validators.
			var v ValidatesParam
			if a.pass.ImportObjectFact(fn, &v) && v.Param < len(call.Args) {
				return framework.RootIdentObj(info, call.Args[v.Param]) == obj
			}
			return false
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "make" && len(n.Args) > 1 {
						for _, size := range n.Args[1:] {
							a.checkSize(fd, taint, n, size, validates)
						}
					}
				}
			case *ast.ForStmt:
				// `for i < n { ...append/make... }` under a tainted n
				// grows memory proportional to the decoded number.
				if n.Cond != nil && containsGrowth(info, n.Body) {
					a.checkLoopBound(fd, taint, n, validates)
				}
			}
			return true
		})
	}
}

// checkSize reports a make whose size expression is tainted and not
// guarded.
func (a *analysis) checkSize(fd *ast.FuncDecl, taint *framework.Taint, at ast.Node, size ast.Expr, validates func(*ast.CallExpr, types.Object) bool) {
	if !taint.Expr(size) {
		return
	}
	objs := intObjs(taint.TaintedObjs(size))
	if len(objs) == 0 {
		a.pass.Reportf(at.Pos(),
			"allocation sized directly from decoded input; bind the size to a variable and compare it against a named limit first")
		return
	}
	a.requireGuard(fd, taint, at, objs, validates,
		"allocation size %q derives from decoded input")
}

// checkLoopBound reports a growth loop whose bound is tainted and not
// guarded.
func (a *analysis) checkLoopBound(fd *ast.FuncDecl, taint *framework.Taint, loop *ast.ForStmt, validates func(*ast.CallExpr, types.Object) bool) {
	// Only integer-typed tainted objects are loop bounds — a tainted
	// []byte mentioned under len() is bounded by its own allocation.
	objs := intObjs(taint.TaintedObjs(loop.Cond))
	if len(objs) == 0 {
		return
	}
	a.requireGuard(fd, taint, loop, objs, validates,
		"loop bound %q derives from decoded input and the loop grows a slice")
}

func (a *analysis) requireGuard(fd *ast.FuncDecl, taint *framework.Taint, at ast.Node, objs []types.Object, validates func(*ast.CallExpr, types.Object) bool, what string) {
	anyGuarded, anyNamed := false, false
	for _, obj := range objs {
		guarded, named := taint.BoundedAt(fd, at, obj, validates)
		if guarded {
			anyGuarded = true
		}
		if named {
			anyNamed = true
		}
	}
	name := objs[0].Name()
	switch {
	case anyGuarded && anyNamed:
		return
	case anyGuarded:
		a.pass.Reportf(at.Pos(),
			what+" and is bounds-checked only against a bare literal; name the limit (a const the reader can audit)", name)
	default:
		a.pass.Reportf(at.Pos(),
			what+" without a dominating bound check; compare it against a named limit (or min-cap it) before allocating", name)
	}
}

// intObjs filters to integer-typed objects — the only ones that can be
// sizes or bounds.
func intObjs(objs []types.Object) []types.Object {
	var out []types.Object
	for _, o := range objs {
		if isIntish(o.Type()) {
			out = append(out, o)
		}
	}
	return out
}

// containsGrowth reports whether the block contains an append call or a
// make call.
func containsGrowth(info *types.Info, b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if bi, ok := info.Uses[id].(*types.Builtin); ok && (bi.Name() == "append" || bi.Name() == "make") {
				found = true
			}
		}
		return !found
	})
	return found
}
