package allocbound_test

import (
	"testing"

	"repro/internal/analysis/allocbound"
	"repro/internal/analysis/framework/analysistest"
)

func TestAllocbound(t *testing.T) {
	// internal/dist imports internal/wire: the dist expectations only
	// hold if DecodedSource/ValidatesParam facts flow across the
	// fixture-package boundary.
	analysistest.Run(t, analysistest.TestData(), allocbound.Analyzer,
		"internal/wire", "internal/dist", "pkg/other")
}
