// Package other is outside the allocbound scope: the same unguarded
// pattern produces no findings here.
package other

import "encoding/binary"

// Decode allocates from a decoded count with no check — legal outside
// the codec and transport packages.
func Decode(buf []byte) []uint64 {
	n, _ := binary.Uvarint(buf)
	out := make([]uint64, 0, int(n))
	for i := 0; i < int(n); i++ {
		out = append(out, uint64(i))
	}
	return out
}
