// Package wire is an allocbound fixture mirroring the real wire codec:
// a decoder whose reads are taint sources, with guarded and unguarded
// allocations.
package wire

import (
	"encoding/binary"
	"errors"
)

// MaxElems is the named limit decoded counts are checked against.
const MaxElems = 1 << 20

// ErrTooBig rejects oversized counts.
var ErrTooBig = errors.New("wire: count exceeds limit")

// Decoder is a cursor over raw input bytes.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder wraps raw input bytes.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Uvarint decodes the next varint; its result derives from input.
func (d *Decoder) Uvarint() uint64 {
	v, n := binary.Uvarint(d.buf[d.off:])
	d.off += n
	return v
}

// Bytes returns the next n raw input bytes.
func (d *Decoder) Bytes(n int) []byte {
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// CheckCount validates a decoded count against the package limit; the
// analyzer exports a ValidatesParam fact for it.
func CheckCount(n int) error {
	if n > MaxElems {
		return ErrTooBig
	}
	return nil
}

// DecodeUnguarded allocates and loops on a decoded count with no bound
// check at all.
func DecodeUnguarded(d *Decoder) []uint64 {
	n := int(d.Uvarint())
	out := make([]uint64, 0, n) // want `allocation size "n" derives from decoded input without a dominating bound check`
	for i := 0; i < n; i++ {    // want `loop bound "n" derives from decoded input and the loop grows a slice without a dominating bound check`
		out = append(out, d.Uvarint())
	}
	return out
}

// DecodeLiteralGuard bounds the count, but only against a bare literal.
func DecodeLiteralGuard(d *Decoder) []uint64 {
	n := int(d.Uvarint())
	if n > 1<<20 {
		return nil
	}
	out := make([]uint64, 0, n) // want `allocation size "n" derives from decoded input and is bounds-checked only against a bare literal`
	for i := 0; i < n; i++ {    // want `loop bound "n" derives from decoded input and the loop grows a slice and is bounds-checked only against a bare literal`
		out = append(out, d.Uvarint())
	}
	return out
}

// DecodeGuarded is the contract-conforming shape: a terminating check
// against the named limit dominates both the allocation and the loop.
func DecodeGuarded(d *Decoder) []uint64 {
	n := int(d.Uvarint())
	if n > MaxElems {
		return nil
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Uvarint())
	}
	return out
}

// DecodeEnclosed bounds the allocation with an enclosing conditional.
func DecodeEnclosed(d *Decoder) []uint64 {
	n := int(d.Uvarint())
	if n <= MaxElems {
		return make([]uint64, n)
	}
	return nil
}

// DecodeValidated delegates the bound check to CheckCount — the
// ValidatesParam fact makes the call count as the guard.
func DecodeValidated(d *Decoder) ([]uint64, error) {
	n := int(d.Uvarint())
	if err := CheckCount(n); err != nil {
		return nil, err
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Uvarint())
	}
	return out, nil
}

// ReadPrefix needs no guard: min caps the allocation at a compile-time
// size regardless of the decoded value.
func ReadPrefix(d *Decoder) []byte {
	n := int(d.Uvarint())
	buf := make([]byte, min(n, 4096))
	copy(buf, d.buf)
	return buf
}

// SafeAlloc sizes from materialized data, not decoded numbers: len() of
// anything is bounded by the allocation that produced it.
func SafeAlloc(d *Decoder) []int {
	payload := d.Bytes(16)
	return make([]int, len(payload))
}
