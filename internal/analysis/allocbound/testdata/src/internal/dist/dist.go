// Package dist is the cross-package half of the allocbound fixture: it
// contains no raw decoding of its own — every taint below arrives
// through DecodedSource facts exported while internal/wire was
// analyzed, and the validated variant consumes wire.CheckCount's
// ValidatesParam fact.
package dist

import "internal/wire"

const maxJobDocs = 1 << 16

// ReadJob trusts a decoded count from another package.
func ReadJob(d *wire.Decoder) []uint64 {
	count := int(d.Uvarint())
	out := make([]uint64, 0, count) // want `allocation size "count" derives from decoded input without a dominating bound check`
	for i := 0; i < count; i++ {    // want `loop bound "count" derives from decoded input and the loop grows a slice without a dominating bound check`
		out = append(out, d.Uvarint())
	}
	return out
}

// ReadJobGuarded bounds the imported-decoder count against a named
// limit before allocating.
func ReadJobGuarded(d *wire.Decoder) []uint64 {
	count := int(d.Uvarint())
	if count > maxJobDocs {
		return nil
	}
	out := make([]uint64, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, d.Uvarint())
	}
	return out
}

// ReadJobValidated delegates the check to wire.CheckCount — a guard
// known only through its cross-package ValidatesParam fact.
func ReadJobValidated(d *wire.Decoder) ([]uint64, error) {
	count := int(d.Uvarint())
	if err := wire.CheckCount(count); err != nil {
		return nil, err
	}
	out := make([]uint64, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, d.Uvarint())
	}
	return out, nil
}
