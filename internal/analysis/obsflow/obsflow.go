// Package obsflow defines an analyzer that enforces the write-only
// telemetry contract of internal/obs in the observability-critical
// packages (the determinism-critical set plus the hot path).
//
// Instrumented code may record telemetry — counters, spans, progress, EM
// trajectories — but must never read it back, because a computation that
// branches on observed telemetry would make results depend on whether
// observability is enabled (and on scheduling). Three rules:
//
//   - No calls to the read-side API of internal/obs types (Value,
//     Snapshot, Count, Sum, Now, ...). Span.End is deliberately exempt:
//     its duration feeds Result.Timings, the one schedule-dependent output
//     the determinism contract explicitly excludes.
//   - No direct wall-clock reads (time.Now, time.Since, time.Until) —
//     timestamps flow through the obs-owned Clock.
//   - No expvar: process-global mutable state belongs to internal/obs's
//     debug server, not to pipeline code.
//
// Test files are exempt — tests legitimately read telemetry to assert on
// it.
package obsflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/critical"
	"repro/internal/analysis/framework"
)

// Analyzer is the obsflow analyzer.
var Analyzer = &framework.Analyzer{
	Name: "obsflow",
	Doc: "enforces write-only telemetry in observability-critical packages: " +
		"no reads of internal/obs state, no direct wall-clock reads, no expvar",
	Run: run,
}

// readMethods are the read-side methods of internal/obs types. End is
// deliberately absent: Span.End's duration feeds Result.Timings, which the
// determinism contract excludes.
var readMethods = map[string]bool{
	"Value": true, "Snapshot": true, "Count": true, "Sum": true,
	"Now": true, "Dropped": true, "EventCount": true,
	"WritePrometheus": true, "WriteChromeTrace": true, "WriteJSON": true,
}

// clockReads are the time-package functions that read the wall clock.
var clockReads = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *framework.Pass) (any, error) {
	if !critical.Observability(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Package).Filename, "_test.go") {
			continue // tests read telemetry to assert on it
		}
		for _, imp := range file.Imports {
			if imp.Path.Value == `"expvar"` {
				pass.Reportf(imp.Pos(),
					"expvar is process-global mutable telemetry state; "+
						"publish through the internal/obs debug server instead")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if critical.PathHasSuffix(fn.Pkg().Path(), "internal/obs") && readMethods[fn.Name()] {
					pass.Reportf(call.Pos(),
						"%s.%s reads observability state in an observability-critical package; "+
							"telemetry is write-only there (only Span.End's duration may escape, into Result.Timings)",
						fn.Pkg().Name(), fn.Name())
				}
				return true
			}
			if fn.Pkg().Path() == "time" && clockReads[fn.Name()] {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in an observability-critical package; "+
						"route timestamps through the internal/obs clock (obs.Span / obs.Clock)",
					fn.Name())
			}
			return true
		})
	}
	return nil, nil
}
