// Stub of the real internal/obs API surface for the obsflow fixtures.
// The package path ends in "internal/obs", which is all the analyzer
// matches on.
package obs

import "time"

// Counter mirrors the write (Add, Inc) and read (Value) sides.
type Counter struct{ v int64 }

// Add is a write: allowed everywhere.
func (c *Counter) Add(n int64) { c.v += n }

// Inc is a write: allowed everywhere.
func (c *Counter) Inc() { c.v++ }

// Value is a read: forbidden in observability-critical packages.
func (c *Counter) Value() int64 { return c.v }

// Registry mirrors the snapshot read side.
type Registry struct{}

// Snapshot is a read: forbidden in observability-critical packages.
func (r *Registry) Snapshot() []int64 { return nil }

// Span mirrors the one sanctioned escape hatch.
type Span struct{ start time.Duration }

// End returns the span duration — deliberately allowed, it feeds
// Result.Timings which the determinism contract excludes.
func (s *Span) End() time.Duration { return 0 }

// Clock is the injected monotonic time source.
type Clock interface {
	// Now is a read: instrumented code must not branch on the clock.
	Now() time.Duration
}

// Gauge mirrors the set-only write side.
type Gauge struct{ v int64 }

// Set is a write: allowed everywhere.
func (g *Gauge) Set(v int64) { g.v = v }

// Total reads a counter *inside* internal/obs itself — the telemetry
// implementation legitimately reads its own state (that is what serving
// a debug page is), and the package is outside the write-only scope, so
// this is clean.
func Total(c *Counter) int64 {
	return c.Value()
}
