// Fixture for the obsflow analyzer. The package path ends in
// "internal/pipeline", so it counts as observability-critical.
package pipeline

import (
	"expvar" // want `process-global mutable telemetry state`
	"time"

	"internal/obs"
)

// record writes telemetry: clean — writes are the contract.
func record(c *obs.Counter) {
	c.Add(41)
	c.Inc()
}

// branchOnCounter reads a counter back and branches on it: flagged.
func branchOnCounter(c *obs.Counter) int64 {
	if c.Value() > 10 { // want `reads observability state`
		return 0
	}
	return c.Value() // want `reads observability state`
}

// scrape reads the whole registry: flagged.
func scrape(r *obs.Registry) []int64 {
	return r.Snapshot() // want `reads observability state`
}

// tick reads the obs clock directly: flagged.
func tick(c obs.Clock) time.Duration {
	return c.Now() // want `reads observability state`
}

// phase uses the sanctioned escape hatch: clean. End's duration feeds
// Result.Timings, which the determinism contract excludes.
func phase(s *obs.Span) time.Duration {
	return s.End()
}

// wallClock reads ambient time: flagged, both forms.
func wallClock() time.Duration {
	start := time.Now()      // want `reads the wall clock`
	return time.Since(start) // want `reads the wall clock`
}

// arithmetic on injected timestamps is fine: clean.
func elapsed(start, end time.Duration) time.Duration {
	return end - start
}

// publish keeps the expvar import used; the import line above carries the
// diagnostic, the call does not get a second one.
func publish() *expvar.Int {
	return expvar.NewInt("surveyor_fixture")
}

// adaptiveBatch sizes the next batch from the documents counter — the
// feedback loop the write-only contract exists to prevent: the schedule
// would leak into results through the telemetry reading.
func adaptiveBatch(done *obs.Counter, batch int) int {
	if done.Value()%2 == 0 { // want `reads observability state`
		return batch * 2
	}
	return batch
}

// instrumentedWorker is the legitimate write-heavy shape: counters,
// gauges, and spans written throughout a processing loop, duration
// escaping only through Span.End. All clean.
func instrumentedWorker(docs []int, processed *obs.Counter, depth *obs.Gauge, span *obs.Span) time.Duration {
	for range docs {
		processed.Inc()
		depth.Set(int64(len(docs)))
	}
	processed.Add(int64(len(docs)))
	return span.End()
}
