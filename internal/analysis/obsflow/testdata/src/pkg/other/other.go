// Fixture negative control: the package path matches no critical suffix,
// so the very same patterns produce no diagnostics.
package other

import (
	"expvar"
	"time"

	"internal/obs"
)

// fine reads telemetry, the clock, and expvar outside the critical set:
// all clean.
func fine(c *obs.Counter, r *obs.Registry) int64 {
	expvar.NewInt("other_fixture")
	start := time.Now()
	_ = time.Since(start)
	_ = r.Snapshot()
	return c.Value()
}
