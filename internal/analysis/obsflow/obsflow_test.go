package obsflow_test

import (
	"testing"

	"repro/internal/analysis/framework/analysistest"
	"repro/internal/analysis/obsflow"
)

func TestObsflow(t *testing.T) {
	// internal/obs itself is loaded as a checked package too: the
	// telemetry implementation reads its own state by design and must
	// stay finding-free.
	analysistest.Run(t, analysistest.TestData(), obsflow.Analyzer,
		"internal/pipeline", "internal/obs", "pkg/other")
}
