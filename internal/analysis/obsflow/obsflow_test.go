package obsflow_test

import (
	"testing"

	"repro/internal/analysis/framework/analysistest"
	"repro/internal/analysis/obsflow"
)

func TestObsflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), obsflow.Analyzer,
		"internal/pipeline", "pkg/other")
}
