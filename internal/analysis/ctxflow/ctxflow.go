// Package ctxflow defines an analyzer enforcing PR 5's cancellation
// discipline in library packages (every internal/... package):
//
//   - a function that accepts a context.Context must hand it (or a
//     context derived from it via context.With*) to every callee that
//     takes one — dropping ctx silently detaches a subtree from
//     cancellation;
//   - library code must not mint fresh contexts with context.Background
//     or context.TODO — entry points (cmd, examples, the surveyor
//     facade) own context creation; a compatibility wrapper that
//     genuinely needs one documents it with //lint:allow;
//   - in the worker packages (internal/pipeline, internal/dist), a loop
//     that claims work with an atomic counter must not consult the
//     context afterwards inside the same iteration: PR 5's rule is that
//     cancellation is observed *before* claiming a document, so a
//     claimed document always finishes and the quarantine/commit
//     bookkeeping never sees a half-processed item.
//
// Test files are exempt: harnesses legitimately create their own
// contexts.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/critical"
	"repro/internal/analysis/framework"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "requires ctx propagation in library packages, forbids context.Background/TODO " +
		"outside entry points, and forbids ctx checks between claim and commit in workers",
	Run: run,
}

func run(pass *framework.Pass) (any, error) {
	if !critical.Library(pass.Pkg.Path()) {
		return nil, nil
	}
	claimCommit := critical.ClaimCommit(pass.Pkg.Path())
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			checkFunc(pass, fd, claimCommit)
			return true
		})
	}
	return nil, nil
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, claimCommit bool) {
	info := pass.TypesInfo

	// Contexts derived from the function's ctx parameters: the params
	// themselves plus anything built from them through context.With*.
	var seeds []types.Object
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil && isContext(obj.Type()) {
					seeds = append(seeds, obj)
				}
			}
		}
	}
	derived := framework.NewTaint(fd, framework.TaintConfig{
		Info:  info,
		Seeds: seeds,
		PropagateCall: func(call *ast.CallExpr) bool {
			fn := framework.CalleeFunc(info, call)
			return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context"
		},
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		// Nested function literals get their own FuncDecl-less analysis
		// via the same walk; a goroutine closing over ctx still counts
		// as this function's use.
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s in a library package detaches this call tree from cancellation; "+
					"accept a ctx parameter and propagate it (entry points own context creation)", fn.Name())
			return true
		}
		if len(seeds) == 0 {
			return true
		}
		// The callee takes a context: one of the arguments must derive
		// from our ctx.
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		wantsCtx := false
		for i := 0; i < sig.Params().Len(); i++ {
			if isContext(sig.Params().At(i).Type()) {
				wantsCtx = true
			}
		}
		if !wantsCtx {
			return true
		}
		for _, arg := range call.Args {
			tv, ok := info.Types[arg]
			if ok && isContext(tv.Type) && derived.Expr(arg) {
				return true
			}
		}
		pass.Reportf(call.Pos(),
			"%s takes a context but none of the arguments derives from this function's ctx; "+
				"pass ctx (or a context.With* derivation of it) through", fn.Name())
		return true
	})

	if claimCommit {
		checkClaimCommit(pass, fd)
	}
}

// checkClaimCommit flags any use of a context inside a loop body after
// an atomic claim (a .Add call on a sync/atomic counter) in the same
// body — between claim and commit, cancellation must be invisible.
func checkClaimCommit(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch loop := n.(type) {
		case *ast.ForStmt:
			body = loop.Body
		case *ast.RangeStmt:
			body = loop.Body
		default:
			return true
		}
		claimEnd := claimPos(info, body)
		if !claimEnd.IsValid() {
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			id, ok := m.(*ast.Ident)
			if !ok || id.Pos() <= claimEnd {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !isContext(obj.Type()) {
				return true
			}
			pass.Reportf(id.Pos(),
				"ctx consulted after the atomic work claim in this loop; claimed documents must finish — "+
					"check ctx before claiming (PR 5 cancellation rule)")
			return false
		})
		return true
	})
}

// claimPos returns the end position of the first atomic claim (an
// .Add(...) call on a sync/atomic type) in the block, or NoPos.
func claimPos(info *types.Info, body *ast.BlockStmt) (pos token.Pos) {
	ast.Inspect(body, func(n ast.Node) bool {
		if pos.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Name() != "Add" {
			return true
		}
		pos = call.End()
		return false
	})
	return pos
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
