package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/framework/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer,
		"internal/pipeline", "pkg/other")
}
