// Package pipeline is a ctxflow fixture: propagation, fresh-context,
// and claim-commit cases in a worker package.
package pipeline

import (
	"context"
	"sync/atomic"
)

func process(ctx context.Context, doc int) {}

func work(doc int) {}

// Propagate passes its ctx straight through: clean.
func Propagate(ctx context.Context, docs []int) {
	for _, d := range docs {
		process(ctx, d)
	}
}

// Derive passes a context derived from ctx: clean.
func Derive(ctx context.Context, doc int) {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	process(cctx, doc)
}

// Drop receives a ctx but hands the callee a fresh one.
func Drop(ctx context.Context, doc int) {
	process(context.TODO(), doc) // want `context.TODO in a library package` `process takes a context but none of the arguments derives`
}

// Fresh mints a context with no ctx in scope at all.
func Fresh(doc int) {
	process(context.Background(), doc) // want `context.Background in a library package`
}

// Workers observes cancellation before the atomic claim — PR 5's rule —
// so a claimed document always finishes: clean.
func Workers(ctx context.Context, docs []int) {
	var next atomic.Int64
	for {
		if ctx.Err() != nil {
			break
		}
		i := int(next.Add(1)) - 1
		if i >= len(docs) {
			break
		}
		work(docs[i])
	}
}

// BadWorkers consults ctx after claiming: the claimed document might
// never commit.
func BadWorkers(ctx context.Context, docs []int) {
	var next atomic.Int64
	for {
		i := int(next.Add(1)) - 1
		if i >= len(docs) {
			break
		}
		if ctx.Err() != nil { // want `ctx consulted after the atomic work claim`
			break
		}
		work(docs[i])
	}
}
