// Package other is an entry-point-style package outside the library
// scope: creating contexts here is the point.
package other

import "context"

func serve(ctx context.Context) {}

// Main owns context creation — no findings outside internal/... paths.
func Main() {
	serve(context.Background())
}
