// Package critical records which packages of the repository each
// surveyorlint analyzer binds to. Paths are matched by suffix so the same
// tables work for the real module ("repro/internal/evidence"), for the
// analyzers' testdata fixtures ("internal/evidence"), and for a future
// module rename.
package critical

import "strings"

// determinism lists the packages under the bit-identical determinism
// contract: their outputs must not depend on map iteration order, ambient
// randomness, or the clock. PR 1's differential harness checks the
// contract dynamically; detmap and detrand enforce it statically.
var determinism = []string{
	"internal/core",
	"internal/evidence",
	"internal/testkit",
	"internal/annotate",
	"internal/wire",
	"internal/dist",
}

// hotPath lists the packages on the ~90k docs/sec extraction path, where
// the allocating NLP wrappers must not reappear (PR 2's scratch-reuse
// APIs).
var hotPath = []string{
	"internal/pipeline",
}

// Determinism reports whether the package is determinism-critical.
func Determinism(pkgPath string) bool { return matches(pkgPath, determinism) }

// HotPath reports whether the package is on the extraction hot path.
func HotPath(pkgPath string) bool { return matches(pkgPath, hotPath) }

// Observability reports whether the package is bound by the write-only
// telemetry contract: everything determinism-critical or on the hot path
// records observability state but must never read it back (the obsflow
// analyzer enforces this).
func Observability(pkgPath string) bool {
	return Determinism(pkgPath) || HotPath(pkgPath)
}

func matches(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if PathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// PathHasSuffix reports whether path equals suffix or ends with
// "/"+suffix — i.e. suffix matches on package-path element boundaries.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
