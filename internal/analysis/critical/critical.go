// Package critical records which packages of the repository each
// surveyorlint analyzer binds to. Paths are matched by suffix so the same
// tables work for the real module ("repro/internal/evidence"), for the
// analyzers' testdata fixtures ("internal/evidence"), and for a future
// module rename.
package critical

import "strings"

// determinism lists the packages under the bit-identical determinism
// contract: their outputs must not depend on map iteration order, ambient
// randomness, or the clock. PR 1's differential harness checks the
// contract dynamically; detmap and detrand enforce it statically.
var determinism = []string{
	"internal/core",
	"internal/evidence",
	"internal/testkit",
	"internal/annotate",
	"internal/wire",
	"internal/wire/framing",
	"internal/dist",
}

// hotPath lists the packages on the ~90k docs/sec extraction path, where
// the allocating NLP wrappers must not reappear (PR 2's scratch-reuse
// APIs).
var hotPath = []string{
	"internal/pipeline",
}

// determinismLintExtra extends the detmap/detrand lint scope beyond the
// bit-identical core: the incremental miner must produce the same epochs
// for the same inputs, and the observability layer's exported snapshots
// must be stably ordered. These packages are *not* under the write-only
// telemetry contract (obs legitimately reads its own state back), so
// they extend DeterminismLint but not Observability.
var determinismLintExtra = []string{
	"internal/incremental",
	"internal/obs",
}

// allocBound lists the packages where every allocation sized from
// decoded input must be dominated by a bound check against a named
// limit (the allocbound analyzer): the wire codec and its framing
// primitives, the annotate codec, the dist protocol layer that consumes
// wire's decoders cross-package (the job/result codecs and the socket
// demultiplexer's heartbeat decoding alike — both read sizes straight
// off the network), and the obs telemetry codec (the coordinator
// decodes worker frames with the same discipline).
var allocBound = []string{
	"internal/wire",
	"internal/wire/framing",
	"internal/annotate",
	"internal/dist",
	"internal/obs",
}

// errContract lists the packages whose exported functions must return
// wrapped or typed errors and compare sentinels with errors.Is (the
// errflow analyzer) — the decode and transport paths where a swallowed
// or identity-compared error becomes a silent data loss. internal/obs
// joined when it grew its own wire codec (telemetry frames) and
// federation errors an operator must see; internal/dist's membership
// covers the self-healing scheduler and the socket transport, whose
// retry decisions hinge on errors.Is against typed sentinels
// (ErrShardDeadline, the injected-fault markers).
var errContract = []string{
	"internal/wire",
	"internal/wire/framing",
	"internal/dist",
	"internal/incremental",
	"internal/corpus",
	"internal/obs",
}

// claimCommit lists the packages whose worker loops follow PR 5's
// "claimed documents always finish" rule: cancellation may be observed
// before claiming a document, never between claim and commit (the
// ctxflow analyzer). In internal/dist the same discipline governs the
// retry scheduler: an attempt may be abandoned at its deadline, but a
// shard commits all-or-nothing through its exactly-once commit cell.
var claimCommit = []string{
	"internal/pipeline",
	"internal/dist",
}

// Determinism reports whether the package is determinism-critical.
func Determinism(pkgPath string) bool { return matches(pkgPath, determinism) }

// DeterminismLint reports whether detmap/detrand bind to the package:
// the determinism core plus the incremental and obs layers.
func DeterminismLint(pkgPath string) bool {
	return Determinism(pkgPath) || matches(pkgPath, determinismLintExtra)
}

// AllocBound reports whether the package is under the decoded-input
// allocation-bounding contract.
func AllocBound(pkgPath string) bool { return matches(pkgPath, allocBound) }

// ErrContract reports whether the package is under the wrapped-typed-
// error contract.
func ErrContract(pkgPath string) bool { return matches(pkgPath, errContract) }

// ClaimCommit reports whether the package's worker loops are under the
// claim-then-finish cancellation rule.
func ClaimCommit(pkgPath string) bool { return matches(pkgPath, claimCommit) }

// Library reports whether the package is library code (an "internal"
// path element), where fresh contexts (context.Background/TODO) are
// forbidden — entry points (cmd, examples, the surveyor facade) own
// context creation.
func Library(pkgPath string) bool {
	for _, el := range strings.Split(pkgPath, "/") {
		if el == "internal" {
			return true
		}
	}
	return false
}

// HotPath reports whether the package is on the extraction hot path.
func HotPath(pkgPath string) bool { return matches(pkgPath, hotPath) }

// Observability reports whether the package is bound by the write-only
// telemetry contract: everything determinism-critical or on the hot path
// records observability state but must never read it back (the obsflow
// analyzer enforces this).
func Observability(pkgPath string) bool {
	return Determinism(pkgPath) || HotPath(pkgPath)
}

func matches(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if PathHasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// PathHasSuffix reports whether path equals suffix or ends with
// "/"+suffix — i.e. suffix matches on package-path element boundaries.
func PathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
