package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the framework's intra-procedural dataflow engine: a taint
// pass answering "does this value derive from a designated source?" and a
// dominance-flavored guard query answering "is this value bounds-checked
// against a limit before this program point?". Both are deliberately
// approximate in the direction a linter wants: taint is *sticky* (an
// object once tainted stays tainted — a monotone merge of every reaching
// definition, so reassignment never hides provenance), and guard lookup
// is lexical (a check textually before the use, or an enclosing
// conditional, counts). Analyzers that need kill semantics — e.g. "the
// error was wrapped before this return" — refine on top at report time.

// A TaintConfig tells the engine what counts as a source and how taint
// flows through calls. All predicate fields are optional.
type TaintConfig struct {
	// Info is the type information for the enclosing package. Required.
	Info *types.Info

	// Source reports whether the results of a call are tainted (e.g. a
	// varint decode, or a call to a function carrying a DecodedSource
	// fact). Calls not matched by Source or PropagateCall return clean
	// values.
	Source func(call *ast.CallExpr) bool

	// TaintsArgs returns the argument expressions a call taints in
	// place — io.ReadFull(r, buf) fills buf with input bytes.
	TaintsArgs func(call *ast.CallExpr) []ast.Expr

	// SourceExpr marks non-call source expressions, e.g. a read of a
	// decoder's internal []byte field.
	SourceExpr func(e ast.Expr) bool

	// PropagateCall reports calls whose results are tainted when any
	// argument is (e.g. context.WithCancel for ctx derivation). Unknown
	// calls do NOT propagate: a tainted argument to an arbitrary
	// function does not taint its results.
	PropagateCall func(call *ast.CallExpr) bool

	// Seeds are objects tainted before the fixpoint starts (e.g. a
	// function's context parameter).
	Seeds []types.Object

	// NoCompositeTaint, when set, keeps composite literals clean even
	// when an element is tainted. errflow sets it: wrapping an error in
	// a typed struct *is* the remedy, so the wrapper must come out
	// clean.
	NoCompositeTaint bool
}

// A Taint is the result of running the taint fixpoint over one function
// body.
type Taint struct {
	cfg     TaintConfig
	tainted map[types.Object]bool
}

// NewTaint runs the sticky-taint fixpoint over fn (typically a
// *ast.FuncDecl or its body): repeatedly sweep every assignment, short
// variable declaration, var spec, range statement, and in-place tainting
// call, marking left-hand objects whose right-hand side is tainted,
// until the tainted set stops growing. Taint is never removed, so the
// result over-approximates every execution order.
func NewTaint(fn ast.Node, cfg TaintConfig) *Taint {
	t := &Taint{cfg: cfg, tainted: map[types.Object]bool{}}
	for _, o := range cfg.Seeds {
		if o != nil {
			t.tainted[o] = true
		}
	}
	for {
		before := len(t.tainted)
		t.sweep(fn)
		if len(t.tainted) == before {
			return t
		}
	}
}

func (t *Taint) sweep(fn ast.Node) {
	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			t.assign(n)
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				switch {
				case len(n.Values) == len(n.Names):
					rhs = n.Values[i]
				case len(n.Values) == 1:
					rhs = n.Values[0]
				}
				if rhs != nil && t.Expr(rhs) {
					t.markObj(t.identObj(name))
				}
			}
		case *ast.RangeStmt:
			if n.X != nil && t.Expr(n.X) {
				t.markExpr(n.Key)
				t.markExpr(n.Value)
			}
		case *ast.CallExpr:
			if t.cfg.TaintsArgs != nil {
				for _, arg := range t.cfg.TaintsArgs(n) {
					t.markExpr(arg)
				}
			}
		}
		return true
	})
}

func (t *Taint) assign(n *ast.AssignStmt) {
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			tainted := t.Expr(n.Rhs[i])
			// Op-assigns (+=, |=, ...) keep the left side's own taint.
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				tainted = tainted || t.Expr(n.Lhs[i])
			}
			if tainted {
				t.markExpr(n.Lhs[i])
			}
		}
		return
	}
	// a, b := f() — a multi-value source taints every binding.
	if len(n.Rhs) == 1 && t.Expr(n.Rhs[0]) {
		for _, l := range n.Lhs {
			t.markExpr(l)
		}
	}
}

// Expr reports whether the expression's value derives from a source.
func (t *Taint) Expr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	if t.cfg.SourceExpr != nil && t.cfg.SourceExpr(e) {
		return true
	}
	switch e := e.(type) {
	case *ast.Ident:
		return t.tainted[t.identObj(e)]
	case *ast.ParenExpr:
		return t.Expr(e.X)
	case *ast.UnaryExpr:
		return t.Expr(e.X)
	case *ast.StarExpr:
		return t.Expr(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
			token.LAND, token.LOR:
			// Comparisons yield booleans, not sizes or payloads.
			return false
		}
		return t.Expr(e.X) || t.Expr(e.Y)
	case *ast.IndexExpr:
		return t.Expr(e.X)
	case *ast.SliceExpr:
		return t.Expr(e.X)
	case *ast.SelectorExpr:
		return t.Expr(e.X)
	case *ast.TypeAssertExpr:
		return t.Expr(e.X)
	case *ast.KeyValueExpr:
		return t.Expr(e.Value)
	case *ast.CompositeLit:
		if t.cfg.NoCompositeTaint {
			return false
		}
		for _, el := range e.Elts {
			if t.Expr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return t.call(e)
	}
	return false
}

func (t *Taint) call(call *ast.CallExpr) bool {
	// Conversions look through to the operand.
	if tv, ok := t.cfg.Info.Types[call.Fun]; ok && tv.IsType() {
		return len(call.Args) == 1 && t.Expr(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := t.cfg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				// The length of materialized data is bounded by the
				// allocation that produced it — never tainted.
				return false
			case "min":
				// min(tainted, LIMIT) is bounded by LIMIT: clean as soon
				// as any argument is clean.
				for _, a := range call.Args {
					if !t.Expr(a) {
						return false
					}
				}
				return len(call.Args) > 0
			case "max", "append":
				for _, a := range call.Args {
					if t.Expr(a) {
						return true
					}
				}
				return false
			}
			return false
		}
	}
	if t.cfg.Source != nil && t.cfg.Source(call) {
		return true
	}
	if t.cfg.PropagateCall != nil && t.cfg.PropagateCall(call) {
		for _, a := range call.Args {
			if t.Expr(a) {
				return true
			}
		}
	}
	return false
}

// Obj reports whether the object itself is tainted.
func (t *Taint) Obj(o types.Object) bool { return o != nil && t.tainted[o] }

// TaintedObjs returns the distinct tainted objects referenced inside e,
// in source order — the handles a guard query needs.
func (t *Taint) TaintedObjs(e ast.Expr) []types.Object {
	var out []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := t.identObj(id); o != nil && t.tainted[o] && !seen[o] {
				seen[o] = true
				out = append(out, o)
			}
		}
		return true
	})
	return out
}

func (t *Taint) markExpr(e ast.Expr) {
	if e == nil {
		return
	}
	// x, x.f, x[i], *x all taint the root object x.
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			t.markObj(t.identObj(x))
			return
		default:
			return
		}
	}
}

func (t *Taint) markObj(o types.Object) {
	if o != nil {
		t.tainted[o] = true
	}
}

func (t *Taint) identObj(id *ast.Ident) types.Object {
	if id == nil {
		return nil
	}
	if o := t.cfg.Info.Defs[id]; o != nil {
		return o
	}
	return t.cfg.Info.Uses[id]
}

// BoundedAt reports whether obj is bounds-checked against an upper limit
// before (or around) the program point `at` inside fn, and whether that
// limit involves a *named* constant, variable, or function rather than a
// bare literal. Three guard shapes count:
//
//   - a terminating if lexically before `at` whose condition compares
//     obj above a clean limit and whose body ends in return/panic/break/
//     continue (`if n > MaxFrameBytes { return ... }`);
//   - an enclosing if whose condition bounds obj below a clean limit
//     (`if n <= MaxFrameBytes { buf := make(..., n) }`);
//   - a statement or if-header lexically before `at` containing a call
//     the validates predicate accepts for obj — the hook through which
//     analyzers plug in cross-package ValidatesParam facts; such a
//     guard is considered named (the callee is the name).
func (t *Taint) BoundedAt(fn ast.Node, at ast.Node, obj types.Object, validates func(call *ast.CallExpr, obj types.Object) bool) (guarded, named bool) {
	ast.Inspect(fn, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		encloses := ifs.Body.Pos() <= at.Pos() && at.End() <= ifs.Body.End()
		precedes := ifs.End() <= at.Pos()
		if precedes && terminates(ifs.Body) {
			if found, byName := t.boundCmp(ifs.Cond, obj, true); found {
				guarded = true
				named = named || byName
			}
			if validates != nil && containsValidatingCall(ifs, obj, validates) {
				guarded, named = true, true
			}
		}
		if encloses {
			if found, byName := t.boundCmp(ifs.Cond, obj, false); found {
				guarded = true
				named = named || byName
			}
		}
		return true
	})
	if !guarded && validates != nil {
		// A bare validating call statement (`mustFit(n)`-style) before
		// `at` also guards.
		ast.Inspect(fn, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok || es.End() > at.Pos() {
				return true
			}
			if call, ok := es.X.(*ast.CallExpr); ok && validates(call, obj) {
				guarded, named = true, true
			}
			return true
		})
	}
	return guarded, named
}

// boundCmp searches cond for a comparison establishing an upper bound on
// obj against an untainted limit. upperExit selects the orientation: a
// terminating guard exits when obj is *too big* (obj > limit), an
// enclosing guard runs its body when obj is *small enough* (obj < limit).
func (t *Taint) boundCmp(cond ast.Expr, obj types.Object, upperExit bool) (found, named bool) {
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		var limit ast.Expr
		switch b.Op {
		case token.GTR, token.GEQ:
			if upperExit && exprUsesObj(t.cfg.Info, b.X, obj) {
				limit = b.Y // `obj > limit` exits
			} else if !upperExit && exprUsesObj(t.cfg.Info, b.Y, obj) {
				limit = b.X // `limit > obj` encloses
			}
		case token.LSS, token.LEQ:
			if upperExit && exprUsesObj(t.cfg.Info, b.Y, obj) {
				limit = b.X // `limit < obj` exits
			} else if !upperExit && exprUsesObj(t.cfg.Info, b.X, obj) {
				limit = b.Y // `obj < limit` encloses
			}
		default:
			return true
		}
		if limit == nil || exprUsesObj(t.cfg.Info, limit, obj) || t.Expr(limit) {
			return true
		}
		found = true
		named = named || hasNamedIdent(t.cfg.Info, limit)
		return true
	})
	return found, named
}

// exprUsesObj reports whether e mentions obj (through parens,
// conversions, selectors, or arithmetic).
func exprUsesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	if e == nil || obj == nil {
		return false
	}
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				used = true
			}
		}
		return !used
	})
	return used
}

// hasNamedIdent reports whether e mentions a named constant, variable,
// or function — the "named limit" requirement: `n > maxDocs` reads,
// `n > 1<<28` does not.
func hasNamedIdent(info *types.Info, e ast.Expr) bool {
	named := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		switch info.Uses[id].(type) {
		case *types.Const, *types.Var, *types.Func:
			named = true
		}
		return !named
	})
	return named
}

func containsValidatingCall(n ast.Node, obj types.Object, validates func(*ast.CallExpr, types.Object) bool) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if call, ok := c.(*ast.CallExpr); ok && validates(call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// terminates reports whether the block always transfers control away:
// its last statement is a return, branch (break/continue/goto), panic,
// or an os.Exit-style call.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				return fun.Sel.Name == "Exit" || fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf"
			}
		}
	case *ast.BlockStmt:
		return terminates(last)
	}
	return false
}
