// Package analysistest runs a framework.Analyzer over small fixture
// packages and checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// only.
//
// Fixture layout follows the x/tools convention: the test's testdata/src
// directory acts as a miniature GOPATH, each fixture package in its own
// directory, imported by its path relative to src. Expected diagnostics
// are written as trailing comments on the offending line:
//
//	for k := range m { // want `map iteration`
//
// Each quoted or backquoted string after "want" is a regular expression
// that must match one diagnostic message on that line; diagnostics with no
// matching want, and wants with no matching diagnostic, fail the test.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package from testdata/src, applies the analyzer,
// and reports mismatches against the // want expectations through t.
//
// Fact-producing analyzers work across fixture packages: every fixture
// package the requested ones (transitively) import is analyzed first, in
// dependency order, sharing one fact store — so a fact exported while
// analyzing fixture package "internal/wire" is visible when its importer
// "internal/dist" is checked. Only the requested packages' // want
// expectations are verified.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld, err := newLoader(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	requested := map[string]bool{}
	for _, path := range pkgpaths {
		if _, err := ld.load(path); err != nil {
			t.Errorf("analysistest: loading %s: %v", path, err)
			return
		}
		requested[path] = true
	}
	// ld.order lists every loaded fixture package, dependencies before
	// dependents (the type-checker finishes imports first).
	facts := framework.NewFactStore([]*framework.Analyzer{a})
	byPath := map[string][]framework.Finding{}
	for _, path := range ld.order {
		pkg, err := ld.load(path)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", path, err)
			return
		}
		findings, err := framework.Run(pkg, []*framework.Analyzer{a}, facts)
		if err != nil {
			t.Errorf("analysistest: running %s on %s: %v", a.Name, path, err)
			return
		}
		byPath[path] = findings
	}
	for _, path := range pkgpaths {
		pkg, _ := ld.load(path)
		check(t, pkg, byPath[path])
	}
}

// A want is one expected-diagnostic regexp at a file:line.
type want struct {
	pos     token.Position
	re      *regexp.Regexp
	matched bool
}

func check(t *testing.T, pkg *framework.Package, findings []framework.Finding) {
	t.Helper()
	wants, err := collectWants(pkg)
	if err != nil {
		t.Error(err)
		return
	}
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if w.matched || w.pos.Filename != f.Pos.Filename || w.pos.Line != f.Pos.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matching %q", w.pos, w.re)
		}
	}
}

// wantRe pulls the expectation list out of a comment: each item is either
// a Go-quoted string or a backquoted string.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(pkg *framework.Package) ([]*want, error) {
	var wants []*want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				items := wantRe.FindAllString(strings.TrimPrefix(text, "want "), -1)
				if len(items) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, item := range items {
					pattern := item
					if strings.HasPrefix(item, "\"") {
						unq, err := strconv.Unquote(item)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want string %s: %v", pos, item, err)
						}
						pattern = unq
					} else {
						pattern = strings.Trim(item, "`")
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &want{pos: pos, re: re})
				}
			}
		}
	}
	return wants, nil
}

// loader type-checks fixture packages, resolving imports first against
// testdata/src, then against the real toolchain's export data (for the
// standard library).
type loader struct {
	srcRoot string
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*entry
	// order records fixture package paths in load-completion order:
	// because imports are resolved before a package's own type check
	// completes, dependencies always precede dependents.
	order []string
}

type entry struct {
	pkg  *framework.Package
	err  error
	busy bool
}

func newLoader(srcRoot string) (*loader, error) {
	ld := &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		cache:   map[string]*entry{},
	}
	stdPaths, err := ld.scanStdImports()
	if err != nil {
		return nil, err
	}
	exports, err := stdExports(stdPaths)
	if err != nil {
		return nil, err
	}
	ld.std = framework.ExportImporter(ld.fset, exports, nil)
	return ld, nil
}

// scanStdImports walks every fixture file and returns the imports that do
// not resolve inside testdata/src — those must be standard-library
// packages.
func (ld *loader) scanStdImports() ([]string, error) {
	seen := map[string]bool{}
	var std []string
	err := filepath.Walk(ld.srcRoot, func(path string, fi os.FileInfo, err error) error {
		if err != nil || fi.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, err := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("parsing %s: %w", path, err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || seen[p] {
				continue
			}
			seen[p] = true
			if _, statErr := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(p))); statErr != nil {
				std = append(std, p)
			}
		}
		return nil
	})
	return std, err
}

// stdExports asks the toolchain for export-data files for the given
// standard-library packages and their dependencies.
func stdExports(paths []string) (map[string]string, error) {
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export", "--"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", paths, err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// Import implements types.Importer over the fixture tree, so fixture
// packages can import each other.
func (ld *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path))); err != nil {
		return ld.std.Import(path)
	}
	pkg, err := ld.load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// load parses and type-checks one fixture package by its path under
// testdata/src.
func (ld *loader) load(path string) (*framework.Package, error) {
	if e, ok := ld.cache[path]; ok {
		if e.busy {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &entry{busy: true}
	ld.cache[path] = e
	e.pkg, e.err = ld.loadUncached(path)
	e.busy = false
	if e.err == nil {
		ld.order = append(ld.order, path)
	}
	return e.pkg, e.err
}

func (ld *loader) loadUncached(path string) (*framework.Package, error) {
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, de.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := framework.NewInfo()
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &framework.Package{
		Path:      path,
		Fset:      ld.fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
