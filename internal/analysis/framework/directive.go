package framework

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// An Allow is one parsed //lint:allow directive. A directive suppresses
// findings of one analyzer on its own line or, when written as a full-line
// comment, on the line immediately below.
//
//	m := snapshot() //lint:allow detmap commutative fold, order cannot leak
//
//	//lint:allow detrand wall-clock is reported, never consumed
//	start := time.Now()
//
// The reason is mandatory: an allow without a justification is itself a
// finding.
type Allow struct {
	Pos      token.Position // start of the directive comment
	Analyzer string
	Reason   string
	used     bool
}

const allowPrefix = "//lint:allow"

// CollectAllows scans the package's comments for //lint:allow directives.
// Malformed directives (no analyzer, or no reason) are returned as
// findings attributed to the pseudo-analyzer "lint".
func CollectAllows(pkg *Package, known map[string]bool) ([]*Allow, []Finding) {
	var allows []*Allow
	var problems []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				switch {
				case name == "":
					problems = append(problems, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed //lint:allow: missing analyzer name",
					})
				case !known[name]:
					problems = append(problems, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", name),
					})
				case reason == "":
					problems = append(problems, Finding{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:allow %s needs a one-line justification", name),
					})
				default:
					allows = append(allows, &Allow{Pos: pos, Analyzer: name, Reason: reason})
				}
			}
		}
	}
	return allows, problems
}

// Suppress filters findings through the allow directives. A finding is
// suppressed when an allow for its analyzer sits on the same line of the
// same file, or on the line directly above. Unused allows are returned as
// "lint" findings so stale suppressions cannot linger.
func Suppress(findings []Finding, allows []*Allow) (kept, problems []Finding) {
	for _, f := range findings {
		suppressed := false
		for _, a := range allows {
			if a.Analyzer != f.Analyzer || a.Pos.Filename != f.Pos.Filename {
				continue
			}
			if a.Pos.Line == f.Pos.Line || a.Pos.Line == f.Pos.Line-1 {
				a.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, f)
		}
	}
	for _, a := range allows {
		if !a.used {
			problems = append(problems, Finding{
				Analyzer: "lint",
				Pos:      a.Pos,
				Message:  fmt.Sprintf("unused //lint:allow %s (nothing to suppress here — remove it)", a.Analyzer),
			})
		}
	}
	return kept, problems
}

// SortFindings orders findings by file, line, column, analyzer for stable
// output — the linter obeys its own determinism rules.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
