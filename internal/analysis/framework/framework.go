// Package framework is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, built only on the standard library. The
// module is deliberately dependency-free (the build environment has no
// network access), so instead of importing x/tools this package mirrors its
// API shape — Analyzer, Pass, Diagnostic, SuggestedFix — closely enough
// that the surveyorlint analyzers could be ported to the real framework by
// changing one import path.
//
// Type information comes from the standard library alone: packages are
// enumerated with `go list -export -deps -json`, parsed with go/parser, and
// type-checked with go/types using the gc export data the go command
// already produced for every dependency. No source re-typechecking of
// dependencies, no downloads.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then details.
	Doc string

	// Run applies the analyzer to one package and reports diagnostics
	// through pass.Report. The returned value is ignored by the driver
	// (kept for x/tools API parity).
	Run func(*Pass) (any, error)

	// FactTypes lists a prototype value for each Fact type the analyzer
	// produces or consumes. Analyzers with no FactTypes neither see nor
	// emit cross-package facts.
	FactTypes []Fact
}

// A Pass is the interface an analyzer's Run function uses to inspect one
// type-checked package and report findings.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)

	// facts is the run-wide store, set by the driver; nil when the
	// driver carries no facts (both methods degrade gracefully).
	facts *FactStore
}

// ExportObjectFact records a fact about obj (a package-level function,
// method, or variable) for consumption when analyzing packages that
// import this one.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.facts != nil {
		p.facts.export(p.Analyzer.Name, obj, f)
	}
}

// ImportObjectFact copies the fact of f's type previously exported for
// obj into *f and reports whether one existed. Facts exported earlier in
// the same package's pass are visible too.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	return p.facts != nil && p.facts.importFact(p.Analyzer.Name, obj, f)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	End     token.Pos // optional
	Message string

	// SuggestedFixes optionally carries mechanical rewrites. The driver
	// prints them; it does not apply them.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one mechanical rewrite for a diagnostic.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces [Pos, End) with NewText.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// A Finding is a Diagnostic resolved against a file set and attributed to
// the analyzer that produced it — the driver's unit of output.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	Fixes    []SuggestedFix
}

// Run applies each analyzer to the package and returns the findings in
// reported order. facts, when non-nil, carries object facts across
// packages: analyzers read facts exported while analyzing the package's
// dependencies and add their own for dependents — the driver is
// responsible for analyzing packages in dependency order (or, in vet
// mode, for loading the dependencies' serialized fact files first).
func Run(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			facts:     facts,
		}
		pass.Report = func(d Diagnostic) {
			out = append(out, Finding{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
				Fixes:    d.SuggestedFixes,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	return out, nil
}
