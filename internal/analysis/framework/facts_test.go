package framework

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type testFactA struct{ N int }

func (*testFactA) AFact() {}

type testFactB struct{}

func (*testFactB) AFact() {}

// factObjects type-checks a small package and returns its package scope.
func factObjects(t *testing.T) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "facts.go", `package p

type T struct{}

func (t *T) M() {}

func F() {}

var V int
`, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := (&types.Config{}).Check("example.com/p", fset, []*ast.File{f}, NewInfo())
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func lookupMethod(t *testing.T, pkg *types.Package, typ, name string) types.Object {
	t.Helper()
	tn := pkg.Scope().Lookup(typ)
	obj, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, name)
	if obj == nil {
		t.Fatalf("method %s.%s not found", typ, name)
	}
	return obj
}

func TestObjectKey(t *testing.T) {
	pkg := factObjects(t)
	cases := []struct {
		obj  types.Object
		want string
	}{
		{pkg.Scope().Lookup("F"), "example.com/p.F"},
		{pkg.Scope().Lookup("V"), "example.com/p.V"},
		{lookupMethod(t, pkg, "T", "M"), "example.com/p.T.M"},
		{nil, ""},
	}
	for _, c := range cases {
		if got := ObjectKey(c.obj); got != c.want {
			t.Errorf("ObjectKey(%v) = %q, want %q", c.obj, got, c.want)
		}
	}
}

func TestFactStoreRoundTrip(t *testing.T) {
	pkg := factObjects(t)
	alpha := &Analyzer{Name: "alpha", FactTypes: []Fact{new(testFactA)}}
	beta := &Analyzer{Name: "beta", FactTypes: []Fact{new(testFactB)}}
	objF := pkg.Scope().Lookup("F")
	objM := lookupMethod(t, pkg, "T", "M")

	store := NewFactStore([]*Analyzer{alpha, beta})
	store.export("alpha", objF, &testFactA{N: 7})
	store.export("beta", objM, &testFactB{})
	if store.Len() != 2 {
		t.Fatalf("Len = %d, want 2", store.Len())
	}

	data, err := store.Encode()
	if err != nil {
		t.Fatal(err)
	}
	again, err := store.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Errorf("Encode is not deterministic:\n%s\n%s", data, again)
	}

	fresh := NewFactStore([]*Analyzer{alpha, beta})
	if err := fresh.Decode(data); err != nil {
		t.Fatal(err)
	}
	var got testFactA
	if !fresh.importFact("alpha", objF, &got) || got.N != 7 {
		t.Errorf("importFact(alpha, F) = %+v, want N=7", got)
	}
	// The analyzer name is part of the key: beta never published a
	// testFactA for F.
	if fresh.importFact("beta", objF, &got) {
		t.Error("importFact(beta, F) found a fact that was never exported")
	}
	var gotB testFactB
	if !fresh.importFact("beta", objM, &gotB) {
		t.Error("importFact(beta, T.M) found nothing")
	}
}

func TestFactStoreDecodeTolerance(t *testing.T) {
	pkg := factObjects(t)
	alpha := &Analyzer{Name: "alpha", FactTypes: []Fact{new(testFactA)}}
	beta := &Analyzer{Name: "beta", FactTypes: []Fact{new(testFactB)}}
	objF := pkg.Scope().Lookup("F")

	full := NewFactStore([]*Analyzer{alpha, beta})
	full.export("alpha", objF, &testFactA{N: 1})
	full.export("beta", objF, &testFactB{})
	data, err := full.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// A store that only knows alpha skips beta's facts instead of failing:
	// version skew between tool builds must not poison the cache.
	narrow := NewFactStore([]*Analyzer{alpha})
	if err := narrow.Decode(data); err != nil {
		t.Fatal(err)
	}
	if narrow.Len() != 1 {
		t.Errorf("narrow store kept %d facts, want 1", narrow.Len())
	}

	// Zero-byte input is a valid empty fact set.
	if err := narrow.Decode(nil); err != nil {
		t.Errorf("Decode(nil) = %v, want nil", err)
	}
}
