package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, "" for
// the current directory), parses their sources with comments, and
// type-checks them against the gc export data the go command produces for
// every dependency. Test files are not loaded: the determinism contracts
// the analyzers enforce bind the production code; tests exercise them.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Imports,Export,DepOnly,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	// Order targets dependency-first so a driver threading a FactStore
	// through the returned slice sees an imported package's facts before
	// analyzing its importers. `go list -deps` usually emits this order
	// already; the explicit sort makes it a guarantee.
	targets = sortDepsFirst(targets)

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:      t.ImportPath,
			Fset:      fset,
			Files:     files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// sortDepsFirst topologically orders the target packages so that every
// package appears after the targets it imports. Ties (and any cycle the
// go command would have rejected anyway) fall back to the input order.
func sortDepsFirst(targets []listedPackage) []listedPackage {
	byPath := make(map[string]int, len(targets))
	for i, t := range targets {
		byPath[t.ImportPath] = i
	}
	out := make([]listedPackage, 0, len(targets))
	state := make([]int, len(targets)) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int)
	visit = func(i int) {
		if state[i] != 0 {
			return
		}
		state[i] = 1
		for _, imp := range targets[i].Imports {
			if j, ok := byPath[imp]; ok && state[j] == 0 {
				visit(j)
			}
		}
		state[i] = 2
		out = append(out, targets[i])
	}
	for i := range targets {
		visit(i)
	}
	return out
}

// ExportImporter returns a types.Importer that reads gc export data files.
// exports maps an import path to its export file (as reported by
// `go list -export`); importMap optionally remaps source-level import
// paths first (the vet unit-checker protocol supplies one).
func ExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}
