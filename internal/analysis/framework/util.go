package framework

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves the function or method a call expression invokes,
// or nil for builtins, conversions, and calls of function-typed values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// RootIdentObj unwraps parens and type conversions around an expression
// and, if what remains is an identifier, returns the object it denotes.
// Used to connect "the slice that was appended to" with "the slice that
// was sorted".
func RootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			// Conversion like byKey(keys): look through to the operand.
			if len(x.Args) == 1 && info.Types[x.Fun].IsType() {
				e = x.Args[0]
				continue
			}
			return nil
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}
