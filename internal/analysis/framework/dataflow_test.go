package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheckFile parses and type-checks a single import-free file.
func typecheckFile(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "df.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	if _, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return f, info
}

func funcDecl(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// localVar finds the variable named name defined inside fn.
func localVar(t *testing.T, info *types.Info, fn *ast.FuncDecl, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := info.Defs[id]; o != nil {
				obj = o
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("variable %s not found in %s", name, fn.Name.Name)
	}
	return obj
}

// srcCalls matches calls to the snippet's designated source function.
func srcCalls(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "src"
}

func TestTaintPropagation(t *testing.T) {
	f, info := typecheckFile(t, `package p

func src() int { return 1 }

func f() {
	a := src()
	b := a + 1
	c := min(a, 10)
	d := len(make([]int, a))
	e := max(a, 2)
	g := a > 5
	h := b
	_, _, _, _, _ = c, d, e, g, h
}
`)
	fn := funcDecl(t, f, "f")
	taint := NewTaint(fn, TaintConfig{Info: info, Source: srcCalls})
	want := map[string]bool{
		"a": true,  // direct source result
		"b": true,  // arithmetic on tainted
		"c": false, // min with a clean bound is bounded
		"d": false, // len of materialized data is bounded
		"e": true,  // max keeps the tainted magnitude
		"g": false, // comparisons yield booleans, not sizes
		"h": true,  // copy of tainted
	}
	for name, wantTainted := range want {
		if got := taint.Obj(localVar(t, info, fn, name)); got != wantTainted {
			t.Errorf("taint of %s = %v, want %v", name, got, wantTainted)
		}
	}
}

func TestTaintIsSticky(t *testing.T) {
	f, info := typecheckFile(t, `package p

func src() int { return 1 }

func g() {
	a := src()
	a = 0
	_ = a
}
`)
	fn := funcDecl(t, f, "g")
	taint := NewTaint(fn, TaintConfig{Info: info, Source: srcCalls})
	if !taint.Obj(localVar(t, info, fn, "a")) {
		t.Error("reassignment cleared taint; the fixpoint must be monotone")
	}
}

func TestTaintSeedsAndPropagateCall(t *testing.T) {
	f, info := typecheckFile(t, `package p

func deriv(x int) int { return x }

func h(p int) {
	q := deriv(p)
	r := deriv(3)
	_, _ = q, r
}
`)
	fn := funcDecl(t, f, "h")
	seed := info.Defs[fn.Type.Params.List[0].Names[0]]
	taint := NewTaint(fn, TaintConfig{
		Info:  info,
		Seeds: []types.Object{seed},
		PropagateCall: func(call *ast.CallExpr) bool {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			return ok && id.Name == "deriv"
		},
	})
	if !taint.Obj(localVar(t, info, fn, "q")) {
		t.Error("q = deriv(seeded p) should be tainted")
	}
	if taint.Obj(localVar(t, info, fn, "r")) {
		t.Error("r = deriv(3) should be clean: propagation needs a tainted argument")
	}
}

func TestTaintsArgsInPlace(t *testing.T) {
	f, info := typecheckFile(t, `package p

func fill(b []byte) {}

func k() {
	buf := make([]byte, 4)
	n := buf[0]
	fill(buf)
	m := buf[0]
	_, _ = n, m
}
`)
	fn := funcDecl(t, f, "k")
	taint := NewTaint(fn, TaintConfig{
		Info: info,
		TaintsArgs: func(call *ast.CallExpr) []ast.Expr {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "fill" {
				return call.Args
			}
			return nil
		},
	})
	if !taint.Obj(localVar(t, info, fn, "buf")) {
		t.Error("fill(buf) should taint buf in place")
	}
	// Sticky taint is flow-insensitive by design: once buf is tainted,
	// every read of it is, regardless of statement order.
	if !taint.Obj(localVar(t, info, fn, "n")) || !taint.Obj(localVar(t, info, fn, "m")) {
		t.Error("reads of tainted buf should be tainted")
	}
}

// boundedAtLastReturn runs the taint pass over the named function and asks
// BoundedAt about variable n at the function's last return statement.
func boundedAtLastReturn(t *testing.T, f *ast.File, info *types.Info, name string, validates func(*ast.CallExpr, types.Object) bool) (guarded, named bool) {
	t.Helper()
	fn := funcDecl(t, f, name)
	taint := NewTaint(fn, TaintConfig{Info: info, Source: srcCalls})
	obj := localVar(t, info, fn, "n")
	if !taint.Obj(obj) {
		t.Fatalf("%s: n is not tainted; test is vacuous", name)
	}
	var at ast.Node
	ast.Inspect(fn, func(nd ast.Node) bool {
		if r, ok := nd.(*ast.ReturnStmt); ok {
			at = r
		}
		return true
	})
	return taint.BoundedAt(fn, at, obj, validates)
}

func TestBoundedAt(t *testing.T) {
	f, info := typecheckFile(t, `package p

const limit = 100

func src() int { return 1 }

func check(n int) bool { return n < limit }

func terminating() int {
	n := src()
	if n > limit {
		return 0
	}
	return n
}

func literalGuard() int {
	n := src()
	if n > 100 {
		return 0
	}
	return n
}

func enclosing() int {
	m := src()
	if m < limit {
		n := m
		return n
	}
	return 0
}

func unguarded() int {
	n := src()
	return n
}

func nonTerminating() int {
	n := src()
	if n > limit {
		n = 0
	}
	return n
}

func taintedLimit() int {
	n := src()
	m := src()
	if n > m {
		return 0
	}
	return n
}

func validated() int {
	n := src()
	if !check(n) {
		return 0
	}
	return n
}
`)
	validates := func(call *ast.CallExpr, obj types.Object) bool {
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "check" && len(call.Args) == 1 && exprUsesObj(info, call.Args[0], obj)
	}
	cases := []struct {
		fn             string
		guarded, named bool
		validates      func(*ast.CallExpr, types.Object) bool
	}{
		{"terminating", true, true, nil},
		{"literalGuard", true, false, nil}, // guarded, but the limit is a bare literal
		{"unguarded", false, false, nil},
		{"nonTerminating", false, false, nil}, // guard body falls through: not a guard
		{"taintedLimit", false, false, nil},   // the limit itself derives from input
		{"validated", true, true, validates},
	}
	for _, c := range cases {
		guarded, named := boundedAtLastReturn(t, f, info, c.fn, c.validates)
		if guarded != c.guarded || named != c.named {
			t.Errorf("%s: BoundedAt = (%v, %v), want (%v, %v)", c.fn, guarded, named, c.guarded, c.named)
		}
	}
}

func TestBoundedAtEnclosing(t *testing.T) {
	f, info := typecheckFile(t, `package p

const limit = 100

func src() int { return 1 }

func enclosing() int {
	n := src()
	if n < limit {
		return n
	}
	return 0
}
`)
	fn := funcDecl(t, f, "enclosing")
	taint := NewTaint(fn, TaintConfig{Info: info, Source: srcCalls})
	obj := localVar(t, info, fn, "n")
	var at ast.Node
	ast.Inspect(fn, func(nd ast.Node) bool {
		if r, ok := nd.(*ast.ReturnStmt); ok && at == nil {
			at = r // the `return n` inside the if body
		}
		return true
	})
	guarded, named := taint.BoundedAt(fn, at, obj, nil)
	if !guarded || !named {
		t.Errorf("enclosing if guard: BoundedAt = (%v, %v), want (true, true)", guarded, named)
	}
}
