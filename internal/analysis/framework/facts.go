package framework

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a unit of information an analyzer attaches to a package-level
// object (a function, method, or variable) in one package so it can be
// consulted when a *different* package that imports it is analyzed.
// Mirrors analysis.Fact from x/tools: concrete fact types are structs
// with exported fields, registered through Analyzer.FactTypes, and must
// survive a JSON round trip — that is the wire format the driver writes
// into the unit-checker's .vetx files.
type Fact interface {
	// AFact is a marker method; it has no behavior.
	AFact()
}

// factKey identifies one stored fact: the analyzer that produced it, the
// object it describes (as an ObjectKey), and the concrete fact type.
type factKey struct {
	analyzer string
	object   string
	typ      string
}

// A FactStore holds every fact produced or imported during a run. The
// standalone driver threads one store through all packages (analyzed in
// dependency order); the vet-tool driver fills a fresh store from the
// dependencies' .vetx files before each package and serializes the union
// afterwards, which is exactly how the go command expects facts to
// accumulate along the import graph.
type FactStore struct {
	types map[string]reflect.Type // "analyzer/TypeName" -> struct type
	facts map[factKey]Fact
}

// NewFactStore returns a store that recognizes the fact types the given
// analyzers registered via FactTypes. Facts of unregistered types are
// silently dropped on Decode (tolerating version skew between tool
// builds, like x/tools' facts gob decoder).
func NewFactStore(analyzers []*Analyzer) *FactStore {
	s := &FactStore{
		types: map[string]reflect.Type{},
		facts: map[factKey]Fact{},
	}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			s.types[a.Name+"/"+factTypeName(f)] = factStructType(f)
		}
	}
	return s
}

func factStructType(f Fact) reflect.Type {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t
}

func factTypeName(f Fact) string { return factStructType(f).Name() }

// ObjectKey returns the stable cross-package name facts are keyed by:
// "pkgpath.Name" for package-level functions and variables,
// "pkgpath.Recv.Name" for methods. Objects without a package (builtins,
// locals with no parent package) get no key and carry no facts.
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	name := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			rn := recvTypeName(sig.Recv().Type())
			if rn == "" {
				return ""
			}
			name = rn + "." + name
		}
	}
	return obj.Pkg().Path() + "." + name
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// export records a fact for obj under the given analyzer name.
func (s *FactStore) export(analyzer string, obj types.Object, f Fact) {
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	s.facts[factKey{analyzer, key, factTypeName(f)}] = f
}

// importFact copies a previously exported fact for obj into *f and
// reports whether one existed.
func (s *FactStore) importFact(analyzer string, obj types.Object, f Fact) bool {
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	got, ok := s.facts[factKey{analyzer, key, factTypeName(f)}]
	if !ok {
		return false
	}
	dst := reflect.ValueOf(f)
	if dst.Kind() != reflect.Pointer || dst.IsNil() {
		return false
	}
	src := reflect.ValueOf(got)
	for src.Kind() == reflect.Pointer {
		src = src.Elem()
	}
	dst.Elem().Set(src)
	return true
}

// Len reports the number of stored facts.
func (s *FactStore) Len() int { return len(s.facts) }

// wireFact is the serialized form of one fact inside a .vetx file. The
// whole file is a JSON array of these, sorted by (analyzer, object,
// type) so identical fact sets serialize identically — the linter obeys
// its own determinism rules.
type wireFact struct {
	Analyzer string          `json:"analyzer"`
	Object   string          `json:"object"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// Encode serializes every stored fact in deterministic order.
func (s *FactStore) Encode() ([]byte, error) {
	ws := make([]wireFact, 0, len(s.facts))
	for k, f := range s.facts {
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("encoding fact %s/%s for %s: %w", k.analyzer, k.typ, k.object, err)
		}
		ws = append(ws, wireFact{Analyzer: k.analyzer, Object: k.object, Type: k.typ, Data: data})
	}
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return json.Marshal(ws)
}

// Decode merges facts serialized by Encode into the store. Empty input
// is a valid empty fact set (older tool builds wrote zero-byte .vetx
// files); facts of unregistered analyzer/type pairs are skipped.
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var ws []wireFact
	if err := json.Unmarshal(data, &ws); err != nil {
		return fmt.Errorf("decoding fact file: %w", err)
	}
	for _, w := range ws {
		t, ok := s.types[w.Analyzer+"/"+w.Type]
		if !ok {
			continue
		}
		fv := reflect.New(t)
		if err := json.Unmarshal(w.Data, fv.Interface()); err != nil {
			return fmt.Errorf("decoding fact %s/%s for %s: %w", w.Analyzer, w.Type, w.Object, err)
		}
		f, ok := fv.Interface().(Fact)
		if !ok {
			continue
		}
		s.facts[factKey{w.Analyzer, w.Object, w.Type}] = f
	}
	return nil
}
