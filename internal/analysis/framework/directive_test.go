package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parsePkg(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
}

func TestCollectAllows(t *testing.T) {
	pkg := parsePkg(t, `package p

//lint:allow detmap commutative fold
var a = 1

var b = 2 //lint:allow detrand seeded upstream

//lint:allow detmap
var c = 3

//lint:allow nosuch because reasons
var d = 4
`)
	known := map[string]bool{"detmap": true, "detrand": true}
	allows, problems := CollectAllows(pkg, known)
	if len(allows) != 2 {
		t.Fatalf("got %d allows, want 2", len(allows))
	}
	if allows[0].Analyzer != "detmap" || allows[0].Reason != "commutative fold" {
		t.Errorf("allow[0] = %+v", allows[0])
	}
	if allows[1].Analyzer != "detrand" || allows[1].Reason != "seeded upstream" {
		t.Errorf("allow[1] = %+v", allows[1])
	}
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2 (missing reason, unknown analyzer): %v", len(problems), problems)
	}
	if !strings.Contains(problems[0].Message, "justification") {
		t.Errorf("problems[0] = %q, want missing-justification", problems[0].Message)
	}
	if !strings.Contains(problems[1].Message, "unknown analyzer") {
		t.Errorf("problems[1] = %q, want unknown-analyzer", problems[1].Message)
	}
}

func TestCollectAllowsMissingName(t *testing.T) {
	pkg := parsePkg(t, `package p

//lint:allow
var a = 1
`)
	allows, problems := CollectAllows(pkg, map[string]bool{"detmap": true})
	if len(allows) != 0 {
		t.Fatalf("got %d allows, want 0", len(allows))
	}
	if len(problems) != 1 || !strings.Contains(problems[0].Message, "missing analyzer name") {
		t.Fatalf("problems = %v, want one missing-analyzer-name", problems)
	}
}

// TestAllowEndToEnd drives a toy analyzer through the full directive flow:
// report, collect, suppress — the same path both drivers use — without
// depending on any real analyzer's semantics.
func TestAllowEndToEnd(t *testing.T) {
	pkg := parsePkg(t, `package p

var suppressed = 1 //lint:allow toy justified here

var reported = 2
`)
	toy := &Analyzer{
		Name: "toy",
		Doc:  "flags every package-level var",
		Run: func(pass *Pass) (any, error) {
			for _, file := range pass.Files {
				for _, d := range file.Decls {
					gd, ok := d.(*ast.GenDecl)
					if !ok {
						continue
					}
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							pass.Reportf(vs.Pos(), "var %s", vs.Names[0].Name)
						}
					}
				}
			}
			return nil, nil
		},
	}
	findings, err := Run(&Package{Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files}, []*Analyzer{toy}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("toy analyzer produced %d findings, want 2", len(findings))
	}
	allows, problems := CollectAllows(pkg, map[string]bool{"toy": true})
	if len(allows) != 1 || len(problems) != 0 {
		t.Fatalf("CollectAllows = %v, %v; want one clean allow", allows, problems)
	}
	kept, unused := Suppress(findings, allows)
	if len(unused) != 0 {
		t.Fatalf("the allow suppressed a finding yet reads as unused: %v", unused)
	}
	if len(kept) != 1 || !strings.Contains(kept[0].Message, "reported") {
		t.Fatalf("kept = %v, want only the undirected finding", kept)
	}
}

func TestSuppress(t *testing.T) {
	pos := func(line int) token.Position { return token.Position{Filename: "f.go", Line: line} }
	findings := []Finding{
		{Analyzer: "detmap", Pos: pos(10), Message: "same line"},
		{Analyzer: "detmap", Pos: pos(21), Message: "line below directive"},
		{Analyzer: "detrand", Pos: pos(10), Message: "other analyzer, not suppressed"},
		{Analyzer: "detmap", Pos: pos(40), Message: "no directive"},
	}
	allows := []*Allow{
		{Pos: pos(10), Analyzer: "detmap", Reason: "r"},
		{Pos: pos(20), Analyzer: "detmap", Reason: "r"},
		{Pos: pos(30), Analyzer: "detmap", Reason: "stale"},
	}
	kept, problems := Suppress(findings, allows)
	if len(kept) != 2 {
		t.Fatalf("kept %d findings, want 2: %v", len(kept), kept)
	}
	if kept[0].Message != "other analyzer, not suppressed" || kept[1].Message != "no directive" {
		t.Errorf("kept = %v", kept)
	}
	if len(problems) != 1 || !strings.Contains(problems[0].Message, "unused") {
		t.Fatalf("problems = %v, want one unused-allow", problems)
	}
	if problems[0].Pos.Line != 30 {
		t.Errorf("unused allow reported at line %d, want 30", problems[0].Pos.Line)
	}
}

func TestSortFindings(t *testing.T) {
	fs := []Finding{
		{Analyzer: "b", Pos: token.Position{Filename: "b.go", Line: 1}},
		{Analyzer: "a", Pos: token.Position{Filename: "a.go", Line: 9}},
		{Analyzer: "a", Pos: token.Position{Filename: "a.go", Line: 2}},
		{Analyzer: "z", Pos: token.Position{Filename: "a.go", Line: 2}},
	}
	SortFindings(fs)
	got := []string{}
	for _, f := range fs {
		got = append(got, f.Pos.Filename, f.Analyzer)
	}
	want := []string{"a.go", "a", "a.go", "z", "a.go", "a", "b.go", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}
