// Fixture proving detrand ignores packages outside the
// determinism-critical set.
package other

import (
	"math/rand"
	"time"
)

func free() int64 {
	return int64(rand.Intn(10)) + time.Now().UnixNano()
}
