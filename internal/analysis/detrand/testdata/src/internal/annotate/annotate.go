// Fixture for the detrand analyzer. The package path ends in
// "internal/annotate", so it counts as determinism-critical.
package annotate

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// globalDraw uses the ambient global RNG: flagged.
func globalDraw() int {
	return rand.Intn(10) // want `ambient global RNG`
}

// globalShuffle is another global-RNG entry point: flagged.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `ambient global RNG`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// wallClock reads the real clock: flagged.
func wallClock() int64 {
	return time.Now().UnixNano() // want `time.Now is nondeterministic`
}

// entropy reads system entropy: flagged.
func entropy(buf []byte) {
	crand.Read(buf) // want `system entropy`
}

// seeded constructs a generator from an explicit seed: clean. The
// rand.New / rand.NewSource constructors are the sanctioned way to build
// the generator that then gets threaded as a parameter.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// threaded receives the seeded generator as a parameter, the
// internal/corpus idiom: clean.
func threaded(r *rand.Rand) float64 {
	return r.Float64()
}

// elapsed arithmetic on an injected timestamp is fine: clean.
func elapsed(start time.Time, d time.Duration) time.Time {
	return start.Add(d)
}
