// Fixture for the detrand analyzer's widened scope: the package path ends
// in "internal/obs", which the DeterminismLint table adds beyond the
// bit-identical core — exported telemetry snapshots must be stably
// ordered and timestamped through the injected Clock, not the wall clock.
package obs

import "time"

// stamp reads the wall clock directly instead of the injected Clock:
// flagged. (The real package's one legitimate source, NewSystemClock,
// carries a justified //lint:allow.)
func stamp() int64 {
	return time.Now().UnixNano() // want `time.Now is nondeterministic`
}

// tick does duration arithmetic on an injected origin: clean.
func tick(origin time.Time, d time.Duration) time.Time {
	return origin.Add(d)
}
