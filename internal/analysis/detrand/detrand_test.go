package detrand_test

import (
	"testing"

	"repro/internal/analysis/detrand"
	"repro/internal/analysis/framework/analysistest"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), detrand.Analyzer,
		"internal/annotate", "internal/obs", "pkg/other")
}
