// Package detrand defines an analyzer that forbids ambient sources of
// nondeterminism — the math/rand global functions, time.Now, and
// crypto/rand — in the determinism-critical packages (core, evidence,
// testkit, annotate).
//
// The determinism contract requires every random draw and every timestamp
// to flow from an explicitly seeded generator threaded as a parameter, the
// way internal/corpus threads *stats.RNG. Constructing a seeded generator
// is still allowed: rand.New and rand.NewSource (and the v2 constructors)
// take the seed explicitly, so calls to them do not read ambient state.
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/critical"
	"repro/internal/analysis/framework"
)

// Analyzer is the detrand analyzer.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc: "forbids math/rand globals, time.Now, and crypto/rand in " +
		"determinism-critical packages; thread a seeded generator instead",
	Run: run,
}

// seededConstructors are the math/rand functions that take their seed (or
// source) explicitly and are therefore deterministic to call.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func run(pass *framework.Pass) (any, error) {
	if !critical.DeterminismLint(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Methods (e.g. (*rand.Rand).Intn, (*stats.RNG).Float64) act on
			// an explicitly constructed generator and are fine.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if seededConstructors[fn.Name()] {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s.%s draws from the ambient global RNG in a determinism-critical package; "+
						"thread an explicitly seeded generator (*stats.RNG or *rand.Rand) as a parameter",
					fn.Pkg().Name(), fn.Name())
			case "time":
				if fn.Name() == "Now" {
					pass.Reportf(call.Pos(),
						"time.Now is nondeterministic in a determinism-critical package; "+
							"inject the timestamp as a parameter")
				}
			case "crypto/rand":
				pass.Reportf(call.Pos(),
					"crypto/rand reads system entropy in a determinism-critical package; "+
						"thread an explicitly seeded generator instead")
			}
			return true
		})
	}
	return nil, nil
}
