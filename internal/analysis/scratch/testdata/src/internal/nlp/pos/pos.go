// Minimal stand-in for repro/internal/nlp/pos.
package pos

import "internal/nlp/token"

type Tagged struct{ Tok token.Token }

type Tagger struct{}

func (t *Tagger) Tag(sent token.Sentence) []Tagged { return nil }

func (t *Tagger) TagInto(dst []Tagged, sent token.Sentence) []Tagged { return dst }
