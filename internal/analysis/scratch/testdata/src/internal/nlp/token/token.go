// Minimal stand-in for repro/internal/nlp/token: the scratch analyzer
// matches callees by package-path suffix and function name, so only the
// signatures matter.
package token

type Token struct{ Text string }

type Sentence struct{ Tokens []Token }

func Tokenize(text string) []Token { return nil }

func TokenizeInto(dst []Token, text string) []Token { return dst }

func SplitSentences(text string) []Sentence { return nil }

func SplitSentencesInto(sents []Sentence, toks []Token, text string) ([]Sentence, []Token) {
	return sents, toks
}
