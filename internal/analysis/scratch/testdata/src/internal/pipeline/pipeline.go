// Fixture for the scratch analyzer. The package path ends in
// "internal/pipeline", so it counts as hot-path code.
package pipeline

import (
	"internal/nlp/pos"
	"internal/nlp/token"
)

// hot calls the allocating wrappers on the hot path: flagged.
func hot(tg *pos.Tagger, text string) int {
	sents := token.SplitSentences(text) // want `allocates per call`
	n := 0
	for _, s := range sents {
		n += len(tg.Tag(s)) // want `allocates per call`
	}
	n += len(token.Tokenize(text)) // want `allocates per call`
	return n
}

// cool uses the scratch-reuse variants, the PR 2 idiom: clean.
func cool(tg *pos.Tagger, text string) int {
	var (
		sents  []token.Sentence
		toks   []token.Token
		tagged []pos.Tagged
	)
	sents, toks = token.SplitSentencesInto(sents[:0], toks[:0], text)
	n := len(toks)
	for _, s := range sents {
		tagged = tg.TagInto(tagged[:0], s)
		n += len(tagged)
	}
	return n
}
