// Fixture proving the scratch analyzer binds only to hot-path packages:
// the testkit oracle deliberately uses the plain allocating wrappers so it
// shares no scratch machinery with the pipeline under test, and that must
// stay clean.
package testkit

import (
	"internal/nlp/pos"
	"internal/nlp/token"
)

func oracle(tg *pos.Tagger, text string) int {
	n := 0
	for _, s := range token.SplitSentences(text) {
		n += len(tg.Tag(s))
	}
	return n
}
