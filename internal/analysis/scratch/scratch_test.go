package scratch_test

import (
	"testing"

	"repro/internal/analysis/framework/analysistest"
	"repro/internal/analysis/scratch"
)

func TestScratch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), scratch.Analyzer,
		"internal/pipeline", "internal/testkit")
}
