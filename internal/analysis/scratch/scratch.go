// Package scratch defines an analyzer that keeps the allocating NLP
// wrappers off the extraction hot path.
//
// PR 2 introduced scratch-reuse variants of every per-sentence API —
// TokenizeInto, SplitSentencesInto, TagInto, ParseInto, ExtractInto — and
// the ~90k docs/sec figure depends on the pipeline using them. The plain
// wrappers (Tokenize, Tag, Parse, Extract, ...) allocate per call and
// remain the right choice for tests and the testkit oracle, but inside
// internal/pipeline a call to one of them is a silent throughput
// regression. This analyzer reports each such call and names the variant
// to use instead.
package scratch

import (
	"go/ast"

	"repro/internal/analysis/critical"
	"repro/internal/analysis/framework"
)

// Analyzer is the scratch analyzer.
var Analyzer = &framework.Analyzer{
	Name: "scratch",
	Doc: "flags allocating NLP wrapper calls on the hot path where a " +
		"scratch-reuse *Into variant exists",
	Run: run,
}

// allocating maps (package-path suffix, function name) of each allocating
// wrapper to its scratch-reuse replacement.
var allocating = []struct {
	pkgSuffix string
	name      string
	into      string
}{
	{"nlp/token", "Tokenize", "TokenizeInto"},
	{"nlp/token", "SplitSentences", "SplitSentencesInto"},
	{"nlp/pos", "Tag", "TagInto"},
	{"nlp/depparse", "Parse", "ParseInto"},
	{"internal/tagger", "Tag", "TagInto"},
	{"internal/extract", "Extract", "ExtractInto"},
}

func run(pass *framework.Pass) (any, error) {
	if !critical.HotPath(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			for _, a := range allocating {
				if fn.Name() != a.name || !critical.PathHasSuffix(fn.Pkg().Path(), a.pkgSuffix) {
					continue
				}
				pass.Report(framework.Diagnostic{
					Pos: call.Pos(),
					End: call.End(),
					Message: fn.Pkg().Name() + "." + a.name + " allocates per call on the hot path; " +
						"use " + a.into + " with a worker-reused buffer (see DESIGN.md, Performance architecture)",
					SuggestedFixes: []framework.SuggestedFix{{
						Message: "rewrite to " + a.into + ", passing a buffer the worker reuses " +
							"across sentences (dst[:0] for slices, a per-worker Scratch for parser/tagger)",
					}},
				})
				break
			}
			return true
		})
	}
	return nil, nil
}
