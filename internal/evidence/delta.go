// Delta accumulation for the incremental miner: a GroupAccumulator keeps
// the cumulative per-(type, property) aggregates across epochs and tracks
// which groups an evidence delta touched, so re-grouping and re-fitting
// cost is proportional to the delta, not the corpus.
//
// Correctness rests on the Merge algebra: counters only ever add, so the
// accumulator's per-group state after absorbing deltas d1..dk equals the
// state a batch GroupByTypeProperty would build from the merged store —
// the incremental differential suite in testkit proves the end-to-end
// consequence bit for bit.
package evidence

import (
	"sort"

	"repro/internal/kb"
)

// GroupAccumulator maintains cumulative (type, property) aggregates over a
// sequence of evidence deltas. It is not safe for concurrent use; the
// incremental miner serialises epochs.
type GroupAccumulator struct {
	base   *kb.KB
	groups map[GroupKey]*groupAgg
}

// NewGroupAccumulator returns an empty accumulator resolving entity types
// against base.
func NewGroupAccumulator(base *kb.KB) *GroupAccumulator {
	return &GroupAccumulator{base: base, groups: map[GroupKey]*groupAgg{}}
}

// AbsorbDelta folds one epoch's evidence delta into the cumulative
// aggregates and returns the dirty set: every (type, property) group whose
// counters changed, sorted by type then property. The delta is read
// through its sorted snapshot, so the fold — and therefore the returned
// order — is deterministic regardless of how the delta was built.
func (a *GroupAccumulator) AbsorbDelta(delta *Store) []GroupKey {
	dirty := map[GroupKey]bool{}
	for _, e := range delta.Snapshot() {
		gk := GroupKey{Type: a.base.Get(e.Entity).Type, Property: e.Property}
		g := a.groups[gk]
		if g == nil {
			g = &groupAgg{counts: map[kb.EntityID]Counts{}}
			a.groups[gk] = g
		}
		c := g.counts[e.Entity]
		c.Pos += e.Pos
		c.Neg += e.Neg
		g.counts[e.Entity] = c
		g.total += e.Total()
		dirty[gk] = true
	}
	keys := make([]GroupKey, 0, len(dirty))
	for gk := range dirty {
		keys = append(keys, gk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Type != keys[j].Type {
			return keys[i].Type < keys[j].Type
		}
		return keys[i].Property < keys[j].Property
	})
	return keys
}

// Pairs returns the number of distinct (type, property) pairs seen so far
// — the before-ρ statistic a batch run reports as PairsBeforeFilter.
func (a *GroupAccumulator) Pairs() int { return len(a.groups) }

// Total returns the cumulative statement count of one group (zero if the
// group was never touched).
func (a *GroupAccumulator) Total(k GroupKey) int64 {
	g := a.groups[k]
	if g == nil {
		return 0
	}
	return g.total
}

// Materialize expands one group to the full Group shape the EM phase
// consumes — every KB entity of the type in KB order, zero-evidence
// entities included — when its cumulative statement count is at least
// rho. The result is identical to the entry GroupByTypeProperty would
// produce for the same key over the merged store.
func (a *GroupAccumulator) Materialize(k GroupKey, rho int64) (Group, bool) {
	g := a.groups[k]
	if g == nil || g.total < rho {
		return Group{}, false
	}
	ids := a.base.OfType(k.Type)
	ents := make([]EntityCounts, len(ids))
	for i, id := range ids {
		c := g.counts[id]
		ents[i] = EntityCounts{Entity: id, Pos: c.Pos, Neg: c.Neg}
	}
	return Group{Key: k, Entities: ents, Statements: g.total}, true
}
