package evidence

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/extract"
	"repro/internal/kb"
)

func testKB() *kb.KB {
	base := kb.New()
	base.Add(kb.Entity{Name: "kitten", Type: "animal"})            // id 0
	base.Add(kb.Entity{Name: "tiger", Type: "animal"})             // id 1
	base.Add(kb.Entity{Name: "spider", Type: "animal"})            // id 2
	base.Add(kb.Entity{Name: "Rome", Type: "city", Proper: true})  // id 3
	base.Add(kb.Entity{Name: "Paris", Type: "city", Proper: true}) // id 4
	return base
}

func TestAddAndGet(t *testing.T) {
	s := NewStore()
	s.Add(extract.Statement{Entity: 0, Property: "cute", Polarity: extract.Positive})
	s.Add(extract.Statement{Entity: 0, Property: "cute", Polarity: extract.Positive})
	s.Add(extract.Statement{Entity: 0, Property: "cute", Polarity: extract.Negative})
	c := s.Get(Key{Entity: 0, Property: "cute"})
	if c.Pos != 2 || c.Neg != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Total() != 3 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestGetAbsentIsZero(t *testing.T) {
	s := NewStore()
	if c := s.Get(Key{Entity: 9, Property: "x"}); c.Pos != 0 || c.Neg != 0 {
		t.Fatalf("absent key counts = %+v", c)
	}
}

func TestConcurrentAdds(t *testing.T) {
	s := NewStore()
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Add(extract.Statement{
					Entity:   kb.EntityID(i % 7),
					Property: "cute",
					Polarity: extract.Positive,
				})
			}
		}(g)
	}
	wg.Wait()
	if got := s.TotalStatements(); got != goroutines*perG {
		t.Fatalf("TotalStatements = %d, want %d", got, goroutines*perG)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewStore(), NewStore()
	a.AddCounts(Key{0, "cute"}, Counts{Pos: 2, Neg: 1})
	b.AddCounts(Key{0, "cute"}, Counts{Pos: 3, Neg: 0})
	b.AddCounts(Key{1, "big"}, Counts{Pos: 1, Neg: 1})
	a.Merge(b)
	if c := a.Get(Key{0, "cute"}); c.Pos != 5 || c.Neg != 1 {
		t.Fatalf("merged = %+v", c)
	}
	if c := a.Get(Key{1, "big"}); c.Pos != 1 || c.Neg != 1 {
		t.Fatalf("merged new key = %+v", c)
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
}

// TestMergeEmptyIdentity pins both identity laws of the merge monoid: an
// empty store merged INTO a populated one changes nothing, and a populated
// store merged into an empty one reproduces it exactly. The incremental
// miner leans on both — an epoch with no evidence is a published no-op.
func TestMergeEmptyIdentity(t *testing.T) {
	populate := func() *Store {
		s := NewStore()
		s.AddCounts(Key{0, "cute"}, Counts{Pos: 2, Neg: 1})
		s.AddCounts(Key{1, "big"}, Counts{Pos: 1})
		s.AddCounts(Key{3, "big"}, Counts{Neg: 4})
		return s
	}
	same := func(a, b *Store) bool {
		sa, sb := a.Snapshot(), b.Snapshot()
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}

	a := populate()
	a.Merge(NewStore())
	if !same(a, populate()) || a.TotalStatements() != 8 {
		t.Fatalf("right identity violated: %v (total %d)", a.Snapshot(), a.TotalStatements())
	}

	b := NewStore()
	b.Merge(populate())
	if !same(b, populate()) || b.Len() != 3 {
		t.Fatalf("left identity violated: %v", b.Snapshot())
	}
}

// Property: merging the zero delta into an arbitrary store any number of
// times is idempotent — snapshot, length, and statement total are all
// unchanged, however often the no-op repeats.
func TestMergeZeroDeltaIdempotentProperty(t *testing.T) {
	f := func(raw []uint8, repeats uint8) bool {
		s := NewStore()
		for _, v := range raw {
			s.AddCounts(Key{kb.EntityID(v % 7), []string{"cute", "big", "calm"}[int(v)%3]},
				Counts{Pos: int64(v % 4), Neg: int64(v % 3)})
		}
		want := s.Snapshot()
		wantTotal := s.TotalStatements()
		zero := NewStore()
		for i := 0; i < int(repeats%8)+1; i++ {
			s.Merge(zero)
			got := s.Snapshot()
			if len(got) != len(want) || s.TotalStatements() != wantTotal {
				return false
			}
			for j := range got {
				if got[j] != want[j] {
					return false
				}
			}
		}
		// The zero delta itself must stay zero through repeated use.
		return zero.Len() == 0 && zero.TotalStatements() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotSorted(t *testing.T) {
	s := NewStore()
	s.AddCounts(Key{3, "big"}, Counts{Pos: 1})
	s.AddCounts(Key{0, "cute"}, Counts{Pos: 1})
	s.AddCounts(Key{0, "big"}, Counts{Pos: 1})
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap[0].Key != (Key{0, "big"}) || snap[1].Key != (Key{0, "cute"}) || snap[2].Key != (Key{3, "big"}) {
		t.Fatalf("snapshot order: %v", snap)
	}
}

func TestGroupByTypePropertyIncludesZeroEvidence(t *testing.T) {
	base := testKB()
	s := NewStore()
	// 3 statements about kittens, 2 about tigers; spider unmentioned.
	s.AddCounts(Key{0, "cute"}, Counts{Pos: 3})
	s.AddCounts(Key{1, "cute"}, Counts{Pos: 1, Neg: 1})
	groups := GroupByTypeProperty(s, base, 1)
	if len(groups) != 1 {
		t.Fatalf("groups = %v", groups)
	}
	g := groups[0]
	if g.Key != (GroupKey{"animal", "cute"}) {
		t.Fatalf("group key = %+v", g.Key)
	}
	if len(g.Entities) != 3 {
		t.Fatalf("group should cover all 3 animals, got %d", len(g.Entities))
	}
	if g.Entities[2].Pos != 0 || g.Entities[2].Neg != 0 {
		t.Fatalf("spider should have zero counts: %+v", g.Entities[2])
	}
	if g.Statements != 5 {
		t.Fatalf("statements = %d", g.Statements)
	}
}

func TestGroupThresholdRho(t *testing.T) {
	base := testKB()
	s := NewStore()
	s.AddCounts(Key{0, "cute"}, Counts{Pos: 99})
	s.AddCounts(Key{3, "big"}, Counts{Pos: 100})
	groups := GroupByTypeProperty(s, base, 100)
	if len(groups) != 1 || groups[0].Key.Property != "big" {
		t.Fatalf("rho filter failed: %v", groups)
	}
}

func TestGroupsSortedAndSeparatedByType(t *testing.T) {
	base := testKB()
	s := NewStore()
	s.AddCounts(Key{0, "big"}, Counts{Pos: 5}) // animal big
	s.AddCounts(Key{3, "big"}, Counts{Pos: 5}) // city big
	groups := GroupByTypeProperty(s, base, 1)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0].Key.Type != "animal" || groups[1].Key.Type != "city" {
		t.Fatalf("order: %v, %v", groups[0].Key, groups[1].Key)
	}
}

func TestCountGroups(t *testing.T) {
	base := testKB()
	s := NewStore()
	s.AddCounts(Key{0, "cute"}, Counts{Pos: 1})
	s.AddCounts(Key{1, "cute"}, Counts{Pos: 1})
	s.AddCounts(Key{3, "big"}, Counts{Pos: 1})
	if got := CountGroups(s, base); got != 2 {
		t.Fatalf("CountGroups = %d, want 2", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.AddCounts(Key{0, "cute"}, Counts{Pos: 1234567, Neg: 89})
	s.AddCounts(Key{42, "very big"}, Counts{Pos: 1})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c := loaded.Get(Key{0, "cute"}); c.Pos != 1234567 || c.Neg != 89 {
		t.Fatalf("round trip: %+v", c)
	}
	if c := loaded.Get(Key{42, "very big"}); c.Pos != 1 {
		t.Fatalf("round trip multiword property: %+v", c)
	}
	if loaded.Len() != 2 {
		t.Fatalf("Len = %d", loaded.Len())
	}
}

func TestLoadRejectsBadHeader(t *testing.T) {
	if _, err := LoadStore(strings.NewReader("WRONG\n")); err == nil {
		t.Fatal("LoadStore should reject a bad header")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	s := NewStore()
	s.AddCounts(Key{0, "cute"}, Counts{Pos: 5, Neg: 2})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadStore(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Fatal("LoadStore should reject truncated input")
	}
}

// Property: merging N single-statement stores is equivalent to adding all
// statements to one store.
func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		direct := NewStore()
		merged := NewStore()
		for _, v := range raw {
			st := extract.Statement{
				Entity:   kb.EntityID(v % 5),
				Property: []string{"cute", "big"}[int(v)%2],
				Polarity: []extract.Polarity{extract.Positive, extract.Negative}[int(v/2)%2],
			}
			direct.Add(st)
			single := NewStore()
			single.Add(st)
			merged.Merge(single)
		}
		if direct.Len() != merged.Len() {
			return false
		}
		for _, e := range direct.Snapshot() {
			if merged.Get(e.Key) != e.Counts {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Save/Load round-trips arbitrary count tables.
func TestSaveLoadProperty(t *testing.T) {
	f := func(entities []uint16, pos, neg []uint16) bool {
		s := NewStore()
		n := len(entities)
		if len(pos) < n {
			n = len(pos)
		}
		if len(neg) < n {
			n = len(neg)
		}
		for i := 0; i < n; i++ {
			s.AddCounts(Key{kb.EntityID(entities[i]), "p"},
				Counts{Pos: int64(pos[i]), Neg: int64(neg[i])})
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		loaded, err := LoadStore(&buf)
		if err != nil {
			return false
		}
		for _, e := range s.Snapshot() {
			if loaded.Get(e.Key) != e.Counts {
				return false
			}
		}
		return loaded.Len() == s.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldAntonymsStrict(t *testing.T) {
	s := NewStore()
	s.AddCounts(Key{0, "big"}, Counts{Pos: 10, Neg: 1})
	s.AddCounts(Key{0, "small"}, Counts{Pos: 4, Neg: 2})
	s.AddCounts(Key{1, "small"}, Counts{Pos: 3})
	s.AddCounts(Key{2, "cute"}, Counts{Pos: 5})
	resolve := func(p string) (string, bool) {
		if p == "small" {
			return "big", true
		}
		return "", false
	}
	out := FoldAntonyms(s, resolve, false)
	// Entity 0: big keeps (10,1) plus small's 4 positives as negatives.
	if c := out.Get(Key{0, "big"}); c.Pos != 10 || c.Neg != 5 {
		t.Fatalf("entity 0 big = %+v", c)
	}
	// Entity 1 had only antonym evidence: 3 negatives for big.
	if c := out.Get(Key{1, "big"}); c.Pos != 0 || c.Neg != 3 {
		t.Fatalf("entity 1 big = %+v", c)
	}
	// Untouched property passes through.
	if c := out.Get(Key{2, "cute"}); c.Pos != 5 {
		t.Fatalf("cute = %+v", c)
	}
	// The antonym key is gone.
	if c := out.Get(Key{0, "small"}); c.Total() != 0 {
		t.Fatalf("small should be folded away: %+v", c)
	}
}

func TestFoldAntonymsNaive(t *testing.T) {
	s := NewStore()
	s.AddCounts(Key{0, "small"}, Counts{Pos: 4, Neg: 6})
	resolve := func(p string) (string, bool) { return "big", p == "small" }
	strict := FoldAntonyms(s, resolve, false)
	if c := strict.Get(Key{0, "big"}); c.Pos != 0 || c.Neg != 4 {
		t.Fatalf("strict = %+v (negated antonyms must NOT become positives)", c)
	}
	naive := FoldAntonyms(s, resolve, true)
	if c := naive.Get(Key{0, "big"}); c.Pos != 6 || c.Neg != 4 {
		t.Fatalf("naive = %+v", c)
	}
}

func TestPrimaryByVolume(t *testing.T) {
	s := NewStore()
	s.AddCounts(Key{0, "big"}, Counts{Pos: 100})
	s.AddCounts(Key{0, "small"}, Counts{Pos: 10})
	s.AddCounts(Key{1, "warm"}, Counts{Pos: 5})
	s.AddCounts(Key{1, "cold"}, Counts{Pos: 5}) // tie: no direction
	antonyms := func(p string) []string {
		switch p {
		case "big":
			return []string{"small"}
		case "small":
			return []string{"big"}
		case "warm":
			return []string{"cold"}
		case "cold":
			return []string{"warm"}
		}
		return nil
	}
	resolve := PrimaryByVolume(s, antonyms)
	if p, ok := resolve("small"); !ok || p != "big" {
		t.Fatalf("small -> %q %v", p, ok)
	}
	if _, ok := resolve("big"); ok {
		t.Fatal("the high-volume side must not fold")
	}
	if _, ok := resolve("warm"); ok {
		t.Fatal("volume ties must not fold")
	}
	if _, ok := resolve("cute"); ok {
		t.Fatal("non-antonym property must not fold")
	}
}
