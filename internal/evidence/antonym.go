package evidence

import "sort"

// AntonymResolver maps a property to the primary property it is an
// antonym of, if any ("small" -> "big").
type AntonymResolver func(property string) (primary string, ok bool)

// FoldAntonyms derives a new store in which evidence about antonym
// properties is folded into the primary property, implementing the
// interpretation the paper considered — and rejected — in Section 4:
// treating "Palo Alto is small" as a negation of "Palo Alto is big".
//
// A positive statement about the antonym becomes a negative statement
// about the primary. With naive also set, negative antonym statements
// ("X is not small") additionally become positive primary statements —
// the stronger reading the paper's objection targets: someone calling a
// city "not small" is not necessarily calling it big.
func FoldAntonyms(s *Store, resolve AntonymResolver, naive bool) *Store {
	out := NewStore()
	for _, e := range s.Snapshot() {
		primary, ok := resolve(e.Property)
		if !ok {
			out.AddCounts(e.Key, e.Counts)
			continue
		}
		folded := Counts{Neg: e.Pos}
		if naive {
			folded.Pos = e.Neg
		}
		out.AddCounts(Key{Entity: e.Entity, Property: primary}, folded)
	}
	return out
}

// PrimaryByVolume builds an AntonymResolver from an antonym dictionary
// and the store itself: among each antonym pair, the property with the
// larger statement volume is primary, the other folds into it. Properties
// with equal volume stay separate (no safe direction).
func PrimaryByVolume(s *Store, antonyms func(string) []string) AntonymResolver {
	totals := map[string]int64{}
	for _, e := range s.Snapshot() {
		totals[e.Property] += e.Total()
	}
	props := make([]string, 0, len(totals))
	for prop := range totals {
		props = append(props, prop)
	}
	sort.Strings(props)
	mapping := map[string]string{}
	for _, prop := range props {
		for _, anto := range antonyms(prop) {
			if totals[anto] > totals[prop] {
				mapping[prop] = anto
			}
		}
	}
	return func(property string) (string, bool) {
		p, ok := mapping[property]
		return p, ok
	}
}
