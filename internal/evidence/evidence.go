// Package evidence accumulates extracted statements into the per
// (entity, property) counters ⟨C+, C−⟩ the Surveyor model consumes, groups
// them by (type, property), and applies the occurrence threshold ρ.
//
// The Store supports concurrent writers (the parallel extraction phase)
// and shard merging (the reduce step of the pipeline), with a compact
// binary codec for spilling shards.
package evidence

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/obs"
)

// Key identifies one entity-property pair.
type Key struct {
	Entity   kb.EntityID
	Property string
}

// Counts is the evidence tuple ⟨C+, C−⟩ for one key.
type Counts struct {
	Pos int64
	Neg int64
}

// Total returns C+ + C−.
func (c Counts) Total() int64 { return c.Pos + c.Neg }

// Store is a concurrent counter map. Writers call Add; after all writers
// finish, readers use Snapshot/Group.
type Store struct {
	shards [storeShards]storeShard
}

const storeShards = 64

type storeShard struct {
	mu sync.Mutex
	m  map[Key]Counts
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = map[Key]Counts{}
	}
	return s
}

func (s *Store) shardFor(k Key) *storeShard {
	h := uint64(k.Entity) * 0x9e3779b97f4a7c15
	for i := 0; i < len(k.Property); i++ {
		h = (h ^ uint64(k.Property[i])) * 0x100000001b3
	}
	return &s.shards[h%storeShards]
}

// Add records one statement.
func (s *Store) Add(st extract.Statement) {
	k := Key{Entity: st.Entity, Property: st.Property}
	sh := s.shardFor(k)
	sh.mu.Lock()
	c := sh.m[k]
	if st.Polarity == extract.Positive {
		c.Pos++
	} else {
		c.Neg++
	}
	sh.m[k] = c
	sh.mu.Unlock()
}

// Local is a worker-private, unlocked statement accumulator. A worker adds
// its statements here and folds the result into the shared Store once with
// FlushTo, replacing a shard-mutex round trip per statement with one bulk
// merge per worker. Local is not safe for concurrent use.
type Local struct {
	m      map[Key]Counts
	intern map[string]string // property -> canonical copy
}

// NewLocal returns an empty worker-local accumulator.
func NewLocal() *Local {
	return &Local{
		m:      make(map[Key]Counts, 256),
		intern: make(map[string]string, 128),
	}
}

// Add records one statement.
func (l *Local) Add(st extract.Statement) {
	prop, ok := l.intern[st.Property]
	if !ok {
		// Clone bounds retention: a bare-adjective property string can alias
		// the full document text through the tokenizer's ToLower fast path;
		// interning also dedupes the map keys, so hashing repeated
		// properties works on one small shared string.
		prop = strings.Clone(st.Property)
		l.intern[prop] = prop
	}
	k := Key{Entity: st.Entity, Property: prop}
	c := l.m[k]
	if st.Polarity == extract.Positive {
		c.Pos++
	} else {
		c.Neg++
	}
	l.m[k] = c
}

// Len returns the number of distinct accumulated keys.
func (l *Local) Len() int { return len(l.m) }

// FlushTo folds the accumulated counts into s and clears the accumulator
// for reuse. The interning table is kept — its strings stay valid.
func (l *Local) FlushTo(s *Store) {
	//lint:allow detmap commutative fold into the sharded store; iteration order cannot reach results
	for k, c := range l.m {
		s.AddCounts(k, c)
		delete(l.m, k)
	}
}

// AddCounts merges a pre-aggregated tuple for a key.
func (s *Store) AddCounts(k Key, c Counts) {
	sh := s.shardFor(k)
	sh.mu.Lock()
	cur := sh.m[k]
	cur.Pos += c.Pos
	cur.Neg += c.Neg
	sh.m[k] = cur
	sh.mu.Unlock()
}

// Merge folds other into s. other must not be written concurrently.
func (s *Store) Merge(other *Store) {
	for i := range other.shards {
		sh := &other.shards[i]
		sh.mu.Lock()
		//lint:allow detmap commutative fold into the sharded store; iteration order cannot reach results
		for k, c := range sh.m {
			s.AddCounts(k, c)
		}
		sh.mu.Unlock()
	}
}

// Get returns the counts for a key (zero counts if absent).
func (s *Store) Get(k Key) Counts {
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[k]
}

// Len returns the number of distinct keys.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// TotalStatements returns the number of recorded statements.
func (s *Store) TotalStatements() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		//lint:allow detmap commutative sum over counters
		for _, c := range sh.m {
			n += c.Total()
		}
		sh.mu.Unlock()
	}
	return n
}

// Snapshot returns all (key, counts) pairs sorted by entity then property,
// for deterministic iteration.
func (s *Store) Snapshot() []Entry {
	var out []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, c := range sh.m {
			out = append(out, Entry{Key: k, Counts: c})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Entity != out[b].Entity {
			return out[a].Entity < out[b].Entity
		}
		return out[a].Property < out[b].Property
	})
	return out
}

// Entry is one snapshot row.
type Entry struct {
	Key
	Counts
}

// GroupKey identifies a (type, property) combination — the unit the model
// is trained on.
type GroupKey struct {
	Type     string
	Property string
}

// EntityCounts pairs an entity with its evidence tuple. Entities with no
// extracted statements appear with zero counts — the model classifies
// those too.
type EntityCounts struct {
	Entity kb.EntityID
	Pos    int64
	Neg    int64
}

// Group is the full evidence for one (type, property) pair, covering every
// entity of the type.
type Group struct {
	Key        GroupKey
	Entities   []EntityCounts // one per KB entity of the type, in KB order
	Statements int64          // total extracted statements for this group
}

// GroupByTypeProperty groups the store by (most notable type, property),
// keeps groups with at least rho statements (the paper used ρ = 100 and
// kept 380k of 7M groups), and expands each kept group to all entities of
// the type, including zero-evidence ones.
func GroupByTypeProperty(s *Store, base *kb.KB, rho int64) []Group {
	type agg struct {
		counts map[kb.EntityID]Counts
		total  int64
	}
	groups := map[GroupKey]*agg{}
	for _, e := range s.Snapshot() {
		typ := base.Get(e.Entity).Type
		gk := GroupKey{Type: typ, Property: e.Property}
		g := groups[gk]
		if g == nil {
			g = &agg{counts: map[kb.EntityID]Counts{}}
			groups[gk] = g
		}
		g.counts[e.Entity] = e.Counts
		g.total += e.Total()
	}

	var out []Group
	for gk, g := range groups {
		if g.total < rho {
			continue
		}
		ids := base.OfType(gk.Type)
		ents := make([]EntityCounts, len(ids))
		for i, id := range ids {
			c := g.counts[id]
			ents[i] = EntityCounts{Entity: id, Pos: c.Pos, Neg: c.Neg}
		}
		out = append(out, Group{Key: gk, Entities: ents, Statements: g.total})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Key.Type != out[b].Key.Type {
			return out[a].Key.Type < out[b].Key.Type
		}
		return out[a].Key.Property < out[b].Key.Property
	})
	return out
}

// CountGroups returns the number of distinct (type, property) pairs in the
// store regardless of ρ — the "7 million property-type pairs before
// filtering" statistic of Section 7.1.
func CountGroups(s *Store, base *kb.KB) int {
	seen := map[GroupKey]bool{}
	for _, e := range s.Snapshot() {
		seen[GroupKey{Type: base.Get(e.Entity).Type, Property: e.Property}] = true
	}
	return len(seen)
}

type groupAgg struct {
	counts map[kb.EntityID]Counts
	total  int64
}

// ParallelGroup computes GroupByTypeProperty and CountGroups in one
// parallel pass over the store's shards, without materialising a sorted
// snapshot: workers claim shards, build partial (type, property) aggregates,
// and the partials merge conflict-free because each (entity, property) key
// lives in exactly one shard. Only the final kept-group list is sorted. The
// results are identical to the two-snapshot implementation — the grouping
// property tests prove it.
func ParallelGroup(s *Store, base *kb.KB, rho int64, workers int) (groups []Group, pairsBeforeFilter int) {
	return ParallelGroupObserved(s, base, rho, workers, nil)
}

// ParallelGroupObserved is ParallelGroup with write-only phase counters:
// keys scanned per shard, groups kept/filtered at the ρ threshold. A nil
// o disables them; the returned groups are identical either way (the
// counters are never read here — the obsflow analyzer enforces it).
func ParallelGroupObserved(s *Store, base *kb.KB, rho int64, workers int, o *obs.GroupingObs) (groups []Group, pairsBeforeFilter int) {
	if o == nil {
		o = &obs.GroupingObs{} // nil handles: every record call no-ops
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > storeShards {
		workers = storeShards
	}
	partials := make([]map[GroupKey]*groupAgg, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := map[GroupKey]*groupAgg{}
			for {
				si := int(next.Add(1)) - 1
				if si >= storeShards {
					break
				}
				sh := &s.shards[si]
				sh.mu.Lock()
				o.PairsScanned.Add(int64(len(sh.m)))
				//lint:allow detmap per-shard aggregation is commutative; the kept groups are sorted below
				for k, c := range sh.m {
					gk := GroupKey{Type: base.Get(k.Entity).Type, Property: k.Property}
					g := part[gk]
					if g == nil {
						g = &groupAgg{counts: map[kb.EntityID]Counts{}}
						part[gk] = g
					}
					g.counts[k.Entity] = c
					g.total += c.Total()
				}
				sh.mu.Unlock()
			}
			partials[w] = part
		}(w)
	}
	wg.Wait()

	merged := map[GroupKey]*groupAgg{}
	for _, part := range partials {
		//lint:allow detmap partial merge is commutative; the kept groups are sorted below
		for gk, g := range part {
			m := merged[gk]
			if m == nil {
				merged[gk] = g
				continue
			}
			// Disjoint at the entity level: one (entity, property) key maps
			// to one shard, claimed by one worker.
			//lint:allow detmap disjoint entity keys; assignment order immaterial
			for e, c := range g.counts {
				m.counts[e] = c
			}
			m.total += g.total
		}
	}
	pairsBeforeFilter = len(merged)

	for gk, g := range merged {
		if g.total < rho {
			continue
		}
		ids := base.OfType(gk.Type)
		ents := make([]EntityCounts, len(ids))
		for i, id := range ids {
			c := g.counts[id]
			ents[i] = EntityCounts{Entity: id, Pos: c.Pos, Neg: c.Neg}
		}
		groups = append(groups, Group{Key: gk, Entities: ents, Statements: g.total})
	}
	sort.Slice(groups, func(a, b int) bool {
		if groups[a].Key.Type != groups[b].Key.Type {
			return groups[a].Key.Type < groups[b].Key.Type
		}
		return groups[a].Key.Property < groups[b].Key.Property
	})
	o.GroupsKept.Add(int64(len(groups)))
	o.GroupsFiltered.Add(int64(pairsBeforeFilter - len(groups)))
	return groups, pairsBeforeFilter
}

// Save writes the store in a compact binary format: a magic header, then
// one varint-encoded record per key.
func (s *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("SVEV1\n"); err != nil {
		return fmt.Errorf("evidence: save header: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	for _, e := range s.Snapshot() {
		if err := writeUvarint(uint64(e.Entity)); err != nil {
			return fmt.Errorf("evidence: save: %w", err)
		}
		if err := writeUvarint(uint64(len(e.Property))); err != nil {
			return fmt.Errorf("evidence: save: %w", err)
		}
		if _, err := bw.WriteString(e.Property); err != nil {
			return fmt.Errorf("evidence: save: %w", err)
		}
		if err := writeUvarint(uint64(e.Pos)); err != nil {
			return fmt.Errorf("evidence: save: %w", err)
		}
		if err := writeUvarint(uint64(e.Neg)); err != nil {
			return fmt.Errorf("evidence: save: %w", err)
		}
	}
	return bw.Flush()
}

// LoadStore reads a store written by Save.
func LoadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil || header != "SVEV1\n" {
		return nil, fmt.Errorf("evidence: bad header %q: %w", header, err)
	}
	s := NewStore()
	for {
		ent, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return s, nil
		} else if err != nil {
			return nil, fmt.Errorf("evidence: load entity: %w", err)
		}
		plen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("evidence: load: %w", err)
		}
		if plen > 1<<20 {
			return nil, fmt.Errorf("evidence: property length %d too large", plen)
		}
		pbuf := make([]byte, plen)
		if _, err := io.ReadFull(br, pbuf); err != nil {
			return nil, fmt.Errorf("evidence: load property: %w", err)
		}
		pcnt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("evidence: load pos: %w", err)
		}
		ncnt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("evidence: load neg: %w", err)
		}
		s.AddCounts(Key{Entity: kb.EntityID(ent), Property: string(pbuf)},
			Counts{Pos: int64(pcnt), Neg: int64(ncnt)})
	}
}
