package evidence

import (
	"fmt"
	"reflect"
	"testing"
	"unsafe"

	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/stats"
)

// randomStore fills a store with random statements over the test KB and
// returns the statements so callers can replay them elsewhere.
func randomStore(rng *stats.RNG, base *kb.KB) (*Store, []extract.Statement) {
	props := []string{"cute", "big", "warm", "very big", "dangerous", "old",
		"crowded", "beautiful", "cheap", "quiet"}
	s := NewStore()
	n := rng.IntRange(0, 400)
	stmts := make([]extract.Statement, 0, n)
	for i := 0; i < n; i++ {
		st := extract.Statement{
			Entity:   kb.EntityID(rng.Intn(base.Len())),
			Property: props[rng.Intn(len(props))],
			Polarity: extract.Positive,
		}
		if rng.Bernoulli(0.3) {
			st.Polarity = extract.Negative
		}
		s.Add(st)
		stmts = append(stmts, st)
	}
	return s, stmts
}

// TestParallelGroupMatchesTwoSnapshot is the grouping property test: on
// random stores, the single-pass parallel grouping must return exactly the
// groups and before-ρ pair count of the two-snapshot implementation
// (GroupByTypeProperty + CountGroups), for every worker count.
func TestParallelGroupMatchesTwoSnapshot(t *testing.T) {
	base := testKB()
	for seed := uint64(1); seed <= 25; seed++ {
		rng := stats.NewRNG(seed)
		s, _ := randomStore(rng, base)
		rho := int64(rng.Intn(30))
		wantGroups := GroupByTypeProperty(s, base, rho)
		wantBefore := CountGroups(s, base)
		for _, workers := range []int{1, 3, 8, 100} {
			gotGroups, gotBefore := ParallelGroup(s, base, rho, workers)
			if gotBefore != wantBefore {
				t.Fatalf("seed %d workers %d: pairsBeforeFilter = %d, want %d",
					seed, workers, gotBefore, wantBefore)
			}
			if !reflect.DeepEqual(gotGroups, wantGroups) {
				t.Fatalf("seed %d workers %d rho %d: groups diverge\ngot  %+v\nwant %+v",
					seed, workers, rho, gotGroups, wantGroups)
			}
		}
	}
}

// TestParallelGroupEmptyStore pins the degenerate case.
func TestParallelGroupEmptyStore(t *testing.T) {
	groups, before := ParallelGroup(NewStore(), testKB(), 1, 4)
	if len(groups) != 0 || before != 0 {
		t.Fatalf("empty store: groups=%d before=%d", len(groups), before)
	}
}

// TestLocalMatchesDirectAdd replays random statement streams through
// worker-local accumulators (split across several Locals, as the pipeline
// does) and asserts the merged store is identical to per-statement Adds.
func TestLocalMatchesDirectAdd(t *testing.T) {
	base := testKB()
	for seed := uint64(1); seed <= 15; seed++ {
		rng := stats.NewRNG(seed + 100)
		direct, stmts := randomStore(rng, base)

		viaLocal := NewStore()
		locals := []*Local{NewLocal(), NewLocal(), NewLocal()}
		for i, st := range stmts {
			locals[i%len(locals)].Add(st)
		}
		for _, l := range locals {
			l.FlushTo(viaLocal)
		}
		if !reflect.DeepEqual(direct.Snapshot(), viaLocal.Snapshot()) {
			t.Fatalf("seed %d: local aggregation diverges from direct Add", seed)
		}
	}
}

// TestLocalFlushClears asserts a Local is reusable after FlushTo: the
// second accumulation must not see counts from the first.
func TestLocalFlushClears(t *testing.T) {
	s := NewStore()
	l := NewLocal()
	st := extract.Statement{Entity: 0, Property: "cute", Polarity: extract.Positive}
	l.Add(st)
	l.FlushTo(s)
	if l.Len() != 0 {
		t.Fatalf("Len after flush = %d", l.Len())
	}
	l.Add(st)
	l.FlushTo(s)
	if c := s.Get(Key{Entity: 0, Property: "cute"}); c.Pos != 2 {
		t.Fatalf("two flushed adds: Pos = %d, want 2", c.Pos)
	}
}

// TestLocalInternsProperties asserts the interning contract: all keys for
// one property share one canonical string, not aliases of their sources.
func TestLocalInternsProperties(t *testing.T) {
	l := NewLocal()
	// Two distinct heap strings with equal content.
	a := fmt.Sprintf("cu%s", "te")
	b := fmt.Sprintf("c%s", "ute")
	l.Add(extract.Statement{Entity: 0, Property: a, Polarity: extract.Positive})
	l.Add(extract.Statement{Entity: 1, Property: b, Polarity: extract.Positive})
	canon, ok := l.intern["cute"]
	if !ok {
		t.Fatal("property not interned")
	}
	//lint:allow detmap order-independent assertion over every key; nothing ordered is produced
	for k := range l.m {
		if unsafe.StringData(k.Property) != unsafe.StringData(canon) {
			t.Fatalf("key property %q does not share the canonical interned backing", k.Property)
		}
	}
}
