package evidence

import (
	"testing"

	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/stats"
)

// TestAccumulatorMatchesBatchGrouping is the unit-level differential for
// the delta layer: absorbing a random store in several delta slices must
// leave the accumulator able to materialize exactly the groups — same
// keys, same KB-order entity expansion, same totals — that
// GroupByTypeProperty computes from the merged store in one pass.
func TestAccumulatorMatchesBatchGrouping(t *testing.T) {
	base := testKB()
	rng := stats.NewRNG(11)
	props := []string{"cute", "big", "dangerous"}

	whole := NewStore()
	acc := NewGroupAccumulator(base)
	var dirtyUnion []GroupKey
	for epoch := 0; epoch < 4; epoch++ {
		delta := NewStore()
		for i := 0; i < 50; i++ {
			st := extract.Statement{
				Entity:   kb.EntityID(rng.IntRange(0, 4)),
				Property: props[rng.IntRange(0, len(props)-1)],
				Polarity: extract.Positive,
			}
			if rng.Bernoulli(0.3) {
				st.Polarity = extract.Negative
			}
			delta.Add(st)
		}
		whole.Merge(delta)
		dirtyUnion = append(dirtyUnion, acc.AbsorbDelta(delta)...)
	}

	const rho = 5
	want := GroupByTypeProperty(whole, base, rho)
	seen := map[GroupKey]bool{}
	var got []Group
	for _, k := range dirtyUnion {
		if seen[k] {
			continue
		}
		seen[k] = true
		if g, ok := acc.Materialize(k, rho); ok {
			got = append(got, g)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("accumulator materialized %d groups, batch grouping found %d", len(got), len(want))
	}
	byKey := map[GroupKey]Group{}
	for _, g := range got {
		byKey[g.Key] = g
	}
	for _, w := range want {
		g, ok := byKey[w.Key]
		if !ok {
			t.Fatalf("group %v missing from accumulator", w.Key)
		}
		if g.Statements != w.Statements {
			t.Errorf("group %v: statements %d vs %d", w.Key, g.Statements, w.Statements)
		}
		if len(g.Entities) != len(w.Entities) {
			t.Fatalf("group %v: %d entities vs %d", w.Key, len(g.Entities), len(w.Entities))
		}
		for i := range w.Entities {
			if g.Entities[i] != w.Entities[i] {
				t.Errorf("group %v entity %d: %+v vs %+v", w.Key, i, g.Entities[i], w.Entities[i])
			}
		}
	}
	if whole.Len() == 0 || acc.Pairs() == 0 {
		t.Fatal("vacuous fixture")
	}
	// Pairs reports the before-ρ statistic: every distinct pair, modelled
	// or not.
	if _, before := ParallelGroupObserved(whole, base, rho, 2, nil); acc.Pairs() != before {
		t.Errorf("Pairs() = %d, batch before-filter count = %d", acc.Pairs(), before)
	}

	// Sub-ρ and untouched groups must not materialize.
	if _, ok := acc.Materialize(GroupKey{"city", "no-such-property"}, 1); ok {
		t.Error("untouched group materialized")
	}
	if g, ok := acc.Materialize(want[0].Key, want[0].Statements+1); ok {
		t.Errorf("group above its own total materialized: %+v", g)
	}
}
