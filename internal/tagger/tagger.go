// Package tagger implements entity mention detection and disambiguation
// over tokenized sentences — the substitute for the entity annotations the
// paper's web snapshot came pre-processed with.
//
// Linking is greedy longest-match over an alias index, with a
// disambiguation step: candidates are scored by type context (does the
// sentence mention the entity's type noun?) and prominence; unresolvable
// mentions are dropped, prioritising precision over recall exactly as the
// paper's extraction design does (Section 2 discarded 11 of 23
// high-traffic city names for ambiguity).
package tagger

import (
	"strings"
	"unicode"

	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
)

// Mention links a token span [Start,End) to a knowledge-base entity.
type Mention struct {
	Entity kb.EntityID
	Start  int // first token index
	End    int // one past the last token index
	Head   int // syntactic head token of the span (its last token)
}

// Covers reports whether the mention span contains token index i.
func (m Mention) Covers(i int) bool { return i >= m.Start && i < m.End }

// Tagger links entity mentions. It is immutable after construction and
// safe for concurrent use.
type Tagger struct {
	kb        *kb.KB
	lex       *lexicon.Lexicon
	window    int
	typeNouns map[string]typePair // entity type -> lower-cased singular/plural
}

type typePair struct{ singular, plural string }

// New builds a tagger over the given knowledge base and lexicon.
func New(base *kb.KB, lex *lexicon.Lexicon) *Tagger {
	t := &Tagger{
		kb:        base,
		lex:       lex,
		window:    base.MaxAliasTokens(),
		typeNouns: map[string]typePair{},
	}
	for _, typ := range base.Types() {
		t.typeNouns[typ] = typePair{
			singular: strings.ToLower(typ),
			plural:   strings.ToLower(kb.Pluralize(typ)),
		}
	}
	return t
}

// Scratch holds one worker's reusable probe buffer. A Scratch must not be
// shared between goroutines.
type Scratch struct {
	surface []byte
}

// Tag scans a tagged sentence left to right with greedy longest-match and
// returns the resolved, non-overlapping mentions in order.
func (t *Tagger) Tag(tagged []pos.Tagged) []Mention {
	return t.TagInto(nil, new(Scratch), tagged)
}

// TagInto is the scratch-reuse variant of Tag: mentions are appended to dst
// and the extended slice returned.
func (t *Tagger) TagInto(dst []Mention, sc *Scratch, tagged []pos.Tagged) []Mention {
	i := 0
	for i < len(tagged) {
		m, ok := t.matchAt(sc, tagged, i)
		if !ok {
			i++
			continue
		}
		dst = append(dst, m)
		i = m.End
	}
	return dst
}

// matchAt tries to link a mention starting at token i, longest span first.
func (t *Tagger) matchAt(sc *Scratch, tagged []pos.Tagged, i int) (Mention, bool) {
	// No alias starts with this word: no span from i can match.
	maxLen := t.kb.MaxAliasTokensFor(tagged[i].Lower())
	if maxLen == 0 {
		return Mention{}, false
	}
	if rest := len(tagged) - i; rest < maxLen {
		maxLen = rest
	}
	for n := maxLen; n >= 1; n-- {
		if !plausibleSpan(tagged[i : i+n]) {
			continue
		}
		var cands []kb.EntityID
		if n == 1 {
			cands = t.kb.CandidatesLower(tagged[i].Lower())
		} else {
			sc.surface = appendLowerSurface(sc.surface[:0], tagged[i:i+n])
			cands = t.kb.CandidatesLowerBytes(sc.surface)
		}
		if len(cands) == 0 {
			continue
		}
		if id, ok := t.resolve(tagged, cands, tagged[i:i+n]); ok {
			return Mention{Entity: id, Start: i, End: i + n, Head: i + n - 1}, true
		}
		// A matching surface that cannot be resolved blocks shorter
		// sub-spans too ("San Francisco" failing must not link "San").
		return Mention{}, false
	}
	return Mention{}, false
}

// appendLowerSurface appends the space-joined lower-cased span text to buf.
func appendLowerSurface(buf []byte, span []pos.Tagged) []byte {
	for i := range span {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, span[i].Lower()...)
	}
	return buf
}

// plausibleSpan rejects spans that cannot be a name: punctuation or verbs
// inside, which keeps the n-gram probing cheap and precise.
func plausibleSpan(span []pos.Tagged) bool {
	for _, tok := range span {
		switch tok.Tag {
		case lexicon.Punct, lexicon.Verb, lexicon.Aux, lexicon.Prep,
			lexicon.Conj, lexicon.Neg, lexicon.Mark:
			return false
		}
	}
	return true
}

// resolve picks one entity among the candidates, or fails.
func (t *Tagger) resolve(tagged []pos.Tagged, cands []kb.EntityID, span []pos.Tagged) (kb.EntityID, bool) {
	type scored struct {
		id    kb.EntityID
		score float64
	}
	var best, second scored
	best.score, second.score = -1, -1
	for _, id := range cands {
		e := t.kb.Get(id)
		if e.Proper && !startsUpper(span[0].Text) {
			continue // proper names must be capitalised in text
		}
		hasCtx := t.typeContext(tagged, e.Type)
		score := 0.0
		if hasCtx {
			score += 2
		}
		score += e.Attr("prominence", 0.5)
		if e.Ambiguous {
			// Ambiguous names need explicit type context to link at all.
			if !hasCtx {
				continue
			}
			score -= 0.25
		}
		if score > best.score {
			second = best
			best = scored{id, score}
		} else if score > second.score {
			second = scored{id, score}
		}
	}
	if best.score < 0 {
		return 0, false
	}
	// Require a clear winner; near-ties are disambiguation failures.
	if second.score >= 0 && best.score-second.score < 0.05 {
		return 0, false
	}
	return best.id, true
}

// typeContext reports whether the sentence mentions the type noun
// (singular or plural) of the given entity type.
func (t *Tagger) typeContext(tagged []pos.Tagged, typ string) bool {
	tp, ok := t.typeNouns[typ]
	if !ok {
		tp = typePair{singular: strings.ToLower(typ), plural: strings.ToLower(kb.Pluralize(typ))}
	}
	for _, tok := range tagged {
		w := tok.Lower()
		if w == tp.singular || w == tp.plural {
			return true
		}
	}
	return false
}

func startsUpper(s string) bool {
	if s == "" {
		return false
	}
	return unicode.IsUpper(rune(s[0]))
}
