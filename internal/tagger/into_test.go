package tagger

import (
	"reflect"
	"testing"

	"repro/internal/nlp/token"
)

// TestTagIntoMatchesTag drives one Scratch and one growing destination
// through a batch of sentences and checks the appended mentions against
// the allocating Tag — including sentences that link nothing.
func TestTagIntoMatchesTag(t *testing.T) {
	_, _, tg, pt := setup()
	texts := []string{
		"Kittens are cute.",
		"San Francisco is a big city.",
		"Phoenix is a big city.",
		"Nothing to see here.",
		"The white shark is a dangerous animal near Palo Alto.",
		"",
	}
	sc := new(Scratch)
	var buf []Mention
	for round := 0; round < 2; round++ {
		for _, text := range texts {
			for _, sent := range token.SplitSentences(text) {
				tagged := pt.Tag(sent)
				want := tg.Tag(tagged)
				buf = tg.TagInto(buf[:0], sc, tagged)
				if len(want) == 0 && len(buf) == 0 {
					continue
				}
				if !reflect.DeepEqual(buf, want) {
					t.Fatalf("%q: TagInto = %+v, want %+v", text, buf, want)
				}
			}
		}
	}
}

// TestTagIntoPreservesPrefix checks the append contract.
func TestTagIntoPreservesPrefix(t *testing.T) {
	_, _, tg, pt := setup()
	tagged := pt.Tag(token.SplitSentences("Kittens are cute.")[0])
	prefix := []Mention{{Entity: 42, Start: 7, End: 9, Head: 8}}
	got := tg.TagInto(append([]Mention(nil), prefix...), new(Scratch), tagged)
	if len(got) != 1+len(tg.Tag(tagged)) || !reflect.DeepEqual(got[0], prefix[0]) {
		t.Fatalf("prefix not preserved: %+v", got)
	}
}

// TestFirstWordSpanHint pins the probe-skipping fast path: a sentence
// whose tokens never start an alias must still go through the full
// plausibility logic when one does.
func TestFirstWordSpanHint(t *testing.T) {
	base, _, tg, pt := setup()
	if got := base.MaxAliasTokensFor("zzz"); got != 0 {
		t.Fatalf("MaxAliasTokensFor(zzz) = %d, want 0", got)
	}
	if got := base.MaxAliasTokensFor("san"); got != 2 {
		t.Fatalf("MaxAliasTokensFor(san) = %d, want 2", got)
	}
	// "San" alone must still be blocked by the failing longer span when the
	// two-token surface exists: greedy longest-match semantics unchanged.
	tagged := pt.Tag(token.SplitSentences("San Francisco is big.")[0])
	mentions := tg.Tag(tagged)
	if len(mentions) != 1 || mentions[0].End-mentions[0].Start != 2 {
		t.Fatalf("mentions = %+v", mentions)
	}
}
