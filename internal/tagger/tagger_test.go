package tagger

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
)

func setup() (*kb.KB, *lexicon.Lexicon, *Tagger, *pos.Tagger) {
	base := kb.New()
	base.Add(kb.Entity{Name: "San Francisco", Type: "city", Proper: true,
		Attributes: map[string]float64{"prominence": 0.9}})
	base.Add(kb.Entity{Name: "Palo Alto", Type: "city", Proper: true})
	base.Add(kb.Entity{Name: "kitten", Type: "animal"})
	base.Add(kb.Entity{Name: "white shark", Type: "animal"})
	base.Add(kb.Entity{Name: "Phoenix", Type: "city", Proper: true,
		Attributes: map[string]float64{"prominence": 0.6}})
	base.Add(kb.Entity{Name: "Phoenix", Type: "celebrity", Proper: true,
		Attributes: map[string]float64{"prominence": 0.4}})
	base.Add(kb.Entity{Name: "Ontario", Type: "city", Proper: true, Ambiguous: true})
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	return base, lex, New(base, lex), pos.New(lex)
}

func tagText(t *testing.T, text string) ([]Mention, []pos.Tagged) {
	t.Helper()
	base, _, tg, pt := setup()
	_ = base
	sents := token.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("want 1 sentence, got %d", len(sents))
	}
	tagged := pt.Tag(sents[0])
	return tg.Tag(tagged), tagged
}

func TestTagSingleWordEntity(t *testing.T) {
	mentions, _ := tagText(t, "Kittens are cute.")
	if len(mentions) != 1 {
		t.Fatalf("mentions = %v", mentions)
	}
	if mentions[0].Start != 0 || mentions[0].End != 1 {
		t.Fatalf("span = [%d,%d)", mentions[0].Start, mentions[0].End)
	}
}

func TestTagMultiWordEntity(t *testing.T) {
	mentions, tagged := tagText(t, "San Francisco is not a big city.")
	if len(mentions) != 1 {
		t.Fatalf("mentions = %v", mentions)
	}
	m := mentions[0]
	if m.Start != 0 || m.End != 2 || m.Head != 1 {
		t.Fatalf("span = %+v", m)
	}
	if tagged[m.Head].Lower() != "francisco" {
		t.Fatalf("head token = %q", tagged[m.Head].Text)
	}
}

func TestTagLowercaseCommonNoun(t *testing.T) {
	mentions, _ := tagText(t, "I saw a white shark.")
	if len(mentions) != 1 || mentions[0].End-mentions[0].Start != 2 {
		t.Fatalf("mentions = %v", mentions)
	}
}

func TestProperNameRequiresCapital(t *testing.T) {
	// "palo alto" lowercased should not link to the proper-noun entity.
	mentions, _ := tagText(t, "we walked around palo alto yesterday.")
	if len(mentions) != 0 {
		t.Fatalf("lowercase proper name linked: %v", mentions)
	}
}

func TestCrossTypeDisambiguationByContext(t *testing.T) {
	// "Phoenix" is both a city and a celebrity; type context decides.
	base, _, tg, pt := setup()
	cityIDs := base.OfType("city")
	celebIDs := base.OfType("celebrity")
	var cityPhoenix, celebPhoenix kb.EntityID = -1, -1
	for _, id := range cityIDs {
		if base.Get(id).Name == "Phoenix" {
			cityPhoenix = id
		}
	}
	for _, id := range celebIDs {
		if base.Get(id).Name == "Phoenix" {
			celebPhoenix = id
		}
	}

	sent := pt.Tag(token.SplitSentences("Phoenix is a big city.")[0])
	mentions := tg.Tag(sent)
	if len(mentions) != 1 || mentions[0].Entity != cityPhoenix {
		t.Fatalf("city context: %v (want city id %d)", mentions, cityPhoenix)
	}

	sent = pt.Tag(token.SplitSentences("Phoenix is a cool celebrity.")[0])
	mentions = tg.Tag(sent)
	if len(mentions) != 1 || mentions[0].Entity != celebPhoenix {
		t.Fatalf("celebrity context: %v (want celeb id %d)", mentions, celebPhoenix)
	}
}

func TestNoContextPrefersProminence(t *testing.T) {
	// Without type context, the more prominent sense (city, 0.6) wins.
	base, _, tg, pt := setup()
	sent := pt.Tag(token.SplitSentences("Phoenix is big.")[0])
	mentions := tg.Tag(sent)
	if len(mentions) != 1 {
		t.Fatalf("mentions = %v", mentions)
	}
	if base.Get(mentions[0].Entity).Type != "city" {
		t.Fatalf("linked to %q, want city", base.Get(mentions[0].Entity).Type)
	}
}

func TestAmbiguousEntityNeedsTypeContext(t *testing.T) {
	mentions, _ := tagText(t, "Ontario is big.")
	if len(mentions) != 0 {
		t.Fatalf("ambiguous name linked without context: %v", mentions)
	}
	mentions, _ = tagText(t, "Ontario is a big city.")
	if len(mentions) != 1 {
		t.Fatalf("ambiguous name with context not linked: %v", mentions)
	}
}

func TestGreedyLongestMatch(t *testing.T) {
	// "San Francisco" must be one mention, not "San" + "Francisco".
	base := kb.New()
	base.Add(kb.Entity{Name: "San Francisco", Type: "city", Proper: true})
	base.Add(kb.Entity{Name: "Francisco", Type: "celebrity", Proper: true})
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	tg := New(base, lex)
	pt := pos.New(lex)
	sent := pt.Tag(token.SplitSentences("San Francisco is big.")[0])
	mentions := tg.Tag(sent)
	if len(mentions) != 1 || mentions[0].End-mentions[0].Start != 2 {
		t.Fatalf("mentions = %v", mentions)
	}
	if base.Get(mentions[0].Entity).Name != "San Francisco" {
		t.Fatalf("linked %q", base.Get(mentions[0].Entity).Name)
	}
}

func TestMentionsDoNotOverlap(t *testing.T) {
	mentions, _ := tagText(t, "Kittens and white sharks live near San Francisco.")
	prevEnd := -1
	for _, m := range mentions {
		if m.Start < prevEnd {
			t.Fatalf("overlapping mentions: %v", mentions)
		}
		prevEnd = m.End
	}
	if len(mentions) != 3 {
		t.Fatalf("want 3 mentions, got %v", mentions)
	}
}

func TestCovers(t *testing.T) {
	m := Mention{Start: 2, End: 4}
	if !m.Covers(2) || !m.Covers(3) || m.Covers(4) || m.Covers(1) {
		t.Fatal("Covers boundary check failed")
	}
}

func TestPluralMentionLinks(t *testing.T) {
	mentions, _ := tagText(t, "Kittens are cute animals.")
	if len(mentions) != 1 {
		t.Fatalf("plural mention not linked: %v", mentions)
	}
}

func TestTaggerSkipsVerbsInSpan(t *testing.T) {
	// An entity name containing a verb-tagged word must not match across
	// the verb ("San" + copula is implausible as a span).
	base := kb.New()
	base.Add(kb.Entity{Name: "Big Sur", Type: "city", Proper: true})
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	tg := New(base, lex)
	pt := pos.New(lex)
	sent := pt.Tag(token.SplitSentences("Big Sur is big.")[0])
	mentions := tg.Tag(sent)
	if len(mentions) != 1 || mentions[0].End-mentions[0].Start != 2 {
		t.Fatalf("mentions = %v", mentions)
	}
}

func TestTaggerSentenceInitialCommonNoun(t *testing.T) {
	// A capitalised common-noun entity at sentence start must still link.
	base := kb.New()
	base.Add(kb.Entity{Name: "chess", Type: "sport"})
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	tg := New(base, lex)
	pt := pos.New(lex)
	sent := pt.Tag(token.SplitSentences("Chess is a calm sport.")[0])
	if got := tg.Tag(sent); len(got) != 1 {
		t.Fatalf("mentions = %v", got)
	}
}

func TestTaggerNoMentionsInEmptySentence(t *testing.T) {
	_, _, tg, _ := setup()
	if got := tg.Tag(nil); len(got) != 0 {
		t.Fatalf("mentions on nil input: %v", got)
	}
}
