package baselines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/evidence"
	"repro/internal/kb"
)

func TestMajorityVote(t *testing.T) {
	mv := MajorityVote{}
	cases := []struct {
		pos, neg int64
		want     core.Opinion
	}{
		{5, 2, core.OpinionPositive},
		{2, 5, core.OpinionNegative},
		{3, 3, core.OpinionUnsolved},
		{0, 0, core.OpinionUnsolved},
		{1, 0, core.OpinionPositive},
		{0, 1, core.OpinionNegative},
	}
	for _, c := range cases {
		if got := mv.Decide(c.pos, c.neg); got != c.want {
			t.Errorf("MV(%d,%d) = %v, want %v", c.pos, c.neg, got, c.want)
		}
	}
	if mv.Name() == "" {
		t.Error("empty name")
	}
}

func TestScaledMajorityVote(t *testing.T) {
	// Global ratio 10:1 — ten positives are only worth one negative.
	smv := ScaledMajorityVoteFromTotals(1000, 100)
	if smv.Scale != 10 {
		t.Fatalf("scale = %v", smv.Scale)
	}
	if got := smv.Decide(9, 1); got != core.OpinionNegative {
		t.Errorf("SMV(9,1) = %v, want negative (scaled neg = 10)", got)
	}
	if got := smv.Decide(11, 1); got != core.OpinionPositive {
		t.Errorf("SMV(11,1) = %v, want positive", got)
	}
	if got := smv.Decide(10, 1); got != core.OpinionUnsolved {
		t.Errorf("SMV(10,1) = %v, want unsolved (exact tie)", got)
	}
	if got := smv.Decide(0, 0); got != core.OpinionUnsolved {
		t.Errorf("SMV(0,0) = %v, want unsolved", got)
	}
}

func TestScaledMajorityVoteBreaksRawTies(t *testing.T) {
	// The paper: SMV "is able to improve on test cases where the number of
	// negative statements is non-zero" — raw ties now break.
	smv := ScaledMajorityVoteFromTotals(500, 100) // scale 5
	if got := smv.Decide(3, 3); got != core.OpinionNegative {
		t.Errorf("SMV(3,3) = %v, want negative under scale 5", got)
	}
}

func TestScaledMajorityVoteNoNegatives(t *testing.T) {
	smv := ScaledMajorityVoteFromTotals(100, 0)
	if smv.Scale != 1 {
		t.Fatalf("scale with zero negatives = %v, want 1", smv.Scale)
	}
}

func TestNewScaledMajorityVoteFromStore(t *testing.T) {
	s := evidence.NewStore()
	s.AddCounts(evidence.Key{Entity: 0, Property: "big"}, evidence.Counts{Pos: 30, Neg: 10})
	s.AddCounts(evidence.Key{Entity: 1, Property: "big"}, evidence.Counts{Pos: 10, Neg: 10})
	smv := NewScaledMajorityVote(s)
	if smv.Scale != 2 {
		t.Fatalf("scale = %v, want 2", smv.Scale)
	}
}

func TestWebChildAssertsFromCoOccurrence(t *testing.T) {
	s := evidence.NewStore()
	// kitten-cute co-occurs heavily (all positive).
	s.AddCounts(evidence.Key{Entity: 1, Property: "cute"}, evidence.Counts{Pos: 50, Neg: 0})
	// spider-cute co-occurs via NEGATIVE statements only — WebChild is
	// negation-blind, so it asserts cuteness anyway (the false-positive
	// failure mode the paper observed).
	s.AddCounts(evidence.Key{Entity: 2, Property: "cute"}, evidence.Counts{Pos: 0, Neg: 40})
	// tiger mentioned once for "big" only.
	s.AddCounts(evidence.Key{Entity: 3, Property: "big"}, evidence.Counts{Pos: 1, Neg: 0})

	w := NewWebChild(s, 2)
	if got := w.DecideFor(1, "cute"); got != core.OpinionPositive {
		t.Errorf("kitten cute = %v", got)
	}
	if got := w.DecideFor(2, "cute"); got != core.OpinionPositive {
		t.Errorf("spider cute = %v — negation blindness should assert it", got)
	}
	// Absence of an asserted property = negative assertion.
	if got := w.DecideFor(3, "cute"); got != core.OpinionNegative {
		t.Errorf("tiger cute = %v, want negative (absent from KB relation)", got)
	}
	if got := w.DecideFor(3, "big"); got != core.OpinionNegative {
		t.Errorf("tiger big (1 co-occurrence < threshold 2) = %v, want negative", got)
	}
	// Entity never mentioned: not contained, no coverage.
	if got := w.DecideFor(99, "cute"); got != core.OpinionUnsolved {
		t.Errorf("unknown entity = %v, want unsolved", got)
	}
}

func TestWebChildDecideOnCounts(t *testing.T) {
	w := NewWebChild(evidence.NewStore(), 2)
	if got := w.Decide(0, 0); got != core.OpinionUnsolved {
		t.Errorf("Decide(0,0) = %v", got)
	}
	if got := w.Decide(1, 1); got != core.OpinionPositive {
		t.Errorf("Decide(1,1) = %v", got)
	}
	if got := w.Decide(1, 0); got != core.OpinionNegative {
		t.Errorf("Decide(1,0) = %v (below threshold)", got)
	}
}

func TestMethodsAreMethodInterface(t *testing.T) {
	var _ Method = MajorityVote{}
	var _ Method = ScaledMajorityVote{}
	var _ Method = (*WebChild)(nil)
	_ = kb.EntityID(0)
}
