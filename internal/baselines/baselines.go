// Package baselines implements the comparison methods of Section 7.4:
// Majority Vote, Scaled Majority Vote, and a WebChild-style co-occurrence
// comparator. All three share the core.Opinion output vocabulary so the
// evaluation harness treats every method uniformly.
package baselines

import (
	"repro/internal/core"
	"repro/internal/evidence"
	"repro/internal/kb"
)

// Method is a count-interpreting decision procedure.
type Method interface {
	// Name identifies the method in reports.
	Name() string
	// Decide maps one evidence tuple to an opinion. OpinionUnsolved means
	// the method produces no output for the pair (a coverage loss).
	Decide(pos, neg int64) core.Opinion
}

// MajorityVote decides by comparing raw counts; ties (including the very
// common ⟨0,0⟩) are unsolved.
type MajorityVote struct{}

// Name implements Method.
func (MajorityVote) Name() string { return "Majority Vote" }

// Decide implements Method.
func (MajorityVote) Decide(pos, neg int64) core.Opinion {
	switch {
	case pos > neg:
		return core.OpinionPositive
	case neg > pos:
		return core.OpinionNegative
	default:
		return core.OpinionUnsolved
	}
}

// ScaledMajorityVote multiplies the negative count by the global
// positive-to-negative statement ratio before voting — the "gross
// adjustment of the inherent bias against negative statements" of
// Section 7.4. The scale is universal, NOT per (type, property); that is
// exactly the limitation the paper attributes to it.
type ScaledMajorityVote struct {
	Scale float64 // global ratio (Σ pos) / (Σ neg)
}

// NewScaledMajorityVote computes the global scale from an evidence store.
func NewScaledMajorityVote(s *evidence.Store) ScaledMajorityVote {
	var pos, neg int64
	for _, e := range s.Snapshot() {
		pos += e.Pos
		neg += e.Neg
	}
	return ScaledMajorityVoteFromTotals(pos, neg)
}

// ScaledMajorityVoteFromTotals builds the baseline from corpus-wide
// statement totals.
func ScaledMajorityVoteFromTotals(pos, neg int64) ScaledMajorityVote {
	scale := 1.0
	if neg > 0 {
		scale = float64(pos) / float64(neg)
	}
	return ScaledMajorityVote{Scale: scale}
}

// Name implements Method.
func (ScaledMajorityVote) Name() string { return "Scaled Majority Vote" }

// Decide implements Method.
func (v ScaledMajorityVote) Decide(pos, neg int64) core.Opinion {
	scaled := float64(neg) * v.Scale
	p := float64(pos)
	switch {
	case p > scaled:
		return core.OpinionPositive
	case scaled > p:
		return core.OpinionNegative
	default:
		return core.OpinionUnsolved
	}
}

// WebChild emulates the WebChild comparison of Section 7.4: a commonsense
// knowledge base built from co-occurrence that does not model subjectivity
// and does not detect negation. An (entity, property) pair is asserted
// positive when the total co-occurrence count (positive AND negative
// statements alike — negation-blind) is statistically significant; the
// absence of an asserted property counts as a negative assertion. The only
// coverage loss is an entity missing from the knowledge base entirely.
type WebChild struct {
	// contained marks entities present in the harvested KB.
	contained map[kb.EntityID]bool
	// asserted marks (entity, property) pairs the KB asserts.
	asserted map[evidence.Key]bool
	// MinCoOccurrence is the significance threshold.
	MinCoOccurrence int64
}

// NewWebChild harvests a WebChild-style KB from the evidence store.
// minCoOccurrence is the significance threshold for asserting a property
// (the paper's comparator used co-occurrence statistics; 2 is our default
// so that a single stray sentence does not assert).
func NewWebChild(s *evidence.Store, minCoOccurrence int64) *WebChild {
	w := &WebChild{
		contained:       map[kb.EntityID]bool{},
		asserted:        map[evidence.Key]bool{},
		MinCoOccurrence: minCoOccurrence,
	}
	for _, e := range s.Snapshot() {
		if e.Total() > 0 {
			w.contained[e.Entity] = true
		}
		if e.Total() >= minCoOccurrence { // negation-blind: Pos+Neg
			w.asserted[e.Key] = true
		}
	}
	return w
}

// Name implements Method.
func (*WebChild) Name() string { return "WebChild" }

// DecideFor answers for a specific entity-property pair (WebChild needs
// the identity, not just the counts).
func (w *WebChild) DecideFor(ent kb.EntityID, property string) core.Opinion {
	if !w.contained[ent] {
		return core.OpinionUnsolved
	}
	if w.asserted[evidence.Key{Entity: ent, Property: property}] {
		return core.OpinionPositive
	}
	return core.OpinionNegative
}

// Decide implements Method on bare counts: contained iff any statement
// exists for the pair (an under-approximation of KB membership used only
// when entity identity is unavailable).
func (w *WebChild) Decide(pos, neg int64) core.Opinion {
	total := pos + neg
	if total == 0 {
		return core.OpinionUnsolved
	}
	if total >= w.MinCoOccurrence {
		return core.OpinionPositive
	}
	return core.OpinionNegative
}
