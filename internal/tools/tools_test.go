package tools

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCIUsesPinnedTools asserts the lint workflow invokes exactly the
// tool versions pinned in this package, so a bump in either place
// without the other fails fast.
func TestCIUsesPinnedTools(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatal(err)
	}
	ci := string(data)
	for _, pin := range []string{Staticcheck, Govulncheck} {
		if !strings.Contains(ci, "go run "+pin) {
			t.Errorf("ci.yml does not run the pinned tool %q", pin)
		}
		at := strings.LastIndex(pin, "@")
		if at < 0 || at == len(pin)-1 {
			t.Errorf("pin %q has no version suffix", pin)
			continue
		}
		base := pin[:at+1]
		if n := strings.Count(ci, "go run "+base); n != 1 {
			t.Errorf("ci.yml invokes %s %d times; want exactly 1 (the pinned one)", base, n)
		}
	}
}
