// Package tools pins the versions of the external static-analysis tools
// the CI lint job runs. The module's dependency graph is intentionally
// empty — everything in the repository builds with the standard library
// alone — so the classic blank-import tools.go pattern is unavailable
// (it would add the tools to go.mod). Instead the pins live here as
// constants, CI invokes them with `go run <pin>`, and TestCIUsesPinnedTools
// fails if the workflow and these constants ever drift apart.
//
// Bump a version by editing the constant and the workflow together; the
// test enforces that they move in lockstep.
package tools

const (
	// Staticcheck is honnef.co's checker suite; its findings gate the
	// lint job alongside the in-tree surveyorlint analyzers.
	Staticcheck = "honnef.co/go/tools/cmd/staticcheck@2024.1.1"

	// Govulncheck scans the (empty) dependency graph and the standard
	// library version for known vulnerabilities.
	Govulncheck = "golang.org/x/vuln/cmd/govulncheck@v1.1.3"
)
