package testkit

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/annotate"
	"repro/internal/corpus"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/pipeline"
)

// chaosSeed drives the fault selector; chaosRate quarantines roughly a
// fifth of the corpus, enough to shift every downstream statistic.
const (
	chaosSeed = 99
	chaosRate = 0.2
)

// stripQuarantine returns a shallow copy of res with the quarantine
// records cleared, so DiffResults can compare a faulted run against a
// clean run that never had any.
func stripQuarantine(res *pipeline.Result) *pipeline.Result {
	cp := *res
	cp.Quarantined = nil
	return &cp
}

// TestQuarantineDeterminism is the tentpole differential proof: a run with
// faults injected into the content-selected document set D must be
// bit-identical — evidence counts, groups, EM traces, opinions — to a
// clean run over the corpus with D removed, for every worker count.
func TestQuarantineDeterminism(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	kept, faulted := Partition(docs, chaosSeed, chaosRate)
	if len(faulted) == 0 || len(faulted) == len(docs) {
		t.Fatalf("selector picked %d of %d documents — useless fixture", len(faulted), len(docs))
	}
	cfg := pipeline.Config{Rho: 10, Workers: 4}
	clean := pipeline.Run(kept, w.KB, w.Lex, cfg)

	for _, workers := range []int{1, 2, 8} {
		cfg := cfg
		cfg.Workers = workers
		cfg.Fault = PanicFault(chaosSeed, chaosRate)
		res, err := pipeline.RunContext(context.Background(), docs, w.KB, w.Lex, cfg)
		if err != nil {
			t.Fatalf("workers %d: fault injection must not fail the run: %v", workers, err)
		}
		if len(res.Quarantined) != len(faulted) {
			t.Fatalf("workers %d: quarantined %d documents, selector picked %d",
				workers, len(res.Quarantined), len(faulted))
		}
		for i, q := range res.Quarantined {
			if q.Doc != faulted[i] {
				t.Errorf("workers %d: quarantine %d is doc %d, want %d", workers, i, q.Doc, faulted[i])
			}
			if !strings.Contains(q.Reason, "injected fault") {
				t.Errorf("workers %d: quarantine reason %q does not name the fault", workers, q.Reason)
			}
		}
		if diffs := DiffResults(stripQuarantine(res), clean); len(diffs) > 0 {
			t.Errorf("workers %d: faulted run diverges from clean run over survivors:\n  %s",
				workers, strings.Join(diffs, "\n  "))
		}
	}
}

// poisonAnnotated corrupts the first extractable sentence of doc so the
// extractor panics on it: an adjective whose amod head points far out of
// range sends FirstChildWith indexing past the children table.
func poisonAnnotated(doc *annotate.Document) bool {
	for si := range doc.Sentence {
		s := &doc.Sentence[si]
		if s.Tree != nil && len(s.Mentions) > 0 && len(s.Tree.Nodes) > 0 {
			n := &s.Tree.Nodes[0]
			n.Tag = lexicon.Adj
			n.Rel = depparse.Amod
			n.Head = 1 << 30
			return true
		}
	}
	return false
}

// TestQuarantineAnnotatedPath asserts the panic boundary of the
// pre-annotated entry point: documents whose annotations are corrupted
// enough to panic the extractor are quarantined, and the rest of the run
// matches a clean run without them.
func TestQuarantineAnnotatedPath(t *testing.T) {
	w := NewWorld(2, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 4}
	annotated := pipeline.Annotate(w.Docs(), w.KB, w.Lex, 4)

	poisoned := make([]int, 0, 2)
	for _, di := range []int{len(annotated) / 3, 2 * len(annotated) / 3} {
		if poisonAnnotated(&annotated[di]) {
			poisoned = append(poisoned, di)
		}
	}
	if len(poisoned) == 0 {
		t.Fatal("no sentence with a tree and mentions to poison — fixture too small")
	}

	res, err := pipeline.RunAnnotatedContext(context.Background(), annotated, w.KB, w.Lex, cfg)
	if err != nil {
		t.Fatalf("poisoned run must not fail: %v", err)
	}
	if len(res.Quarantined) != len(poisoned) {
		t.Fatalf("quarantined %v, poisoned docs %v", res.Quarantined, poisoned)
	}
	for i, q := range res.Quarantined {
		if q.Doc != poisoned[i] {
			t.Errorf("quarantine %d is doc %d, want %d", i, q.Doc, poisoned[i])
		}
	}

	survivors := make([]int, 0, len(annotated))
	for di := range annotated {
		keep := true
		for _, p := range poisoned {
			if di == p {
				keep = false
			}
		}
		if keep {
			survivors = append(survivors, di)
		}
	}
	keptDocs := make([]corpus.Document, 0, len(survivors))
	for _, di := range survivors {
		keptDocs = append(keptDocs, w.Docs()[di])
	}
	clean := pipeline.Run(keptDocs, w.KB, w.Lex, cfg)
	if diffs := DiffResults(stripQuarantine(res), clean); len(diffs) > 0 {
		t.Errorf("poisoned annotated run diverges from clean run over survivors:\n  %s",
			strings.Join(diffs, "\n  "))
	}
}

// waitForGoroutines polls until the goroutine count drops back to the
// baseline (plus slack for runtime helpers), failing the test if it never
// does — the leak detector for the cancellation paths.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	// ~5s budget as a poll count, not a wall-clock deadline (detrand
	// forbids time.Now in this package, tests included).
	for tries := 0; tries < 500; tries++ {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestCancellationConsistency cancels mid-run from inside the pipeline
// (via the fault hook, after a fixed number of documents) and asserts the
// partial result is exactly the clean result over the consumed prefix
// minus nothing — every claimed document committed exactly once — and
// that no goroutines leak.
func TestCancellationConsistency(t *testing.T) {
	w := NewWorld(3, diffScale)
	docs := w.Docs()
	baseline := runtime.NumGoroutine()

	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var processed atomic.Int64
		cfg := pipeline.Config{Rho: 10, Workers: workers}
		cfg.Fault = func(int, *corpus.Document) {
			if processed.Add(1) == int64(len(docs)/3) {
				cancel()
			}
		}
		res, err := pipeline.RunContext(ctx, docs, w.KB, w.Lex, cfg)
		cancel()
		waitForGoroutines(t, baseline)
		var pe *pipeline.PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("workers %d: want *PartialError, got %v", workers, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers %d: cause %v, want context.Canceled", workers, pe.Err)
		}
		if pe.Result != res {
			t.Errorf("workers %d: PartialError.Result is not the returned result", workers)
		}
		if pe.Consumed >= len(docs) || pe.Consumed < len(docs)/3 {
			t.Fatalf("workers %d: consumed %d of %d — cancellation fired too early or not at all",
				workers, pe.Consumed, len(docs))
		}
		if pe.Processed != res.Documents || pe.Processed != pe.Consumed {
			t.Fatalf("workers %d: processed %d, consumed %d, Documents %d — inconsistent partial counts",
				workers, pe.Processed, pe.Consumed, res.Documents)
		}
		clean := pipeline.Run(docs[:pe.Consumed], w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
		if diffs := DiffResults(res, clean); len(diffs) > 0 {
			t.Errorf("workers %d: partial result diverges from clean run over consumed prefix:\n  %s",
				workers, strings.Join(diffs, "\n  "))
		}
	}
}

// corpusJSONL serialises the world's documents the way cmd/corpusgen would.
func corpusJSONL(t *testing.T, docs []corpus.Document) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := corpus.WriteJSONL(&buf, docs); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

// TestStreamMatchesRun asserts RunStream over a clean JSONL stream is
// bit-identical to Run over the same documents in memory, for every worker
// count, including through a byte-at-a-time short reader.
func TestStreamMatchesRun(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	data := corpusJSONL(t, docs)
	clean := pipeline.Run(docs, w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})

	for _, workers := range []int{1, 2, 8} {
		it := corpus.NewIterator(&ShortReader{R: bytes.NewReader(data), N: 4096}, corpus.IteratorConfig{})
		res, err := pipeline.RunStream(context.Background(), it, w.KB, w.Lex,
			pipeline.Config{Rho: 10, Workers: workers})
		if err != nil {
			t.Fatalf("workers %d: clean stream failed: %v", workers, err)
		}
		if res.SkippedLines != 0 {
			t.Errorf("workers %d: clean stream skipped %d lines", workers, res.SkippedLines)
		}
		if diffs := DiffResults(res, clean); len(diffs) > 0 {
			t.Errorf("workers %d: stream run diverges from in-memory run:\n  %s",
				workers, strings.Join(diffs, "\n  "))
		}
	}
}

// TestLenientStreamEquivalence interleaves garbage and oversized lines
// into the JSONL stream and asserts the lenient run skips exactly them and
// otherwise matches the in-memory run over the valid documents.
func TestLenientStreamEquivalence(t *testing.T) {
	w := NewWorld(2, diffScale)
	docs := w.Docs()
	clean := pipeline.Run(docs, w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})

	var buf bytes.Buffer
	garbage := 0
	oversized := strings.Repeat("x", 96<<10)
	for i := range docs {
		if i%7 == 0 {
			buf.WriteString("{not json}\n")
			garbage++
		}
		if i%13 == 0 {
			buf.WriteString(oversized + "\n")
			garbage++
		}
		if err := corpus.WriteJSONL(&buf, docs[i:i+1]); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
	}
	it := corpus.NewIterator(&buf, corpus.IteratorConfig{Lenient: true, MaxLineBytes: 64 << 10})
	res, err := pipeline.RunStream(context.Background(), it, w.KB, w.Lex,
		pipeline.Config{Rho: 10, Workers: 8})
	if err != nil {
		t.Fatalf("lenient stream failed: %v", err)
	}
	if res.SkippedLines != int64(garbage) {
		t.Errorf("skipped %d lines, injected %d", res.SkippedLines, garbage)
	}
	if diffs := DiffResults(res, clean); len(diffs) > 0 {
		t.Errorf("lenient stream diverges from in-memory run over valid documents:\n  %s",
			strings.Join(diffs, "\n  "))
	}
}

// TestStreamReadErrorPartial kills the underlying reader mid-stream and
// asserts RunStream surfaces the cause in a *PartialError whose result is
// the clean run over the documents that made it through.
func TestStreamReadErrorPartial(t *testing.T) {
	w := NewWorld(3, diffScale)
	docs := w.Docs()
	data := corpusJSONL(t, docs)
	baseline := runtime.NumGoroutine()

	it := corpus.NewIterator(&FailingReader{R: bytes.NewReader(data), N: int64(len(data) / 2)},
		corpus.IteratorConfig{})
	res, err := pipeline.RunStream(context.Background(), it, w.KB, w.Lex,
		pipeline.Config{Rho: 10, Workers: 4})
	waitForGoroutines(t, baseline)
	var pe *pipeline.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("cause %v, want ErrInjected", pe.Err)
	}
	if pe.Consumed == 0 || pe.Consumed >= len(docs) {
		t.Fatalf("consumed %d of %d — fault fired at the wrong time", pe.Consumed, len(docs))
	}
	if pe.Processed != res.Documents || pe.Processed != pe.Consumed {
		t.Fatalf("processed %d, consumed %d, Documents %d — inconsistent partial counts",
			pe.Processed, pe.Consumed, res.Documents)
	}
	clean := pipeline.Run(docs[:pe.Consumed], w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
	if diffs := DiffResults(res, clean); len(diffs) > 0 {
		t.Errorf("partial stream result diverges from clean run over consumed prefix:\n  %s",
			strings.Join(diffs, "\n  "))
	}
}

// TestStreamCancelNoLeak cancels a streaming run mid-flight and asserts
// the feeder and workers all exit and the partial counts stay consistent.
func TestStreamCancelNoLeak(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	data := corpusJSONL(t, docs)
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	var processed atomic.Int64
	cfg := pipeline.Config{Rho: 10, Workers: 4, StreamBuffer: 2}
	cfg.Fault = func(int, *corpus.Document) {
		if processed.Add(1) == int64(len(docs)/4) {
			cancel()
		}
	}
	it := corpus.NewIterator(bytes.NewReader(data), corpus.IteratorConfig{})
	res, err := pipeline.RunStream(ctx, it, w.KB, w.Lex, cfg)
	cancel()
	waitForGoroutines(t, baseline)
	var pe *pipeline.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause %v, want context.Canceled", pe.Err)
	}
	if pe.Consumed >= len(docs) || pe.Consumed == 0 {
		t.Fatalf("consumed %d of %d — cancellation fired too early or not at all", pe.Consumed, len(docs))
	}
	clean := pipeline.Run(docs[:pe.Consumed], w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
	if diffs := DiffResults(res, clean); len(diffs) > 0 {
		t.Errorf("cancelled stream result diverges from clean run over consumed prefix:\n  %s",
			strings.Join(diffs, "\n  "))
	}
}
