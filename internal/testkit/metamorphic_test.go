package testkit

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// The metamorphic suite checks the invariances the paper's aggregation
// model implies, with no oracle needed: transformed input, predictable
// output relation. Related aggregation systems (Subjective Databases;
// unsupervised opinion aggregation) rely on exactly these symmetries.

// TestPermutationInvariance: the pipeline result must not depend on
// document order — evidence counting is commutative.
func TestPermutationInvariance(t *testing.T) {
	w := NewWorld(1, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 4}
	base := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)

	rng := stats.NewRNG(99)
	for trial := 0; trial < 3; trial++ {
		shuffled := append([]corpus.Document(nil), w.Docs()...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		res := pipeline.Run(shuffled, w.KB, w.Lex, cfg)
		if diffs := DiffResults(base, res); len(diffs) > 0 {
			t.Errorf("trial %d: document permutation changed the result:\n  %s",
				trial, strings.Join(diffs, "\n  "))
		}
	}
}

// TestWorkerCountInvariance: the worker count is a schedule knob, never a
// semantic one.
func TestWorkerCountInvariance(t *testing.T) {
	w := NewWorld(2, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 1}
	base := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)
	for _, workers := range []int{2, 3, 5, 8, 16} {
		cfg.Workers = workers
		res := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)
		if diffs := DiffResults(base, res); len(diffs) > 0 {
			t.Errorf("workers=%d changed the result:\n  %s", workers, strings.Join(diffs, "\n  "))
		}
	}
}

// flipStore swaps every ⟨C+, C−⟩ tuple — the evidence-level image of
// negating every sentence in the corpus.
func flipStore(s *evidence.Store) *evidence.Store {
	out := evidence.NewStore()
	for _, e := range s.Snapshot() {
		out.AddCounts(e.Key, evidence.Counts{Pos: e.Neg, Neg: e.Pos})
	}
	return out
}

// TestPolarityFlipSymmetry: negating every statement must flip decisions
// and swap the fitted emission rates np+S and np−S. The model is symmetric
// up to the EM initialisation heuristics, so rates are compared with a
// tolerance and decisions only where the original run was confident.
func TestPolarityFlipSymmetry(t *testing.T) {
	w := NewWorld(1, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 4}
	orig := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)
	flipped := pipeline.RunFromStore(flipStore(orig.Store), w.KB, cfg)

	if len(flipped.Groups) != len(orig.Groups) {
		t.Fatalf("flip changed the group set: %d vs %d", len(flipped.Groups), len(orig.Groups))
	}
	var checkedGroups, checkedDecisions int
	for gi := range orig.Groups {
		g := &orig.Groups[gi]
		fg, ok := flipped.Group(g.Key.Type, g.Key.Property)
		if !ok {
			t.Fatalf("group %v lost by flip", g.Key)
		}
		// Identifiability guard: a group whose dominant-opinion split is
		// near 50/50 can fit either labelling; compare rates only when the
		// original fit is well-separated.
		if g.Model.Params.NpPlus < 2*g.Model.Params.NpMinus {
			continue
		}
		checkedGroups++
		if !approxEqual(fg.Model.Params.NpPlus, g.Model.Params.NpMinus, 0.35) ||
			!approxEqual(fg.Model.Params.NpMinus, g.Model.Params.NpPlus, 0.35) {
			t.Errorf("group %v: flipped rates (np+=%.2f np-=%.2f) are not the swap of (np+=%.2f np-=%.2f)",
				g.Key, fg.Model.Params.NpPlus, fg.Model.Params.NpMinus,
				g.Model.Params.NpPlus, g.Model.Params.NpMinus)
		}
		for i, eo := range g.Entities {
			feo := fg.Entities[i]
			if feo.Entity != eo.Entity {
				t.Fatalf("group %v: entity order changed by flip", g.Key)
			}
			if feo.Pos != eo.Neg || feo.Neg != eo.Pos {
				t.Fatalf("group %v entity %v: counts not swapped", g.Key, eo.Entity)
			}
			// Decisions must flip wherever the original was confident.
			if math.Abs(eo.Probability-0.5) < 0.2 || math.Abs(feo.Probability-0.5) < 0.2 {
				continue
			}
			checkedDecisions++
			if feo.Opinion != -eo.Opinion {
				t.Errorf("group %v entity %v: opinion %v did not flip (flipped run says %v, p=%.3f vs %.3f)",
					g.Key, eo.Entity, eo.Opinion, feo.Opinion, eo.Probability, feo.Probability)
			}
		}
	}
	if checkedGroups == 0 || checkedDecisions == 0 {
		t.Fatalf("symmetry check was vacuous: %d groups, %d decisions compared",
			checkedGroups, checkedDecisions)
	}
}

// TestPosteriorFlipSymmetry pins the model-level identity behind the
// corpus-level test: swapping a tuple AND the emission rates complements
// the posterior exactly.
func TestPosteriorFlipSymmetry(t *testing.T) {
	m := core.Model{Params: core.Params{PA: 0.88, NpPlus: 40, NpMinus: 3}}
	sw := core.Model{Params: core.Params{PA: 0.88, NpPlus: 3, NpMinus: 40}}
	for _, c := range []core.Tuple{
		{Pos: 0, Neg: 0}, {Pos: 5, Neg: 1}, {Pos: 1, Neg: 5},
		{Pos: 40, Neg: 2}, {Pos: 0, Neg: 7}, {Pos: 13, Neg: 13},
	} {
		p := m.PosteriorPositive(c)
		q := sw.PosteriorPositive(core.Tuple{Pos: c.Neg, Neg: c.Pos})
		if math.Abs((1-p)-q) > 1e-9 {
			t.Errorf("tuple %+v: posterior %v, swapped %v; want complements", c, p, q)
		}
	}
}

// TestDuplicationStability: doubling the corpus doubles every counter
// exactly and must not overturn confident opinions — more of the same
// evidence can only sharpen decisions.
func TestDuplicationStability(t *testing.T) {
	w := NewWorld(3, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 4}
	orig := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)
	doubled := pipeline.Run(append(append([]corpus.Document(nil), w.Docs()...), w.Docs()...),
		w.KB, w.Lex, cfg)

	if doubled.TotalStatements != 2*orig.TotalStatements {
		t.Fatalf("TotalStatements: %d, want exactly 2×%d", doubled.TotalStatements, orig.TotalStatements)
	}
	if doubled.Sentences != 2*orig.Sentences {
		t.Fatalf("Sentences: %d, want exactly 2×%d", doubled.Sentences, orig.Sentences)
	}
	if doubled.DistinctPairs != orig.DistinctPairs {
		t.Fatalf("DistinctPairs changed: %d vs %d", doubled.DistinctPairs, orig.DistinctPairs)
	}
	snapO, snapD := orig.Store.Snapshot(), doubled.Store.Snapshot()
	if len(snapO) != len(snapD) {
		t.Fatalf("store keys changed: %d vs %d", len(snapO), len(snapD))
	}
	for i := range snapO {
		if snapD[i].Key != snapO[i].Key ||
			snapD[i].Pos != 2*snapO[i].Pos || snapD[i].Neg != 2*snapO[i].Neg {
			t.Fatalf("entry %d: %+v is not the exact doubling of %+v", i, snapD[i], snapO[i])
		}
	}

	checked, flipped := 0, 0
	for gi := range orig.Groups {
		g := &orig.Groups[gi]
		dg, ok := doubled.Group(g.Key.Type, g.Key.Property)
		if !ok {
			t.Fatalf("group %v lost by duplication", g.Key)
		}
		for i, eo := range g.Entities {
			if math.Abs(eo.Probability-0.5) < 0.2 {
				continue
			}
			checked++
			if dg.Entities[i].Opinion != eo.Opinion {
				flipped++
				t.Logf("group %v entity %v: %v (p=%.3f) became %v (p=%.3f)",
					g.Key, eo.Entity, eo.Opinion, eo.Probability,
					dg.Entities[i].Opinion, dg.Entities[i].Probability)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no confident opinions to check")
	}
	if rate := float64(flipped) / float64(checked); rate > 0.01 {
		t.Errorf("duplication overturned %d of %d confident opinions (%.1f%%)",
			flipped, checked, 100*rate)
	}
}

// TestMergeCommutativeAssociative: shard merging (the pipeline's reduce
// step) must not depend on merge order or grouping.
func TestMergeCommutativeAssociative(t *testing.T) {
	rng := stats.NewRNG(7)
	randomStore := func(n int) *evidence.Store {
		s := evidence.NewStore()
		for i := 0; i < n; i++ {
			st := extract.Statement{
				Entity:   kb.EntityID(rng.IntRange(0, 50)),
				Property: []string{"cute", "big", "dangerous", "calm"}[rng.IntRange(0, 3)],
				Polarity: extract.Positive,
			}
			if rng.Bernoulli(0.3) {
				st.Polarity = extract.Negative
			}
			s.Add(st)
		}
		return s
	}
	clone := func(s *evidence.Store) *evidence.Store {
		out := evidence.NewStore()
		out.Merge(s)
		return out
	}
	equal := func(a, b *evidence.Store) bool {
		sa, sb := a.Snapshot(), b.Snapshot()
		if len(sa) != len(sb) {
			return false
		}
		for i := range sa {
			if sa[i] != sb[i] {
				return false
			}
		}
		return true
	}

	a, b, c := randomStore(400), randomStore(300), randomStore(200)

	ab := clone(a)
	ab.Merge(b)
	ba := clone(b)
	ba.Merge(a)
	if !equal(ab, ba) {
		t.Error("Merge is not commutative: A∪B != B∪A")
	}

	abc1 := clone(ab)
	abc1.Merge(c)
	bc := clone(b)
	bc.Merge(c)
	abc2 := clone(a)
	abc2.Merge(bc)
	if !equal(abc1, abc2) {
		t.Error("Merge is not associative: (A∪B)∪C != A∪(B∪C)")
	}

	// Identity: merging an empty store changes nothing.
	ae := clone(a)
	ae.Merge(evidence.NewStore())
	if !equal(a, ae) {
		t.Error("merging the empty store changed the operand")
	}
}

// TestShardedExtractionMerge: splitting the corpus into shards, running
// extraction per shard, and merging the stores must equal the single-run
// store — the map/reduce decomposition the paper ran on 5000 nodes.
func TestShardedExtractionMerge(t *testing.T) {
	w := NewTinyWorld(9, 0.6)
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	whole := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)

	merged := evidence.NewStore()
	docs := w.Docs()
	for lo := 0; lo < len(docs); lo += 7 {
		hi := lo + 7
		if hi > len(docs) {
			hi = len(docs)
		}
		part := pipeline.Run(docs[lo:hi], w.KB, w.Lex, cfg)
		merged.Merge(part.Store)
	}
	mergedRes := pipeline.RunFromStore(merged, w.KB, cfg)
	if diffs := diffGroupsOnly(whole, mergedRes); len(diffs) > 0 {
		t.Errorf("sharded extraction + merge diverges from single run:\n  %s",
			strings.Join(diffs, "\n  "))
	}
}

// TestEpochBoundaryInvariance: the incremental miner's final snapshot must
// not depend on WHICH epoch a document lands in, only on the global
// multiset of documents — the epoch-level sibling of document-permutation
// invariance. Contiguous, round-robin, and shuffled assignments of the
// same corpus into the same number of epochs must publish bit-identical
// final snapshots.
func TestEpochBoundaryInvariance(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 4}
	const n = 4

	base, _, err := RunEpochs(SplitContiguous(docs, n), w.KB, w.Lex, cfg)
	if err != nil {
		t.Fatal(err)
	}

	roundRobin := make([][]corpus.Document, n)
	for i := range docs {
		roundRobin[i%n] = append(roundRobin[i%n], docs[i])
	}
	res, _, err := RunEpochs(roundRobin, w.KB, w.Lex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := DiffResults(base, res); len(diffs) > 0 {
		t.Errorf("round-robin epoch assignment changed the final snapshot:\n  %s",
			strings.Join(diffs, "\n  "))
	}

	rng := stats.NewRNG(41)
	for trial := 0; trial < 2; trial++ {
		shuffled := append([]corpus.Document(nil), docs...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		res, _, err := RunEpochs(SplitContiguous(shuffled, n), w.KB, w.Lex, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if diffs := DiffResults(base, res); len(diffs) > 0 {
			t.Errorf("trial %d: shuffled epoch assignment changed the final snapshot:\n  %s",
				trial, strings.Join(diffs, "\n  "))
		}
	}
}

func approxEqual(a, b, relTol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= relTol*scale
}
