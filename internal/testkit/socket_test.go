package testkit

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/pipeline"
)

// startSocketWorker runs a ServeSocket worker server on a fresh loopback
// listener until the test ends, and returns its dial address. The server
// mirrors `surveyor -dist-listen`: one shard attempt per accepted
// connection, heartbeats while mining.
func startSocketWorker(t *testing.T, w *World, cfg pipeline.Config, heartbeat time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		dist.ServeSocket(ctx, ln, w.KB, w.Lex, cfg, dist.SocketServerConfig{Heartbeat: heartbeat})
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return ln.Addr().String()
}

// TestSocketDistributedMatchesBatch runs the tentpole differential over
// the TCP transport: shards dialed out to standalone socket workers —
// the same protocol frames as the pipe transports, plus heartbeats the
// coordinator strips — must produce a run bit-identical to batch for
// every worker count.
func TestSocketDistributedMatchesBatch(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)
	addrs := []string{
		startSocketWorker(t, w, cfg, 0),
		startSocketWorker(t, w, cfg, 0),
	}
	for _, shards := range []int{1, 2, 4, 8} {
		res, failed, err := dist.Mine(context.Background(), docs, w.KB, dist.Config{
			Shards:    shards,
			Transport: &dist.SocketTransport{Addrs: addrs, Seed: 1},
			Pipeline:  cfg,
		})
		if err != nil || len(failed) != 0 {
			t.Fatalf("shards %d: err=%v failed=%v", shards, err, failed)
		}
		if diffs := DiffResults(batch, res); len(diffs) > 0 {
			t.Errorf("shards %d: socket run diverges from batch:\n  %s",
				shards, strings.Join(diffs, "\n  "))
		}
	}
}

// TestSocketHeartbeatsObserved turns the workers' heartbeat interval down
// to a millisecond: the coordinator must strip every liveness frame from
// the protocol stream (the run still matches batch) while counting them
// on the heartbeat counter and the per-shard cluster column.
func TestSocketHeartbeatsObserved(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	// A sleep-only fault slows extraction without touching its output, so
	// each shard is guaranteed to span several heartbeat intervals even on
	// a fast machine; the batch side runs the same config, and a pure
	// delay cannot move a single bit of the result.
	cfg := pipeline.Config{Rho: 10, Workers: 2,
		Fault: func(int, *corpus.Document) { time.Sleep(50 * time.Microsecond) }}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)
	addr := startSocketWorker(t, w, cfg, time.Millisecond)
	const shards = 2
	o := coordRunObs()
	reduceCfg := cfg
	reduceCfg.Obs = o
	res, failed, err := dist.Mine(context.Background(), docs, w.KB, dist.Config{
		Shards:    shards,
		Transport: &dist.SocketTransport{Addrs: []string{addr}, Seed: 1, Obs: o},
		Pipeline:  reduceCfg,
	})
	if err != nil || len(failed) != 0 {
		t.Fatalf("err=%v failed=%v", err, failed)
	}
	if diffs := DiffResults(batch, res); len(diffs) > 0 {
		t.Errorf("heartbeat run diverges from batch:\n  %s", strings.Join(diffs, "\n  "))
	}
	if got := metricValues(o)["surveyor_dist_heartbeats_total"]; got < 1 {
		t.Errorf("heartbeats_total = %v, want at least 1", got)
	}
	var perShard int64
	for _, sv := range o.Cluster.Snapshot().Shards {
		perShard += sv.Heartbeats
	}
	if perShard < 1 {
		t.Error("no heartbeats recorded on any shard's cluster column")
	}
}

// TestSocketReconnectSkipsDeadEndpoint points the transport at a dead
// endpoint first: every dial to it must fail, back off, and rotate to the
// live worker — the reconnect path — without costing the run anything.
func TestSocketReconnectSkipsDeadEndpoint(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)

	// A listener opened and immediately closed: a dead worker host whose
	// port refuses connections.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	live := startSocketWorker(t, w, cfg, 0)

	const shards = 2
	res, failed, err := dist.Mine(context.Background(), docs, w.KB, dist.Config{
		Shards: shards,
		Transport: &dist.SocketTransport{
			Addrs:          []string{deadAddr, live},
			ConnectBackoff: time.Millisecond,
			Seed:           1,
		},
		Pipeline: cfg,
	})
	if err != nil || len(failed) != 0 {
		t.Fatalf("dead endpoint must be skipped: err=%v failed=%v", err, failed)
	}
	if diffs := DiffResults(batch, res); len(diffs) > 0 {
		t.Errorf("reconnect run diverges from batch:\n  %s", strings.Join(diffs, "\n  "))
	}
}
