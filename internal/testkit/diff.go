package testkit

import (
	"fmt"

	"repro/internal/evidence"
	"repro/internal/pipeline"
)

// maxDiffs bounds the number of mismatch lines reported per comparison so
// a systematic failure doesn't drown the test log.
const maxDiffs = 20

type differ struct {
	out []string
}

func (d *differ) addf(format string, args ...any) {
	if len(d.out) < maxDiffs {
		d.out = append(d.out, fmt.Sprintf(format, args...))
	}
}

func (d *differ) check(equal bool, format string, args ...any) {
	if !equal {
		d.addf(format, args...)
	}
}

// DiffReference compares a parallel pipeline.Result against the
// single-threaded reference, field by field and bit for bit (floats
// included: the phases are deterministic, only the schedule differs).
// The returned slice is empty when the two agree; otherwise it holds one
// human-readable line per mismatch (capped).
func DiffReference(ref *Reference, res *pipeline.Result) []string {
	d := &differ{}
	d.check(ref.Documents == res.Documents, "Documents: ref %d, got %d", ref.Documents, res.Documents)
	d.check(ref.Sentences == res.Sentences, "Sentences: ref %d, got %d", ref.Sentences, res.Sentences)
	d.check(ref.TotalStatements == res.TotalStatements,
		"TotalStatements: ref %d, got %d", ref.TotalStatements, res.TotalStatements)
	d.check(ref.DistinctPairs == res.DistinctPairs,
		"DistinctPairs: ref %d, got %d", ref.DistinctPairs, res.DistinctPairs)
	d.check(ref.PairsBeforeFilter == res.PairsBeforeFilter,
		"PairsBeforeFilter: ref %d, got %d", ref.PairsBeforeFilter, res.PairsBeforeFilter)

	d.diffCounts(ref.Counts, res.Store)
	d.diffGroups(ref.Groups, res.Groups)
	return d.out
}

// DiffResults compares two parallel pipeline results (used by the
// metamorphic invariance tests). Timings are ignored — they are the one
// field a schedule may legitimately change.
func DiffResults(a, b *pipeline.Result) []string {
	d := &differ{}
	d.check(a.Documents == b.Documents, "Documents: %d vs %d", a.Documents, b.Documents)
	d.check(a.Sentences == b.Sentences, "Sentences: %d vs %d", a.Sentences, b.Sentences)
	d.check(a.TotalStatements == b.TotalStatements,
		"TotalStatements: %d vs %d", a.TotalStatements, b.TotalStatements)
	d.check(a.DistinctPairs == b.DistinctPairs, "DistinctPairs: %d vs %d", a.DistinctPairs, b.DistinctPairs)
	d.check(a.PairsBeforeFilter == b.PairsBeforeFilter,
		"PairsBeforeFilter: %d vs %d", a.PairsBeforeFilter, b.PairsBeforeFilter)
	d.diffQuarantined(a.Quarantined, b.Quarantined)
	d.diffSnapshots(a.Store.Snapshot(), b.Store.Snapshot())
	d.diffGroups(a.Groups, b.Groups)
	return d.out
}

// diffQuarantined compares the quarantine records, which the determinism
// contract requires to be schedule-independent (sorted by document, with
// content-deterministic reasons). SkippedLines is deliberately not
// compared: the chaos suite diffs lenient-stream runs against in-memory
// runs of the surviving documents, where the skip counts legitimately
// differ.
func (d *differ) diffQuarantined(a, b []pipeline.Quarantined) {
	if len(a) != len(b) {
		d.addf("quarantined: %d vs %d", len(a), len(b))
		return
	}
	for i := range a {
		if a[i] != b[i] {
			d.addf("quarantined %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func (d *differ) diffCounts(want map[evidence.Key]evidence.Counts, store *evidence.Store) {
	snap := store.Snapshot()
	if len(snap) != len(want) {
		d.addf("store keys: ref %d, got %d", len(want), len(snap))
	}
	for _, e := range snap {
		if c, ok := want[e.Key]; !ok {
			d.addf("store has unexpected key %v/%q (+%d/-%d)", e.Entity, e.Property, e.Pos, e.Neg)
		} else if c != e.Counts {
			d.addf("counts for %v/%q: ref +%d/-%d, got +%d/-%d",
				e.Entity, e.Property, c.Pos, c.Neg, e.Pos, e.Neg)
		}
	}
}

func (d *differ) diffSnapshots(a, b []evidence.Entry) {
	if len(a) != len(b) {
		d.addf("store keys: %d vs %d", len(a), len(b))
		return
	}
	for i := range a {
		if a[i] != b[i] {
			d.addf("store entry %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func (d *differ) diffGroups(a, b []pipeline.GroupResult) {
	if len(a) != len(b) {
		d.addf("groups: %d vs %d", len(a), len(b))
		return
	}
	for i := range a {
		ga, gb := &a[i], &b[i]
		if ga.Key != gb.Key {
			d.addf("group %d key: %v vs %v", i, ga.Key, gb.Key)
			continue
		}
		d.check(ga.Model.Params == gb.Model.Params,
			"group %v params: %+v vs %+v", ga.Key, ga.Model.Params, gb.Model.Params)
		d.check(ga.Trace.Iterations == gb.Trace.Iterations,
			"group %v EM iterations: %d vs %d", ga.Key, ga.Trace.Iterations, gb.Trace.Iterations)
		if len(ga.Entities) != len(gb.Entities) {
			d.addf("group %v entities: %d vs %d", ga.Key, len(ga.Entities), len(gb.Entities))
			continue
		}
		for j := range ga.Entities {
			if ga.Entities[j] != gb.Entities[j] {
				d.addf("group %v entity %d: %+v vs %+v", ga.Key, j, ga.Entities[j], gb.Entities[j])
			}
		}
	}
}
