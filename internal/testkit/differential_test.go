package testkit

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/pipeline"
)

// diffScale keeps each full-KB pipeline run fast enough that the matrix of
// seeds × worker counts stays comfortable under the race detector.
const diffScale = 0.2

// TestDifferentialAgainstReference is the core oracle: for several corpus
// seeds and worker counts, the parallel pipeline must produce exactly the
// same result — counts, fitted parameters, per-entity opinions — as the
// single-threaded reference implementation.
func TestDifferentialAgainstReference(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		w := NewWorld(seed, diffScale)
		cfg := pipeline.Config{Rho: 10}
		ref := ReferenceRun(w.Docs(), w.KB, w.Lex, cfg)
		if len(ref.Groups) == 0 {
			t.Fatalf("seed %d: reference modelled no groups — fixture too small", seed)
		}
		if ref.TotalStatements == 0 {
			t.Fatalf("seed %d: reference extracted nothing", seed)
		}
		for _, workers := range []int{1, 2, 8} {
			cfg := cfg
			cfg.Workers = workers
			res := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)
			if diffs := DiffReference(ref, res); len(diffs) > 0 {
				t.Errorf("seed %d workers %d: pipeline diverges from reference:\n  %s",
					seed, workers, strings.Join(diffs, "\n  "))
			}
		}
	}
}

// TestDifferentialAnnotatedPath asserts the annotate-once path
// (Annotate + RunAnnotated) agrees with both the direct pipeline and the
// reference over annotations.
func TestDifferentialAnnotatedPath(t *testing.T) {
	w := NewWorld(1, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 4}

	direct := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)
	annotated := pipeline.Annotate(w.Docs(), w.KB, w.Lex, 4)
	viaAnn := pipeline.RunAnnotated(annotated, w.KB, w.Lex, cfg)
	if diffs := DiffResults(direct, viaAnn); len(diffs) > 0 {
		t.Errorf("RunAnnotated diverges from Run:\n  %s", strings.Join(diffs, "\n  "))
	}

	ref := ReferenceRunAnnotated(annotated, w.KB, w.Lex, cfg)
	if diffs := DiffReference(ref, viaAnn); len(diffs) > 0 {
		t.Errorf("RunAnnotated diverges from annotated reference:\n  %s", strings.Join(diffs, "\n  "))
	}
}

// TestDifferentialRunFromStore asserts the counts-only entry point agrees
// with the full run when fed the full run's own store.
func TestDifferentialRunFromStore(t *testing.T) {
	w := NewWorld(2, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 4}
	full := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)
	replay := pipeline.RunFromStore(full.Store, w.KB, cfg)
	if diffs := diffGroupsOnly(full, replay); len(diffs) > 0 {
		t.Errorf("RunFromStore diverges from Run:\n  %s", strings.Join(diffs, "\n  "))
	}
}

// diffGroupsOnly compares the modelled groups of two results, skipping the
// input-side statistics RunFromStore cannot know (Documents, Sentences).
func diffGroupsOnly(a, b *pipeline.Result) []string {
	d := &differ{}
	d.check(a.TotalStatements == b.TotalStatements,
		"TotalStatements: %d vs %d", a.TotalStatements, b.TotalStatements)
	d.check(a.DistinctPairs == b.DistinctPairs, "DistinctPairs: %d vs %d", a.DistinctPairs, b.DistinctPairs)
	d.diffGroups(a.Groups, b.Groups)
	return d.out
}

// TestReferenceSanity spot-checks that the reference itself recovers the
// latent truth on the tiny fixture — guarding against the oracle and the
// pipeline agreeing on a degenerate answer.
func TestReferenceSanity(t *testing.T) {
	w := NewTinyWorld(5, 1)
	ref := ReferenceRun(w.Docs(), w.KB, w.Lex, pipeline.Config{Rho: 20})
	kitten := w.KB.Candidates("kitten")[0]
	op, ok := ref.Opinion(kitten, "cute")
	if !ok {
		t.Fatal("kitten/cute not classified by reference")
	}
	if op.Opinion != core.OpinionPositive {
		t.Fatalf("reference says kitten cute = %v (p=%v)", op.Opinion, op.Probability)
	}
	spider := w.KB.Candidates("spider")[0]
	op, ok = ref.Opinion(spider, "cute")
	if !ok {
		t.Fatal("spider/cute not classified by reference")
	}
	if op.Opinion != core.OpinionNegative {
		t.Fatalf("reference says spider cute = %v (p=%v)", op.Opinion, op.Probability)
	}
}

// TestGroupLookupIndex pins the indexed Result.Group against a linear
// scan over Groups.
func TestGroupLookupIndex(t *testing.T) {
	w := NewWorld(3, diffScale)
	res := pipeline.Run(w.Docs(), w.KB, w.Lex, pipeline.Config{Rho: 10})
	if len(res.Groups) == 0 {
		t.Fatal("no groups modelled")
	}
	for i := range res.Groups {
		g, ok := res.Group(res.Groups[i].Key.Type, res.Groups[i].Key.Property)
		if !ok {
			t.Fatalf("Group(%v) not found via index", res.Groups[i].Key)
		}
		if g != &res.Groups[i] {
			t.Fatalf("Group(%v) returned a different GroupResult pointer", res.Groups[i].Key)
		}
	}
	if _, ok := res.Group("animal", "no-such-property"); ok {
		t.Fatal("lookup of unmodelled pair succeeded")
	}
}
