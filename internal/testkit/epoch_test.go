package testkit

import (
	"context"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/incremental"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/pipeline"
)

// The differential epoch harness: the load-bearing proof that incremental
// mining is bit-identical to batch. For any partition of the corpus into
// epochs, the snapshot the miner publishes after the last epoch must equal
// one batch run over the concatenation — evidence counters, group fits, EM
// traces, opinions, statistics — for every epoch count and worker count,
// including under chaos-injected quarantines.

// TestEpochDifferential sweeps epoch counts × worker counts against one
// batch oracle per seed (the batch result is worker-invariant, proven by
// TestWorkerCountInvariance).
func TestEpochDifferential(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		w := NewWorld(seed, diffScale)
		docs := w.Docs()
		batch := pipeline.Run(docs, w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
		if len(batch.Groups) == 0 {
			t.Fatalf("seed %d: batch modelled no groups — fixture too small", seed)
		}
		for _, epochs := range []int{1, 2, 5, 16} {
			for _, workers := range []int{1, 2, 8} {
				cfg := pipeline.Config{Rho: 10, Workers: workers}
				final, stats, err := RunEpochs(SplitContiguous(docs, epochs), w.KB, w.Lex, cfg)
				if err != nil {
					t.Fatalf("seed %d epochs %d workers %d: %v", seed, epochs, workers, err)
				}
				if diffs := DiffResults(final, batch); len(diffs) > 0 {
					t.Errorf("seed %d epochs %d workers %d: incremental diverges from batch:\n  %s",
						seed, epochs, workers, strings.Join(diffs, "\n  "))
				}
				var total int
				for _, st := range stats {
					total += st.Documents
				}
				if total != len(docs) {
					t.Errorf("seed %d epochs %d workers %d: epoch stats count %d documents, ingested %d",
						seed, epochs, workers, total, len(docs))
				}
				if got := stats[len(stats)-1].ModelledGroups; got != len(batch.Groups) {
					t.Errorf("seed %d epochs %d workers %d: final ModelledGroups %d, batch has %d",
						seed, epochs, workers, got, len(batch.Groups))
				}
			}
		}
	}
}

// TestEpochPrefixConsistency drives deliberately uneven split points —
// single-document epochs, an empty epoch (repeated cut), a giant middle —
// and asserts the published snapshot after EVERY epoch equals a batch run
// over the prefix ingested so far, not just after the last.
func TestEpochPrefixConsistency(t *testing.T) {
	w := NewWorld(3, diffScale)
	docs := w.Docs()
	cuts := []int{1, 1, 2, len(docs) / 2, len(docs) - 1}
	epochs := SplitAt(docs, cuts...)

	m := incremental.New(w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
	ingested := 0
	for i, epoch := range epochs {
		if _, err := m.Ingest(context.Background(), epoch); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		ingested += len(epoch)
		prefix := pipeline.Run(docs[:ingested], w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
		if diffs := DiffResults(m.Snapshot(), prefix); len(diffs) > 0 {
			t.Errorf("after epoch %d (%d docs ingested): snapshot diverges from batch prefix:\n  %s",
				i, ingested, strings.Join(diffs, "\n  "))
		}
	}
	if ingested != len(docs) {
		t.Fatalf("split covered %d of %d documents", ingested, len(docs))
	}
}

// TestEpochChaosDifferential extends the quarantine-determinism contract
// to the incremental path: with the seeded panic fault active, a document
// quarantined in whatever epoch it lands in must leave the final snapshot
// bit-identical to a batch run over the survivors, for every worker count
// — and the quarantine records must carry global (concatenation) indices.
func TestEpochChaosDifferential(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	kept, faulted := Partition(docs, chaosSeed, chaosRate)
	if len(faulted) == 0 || len(faulted) == len(docs) {
		t.Fatalf("selector picked %d of %d documents — useless fixture", len(faulted), len(docs))
	}
	clean := pipeline.Run(kept, w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})

	for _, workers := range []int{1, 2, 8} {
		cfg := pipeline.Config{Rho: 10, Workers: workers, Fault: PanicFault(chaosSeed, chaosRate)}
		final, stats, err := RunEpochs(SplitContiguous(docs, 5), w.KB, w.Lex, cfg)
		if err != nil {
			t.Fatalf("workers %d: fault injection must not fail an epoch: %v", workers, err)
		}
		if len(final.Quarantined) != len(faulted) {
			t.Fatalf("workers %d: quarantined %d documents, selector picked %d",
				workers, len(final.Quarantined), len(faulted))
		}
		for i, q := range final.Quarantined {
			if q.Doc != faulted[i] {
				t.Errorf("workers %d: quarantine %d is doc %d, want global index %d",
					workers, i, q.Doc, faulted[i])
			}
			if !strings.Contains(q.Reason, "injected fault") {
				t.Errorf("workers %d: quarantine reason %q does not name the fault", workers, q.Reason)
			}
		}
		var quarantined int
		for _, st := range stats {
			quarantined += st.Quarantined
		}
		if quarantined != len(faulted) {
			t.Errorf("workers %d: epoch stats count %d quarantined, selector picked %d",
				workers, quarantined, len(faulted))
		}
		if diffs := DiffResults(stripQuarantine(final), clean); len(diffs) > 0 {
			t.Errorf("workers %d: chaos-injected incremental run diverges from batch over survivors:\n  %s",
				workers, strings.Join(diffs, "\n  "))
		}
	}
}

// uniformEpochWorld builds the proportionality fixture: nTypes synthetic
// types of perType entities each — every (type, "cute") group has exactly
// perType tuples, so the fraction of groups an epoch touches equals the
// fraction of EM tuples it should re-fit. It returns the bulk corpus
// (evidence for every type) and a trailing epoch touching only the first
// type.
func uniformEpochWorld(nTypes, perType int) (*World, []corpus.Document) {
	b := kb.NewBuilder(7)
	types := b.RandomDomains(nTypes, perType)
	base := b.KB()
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	truth := func(e *kb.Entity, _ string) bool { return e.Attr("latent", 0) >= 0.5 }
	specs := make([]corpus.Spec, len(types))
	for i, typ := range types {
		specs[i] = corpus.Spec{Type: typ, Property: "cute",
			PA: 0.9, NpPlus: 12, NpMinus: 2, Truth: truth}
	}
	bulk := corpus.NewGenerator(base, specs, corpus.Config{Seed: 7, Scale: 1}).Generate()
	trailing := corpus.NewGenerator(base, specs[:1], corpus.Config{Seed: 8, Scale: 0.3}).Generate()
	return &World{KB: base, Lex: lex, Snapshot: bulk}, trailing.Documents
}

// TestEpochRefitProportional pins the point of being incremental: a
// trailing epoch touching under 10% of the modelled groups must re-fit
// under 10% of the EM tuples. (BenchmarkIncrementalRefit measures the
// same proportionality as wall-clock; this is the schedule-free version.)
// The fixture's groups are uniform in size, so the two fractions coincide
// by construction and the assertion checks the miner, not the corpus.
func TestEpochRefitProportional(t *testing.T) {
	w, trailing := uniformEpochWorld(12, 10)
	m := incremental.New(w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
	if _, err := m.Ingest(context.Background(), w.Docs()); err != nil {
		t.Fatal(err)
	}
	if st := m.Snapshot(); len(st.Groups) != 12 {
		t.Fatalf("bulk epoch modelled %d groups, want 12 — fixture drifted", len(st.Groups))
	}
	st, err := m.Ingest(context.Background(), trailing)
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	var totalTuples int64
	for gi := range snap.Groups {
		totalTuples += int64(len(snap.Groups[gi].Entities))
	}
	if st.RefitGroups == 0 || totalTuples == 0 {
		t.Fatalf("vacuous fixture: refit %d groups, %d total tuples", st.RefitGroups, totalTuples)
	}
	if 10*st.RefitGroups > st.ModelledGroups {
		t.Fatalf("trailing epoch touched %d of %d groups — fixture no longer sparse enough for the proportionality check",
			st.RefitGroups, st.ModelledGroups)
	}
	if 10*st.RefitTuples > totalTuples {
		t.Errorf("epoch touched %d/%d groups (<10%%) but re-fitted %d of %d tuples (>=10%%)",
			st.RefitGroups, st.ModelledGroups, st.RefitTuples, totalTuples)
	}
	// The differential contract must hold on this fixture too.
	all := append(append([]corpus.Document(nil), w.Docs()...), trailing...)
	batch := pipeline.Run(all, w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
	if diffs := DiffResults(snap, batch); len(diffs) > 0 {
		t.Errorf("incremental diverges from batch on the uniform fixture:\n  %s",
			strings.Join(diffs, "\n  "))
	}
	t.Logf("trailing epoch: %d/%d groups, %d/%d tuples re-fitted",
		st.RefitGroups, st.ModelledGroups, st.RefitTuples, totalTuples)
}

// TestEpochAtomicCancellation: a cancelled epoch must commit nothing — the
// published snapshot, and the snapshot after re-ingesting the same batch
// successfully, both match batch runs over what actually committed.
func TestEpochAtomicCancellation(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	half := len(docs) / 2
	m := incremental.New(w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
	if _, err := m.Ingest(context.Background(), docs[:half]); err != nil {
		t.Fatal(err)
	}
	before := m.Snapshot()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Ingest(cancelled, docs[half:]); err == nil {
		t.Fatal("ingest under a cancelled context reported success")
	}
	if m.Snapshot() != before {
		t.Fatal("a cancelled epoch republished the snapshot")
	}
	if m.Epochs() != 1 {
		t.Fatalf("a cancelled epoch was counted: %d epochs", m.Epochs())
	}
	prefix := pipeline.Run(docs[:half], w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
	if diffs := DiffResults(m.Snapshot(), prefix); len(diffs) > 0 {
		t.Errorf("snapshot after cancelled epoch diverges from committed prefix:\n  %s",
			strings.Join(diffs, "\n  "))
	}

	// The same batch ingested again (uncancelled) completes the corpus.
	if _, err := m.Ingest(context.Background(), docs[half:]); err != nil {
		t.Fatal(err)
	}
	batch := pipeline.Run(docs, w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 4})
	if diffs := DiffResults(m.Snapshot(), batch); len(diffs) > 0 {
		t.Errorf("retry after cancellation diverges from batch:\n  %s", strings.Join(diffs, "\n  "))
	}
}
