package testkit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/corpus"
)

// Deterministic fault injection for the chaos suite. Faults select their
// victims by seeded content hash — never by index, schedule, or time — so
// every worker count and interleaving quarantines exactly the same
// document set, which is what lets the differential tests assert
// bit-identical agreement between a faulted run and a clean run over the
// survivors.

// ErrInjected is the failure FailingReader reports once its byte budget is
// spent.
var ErrInjected = errors.New("testkit: injected read failure")

// chaosHash folds the seed and the document text through FNV-1a.
func chaosHash(seed uint64, text string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	io.WriteString(h, text)
	return h.Sum64()
}

// Selected reports whether the seeded chaos selector fires on doc. The
// decision depends only on (seed, doc.Text); rate is the approximate
// fraction of documents selected.
func Selected(seed uint64, rate float64, doc *corpus.Document) bool {
	return chaosHash(seed, doc.Text)%10000 < uint64(rate*10000)
}

// PanicFault returns a pipeline Config.Fault hook that panics on every
// document the seeded selector picks. The panic value is fixed per seed,
// so quarantine reasons are schedule-independent too.
func PanicFault(seed uint64, rate float64) func(int, *corpus.Document) {
	msg := fmt.Sprintf("testkit: injected fault (seed %d)", seed)
	return func(_ int, doc *corpus.Document) {
		if Selected(seed, rate, doc) {
			panic(msg)
		}
	}
}

// Partition splits a corpus by the seeded selector into the surviving
// documents and the sorted indices of the selected fault set — the "corpus
// minus D" side of the quarantine-determinism contract.
func Partition(docs []corpus.Document, seed uint64, rate float64) (kept []corpus.Document, faulted []int) {
	for i := range docs {
		if Selected(seed, rate, &docs[i]) {
			faulted = append(faulted, i)
		} else {
			kept = append(kept, docs[i])
		}
	}
	return kept, faulted
}

// FailingReader passes through the first N bytes of R, then returns
// ErrInjected — a corpus read dying mid-stream.
type FailingReader struct {
	R io.Reader
	N int64
}

// Read implements io.Reader.
func (f *FailingReader) Read(p []byte) (int, error) {
	if f.N <= 0 {
		return 0, ErrInjected
	}
	if int64(len(p)) > f.N {
		p = p[:f.N]
	}
	n, err := f.R.Read(p)
	f.N -= int64(n)
	if err == nil && f.N <= 0 {
		err = ErrInjected
	}
	return n, err
}

// ShortReader delivers at most N bytes per Read call, forcing downstream
// buffering code through its fragmentation paths.
type ShortReader struct {
	R io.Reader
	N int
}

// Read implements io.Reader.
func (s *ShortReader) Read(p []byte) (int, error) {
	if s.N > 0 && len(p) > s.N {
		p = p[:s.N]
	}
	return s.R.Read(p)
}
