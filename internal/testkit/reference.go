package testkit

import (
	"sort"

	"repro/internal/annotate"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/pipeline"
	"repro/internal/tagger"
)

// Reference is the output of ReferenceRun. It mirrors the comparable
// fields of pipeline.Result; Counts replaces the concurrent evidence
// store with a plain map.
type Reference struct {
	Counts            map[evidence.Key]evidence.Counts
	Groups            []pipeline.GroupResult
	TotalStatements   int64
	DistinctPairs     int
	PairsBeforeFilter int
	Sentences         int64
	Documents         int
}

// ReferenceRun executes Algorithm 1 with no concurrency and no shared
// machinery beyond the deterministic leaf primitives (tokenizer, tagger,
// parser, extractor, EM): one plain loop over documents accumulating into
// a plain map, one plain grouping pass, one sequential EM loop. It is the
// oracle the parallel pipeline.Run is differentially tested against.
func ReferenceRun(docs []corpus.Document, base *kb.KB, lex *lexicon.Lexicon, cfg pipeline.Config) *Reference {
	ref := &Reference{
		Counts:    map[evidence.Key]evidence.Counts{},
		Documents: len(docs),
	}
	posTagger := pos.New(lex)
	parser := depparse.New(lex)
	entTagger := tagger.New(base, lex)
	extractor := extract.NewVersion(lex, extractVersion(cfg))

	for _, doc := range docs {
		for _, sent := range token.SplitSentences(doc.Text) {
			ref.Sentences++
			tagged := posTagger.Tag(sent)
			mentions := entTagger.Tag(tagged)
			if len(mentions) == 0 {
				continue
			}
			tree := parser.Parse(tagged)
			for _, st := range extractor.Extract(tree, mentions) {
				ref.add(st)
			}
		}
	}
	ref.finish(base, cfg)
	return ref
}

// ReferenceRunAnnotated is ReferenceRun over a pre-annotated corpus,
// mirroring pipeline.RunAnnotated.
func ReferenceRunAnnotated(docs []annotate.Document, base *kb.KB, lex *lexicon.Lexicon, cfg pipeline.Config) *Reference {
	ref := &Reference{
		Counts:    map[evidence.Key]evidence.Counts{},
		Documents: len(docs),
	}
	extractor := extract.NewVersion(lex, extractVersion(cfg))
	for di := range docs {
		for si := range docs[di].Sentence {
			s := &docs[di].Sentence[si]
			ref.Sentences++
			if s.Tree == nil || len(s.Mentions) == 0 {
				continue
			}
			for _, st := range extractor.Extract(s.Tree, s.Mentions) {
				ref.add(st)
			}
		}
	}
	ref.finish(base, cfg)
	return ref
}

func extractVersion(cfg pipeline.Config) extract.Version {
	if cfg.Version == 0 {
		return extract.V4
	}
	return cfg.Version
}

func (r *Reference) add(st extract.Statement) {
	k := evidence.Key{Entity: st.Entity, Property: st.Property}
	c := r.Counts[k]
	if st.Polarity == extract.Positive {
		c.Pos++
	} else {
		c.Neg++
	}
	r.Counts[k] = c
	r.TotalStatements++
}

// finish performs grouping (with the ρ filter and zero-evidence
// expansion) and the per-group EM fit, sequentially.
func (r *Reference) finish(base *kb.KB, cfg pipeline.Config) {
	rho := cfg.Rho
	if rho == 0 {
		rho = 100
	}
	em := cfg.EM
	if em.MaxIterations == 0 {
		em = core.DefaultEMConfig()
	}
	r.DistinctPairs = len(r.Counts)

	// Group by (most notable type, property) of the evidence keys.
	type agg struct {
		counts map[kb.EntityID]evidence.Counts
		total  int64
	}
	// The oracle iterates its evidence in sorted order — the grouping fold
	// is commutative either way, but the reference implementation should
	// not even look order-dependent.
	ordered := make([]evidence.Key, 0, len(r.Counts))
	for k := range r.Counts {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].Entity != ordered[b].Entity {
			return ordered[a].Entity < ordered[b].Entity
		}
		return ordered[a].Property < ordered[b].Property
	})
	groups := map[evidence.GroupKey]*agg{}
	for _, k := range ordered {
		c := r.Counts[k]
		gk := evidence.GroupKey{Type: base.Get(k.Entity).Type, Property: k.Property}
		g := groups[gk]
		if g == nil {
			g = &agg{counts: map[kb.EntityID]evidence.Counts{}}
			groups[gk] = g
		}
		g.counts[k.Entity] = c
		g.total += c.Total()
	}
	r.PairsBeforeFilter = len(groups)

	var keys []evidence.GroupKey
	for gk, g := range groups {
		if g.total >= rho {
			keys = append(keys, gk)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Type != keys[b].Type {
			return keys[a].Type < keys[b].Type
		}
		return keys[a].Property < keys[b].Property
	})

	for _, gk := range keys {
		g := groups[gk]
		ids := base.OfType(gk.Type)
		tuples := make([]core.Tuple, len(ids))
		for i, id := range ids {
			c := g.counts[id]
			tuples[i] = core.Tuple{Pos: int(c.Pos), Neg: int(c.Neg)}
		}
		model, results, trace := core.FitAndClassify(tuples, em)
		gr := pipeline.GroupResult{Key: gk, Model: model, Trace: trace,
			Entities: make([]pipeline.EntityOpinion, len(ids))}
		for i, id := range ids {
			c := g.counts[id]
			gr.Entities[i] = pipeline.EntityOpinion{
				Entity:      id,
				Pos:         c.Pos,
				Neg:         c.Neg,
				Probability: results[i].Probability,
				Opinion:     results[i].Opinion,
			}
		}
		r.Groups = append(r.Groups, gr)
	}
}

// Opinion mirrors pipeline.Result.Opinion over the reference groups.
func (r *Reference) Opinion(e kb.EntityID, property string) (pipeline.EntityOpinion, bool) {
	for gi := range r.Groups {
		if r.Groups[gi].Key.Property != property {
			continue
		}
		for _, eo := range r.Groups[gi].Entities {
			if eo.Entity == e {
				return eo, true
			}
		}
	}
	return pipeline.EntityOpinion{}, false
}
