// Package testkit is the correctness scaffolding for the concurrent
// Surveyor pipeline: a deliberately simple single-threaded reference
// implementation of Algorithm 1 (ReferenceRun), comparison helpers that
// diff a parallel pipeline.Result against it field by field, and seeded
// corpus fixtures shared by the differential and metamorphic suites.
//
// The package exists so that every future scaling change (sharding,
// batching, caching) can be proven equivalent to a trivially auditable
// baseline instead of being eyeballed. The differential tests in this
// package assert bit-identical agreement — the pipeline's phases are
// deterministic given the same inputs, only the schedule varies — and the
// metamorphic tests check the aggregation invariances the model implies:
// document order, worker count, polarity flips, corpus duplication, and
// evidence-store merges.
package testkit

import (
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
)

// World is a seeded end-to-end fixture: knowledge base, lexicon (with the
// KB registered), and a generated snapshot with known latent truth.
type World struct {
	KB       *kb.KB
	Lex      *lexicon.Lexicon
	Snapshot *corpus.Snapshot
}

// Docs returns the snapshot's documents.
func (w *World) Docs() []corpus.Document { return w.Snapshot.Documents }

// NewWorld builds the standard differential-test fixture: the built-in
// evaluation knowledge base and the Table-2 specs, scaled down so a full
// pipeline run stays fast enough for race-enabled CI. Deterministic in
// seed.
func NewWorld(seed uint64, scale float64) *World {
	base := kb.Default(seed)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, corpus.Table2Specs(),
		corpus.Config{Seed: seed, Scale: scale}).Generate()
	return &World{KB: base, Lex: lex, Snapshot: snap}
}

// NewTinyWorld builds a minimal single-combination fixture (16 animals,
// one "cute" spec) for tests that need many pipeline runs — the
// metamorphic suite and the example smoke tests.
func NewTinyWorld(seed uint64, scale float64) *World {
	base := kb.New()
	animals := []struct {
		name string
		cute float64
	}{
		{"kitten", 0.98}, {"puppy", 0.97}, {"koala", 0.95}, {"panda", 0.93},
		{"otter", 0.9}, {"rabbit", 0.9}, {"squirrel", 0.85}, {"pony", 0.9},
		{"spider", 0.05}, {"scorpion", 0.03}, {"cobra", 0.05}, {"wasp", 0.04},
		{"rat", 0.2}, {"hyena", 0.15}, {"piranha", 0.06}, {"slug", 0.1},
	}
	for _, a := range animals {
		base.Add(kb.Entity{Name: a.name, Type: "animal",
			Attributes: map[string]float64{"cuteness": a.cute}})
	}
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	specs := []corpus.Spec{{
		Type: "animal", Property: "cute", PA: 0.92, NpPlus: 35, NpMinus: 4,
		PosFraction: corpus.SigmoidFraction("cuteness", 0.5, 0.1, 0.95),
	}}
	snap := corpus.NewGenerator(base, specs, corpus.Config{Seed: seed, Scale: scale}).Generate()
	return &World{KB: base, Lex: lex, Snapshot: snap}
}
