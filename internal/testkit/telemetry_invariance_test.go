package testkit

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// coordRunObs builds a coordinator RunObs with every sink live plus the
// cluster view, so telemetry federation and span stitching both engage.
func coordRunObs() *obs.RunObs {
	o := fullRunObs()
	o.Cluster = obs.NewCluster(o.Clock)
	return o
}

// telemetryConfig is distConfig plus per-worker telemetry: every
// in-process worker gets its own fresh RunObs, so each shard ships an
// SVTM frame after its store commit.
func telemetryConfig(w *World, shards int, workerCfg, reduceCfg pipeline.Config, crash func(int) bool) dist.Config {
	cfg := distConfig(w, shards, workerCfg, reduceCfg, crash)
	cfg.Transport.(*dist.LocalTransport).WorkerObs = func(int) *obs.RunObs { return obs.New() }
	return cfg
}

// TestTelemetryInvarianceDistributed is the tentpole differential: a
// distributed run with worker telemetry on — workers capturing and
// shipping SVTM frames, the coordinator federating metrics and stitching
// spans — must be bit-identical to the same run with telemetry off, for
// every worker count. And the telemetry must actually arrive: spans on
// every worker's pid track, every shard DONE with telemetry "ok", and
// fleet counters summing to the corpus.
func TestTelemetryInvarianceDistributed(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	for _, shards := range []int{1, 2, 4} {
		plain, failed, err := dist.Mine(context.Background(), docs, w.KB,
			distConfig(w, shards, cfg, cfg, nil))
		if err != nil || len(failed) != 0 {
			t.Fatalf("shards %d silent: err=%v failed=%v", shards, err, failed)
		}

		o := coordRunObs()
		reduceCfg := cfg
		reduceCfg.Obs = o
		observed, failed, err := dist.Mine(context.Background(), docs, w.KB,
			telemetryConfig(w, shards, cfg, reduceCfg, nil))
		if err != nil || len(failed) != 0 {
			t.Fatalf("shards %d telemetry: err=%v failed=%v", shards, err, failed)
		}
		if diffs := DiffResults(plain, observed); len(diffs) > 0 {
			t.Errorf("shards %d: telemetry-on run diverges from telemetry-off:\n  %s",
				shards, strings.Join(diffs, "\n  "))
		}

		// Stitched trace: every worker contributed spans on its own pid track.
		pids := map[int]bool{}
		for _, ev := range o.Tracer.Events() {
			pids[ev.Pid] = true
		}
		for s := 0; s < shards; s++ {
			if !pids[obs.WorkerPid(s)] {
				t.Errorf("shards %d: no spans on worker %d's pid track %d (tracks seen: %v)",
					shards, s, obs.WorkerPid(s), pids)
			}
		}

		// Cluster view: every shard committed with its telemetry federated.
		snap := o.Cluster.Snapshot()
		if snap.Workers != shards || snap.ShardsDone != shards || snap.ShardsLost != 0 {
			t.Fatalf("shards %d: cluster %s", shards, snap)
		}
		for _, sv := range snap.Shards {
			if sv.Status != obs.ShardDone || sv.Telemetry != "ok" || sv.Spans == 0 {
				t.Errorf("shards %d: shard view %+v", shards, sv)
			}
			if sv.WireBytesOut == 0 || sv.WireBytesIn == 0 {
				t.Errorf("shards %d: shard %d recorded no wire volume: %+v", shards, sv.Shard, sv)
			}
		}

		// Federated metrics: worker counters sum under the fleet namespace,
		// and the distributed gauges record the fleet shape.
		metrics := map[string]float64{}
		for _, m := range o.Metrics.Snapshot() {
			metrics[m.Name] = m.Value
		}
		if got := metrics[obs.FleetMetricName("surveyor_documents_total")]; got != float64(len(docs)) {
			t.Errorf("shards %d: fleet documents = %v, want %d", shards, got, len(docs))
		}
		if got := metrics["surveyor_dist_workers"]; got != float64(shards) {
			t.Errorf("shards %d: dist workers gauge = %v", shards, got)
		}
		if got := metrics["surveyor_dist_telemetry_frames_total"]; got != float64(shards) {
			t.Errorf("shards %d: telemetry frames = %v", shards, got)
		}
		if got := metrics["surveyor_dist_telemetry_rejected_total"]; got != 0 {
			t.Errorf("shards %d: telemetry rejected = %v", shards, got)
		}
	}
}

// TestTelemetryInvarianceChaos adds the content-selected panic fault:
// telemetry must stay write-only under quarantine traffic too, and every
// shard still commits and federates.
func TestTelemetryInvarianceChaos(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2, Fault: PanicFault(chaosSeed, chaosRate)}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)
	if len(batch.Quarantined) == 0 {
		t.Fatal("chaos selector picked no documents — useless fixture")
	}
	for _, shards := range []int{2, 4} {
		o := coordRunObs()
		reduceCfg := cfg
		reduceCfg.Obs = o
		res, failed, err := dist.Mine(context.Background(), docs, w.KB,
			telemetryConfig(w, shards, cfg, reduceCfg, nil))
		if err != nil || len(failed) != 0 {
			t.Fatalf("shards %d: err=%v failed=%v", shards, err, failed)
		}
		if diffs := DiffResults(batch, res); len(diffs) > 0 {
			t.Errorf("shards %d: faulted telemetry run diverges from faulted batch:\n  %s",
				shards, strings.Join(diffs, "\n  "))
		}
		for _, sv := range o.Cluster.Snapshot().Shards {
			if sv.Status != obs.ShardDone || sv.Telemetry != "ok" {
				t.Errorf("shards %d: shard view %+v", shards, sv)
			}
		}
	}
}

// TestTelemetryInvarianceCrash kills one worker: its telemetry is simply
// absent — the lost shard shows LOST without an "ok" note, the survivors
// federate normally, and the partial result is bit-identical to the same
// crash with telemetry off.
func TestTelemetryInvarianceCrash(t *testing.T) {
	w := NewWorld(2, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	const shards, crashShard = 4, 2
	crash := func(s int) bool { return s == crashShard }

	plain, failed, err := dist.Mine(context.Background(), docs, w.KB,
		distConfig(w, shards, cfg, cfg, crash))
	if err != nil || len(failed) != 1 {
		t.Fatalf("silent crash run: err=%v failed=%v", err, failed)
	}

	o := coordRunObs()
	reduceCfg := cfg
	reduceCfg.Obs = o
	res, failed, err := dist.Mine(context.Background(), docs, w.KB,
		telemetryConfig(w, shards, cfg, reduceCfg, crash))
	if err != nil || len(failed) != 1 || failed[0].Shard != crashShard {
		t.Fatalf("telemetry crash run: err=%v failed=%v", err, failed)
	}
	if diffs := DiffResults(plain, res); len(diffs) > 0 {
		t.Errorf("telemetry-on crash run diverges from telemetry-off:\n  %s",
			strings.Join(diffs, "\n  "))
	}

	snap := o.Cluster.Snapshot()
	if snap.ShardsDone != shards-1 || snap.ShardsLost != 1 {
		t.Fatalf("cluster %s", snap)
	}
	for _, sv := range snap.Shards {
		if sv.Shard == crashShard {
			if sv.Status != obs.ShardLost || sv.Telemetry == "ok" || sv.Failure == "" {
				t.Errorf("crashed shard view %+v", sv)
			}
			continue
		}
		if sv.Status != obs.ShardDone || sv.Telemetry != "ok" {
			t.Errorf("surviving shard view %+v", sv)
		}
	}
	metrics := map[string]float64{}
	for _, m := range o.Metrics.Snapshot() {
		metrics[m.Name] = m.Value
	}
	if got := metrics["surveyor_dist_telemetry_frames_total"]; got != shards-1 {
		t.Errorf("telemetry frames = %v, want %d", got, shards-1)
	}
	if got := metrics["surveyor_dist_shards_failed_total"]; got != 1 {
		t.Errorf("shards failed = %v, want 1", got)
	}
}
