package testkit

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
)

// fullRunObs builds a RunObs with every sink live, on a manual clock so
// trace timestamps are deterministic too.
func fullRunObs() *obs.RunObs {
	clock := &obs.ManualClock{}
	return &obs.RunObs{
		Metrics:  obs.NewRegistry(),
		Tracer:   obs.NewTracer(clock),
		EM:       obs.NewEMRecorder(),
		Progress: obs.NewProgress(clock),
		Clock:    clock,
	}
}

// TestObsInvariance is the observability half of the determinism contract:
// a run with every telemetry sink attached must be bit-identical to a run
// with none. Telemetry is write-only — if any instrumented code path read
// obs state back into the computation, this test (and the obsflow
// analyzer) would catch it.
func TestObsInvariance(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		w := NewWorld(seed, diffScale)
		for _, workers := range []int{1, 4} {
			cfg := pipeline.Config{Rho: 10, Workers: workers}
			plain := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)

			cfgObs := cfg
			cfgObs.Obs = fullRunObs()
			observed := pipeline.Run(w.Docs(), w.KB, w.Lex, cfgObs)

			if diffs := DiffResults(plain, observed); len(diffs) > 0 {
				t.Errorf("seed %d workers %d: obs-on run diverges from obs-off:\n  %s",
					seed, workers, strings.Join(diffs, "\n  "))
			}

			// Sanity: the telemetry actually recorded the run (an inert sink
			// would also pass the diff).
			o := cfgObs.Obs
			snap := o.Progress.Snapshot()
			if snap.DocumentsProcessed != int64(observed.Documents) {
				t.Errorf("seed %d workers %d: progress saw %d documents, run had %d",
					seed, workers, snap.DocumentsProcessed, observed.Documents)
			}
			if snap.Sentences != observed.Sentences {
				t.Errorf("seed %d workers %d: progress saw %d sentences, run had %d",
					seed, workers, snap.Sentences, observed.Sentences)
			}
			if em := o.EM.Snapshot(); em.Groups != int64(len(observed.Groups)) {
				t.Errorf("seed %d workers %d: EM telemetry saw %d groups, run had %d",
					seed, workers, em.Groups, len(observed.Groups))
			}
			if o.Tracer.EventCount() == 0 {
				t.Errorf("seed %d workers %d: tracer recorded no spans", seed, workers)
			}
			var pairsScanned int64
			for _, m := range o.Metrics.Snapshot() {
				if m.Name == "surveyor_grouping_pairs_scanned_total" {
					pairsScanned = int64(m.Value)
				}
			}
			if pairsScanned != int64(observed.DistinctPairs) {
				t.Errorf("seed %d workers %d: grouping scanned %d pairs, store had %d",
					seed, workers, pairsScanned, observed.DistinctPairs)
			}
		}
	}
}

// TestObsInvarianceAnnotatedPath covers the annotate-once entry point with
// a live sink.
func TestObsInvarianceAnnotatedPath(t *testing.T) {
	w := NewWorld(1, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 4}
	annotated := pipeline.Annotate(w.Docs(), w.KB, w.Lex, 4)

	plain := pipeline.RunAnnotated(annotated, w.KB, w.Lex, cfg)
	cfgObs := cfg
	cfgObs.Obs = fullRunObs()
	observed := pipeline.RunAnnotated(annotated, w.KB, w.Lex, cfgObs)
	if diffs := DiffResults(plain, observed); len(diffs) > 0 {
		t.Errorf("obs-on RunAnnotated diverges:\n  %s", strings.Join(diffs, "\n  "))
	}
}

// TestObsSameSinkTwice: reusing one RunObs across runs must not change the
// second run's results either (metrics accumulate, progress resets).
func TestObsSameSinkTwice(t *testing.T) {
	w := NewWorld(2, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	plain := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)

	cfgObs := cfg
	cfgObs.Obs = fullRunObs()
	pipeline.Run(w.Docs(), w.KB, w.Lex, cfgObs)
	second := pipeline.Run(w.Docs(), w.KB, w.Lex, cfgObs)
	if diffs := DiffResults(plain, second); len(diffs) > 0 {
		t.Errorf("second run with a reused sink diverges:\n  %s", strings.Join(diffs, "\n  "))
	}
}

// TestTimingsPopulated: with or without a sink, every phase timing in the
// result is non-negative, and Total covers the run. (Exact values are
// schedule-dependent and outside the contract.)
func TestTimingsPopulated(t *testing.T) {
	w := NewWorld(1, diffScale)
	res := pipeline.Run(w.Docs(), w.KB, w.Lex, pipeline.Config{Rho: 10, Workers: 2})
	tm := res.Timings
	for _, p := range []struct {
		name string
		d    time.Duration
	}{
		{"extraction", tm.Extraction}, {"grouping", tm.Grouping},
		{"em", tm.EM}, {"index", tm.Index}, {"total", tm.Total},
	} {
		if p.d < 0 {
			t.Errorf("%s timing is negative: %v", p.name, p.d)
		}
	}
	if tm.Total < tm.Extraction {
		t.Errorf("total (%v) < extraction (%v)", tm.Total, tm.Extraction)
	}
}
