package testkit

// Differential epoch harness for the incremental miner: split a corpus
// into epochs any way at all, replay them through internal/incremental,
// and compare the final published snapshot bit for bit against one batch
// run over the concatenation. The helpers here are shared by the epoch
// differential suite in this package and the incremental package's own
// fuzz target.

import (
	"context"
	"fmt"

	"repro/internal/corpus"
	"repro/internal/incremental"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/pipeline"
)

// SplitContiguous partitions docs into n contiguous epochs of near-equal
// size (the same arithmetic as cmd/surveyor -epochs). Epochs may be empty
// when n exceeds len(docs).
func SplitContiguous(docs []corpus.Document, n int) [][]corpus.Document {
	epochs := make([][]corpus.Document, n)
	for e := 0; e < n; e++ {
		lo, hi := len(docs)*e/n, len(docs)*(e+1)/n
		epochs[e] = docs[lo:hi]
	}
	return epochs
}

// SplitAt partitions docs at explicit cut offsets (each in [0, len]),
// which must be non-decreasing; repeated cuts produce empty epochs. With
// k cuts the result has k+1 epochs whose concatenation is docs.
func SplitAt(docs []corpus.Document, cuts ...int) [][]corpus.Document {
	epochs := make([][]corpus.Document, 0, len(cuts)+1)
	lo := 0
	for _, hi := range cuts {
		if hi < lo || hi > len(docs) {
			panic(fmt.Sprintf("testkit: SplitAt cut %d outside [%d, %d]", hi, lo, len(docs)))
		}
		epochs = append(epochs, docs[lo:hi])
		lo = hi
	}
	return append(epochs, docs[lo:])
}

// RunEpochs replays the epochs through a fresh incremental miner and
// returns the final published snapshot together with every epoch's stats.
// An ingest error (impossible with an uncancelled context) is surfaced so
// callers never diff a snapshot that silently missed an epoch.
func RunEpochs(epochs [][]corpus.Document, base *kb.KB, lex *lexicon.Lexicon, cfg pipeline.Config) (*pipeline.Result, []incremental.EpochStats, error) {
	m := incremental.New(base, lex, cfg)
	stats := make([]incremental.EpochStats, 0, len(epochs))
	for i, docs := range epochs {
		st, err := m.Ingest(context.Background(), docs) //lint:allow ctxflow test harness drives epochs to completion; nothing cancels a unit test run
		if err != nil {
			return nil, stats, fmt.Errorf("epoch %d: %w", i, err)
		}
		stats = append(stats, st)
	}
	return m.Snapshot(), stats, nil
}
