package testkit

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/pipeline"
)

// distConfig builds the coordinator config for a LocalTransport run:
// workers speak the real wire protocol over in-memory pipes, so every
// schedule runs under the race detector.
func distConfig(w *World, shards int, workerCfg, reduceCfg pipeline.Config, crash func(int) bool) dist.Config {
	return dist.Config{
		Shards: shards,
		Transport: &dist.LocalTransport{
			Base: w.KB, Lex: w.Lex, Pipeline: workerCfg, Crash: crash,
		},
		Pipeline: reduceCfg,
	}
}

// shardRange returns the contiguous document range of one shard — the
// same len*i/N arithmetic the coordinator uses.
func shardRange(n, shard, shards int) (lo, hi int) {
	return n * shard / shards, n * (shard + 1) / shards
}

// TestDistributedMatchesBatch is the tentpole differential proof of the
// multi-process scale-out: for every worker count, a distributed run —
// shard jobs encoded to wire frames, mined by independent workers,
// evidence deltas shipped back, merged, and reduced once — must be
// bit-identical to the single-process batch run: evidence counts, groups,
// EM traces, opinions, statistics.
func TestDistributedMatchesBatch(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		w := NewWorld(seed, diffScale)
		cfg := pipeline.Config{Rho: 10, Workers: 2}
		batch := pipeline.Run(w.Docs(), w.KB, w.Lex, cfg)
		for _, shards := range []int{1, 2, 4, 8} {
			res, failed, err := dist.Mine(context.Background(), w.Docs(), w.KB,
				distConfig(w, shards, cfg, cfg, nil))
			if err != nil {
				t.Fatalf("seed %d shards %d: %v", seed, shards, err)
			}
			if len(failed) != 0 {
				t.Fatalf("seed %d shards %d: unexpected shard failures: %v", seed, shards, failed)
			}
			if diffs := DiffResults(batch, res); len(diffs) > 0 {
				t.Errorf("seed %d shards %d: distributed run diverges from batch:\n  %s",
					seed, shards, strings.Join(diffs, "\n  "))
			}
		}
	}
}

// TestDistributedChaosMatchesBatch injects the content-selected panic
// fault into every worker: the distributed run must agree bit for bit
// with the batch run under the same fault — including the quarantine
// records, whose document indices must be corpus-global on both sides
// (the job's DocOffset threading). Composed with the existing
// TestQuarantineDeterminism, this proves the distributed faulted run
// equals a clean run over the corpus minus the fault set.
func TestDistributedChaosMatchesBatch(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	_, faulted := Partition(docs, chaosSeed, chaosRate)
	if len(faulted) == 0 {
		t.Fatal("chaos selector picked no documents — useless fixture")
	}
	cfg := pipeline.Config{Rho: 10, Workers: 2, Fault: PanicFault(chaosSeed, chaosRate)}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)
	if len(batch.Quarantined) != len(faulted) {
		t.Fatalf("batch quarantined %d, selector picked %d", len(batch.Quarantined), len(faulted))
	}
	for _, shards := range []int{2, 4, 8} {
		res, failed, err := dist.Mine(context.Background(), docs, w.KB,
			distConfig(w, shards, cfg, cfg, nil))
		if err != nil || len(failed) != 0 {
			t.Fatalf("shards %d: err=%v failed=%v", shards, err, failed)
		}
		if diffs := DiffResults(batch, res); len(diffs) > 0 {
			t.Errorf("shards %d: faulted distributed run diverges from faulted batch:\n  %s",
				shards, strings.Join(diffs, "\n  "))
		}
	}
}

// TestDistributedCrashEqualsBatchMinusShard kills one worker per run (the
// pipe breaks before any result frame — the in-process stand-in for a
// SIGKILLed child). The partial result must be bit-identical to a batch
// run over the corpus with exactly that shard's documents removed: the
// all-or-nothing shard commit means a lost worker contributes nothing.
func TestDistributedCrashEqualsBatchMinusShard(t *testing.T) {
	w := NewWorld(2, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	const shards = 4
	for crashShard := 0; crashShard < shards; crashShard++ {
		res, failed, err := dist.Mine(context.Background(), docs, w.KB,
			distConfig(w, shards, cfg, cfg, func(s int) bool { return s == crashShard }))
		if err != nil {
			t.Fatalf("crash shard %d: one lost shard must degrade, not abort: %v", crashShard, err)
		}
		if len(failed) != 1 || failed[0].Shard != crashShard {
			t.Fatalf("crash shard %d: failures %v", crashShard, failed)
		}
		if !errors.Is(&failed[0], dist.ErrInjectedCrash) {
			t.Fatalf("crash shard %d: error %v does not unwrap to the injected crash",
				crashShard, &failed[0])
		}
		lo, hi := shardRange(len(docs), crashShard, shards)
		kept := append(append([]corpus.Document(nil), docs[:lo]...), docs[hi:]...)
		batch := pipeline.Run(kept, w.KB, w.Lex, cfg)
		if diffs := DiffResults(batch, res); len(diffs) > 0 {
			t.Errorf("crash shard %d: partial result diverges from batch minus the shard:\n  %s",
				crashShard, strings.Join(diffs, "\n  "))
		}
	}
}

// TestDistributedCancellation cancels the run from inside shard 1's
// extraction (the SIGINT path at library level: the CLI's signal context
// cancels coordinator and workers alike). Every shard must either commit
// whole or fail whole — no torn shards — and the partial result must be
// bit-identical to a batch run over exactly the committed shards'
// documents.
func TestDistributedCancellation(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	const shards = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	lo1, _ := shardRange(len(docs), 1, shards)
	trigger := docs[lo1].Text
	var fired atomic.Bool
	workerCfg := pipeline.Config{Rho: 10, Workers: 1,
		Fault: func(_ int, d *corpus.Document) {
			if d.Text == trigger && !fired.Swap(true) {
				cancel()
			}
		}}
	reduceCfg := pipeline.Config{Rho: 10, Workers: 2}
	res, failed, err := dist.Mine(ctx, docs, w.KB,
		distConfig(w, shards, workerCfg, reduceCfg, nil))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
	if !fired.Load() {
		t.Fatal("cancellation trigger never fired")
	}
	if len(failed) == 0 {
		t.Fatal("a cancelled run must lose at least the triggering shard")
	}

	lost := make(map[int]bool, len(failed))
	for _, f := range failed {
		lost[f.Shard] = true
	}
	var kept []corpus.Document
	for s := 0; s < shards; s++ {
		if lost[s] {
			continue
		}
		lo, hi := shardRange(len(docs), s, shards)
		kept = append(kept, docs[lo:hi]...)
	}
	batch := pipeline.Run(kept, w.KB, w.Lex, reduceCfg)
	if diffs := DiffResults(batch, res); len(diffs) > 0 {
		t.Errorf("cancelled partial diverges from batch over the committed shards:\n  %s",
			strings.Join(diffs, "\n  "))
	}
}

// TestObsInvarianceDistributed extends the observability half of the
// determinism contract to the distributed path: a coordinator and workers
// with every sink live must produce a bit-identical result to a fully
// silent run, and the distributed counters must actually record the run.
func TestObsInvarianceDistributed(t *testing.T) {
	w := NewWorld(1, diffScale)
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	const shards = 4
	plain, failed, err := dist.Mine(context.Background(), w.Docs(), w.KB,
		distConfig(w, shards, cfg, cfg, nil))
	if err != nil || len(failed) != 0 {
		t.Fatalf("silent run: err=%v failed=%v", err, failed)
	}

	workerCfg, reduceCfg := cfg, cfg
	workerCfg.Obs = fullRunObs()
	reduceCfg.Obs = fullRunObs()
	observed, failed, err := dist.Mine(context.Background(), w.Docs(), w.KB,
		distConfig(w, shards, workerCfg, reduceCfg, nil))
	if err != nil || len(failed) != 0 {
		t.Fatalf("observed run: err=%v failed=%v", err, failed)
	}
	if diffs := DiffResults(plain, observed); len(diffs) > 0 {
		t.Errorf("obs-on distributed run diverges from obs-off:\n  %s",
			strings.Join(diffs, "\n  "))
	}

	metrics := map[string]float64{}
	for _, m := range reduceCfg.Obs.Metrics.Snapshot() {
		metrics[m.Name] = m.Value
	}
	if got := metrics["surveyor_dist_shards_shipped_total"]; got != shards {
		t.Errorf("shards_shipped = %v, want %d", got, shards)
	}
	if got := metrics["surveyor_dist_shards_failed_total"]; got != 0 {
		t.Errorf("shards_failed = %v, want 0", got)
	}
	if metrics["surveyor_wire_bytes_encoded_total"] <= 0 {
		t.Error("wire_bytes_encoded recorded nothing")
	}
	if metrics["surveyor_wire_bytes_decoded_total"] <= 0 {
		t.Error("wire_bytes_decoded recorded nothing")
	}
}
