package testkit

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// retryConfig builds a coordinator config around a caller-assembled
// LocalTransport carrying chaos hooks, with the self-healing retry
// policy engaged. The transport's Base/Lex/Pipeline are filled in here
// so tests only spell out the hooks.
func retryConfig(w *World, shards int, workerCfg, reduceCfg pipeline.Config, lt *dist.LocalTransport, policy dist.RetryPolicy) dist.Config {
	lt.Base, lt.Lex, lt.Pipeline = w.KB, w.Lex, workerCfg
	return dist.Config{Shards: shards, Transport: lt, Pipeline: reduceCfg, Retry: policy}
}

// fastRetry is the chaos suites' retry policy: a real budget with
// millisecond backoff so a healed run costs test time, not wall-clock
// minutes.
func fastRetry(maxAttempts int) dist.RetryPolicy {
	return dist.RetryPolicy{
		MaxAttempts: maxAttempts,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Seed:        chaosSeed,
	}
}

// metricValues flattens a registry snapshot for by-name assertions.
func metricValues(o *obs.RunObs) map[string]float64 {
	vals := map[string]float64{}
	for _, m := range o.Metrics.Snapshot() {
		vals[m.Name] = m.Value
	}
	return vals
}

// TestRetryTransientCrashMatchesBatch is the tentpole differential of the
// self-healing scheduler: every shard's first worker crashes, the retry
// budget replaces each with a fresh one, and the healed run must be
// bit-identical to the batch run — not batch minus the crashed shards —
// for every worker count. The retry traffic must be visible on the
// coordinator's counters and in each shard's attempt history.
func TestRetryTransientCrashMatchesBatch(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)
	for _, shards := range []int{1, 2, 4, 8} {
		o := coordRunObs()
		reduceCfg := cfg
		reduceCfg.Obs = o
		lt := &dist.LocalTransport{
			FailAttempt: func(_, attempt int) bool { return attempt == 0 },
		}
		res, failed, err := dist.Mine(context.Background(), docs, w.KB,
			retryConfig(w, shards, cfg, reduceCfg, lt, fastRetry(3)))
		if err != nil || len(failed) != 0 {
			t.Fatalf("shards %d: transient crashes must heal: err=%v failed=%v", shards, err, failed)
		}
		if diffs := DiffResults(batch, res); len(diffs) > 0 {
			t.Errorf("shards %d: healed run diverges from batch:\n  %s",
				shards, strings.Join(diffs, "\n  "))
		}

		metrics := metricValues(o)
		if got := metrics["surveyor_dist_shard_retries_total"]; got != float64(shards) {
			t.Errorf("shards %d: retries = %v, want %d", shards, got, shards)
		}
		if got := metrics["surveyor_dist_shard_reassignments_total"]; got != float64(shards) {
			t.Errorf("shards %d: reassignments = %v, want %d", shards, got, shards)
		}
		if got := metrics["surveyor_dist_shards_failed_total"]; got != 0 {
			t.Errorf("shards %d: shards_failed = %v, want 0", shards, got)
		}
		snap := o.Cluster.Snapshot()
		if snap.ShardsDone != shards || snap.ShardsLost != 0 {
			t.Fatalf("shards %d: cluster %s", shards, snap)
		}
		for _, sv := range snap.Shards {
			if sv.Attempts != 2 {
				t.Errorf("shards %d: shard %d burned %d attempts, want 2", shards, sv.Shard, sv.Attempts)
			}
			if len(sv.History) != 2 ||
				sv.History[0].Outcome != obs.AttemptFailed ||
				sv.History[1].Outcome != obs.AttemptCommitted {
				t.Errorf("shards %d: shard %d history %+v, want [failed committed]",
					shards, sv.Shard, sv.History)
			}
		}
	}
}

// TestRetryCrashThenRecoverMatchesBatch crashes one shard's workers twice
// in a row: the shard must survive on its third and final attempt, and
// the run must still be bit-identical to batch.
func TestRetryCrashThenRecoverMatchesBatch(t *testing.T) {
	w := NewWorld(2, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)
	const shards, sick = 4, 1
	o := coordRunObs()
	reduceCfg := cfg
	reduceCfg.Obs = o
	lt := &dist.LocalTransport{
		FailAttempt: func(shard, attempt int) bool { return shard == sick && attempt < 2 },
	}
	res, failed, err := dist.Mine(context.Background(), docs, w.KB,
		retryConfig(w, shards, cfg, reduceCfg, lt, fastRetry(3)))
	if err != nil || len(failed) != 0 {
		t.Fatalf("err=%v failed=%v", err, failed)
	}
	if diffs := DiffResults(batch, res); len(diffs) > 0 {
		t.Errorf("crash-then-recover run diverges from batch:\n  %s", strings.Join(diffs, "\n  "))
	}
	sv := o.Cluster.Snapshot().Shards[sick]
	if sv.Status != obs.ShardDone || sv.Attempts != 3 {
		t.Fatalf("sick shard view %+v, want DONE after 3 attempts", sv)
	}
	if len(sv.History) != 3 ||
		sv.History[0].Outcome != obs.AttemptFailed ||
		sv.History[1].Outcome != obs.AttemptFailed ||
		sv.History[2].Outcome != obs.AttemptCommitted {
		t.Errorf("sick shard history %+v, want [failed failed committed]", sv.History)
	}
}

// TestRetryConnectionDropMatchesBatch breaks one shard's result stream
// mid-frame (a dropped TCP connection's in-process stand-in): the torn
// read must fail the attempt cleanly — never merge a partial delta — and
// the retried attempt must heal the run to bit-identity with batch.
func TestRetryConnectionDropMatchesBatch(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)
	const shards, torn = 4, 2
	// Cut offsets probe a torn magic, a torn header, and a torn body.
	for _, cut := range []int64{2, 9, 300} {
		o := coordRunObs()
		reduceCfg := cfg
		reduceCfg.Obs = o
		lt := &dist.LocalTransport{
			CutResult: func(shard, attempt int) int64 {
				if shard == torn && attempt == 0 {
					return cut
				}
				return 0
			},
		}
		res, failed, err := dist.Mine(context.Background(), docs, w.KB,
			retryConfig(w, shards, cfg, reduceCfg, lt, fastRetry(3)))
		if err != nil || len(failed) != 0 {
			t.Fatalf("cut %d: err=%v failed=%v", cut, err, failed)
		}
		if diffs := DiffResults(batch, res); len(diffs) > 0 {
			t.Errorf("cut %d: healed run diverges from batch:\n  %s", cut, strings.Join(diffs, "\n  "))
		}
		if got := metricValues(o)["surveyor_dist_shard_retries_total"]; got != 1 {
			t.Errorf("cut %d: retries = %v, want 1", cut, got)
		}
	}
}

// TestRetryBudgetExhaustedEqualsBatchMinusShard keeps one shard's machine
// permanently dead: after the full budget burns, the shard must degrade
// to a typed ShardError carrying the attempt count and unwrapping to the
// injected crash — exactly today's lost-shard semantics — and the partial
// result must equal batch minus that shard's documents.
func TestRetryBudgetExhaustedEqualsBatchMinusShard(t *testing.T) {
	w := NewWorld(2, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	const shards, dead = 4, 2
	o := coordRunObs()
	reduceCfg := cfg
	reduceCfg.Obs = o
	lt := &dist.LocalTransport{
		Crash: func(shard int) bool { return shard == dead },
	}
	res, failed, err := dist.Mine(context.Background(), docs, w.KB,
		retryConfig(w, shards, cfg, reduceCfg, lt, fastRetry(3)))
	if err != nil {
		t.Fatalf("one lost shard must degrade, not abort: %v", err)
	}
	if len(failed) != 1 || failed[0].Shard != dead || failed[0].Attempts != 3 {
		t.Fatalf("failures %v, want shard %d lost after 3 attempts", failed, dead)
	}
	if !errors.Is(&failed[0], dist.ErrInjectedCrash) {
		t.Fatalf("error %v does not unwrap to the injected crash", &failed[0])
	}
	lo, hi := shardRange(len(docs), dead, shards)
	kept := append(append([]corpus.Document(nil), docs[:lo]...), docs[hi:]...)
	batch := pipeline.Run(kept, w.KB, w.Lex, cfg)
	if diffs := DiffResults(batch, res); len(diffs) > 0 {
		t.Errorf("exhausted run diverges from batch minus the shard:\n  %s",
			strings.Join(diffs, "\n  "))
	}

	metrics := metricValues(o)
	if got := metrics["surveyor_dist_shard_retries_total"]; got != 2 {
		t.Errorf("retries = %v, want 2", got)
	}
	if got := metrics["surveyor_dist_shards_failed_total"]; got != 1 {
		t.Errorf("shards_failed = %v, want 1", got)
	}
	sv := o.Cluster.Snapshot().Shards[dead]
	if sv.Status != obs.ShardLost || sv.Attempts != 3 || sv.Failure == "" {
		t.Fatalf("dead shard view %+v, want LOST after 3 attempts", sv)
	}
	if len(sv.History) != 3 {
		t.Fatalf("dead shard history %+v, want 3 failed attempts", sv.History)
	}
	for _, h := range sv.History {
		if h.Outcome != obs.AttemptFailed {
			t.Errorf("dead shard attempt %d outcome %q, want failed", h.Attempt, h.Outcome)
		}
	}
}

// TestRetryDeadlineReclaimsHungWorker hangs one shard's first worker past
// the shard deadline: the scheduler must reclaim the shard (abandoning,
// not waiting on, the straggler), mine it on a fresh worker, and still
// produce the exact batch result. The expiry must be counted.
func TestRetryDeadlineReclaimsHungWorker(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)
	const shards, hung = 4, 1
	o := coordRunObs()
	reduceCfg := cfg
	reduceCfg.Obs = o
	// The straggler blocks its result write until the replacement attempt
	// starts serving — by then its deadline has long expired. Releasing it
	// (rather than holding forever) lets the run drain the straggler; its
	// late delivery races the replacement and either side may commit, which
	// is exactly the ambiguity the commit cell must absorb.
	release := make(chan struct{})
	lt := &dist.LocalTransport{
		Hold: func(shard, attempt int) <-chan struct{} {
			if shard == hung && attempt == 0 {
				return release
			}
			return nil
		},
		OnServe: func(shard, attempt int) {
			if shard == hung && attempt == 1 {
				close(release)
			}
		},
	}
	policy := fastRetry(3)
	policy.ShardDeadline = time.Second
	res, failed, err := dist.Mine(context.Background(), docs, w.KB,
		retryConfig(w, shards, cfg, reduceCfg, lt, policy))
	if err != nil || len(failed) != 0 {
		t.Fatalf("hung worker must be reclaimed: err=%v failed=%v", err, failed)
	}
	if diffs := DiffResults(batch, res); len(diffs) > 0 {
		t.Errorf("reclaimed run diverges from batch:\n  %s", strings.Join(diffs, "\n  "))
	}

	metrics := metricValues(o)
	if got := metrics["surveyor_dist_shard_deadlines_expired_total"]; got != 1 {
		t.Errorf("deadlines_expired = %v, want 1", got)
	}
	if got := metrics["surveyor_dist_shard_retries_total"]; got != 1 {
		t.Errorf("retries = %v, want 1", got)
	}
	sv := o.Cluster.Snapshot().Shards[hung]
	if sv.Status != obs.ShardDone || sv.Attempts != 2 {
		t.Fatalf("hung shard view %+v, want DONE after 2 attempts", sv)
	}
	if len(sv.History) == 0 || sv.History[0].Outcome != obs.AttemptExpired {
		t.Errorf("hung shard history %+v, want an expired first attempt", sv.History)
	}
}

// TestRetryDuplicateLateResultDiscarded proves the exactly-once shard
// commit under the nastiest interleaving: an abandoned straggler delivers
// a complete, valid result after its deadline — and commits, because
// nothing else has — then the replacement attempt delivers the same shard
// again. The second delivery must be discarded as a duplicate, counted
// once, and the run must still be bit-identical to batch.
//
// The interleaving is pinned, not raced: both attempts hold their result
// frames; the straggler's release fires when the replacement starts
// serving, and the replacement's release fires only once the cluster
// history shows the straggler's commit.
func TestRetryDuplicateLateResultDiscarded(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	batch := pipeline.Run(docs, w.KB, w.Lex, cfg)
	const shards, sick = 2, 0
	o := coordRunObs()
	reduceCfg := cfg
	reduceCfg.Obs = o

	release0 := make(chan struct{}) // straggler's held result frames
	release1 := make(chan struct{}) // replacement's held result frames
	lt := &dist.LocalTransport{
		Hold: func(shard, attempt int) <-chan struct{} {
			switch {
			case shard == sick && attempt == 0:
				return release0
			case shard == sick && attempt == 1:
				return release1
			}
			return nil
		},
		OnServe: func(shard, attempt int) {
			if shard == sick && attempt == 1 {
				close(release0)
			}
		},
	}
	// Release the replacement only after the straggler's late result has
	// committed (visible in the attempt history); time out rather than
	// deadlock if the commit never lands.
	committed := make(chan struct{})
	go func() {
		defer close(release1)
		deadline := time.After(15 * time.Second)
		for {
			for _, h := range o.Cluster.Snapshot().Shards[sick].History {
				if h.Outcome == obs.AttemptCommitted {
					close(committed)
					return
				}
			}
			select {
			case <-deadline:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	policy := fastRetry(2)
	policy.ShardDeadline = 2 * time.Second
	res, failed, err := dist.Mine(context.Background(), docs, w.KB,
		retryConfig(w, shards, cfg, reduceCfg, lt, policy))
	select {
	case <-committed:
	default:
		t.Fatal("straggler's late result never committed — orchestration broke")
	}
	if err != nil || len(failed) != 0 {
		t.Fatalf("err=%v failed=%v", err, failed)
	}
	if diffs := DiffResults(batch, res); len(diffs) > 0 {
		t.Errorf("duplicate-delivery run diverges from batch:\n  %s", strings.Join(diffs, "\n  "))
	}

	metrics := metricValues(o)
	if got := metrics["surveyor_dist_duplicate_results_total"]; got != 1 {
		t.Errorf("duplicate_results = %v, want 1", got)
	}
	if got := metrics["surveyor_dist_shard_deadlines_expired_total"]; got != 1 {
		t.Errorf("deadlines_expired = %v, want 1", got)
	}
	sv := o.Cluster.Snapshot().Shards[sick]
	if sv.Status != obs.ShardDone || sv.Attempts != 2 {
		t.Fatalf("sick shard view %+v, want DONE after 2 attempts", sv)
	}
	want := []struct {
		attempt int
		outcome string
	}{
		{0, obs.AttemptExpired},   // deadline reclaimed the straggler
		{0, obs.AttemptCommitted}, // its late delivery still won the cell
		{1, obs.AttemptDuplicate}, // the replacement's delivery was discarded
	}
	if len(sv.History) != len(want) {
		t.Fatalf("sick shard history %+v, want %d entries", sv.History, len(want))
	}
	for i, h := range sv.History {
		if h.Attempt != want[i].attempt || h.Outcome != want[i].outcome {
			t.Errorf("history[%d] = %+v, want attempt %d %s", i, h, want[i].attempt, want[i].outcome)
		}
	}
}

// TestRetryObsInvariance extends the observability half of the
// determinism contract to the retry path: a healed chaotic run with every
// sink live (worker telemetry included) must be bit-identical to the same
// chaotic run fully silent, and a retried shard's committed attempt must
// still federate its telemetry.
func TestRetryObsInvariance(t *testing.T) {
	w := NewWorld(1, diffScale)
	docs := w.Docs()
	cfg := pipeline.Config{Rho: 10, Workers: 2}
	const shards = 4
	flaky := func(shard, attempt int) bool { return shard%2 == 1 && attempt == 0 }

	silentLT := &dist.LocalTransport{FailAttempt: flaky}
	plain, failed, err := dist.Mine(context.Background(), docs, w.KB,
		retryConfig(w, shards, cfg, cfg, silentLT, fastRetry(3)))
	if err != nil || len(failed) != 0 {
		t.Fatalf("silent run: err=%v failed=%v", err, failed)
	}

	o := coordRunObs()
	reduceCfg := cfg
	reduceCfg.Obs = o
	observedLT := &dist.LocalTransport{
		FailAttempt: flaky,
		WorkerObs:   func(int) *obs.RunObs { return obs.New() },
	}
	observed, failed, err := dist.Mine(context.Background(), docs, w.KB,
		retryConfig(w, shards, cfg, reduceCfg, observedLT, fastRetry(3)))
	if err != nil || len(failed) != 0 {
		t.Fatalf("observed run: err=%v failed=%v", err, failed)
	}
	if diffs := DiffResults(plain, observed); len(diffs) > 0 {
		t.Errorf("obs-on healed run diverges from obs-off:\n  %s", strings.Join(diffs, "\n  "))
	}

	metrics := metricValues(o)
	if got := metrics["surveyor_dist_shard_retries_total"]; got != 2 {
		t.Errorf("retries = %v, want 2", got)
	}
	if got := metrics["surveyor_dist_telemetry_frames_total"]; got != shards {
		t.Errorf("telemetry frames = %v, want %d", got, shards)
	}
	for _, sv := range o.Cluster.Snapshot().Shards {
		if sv.Status != obs.ShardDone || sv.Telemetry != "ok" {
			t.Errorf("shard view %+v, want DONE with telemetry ok", sv)
		}
	}
}
