package pipeline

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/annotate"
	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
)

// Annotate runs the NLP front end over the corpus in parallel, producing
// the annotated-snapshot representation the paper's extraction consumes.
// Use RunAnnotated to extract from the result — repeatedly, e.g. for the
// Table-4 pattern-version sweep, without re-parsing.
func Annotate(docs []corpus.Document, base *kb.KB, lex *lexicon.Lexicon, workers int) []annotate.Document {
	if workers <= 0 {
		workers = defaultWorkers()
	}
	annotator := annotate.New(base, lex)
	out := make([]annotate.Document, len(docs))
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workerCount(workers, len(docs)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					break
				}
				out[i] = annotator.Annotate(docs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// annotatedProcessor is the pre-annotated counterpart of docProcessor:
// extraction only, with the same commit-after-success buffering under the
// quarantine boundary.
type annotatedProcessor struct {
	extractor *extract.Extractor
	stmts     []extract.Statement

	buf       []extract.Statement
	sentences int64
}

// process extracts one annotated document inside the quarantine boundary.
func (p *annotatedProcessor) process(doc *annotate.Document) (reason string, ok bool) {
	p.buf = p.buf[:0]
	p.sentences = 0
	ok = true
	defer func() {
		if r := recover(); r != nil {
			reason, ok = panicReason(r), false
		}
	}()
	for si := range doc.Sentence {
		s := &doc.Sentence[si]
		p.sentences++
		if s.Tree == nil || len(s.Mentions) == 0 {
			continue
		}
		p.stmts = p.extractor.ExtractInto(p.stmts[:0], s.Tree, s.Mentions)
		p.buf = append(p.buf, p.stmts...)
	}
	return "", true
}

// RunAnnotated executes extraction, grouping, and per-group EM over an
// already-annotated corpus. Results are identical to Run over the raw
// documents with the same configuration. Delegates to RunAnnotatedContext
// with a background context.
func RunAnnotated(docs []annotate.Document, base *kb.KB, lex *lexicon.Lexicon, cfg Config) *Result {
	//lint:allow ctxflow documented non-cancellable entry point; callers wanting cancellation use RunAnnotatedContext
	res, _ := RunAnnotatedContext(context.Background(), docs, base, lex, cfg)
	return res
}

// RunAnnotatedContext is RunAnnotated with document-granular cancellation
// and panic quarantine, sharing the semantics of RunContext: a cancelled
// run models its committed evidence and returns the partial result inside
// a *PartialError; a panicking document is quarantined and the run
// continues. Config.Fault is ignored on this path — the hook takes raw
// documents, which an annotated corpus no longer has.
func RunAnnotatedContext(ctx context.Context, docs []annotate.Document, base *kb.KB, lex *lexicon.Lexicon, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	o := cfg.Obs
	workers := workerCount(cfg.Workers, len(docs))
	o.StartRun(len(docs), workers)
	total := o.Phase("run")

	span := o.Phase("extract")
	pm := o.PipelineMetrics()
	store := evidence.NewStore()
	extractor := extract.NewVersion(lex, cfg.Version)
	var sentences atomic.Int64
	var ql quarantineLog

	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wo := o.Worker(w)
			local := int64(0)
			acc := evidence.NewLocal()
			proc := &annotatedProcessor{extractor: extractor}
			for {
				if ctx.Err() != nil {
					break
				}
				di := int(next.Add(1)) - 1
				if di >= len(docs) {
					break
				}
				wo.DocStart()
				if reason, ok := proc.process(&docs[di]); !ok {
					ql.add(di, reason)
					pm.QuarantinedDocs.Inc()
					wo.DocEnd(di, 0, 0)
					continue
				}
				for _, st := range proc.buf {
					acc.Add(st)
				}
				local += proc.sentences
				wo.DocEnd(di, proc.sentences, int64(len(proc.buf)))
				pm.DocSentences.Observe(float64(proc.sentences))
			}
			acc.FlushTo(store)
			sentences.Add(local)
			wo.Close("extract")
		}(w)
	}
	wg.Wait()
	consumed := int(next.Load())
	if consumed > len(docs) {
		consumed = len(docs)
	}
	res.Quarantined = ql.sorted()
	res.Documents = consumed - len(res.Quarantined)
	res.Store = store
	res.Sentences = sentences.Load()
	res.TotalStatements = store.TotalStatements()
	res.DistinctPairs = store.Len()
	res.Timings.Extraction = span.End()
	pm.Documents.Add(int64(res.Documents))
	pm.Sentences.Add(res.Sentences)
	pm.Statements.Add(res.TotalStatements)

	finishRun(res, base, cfg)
	res.Timings.Total = total.End()
	o.EndRun()
	if consumed < len(docs) {
		return res, &PartialError{Result: res, Processed: res.Documents, Consumed: consumed, Err: ctx.Err()}
	}
	return res, nil
}

// RunFromStore executes grouping and modelling over pre-aggregated
// evidence counters — the counts-only entry point for callers with their
// own extraction, and for evidence-level transformations such as antonym
// folding.
func RunFromStore(store *evidence.Store, base *kb.KB, cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		Store:           store,
		TotalStatements: store.TotalStatements(),
		DistinctPairs:   store.Len(),
	}
	total := cfg.Obs.Phase("run")
	finishRun(res, base, cfg)
	res.Timings.Total = total.End()
	cfg.Obs.EndRun()
	return res
}

// finishRun performs the grouping and EM phases shared by Run and
// RunAnnotated, then builds the lookup index. It always runs to
// completion, even for a cancelled run: the committed evidence is already
// in memory and bounded, and modelling it is what makes a partial result
// exactly the clean result over its committed documents.
func finishRun(res *Result, base *kb.KB, cfg Config) {
	o := cfg.Obs
	pm := o.PipelineMetrics()

	// Grouping: one parallel per-shard pass computes both the before-ρ pair
	// count and the grouped aggregates.
	span := o.Phase("group")
	groups, before := evidence.ParallelGroupObserved(res.Store, base, cfg.Rho, cfg.Workers, o.Grouping())
	res.PairsBeforeFilter = before
	res.Timings.Grouping = span.End()
	pm.DistinctPairs.Set(float64(res.DistinctPairs))
	pm.PairsBefore.Set(float64(before))
	pm.Groups.Set(float64(len(groups)))

	// EM: the shared worker pool of fitGroups (see refit.go) — also the
	// re-fit entry point the incremental miner drives with dirty groups
	// only.
	span = o.Phase("em")
	res.Groups = fitGroups(groups, cfg)
	res.Timings.EM = span.End()

	// Index: the O(1) lookup structures over groups and opinions.
	span = o.Phase("index")
	res.buildIndex()
	res.Timings.Index = span.End()
	totalEntities := 0
	for gi := range res.Groups {
		totalEntities += len(res.Groups[gi].Entities)
	}
	pm.Opinions.Add(int64(totalEntities))
}
