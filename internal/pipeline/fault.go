// Fault boundary of the pipeline: per-document panic quarantine, typed
// partial results for cancelled or truncated runs, and the bookkeeping
// that keeps both deterministic.
//
// Quarantine determinism contract: a run whose faults remove a document
// set D produces results — evidence counts, groups, opinions, EM traces —
// bit-identical to a clean run over the corpus with D removed, for any
// worker count and schedule. The contract holds because a document only
// reaches the shared state (worker accumulator, sentence counters) after
// it has fully processed: all per-document work happens against worker
// scratch and a per-document statement buffer, and a panic anywhere inside
// the boundary discards the buffer instead of committing it. The testkit
// chaos suite proves the contract under injected faults.
package pipeline

import (
	"fmt"
	"sort"
	"sync"
)

// Quarantined records one document removed from a run by the panic
// boundary.
type Quarantined struct {
	// Doc is the document's index in the input corpus (for RunStream, its
	// zero-based sequence number in the stream).
	Doc int
	// Reason is the rendered panic value.
	Reason string
}

// PartialError reports a run that stopped before consuming its whole
// corpus — cancelled, or cut short by a streaming read error. The partial
// result is internally consistent: exactly the documents counted here were
// committed, each exactly once.
type PartialError struct {
	// Result is the partial result, never nil. Its evidence, groups, and
	// opinions are the complete clean-run output over the committed
	// documents; which documents committed is schedule-dependent.
	Result *Result
	// Processed counts fully committed documents (== Result.Documents).
	Processed int
	// Consumed is the number of leading corpus documents the run claimed
	// before stopping: every document with index < Consumed was either
	// committed or quarantined (see Result.Quarantined); every document at
	// or beyond Consumed was untouched.
	Consumed int
	// Err is the cause: the context's error, or the corpus read error.
	Err error
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("pipeline: run stopped after %d of %d consumed documents: %v",
		e.Processed, e.Consumed, e.Err)
}

// Unwrap exposes the cause, so errors.Is(err, context.Canceled) works.
func (e *PartialError) Unwrap() error { return e.Err }

// panicReason renders a recovered panic value into the deterministic
// reason string recorded on the quarantine log. Panic values raised by
// document content are content-deterministic, so the rendered string is
// identical across schedules.
func panicReason(r any) string {
	if err, ok := r.(error); ok {
		return "panic: " + err.Error()
	}
	return fmt.Sprintf("panic: %v", r)
}

// quarantineLog collects quarantined documents across workers. The
// collection order is schedule-dependent; sorted() restores the canonical
// document order, which is what reaches Result.Quarantined.
type quarantineLog struct {
	mu   sync.Mutex
	docs []Quarantined
}

func (q *quarantineLog) add(doc int, reason string) {
	q.mu.Lock()
	q.docs = append(q.docs, Quarantined{Doc: doc, Reason: reason})
	q.mu.Unlock()
}

// sorted returns the records ordered by document index. Call only after
// every worker has finished.
func (q *quarantineLog) sorted() []Quarantined {
	sort.Slice(q.docs, func(a, b int) bool { return q.docs[a].Doc < q.docs[b].Doc })
	return q.docs
}
