// Package pipeline orchestrates the full Surveyor dataflow of Algorithm 1:
// parallel evidence extraction over document shards (the map step the paper
// ran on up to 5000 nodes), evidence grouping by (type, property) with the
// occurrence threshold ρ (the reduce step), per-group EM fitting, and
// classification of every knowledge-base entity — including entities with
// no evidence at all. Per-phase timings are recorded for the Section-7.1
// analysis.
//
// Observability: a Config.Obs sink receives write-only telemetry (metrics,
// phase/worker spans, EM convergence trajectories, live progress). The
// pipeline never reads obs state — timestamps flow through the obs-owned
// clock and the only value that returns is each phase span's duration,
// which feeds Result.Timings (explicitly outside the determinism
// contract). Runs with a live sink are bit-identical to runs with a nil
// one; the testkit differential suite proves it.
package pipeline

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/obs"
	"repro/internal/tagger"
)

// Config controls a pipeline run.
type Config struct {
	// Workers is the extraction/EM parallelism; 0 means GOMAXPROCS.
	Workers int
	// Rho is the minimum number of statements a (type, property) pair
	// needs to be modelled (the paper used 100).
	Rho int64
	// Version selects the extraction pattern version (default V4).
	Version extract.Version
	// EM configures the per-group fit.
	EM core.EMConfig
	// Obs is the optional observability sink. Nil disables all telemetry
	// at the cost of one branch per record call; results are bit-identical
	// either way.
	Obs *obs.RunObs
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// workerCount caps the goroutine count at the number of work items.
func workerCount(workers, items int) int {
	if workers > items {
		return items
	}
	return workers
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = defaultWorkers()
	}
	if c.Rho == 0 {
		c.Rho = 100
	}
	if c.Version == 0 {
		c.Version = extract.V4
	}
	if c.EM.MaxIterations == 0 {
		c.EM = core.DefaultEMConfig()
	}
	return c
}

// EntityOpinion is the classified dominant opinion for one entity under
// one (type, property) group.
type EntityOpinion struct {
	Entity      kb.EntityID
	Pos, Neg    int64
	Probability float64
	Opinion     core.Opinion
}

// GroupResult is the fitted model and per-entity classification of one
// (type, property) combination.
type GroupResult struct {
	Key      evidence.GroupKey
	Model    core.Model
	Trace    core.Trace
	Entities []EntityOpinion
}

// Timings holds per-phase wall-clock durations (Section 7.1 reports these
// for the production run). Timings are the one schedule-dependent field
// of a Result: the differential suite ignores them.
type Timings struct {
	Extraction time.Duration
	Grouping   time.Duration
	EM         time.Duration
	// Index is the time to build the opinion/group lookup indexes.
	Index time.Duration
	// Total is the whole run, end to end.
	Total time.Duration
}

// Result is the output of a pipeline run.
type Result struct {
	Store *evidence.Store
	// Groups holds one entry per modelled (type, property) pair.
	Groups []GroupResult
	// TotalStatements counts extracted evidence statements.
	TotalStatements int64
	// DistinctPairs counts distinct (entity, property) pairs with evidence
	// (the "60 million entity-property combinations" statistic).
	DistinctPairs int
	// PairsBeforeFilter counts distinct (type, property) pairs before the
	// ρ filter (the "7 million" statistic); len(Groups) is the after.
	PairsBeforeFilter int
	// Sentences and Documents count the parsed input.
	Sentences int64
	Documents int
	Timings   Timings

	index      map[opinionKey]*EntityOpinion
	groupIndex map[evidence.GroupKey]*GroupResult
}

type opinionKey struct {
	entity   kb.EntityID
	property string
}

// Opinion looks up the classification of an entity-property pair. The
// boolean is false when the pair's group was never modelled.
func (r *Result) Opinion(e kb.EntityID, property string) (EntityOpinion, bool) {
	op, ok := r.index[opinionKey{e, property}]
	if !ok {
		return EntityOpinion{}, false
	}
	return *op, true
}

// Group returns the result for a (type, property) pair, if modelled.
func (r *Result) Group(typ, property string) (*GroupResult, bool) {
	g, ok := r.groupIndex[evidence.GroupKey{Type: typ, Property: property}]
	return g, ok
}

// Run executes the full pipeline over the documents.
func Run(docs []corpus.Document, base *kb.KB, lex *lexicon.Lexicon, cfg Config) *Result {
	cfg = cfg.withDefaults()
	res := &Result{Documents: len(docs)}
	o := cfg.Obs
	workers := workerCount(cfg.Workers, len(docs))
	o.StartRun(len(docs), workers)
	total := o.Phase("run")

	// Phase 1: parallel extraction (map).
	span := o.Phase("extract")
	pm := o.PipelineMetrics()
	store := evidence.NewStore()
	var sentences atomic.Int64
	posTagger := pos.New(lex)
	parser := depparse.New(lex)
	entTagger := tagger.New(base, lex)
	extractor := extract.NewVersion(lex, cfg.Version)

	// Documents are fed through a shared atomic index rather than static
	// shards: document lengths are heavily skewed (the long-tail shapes of
	// Figure 9), and pre-cut shards leave workers idle behind the slowest
	// one. The evidence store is commutative, so the schedule cannot change
	// the result — the testkit differential suite proves it.
	//
	// Each worker owns one set of NLP scratch buffers (reused across every
	// sentence it processes) and a private evidence accumulator folded into
	// the shared store once at the end. Telemetry goes through a worker-
	// owned obs handle (per-worker progress slot, locally buffered spans),
	// so the hot loop never contends on a shared observability structure.
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wo := o.Worker(w)
			local := int64(0)
			acc := evidence.NewLocal()
			var (
				sents    []token.Sentence
				toks     []token.Token
				tagged   []pos.Tagged
				mentions []tagger.Mention
				stmts    []extract.Statement
				psc      depparse.Scratch
				tsc      tagger.Scratch
			)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					break
				}
				wo.DocStart()
				docSents, docStmts := int64(0), int64(0)
				sents, toks = token.SplitSentencesInto(sents[:0], toks[:0], docs[i].Text)
				for _, sent := range sents {
					local++
					docSents++
					tagged = posTagger.TagInto(tagged[:0], sent)
					mentions = entTagger.TagInto(mentions[:0], &tsc, tagged)
					if len(mentions) == 0 {
						continue // no entity, nothing to extract
					}
					tree := parser.ParseInto(&psc, tagged)
					stmts = extractor.ExtractInto(stmts[:0], tree, mentions)
					for _, st := range stmts {
						acc.Add(st)
					}
					docStmts += int64(len(stmts))
				}
				wo.DocEnd(i, docSents, docStmts)
				pm.DocSentences.Observe(float64(docSents))
			}
			acc.FlushTo(store)
			sentences.Add(local)
			wo.Close("extract")
		}(w)
	}
	wg.Wait()
	res.Store = store
	res.Sentences = sentences.Load()
	res.TotalStatements = store.TotalStatements()
	res.DistinctPairs = store.Len()
	res.Timings.Extraction = span.End()
	pm.Documents.Add(int64(res.Documents))
	pm.Sentences.Add(res.Sentences)
	pm.Statements.Add(res.TotalStatements)

	// Phases 2-3 (grouping, EM) and the lookup index are shared with
	// RunAnnotated.
	finishRun(res, base, cfg)
	res.Timings.Total = total.End()
	o.EndRun()
	return res
}
