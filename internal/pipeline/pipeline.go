// Package pipeline orchestrates the full Surveyor dataflow of Algorithm 1:
// parallel evidence extraction over document shards (the map step the paper
// ran on up to 5000 nodes), evidence grouping by (type, property) with the
// occurrence threshold ρ (the reduce step), per-group EM fitting, and
// classification of every knowledge-base entity — including entities with
// no evidence at all. Per-phase timings are recorded for the Section-7.1
// analysis.
//
// Fault tolerance: every entry point has a context-aware variant
// (RunContext, RunAnnotatedContext, RunStream) that honours cancellation
// at document granularity and returns a typed *PartialError carrying the
// consistent partial result. Each worker wraps per-document processing in
// a recover boundary: a panicking document is quarantined — recorded on
// Result.Quarantined — and the run continues, with results bit-identical
// to a clean run over the corpus minus the quarantined documents (see
// fault.go for the contract).
//
// Observability: a Config.Obs sink receives write-only telemetry (metrics,
// phase/worker spans, EM convergence trajectories, live progress). The
// pipeline never reads obs state — timestamps flow through the obs-owned
// clock and the only value that returns is each phase span's duration,
// which feeds Result.Timings (explicitly outside the determinism
// contract). Runs with a live sink are bit-identical to runs with a nil
// one; the testkit differential suite proves it.
package pipeline

import (
	"context"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/obs"
	"repro/internal/tagger"
)

// Config controls a pipeline run.
type Config struct {
	// Workers is the extraction/EM parallelism; 0 means GOMAXPROCS.
	Workers int
	// Rho is the minimum number of statements a (type, property) pair
	// needs to be modelled (the paper used 100).
	Rho int64
	// Version selects the extraction pattern version (default V4).
	Version extract.Version
	// EM configures the per-group fit.
	EM core.EMConfig
	// Obs is the optional observability sink. Nil disables all telemetry
	// at the cost of one branch per record call; results are bit-identical
	// either way.
	Obs *obs.RunObs
	// Fault, when non-nil, is called for every raw document just before it
	// is processed, inside the worker's quarantine boundary — a panic in
	// the hook quarantines the document exactly like a panic in the NLP
	// stack. It is the deterministic chaos hook of the testkit fault-
	// injection suite (select documents by content hash, never by
	// schedule); it must not mutate the document. Ignored by the
	// pre-annotated entry points.
	Fault func(index int, doc *corpus.Document)
	// StreamBuffer bounds the RunStream feed channel (0 means 4×Workers).
	StreamBuffer int
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// workerCount caps the goroutine count at the number of work items.
func workerCount(workers, items int) int {
	if workers > items {
		return items
	}
	return workers
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = defaultWorkers()
	}
	if c.Rho == 0 {
		c.Rho = 100
	}
	if c.Version == 0 {
		c.Version = extract.V4
	}
	if c.EM.MaxIterations == 0 {
		c.EM = core.DefaultEMConfig()
	}
	return c
}

// EntityOpinion is the classified dominant opinion for one entity under
// one (type, property) group.
type EntityOpinion struct {
	Entity      kb.EntityID
	Pos, Neg    int64
	Probability float64
	Opinion     core.Opinion
}

// GroupResult is the fitted model and per-entity classification of one
// (type, property) combination.
type GroupResult struct {
	Key      evidence.GroupKey
	Model    core.Model
	Trace    core.Trace
	Entities []EntityOpinion
}

// Timings holds per-phase wall-clock durations (Section 7.1 reports these
// for the production run). Timings are the one schedule-dependent field
// of a Result: the differential suite ignores them.
type Timings struct {
	Extraction time.Duration
	Grouping   time.Duration
	EM         time.Duration
	// Index is the time to build the opinion/group lookup indexes.
	Index time.Duration
	// Total is the whole run, end to end.
	Total time.Duration
}

// Result is the output of a pipeline run.
type Result struct {
	Store *evidence.Store
	// Groups holds one entry per modelled (type, property) pair.
	Groups []GroupResult
	// TotalStatements counts extracted evidence statements.
	TotalStatements int64
	// DistinctPairs counts distinct (entity, property) pairs with evidence
	// (the "60 million entity-property combinations" statistic).
	DistinctPairs int
	// PairsBeforeFilter counts distinct (type, property) pairs before the
	// ρ filter (the "7 million" statistic); len(Groups) is the after.
	PairsBeforeFilter int
	// Sentences and Documents count the committed input: documents
	// quarantined by the fault boundary contribute to neither.
	Sentences int64
	Documents int
	// Quarantined lists the documents the panic boundary removed from the
	// run, sorted by document index. Empty on a healthy run.
	Quarantined []Quarantined
	// SkippedLines counts corpus lines dropped by a lenient streaming read
	// (RunStream only; always zero for in-memory runs).
	SkippedLines int64
	Timings      Timings

	index      map[opinionKey]*EntityOpinion
	groupIndex map[evidence.GroupKey]*GroupResult
}

type opinionKey struct {
	entity   kb.EntityID
	property string
}

// Opinion looks up the classification of an entity-property pair. The
// boolean is false when the pair's group was never modelled.
func (r *Result) Opinion(e kb.EntityID, property string) (EntityOpinion, bool) {
	op, ok := r.index[opinionKey{e, property}]
	if !ok {
		return EntityOpinion{}, false
	}
	return *op, true
}

// Group returns the result for a (type, property) pair, if modelled.
func (r *Result) Group(typ, property string) (*GroupResult, bool) {
	g, ok := r.groupIndex[evidence.GroupKey{Type: typ, Property: property}]
	return g, ok
}

// nlpComponents is the read-only NLP front end shared by every extraction
// worker: the components are safe for concurrent use, so they are built
// once per run instead of once per worker.
type nlpComponents struct {
	posTagger *pos.Tagger
	parser    *depparse.Parser
	entTagger *tagger.Tagger
	extractor *extract.Extractor
}

func newNLPComponents(lex *lexicon.Lexicon, base *kb.KB, v extract.Version) *nlpComponents {
	return &nlpComponents{
		posTagger: pos.New(lex),
		parser:    depparse.New(lex),
		entTagger: tagger.New(base, lex),
		extractor: extract.NewVersion(lex, v),
	}
}

// docProcessor owns one extraction worker's NLP scratch state and runs the
// per-document fault boundary. All of a document's output lands in the
// processor (statement buffer, sentence count) and is committed to shared
// state by the caller only when process reports success, so a quarantined
// document leaves no trace.
type docProcessor struct {
	*nlpComponents

	sents    []token.Sentence
	toks     []token.Token
	tagged   []pos.Tagged
	mentions []tagger.Mention
	stmts    []extract.Statement
	psc      depparse.Scratch
	tsc      tagger.Scratch

	// buf and sentences hold the current document's output until commit.
	buf       []extract.Statement
	sentences int64
}

// process runs the NLP front end over one document inside the quarantine
// boundary. ok=false reports a panic, with the rendered reason; the
// partially filled buffer is discarded by the next call.
func (p *docProcessor) process(index int, doc *corpus.Document, fault func(int, *corpus.Document)) (reason string, ok bool) {
	p.buf = p.buf[:0]
	p.sentences = 0
	ok = true
	defer func() {
		if r := recover(); r != nil {
			reason, ok = panicReason(r), false
		}
	}()
	if fault != nil {
		fault(index, doc)
	}
	// The sentence loop works on locals so slice headers live in registers
	// and stack slots, as they did before the processor struct existed; the
	// headers are written back only on success. A panic loses at most the
	// capacity grown during the failed document — the next call re-slices
	// from the stale headers — and the caller ignores p.buf/p.sentences for
	// a quarantined document.
	sents, toks := token.SplitSentencesInto(p.sents[:0], p.toks[:0], doc.Text)
	tagged, mentions, stmts, buf := p.tagged, p.mentions, p.stmts, p.buf
	sentences := int64(0)
	for _, sent := range sents {
		sentences++
		tagged = p.posTagger.TagInto(tagged[:0], sent)
		mentions = p.entTagger.TagInto(mentions[:0], &p.tsc, tagged)
		if len(mentions) == 0 {
			continue // no entity, nothing to extract
		}
		tree := p.parser.ParseInto(&p.psc, tagged)
		stmts = p.extractor.ExtractInto(stmts[:0], tree, mentions)
		buf = append(buf, stmts...)
	}
	p.sents, p.toks = sents, toks
	p.tagged, p.mentions, p.stmts = tagged, mentions, stmts
	p.buf, p.sentences = buf, sentences
	return "", true
}

// Run executes the full pipeline over the documents. It never stops early:
// cancellation is the business of RunContext, to which Run delegates with
// a background context.
func Run(docs []corpus.Document, base *kb.KB, lex *lexicon.Lexicon, cfg Config) *Result {
	//lint:allow ctxflow documented non-cancellable entry point; callers wanting cancellation use RunContext
	res, _ := RunContext(context.Background(), docs, base, lex, cfg)
	return res
}

// RunContext executes the full pipeline over the documents, honouring ctx
// at document granularity: once ctx is cancelled, workers stop claiming
// documents (a claimed document is always finished — committed or
// quarantined). A cancelled run still groups and models the evidence it
// committed, and returns that partial result both directly and inside a
// *PartialError. Panicking documents are quarantined, not fatal; see
// Result.Quarantined and the contract in fault.go.
func RunContext(ctx context.Context, docs []corpus.Document, base *kb.KB, lex *lexicon.Lexicon, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	o := cfg.Obs
	workers := workerCount(cfg.Workers, len(docs))
	o.StartRun(len(docs), workers)
	total := o.Phase("run")

	// Phase 1: parallel extraction (map).
	span := o.Phase("extract")
	pm := o.PipelineMetrics()
	ext := extractDocs(ctx, docs, base, lex, cfg, 0)
	res.Quarantined = ext.Quarantined
	res.Documents = ext.Consumed - len(res.Quarantined)
	res.Store = ext.Store
	res.Sentences = ext.Sentences
	res.TotalStatements = ext.Store.TotalStatements()
	res.DistinctPairs = ext.Store.Len()
	res.Timings.Extraction = span.End()
	pm.Documents.Add(int64(res.Documents))
	pm.Sentences.Add(res.Sentences)
	pm.Statements.Add(res.TotalStatements)
	consumed := ext.Consumed

	// Phases 2-3 (grouping, EM) and the lookup index are shared with
	// RunAnnotated. They run to completion even when ctx was cancelled:
	// the committed evidence is already in memory and bounded, and
	// modelling it is what makes the partial result — and the -report a
	// SIGINT-ed cmd/surveyor flushes on the way down — exactly the clean
	// result over the committed subset.
	finishRun(res, base, cfg)
	res.Timings.Total = total.End()
	o.EndRun()
	if consumed < len(docs) {
		return res, &PartialError{Result: res, Processed: res.Documents, Consumed: consumed, Err: ctx.Err()}
	}
	return res, nil
}
