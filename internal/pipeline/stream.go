package pipeline

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
)

// streamItem carries one document and its zero-based stream sequence
// number from the feeder to a worker.
type streamItem struct {
	seq int
	doc corpus.Document
}

// RunStream executes the full pipeline over documents drawn from a
// corpus.Iterator, so corpora larger than RAM can run: at most
// Config.StreamBuffer documents (default 4×Workers) are in flight between
// the reader and the workers, and nothing else scales with corpus size.
//
// Semantics match RunContext with stream sequence numbers standing in for
// document indices: panicking documents are quarantined (Result.Quarantined
// records their sequence numbers), cancellation stops the feed at document
// granularity, and a run cut short — by ctx or by a fatal iterator error —
// still models its committed evidence and returns the partial result inside
// a *PartialError. Lines a lenient iterator skipped are surfaced on
// Result.SkippedLines. Every document the feeder hands out is processed to
// completion, so the consumed set is the contiguous prefix [0, Consumed) of
// the stream and the quarantine-determinism contract of fault.go carries
// over unchanged.
func RunStream(ctx context.Context, it *corpus.Iterator, base *kb.KB, lex *lexicon.Lexicon, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	o := cfg.Obs
	workers := cfg.Workers
	o.StartRun(0, workers) // total unknown up front
	total := o.Phase("run")

	span := o.Phase("extract")
	pm := o.PipelineMetrics()
	store := evidence.NewStore()
	nlp := newNLPComponents(lex, base, cfg.Version)
	var sentences atomic.Int64
	var ql quarantineLog

	buffer := cfg.StreamBuffer
	if buffer <= 0 {
		buffer = 4 * workers
	}
	ch := make(chan streamItem, buffer)

	// The feeder is the only goroutine touching the iterator. It stops on
	// cancellation or a fatal read error and then closes the channel; both
	// outcome flags are written before the close, and read only after the
	// workers — whose range loops end at the close — have been joined.
	var sent int
	var readErr error
	var truncated bool
	go func() {
		defer close(ch)
		for it.Next() {
			select {
			case ch <- streamItem{seq: sent, doc: it.Doc()}:
				sent++
			case <-ctx.Done():
				truncated = true
				return
			}
		}
		if err := it.Err(); err != nil {
			readErr = err
			truncated = true
		}
	}()

	// Workers never check ctx themselves: every document the feeder handed
	// out is processed to completion (committed or quarantined), keeping
	// the consumed prefix contiguous. Cancellation latency is bounded by
	// the channel capacity.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wo := o.Worker(w)
			local := int64(0)
			acc := evidence.NewLocal()
			proc := &docProcessor{nlpComponents: nlp}
			for item := range ch {
				wo.DocStart()
				if reason, ok := proc.process(item.seq, &item.doc, cfg.Fault); !ok {
					ql.add(item.seq, reason)
					pm.QuarantinedDocs.Inc()
					wo.DocEnd(item.seq, 0, 0)
					continue
				}
				for _, st := range proc.buf {
					acc.Add(st)
				}
				local += proc.sentences
				wo.DocEnd(item.seq, proc.sentences, int64(len(proc.buf)))
				pm.DocSentences.Observe(float64(proc.sentences))
			}
			acc.FlushTo(store)
			sentences.Add(local)
			wo.Close("extract")
		}(w)
	}
	wg.Wait()

	res.Quarantined = ql.sorted()
	res.Documents = sent - len(res.Quarantined)
	res.Store = store
	res.Sentences = sentences.Load()
	res.TotalStatements = store.TotalStatements()
	res.DistinctPairs = store.Len()
	res.SkippedLines = it.Stats().Skipped()
	res.Timings.Extraction = span.End()
	pm.Documents.Add(int64(res.Documents))
	pm.Sentences.Add(res.Sentences)
	pm.Statements.Add(res.TotalStatements)
	pm.SkippedLines.Add(res.SkippedLines)

	finishRun(res, base, cfg)
	res.Timings.Total = total.End()
	o.EndRun()
	if truncated {
		cause := readErr
		if cause == nil {
			cause = ctx.Err()
		}
		return res, &PartialError{Result: res, Processed: res.Documents, Consumed: sent, Err: cause}
	}
	return res, nil
}
