package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
	"repro/internal/stats"
)

// TestPipelineSurvivesGarbageInput is the failure-injection test: the
// pipeline must neither panic nor fabricate evidence when fed degenerate
// or adversarial documents.
func TestPipelineSurvivesGarbageInput(t *testing.T) {
	base, lex, _ := world(t, 0.1)
	rng := stats.NewRNG(1234)

	garbage := []corpus.Document{
		{Text: ""},
		{Text: "     \n\t  "},
		{Text: "...!!!???,,,;;;"},
		{Text: strings.Repeat("a ", 500)},
		{Text: strings.Repeat("kitten ", 200)},                // entity spam, no predicates
		{Text: "is is is is are are not not never never"},     // function-word soup
		{Text: "cute cute cute cute"},                         // adjective soup, no entity
		{Text: "Kittens Kittens Kittens are are cute cute."},  // stutter
		{Text: "kitten spider kitten spider kitten spider"},   // bare mention list
		{Text: "The the a an and or but not kitten."},         //
		{Text: "Kittens are cute" + strings.Repeat("!", 100)}, // punctuation flood
		{Text: "I DON'T THINK THAT KITTENS ARE NEVER CUTE."},  // all caps
	}
	// Random token salad drawn from the lexicon's word classes.
	words := []string{"kitten", "is", "not", "cute", "the", "a", "and",
		"for", "very", "never", "I", "think", "that", ",", ".", "spider"}
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(30)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		garbage = append(garbage, corpus.Document{Text: strings.Join(parts, " ")})
	}

	res := Run(garbage, base, lex, Config{Rho: 1})
	if res.Documents != len(garbage) {
		t.Fatalf("documents = %d", res.Documents)
	}
	// The stutter/caps documents may legitimately yield a handful of
	// statements; the bulk of the garbage must yield nothing.
	if res.TotalStatements > 40 {
		t.Fatalf("garbage produced %d statements", res.TotalStatements)
	}
}

// TestPipelineMixedGarbageAndSignal verifies that garbage mixed into a
// real corpus does not change the decisions.
func TestPipelineMixedGarbageAndSignal(t *testing.T) {
	base, lex, snap := world(t, 1)
	clean := Run(snap.Documents, base, lex, Config{Rho: 20})

	mixed := append([]corpus.Document{}, snap.Documents...)
	for i := 0; i < 100; i++ {
		mixed = append(mixed, corpus.Document{Text: "!!! ??? ,,, the the the"})
	}
	dirty := Run(mixed, base, lex, Config{Rho: 20})

	gc, ok1 := clean.Group("animal", "cute")
	gd, ok2 := dirty.Group("animal", "cute")
	if !ok1 || !ok2 {
		t.Fatal("group missing")
	}
	for i := range gc.Entities {
		if gc.Entities[i].Opinion != gd.Entities[i].Opinion {
			t.Fatalf("garbage changed the opinion of entity %d", i)
		}
	}
}

// TestPipelineQuarantinesPanickingDocs asserts the per-document panic
// boundary: faulted documents land in Result.Quarantined in index order
// with the panic value as reason, and everything else is processed as if
// they were never in the corpus.
func TestPipelineQuarantinesPanickingDocs(t *testing.T) {
	base, lex, snap := world(t, 0.3)
	docs := snap.Documents
	cfg := Config{Rho: 20, Workers: 8}
	cfg.Fault = func(i int, _ *corpus.Document) {
		if i%17 == 0 {
			panic("boom")
		}
	}
	res, err := RunContext(context.Background(), docs, base, lex, cfg)
	if err != nil {
		t.Fatalf("quarantine must not fail the run: %v", err)
	}
	want := (len(docs) + 16) / 17
	if len(res.Quarantined) != want {
		t.Fatalf("quarantined %d documents, want %d", len(res.Quarantined), want)
	}
	for qi, q := range res.Quarantined {
		if q.Doc != qi*17 {
			t.Errorf("quarantine %d is doc %d, want %d", qi, q.Doc, qi*17)
		}
		if q.Reason != "panic: boom" {
			t.Errorf("quarantine reason = %q", q.Reason)
		}
	}
	if res.Documents != len(docs)-want {
		t.Errorf("Documents = %d, want %d", res.Documents, len(docs)-want)
	}

	kept := make([]corpus.Document, 0, len(docs))
	for i := range docs {
		if i%17 != 0 {
			kept = append(kept, docs[i])
		}
	}
	clean := Run(kept, base, lex, Config{Rho: 20, Workers: 1})
	if res.TotalStatements != clean.TotalStatements || res.Sentences != clean.Sentences {
		t.Errorf("faulted run: %d statements / %d sentences, clean run over survivors: %d / %d",
			res.TotalStatements, res.Sentences, clean.TotalStatements, clean.Sentences)
	}
}

// TestPipelineCancelNoDoubleCount cancels mid-run and asserts the partial
// result counted every committed statement exactly once: its evidence
// store is bit-identical to a fresh single-threaded run over the consumed
// prefix.
func TestPipelineCancelNoDoubleCount(t *testing.T) {
	base, lex, snap := world(t, 0.5)
	docs := snap.Documents
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	cfg := Config{Rho: 20, Workers: 4}
	cfg.Fault = func(int, *corpus.Document) {
		if seen.Add(1) == int64(len(docs)/2) {
			cancel()
		}
	}
	res, err := RunContext(ctx, docs, base, lex, cfg)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PartialError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause = %v, want context.Canceled", pe.Err)
	}
	if pe.Consumed >= len(docs) || pe.Consumed < len(docs)/2 {
		t.Fatalf("consumed %d of %d — cancellation fired too early or not at all", pe.Consumed, len(docs))
	}
	if pe.Processed != res.Documents || res.Documents != pe.Consumed {
		t.Fatalf("processed %d, consumed %d, Documents %d — inconsistent", pe.Processed, pe.Consumed, res.Documents)
	}

	replay := Run(docs[:pe.Consumed], base, lex, Config{Rho: 20, Workers: 1})
	if res.TotalStatements != replay.TotalStatements {
		t.Fatalf("partial run counted %d statements, replay of consumed prefix %d",
			res.TotalStatements, replay.TotalStatements)
	}
	a, b := res.Store.Snapshot(), replay.Store.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("partial store has %d keys, replay %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("store entry %d: %+v vs %+v — a statement was double- or under-counted", i, a[i], b[i])
		}
	}
}
