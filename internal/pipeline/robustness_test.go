package pipeline

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/stats"
)

// TestPipelineSurvivesGarbageInput is the failure-injection test: the
// pipeline must neither panic nor fabricate evidence when fed degenerate
// or adversarial documents.
func TestPipelineSurvivesGarbageInput(t *testing.T) {
	base, lex, _ := world(t, 0.1)
	rng := stats.NewRNG(1234)

	garbage := []corpus.Document{
		{Text: ""},
		{Text: "     \n\t  "},
		{Text: "...!!!???,,,;;;"},
		{Text: strings.Repeat("a ", 500)},
		{Text: strings.Repeat("kitten ", 200)},                // entity spam, no predicates
		{Text: "is is is is are are not not never never"},     // function-word soup
		{Text: "cute cute cute cute"},                         // adjective soup, no entity
		{Text: "Kittens Kittens Kittens are are cute cute."},  // stutter
		{Text: "kitten spider kitten spider kitten spider"},   // bare mention list
		{Text: "The the a an and or but not kitten."},         //
		{Text: "Kittens are cute" + strings.Repeat("!", 100)}, // punctuation flood
		{Text: "I DON'T THINK THAT KITTENS ARE NEVER CUTE."},  // all caps
	}
	// Random token salad drawn from the lexicon's word classes.
	words := []string{"kitten", "is", "not", "cute", "the", "a", "and",
		"for", "very", "never", "I", "think", "that", ",", ".", "spider"}
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(30)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		garbage = append(garbage, corpus.Document{Text: strings.Join(parts, " ")})
	}

	res := Run(garbage, base, lex, Config{Rho: 1})
	if res.Documents != len(garbage) {
		t.Fatalf("documents = %d", res.Documents)
	}
	// The stutter/caps documents may legitimately yield a handful of
	// statements; the bulk of the garbage must yield nothing.
	if res.TotalStatements > 40 {
		t.Fatalf("garbage produced %d statements", res.TotalStatements)
	}
}

// TestPipelineMixedGarbageAndSignal verifies that garbage mixed into a
// real corpus does not change the decisions.
func TestPipelineMixedGarbageAndSignal(t *testing.T) {
	base, lex, snap := world(t, 1)
	clean := Run(snap.Documents, base, lex, Config{Rho: 20})

	mixed := append([]corpus.Document{}, snap.Documents...)
	for i := 0; i < 100; i++ {
		mixed = append(mixed, corpus.Document{Text: "!!! ??? ,,, the the the"})
	}
	dirty := Run(mixed, base, lex, Config{Rho: 20})

	gc, ok1 := clean.Group("animal", "cute")
	gd, ok2 := dirty.Group("animal", "cute")
	if !ok1 || !ok2 {
		t.Fatal("group missing")
	}
	for i := range gc.Entities {
		if gc.Entities[i].Opinion != gd.Entities[i].Opinion {
			t.Fatalf("garbage changed the opinion of entity %d", i)
		}
	}
}
