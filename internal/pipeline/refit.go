// Reusable pieces of the pipeline for callers that do not run it end to
// end — above all the incremental miner (internal/incremental), which
// extracts per-epoch evidence deltas, re-fits only the dirty groups, and
// splices the refreshed fits into a published snapshot. Everything here
// is a refactoring of RunContext/finishRun internals into entry points,
// with behaviour proven bit-identical by the testkit differential suites.
package pipeline

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/evidence"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
)

// Extraction is the output of the parallel extraction phase alone: the
// evidence delta plus the input-side statistics a Result would report for
// it. Quarantined indices carry the document offset passed to
// ExtractEvidence, so epoch-local runs line up with a batch run over the
// concatenated corpus.
type Extraction struct {
	// Store holds the extracted evidence counters.
	Store *evidence.Store
	// Sentences counts sentences of committed documents.
	Sentences int64
	// Quarantined lists the documents the panic boundary removed, sorted
	// by (offset-adjusted) document index.
	Quarantined []Quarantined
	// Consumed is the number of leading documents claimed: len(docs)
	// unless the context was cancelled mid-phase.
	Consumed int
}

// ExtractEvidence runs only the parallel extraction phase (the map step)
// over docs and returns the evidence delta. docOffset shifts every
// document index the phase emits — quarantine records and the Fault hook
// argument — by the number of documents that precede this batch, so an
// epoch-split replay reports exactly the indices of one batch run over
// the concatenation. On cancellation the partial extraction is returned
// together with ctx.Err(); callers with atomic-epoch semantics (the
// incremental miner) discard it.
func ExtractEvidence(ctx context.Context, docs []corpus.Document, base *kb.KB, lex *lexicon.Lexicon, cfg Config, docOffset int) (*Extraction, error) {
	cfg = cfg.withDefaults()
	ext := extractDocs(ctx, docs, base, lex, cfg, docOffset)
	if ext.Consumed < len(docs) {
		return ext, ctx.Err()
	}
	return ext, nil
}

// extractDocs is the extraction loop shared by RunContext and
// ExtractEvidence: an atomic work index feeds documents to workers, each
// owning one docProcessor and one worker-local evidence accumulator.
// Documents are fed through a shared atomic index rather than static
// shards: document lengths are heavily skewed (the long-tail shapes of
// Figure 9), and pre-cut shards leave workers idle behind the slowest
// one. The evidence store is commutative, so the schedule cannot change
// the result — the testkit differential suite proves it.
//
// Each worker owns one docProcessor (NLP scratch buffers reused across
// every sentence, plus the per-document fault boundary) and a private
// evidence accumulator folded into the shared store once at the end.
// Telemetry goes through a worker-owned obs handle (per-worker progress
// slot, locally buffered spans), so the hot loop never contends on a
// shared observability structure.
func extractDocs(ctx context.Context, docs []corpus.Document, base *kb.KB, lex *lexicon.Lexicon, cfg Config, docOffset int) *Extraction {
	o := cfg.Obs
	pm := o.PipelineMetrics()
	store := evidence.NewStore()
	nlp := newNLPComponents(lex, base, cfg.Version)
	workers := workerCount(cfg.Workers, len(docs))
	var sentences atomic.Int64
	var ql quarantineLog

	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wo := o.Worker(w)
			local := int64(0)
			acc := evidence.NewLocal()
			proc := &docProcessor{nlpComponents: nlp}
			for {
				if ctx.Err() != nil {
					break
				}
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					break
				}
				doc := docOffset + i
				wo.DocStart()
				if reason, ok := proc.process(doc, &docs[i], cfg.Fault); !ok {
					ql.add(doc, reason)
					pm.QuarantinedDocs.Inc()
					wo.DocEnd(doc, 0, 0)
					continue
				}
				for _, st := range proc.buf {
					acc.Add(st)
				}
				local += proc.sentences
				wo.DocEnd(doc, proc.sentences, int64(len(proc.buf)))
				pm.DocSentences.Observe(float64(proc.sentences))
			}
			acc.FlushTo(store)
			sentences.Add(local)
			wo.Close("extract")
		}(w)
	}
	wg.Wait()

	// Every index below consumed was claimed by a worker, and a claimed
	// document is always finished, so the processed prefix is contiguous:
	// committed documents are exactly [0, consumed) minus the quarantine.
	consumed := int(next.Load())
	if consumed > len(docs) {
		consumed = len(docs)
	}
	return &Extraction{
		Store:       store,
		Sentences:   sentences.Load(),
		Quarantined: ql.sorted(),
		Consumed:    consumed,
	}
}

// FitGroups runs the per-group EM phase over an explicit group list and
// returns one GroupResult per group, in input order. It is the re-fit
// entry point of the incremental miner: handed only the dirty groups, it
// does work proportional to them, and each fit is bit-identical to the
// one finishRun would produce for the same group — both run the same
// worker pool over the same deterministic per-group computation.
func FitGroups(groups []evidence.Group, cfg Config) []GroupResult {
	return fitGroups(groups, cfg.withDefaults())
}

// fitGroups is the EM worker pool shared by finishRun and FitGroups: a
// fixed set of workers claims groups through an atomic counter, so each
// worker reuses one tuple buffer and one classification buffer instead of
// allocating per group. Convergence telemetry flows through a write-only
// per-group observer — it cannot alter the fit, so obs-on and obs-off
// runs stay bit-identical.
func fitGroups(groups []evidence.Group, cfg Config) []GroupResult {
	o := cfg.Obs
	pm := o.PipelineMetrics()
	out := make([]GroupResult, len(groups))
	var wg sync.WaitGroup
	var nextGroup atomic.Int64
	for w := 0; w < workerCount(cfg.Workers, len(groups)); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tuples []core.Tuple
			var results []core.Result
			for {
				gi := int(nextGroup.Add(1)) - 1
				if gi >= len(groups) {
					break
				}
				g := groups[gi]
				if cap(tuples) < len(g.Entities) {
					tuples = make([]core.Tuple, len(g.Entities))
				} else {
					tuples = tuples[:len(g.Entities)]
				}
				for i, ec := range g.Entities {
					tuples[i] = core.Tuple{Pos: int(ec.Pos), Neg: int(ec.Neg)}
				}
				emCfg := cfg.EM
				gobs := o.EMGroup(g.Key.Type, g.Key.Property, len(g.Entities))
				if gobs != nil {
					emCfg.Observer = func(_ int, p core.Params, ll float64) {
						gobs.Iter(p.PA, p.NpPlus, p.NpMinus, ll)
					}
				}
				var model core.Model
				var trace core.Trace
				model, results, trace = core.FitAndClassifyInto(results[:0], tuples, emCfg)
				if gobs != nil {
					finalLL := 0.0
					if n := len(trace.LogLikelihoods); n > 0 {
						finalLL = trace.LogLikelihoods[n-1]
					}
					gobs.Done(trace.Iterations, trace.Converged, finalLL)
				}
				pm.EMIterations.Observe(float64(trace.Iterations))
				gr := GroupResult{Key: g.Key, Model: model, Trace: trace,
					Entities: make([]EntityOpinion, len(g.Entities))}
				for i, ec := range g.Entities {
					gr.Entities[i] = EntityOpinion{
						Entity:      ec.Entity,
						Pos:         ec.Pos,
						Neg:         ec.Neg,
						Probability: results[i].Probability,
						Opinion:     results[i].Opinion,
					}
				}
				out[gi] = gr
			}
		}()
	}
	wg.Wait()
	return out
}

// ReduceStats carries the input-side statistics a reduce-only run cannot
// derive from the merged evidence store: committed documents, sentence
// counts, and the (corpus-global) quarantine records of the map phase.
type ReduceStats struct {
	Sentences    int64
	Documents    int
	Quarantined  []Quarantined
	SkippedLines int64
}

// ReduceStore runs the reduce half of the pipeline — grouping, EM, and
// the lookup index, exactly the finishRun phases of a batch run — over an
// externally merged evidence store. It is the coordinator's entry point
// in the distributed miner (internal/dist): workers ship evidence deltas,
// the coordinator merges them through Store.Merge in deterministic shard
// order and hands the result here, so the reduce output is bit-identical
// to a single-process run whose extraction committed the same store. The
// caller owns run-lifecycle telemetry (obs StartRun/EndRun) and the
// extraction/total timings.
func ReduceStore(store *evidence.Store, base *kb.KB, cfg Config, stats ReduceStats) *Result {
	cfg = cfg.withDefaults()
	res := &Result{
		Store:           store,
		TotalStatements: store.TotalStatements(),
		DistinctPairs:   store.Len(),
		Sentences:       stats.Sentences,
		Documents:       stats.Documents,
		Quarantined:     stats.Quarantined,
		SkippedLines:    stats.SkippedLines,
	}
	pm := cfg.Obs.PipelineMetrics()
	pm.Documents.Add(int64(res.Documents))
	pm.Sentences.Add(res.Sentences)
	pm.Statements.Add(res.TotalStatements)
	finishRun(res, base, cfg)
	return res
}

// ResultStats carries the corpus-level statistics of an assembled Result
// — everything AssembleResult cannot derive from the groups alone.
type ResultStats struct {
	TotalStatements   int64
	DistinctPairs     int
	PairsBeforeFilter int
	Sentences         int64
	Documents         int
	Quarantined       []Quarantined
	SkippedLines      int64
}

// AssembleResult builds an indexed, query-ready Result from already
// fitted groups. groups must be sorted by (type, property) — the order
// every batch entry point produces — so an assembled snapshot is
// field-for-field comparable with a batch Result. The groups slice and
// everything it references are retained; callers treat them as immutable
// after assembly.
func AssembleResult(store *evidence.Store, groups []GroupResult, stats ResultStats) *Result {
	if !sort.SliceIsSorted(groups, func(a, b int) bool {
		if groups[a].Key.Type != groups[b].Key.Type {
			return groups[a].Key.Type < groups[b].Key.Type
		}
		return groups[a].Key.Property < groups[b].Key.Property
	}) {
		panic("pipeline: AssembleResult requires groups sorted by (type, property)")
	}
	res := &Result{
		Store:             store,
		Groups:            groups,
		TotalStatements:   stats.TotalStatements,
		DistinctPairs:     stats.DistinctPairs,
		PairsBeforeFilter: stats.PairsBeforeFilter,
		Sentences:         stats.Sentences,
		Documents:         stats.Documents,
		Quarantined:       stats.Quarantined,
		SkippedLines:      stats.SkippedLines,
	}
	res.buildIndex()
	return res
}

// buildIndex (re)builds the O(1) lookup structures over groups and
// opinions.
func (r *Result) buildIndex() {
	totalEntities := 0
	for gi := range r.Groups {
		totalEntities += len(r.Groups[gi].Entities)
	}
	r.index = make(map[opinionKey]*EntityOpinion, totalEntities)
	r.groupIndex = make(map[evidence.GroupKey]*GroupResult, len(r.Groups))
	for gi := range r.Groups {
		g := &r.Groups[gi]
		r.groupIndex[g.Key] = g
		for i := range g.Entities {
			r.index[opinionKey{g.Entities[i].Entity, g.Key.Property}] = &g.Entities[i]
		}
	}
}
