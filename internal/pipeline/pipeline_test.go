package pipeline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
)

// world builds a compact end-to-end fixture: KB, lexicon, snapshot.
func world(t *testing.T, scale float64) (*kb.KB, *lexicon.Lexicon, *corpus.Snapshot) {
	t.Helper()
	base := kb.New()
	animals := []struct {
		name string
		cute float64
	}{
		{"kitten", 0.98}, {"puppy", 0.97}, {"koala", 0.95}, {"panda", 0.93},
		{"otter", 0.9}, {"rabbit", 0.9}, {"squirrel", 0.85}, {"pony", 0.9},
		{"spider", 0.05}, {"scorpion", 0.03}, {"cobra", 0.05}, {"wasp", 0.04},
		{"rat", 0.2}, {"hyena", 0.15}, {"piranha", 0.06}, {"slug", 0.1},
	}
	for _, a := range animals {
		base.Add(kb.Entity{Name: a.name, Type: "animal",
			Attributes: map[string]float64{"cuteness": a.cute}})
	}
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	specs := []corpus.Spec{{
		Type: "animal", Property: "cute", PA: 0.92, NpPlus: 35, NpMinus: 4,
		PosFraction: corpus.SigmoidFraction("cuteness", 0.5, 0.1, 0.95),
	}}
	snap := corpus.NewGenerator(base, specs, corpus.Config{Seed: 5, Scale: scale}).Generate()
	return base, lex, snap
}

func TestRunEndToEnd(t *testing.T) {
	base, lex, snap := world(t, 1)
	res := Run(snap.Documents, base, lex, Config{Rho: 20})
	if res.TotalStatements == 0 {
		t.Fatal("no statements extracted")
	}
	if res.Sentences == 0 || res.Documents == 0 {
		t.Fatal("no input processed")
	}
	g, ok := res.Group("animal", "cute")
	if !ok {
		t.Fatalf("cute-animals group not modelled; groups: %d", len(res.Groups))
	}
	if len(g.Entities) != base.Len() {
		t.Fatalf("group covers %d entities, want %d (all of the type)", len(g.Entities), base.Len())
	}

	// Classification must recover the latent truth for nearly all animals.
	correct, total := 0, 0
	for _, eo := range g.Entities {
		truth := snap.Truth[corpus.TruthKey{Entity: eo.Entity, Property: "cute"}]
		if eo.Opinion == core.OpinionUnsolved {
			continue
		}
		total++
		if (eo.Opinion == core.OpinionPositive) == truth {
			correct++
		}
	}
	if total < 14 {
		t.Fatalf("only %d of 16 decided", total)
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Fatalf("accuracy = %v (%d/%d)", acc, correct, total)
	}
}

func TestRunOpinionLookup(t *testing.T) {
	base, lex, snap := world(t, 1)
	res := Run(snap.Documents, base, lex, Config{Rho: 20})
	kitten := base.Candidates("kitten")[0]
	op, ok := res.Opinion(kitten, "cute")
	if !ok {
		t.Fatal("kitten/cute not classified")
	}
	if op.Opinion != core.OpinionPositive {
		t.Fatalf("kitten cute = %v (p=%v)", op.Opinion, op.Probability)
	}
	if _, ok := res.Opinion(kitten, "gigantic"); ok {
		t.Fatal("unmodelled property should not resolve")
	}
}

func TestRunRhoFiltersGroups(t *testing.T) {
	base, lex, snap := world(t, 1)
	res := Run(snap.Documents, base, lex, Config{Rho: 1_000_000})
	if len(res.Groups) != 0 {
		t.Fatalf("rho=1M should filter everything, got %d groups", len(res.Groups))
	}
	if res.PairsBeforeFilter == 0 {
		t.Fatal("PairsBeforeFilter should count unmodelled pairs")
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	base, lex, snap := world(t, 1)
	r1 := Run(snap.Documents, base, lex, Config{Rho: 20, Workers: 1})
	r8 := Run(snap.Documents, base, lex, Config{Rho: 20, Workers: 8})
	if r1.TotalStatements != r8.TotalStatements {
		t.Fatalf("statement counts differ: %d vs %d", r1.TotalStatements, r8.TotalStatements)
	}
	g1, ok1 := r1.Group("animal", "cute")
	g8, ok8 := r8.Group("animal", "cute")
	if !ok1 || !ok8 {
		t.Fatal("group missing")
	}
	for i := range g1.Entities {
		if g1.Entities[i].Pos != g8.Entities[i].Pos || g1.Entities[i].Neg != g8.Entities[i].Neg {
			t.Fatalf("entity %d counts differ across worker counts", i)
		}
		if g1.Entities[i].Opinion != g8.Entities[i].Opinion {
			t.Fatalf("entity %d opinions differ across worker counts", i)
		}
	}
}

func TestRunEmptyCorpus(t *testing.T) {
	base, lex, _ := world(t, 1)
	res := Run(nil, base, lex, Config{})
	if res.TotalStatements != 0 || len(res.Groups) != 0 {
		t.Fatalf("empty corpus produced output: %+v", res)
	}
}

func TestRunTimingsPopulated(t *testing.T) {
	base, lex, snap := world(t, 1)
	res := Run(snap.Documents, base, lex, Config{Rho: 20})
	if res.Timings.Extraction <= 0 {
		t.Error("extraction timing missing")
	}
	// Grouping and EM can be sub-microsecond on tiny inputs; just ensure
	// they are non-negative.
	if res.Timings.Grouping < 0 || res.Timings.EM < 0 {
		t.Error("negative timings")
	}
}

func TestRunVersionAffectsExtraction(t *testing.T) {
	base, lex, snap := world(t, 1)
	v4 := Run(snap.Documents, base, lex, Config{Rho: 20, Version: extract.V4})
	v2 := Run(snap.Documents, base, lex, Config{Rho: 20, Version: extract.V2})
	// V2 (no checks, broad copulas) must extract strictly more.
	if v2.TotalStatements <= v4.TotalStatements {
		t.Fatalf("V2 (%d) should extract more than V4 (%d)",
			v2.TotalStatements, v4.TotalStatements)
	}
}

func TestRunZeroEvidenceEntitiesClassified(t *testing.T) {
	// Even entities never mentioned must receive an opinion (the paper's
	// coverage-doubling mechanism).
	base, lex, snap := world(t, 1)
	res := Run(snap.Documents, base, lex, Config{Rho: 20})
	g, ok := res.Group("animal", "cute")
	if !ok {
		t.Fatal("group missing")
	}
	zeroDecided := 0
	for _, eo := range g.Entities {
		if eo.Pos == 0 && eo.Neg == 0 && eo.Opinion != core.OpinionUnsolved {
			zeroDecided++
		}
	}
	// With NpPlus=35 most animals get statements; the test only requires
	// that IF zero-evidence entities exist they are decided, and that the
	// mechanism itself works (checked via a probe below).
	probe := g.Model.PosteriorPositive(core.Tuple{})
	if core.Decide(probe) == core.OpinionUnsolved {
		t.Fatal("zero-evidence probe undecided")
	}
	_ = zeroDecided
}

func TestRunAnnotatedMatchesRun(t *testing.T) {
	base, lex, snap := world(t, 1)
	direct := Run(snap.Documents, base, lex, Config{Rho: 20})
	annotated := Annotate(snap.Documents, base, lex, 0)
	viaAnn := RunAnnotated(annotated, base, lex, Config{Rho: 20})

	if direct.TotalStatements != viaAnn.TotalStatements {
		t.Fatalf("statements differ: %d vs %d", direct.TotalStatements, viaAnn.TotalStatements)
	}
	if direct.DistinctPairs != viaAnn.DistinctPairs {
		t.Fatalf("pairs differ: %d vs %d", direct.DistinctPairs, viaAnn.DistinctPairs)
	}
	gd, ok1 := direct.Group("animal", "cute")
	ga, ok2 := viaAnn.Group("animal", "cute")
	if !ok1 || !ok2 {
		t.Fatal("group missing")
	}
	for i := range gd.Entities {
		if gd.Entities[i] != ga.Entities[i] {
			t.Fatalf("entity %d differs:\n direct %+v\n annotated %+v",
				i, gd.Entities[i], ga.Entities[i])
		}
	}
}

func TestRunAnnotatedVersionSweep(t *testing.T) {
	// The Table-4 use case: annotate once, extract under every version.
	base, lex, snap := world(t, 1)
	annotated := Annotate(snap.Documents, base, lex, 0)
	var counts []int64
	for _, v := range []extract.Version{extract.V1, extract.V2, extract.V3, extract.V4} {
		res := RunAnnotated(annotated, base, lex, Config{Rho: 20, Version: v})
		counts = append(counts, res.TotalStatements)
		// Each must match a direct run at the same version.
		direct := Run(snap.Documents, base, lex, Config{Rho: 20, Version: v})
		if res.TotalStatements != direct.TotalStatements {
			t.Fatalf("version %d: annotated %d vs direct %d",
				v, res.TotalStatements, direct.TotalStatements)
		}
	}
	if counts[1] <= counts[3] {
		t.Fatalf("V2 (%d) should exceed V4 (%d)", counts[1], counts[3])
	}
}
