package pos

import (
	"reflect"
	"testing"

	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/token"
)

// TestTagIntoMatchesTag checks the append contract of the scratch-reuse
// variant: prefix preserved, appended suffix equal to the allocating Tag.
func TestTagIntoMatchesTag(t *testing.T) {
	tg := New(lexicon.Default())
	texts := []string{
		"Kittens are cute.",
		"The very fast dog doesn't play that visit.",
		"A crowded city is pretty noisy!",
	}
	var buf []Tagged
	for _, text := range texts {
		for _, sent := range token.SplitSentences(text) {
			want := tg.Tag(sent)
			prefixLen := len(buf)
			buf = tg.TagInto(buf, sent)
			if !reflect.DeepEqual(buf[prefixLen:], want) {
				t.Fatalf("%q: TagInto suffix diverges\ngot  %+v\nwant %+v",
					text, buf[prefixLen:], want)
			}
		}
	}
}
