package pos

import (
	"testing"

	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/token"
)

// FuzzTag checks the tagger's structural invariants on arbitrary text:
// exactly one tag per token, every tag drawn from the coarse inventory,
// and the underlying tokens passed through unchanged.
func FuzzTag(f *testing.F) {
	f.Add("Kittens are very cute animals.")
	f.Add("I don't think that snakes are never dangerous.")
	f.Add("The 12 big cities of 2015?!")
	f.Add("x")
	f.Add("\x00\xff\t 'n't")
	lex := lexicon.Default()
	tagger := New(lex)
	f.Fuzz(func(t *testing.T, text string) {
		for _, sent := range token.SplitSentences(text) {
			tagged := tagger.Tag(sent)
			if len(tagged) != len(sent.Tokens) {
				t.Fatalf("tagged %d tokens, sentence has %d", len(tagged), len(sent.Tokens))
			}
			for i, tg := range tagged {
				if tg.Tag < lexicon.Other || tg.Tag > lexicon.Mark {
					t.Fatalf("token %d %q: tag %d outside the inventory", i, tg.Text, tg.Tag)
				}
				if tg.Token != sent.Tokens[i] {
					t.Fatalf("token %d mutated by tagging: %+v vs %+v", i, tg.Token, sent.Tokens[i])
				}
			}
		}
	})
}
