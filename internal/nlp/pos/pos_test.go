package pos

import (
	"testing"

	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/token"
)

func tagSentence(t *testing.T, text string) []Tagged {
	t.Helper()
	sents := token.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("expected one sentence for %q, got %d", text, len(sents))
	}
	return New(lexicon.Default()).Tag(sents[0])
}

func wantTags(t *testing.T, text string, want ...lexicon.Tag) {
	t.Helper()
	tagged := tagSentence(t, text)
	if len(tagged) != len(want) {
		t.Fatalf("%q: got %d tokens, want %d", text, len(tagged), len(want))
	}
	for i, tg := range tagged {
		if tg.Tag != want[i] {
			t.Errorf("%q token %d (%q): got %v, want %v", text, i, tg.Text, tg.Tag, want[i])
		}
	}
}

func TestTagCopularSentence(t *testing.T) {
	wantTags(t, "Chicago is very big.",
		lexicon.Propn, lexicon.Verb, lexicon.Adv, lexicon.Adj, lexicon.Punct)
}

func TestTagNegation(t *testing.T) {
	wantTags(t, "Paris is not big.",
		lexicon.Propn, lexicon.Verb, lexicon.Neg, lexicon.Adj, lexicon.Punct)
}

func TestTagContraction(t *testing.T) {
	tagged := tagSentence(t, "I don't think that snakes are never dangerous.")
	byText := map[string]lexicon.Tag{}
	for _, tg := range tagged {
		byText[tg.Lower()] = tg.Tag
	}
	if byText["do"] != lexicon.Aux {
		t.Errorf("do tagged %v, want Aux", byText["do"])
	}
	if byText["n't"] != lexicon.Neg {
		t.Errorf("n't tagged %v, want Neg", byText["n't"])
	}
	if byText["think"] != lexicon.Verb {
		t.Errorf("think tagged %v, want Verb", byText["think"])
	}
	if byText["never"] != lexicon.Neg {
		t.Errorf("never tagged %v, want Neg", byText["never"])
	}
	if byText["dangerous"] != lexicon.Adj {
		t.Errorf("dangerous tagged %v, want Adj", byText["dangerous"])
	}
	if byText["that"] != lexicon.Mark {
		t.Errorf("that tagged %v, want Mark", byText["that"])
	}
}

func TestThatAsDeterminer(t *testing.T) {
	tagged := tagSentence(t, "That city is big.")
	if tagged[0].Tag != lexicon.Det {
		t.Errorf("sentence-initial 'That' before noun: got %v, want Det", tagged[0].Tag)
	}
}

func TestPrettyAmbiguity(t *testing.T) {
	// "pretty big" -> Adv Adj; "is pretty" -> Adj.
	tagged := tagSentence(t, "Rome is pretty big.")
	if tagged[2].Tag != lexicon.Adv {
		t.Errorf("'pretty' before adjective: got %v, want Adv", tagged[2].Tag)
	}
	tagged = tagSentence(t, "Rome is pretty.")
	if tagged[2].Tag != lexicon.Adj {
		t.Errorf("predicate 'pretty': got %v, want Adj", tagged[2].Tag)
	}
}

func TestUnknownCapitalisedIsProperNoun(t *testing.T) {
	tagged := tagSentence(t, "Qozmigrad is big.")
	if tagged[0].Tag != lexicon.Propn {
		t.Errorf("unknown capitalised word: got %v, want Propn", tagged[0].Tag)
	}
}

func TestUnknownSuffixHeuristics(t *testing.T) {
	cases := []struct {
		word string
		want lexicon.Tag
	}{
		{"blorply", lexicon.Adv},
		{"blorpous", lexicon.Adj},
		{"blorpful", lexicon.Adj},
		{"blorpable", lexicon.Adj},
		{"blorp", lexicon.Noun},
	}
	for _, c := range cases {
		tagged := tagSentence(t, "it seems "+c.word+" indeed")
		if tagged[2].Tag != c.want {
			t.Errorf("%q: got %v, want %v", c.word, tagged[2].Tag, c.want)
		}
	}
}

func TestParticipleAfterCopulaIsAdjective(t *testing.T) {
	tagged := tagSentence(t, "Tokyo is crowded.")
	if tagged[2].Tag != lexicon.Adj {
		t.Errorf("'crowded' after copula: got %v, want Adj", tagged[2].Tag)
	}
}

func TestNumberTag(t *testing.T) {
	tagged := tagSentence(t, "It has 42 parks.")
	if tagged[2].Tag != lexicon.Num {
		t.Errorf("42: got %v, want Num", tagged[2].Tag)
	}
}

func TestVerbNounAmbiguity(t *testing.T) {
	tagged := tagSentence(t, "We visit Rome.")
	if tagged[1].Tag != lexicon.Verb {
		t.Errorf("'visit' after pronoun: got %v, want Verb", tagged[1].Tag)
	}
	tagged = tagSentence(t, "The visit was great.")
	if tagged[1].Tag != lexicon.Noun {
		t.Errorf("'visit' after determiner: got %v, want Noun", tagged[1].Tag)
	}
}

func TestAuxVersusMainVerb(t *testing.T) {
	tagged := tagSentence(t, "They do n't like it.")
	if tagged[1].Tag != lexicon.Aux {
		t.Errorf("'do' before negation: got %v, want Aux", tagged[1].Tag)
	}
}
