// Package pos implements the part-of-speech tagger of the Surveyor NLP
// substrate: lexicon lookup with contextual disambiguation rules, plus
// suffix and capitalisation heuristics for out-of-vocabulary words.
package pos

import (
	"strings"
	"unicode"

	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/token"
)

// Tagged pairs a token with its resolved part of speech.
type Tagged struct {
	token.Token
	Tag lexicon.Tag
}

// Tagger assigns parts of speech using a lexicon plus heuristics.
type Tagger struct {
	lex *lexicon.Lexicon
}

// New returns a tagger over the given lexicon.
func New(lex *lexicon.Lexicon) *Tagger {
	return &Tagger{lex: lex}
}

// Tag tags a full sentence. Ambiguous lexicon entries are resolved with
// local context; unknown words fall back to suffix and shape heuristics.
func (tg *Tagger) Tag(sent token.Sentence) []Tagged {
	return tg.TagInto(make([]Tagged, 0, len(sent.Tokens)), sent)
}

// TagInto appends the tagged tokens of sent to dst and returns the
// extended slice — the scratch-reuse variant of Tag.
func (tg *Tagger) TagInto(dst []Tagged, sent token.Sentence) []Tagged {
	base := len(dst)
	for i, tok := range sent.Tokens {
		dst = append(dst, Tagged{Token: tok, Tag: tg.tagOne(sent.Tokens, i)})
	}
	tg.contextPass(dst[base:])
	return dst
}

func (tg *Tagger) tagOne(toks []token.Token, i int) lexicon.Tag {
	word := toks[i].Text
	lower := toks[i].Lower()

	if tags, ok := tg.lex.Lookup(lower); ok && len(tags) > 0 {
		return tg.disambiguate(toks, i, tags)
	}
	return tg.guess(toks, i, word, lower)
}

// disambiguate picks among a word's possible lexicon tags using local
// context. The preference order of the lexicon is the fallback.
func (tg *Tagger) disambiguate(toks []token.Token, i int, tags []lexicon.Tag) lexicon.Tag {
	has := func(want lexicon.Tag) bool {
		for _, t := range tags {
			if t == want {
				return true
			}
		}
		return false
	}
	next := func() string {
		if i+1 < len(toks) {
			return toks[i+1].Lower()
		}
		return ""
	}
	prev := func() string {
		if i > 0 {
			return toks[i-1].Lower()
		}
		return ""
	}

	// "that": complementizer after a verb ("think that ..."), determiner
	// directly before a common noun ("that city"), otherwise Mark.
	if has(lexicon.Det) && has(lexicon.Mark) {
		p := prev()
		if tg.lex.HasTag(p, lexicon.Verb) {
			return lexicon.Mark
		}
		n := next()
		if tg.lex.HasTag(n, lexicon.Noun) && !tg.lex.HasTag(n, lexicon.Propn) {
			return lexicon.Det
		}
		return lexicon.Mark
	}
	// Adjective/adverb ambiguity ("pretty", "fast"): adverb when directly
	// preceding an adjective or adverb, adjective otherwise.
	if has(lexicon.Adj) && has(lexicon.Adv) {
		n := next()
		if tg.lex.HasTag(n, lexicon.Adj) || tg.lex.HasTag(n, lexicon.Adv) {
			return lexicon.Adv
		}
		return lexicon.Adj
	}
	// Verb/noun ambiguity ("visit", "play"): noun after a determiner or
	// adjective, verb otherwise.
	if has(lexicon.Verb) && has(lexicon.Noun) {
		p := prev()
		if tg.lex.HasTag(p, lexicon.Det) || tg.lex.HasTag(p, lexicon.Adj) {
			return lexicon.Noun
		}
		return lexicon.Verb
	}
	// Aux/verb: "do"/"have" are auxiliaries when followed by a negation or
	// another verb, main verbs otherwise.
	if has(lexicon.Aux) {
		n := next()
		if tg.lex.IsNegation(n) || tg.lex.HasTag(n, lexicon.Verb) || tg.lex.HasTag(n, lexicon.Pron) {
			return lexicon.Aux
		}
	}
	return tags[0]
}

// guess handles out-of-vocabulary words with shape and suffix heuristics.
func (tg *Tagger) guess(toks []token.Token, i int, word, lower string) lexicon.Tag {
	r := rune(word[0])
	if r >= '0' && r <= '9' {
		return lexicon.Num
	}
	if !unicode.IsLetter(r) {
		return lexicon.Punct
	}
	// Capitalised mid-sentence (or anywhere): proper noun. At sentence
	// start only if the lexicon truly does not know the lower-case form —
	// which is already the case here.
	if unicode.IsUpper(r) {
		return lexicon.Propn
	}
	switch {
	case strings.HasSuffix(lower, "ly"):
		return lexicon.Adv
	case strings.HasSuffix(lower, "ous"), strings.HasSuffix(lower, "ful"),
		strings.HasSuffix(lower, "ive"), strings.HasSuffix(lower, "able"),
		strings.HasSuffix(lower, "ible"), strings.HasSuffix(lower, "ish"),
		strings.HasSuffix(lower, "less"), strings.HasSuffix(lower, "esque"),
		strings.HasSuffix(lower, "ic"):
		return lexicon.Adj
	case strings.HasSuffix(lower, "ing"), strings.HasSuffix(lower, "ed"):
		// Participles after a copula act adjectivally ("is crowded");
		// before a noun as well ("a crowded city"). Treat as verb only in
		// clear verbal position (after an auxiliary or pronoun subject).
		if i > 0 {
			p := toks[i-1].Lower()
			if tg.lex.HasTag(p, lexicon.Aux) || tg.lex.HasTag(p, lexicon.Pron) {
				return lexicon.Verb
			}
			if tg.lex.IsCopula(p) || tg.lex.HasTag(p, lexicon.Adv) || tg.lex.HasTag(p, lexicon.Det) {
				return lexicon.Adj
			}
		}
		return lexicon.Verb
	default:
		return lexicon.Noun
	}
}

// contextPass applies whole-sentence corrections after first-pass tagging.
func (tg *Tagger) contextPass(out []Tagged) {
	for i := range out {
		// A noun between a copula/adverb and another adjective is likely a
		// mis-tagged adjective; we leave this conservative for now — the
		// parser tolerates noun-tagged adjectives in predicate position.
		_ = i
	}
}
