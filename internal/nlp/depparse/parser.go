package depparse

import (
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
)

// Parser turns POS-tagged sentences into dependency trees. It is stateless
// and safe for concurrent use.
type Parser struct {
	lex *lexicon.Lexicon
}

// New returns a parser over the given lexicon (used for copula and
// negation word classes).
func New(lex *lexicon.Lexicon) *Parser {
	return &Parser{lex: lex}
}

// Parse builds a dependency tree for one tagged sentence. The parser never
// fails: tokens it cannot place are attached to the root with the fallback
// label so the tree is always connected and single-headed.
func (p *Parser) Parse(tagged []pos.Tagged) *Tree {
	return p.ParseInto(new(Scratch), tagged)
}

// Scratch holds one worker's reusable parse buffers: the head/relation/
// placement arrays the builder works in and the output tree itself. A
// Scratch must not be shared between goroutines.
type Scratch struct {
	head   []int
	rel    []Label
	placed []bool
	tree   Tree
}

func (sc *Scratch) grow(n int) {
	if cap(sc.head) < n {
		sc.head = make([]int, n)
		sc.rel = make([]Label, n)
		sc.placed = make([]bool, n)
	} else {
		sc.head = sc.head[:n]
		sc.rel = sc.rel[:n]
		sc.placed = sc.placed[:n]
	}
}

// ParseInto is the scratch-reuse variant of Parse: the returned tree is
// owned by sc and valid only until the next ParseInto call with the same
// scratch.
func (p *Parser) ParseInto(sc *Scratch, tagged []pos.Tagged) *Tree {
	if len(tagged) == 0 {
		sc.tree = Tree{root: -1, children: sc.tree.children[:0]}
		return &sc.tree
	}
	sc.grow(len(tagged))
	b := builder{
		lex:    p.lex,
		toks:   tagged,
		head:   sc.head,
		rel:    sc.rel,
		placed: sc.placed,
	}
	for i := range b.head {
		b.head[i] = -1
		b.rel[i] = Dep
		b.placed[i] = false
	}
	root := b.parseClause(0, len(tagged))
	if root < 0 {
		// Degenerate sentence (all punctuation, etc.): first token roots.
		root = 0
		b.placed[0] = true
	}
	b.head[root] = -1
	b.rel[root] = RootLabel
	b.placed[root] = true
	b.sweepUnplaced(root)
	fillTree(&sc.tree, tagged, b.head, b.rel, root)
	return &sc.tree
}

type builder struct {
	lex    *lexicon.Lexicon
	toks   []pos.Tagged
	head   []int
	rel    []Label
	placed []bool
}

func (b *builder) attach(child, head int, rel Label) {
	if child == head || child < 0 {
		return
	}
	b.head[child] = head
	b.rel[child] = rel
	b.placed[child] = true
}

func (b *builder) tag(i int) lexicon.Tag { return b.toks[i].Tag }
func (b *builder) text(i int) string     { return b.toks[i].Lower() }

// sweepUnplaced attaches every remaining token to the root with a sensible
// default so the tree is always connected.
func (b *builder) sweepUnplaced(root int) {
	for i := range b.toks {
		if b.placed[i] || i == root {
			continue
		}
		switch b.tag(i) {
		case lexicon.Punct:
			b.attach(i, root, Punct)
		case lexicon.Adv:
			b.attach(i, root, Advmod)
		case lexicon.Neg:
			b.attach(i, root, Neg)
		default:
			b.attach(i, root, Dep)
		}
	}
}

// parseClause parses toks[lo:hi) and returns the clause root index, or -1
// for an empty/unusable span.
func (b *builder) parseClause(lo, hi int) int {
	lo, hi = b.trim(lo, hi)
	if lo >= hi {
		return -1
	}

	// Complement clause: matrix verb ... MARK ... subordinate clause.
	if v := b.firstVerb(lo, hi); v >= 0 {
		if m := b.firstMark(v+1, hi); m >= 0 && m+1 < hi {
			matrixRoot := b.parseSimpleClause(lo, m)
			subRoot := b.parseClause(m+1, hi)
			switch {
			case matrixRoot >= 0 && subRoot >= 0:
				b.attach(subRoot, matrixRoot, Ccomp)
				b.attach(m, subRoot, Mark)
				return matrixRoot
			case subRoot >= 0:
				b.attach(m, subRoot, Mark)
				return subRoot
			case matrixRoot >= 0:
				return matrixRoot
			}
			return -1
		}
	}
	return b.parseSimpleClause(lo, hi)
}

// trim narrows the span past leading/trailing punctuation (it will be
// swept to the root later).
func (b *builder) trim(lo, hi int) (int, int) {
	for lo < hi && b.tag(lo) == lexicon.Punct {
		lo++
	}
	for hi > lo && b.tag(hi-1) == lexicon.Punct {
		hi--
	}
	return lo, hi
}

func (b *builder) firstVerb(lo, hi int) int {
	for i := lo; i < hi; i++ {
		if b.tag(i) == lexicon.Verb {
			return i
		}
	}
	return -1
}

func (b *builder) firstMark(lo, hi int) int {
	for i := lo; i < hi; i++ {
		if b.tag(i) == lexicon.Mark {
			return i
		}
	}
	return -1
}

// parseSimpleClause parses a clause with no complementizer.
func (b *builder) parseSimpleClause(lo, hi int) int {
	lo, hi = b.trim(lo, hi)
	if lo >= hi {
		return -1
	}

	gStart, gEnd, vHead := b.findVerbGroup(lo, hi)
	if vHead < 0 {
		// Verbless span: parse as a bare NP/AdjP fragment.
		return b.parseFragment(lo, hi)
	}

	// Subject: head of the last nominal chunk before the verb group.
	subj, orphans := b.parseSubject(lo, gStart)

	copula := b.lex.IsCopula(b.text(vHead))
	var root int
	if copula {
		root = b.parseCopularPredicate(gEnd, hi, vHead)
	}
	if !copula || root < 0 {
		root = vHead
		b.parseVerbalPredicate(gEnd, hi, vHead)
	}

	// Attach the verb group to the clause root.
	if root != vHead {
		b.attach(vHead, root, Cop)
	}
	for i := gStart; i < gEnd; i++ {
		if i == vHead || b.placed[i] {
			continue
		}
		switch b.tag(i) {
		case lexicon.Aux:
			b.attach(i, root, Aux)
		case lexicon.Neg:
			b.attach(i, root, Neg)
		case lexicon.Adv:
			b.attach(i, root, Advmod)
		default:
			b.attach(i, root, Dep)
		}
	}
	if subj >= 0 {
		b.attach(subj, root, Nsubj)
	}
	// Nominal chunks before the subject proper ("In Rome I saw...")
	// attach to the root with the fallback label.
	for _, o := range orphans {
		b.attach(o, root, Dep)
	}
	// Leading material before the subject (PPs, adverbs) attaches to root.
	b.attachLeftovers(lo, gStart, root)
	return root
}

// findVerbGroup locates the first verb group in [lo,hi): a maximal run of
// auxiliaries, negations, group-internal adverbs, and verbs containing at
// least one Verb/Aux token. Returns (start, end, headVerb); headVerb is the
// last Verb in the group (or the last Aux if no main verb follows).
func (b *builder) findVerbGroup(lo, hi int) (int, int, int) {
	start := -1
	for i := lo; i < hi; i++ {
		if b.tag(i) == lexicon.Verb || b.tag(i) == lexicon.Aux {
			start = i
			break
		}
	}
	if start < 0 {
		return -1, -1, -1
	}
	end := start
	vHead := -1
	for end < hi {
		switch b.tag(end) {
		case lexicon.Verb:
			vHead = end
			end++
		case lexicon.Aux:
			end++
		case lexicon.Neg:
			// A negation is group-internal only if more verbal material or
			// a predicate follows within the group's reach ("do n't think",
			// "is never dangerous" keeps "never" OUT of the group so it
			// attaches to the adjective instead — Stanford attaches both
			// to the predicate; we fold group negs onto the root anyway).
			if end+1 < hi && (b.tag(end+1) == lexicon.Verb || b.tag(end+1) == lexicon.Aux) {
				end++
				continue
			}
			return start, end, headOr(vHead, start)
		default:
			return start, end, headOr(vHead, start)
		}
	}
	return start, end, headOr(vHead, start)
}

func headOr(v, fallback int) int {
	if v >= 0 {
		return v
	}
	return fallback
}

// parseSubject chunks [lo,hi) and returns the head of the last nominal
// chunk (the subject, -1 if none) plus any earlier chunk heads that were
// claimed but displaced and still need an attachment.
func (b *builder) parseSubject(lo, hi int) (int, []int) {
	subj := -1
	var orphans []int
	lastComma := -1 // index of a comma directly after the current subject
	claim := func(head int) {
		if subj >= 0 {
			orphans = append(orphans, subj)
		}
		subj = head
	}
	i := lo
	for i < hi {
		switch b.tag(i) {
		case lexicon.Pron:
			claim(i)
			b.placed[i] = true // will be attached as nsubj by caller
			lastComma = -1
			i++
		case lexicon.Det, lexicon.Adj, lexicon.Adv, lexicon.Noun, lexicon.Propn, lexicon.Num:
			// Appositive: "San Francisco, a beautiful city, is ..." — a
			// determiner-initial NP right after a comma renames the
			// proper-noun subject rather than replacing it.
			if lastComma >= 0 && subj >= 0 && b.tag(i) == lexicon.Det &&
				b.tag(subj) == lexicon.Propn {
				head, end := b.parseNP(i, hi)
				if head >= 0 {
					b.attach(head, subj, Appos)
					b.attach(lastComma, head, Punct)
					lastComma = -1
					i = end
					// A closing comma after the appositive attaches to it.
					if i < hi && b.toks[i].Text == "," {
						b.attach(i, head, Punct)
						i++
					}
					continue
				}
			}
			head, end := b.parseNP(i, hi)
			if head >= 0 {
				claim(head)
				lastComma = -1
				i = end
			} else {
				i++
			}
		default:
			if b.toks[i].Text == "," && subj >= 0 {
				lastComma = i
			} else {
				lastComma = -1
			}
			i++
		}
	}
	return subj, orphans
}

// attachLeftovers attaches any still-unplaced tokens in [lo,hi) to head:
// prepositions start PPs, everything else gets a default label.
func (b *builder) attachLeftovers(lo, hi, head int) {
	i := lo
	for i < hi {
		if b.placed[i] {
			i++
			continue
		}
		switch b.tag(i) {
		case lexicon.Prep:
			i = b.parsePP(i, hi, head)
		case lexicon.Punct:
			b.attach(i, head, Punct)
			i++
		case lexicon.Adv:
			b.attach(i, head, Advmod)
			i++
		case lexicon.Neg:
			b.attach(i, head, Neg)
			i++
		default:
			b.attach(i, head, Dep)
			i++
		}
	}
}

// parseCopularPredicate parses the predicate of a copular clause starting
// at lo. Returns the predicate head (adjective or predicate-nominal noun),
// or -1 when no usable predicate exists (e.g. "the city is there").
func (b *builder) parseCopularPredicate(lo, hi, copIdx int) int {
	i := lo
	// Pre-predicate negations: remember them, attach to the head once
	// known ("is not big", "is never a big city"). Adverbs are NOT
	// collected here — a degree adverb belongs to the following adjective
	// and the AdjP parser claims it ("is very big").
	var pendingNeg []int
	for i < hi && b.tag(i) == lexicon.Neg {
		pendingNeg = append(pendingNeg, i)
		i++
	}

	root, end := -1, 0
	switch {
	case i < hi && (b.tag(i) == lexicon.Adv || b.tag(i) == lexicon.Adj):
		// Might still be an NP ("a very big city" starts with Det, so Adv
		// here means AdjP; Adj could open either "big" or "big city").
		if b.isNPStart(i, hi) {
			root, end = b.parseNP(i, hi)
		} else {
			root, end = b.parseAdjP(i, hi)
		}
	case i < hi && (b.tag(i) == lexicon.Det || b.tag(i) == lexicon.Noun ||
		b.tag(i) == lexicon.Propn || b.tag(i) == lexicon.Num):
		root, end = b.parseNP(i, hi)
	}
	if root < 0 {
		return -1
	}
	for _, n := range pendingNeg {
		b.attach(n, root, Neg)
	}
	// Post-predicate material: PPs restrict the predicate ("bad for
	// parking"); leftovers default-attach.
	b.attachLeftovers(end, hi, root)
	return root
}

// isNPStart reports whether an Adj/Adv at i opens a noun phrase (i.e. a
// noun head follows within the adjectival run) rather than a bare AdjP.
func (b *builder) isNPStart(i, hi int) bool {
	for j := i; j < hi; j++ {
		switch b.tag(j) {
		case lexicon.Adj, lexicon.Adv, lexicon.Conj, lexicon.Det:
			continue
		case lexicon.Noun, lexicon.Propn:
			return true
		default:
			return false
		}
	}
	return false
}

// parseVerbalPredicate parses the complement span of a main verb: direct
// object NP, optional adjectival xcomp ("find kittens cute"), PPs.
func (b *builder) parseVerbalPredicate(lo, hi, verb int) {
	i := lo
	seenDobj := false
	for i < hi {
		if b.placed[i] {
			i++
			continue
		}
		switch b.tag(i) {
		case lexicon.Det, lexicon.Noun, lexicon.Propn, lexicon.Num:
			head, end := b.parseNP(i, hi)
			if head < 0 {
				i++
				continue
			}
			if !seenDobj {
				b.attach(head, verb, Dobj)
				seenDobj = true
			} else {
				b.attach(head, verb, Dep)
			}
			i = end
		case lexicon.Pron:
			if !seenDobj {
				b.attach(i, verb, Dobj)
				seenDobj = true
			} else {
				b.attach(i, verb, Dep)
			}
			i++
		case lexicon.Adj, lexicon.Adv:
			if b.isNPStart(i, hi) {
				head, end := b.parseNP(i, hi)
				if head >= 0 {
					if !seenDobj {
						b.attach(head, verb, Dobj)
						seenDobj = true
					} else {
						b.attach(head, verb, Dep)
					}
					i = end
					continue
				}
			}
			head, end := b.parseAdjP(i, hi)
			if head >= 0 {
				// Object-predicative adjective ("find kittens cute").
				b.attach(head, verb, Xcomp)
				i = end
				continue
			}
			i++
		case lexicon.Prep:
			i = b.parsePP(i, hi, verb)
		case lexicon.Neg:
			b.attach(i, verb, Neg)
			i++
		case lexicon.Punct:
			b.attach(i, verb, Punct)
			i++
		default:
			b.attach(i, verb, Dep)
			i++
		}
	}
}

// parseFragment handles verbless spans: a bare NP or AdjP.
func (b *builder) parseFragment(lo, hi int) int {
	if b.isNPStart(lo, hi) || b.tag(lo) == lexicon.Det ||
		b.tag(lo) == lexicon.Noun || b.tag(lo) == lexicon.Propn {
		head, end := b.parseNP(lo, hi)
		if head >= 0 {
			b.attachLeftovers(end, hi, head)
			return head
		}
	}
	if b.tag(lo) == lexicon.Adj || b.tag(lo) == lexicon.Adv {
		head, end := b.parseAdjP(lo, hi)
		if head >= 0 {
			b.attachLeftovers(end, hi, head)
			return head
		}
	}
	return lo
}

// parseNP parses a noun phrase starting at lo: Det? (Adv* Adj (Cc Adj)*)*
// (Noun|Propn|Num)+. Returns (head, end) where head is the last
// noun/proper-noun; (-1, lo) if no noun head is found.
func (b *builder) parseNP(lo, hi int) (int, int) {
	i := lo
	var det = -1
	if i < hi && b.tag(i) == lexicon.Det {
		det = i
		i++
	}
	type adjGroup struct {
		first int
	}
	var groups []adjGroup
	var nouns []int

scan:
	for i < hi {
		switch b.tag(i) {
		case lexicon.Adv:
			// Degree adverb of a following adjective.
			if i+1 < hi && (b.tag(i+1) == lexicon.Adj || b.tag(i+1) == lexicon.Adv) {
				adjHead, end := b.parseAdjP(i, hi)
				if adjHead >= 0 {
					groups = append(groups, adjGroup{first: adjHead})
					i = end
					continue
				}
			}
			break scan
		case lexicon.Adj:
			// Adjectives only premodify: once a noun has been scanned the
			// NP is closed ("find kittens cute" must not fold "cute" in).
			if len(nouns) > 0 {
				break scan
			}
			adjHead, end := b.parseAdjP(i, hi)
			if adjHead < 0 {
				break scan
			}
			groups = append(groups, adjGroup{first: adjHead})
			i = end
		case lexicon.Noun, lexicon.Propn, lexicon.Num:
			nouns = append(nouns, i)
			i++
		default:
			break scan
		}
	}
	if len(nouns) == 0 {
		// No noun materialised: release the adjective heads parseAdjP
		// claimed on our behalf, or they would stay headless forever.
		for _, g := range groups {
			b.placed[g.first] = false
		}
		return -1, lo
	}
	head := nouns[len(nouns)-1]
	b.placed[head] = true // caller attaches the head
	if det >= 0 {
		b.attach(det, head, DetLabel)
	}
	for _, g := range groups {
		b.attach(g.first, head, Amod)
	}
	for _, n := range nouns[:len(nouns)-1] {
		b.attach(n, head, Compound)
	}
	return head, i
}

// parseAdjP parses an adjectival phrase starting at lo: Adv* Adj (Cc Adv*
// Adj)*. Returns (head, end) with head = the FIRST adjective (Stanford
// attaches conjuncts to the first conjunct); (-1, lo) if no adjective.
func (b *builder) parseAdjP(lo, hi int) (int, int) {
	i := lo
	var advs []int
	for i < hi && b.tag(i) == lexicon.Adv {
		advs = append(advs, i)
		i++
	}
	if i >= hi || b.tag(i) != lexicon.Adj {
		return -1, lo
	}
	head := i
	b.placed[head] = true // caller attaches the head
	for _, a := range advs {
		b.attach(a, head, Advmod)
	}
	i++
	// Conjoined adjectives: "fast and exciting", "fast, fun and cheap".
	for i < hi {
		j := i
		var cc = -1
		if j < hi && b.toks[j].Text == "," {
			j++
		}
		if j < hi && b.tag(j) == lexicon.Conj {
			cc = j
			j++
		}
		if cc < 0 && j == i {
			break
		}
		var advs2 []int
		for j < hi && b.tag(j) == lexicon.Adv {
			advs2 = append(advs2, j)
			j++
		}
		if j >= hi || b.tag(j) != lexicon.Adj {
			break
		}
		// If a noun follows this adjective we are inside an NP and the
		// conjunct is still adjectival ("fast and exciting sport") — that
		// is fine, conj attaches adjective-to-adjective either way.
		conjAdj := j
		b.attach(conjAdj, head, Conj)
		if cc >= 0 {
			b.attach(cc, head, Cc)
		}
		if i < hi && b.toks[i].Text == "," && (cc >= 0 || j > i+1) {
			b.attach(i, head, Punct)
		}
		for _, a := range advs2 {
			b.attach(a, conjAdj, Advmod)
		}
		i = j + 1
	}
	return head, i
}

// parsePP parses a prepositional phrase at prep index i, attaching
// prep(head, i) and pobj(i, np). Returns the index after the PP.
func (b *builder) parsePP(i, hi, head int) int {
	b.attach(i, head, Prep)
	j := i + 1
	if j < hi {
		switch b.tag(j) {
		case lexicon.Det, lexicon.Adj, lexicon.Adv, lexicon.Noun, lexicon.Propn, lexicon.Num:
			npHead, end := b.parseNP(j, hi)
			if npHead >= 0 {
				b.attach(npHead, i, Pobj)
				return end
			}
		case lexicon.Pron:
			b.attach(j, i, Pobj)
			return j + 1
		}
	}
	return j
}
