// Package depparse implements a deterministic rule-based dependency parser
// producing Stanford-style typed dependency trees — the representation the
// Surveyor extraction patterns (Figure 4 of the paper) and the
// negation-path polarity rule (Figure 5) operate on.
//
// The paper consumed a web snapshot pre-annotated by a parser "similar to
// the Stanford parser"; this package is the from-scratch substitute, built
// as a cascade: NP/AdjP chunking, verb-group detection, clause segmentation
// at complementizers, and head attachment with Stanford conventions (the
// predicate, not the copula, heads a copular clause).
package depparse

import (
	"fmt"
	"strings"

	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
)

// Label is a typed dependency label (Stanford basic-dependency names).
type Label string

// The dependency label inventory.
const (
	RootLabel Label = "root"
	Nsubj     Label = "nsubj"
	Cop       Label = "cop"
	Amod      Label = "amod"
	Advmod    Label = "advmod"
	Neg       Label = "neg"
	DetLabel  Label = "det"
	Conj      Label = "conj"
	Cc        Label = "cc"
	Prep      Label = "prep"
	Pobj      Label = "pobj"
	Ccomp     Label = "ccomp"
	Xcomp     Label = "xcomp"
	Mark      Label = "mark"
	Aux       Label = "aux"
	Dobj      Label = "dobj"
	Compound  Label = "compound"
	Appos     Label = "appos"
	Punct     Label = "punct"
	Dep       Label = "dep" // fallback attachment
)

// Node is one token in a dependency tree.
type Node struct {
	Index int
	Text  string
	Tag   lexicon.Tag
	Head  int   // index of the head node, -1 for the root
	Rel   Label // relation to the head

	// lower caches the lower-cased text, carried over from the token so
	// the extraction hot loop never re-runs strings.ToLower.
	lower string
}

// Lower returns the lower-cased token text.
func (n Node) Lower() string {
	if n.lower != "" {
		return n.lower
	}
	return strings.ToLower(n.Text)
}

// Tree is a dependency tree over one sentence.
type Tree struct {
	Nodes    []Node
	root     int
	children [][]int
}

// Root returns the index of the root node, or -1 for an empty tree.
func (t *Tree) Root() int { return t.root }

// Children returns the child indices of node i in token order.
func (t *Tree) Children(i int) []int { return t.children[i] }

// ChildrenWith returns the children of node i attached with the given label.
func (t *Tree) ChildrenWith(i int, rel Label) []int {
	var out []int
	for _, c := range t.children[i] {
		if t.Nodes[c].Rel == rel {
			out = append(out, c)
		}
	}
	return out
}

// FirstChildWith returns the first child of node i with the given label,
// or -1 if none exists.
func (t *Tree) FirstChildWith(i int, rel Label) int {
	for _, c := range t.children[i] {
		if t.Nodes[c].Rel == rel {
			return c
		}
	}
	return -1
}

// HasChildWith reports whether node i has a child with the given label.
func (t *Tree) HasChildWith(i int, rel Label) bool {
	return t.FirstChildWith(i, rel) >= 0
}

// IsNegated reports whether node i has a negation child — the per-token
// test of the paper's polarity rule.
func (t *Tree) IsNegated(i int) bool { return t.HasChildWith(i, Neg) }

// PathToRoot returns the node indices from i (inclusive) up to the root
// (inclusive). Returns nil if a cycle is detected (which would indicate a
// parser bug).
func (t *Tree) PathToRoot(i int) []int {
	var path []int
	for i >= 0 {
		if len(path) > len(t.Nodes) {
			return nil
		}
		path = append(path, i)
		i = t.Nodes[i].Head
	}
	return path
}

// String renders the tree one dependency per line, for diagnostics.
func (t *Tree) String() string {
	var b strings.Builder
	for _, n := range t.Nodes {
		headText := "ROOT"
		if n.Head >= 0 {
			headText = t.Nodes[n.Head].Text
		}
		fmt.Fprintf(&b, "%s(%s-%d, %s-%d)\n", n.Rel, headText, n.Head, n.Text, n.Index)
	}
	return b.String()
}

// finalize computes children lists, reusing the tree's existing backing
// slices when it is being refilled through a Scratch.
func (t *Tree) finalize() {
	n := len(t.Nodes)
	if cap(t.children) < n {
		t.children = make([][]int, n)
	} else {
		t.children = t.children[:n]
		for i := range t.children {
			t.children[i] = t.children[i][:0]
		}
	}
	for i := range t.Nodes {
		if h := t.Nodes[i].Head; h >= 0 {
			t.children[h] = append(t.children[h], i)
		}
	}
}

// Assemble reconstructs a tree from parallel head/relation arrays — used
// by the annotation codec to deserialise trees without re-parsing. head[i]
// is -1 exactly for the root.
func Assemble(tagged []pos.Tagged, head []int, rel []Label, root int) *Tree {
	if len(tagged) == 0 {
		return &Tree{root: -1, children: [][]int{}}
	}
	return newTree(tagged, head, rel, root)
}

// newTree assembles a fresh tree from parallel head/rel arrays.
func newTree(tagged []pos.Tagged, head []int, rel []Label, root int) *Tree {
	t := &Tree{}
	fillTree(t, tagged, head, rel, root)
	return t
}

// fillTree (re)populates t from parallel head/rel arrays, reusing t's node
// and child-list backing storage.
func fillTree(t *Tree, tagged []pos.Tagged, head []int, rel []Label, root int) {
	t.root = root
	if cap(t.Nodes) < len(tagged) {
		t.Nodes = make([]Node, len(tagged))
	} else {
		t.Nodes = t.Nodes[:len(tagged)]
	}
	for i := range tagged {
		tg := &tagged[i]
		t.Nodes[i] = Node{Index: i, Text: tg.Text, Tag: tg.Tag,
			Head: head[i], Rel: rel[i], lower: tg.Lower()}
	}
	t.finalize()
}
