package depparse

import (
	"testing"

	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
)

// FuzzParse checks tree well-formedness on arbitrary text: one node per
// token, a single in-range root, heads in range, and acyclicity from
// every node (PathToRoot returns nil on a cycle — the extractor's
// polarity rule walks that path, so a cycle would be a real bug).
func FuzzParse(f *testing.F) {
	f.Add("I don't think that snakes are never dangerous animals.")
	f.Add("San Francisco, a beautiful city, is big and expensive.")
	f.Add("Everyone agrees that kittens are cute, but spiders seem scary.")
	f.Add("bad for parking . and , or ! not never")
	f.Add("is is is is that that that")
	f.Add("\x00'n't -- . ")
	lex := lexicon.Default()
	tg := pos.New(lex)
	parser := New(lex)
	f.Fuzz(func(t *testing.T, text string) {
		for _, sent := range token.SplitSentences(text) {
			tagged := tg.Tag(sent)
			tree := parser.Parse(tagged)
			if len(tree.Nodes) != len(tagged) {
				t.Fatalf("tree has %d nodes for %d tokens", len(tree.Nodes), len(tagged))
			}
			if len(tree.Nodes) == 0 {
				continue
			}
			root := tree.Root()
			if root < 0 || root >= len(tree.Nodes) {
				t.Fatalf("root %d out of range for %d nodes (%q)", root, len(tree.Nodes), sent.Text())
			}
			if tree.Nodes[root].Head != -1 {
				t.Fatalf("root node %d has head %d, want -1", root, tree.Nodes[root].Head)
			}
			roots := 0
			for i, n := range tree.Nodes {
				if n.Index != i {
					t.Fatalf("node %d carries index %d", i, n.Index)
				}
				if n.Head < -1 || n.Head >= len(tree.Nodes) || n.Head == i {
					t.Fatalf("node %d has invalid head %d (%q)", i, n.Head, sent.Text())
				}
				if n.Head == -1 {
					roots++
				}
				path := tree.PathToRoot(i)
				if path == nil {
					t.Fatalf("cycle detected from node %d (%q)", i, sent.Text())
				}
				if path[len(path)-1] != root {
					t.Fatalf("path from node %d ends at %d, not the root %d", i, path[len(path)-1], root)
				}
			}
			if roots != 1 {
				t.Fatalf("tree has %d headless nodes, want exactly 1 (%q)", roots, sent.Text())
			}
		}
	})
}
