package depparse

import (
	"reflect"
	"testing"

	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
)

var intoTexts = []string{
	"Kittens are cute.",
	"San Francisco is a very big city and everyone knows it.",
	"The warm, quiet old town isn't crowded but it is not cheap.",
	"...",
	"Dangerous fast dogs and cats!",
}

// TestParseIntoMatchesParse drives one Scratch through all sample
// sentences twice (so every buffer gets reused at both growing and
// shrinking sizes) and checks each tree against the allocating Parse.
func TestParseIntoMatchesParse(t *testing.T) {
	lex := lexicon.Default()
	tg := pos.New(lex)
	p := New(lex)
	sc := new(Scratch)
	for round := 0; round < 2; round++ {
		for _, text := range intoTexts {
			for _, sent := range token.SplitSentences(text) {
				tagged := tg.Tag(sent)
				want := p.Parse(tagged)
				got := p.ParseInto(sc, tagged)
				assertTreesEqual(t, text, got, want)
			}
		}
	}
}

// assertTreesEqual compares trees structurally: root, nodes, and children
// contents. (Raw DeepEqual would distinguish a fresh tree's nil child
// lists from a reused tree's empty ones.)
func assertTreesEqual(t *testing.T, text string, got, want *Tree) {
	t.Helper()
	if got.Root() != want.Root() {
		t.Fatalf("%q: root %d, want %d", text, got.Root(), want.Root())
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) {
		t.Fatalf("%q: nodes diverge\ngot  %+v\nwant %+v", text, got.Nodes, want.Nodes)
	}
	for i := range want.Nodes {
		g, w := got.Children(i), want.Children(i)
		if len(g) != len(w) {
			t.Fatalf("%q node %d: %d children, want %d", text, i, len(g), len(w))
		}
		for j := range w {
			if g[j] != w[j] {
				t.Fatalf("%q node %d: children %v, want %v", text, i, g, w)
			}
		}
	}
}

// TestParseIntoEmptySentence pins the degenerate input with a reused
// scratch that previously held a larger tree.
func TestParseIntoEmptySentence(t *testing.T) {
	lex := lexicon.Default()
	tg := pos.New(lex)
	p := New(lex)
	sc := new(Scratch)
	p.ParseInto(sc, tg.Tag(token.SplitSentences("Kittens are cute.")[0]))
	tree := p.ParseInto(sc, nil)
	if tree.Root() != -1 || len(tree.Nodes) != 0 {
		t.Fatalf("empty parse: root=%d nodes=%d", tree.Root(), len(tree.Nodes))
	}
}
