package depparse

import (
	"strings"
	"testing"

	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
)

func parse(t *testing.T, text string) *Tree {
	t.Helper()
	lex := lexicon.Default()
	sents := token.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("want one sentence for %q, got %d", text, len(sents))
	}
	tagged := pos.New(lex).Tag(sents[0])
	return New(lex).Parse(tagged)
}

// find returns the index of the first node with the given lower-case text.
func find(t *testing.T, tree *Tree, text string) int {
	t.Helper()
	for i, n := range tree.Nodes {
		if n.Lower() == text {
			return i
		}
	}
	t.Fatalf("token %q not in tree:\n%s", text, tree)
	return -1
}

// wantDep asserts dependency rel(head, child).
func wantDep(t *testing.T, tree *Tree, rel Label, head, child string) {
	t.Helper()
	h, c := find(t, tree, head), find(t, tree, child)
	if tree.Nodes[c].Head != h || tree.Nodes[c].Rel != rel {
		t.Errorf("want %s(%s, %s); got %s(%v, %s)\n%s", rel, head, child,
			tree.Nodes[c].Rel, tree.Nodes[c].Head, child, tree)
	}
}

func wantRoot(t *testing.T, tree *Tree, text string) {
	t.Helper()
	r := find(t, tree, text)
	if tree.Root() != r {
		t.Errorf("want root %q, got %q\n%s", text, tree.Nodes[tree.Root()].Text, tree)
	}
}

func TestParseCopularAdjective(t *testing.T) {
	tree := parse(t, "Chicago is very big.")
	wantRoot(t, tree, "big")
	wantDep(t, tree, Nsubj, "big", "chicago")
	wantDep(t, tree, Cop, "big", "is")
	wantDep(t, tree, Advmod, "big", "very")
}

func TestParseNegatedCopular(t *testing.T) {
	tree := parse(t, "Paris is not big.")
	wantRoot(t, tree, "big")
	wantDep(t, tree, Neg, "big", "not")
	if !tree.IsNegated(find(t, tree, "big")) {
		t.Error("big should be negated")
	}
}

func TestParsePredicateNominal(t *testing.T) {
	// Table 1 row 1: "Snakes are dangerous animals".
	tree := parse(t, "Snakes are dangerous animals.")
	wantRoot(t, tree, "animals")
	wantDep(t, tree, Nsubj, "animals", "snakes")
	wantDep(t, tree, Cop, "animals", "are")
	wantDep(t, tree, Amod, "animals", "dangerous")
}

func TestParseNegatedPredicateNominal(t *testing.T) {
	tree := parse(t, "San Francisco is not a big city.")
	wantRoot(t, tree, "city")
	wantDep(t, tree, Neg, "city", "not")
	wantDep(t, tree, Amod, "city", "big")
	wantDep(t, tree, DetLabel, "city", "a")
	wantDep(t, tree, Compound, "francisco", "san")
	wantDep(t, tree, Nsubj, "city", "francisco")
}

func TestParseConjunction(t *testing.T) {
	// Table 1 row 3: "Soccer is a fast and exciting sport".
	tree := parse(t, "Soccer is a fast and exciting sport.")
	wantRoot(t, tree, "sport")
	wantDep(t, tree, Amod, "sport", "fast")
	wantDep(t, tree, Conj, "fast", "exciting")
	wantDep(t, tree, Cc, "fast", "and")
	wantDep(t, tree, Nsubj, "sport", "soccer")
}

func TestParsePredicateAdjectiveConjunction(t *testing.T) {
	tree := parse(t, "Soccer is fast and exciting.")
	wantRoot(t, tree, "fast")
	wantDep(t, tree, Conj, "fast", "exciting")
	wantDep(t, tree, Cop, "fast", "is")
}

func TestParseFigure5Sentence(t *testing.T) {
	// "I don't think that snakes are never dangerous" — the paper's
	// double-negation example.
	tree := parse(t, "I don't think that snakes are never dangerous.")
	wantRoot(t, tree, "think")
	wantDep(t, tree, Nsubj, "think", "i")
	wantDep(t, tree, Aux, "think", "do")
	wantDep(t, tree, Neg, "think", "n't")
	wantDep(t, tree, Ccomp, "think", "dangerous")
	wantDep(t, tree, Mark, "dangerous", "that")
	wantDep(t, tree, Nsubj, "dangerous", "snakes")
	wantDep(t, tree, Cop, "dangerous", "are")
	wantDep(t, tree, Neg, "dangerous", "never")

	// Negation path: both "dangerous" and "think" are negated.
	dang := find(t, tree, "dangerous")
	path := tree.PathToRoot(dang)
	negCount := 0
	for _, n := range path {
		if tree.IsNegated(n) {
			negCount++
		}
	}
	if negCount != 2 {
		t.Errorf("want 2 negated tokens on path, got %d\n%s", negCount, tree)
	}
}

func TestParsePPAttachesToPredicate(t *testing.T) {
	// "New York is bad for parking" — the non-intrinsic example.
	tree := parse(t, "New York is bad for parking.")
	wantRoot(t, tree, "bad")
	wantDep(t, tree, Prep, "bad", "for")
	wantDep(t, tree, Pobj, "for", "parking")
}

func TestParseAttributiveAmod(t *testing.T) {
	tree := parse(t, "Southern France is warm.")
	wantRoot(t, tree, "warm")
	wantDep(t, tree, Amod, "france", "southern")
	wantDep(t, tree, Nsubj, "warm", "france")
}

func TestParseXcomp(t *testing.T) {
	// Figure 1: "I find kittens cute".
	tree := parse(t, "I find kittens cute.")
	wantRoot(t, tree, "find")
	wantDep(t, tree, Dobj, "find", "kittens")
	wantDep(t, tree, Xcomp, "find", "cute")
}

func TestParseMainVerbClause(t *testing.T) {
	tree := parse(t, "We visited Rome.")
	wantRoot(t, tree, "visited")
	wantDep(t, tree, Nsubj, "visited", "we")
	wantDep(t, tree, Dobj, "visited", "rome")
}

func TestParseOpinionPrefix(t *testing.T) {
	tree := parse(t, "Everyone agrees that Tokyo is hectic.")
	wantRoot(t, tree, "agrees")
	wantDep(t, tree, Ccomp, "agrees", "hectic")
	wantDep(t, tree, Nsubj, "hectic", "tokyo")
	wantDep(t, tree, Cop, "hectic", "is")
}

func TestParseBroadCopula(t *testing.T) {
	tree := parse(t, "Tigers seem dangerous.")
	wantRoot(t, tree, "dangerous")
	wantDep(t, tree, Cop, "dangerous", "seem")
}

func TestParseNeverBetweenCopAndAdj(t *testing.T) {
	tree := parse(t, "Snakes are never cute.")
	wantRoot(t, tree, "cute")
	wantDep(t, tree, Neg, "cute", "never")
}

func TestEveryNodeReachableAndSingleHeaded(t *testing.T) {
	sentences := []string{
		"Chicago is very big.",
		"I don't think that snakes are never dangerous.",
		"Soccer is a fast and exciting sport.",
		"New York is bad for parking.",
		"In my opinion, Rome is not cheap.",
		"The quick brown fox jumps over the lazy dog.",
		"What a day!",
		"Really?",
		"is is is",
		"and and and",
		", , ,",
	}
	for _, s := range sentences {
		tree := parse(t, s)
		if len(tree.Nodes) == 0 {
			continue
		}
		roots := 0
		for i, n := range tree.Nodes {
			if n.Head == -1 {
				roots++
				if i != tree.Root() {
					t.Errorf("%q: node %d has no head but is not root", s, i)
				}
			}
			path := tree.PathToRoot(i)
			if path == nil {
				t.Errorf("%q: cycle detected from node %d\n%s", s, i, tree)
			} else if path[len(path)-1] != tree.Root() {
				t.Errorf("%q: node %d does not reach root", s, i)
			}
		}
		if roots != 1 {
			t.Errorf("%q: %d roots, want 1\n%s", s, roots, tree)
		}
	}
}

func TestParseEmpty(t *testing.T) {
	lex := lexicon.Default()
	tree := New(lex).Parse(nil)
	if tree.Root() != -1 || len(tree.Nodes) != 0 {
		t.Fatalf("empty parse: root=%d nodes=%d", tree.Root(), len(tree.Nodes))
	}
}

func TestTreeAccessors(t *testing.T) {
	tree := parse(t, "Soccer is a fast and exciting sport.")
	sport := find(t, tree, "sport")
	fast := find(t, tree, "fast")
	if got := tree.FirstChildWith(sport, Amod); got != fast {
		t.Errorf("FirstChildWith(sport, amod) = %d, want %d", got, fast)
	}
	if tree.FirstChildWith(sport, Neg) != -1 {
		t.Error("sport should have no neg child")
	}
	if !tree.HasChildWith(fast, Conj) {
		t.Error("fast should have a conj child")
	}
	if got := len(tree.ChildrenWith(sport, Amod)); got != 1 {
		t.Errorf("ChildrenWith(sport, amod) = %d entries, want 1", got)
	}
}

func TestTreeStringContainsDeps(t *testing.T) {
	tree := parse(t, "Rome is big.")
	s := tree.String()
	if !strings.Contains(s, "nsubj") || !strings.Contains(s, "cop") {
		t.Errorf("String() missing dependencies:\n%s", s)
	}
}

func TestAssembleRoundTrip(t *testing.T) {
	lex := lexicon.Default()
	tagged := pos.New(lex).Tag(token.SplitSentences("Chicago is very big.")[0])
	tree := New(lex).Parse(tagged)
	heads := make([]int, len(tree.Nodes))
	rels := make([]Label, len(tree.Nodes))
	for i, n := range tree.Nodes {
		heads[i] = n.Head
		rels[i] = n.Rel
	}
	rebuilt := Assemble(tagged, heads, rels, tree.Root())
	if rebuilt.Root() != tree.Root() {
		t.Fatal("root mismatch after Assemble")
	}
	for i := range tree.Nodes {
		if rebuilt.Nodes[i] != tree.Nodes[i] {
			t.Fatalf("node %d mismatch", i)
		}
		if len(rebuilt.Children(i)) != len(tree.Children(i)) {
			t.Fatalf("children of %d mismatch", i)
		}
	}
}

func TestAssembleEmpty(t *testing.T) {
	tree := Assemble(nil, nil, nil, -1)
	if tree.Root() != -1 || len(tree.Nodes) != 0 {
		t.Fatal("empty Assemble wrong")
	}
}

func TestParseTripleConjunction(t *testing.T) {
	tree := parse(t, "Soccer is fast, exciting and cheap.")
	wantRoot(t, tree, "fast")
	conjs := tree.ChildrenWith(find(t, tree, "fast"), Conj)
	if len(conjs) != 2 {
		t.Fatalf("conj children = %d, want 2\n%s", len(conjs), tree)
	}
}

func TestParseQuestionDoesNotPanic(t *testing.T) {
	for _, s := range []string{
		"Is Chicago big?",
		"Why is soccer so popular?",
		"Do you think that kittens are cute?",
	} {
		tree := parse(t, s)
		if len(tree.Nodes) == 0 {
			t.Fatalf("%q produced empty tree", s)
		}
		for i := range tree.Nodes {
			if tree.PathToRoot(i) == nil {
				t.Fatalf("%q: cycle from %d", s, i)
			}
		}
	}
}

func TestParseDoubleEmbedding(t *testing.T) {
	// Nested complement clauses: the parser should still produce one root
	// and connect everything.
	tree := parse(t, "I believe that everyone agrees that Chicago is big.")
	wantRoot(t, tree, "believe")
	roots := 0
	for _, n := range tree.Nodes {
		if n.Head == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("roots = %d\n%s", roots, tree)
	}
}

func TestPathToRootTruncatedTree(t *testing.T) {
	tree := parse(t, "Rome is big.")
	for i := range tree.Nodes {
		path := tree.PathToRoot(i)
		if len(path) == 0 || path[0] != i {
			t.Fatalf("path from %d = %v", i, path)
		}
	}
}

func TestParseAppositive(t *testing.T) {
	tree := parse(t, "San Francisco, a beautiful city, is expensive.")
	wantRoot(t, tree, "expensive")
	wantDep(t, tree, Nsubj, "expensive", "francisco")
	wantDep(t, tree, Appos, "francisco", "city")
	wantDep(t, tree, Amod, "city", "beautiful")
	wantDep(t, tree, DetLabel, "city", "a")
}

func TestParseLeadingPPNotAppositive(t *testing.T) {
	tree := parse(t, "In my opinion, Rome is not cheap.")
	wantRoot(t, tree, "cheap")
	wantDep(t, tree, Nsubj, "cheap", "rome")
	wantDep(t, tree, Neg, "cheap", "not")
}
