package lexicon

// Default returns the built-in lexicon. The inventory is sized to the
// evaluation domains of the paper (Table 2, Figures 3 and 13) plus general
// free-text vocabulary; the knowledge base extends it with entity names at
// load time via AddNoun.
func Default() *Lexicon {
	l := &Lexicon{
		entries:     map[string][]Tag{},
		copulas:     map[string]string{},
		strictToBe:  map[string]bool{},
		negations:   map[string]bool{},
		subjective:  map[string]bool{},
		antonyms:    map[string][]string{},
		typeNouns:   map[string]bool{},
		opinionVerb: map[string]bool{},
	}

	add := func(tag Tag, words ...string) {
		for _, w := range words {
			l.entries[w] = append(l.entries[w], tag)
		}
	}

	// --- Closed classes -------------------------------------------------

	add(Det, "a", "an", "the", "this", "that", "these", "those", "some",
		"any", "every", "each", "all", "most", "many", "few", "several",
		"another", "such", "its", "my", "your", "his", "her", "their", "our")
	add(Prep, "in", "on", "at", "for", "with", "about", "of", "from", "to",
		"by", "near", "around", "among", "between", "during", "despite",
		"without", "within", "across", "like", "unlike", "as", "over",
		"under", "through", "against", "towards", "toward", "compared")
	add(Pron, "i", "you", "he", "she", "it", "we", "they", "me", "him",
		"them", "us", "everyone", "everybody", "someone", "somebody",
		"anyone", "nobody", "who", "which", "what")
	add(Conj, "and", "or", "but", "nor", "yet")
	add(Mark, "that", "because", "although", "though", "while", "since",
		"if", "when", "whether", "unless", "whereas")
	add(Num, "one", "two", "three", "four", "five", "six", "seven", "eight",
		"nine", "ten", "hundred", "thousand", "million", "billion")

	// Negations. "n't" is produced by the tokenizer when splitting
	// contractions (don't -> do + n't).
	for _, w := range []string{"not", "n't", "never", "no", "hardly",
		"barely", "scarcely", "neither", "nor", "cannot"} {
		l.negations[w] = true
		add(Neg, w)
	}

	// Copulas: forms of "to be" plus the broad copula class used by
	// extraction pattern versions 1-2 (Appendix B).
	be := []string{"is", "are", "was", "were", "be", "been", "being", "'s", "'re"}
	for _, w := range be {
		l.copulas[w] = "be"
		l.strictToBe[w] = true
		add(Verb, w)
	}
	broad := map[string]string{
		"seems": "seem", "seem": "seem", "seemed": "seem",
		"looks": "look", "look": "look", "looked": "look",
		"appears": "appear", "appear": "appear", "appeared": "appear",
		"becomes": "become", "become": "become", "became": "become",
		"remains": "remain", "remain": "remain", "remained": "remain",
		"stays": "stay", "stay": "stay", "stayed": "stay",
		"feels": "feel", "feel": "feel", "felt": "feel",
		"sounds": "sound", "sound": "sound", "sounded": "sound",
		"gets": "get", "get": "get", "got": "get",
	}
	for form, lemma := range broad {
		l.copulas[form] = lemma
		add(Verb, form)
	}

	// Auxiliaries.
	add(Aux, "do", "does", "did", "have", "has", "had", "will", "would",
		"can", "could", "may", "might", "must", "should", "shall")

	// Opinion verbs introducing complement clauses.
	for _, w := range []string{"think", "thinks", "thought", "believe",
		"believes", "believed", "consider", "considers", "considered",
		"find", "finds", "found", "say", "says", "said", "feel", "feels",
		"felt", "agree", "agrees", "agreed", "doubt", "doubts", "doubted",
		"claim", "claims", "claimed", "know", "knows", "knew", "guess",
		"suppose", "reckon", "insist", "argue", "argues", "argued"} {
		l.opinionVerb[w] = true
		add(Verb, w)
	}

	// Common verbs (for noise sentences in the corpus).
	add(Verb, "visit", "visited", "visits", "live", "lives", "lived",
		"love", "loves", "loved", "hate", "hates", "hated", "like",
		"likes", "liked", "enjoy", "enjoys", "enjoyed", "see", "saw",
		"seen", "sees", "go", "goes", "went", "play", "plays", "played",
		"watch", "watches", "watched", "move", "moved", "moves", "grew",
		"grow", "grows", "eat", "eats", "ate", "sleep", "sleeps", "slept",
		"run", "runs", "ran", "travel", "travels", "traveled", "write",
		"writes", "wrote", "read", "reads", "recommend", "recommends",
		"recommended", "prefer", "prefers", "preferred", "met", "meet",
		"meets", "stayed", "work", "works", "worked")

	// --- Adverbs ---------------------------------------------------------

	add(Adv, "very", "really", "quite", "rather", "extremely", "incredibly",
		"truly", "so", "too", "highly", "fairly", "pretty", "densely",
		"sparsely", "remarkably", "surprisingly", "exceptionally",
		"especially", "particularly", "somewhat", "slightly", "absolutely",
		"totally", "completely", "utterly", "genuinely", "honestly",
		"definitely", "certainly", "probably", "perhaps", "maybe", "always",
		"often", "sometimes", "usually", "generally", "mostly", "still",
		"also", "just", "even", "only", "there", "here", "now", "then",
		"again", "already", "actually", "simply", "overall")

	// --- Adjectives -------------------------------------------------------
	// subj marks membership in the subjective inventory; pairs wire
	// antonyms symmetrically.
	subj := func(word string, antonyms ...string) { l.AddAdjective(word, true, antonyms...) }
	obj := func(word string, antonyms ...string) { l.AddAdjective(word, false, antonyms...) }

	// Table 2 properties.
	subj("dangerous", "safe", "harmless")
	subj("cute", "ugly")
	subj("big", "small", "tiny")
	subj("friendly", "hostile", "unfriendly")
	subj("deadly", "harmless")
	subj("cool", "lame")
	subj("crazy", "sane")
	subj("pretty", "ugly", "plain")
	subj("quiet", "loud", "noisy")
	subj("young", "old")
	subj("calm", "hectic", "chaotic")
	subj("cheap", "expensive", "pricey")
	subj("hectic", "calm")
	subj("multicultural", "homogeneous")
	subj("exciting", "boring", "dull")
	subj("rare", "common", "ubiquitous")
	subj("solid", "flimsy", "unstable")
	subj("vital", "trivial", "unimportant")
	subj("addictive")
	subj("boring", "exciting", "thrilling")
	subj("fast", "slow")
	subj("popular", "obscure", "unpopular")

	// Empirical-study properties (Section 2, Appendix A).
	subj("safe", "dangerous", "unsafe")
	subj("wealthy", "poor")
	subj("high", "low")
	subj("warm", "cold", "chilly")
	subj("major", "minor")
	subj("populated")

	// Antonym side of the pairs above plus general opinion adjectives.
	subj("small", "big", "large")
	subj("tiny", "huge")
	subj("ugly", "beautiful")
	subj("harmless", "deadly")
	subj("hostile")
	subj("unfriendly")
	subj("lame")
	subj("sane")
	subj("plain")
	subj("loud", "quiet")
	subj("noisy", "quiet")
	subj("old", "young", "new")
	subj("chaotic", "orderly")
	subj("expensive", "cheap")
	subj("pricey")
	subj("homogeneous")
	subj("dull", "vivid")
	subj("common", "rare")
	subj("ubiquitous")
	subj("flimsy")
	subj("unstable", "stable")
	subj("trivial", "vital")
	subj("unimportant", "important")
	subj("thrilling")
	subj("slow", "fast")
	subj("obscure", "famous")
	subj("unpopular")
	subj("poor", "wealthy", "rich")
	subj("rich", "poor")
	subj("low", "high")
	subj("cold", "warm", "hot")
	subj("chilly")
	subj("hot", "cold")
	subj("minor", "major")
	subj("unsafe", "safe")
	subj("beautiful", "ugly")
	subj("huge", "tiny")
	subj("large", "small")
	subj("famous", "obscure")
	subj("important", "unimportant")
	subj("new", "old")
	subj("stable", "unstable")
	subj("orderly", "chaotic")
	subj("vivid", "dull")
	subj("nice", "nasty")
	subj("nasty", "nice")
	subj("good", "bad")
	subj("bad", "good")
	subj("great", "terrible")
	subj("terrible", "great")
	subj("amazing", "awful")
	subj("awful", "amazing")
	subj("wonderful", "dreadful")
	subj("dreadful")
	subj("lovely")
	subj("charming")
	subj("scary", "reassuring")
	subj("reassuring")
	subj("crowded", "empty")
	subj("empty", "crowded")
	subj("lively", "sleepy")
	subj("sleepy", "lively")
	subj("clean", "dirty")
	subj("dirty", "clean")
	subj("modern", "ancient")
	subj("ancient", "modern")
	subj("vibrant")
	subj("touristy")
	subj("walkable")
	subj("affordable", "unaffordable")
	subj("unaffordable")
	subj("competitive")
	subj("demanding", "easy")
	subj("easy", "hard")
	subj("hard", "easy")
	subj("stressful", "relaxing")
	subj("relaxing", "stressful")
	subj("rewarding")
	subj("lucrative")
	subj("risky", "safe")
	subj("tough", "gentle")
	subj("gentle", "tough")
	subj("fierce", "docile")
	subj("docile", "fierce")
	subj("adorable", "repulsive")
	subj("repulsive")
	subj("fluffy")
	subj("majestic")
	subj("venomous", "harmless")
	subj("aggressive", "passive")
	subj("passive")
	subj("smart", "stupid")
	subj("stupid", "smart")
	subj("clever", "dim")
	subj("dim")
	subj("funny", "humorless")
	subj("humorless")
	subj("talented", "talentless")
	subj("talentless")
	subj("arrogant", "humble")
	subj("humble", "arrogant")
	subj("generous", "stingy")
	subj("stingy")
	subj("glamorous", "drab")
	subj("drab")
	subj("controversial", "uncontroversial")
	subj("uncontroversial")
	subj("deep", "shallow")
	subj("shallow", "deep")
	subj("wide", "narrow")
	subj("narrow", "wide")
	subj("tall", "short")
	subj("short", "tall")
	subj("steep", "gradual")
	subj("gradual")
	subj("remote", "accessible")
	subj("accessible", "remote")
	subj("scenic")
	subj("healthy", "unhealthy")
	subj("unhealthy", "healthy")
	subj("strong", "weak")
	subj("weak", "strong")
	subj("strict", "lenient")
	subj("lenient")
	subj("brutal", "merciful")
	subj("merciful")
	subj("elegant", "clumsy")
	subj("clumsy")
	subj("graceful", "awkward")
	subj("awkward", "graceful")
	subj("intense", "mild")
	subj("mild", "intense")
	subj("technical")
	subj("physical")
	subj("athletic")

	// Objective adjectives (the patterns extract these too; the paper notes
	// most extractions end up subjective in practice).
	obj("american")
	obj("european")
	obj("asian")
	obj("african")
	obj("californian")
	obj("swiss")
	obj("british")
	obj("portuguese")
	obj("chinese")
	obj("southern", "northern")
	obj("northern", "southern")
	obj("eastern", "western")
	obj("western", "eastern")
	obj("coastal", "inland")
	obj("inland")
	obj("urban", "rural")
	obj("rural", "urban")
	obj("national")
	obj("international")
	obj("local")
	obj("annual")
	obj("olympic")
	obj("professional", "amateur")
	obj("amateur")
	obj("medical")
	obj("industrial")
	obj("alpine")
	obj("freshwater")
	obj("orange")
	obj("green")
	obj("blue")
	obj("red")
	obj("white")
	obj("black")

	// --- Common and type nouns --------------------------------------------

	for _, w := range []string{"city", "cities", "town", "towns", "animal",
		"animals", "celebrity", "celebrities", "profession", "professions",
		"sport", "sports", "country", "countries", "lake", "lakes",
		"mountain", "mountains", "place", "places", "creature", "creatures",
		"person", "people", "job", "jobs", "game", "games", "activity",
		"activities", "pet", "pets", "star", "stars", "destination",
		"destinations", "peak", "peaks", "nation", "nations", "species",
		"actor", "actors", "musician", "musicians", "disease", "diseases",
		"car", "cars", "artist", "artists", "metropolis", "village",
		"villages", "predator", "predators", "career", "careers",
		"pastime", "hobby", "hobbies", "region", "regions", "area",
		"areas", "model", "models", "brand", "brands", "book", "books",
		"movie", "movies", "film", "films", "dish", "dishes", "food",
		"foods", "instrument", "instruments", "language", "languages",
		"building", "buildings", "river", "rivers", "island", "islands",
		"university", "universities", "company", "companies"} {
		l.typeNouns[w] = true
		add(Noun, w)
	}

	for _, w := range []string{"parking", "weather", "traffic", "nightlife",
		"food", "beach", "beaches", "summer", "winter", "tourists",
		"tourist", "families", "family", "kids", "children", "beginners",
		"beginner", "standards", "standard", "opinion", "opinions", "time",
		"year", "years", "day", "days", "night", "nights", "visit", "trip",
		"vacation", "holiday", "money", "price", "prices", "rent", "rents",
		"size", "population", "center", "downtown", "suburb", "suburbs",
		"street", "streets", "park", "parks", "museum", "museums", "house",
		"houses", "home", "homes", "world", "life", "way", "lot", "bit",
		"thing", "things", "fact", "reputation", "experience", "air",
		"water", "history", "culture", "economy", "crime", "safety",
		"living", "cost", "costs", "fan", "fans", "team", "teams",
		"player", "players", "match", "matches", "injury", "injuries",
		"salary", "salaries", "training", "skill", "skills", "fur", "tail",
		"teeth", "claws", "bite", "bites", "zoo", "wild", "nature",
		"hiking", "swimming", "climbing", "view", "views", "snow", "ice",
		"surface", "depth", "height", "area", "shore", "shores", "trail",
		"trails", "summit", "slope", "slopes"} {
		add(Noun, w)
	}

	add(Punct, ".", ",", "!", "?", ";", ":", "(", ")", "\"", "'", "-")

	return l
}
