// Package lexicon provides the word knowledge used by the Surveyor NLP
// substrate: part-of-speech entries, copula and negation word classes, a
// subjective-adjective inventory, and a WordNet-lite antonym table.
//
// The paper's pipeline consumed a web snapshot annotated by a Stanford-style
// parser backed by large lexical resources; this package is the from-scratch
// substitute sized to the grammar our corpus generator emits plus common
// free-text variation.
package lexicon

import "strings"

// Tag is a coarse part-of-speech tag.
type Tag int

// Coarse part-of-speech inventory. Proper nouns get Propn so the entity
// tagger can prefer capitalised spans; everything the parser does not care
// about collapses into Other.
const (
	Other Tag = iota
	Noun
	Propn
	Verb
	Adj
	Adv
	Det
	Prep
	Pron
	Conj
	Neg
	Num
	Punct
	Aux
	Mark // subordinating complementizer: that, because, while...
)

var tagNames = [...]string{
	Other: "OTHER", Noun: "NOUN", Propn: "PROPN", Verb: "VERB", Adj: "ADJ",
	Adv: "ADV", Det: "DET", Prep: "PREP", Pron: "PRON", Conj: "CONJ",
	Neg: "NEG", Num: "NUM", Punct: "PUNCT", Aux: "AUX", Mark: "MARK",
}

// String returns the conventional upper-case tag name.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return "OTHER"
}

// Lexicon maps word forms to their possible parts of speech (in preference
// order) and exposes the closed word classes the parser and extractor need.
type Lexicon struct {
	entries map[string][]Tag

	copulas     map[string]string // surface form -> lemma ("is" -> "be")
	strictToBe  map[string]bool   // forms of "to be" only (pattern versions 3-4)
	negations   map[string]bool
	subjective  map[string]bool
	antonyms    map[string][]string
	typeNouns   map[string]bool // nouns naming entity types: city, animal...
	opinionVerb map[string]bool // think, believe, find, consider...
}

// Lookup returns the possible tags for a word form (case-insensitive),
// most preferred first.
func (l *Lexicon) Lookup(word string) ([]Tag, bool) {
	tags, ok := l.entries[strings.ToLower(word)]
	return tags, ok
}

// PrimaryTag returns the preferred tag for a word, or Other if unknown.
func (l *Lexicon) PrimaryTag(word string) Tag {
	if tags, ok := l.Lookup(word); ok && len(tags) > 0 {
		return tags[0]
	}
	return Other
}

// HasTag reports whether word can take the given tag.
func (l *Lexicon) HasTag(word string, tag Tag) bool {
	tags, _ := l.Lookup(word)
	for _, t := range tags {
		if t == tag {
			return true
		}
	}
	return false
}

// IsCopula reports whether word is in the broad copula class (be, seem,
// look, appear, become, remain, stay, feel, sound) used by extraction
// pattern versions 1-2.
func (l *Lexicon) IsCopula(word string) bool {
	_, ok := l.copulas[strings.ToLower(word)]
	return ok
}

// CopulaLemma returns the lemma of a copular verb form ("are" -> "be").
func (l *Lexicon) CopulaLemma(word string) (string, bool) {
	lemma, ok := l.copulas[strings.ToLower(word)]
	return lemma, ok
}

// IsToBe reports whether word is a form of "to be" — the restricted verb
// set of extraction pattern versions 3-4 (Appendix B).
func (l *Lexicon) IsToBe(word string) bool {
	return l.strictToBe[strings.ToLower(word)]
}

// IsNegation reports whether word is a negation token (not, n't, never,
// no, hardly, ...).
func (l *Lexicon) IsNegation(word string) bool {
	return l.negations[strings.ToLower(word)]
}

// IsSubjectiveAdjective reports whether the adjective is in the subjective
// inventory. Extraction does not require this (the paper extracts objective
// adjectives too), but the corpus generator and some analyses use it.
func (l *Lexicon) IsSubjectiveAdjective(adj string) bool {
	return l.subjective[strings.ToLower(adj)]
}

// Antonyms returns the registered antonyms of an adjective. Per Section 4
// of the paper, polarity detection deliberately does NOT use antonyms; the
// table exists to document the decision and to support the corpus
// generator's distractor sentences.
func (l *Lexicon) Antonyms(adj string) []string {
	return l.antonyms[strings.ToLower(adj)]
}

// IsTypeNoun reports whether the noun names an entity type (city, animal,
// sport, ...) — used by the coreference heuristic for the adjectival
// modifier pattern ("Snakes are dangerous animals").
func (l *Lexicon) IsTypeNoun(noun string) bool {
	return l.typeNouns[strings.ToLower(noun)]
}

// IsOpinionVerb reports whether the verb introduces an opinion clause
// (think, believe, consider, find, ...).
func (l *Lexicon) IsOpinionVerb(word string) bool {
	return l.opinionVerb[strings.ToLower(word)]
}

// AddNoun registers additional noun forms (the knowledge base feeds its
// entity names and type nouns in through this).
func (l *Lexicon) AddNoun(word string, proper bool) {
	key := strings.ToLower(word)
	tag := Noun
	if proper {
		tag = Propn
	}
	for _, t := range l.entries[key] {
		if t == tag {
			return
		}
	}
	l.entries[key] = append([]Tag{tag}, l.entries[key]...)
}

// AddTypeNoun registers a noun as naming an entity type.
func (l *Lexicon) AddTypeNoun(word string) {
	l.AddNoun(word, false)
	l.typeNouns[strings.ToLower(word)] = true
}

// AddAdjective registers an extra adjective, optionally marking it
// subjective and wiring antonym pairs symmetrically.
func (l *Lexicon) AddAdjective(word string, subjective bool, antonyms ...string) {
	key := strings.ToLower(word)
	if !l.HasTag(key, Adj) {
		l.entries[key] = append(l.entries[key], Adj)
	}
	if subjective {
		l.subjective[key] = true
	}
	for _, a := range antonyms {
		a = strings.ToLower(a)
		l.antonyms[key] = appendUnique(l.antonyms[key], a)
		l.antonyms[a] = appendUnique(l.antonyms[a], key)
	}
}

func appendUnique(xs []string, x string) []string {
	for _, v := range xs {
		if v == x {
			return xs
		}
	}
	return append(xs, x)
}

// SubjectiveAdjectives returns the sorted-order-independent list of all
// registered subjective adjectives.
func (l *Lexicon) SubjectiveAdjectives() []string {
	out := make([]string, 0, len(l.subjective))
	for a := range l.subjective {
		out = append(out, a)
	}
	return out
}
