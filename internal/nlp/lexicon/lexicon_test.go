package lexicon

import "testing"

func TestDefaultClosedClasses(t *testing.T) {
	l := Default()
	cases := []struct {
		word string
		tag  Tag
	}{
		{"the", Det}, {"for", Prep}, {"and", Conj}, {"i", Pron},
		{"not", Neg}, {"is", Verb}, {"very", Adv}, {"cute", Adj},
		{"because", Mark}, {"do", Aux},
	}
	for _, c := range cases {
		if !l.HasTag(c.word, c.tag) {
			t.Errorf("%q should have tag %v", c.word, c.tag)
		}
	}
}

func TestCaseInsensitiveLookup(t *testing.T) {
	l := Default()
	if !l.HasTag("Cute", Adj) {
		t.Error("lookup should be case-insensitive")
	}
	if !l.IsCopula("IS") {
		t.Error("IsCopula should be case-insensitive")
	}
}

func TestCopulaClasses(t *testing.T) {
	l := Default()
	for _, w := range []string{"is", "are", "was", "were", "be"} {
		if !l.IsCopula(w) || !l.IsToBe(w) {
			t.Errorf("%q should be copula and to-be", w)
		}
	}
	for _, w := range []string{"seems", "looks", "became", "felt"} {
		if !l.IsCopula(w) {
			t.Errorf("%q should be in the broad copula class", w)
		}
		if l.IsToBe(w) {
			t.Errorf("%q must not be a to-be form", w)
		}
	}
	if l.IsCopula("runs") {
		t.Error("runs is not a copula")
	}
}

func TestCopulaLemma(t *testing.T) {
	l := Default()
	if lemma, ok := l.CopulaLemma("are"); !ok || lemma != "be" {
		t.Errorf("CopulaLemma(are) = %q, %v", lemma, ok)
	}
	if lemma, ok := l.CopulaLemma("seemed"); !ok || lemma != "seem" {
		t.Errorf("CopulaLemma(seemed) = %q, %v", lemma, ok)
	}
}

func TestNegations(t *testing.T) {
	l := Default()
	for _, w := range []string{"not", "n't", "never", "no", "hardly"} {
		if !l.IsNegation(w) {
			t.Errorf("%q should be a negation", w)
		}
	}
	if l.IsNegation("yes") {
		t.Error("yes is not a negation")
	}
}

func TestSubjectiveInventoryCoversTable2(t *testing.T) {
	l := Default()
	table2 := []string{
		"dangerous", "cute", "big", "friendly", "deadly",
		"cool", "crazy", "pretty", "quiet", "young",
		"calm", "cheap", "hectic", "multicultural",
		"exciting", "rare", "solid", "vital",
		"addictive", "boring", "fast", "popular",
	}
	for _, p := range table2 {
		if !l.IsSubjectiveAdjective(p) {
			t.Errorf("Table 2 property %q missing from subjective inventory", p)
		}
	}
}

func TestObjectiveAdjectivesNotSubjective(t *testing.T) {
	l := Default()
	for _, w := range []string{"american", "southern", "swiss"} {
		if !l.HasTag(w, Adj) {
			t.Errorf("%q should be an adjective", w)
		}
		if l.IsSubjectiveAdjective(w) {
			t.Errorf("%q should not be subjective", w)
		}
	}
}

func TestAntonymsSymmetric(t *testing.T) {
	l := Default()
	pairs := [][2]string{{"big", "small"}, {"safe", "dangerous"}, {"cheap", "expensive"}}
	for _, p := range pairs {
		if !contains(l.Antonyms(p[0]), p[1]) {
			t.Errorf("Antonyms(%q) missing %q", p[0], p[1])
		}
		if !contains(l.Antonyms(p[1]), p[0]) {
			t.Errorf("Antonyms(%q) missing %q", p[1], p[0])
		}
	}
}

func TestTypeNouns(t *testing.T) {
	l := Default()
	for _, w := range []string{"city", "cities", "animal", "sport"} {
		if !l.IsTypeNoun(w) {
			t.Errorf("%q should be a type noun", w)
		}
	}
	if l.IsTypeNoun("parking") {
		t.Error("parking is not a type noun")
	}
}

func TestOpinionVerbs(t *testing.T) {
	l := Default()
	for _, w := range []string{"think", "believe", "consider", "find"} {
		if !l.IsOpinionVerb(w) {
			t.Errorf("%q should be an opinion verb", w)
		}
	}
	if l.IsOpinionVerb("visit") {
		t.Error("visit is not an opinion verb")
	}
}

func TestAddNoun(t *testing.T) {
	l := Default()
	l.AddNoun("Zurich", true)
	if !l.HasTag("zurich", Propn) {
		t.Error("AddNoun proper should register Propn")
	}
	// Idempotent.
	l.AddNoun("Zurich", true)
	tags, _ := l.Lookup("zurich")
	count := 0
	for _, tg := range tags {
		if tg == Propn {
			count++
		}
	}
	if count != 1 {
		t.Errorf("duplicate Propn tags after repeated AddNoun: %v", tags)
	}
}

func TestAddAdjectiveWiresAntonyms(t *testing.T) {
	l := Default()
	l.AddAdjective("spiffy", true, "shabby")
	if !l.IsSubjectiveAdjective("spiffy") {
		t.Error("spiffy should be subjective")
	}
	if !contains(l.Antonyms("shabby"), "spiffy") {
		t.Error("antonym wiring should be symmetric")
	}
}

func TestPrimaryTagUnknown(t *testing.T) {
	l := Default()
	if got := l.PrimaryTag("xyzzyqwerty"); got != Other {
		t.Errorf("unknown word tag = %v, want Other", got)
	}
}

func TestTagString(t *testing.T) {
	if Adj.String() != "ADJ" || Noun.String() != "NOUN" {
		t.Error("Tag.String mismatch")
	}
	if Tag(99).String() != "OTHER" {
		t.Error("out-of-range tag should stringify as OTHER")
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
