package token

import "testing"

// FuzzSplitSentences checks the structural invariants of the tokenizer and
// sentence splitter on arbitrary input: byte offsets stay inside the
// source, token spans are ordered and non-overlapping, and sentence
// bounds agree with their tokens. Token.Text may legitimately differ from
// the source slice (contraction normalisation: "won't" -> "will" + "n't").
func FuzzSplitSentences(f *testing.F) {
	f.Add("I don't think that San Francisco is a big city, but it is beautiful.")
	f.Add("Mr. Smith won't visit St. Louis. Really?")
	f.Add("well-known U.S. cities... e.g. NYC!")
	f.Add("Kittens are cute. Spiders aren't.")
	f.Add("")
	f.Add("...")
	f.Add("a\x00b\xffc")
	f.Add("can't shan't won't o'clock 'tis")
	f.Fuzz(func(t *testing.T, text string) {
		toks := Tokenize(text)
		prevEnd := 0
		for i, tok := range toks {
			if tok.Text == "" {
				t.Fatalf("token %d is empty", i)
			}
			if tok.Start < prevEnd || tok.Start >= tok.End || tok.End > len(text) {
				t.Fatalf("token %d span [%d,%d) out of order or out of bounds (prev end %d, len %d)",
					i, tok.Start, tok.End, prevEnd, len(text))
			}
			prevEnd = tok.End
		}

		sents := SplitSentences(text)
		total := 0
		for si, s := range sents {
			if len(s.Tokens) == 0 {
				t.Fatalf("sentence %d has no tokens", si)
			}
			if s.Start != s.Tokens[0].Start || s.End != s.Tokens[len(s.Tokens)-1].End {
				t.Fatalf("sentence %d bounds [%d,%d) disagree with its tokens", si, s.Start, s.End)
			}
			for ti, tok := range s.Tokens {
				if tok != toks[total+ti] {
					t.Fatalf("sentence %d token %d differs from Tokenize output", si, ti)
				}
			}
			total += len(s.Tokens)
		}
		if total != len(toks) {
			t.Fatalf("sentences cover %d tokens, Tokenize produced %d", total, len(toks))
		}
	})
}
