package token

import (
	"strings"
	"testing"
	"testing/quick"
)

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	got := texts(Tokenize("Chicago is very big."))
	want := []string{"Chicago", "is", "very", "big", "."}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeNegativeContraction(t *testing.T) {
	got := texts(Tokenize("I don't think so"))
	want := []string{"I", "do", "n't", "think", "so"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeCant(t *testing.T) {
	got := texts(Tokenize("can't won't isn't"))
	want := []string{"can", "n't", "will", "n't", "is", "n't"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizePossessiveClitic(t *testing.T) {
	got := texts(Tokenize("Chicago's winters"))
	want := []string{"Chicago", "'s", "winters"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeHyphen(t *testing.T) {
	got := texts(Tokenize("a well-known city"))
	want := []string{"a", "well-known", "city"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizePunctuation(t *testing.T) {
	got := texts(Tokenize("big, but not safe!"))
	want := []string{"big", ",", "but", "not", "safe", "!"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	src := "San Francisco is big."
	for _, tok := range Tokenize(src) {
		if src[tok.Start:tok.End] != tok.Text {
			t.Fatalf("offset mismatch: %q vs %q", src[tok.Start:tok.End], tok.Text)
		}
	}
}

func TestTokenizeContractionOffsetsCoverSource(t *testing.T) {
	src := "don't"
	toks := Tokenize(src)
	if len(toks) != 2 {
		t.Fatalf("got %d tokens", len(toks))
	}
	if toks[0].Start != 0 || toks[1].End != len(src) {
		t.Fatalf("offsets %v do not span source", toks)
	}
	if toks[0].End != toks[1].Start {
		t.Fatal("contraction tokens should be adjacent")
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize empty = %v", got)
	}
	if got := Tokenize("   \n\t "); len(got) != 0 {
		t.Fatalf("Tokenize whitespace = %v", got)
	}
}

func TestSplitSentencesBasic(t *testing.T) {
	sents := SplitSentences("Kittens are cute. Spiders are not cute! Really?")
	if len(sents) != 3 {
		t.Fatalf("got %d sentences, want 3", len(sents))
	}
	if sents[0].Tokens[0].Text != "Kittens" || sents[1].Tokens[0].Text != "Spiders" {
		t.Fatalf("sentence boundaries wrong: %v", sents)
	}
}

func TestSplitSentencesAbbreviation(t *testing.T) {
	sents := SplitSentences("Dr. Smith lives in St. Louis. He likes it.")
	if len(sents) != 2 {
		for _, s := range sents {
			t.Logf("sentence: %s", s.Text())
		}
		t.Fatalf("got %d sentences, want 2", len(sents))
	}
}

func TestSplitSentencesInitial(t *testing.T) {
	sents := SplitSentences("J. Smith visited Rome. It was great.")
	if len(sents) != 2 {
		t.Fatalf("got %d sentences, want 2", len(sents))
	}
}

func TestSplitSentencesNoTrailingPeriod(t *testing.T) {
	sents := SplitSentences("kittens are cute")
	if len(sents) != 1 || len(sents[0].Tokens) != 3 {
		t.Fatalf("got %v", sents)
	}
}

func TestSentenceText(t *testing.T) {
	sents := SplitSentences("Rome is big.")
	if got := sents[0].Text(); got != "Rome is big ." {
		t.Fatalf("Text() = %q", got)
	}
}

func TestTokenLower(t *testing.T) {
	tok := Token{Text: "BiG"}
	if tok.Lower() != "big" {
		t.Fatal("Lower failed")
	}
}

// Property: every token's offsets index the source exactly, tokens are
// non-overlapping and in order.
func TestTokenizeOffsetInvariant(t *testing.T) {
	f := func(s string) bool {
		// Restrict to printable ASCII to keep the property meaningful.
		clean := make([]byte, 0, len(s))
		for i := 0; i < len(s); i++ {
			if s[i] >= 32 && s[i] < 127 {
				clean = append(clean, s[i])
			}
		}
		src := string(clean)
		prevEnd := 0
		for _, tok := range Tokenize(src) {
			if tok.Start < prevEnd || tok.End <= tok.Start || tok.End > len(src) {
				return false
			}
			// Non-contraction tokens must match their span verbatim.
			if tok.Text != "n't" && tok.Text != "will" && src[tok.Start:tok.End] != tok.Text {
				// Contraction stems may rewrite ("wo" -> "will", "ca" -> "can").
				if !(tok.Text == "can" && src[tok.Start:tok.End] == "ca") &&
					!(strings.EqualFold(tok.Text, "can") && strings.EqualFold(src[tok.Start:tok.End], "ca")) {
					return false
				}
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: sentence splitting partitions the token stream.
func TestSplitSentencesPartitionProperty(t *testing.T) {
	f := func(s string) bool {
		clean := make([]byte, 0, len(s))
		for i := 0; i < len(s); i++ {
			if s[i] >= 32 && s[i] < 127 {
				clean = append(clean, s[i])
			}
		}
		src := string(clean)
		total := len(Tokenize(src))
		sum := 0
		for _, sent := range SplitSentences(src) {
			if len(sent.Tokens) == 0 {
				return false
			}
			sum += len(sent.Tokens)
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
