// Package token implements the tokenizer and sentence splitter of the
// Surveyor NLP substrate. Offsets into the original text are preserved so
// entity mentions can be mapped back to their source.
package token

import (
	"strings"
	"unicode"
)

// Token is a single token with its position in the source text.
type Token struct {
	Text  string // surface form as it appeared (contractions split: "n't")
	Start int    // byte offset of the first byte in the source
	End   int    // byte offset one past the last byte

	// lower caches the lower-cased surface form. The tokenizer fills it so
	// the POS/lexicon hot loops never re-run strings.ToLower; tokens built
	// by hand (tests, codecs) may leave it empty and Lower falls back.
	lower string
}

// New builds a token with its lowercase cache filled — the constructor for
// code that materialises tokens outside the tokenizer (the annotation
// codec) and needs them identical to tokenizer output.
func New(text string, start, end int) Token {
	return Token{Text: text, Start: start, End: end, lower: strings.ToLower(text)}
}

// Lower returns the lower-cased surface form.
func (t Token) Lower() string {
	if t.lower != "" {
		return t.lower
	}
	return strings.ToLower(t.Text)
}

// Sentence is a contiguous span of tokens.
type Sentence struct {
	Tokens []Token
	Start  int // byte offset of the sentence in the source
	End    int
}

// Text reconstructs an approximate surface string (single spaces between
// tokens); intended for diagnostics, not round-tripping.
func (s Sentence) Text() string {
	parts := make([]string, len(s.Tokens))
	for i, t := range s.Tokens {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// Common abbreviations that do not end a sentence.
var abbreviations = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"st": true, "mt": true, "vs": true, "etc": true, "inc": true,
	"jr": true, "sr": true, "e.g": true, "i.e": true, "approx": true,
	"no": true, "vol": true, "fig": true,
}

// Tokenize splits text into tokens. Rules:
//   - runs of letters/digits form words;
//   - negative contractions are split into stem + "n't" ("don't" -> "do",
//     "n't"); other apostrophe clitics ("'s", "'re") are split off;
//   - each punctuation rune is its own token;
//   - hyphenated words stay together ("well-known").
func Tokenize(text string) []Token {
	return TokenizeInto(nil, text)
}

// TokenizeInto appends the tokens of text to dst and returns the extended
// slice — the scratch-reuse variant of Tokenize for hot loops that process
// many texts with one buffer.
func TokenizeInto(dst []Token, text string) []Token {
	i := 0
	n := len(text)
	for i < n {
		r := rune(text[i])
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			i++
		case isWordByte(text[i]):
			j := i
			for j < n && (isWordByte(text[j]) || isInnerByte(text, j)) {
				j++
			}
			dst = appendWordTokens(dst, text[i:j], i)
			i = j
		default:
			dst = append(dst, New(text[i:i+1], i, i+1))
			i++
		}
	}
	return dst
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// isInnerByte allows apostrophes, hyphens, and periods inside a word when
// flanked by word bytes ("don't", "well-known", "U.S").
func isInnerByte(text string, j int) bool {
	b := text[j]
	if b != '\'' && b != '-' && b != '.' {
		return false
	}
	return j > 0 && isWordByte(text[j-1]) && j+1 < len(text) && isWordByte(text[j+1])
}

// appendWordTokens appends a word to dst, breaking apostrophe clitics off
// while keeping byte offsets consistent with the source.
func appendWordTokens(dst []Token, word string, start int) []Token {
	lower := strings.ToLower(word)
	// Trailing sentence-internal period stays ("U.S." keeps its inner dots
	// by isInnerByte; a trailing one never reaches here).
	if idx := strings.LastIndex(lower, "n't"); idx > 0 && idx == len(lower)-3 {
		stem := word[:idx]
		if lower[:idx] == "ca" { // can't -> can + n't
			stem = word[:2] + "n"
		}
		if lower[:idx] == "wo" { // won't -> will + n't
			stem = "will"
		}
		return append(dst,
			New(stem, start, start+idx),
			Token{Text: "n't", Start: start + idx, End: start + len(word), lower: "n't"})
	}
	for _, clitic := range []string{"'s", "'re", "'ve", "'ll", "'d", "'m"} {
		if strings.HasSuffix(lower, clitic) && len(word) > len(clitic) {
			cut := len(word) - len(clitic)
			return append(dst,
				Token{Text: word[:cut], Start: start, End: start + cut, lower: lower[:cut]},
				Token{Text: word[cut:], Start: start + cut, End: start + len(word), lower: lower[cut:]})
		}
	}
	return append(dst, Token{Text: word, Start: start, End: start + len(word), lower: lower})
}

// SplitSentences tokenizes text and groups the tokens into sentences.
// Sentence boundaries are ".", "!", "?" tokens, except after known
// abbreviations or single capital letters ("J. Smith").
func SplitSentences(text string) []Sentence {
	sents, _ := SplitSentencesInto(nil, nil, text)
	return sents
}

// SplitSentencesInto is the scratch-reuse variant of SplitSentences: it
// tokenizes text into toks (appending), groups the tokens into sentences
// appended to sents, and returns both extended slices. The returned
// sentences alias the returned token slice, so they are valid only until
// the buffers are reused.
func SplitSentencesInto(sents []Sentence, toks []Token, text string) ([]Sentence, []Token) {
	tokBase := len(toks)
	toks = TokenizeInto(toks, text)
	fresh := toks[tokBase:]
	begin := 0
	for i := range fresh {
		if !isSentenceEnd(fresh, i) {
			continue
		}
		if i+1 > begin {
			sents = append(sents, makeSentence(fresh[begin:i+1]))
		}
		begin = i + 1
	}
	if begin < len(fresh) {
		sents = append(sents, makeSentence(fresh[begin:]))
	}
	return sents, toks
}

func isSentenceEnd(toks []Token, i int) bool {
	t := toks[i].Text
	if t != "." && t != "!" && t != "?" {
		return false
	}
	if t == "." && i > 0 {
		prev := toks[i-1].Lower()
		prev = strings.TrimSuffix(prev, ".")
		if abbreviations[prev] {
			return false
		}
		// Single capital letter: an initial, not a sentence end.
		if len(toks[i-1].Text) == 1 && unicode.IsUpper(rune(toks[i-1].Text[0])) {
			return false
		}
	}
	return true
}

func makeSentence(toks []Token) Sentence {
	return Sentence{Tokens: toks, Start: toks[0].Start, End: toks[len(toks)-1].End}
}
