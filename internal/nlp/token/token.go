// Package token implements the tokenizer and sentence splitter of the
// Surveyor NLP substrate. Offsets into the original text are preserved so
// entity mentions can be mapped back to their source.
package token

import (
	"strings"
	"unicode"
)

// Token is a single token with its position in the source text.
type Token struct {
	Text  string // surface form as it appeared (contractions split: "n't")
	Start int    // byte offset of the first byte in the source
	End   int    // byte offset one past the last byte
}

// Lower returns the lower-cased surface form.
func (t Token) Lower() string { return strings.ToLower(t.Text) }

// Sentence is a contiguous span of tokens.
type Sentence struct {
	Tokens []Token
	Start  int // byte offset of the sentence in the source
	End    int
}

// Text reconstructs an approximate surface string (single spaces between
// tokens); intended for diagnostics, not round-tripping.
func (s Sentence) Text() string {
	parts := make([]string, len(s.Tokens))
	for i, t := range s.Tokens {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// Common abbreviations that do not end a sentence.
var abbreviations = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"st": true, "mt": true, "vs": true, "etc": true, "inc": true,
	"jr": true, "sr": true, "e.g": true, "i.e": true, "approx": true,
	"no": true, "vol": true, "fig": true,
}

// Tokenize splits text into tokens. Rules:
//   - runs of letters/digits form words;
//   - negative contractions are split into stem + "n't" ("don't" -> "do",
//     "n't"); other apostrophe clitics ("'s", "'re") are split off;
//   - each punctuation rune is its own token;
//   - hyphenated words stay together ("well-known").
func Tokenize(text string) []Token {
	var toks []Token
	i := 0
	n := len(text)
	for i < n {
		r := rune(text[i])
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			i++
		case isWordByte(text[i]):
			j := i
			for j < n && (isWordByte(text[j]) || isInnerByte(text, j)) {
				j++
			}
			word := text[i:j]
			toks = append(toks, splitClitics(word, i)...)
			i = j
		default:
			toks = append(toks, Token{Text: string(text[i]), Start: i, End: i + 1})
			i++
		}
	}
	return toks
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// isInnerByte allows apostrophes, hyphens, and periods inside a word when
// flanked by word bytes ("don't", "well-known", "U.S").
func isInnerByte(text string, j int) bool {
	b := text[j]
	if b != '\'' && b != '-' && b != '.' {
		return false
	}
	return j > 0 && isWordByte(text[j-1]) && j+1 < len(text) && isWordByte(text[j+1])
}

// splitClitics breaks apostrophe clitics off a word, keeping byte offsets
// consistent with the source.
func splitClitics(word string, start int) []Token {
	lower := strings.ToLower(word)
	// Trailing sentence-internal period stays ("U.S." keeps its inner dots
	// by isInnerByte; a trailing one never reaches here).
	if idx := strings.LastIndex(lower, "n't"); idx > 0 && idx == len(lower)-3 {
		stem := word[:idx]
		if lower[:idx] == "ca" { // can't -> can + n't
			stem = word[:2] + "n"
		}
		if lower[:idx] == "wo" { // won't -> will + n't
			stem = "will"
		}
		return []Token{
			{Text: stem, Start: start, End: start + idx},
			{Text: "n't", Start: start + idx, End: start + len(word)},
		}
	}
	for _, clitic := range []string{"'s", "'re", "'ve", "'ll", "'d", "'m"} {
		if strings.HasSuffix(lower, clitic) && len(word) > len(clitic) {
			cut := len(word) - len(clitic)
			return []Token{
				{Text: word[:cut], Start: start, End: start + cut},
				{Text: word[cut:], Start: start + cut, End: start + len(word)},
			}
		}
	}
	return []Token{{Text: word, Start: start, End: start + len(word)}}
}

// SplitSentences tokenizes text and groups the tokens into sentences.
// Sentence boundaries are ".", "!", "?" tokens, except after known
// abbreviations or single capital letters ("J. Smith").
func SplitSentences(text string) []Sentence {
	toks := Tokenize(text)
	var sents []Sentence
	begin := 0
	for i := range toks {
		if !isSentenceEnd(toks, i) {
			continue
		}
		if i+1 > begin {
			sents = append(sents, makeSentence(toks[begin:i+1]))
		}
		begin = i + 1
	}
	if begin < len(toks) {
		sents = append(sents, makeSentence(toks[begin:]))
	}
	return sents
}

func isSentenceEnd(toks []Token, i int) bool {
	t := toks[i].Text
	if t != "." && t != "!" && t != "?" {
		return false
	}
	if t == "." && i > 0 {
		prev := strings.ToLower(toks[i-1].Text)
		prev = strings.TrimSuffix(prev, ".")
		if abbreviations[prev] {
			return false
		}
		// Single capital letter: an initial, not a sentence end.
		if len(toks[i-1].Text) == 1 && unicode.IsUpper(rune(toks[i-1].Text[0])) {
			return false
		}
	}
	return true
}

func makeSentence(toks []Token) Sentence {
	cp := make([]Token, len(toks))
	copy(cp, toks)
	return Sentence{Tokens: cp, Start: cp[0].Start, End: cp[len(cp)-1].End}
}
