package token

import (
	"reflect"
	"testing"
)

var intoSamples = []string{
	"",
	"Kittens are cute.",
	"San Francisco is big! Dr. Smith doesn't agree. Really?",
	"A well-known city. J. Smith visited the U.S. in 2020.",
	"can't won't it's we're I'm they'd you'll",
}

// TestTokenizeIntoMatchesTokenize checks the scratch-reuse contract: with a
// prefilled destination the appended suffix must equal the allocating
// variant, and the prefix must be untouched.
func TestTokenizeIntoMatchesTokenize(t *testing.T) {
	prefix := Tokenize("existing prefix tokens")
	for _, text := range intoSamples {
		want := Tokenize(text)
		dst := append([]Token(nil), prefix...)
		got := TokenizeInto(dst, text)
		if !reflect.DeepEqual(got[:len(prefix)], prefix) {
			t.Fatalf("%q: prefix was modified", text)
		}
		if len(want) == 0 && len(got) == len(prefix) {
			continue
		}
		if !reflect.DeepEqual(got[len(prefix):], want) {
			t.Fatalf("%q: appended tokens diverge\ngot  %+v\nwant %+v", text, got[len(prefix):], want)
		}
	}
}

// TestSplitSentencesIntoMatchesSplit reuses one buffer pair across all
// samples — as a pipeline worker does — and checks each result against the
// allocating variant.
func TestSplitSentencesIntoMatchesSplit(t *testing.T) {
	var sents []Sentence
	var toks []Token
	for round := 0; round < 3; round++ { // reuse across rounds grows caps
		for _, text := range intoSamples {
			want := SplitSentences(text)
			sents, toks = SplitSentencesInto(sents[:0], toks[:0], text)
			if len(sents) != len(want) {
				t.Fatalf("%q: %d sentences, want %d", text, len(sents), len(want))
			}
			for i := range want {
				if sents[i].Start != want[i].Start || sents[i].End != want[i].End {
					t.Fatalf("%q sentence %d: span [%d,%d), want [%d,%d)", text, i,
						sents[i].Start, sents[i].End, want[i].Start, want[i].End)
				}
				if !reflect.DeepEqual(sents[i].Tokens, want[i].Tokens) {
					t.Fatalf("%q sentence %d: tokens diverge", text, i)
				}
			}
		}
	}
}

// TestLowerCachedAtTokenizeTime pins the satellite fix: tokens coming out
// of the tokenizer carry their lowercase form, and hand-built tokens still
// answer Lower correctly through the fallback.
func TestLowerCachedAtTokenizeTime(t *testing.T) {
	for _, tok := range Tokenize("San Francisco DOESN'T sleep") {
		if tok.lower == "" {
			t.Fatalf("token %q has no cached lower form", tok.Text)
		}
		if tok.Lower() != tok.lower {
			t.Fatalf("token %q: Lower()=%q, cache=%q", tok.Text, tok.Lower(), tok.lower)
		}
	}
	hand := Token{Text: "ABC", Start: 0, End: 3}
	if hand.Lower() != "abc" {
		t.Fatalf("fallback Lower = %q", hand.Lower())
	}
	if got := New("ABC", 0, 3); got.lower != "abc" {
		t.Fatalf("New did not fill the cache: %+v", got)
	}
}
