package kb

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/nlp/lexicon"
)

func TestAddAndGet(t *testing.T) {
	k := New()
	id := k.Add(Entity{Name: "Palo Alto", Type: "city", Proper: true,
		Attributes: map[string]float64{"population": 64000}})
	e := k.Get(id)
	if e.Name != "Palo Alto" || e.Type != "city" || e.ID != id {
		t.Fatalf("Get returned %+v", e)
	}
	if e.Attr("population", 0) != 64000 {
		t.Fatalf("Attr = %v", e.Attr("population", 0))
	}
	if e.Attr("missing", 7) != 7 {
		t.Fatal("Attr default not applied")
	}
}

func TestCandidatesCaseInsensitive(t *testing.T) {
	k := New()
	id := k.Add(Entity{Name: "San Francisco", Type: "city", Proper: true})
	for _, q := range []string{"san francisco", "SAN FRANCISCO", "San Francisco"} {
		cands := k.Candidates(q)
		if len(cands) != 1 || cands[0] != id {
			t.Fatalf("Candidates(%q) = %v", q, cands)
		}
	}
}

func TestAliasesIndexed(t *testing.T) {
	k := New()
	id := k.Add(Entity{Name: "Los Angeles", Type: "city", Proper: true,
		Aliases: []string{"LA", "City of Angels"}})
	if got := k.Candidates("la"); len(got) != 1 || got[0] != id {
		t.Fatalf("alias lookup failed: %v", got)
	}
}

func TestAutoPluralAliasForCommonNouns(t *testing.T) {
	k := New()
	id := k.Add(Entity{Name: "kitten", Type: "animal"})
	if got := k.Candidates("kittens"); len(got) != 1 || got[0] != id {
		t.Fatalf("plural alias missing: %v", got)
	}
	// Proper nouns do not get plural aliases.
	k.Add(Entity{Name: "Paris", Type: "city", Proper: true})
	if got := k.Candidates("parises"); len(got) != 0 {
		t.Fatalf("proper noun got plural alias: %v", got)
	}
}

func TestPluralize(t *testing.T) {
	cases := map[string]string{
		"city":         "cities",
		"dog":          "dogs",
		"fox":          "foxes",
		"bush":         "bushes",
		"church":       "churches",
		"day":          "days",
		"grizzly bear": "grizzly bears",
		"profession":   "professions",
	}
	for in, want := range cases {
		if got := Pluralize(in); got != want {
			t.Errorf("Pluralize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOfTypeAndTypes(t *testing.T) {
	k := New()
	k.Add(Entity{Name: "kitten", Type: "animal"})
	k.Add(Entity{Name: "tiger", Type: "animal"})
	k.Add(Entity{Name: "Rome", Type: "city", Proper: true})
	if got := len(k.OfType("animal")); got != 2 {
		t.Fatalf("OfType(animal) = %d entries", got)
	}
	types := k.Types()
	if len(types) != 2 || types[0] != "animal" || types[1] != "city" {
		t.Fatalf("Types() = %v", types)
	}
}

func TestMaxAliasTokens(t *testing.T) {
	k := New()
	k.Add(Entity{Name: "Rome", Type: "city", Proper: true})
	if k.MaxAliasTokens() != 1 {
		t.Fatal("single-word KB should have window 1")
	}
	k.Add(Entity{Name: "Rancho Santa Margarita", Type: "city", Proper: true})
	if k.MaxAliasTokens() != 3 {
		t.Fatalf("window = %d, want 3", k.MaxAliasTokens())
	}
}

func TestRegisterLexicon(t *testing.T) {
	k := New()
	k.Add(Entity{Name: "Zondervale", Type: "city", Proper: true})
	k.Add(Entity{Name: "wombat", Type: "animal"})
	lex := lexicon.Default()
	k.RegisterLexicon(lex)
	if !lex.HasTag("zondervale", lexicon.Propn) {
		t.Error("city name not registered as proper noun")
	}
	if !lex.HasTag("wombat", lexicon.Noun) {
		t.Error("animal name not registered as noun")
	}
	if !lex.IsTypeNoun("city") || !lex.IsTypeNoun("animals") {
		t.Error("type nouns not registered (singular + plural)")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	k := New()
	k.Add(Entity{Name: "Palo Alto", Type: "city", Proper: true,
		Attributes: map[string]float64{"population": 64000}})
	k.Add(Entity{Name: "kitten", Type: "animal",
		Attributes: map[string]float64{"cuteness": 1}})

	var buf bytes.Buffer
	if err := k.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 2 {
		t.Fatalf("loaded %d entities", loaded.Len())
	}
	e := loaded.Get(0)
	if e.Name != "Palo Alto" || e.Attr("population", 0) != 64000 {
		t.Fatalf("round trip lost data: %+v", e)
	}
	if got := loaded.Candidates("kittens"); len(got) != 1 {
		t.Fatalf("plural alias lost in round trip: %v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{not json")); err == nil {
		t.Fatal("Load should fail on malformed input")
	}
}

func TestDefaultKB(t *testing.T) {
	k := Default(1)
	if got := len(k.OfType("city")); got != 461 {
		t.Errorf("cities = %d, want 461", got)
	}
	if got := len(k.OfType("animal")); got < 70 {
		t.Errorf("animals = %d, want >= 70", got)
	}
	for _, typ := range []string{"celebrity", "profession", "sport", "country", "lake", "mountain"} {
		if len(k.OfType(typ)) == 0 {
			t.Errorf("type %q empty", typ)
		}
	}
	// Figure 10 animals present with their AMT votes.
	cands := k.Candidates("kitten")
	if len(cands) != 1 {
		t.Fatalf("kitten candidates = %v", cands)
	}
	if votes := k.Get(cands[0]).Attr("cute_votes", -1); votes != 20 {
		t.Errorf("kitten cute_votes = %v, want 20", votes)
	}
	// Populations span orders of magnitude.
	var minPop, maxPop = 1e18, 0.0
	for _, id := range k.OfType("city") {
		p := k.Get(id).Attr("population", 0)
		if p < minPop {
			minPop = p
		}
		if p > maxPop {
			maxPop = p
		}
	}
	if maxPop/minPop < 1000 {
		t.Errorf("population spread too narrow: %v .. %v", minPop, maxPop)
	}
}

func TestDefaultDeterministic(t *testing.T) {
	a, b := Default(7), Default(7)
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Get(EntityID(i)).Name != b.Get(EntityID(i)).Name {
			t.Fatalf("entity %d differs: %q vs %q", i,
				a.Get(EntityID(i)).Name, b.Get(EntityID(i)).Name)
		}
	}
}

func TestRandomDomains(t *testing.T) {
	b := NewBuilder(3)
	types := b.RandomDomains(10, 7)
	if len(types) != 10 {
		t.Fatalf("types = %d", len(types))
	}
	k := b.KB()
	for _, typ := range types {
		if got := len(k.OfType(typ)); got != 7 {
			t.Fatalf("type %q has %d entities, want 7", typ, got)
		}
	}
	// Prominence decays within each type.
	ids := k.OfType(types[0])
	first := k.Get(ids[0]).Attr("prominence", 0)
	last := k.Get(ids[len(ids)-1]).Attr("prominence", 0)
	if first <= last {
		t.Errorf("prominence should decay: first %v, last %v", first, last)
	}
}

func TestAmbiguousCitiesExist(t *testing.T) {
	k := Default(1)
	n := 0
	for _, id := range k.OfType("city") {
		if k.Get(id).Ambiguous {
			n++
		}
	}
	if n == 0 {
		t.Error("expected some ambiguous city names (Section 2 discard simulation)")
	}
}

func TestAssignProminence(t *testing.T) {
	b := NewBuilder(3)
	b.SwissLakes(30)
	b.AssignProminence("lake", "area_km2")
	base := b.KB()
	// Every lake gets a prominence in (0, 1].
	var biggest, smallest *Entity
	for _, id := range base.OfType("lake") {
		e := base.Get(id)
		p := e.Attr("prominence", -1)
		if p <= 0 || p > 1 {
			t.Fatalf("prominence out of range for %s: %v", e.Name, p)
		}
		if biggest == nil || e.Attr("area_km2", 0) > biggest.Attr("area_km2", 0) {
			biggest = e
		}
		if smallest == nil || e.Attr("area_km2", 0) < smallest.Attr("area_km2", 0) {
			smallest = e
		}
	}
	// With mild jitter the extremes should still be ordered.
	if biggest.Attr("prominence", 0) <= smallest.Attr("prominence", 0) {
		t.Errorf("biggest lake (%s, prom %.3f) should be more prominent than smallest (%s, prom %.3f)",
			biggest.Name, biggest.Attr("prominence", 0),
			smallest.Name, smallest.Attr("prominence", 0))
	}
}

func TestBuildersDomainsNonEmptyAndTyped(t *testing.T) {
	b := NewBuilder(5)
	b.Countries()
	b.SwissLakes(20)
	b.BritishMountains(20)
	b.Professions()
	b.Sports()
	base := b.KB()
	cases := map[string]string{
		"country": "gdp_per_capita", "lake": "area_km2",
		"mountain": "height_m", "profession": "risk", "sport": "speed",
	}
	for typ, attr := range cases {
		ids := base.OfType(typ)
		if len(ids) < 10 {
			t.Errorf("type %s has only %d entities", typ, len(ids))
		}
		for _, id := range ids {
			if base.Get(id).Attr(attr, -1) < 0 {
				t.Errorf("%s %q missing attribute %s", typ, base.Get(id).Name, attr)
			}
		}
	}
}

func TestFigure10AnimalsAllPresent(t *testing.T) {
	base := Default(2)
	want := []string{"pony", "spider", "koala", "rat", "scorpion", "crow",
		"kitten", "monkey", "octopus", "beaver", "goose", "tiger", "moose",
		"frog", "grizzly bear", "alligator", "puppy", "camel", "white shark", "lion"}
	for _, name := range want {
		cands := base.Candidates(name)
		if len(cands) != 1 {
			t.Errorf("figure-10 animal %q: candidates %v", name, cands)
			continue
		}
		if base.Get(cands[0]).Attr("cute_votes", -1) < 0 {
			t.Errorf("%q missing cute_votes", name)
		}
	}
}

func TestEntityAttrNilMap(t *testing.T) {
	e := Entity{Name: "x"}
	if e.Attr("anything", 3.5) != 3.5 {
		t.Fatal("Attr on nil map should return default")
	}
}
