// Package kb implements the knowledge base the Surveyor pipeline runs
// against: typed entities with aliases and objective attributes. The paper
// used an extension of Freebase; this package provides the same interface —
// entities grouped by their most notable type — backed by deterministic
// synthetic instances for the paper's evaluation domains.
package kb

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/nlp/lexicon"
)

// EntityID identifies an entity within a KB. IDs are dense, assigned in
// insertion order.
type EntityID int32

// Entity is one knowledge-base entry.
type Entity struct {
	ID      EntityID `json:"id"`
	Name    string   `json:"name"` // canonical surface form, e.g. "San Francisco"
	Type    string   `json:"type"` // most notable type, e.g. "city"
	Aliases []string `json:"aliases,omitempty"`
	// Proper reports whether the name is a proper noun (capitalised in
	// text) as opposed to a common noun like "kitten" or "soccer".
	Proper bool `json:"proper"`
	// Attributes holds objective numeric properties (population, area_km2,
	// gdp_per_capita, height_m, prominence) used as correlation proxies in
	// the paper's empirical analyses.
	Attributes map[string]float64 `json:"attributes,omitempty"`
	// Ambiguous marks names that collide with unrelated senses; the entity
	// tagger requires stronger context to link them (Section 2 discarded
	// 11 of 23 high-traffic city names for ambiguity).
	Ambiguous bool `json:"ambiguous,omitempty"`
}

// Attr returns a named attribute, or def when absent.
func (e *Entity) Attr(name string, def float64) float64 {
	if v, ok := e.Attributes[name]; ok {
		return v
	}
	return def
}

// KB is an in-memory knowledge base. It is immutable after building and
// safe for concurrent reads.
type KB struct {
	entities  []Entity
	byType    map[string][]EntityID
	byAlias   map[string][]EntityID // lower-cased alias -> candidate IDs
	firstSpan map[string]int        // first alias word -> max token count of aliases starting with it
}

// New returns an empty knowledge base.
func New() *KB {
	return &KB{
		byType:    map[string][]EntityID{},
		byAlias:   map[string][]EntityID{},
		firstSpan: map[string]int{},
	}
}

// Add inserts an entity, assigning and returning its ID. The canonical name
// is indexed along with all aliases; for common-noun entities a regular
// plural alias is derived automatically ("kitten" -> "kittens").
func (kb *KB) Add(e Entity) EntityID {
	id := EntityID(len(kb.entities))
	e.ID = id
	if !e.Proper {
		if pl := Pluralize(e.Name); pl != e.Name && !containsFold(e.Aliases, pl) {
			e.Aliases = append(e.Aliases, pl)
		}
	}
	kb.entities = append(kb.entities, e)
	kb.byType[e.Type] = append(kb.byType[e.Type], id)
	kb.index(e.Name, id)
	for _, a := range e.Aliases {
		kb.index(a, id)
	}
	return id
}

func (kb *KB) index(alias string, id EntityID) {
	key := strings.ToLower(strings.TrimSpace(alias))
	if key == "" {
		return
	}
	first, n := key, 1
	if sp := strings.IndexByte(key, ' '); sp >= 0 {
		first = key[:sp]
		n = strings.Count(key, " ") + 1
	}
	if n > kb.firstSpan[first] {
		kb.firstSpan[first] = n
	}
	for _, existing := range kb.byAlias[key] {
		if existing == id {
			return
		}
	}
	kb.byAlias[key] = append(kb.byAlias[key], id)
}

func containsFold(xs []string, x string) bool {
	for _, v := range xs {
		if strings.EqualFold(v, x) {
			return true
		}
	}
	return false
}

// Get returns the entity with the given ID. It panics on out-of-range IDs
// (which indicate a programming error, not bad input).
func (kb *KB) Get(id EntityID) *Entity {
	return &kb.entities[id]
}

// Len returns the number of entities.
func (kb *KB) Len() int { return len(kb.entities) }

// OfType returns the IDs of all entities with the given most notable type,
// in insertion order.
func (kb *KB) OfType(typ string) []EntityID { return kb.byType[typ] }

// Types returns all entity types in sorted order.
func (kb *KB) Types() []string {
	out := make([]string, 0, len(kb.byType))
	for t := range kb.byType {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Candidates returns the entity IDs whose name or alias matches the given
// surface form (case-insensitive). The returned slice must not be modified.
func (kb *KB) Candidates(surface string) []EntityID {
	return kb.byAlias[strings.ToLower(surface)]
}

// CandidatesLower is Candidates for a surface form the caller has already
// lower-cased — the hot-loop variant that skips strings.ToLower.
func (kb *KB) CandidatesLower(lower string) []EntityID {
	return kb.byAlias[lower]
}

// CandidatesLowerBytes is CandidatesLower over a byte buffer; the map index
// conversion does not allocate, so callers can probe with a reusable
// scratch buffer.
func (kb *KB) CandidatesLowerBytes(lower []byte) []EntityID {
	return kb.byAlias[string(lower)]
}

// MaxAliasTokensFor returns the maximum token count of any indexed alias
// whose first word is firstLower (already lower-cased), or 0 when no alias
// starts with that word — letting the entity tagger skip n-gram probes that
// cannot match.
func (kb *KB) MaxAliasTokensFor(firstLower string) int {
	return kb.firstSpan[firstLower]
}

// MaxAliasTokens returns the maximum number of whitespace-separated tokens
// in any indexed alias — the window size the entity tagger needs.
func (kb *KB) MaxAliasTokens() int {
	max := 1
	for a := range kb.byAlias {
		if n := strings.Count(a, " ") + 1; n > max {
			max = n
		}
	}
	return max
}

// RegisterLexicon adds every entity name and alias to the lexicon so the
// POS tagger recognises them as nouns, and registers every type name as a
// type noun (for the coreference heuristic).
func (kb *KB) RegisterLexicon(lex *lexicon.Lexicon) {
	for i := range kb.entities {
		e := &kb.entities[i]
		for _, form := range append([]string{e.Name}, e.Aliases...) {
			for _, w := range strings.Fields(form) {
				lex.AddNoun(w, e.Proper)
			}
		}
	}
	for t := range kb.byType {
		lex.AddTypeNoun(t)
		lex.AddTypeNoun(Pluralize(t))
	}
}

// Pluralize derives a regular English plural: city->cities, fox->foxes,
// dog->dogs. Multi-word names pluralise the last word.
func Pluralize(name string) string {
	fields := strings.Fields(name)
	if len(fields) == 0 {
		return name
	}
	last := fields[len(fields)-1]
	lower := strings.ToLower(last)
	var pl string
	switch {
	case strings.HasSuffix(lower, "s") || strings.HasSuffix(lower, "x") ||
		strings.HasSuffix(lower, "z") || strings.HasSuffix(lower, "ch") ||
		strings.HasSuffix(lower, "sh"):
		pl = last + "es"
	case strings.HasSuffix(lower, "y") && len(lower) > 1 && !isVowel(lower[len(lower)-2]):
		pl = last[:len(last)-1] + "ies"
	default:
		pl = last + "s"
	}
	fields[len(fields)-1] = pl
	return strings.Join(fields, " ")
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// Save writes the KB as JSON (one entity per line) to w.
func (kb *KB) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range kb.entities {
		if err := enc.Encode(&kb.entities[i]); err != nil {
			return fmt.Errorf("kb: save entity %d: %w", i, err)
		}
	}
	return nil
}

// Load reads a KB previously written by Save. IDs are reassigned in file
// order (Save writes them in ID order, so round-tripping preserves IDs).
func Load(r io.Reader) (*KB, error) {
	kb := New()
	dec := json.NewDecoder(r)
	for {
		var e Entity
		if err := dec.Decode(&e); err == io.EOF {
			return kb, nil
		} else if err != nil {
			return nil, fmt.Errorf("kb: load: %w", err)
		}
		// Avoid re-deriving plural aliases that Save already persisted.
		aliases := e.Aliases
		e.Aliases = nil
		added := kb.Add(e)
		ent := kb.Get(added)
		ent.Aliases = aliases
		for _, a := range aliases {
			kb.index(a, added)
		}
	}
}
