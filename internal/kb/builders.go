package kb

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// Builder assembles the synthetic knowledge base for the paper's
// evaluation domains. All generation is deterministic in the seed.
type Builder struct {
	kb  *KB
	rng *stats.RNG
}

// NewBuilder returns a builder seeded for deterministic generation.
func NewBuilder(seed uint64) *Builder {
	return &Builder{kb: New(), rng: stats.NewRNG(seed)}
}

// KB returns the knowledge base built so far.
func (b *Builder) KB() *KB { return b.kb }

// AssignProminence gives every entity of the type a long-tailed
// "prominence" attribute ranked by the named attribute descending. See
// setProminenceByRank for the profile.
func (b *Builder) AssignProminence(typ, attr string) {
	b.setProminenceByRankJitter(typ, func(e *Entity) float64 { return e.Attr(attr, 0) }, 0.25)
}

// setProminenceByRank assigns each entity of the type a "prominence"
// attribute 1/(rank+1)^0.6, ranked by the key descending — the long-tail
// visibility profile of real web mentions (Figure 9(a): most entities are
// rarely written about). Entities keep any prominence already set.
func (b *Builder) setProminenceByRank(typ string, key func(e *Entity) float64) {
	b.setProminenceByRankJitter(typ, key, 0.7)
}

func (b *Builder) setProminenceByRankJitter(typ string, key func(e *Entity) float64, jitter float64) {
	ids := append([]EntityID(nil), b.kb.OfType(typ)...)
	sort.SliceStable(ids, func(i, j int) bool {
		return key(b.kb.Get(ids[i])) > key(b.kb.Get(ids[j]))
	})
	for rank, id := range ids {
		e := b.kb.Get(id)
		if e.Attributes == nil {
			e.Attributes = map[string]float64{}
		}
		if _, ok := e.Attributes["prominence"]; !ok {
			// Lognormal jitter decorrelates fame from the ranking proxy:
			// Palo Alto is famous but small, some big places are obscure.
			p := math.Pow(1/float64(rank+1), 0.6) * math.Exp(b.rng.Normal(0, jitter))
			if p > 1 {
				p = 1
			}
			e.Attributes["prominence"] = p
		}
	}
}

// Default builds the full evaluation knowledge base: the five Table-2
// domains, the three Appendix-A domains, and the Figure-3 Californian
// cities. Entity counts are scaled-down but structure-preserving.
func Default(seed uint64) *KB {
	b := NewBuilder(seed)
	b.CalifornianCities(461)
	b.Animals()
	b.Celebrities(60)
	b.Professions()
	b.Sports()
	b.Countries()
	b.SwissLakes(45)
	b.BritishMountains(55)
	// Web visibility: cities by size, celebrities by fame, everything else
	// by a type-specific salience proxy; all long-tailed.
	b.setProminenceByRank("city", func(e *Entity) float64 { return e.Attr("population", 0) })
	b.setProminenceByRank("celebrity", func(e *Entity) float64 { return e.Attr("fame", 0) })
	b.setProminenceByRank("animal", func(e *Entity) float64 {
		return e.Attr("cuteness", 0) + e.Attr("ferocity", 0)
	})
	b.setProminenceByRank("profession", func(e *Entity) float64 { return 1 - e.Attr("scarcity", 0) })
	b.setProminenceByRank("sport", func(e *Entity) float64 { return e.Attr("popularity", 0) })
	b.setProminenceByRank("country", func(e *Entity) float64 { return e.Attr("gdp_per_capita", 0) })
	b.setProminenceByRank("lake", func(e *Entity) float64 { return e.Attr("area_km2", 0) })
	b.setProminenceByRank("mountain", func(e *Entity) float64 { return e.Attr("height_m", 0) })
	return b.KB()
}

// realCACities are well-known Californian city names seeded with plausible
// populations; the remainder of the 461 is generated synthetically.
var realCACities = []struct {
	name string
	pop  float64
}{
	{"Los Angeles", 3900000}, {"San Diego", 1380000}, {"San Jose", 1030000},
	{"San Francisco", 840000}, {"Fresno", 520000}, {"Sacramento", 480000},
	{"Long Beach", 465000}, {"Oakland", 410000}, {"Bakersfield", 360000},
	{"Anaheim", 345000}, {"Santa Ana", 330000}, {"Riverside", 315000},
	{"Stockton", 300000}, {"Irvine", 250000}, {"Chula Vista", 248000},
	{"Fremont", 225000}, {"Santa Clarita", 210000}, {"San Bernardino", 209000},
	{"Modesto", 204000}, {"Fontana", 196000}, {"Oxnard", 197000},
	{"Moreno Valley", 193000}, {"Glendale", 191000}, {"Huntington Beach", 189000},
	{"Santa Rosa", 167000}, {"Ontario", 163000}, {"Elk Grove", 153000},
	{"Garden Grove", 170000}, {"Oceanside", 167000}, {"Rancho Cucamonga", 165000},
	{"Palo Alto", 64000}, {"Santa Barbara", 88000}, {"Berkeley", 112000},
	{"Pasadena", 137000}, {"Torrance", 145000}, {"Sunnyvale", 140000},
	{"Santa Monica", 89000}, {"Carlsbad", 105000}, {"Ventura", 106000},
	{"Cupertino", 58000}, {"Napa", 77000}, {"Monterey", 28000},
	{"Sausalito", 7100}, {"Calistoga", 5200}, {"Ferndale", 1370},
}

var citySyllA = []string{"Al", "Bel", "Cal", "Del", "Esca", "Fair", "Glen",
	"Hart", "Indi", "Jas", "Kel", "Lor", "Mira", "Nor", "Oak", "Pal", "Quin",
	"Ross", "Sal", "Tem", "Ula", "Ver", "Wal", "Yor", "Zan", "Bur", "Cor",
	"Dun", "Elm", "Fal"}
var citySyllB = []string{"ada", "brook", "crest", "dale", "field", "ford",
	"grove", "ham", "land", "mont", "port", "ridge", "side", "ton", "ville",
	"wood", "view", "bury", "ley", "mere"}
var cityPrefix = []string{"", "", "", "", "San ", "Santa ", "El ", "Los ",
	"North ", "South ", "East ", "West ", "New ", "Port ", "Fort "}

// CalifornianCities builds n cities of type "city" with log-spread
// populations (Figure 3's x-axis). A handful of names are flagged
// Ambiguous, mirroring the 11/23 ambiguity discard of Section 2.
func (b *Builder) CalifornianCities(n int) {
	seen := map[string]bool{}
	add := func(name string, pop float64, ambiguous bool) {
		if seen[strings.ToLower(name)] {
			return
		}
		seen[strings.ToLower(name)] = true
		b.kb.Add(Entity{
			Name: name, Type: "city", Proper: true,
			Attributes: map[string]float64{"population": pop},
			Ambiguous:  ambiguous,
		})
	}
	for _, c := range realCACities {
		if len(seen) >= n {
			break
		}
		// "Ontario" and "Glendale" collide with places elsewhere; "Orange"
		// style common-word collisions are marked ambiguous.
		ambiguous := c.name == "Ontario" || c.name == "Glendale"
		add(c.name, c.pop, ambiguous)
	}
	for len(seen) < n {
		name := cityPrefix[b.rng.Intn(len(cityPrefix))] +
			citySyllA[b.rng.Intn(len(citySyllA))] +
			citySyllB[b.rng.Intn(len(citySyllB))]
		// Log-uniform population between 300 and 2,000,000.
		pop := math.Exp(b.rng.Float64()*(math.Log(2e6)-math.Log(300)) + math.Log(300))
		add(name, math.Round(pop), b.rng.Bernoulli(0.02))
	}
}

// figure10Animals are the 20 animals of the paper's Figure 10 with the
// AMT "cute" vote counts the figure reports (out of 20 workers).
var figure10Animals = []struct {
	name      string
	cuteVotes int
}{
	{"pony", 19}, {"spider", 1}, {"koala", 20}, {"rat", 4},
	{"scorpion", 1}, {"crow", 5}, {"kitten", 20}, {"monkey", 15},
	{"octopus", 6}, {"beaver", 13}, {"goose", 9}, {"tiger", 12},
	{"moose", 8}, {"frog", 7}, {"grizzly bear", 10}, {"alligator", 3},
	{"puppy", 20}, {"camel", 9}, {"white shark", 2}, {"lion", 13},
}

// extraAnimals extends the animal domain beyond the Figure-10 sample.
// weight in kg, ferocity and cuteness in [0,1] act as the objective
// anchors the world model derives latent dominant opinions from.
var extraAnimals = []struct {
	name               string
	weight             float64
	ferocity, cuteness float64
}{
	{"dog", 30, 0.25, 0.85}, {"cat", 4.5, 0.2, 0.9}, {"rabbit", 2, 0.05, 0.9},
	{"hamster", 0.03, 0.02, 0.9}, {"snake", 5, 0.75, 0.1},
	{"wolf", 45, 0.8, 0.45}, {"fox", 8, 0.4, 0.7}, {"deer", 90, 0.1, 0.75},
	{"elephant", 5000, 0.4, 0.65}, {"giraffe", 1200, 0.1, 0.65},
	{"hippo", 1800, 0.85, 0.3}, {"rhino", 2300, 0.7, 0.25},
	{"panda", 110, 0.15, 0.95}, {"penguin", 25, 0.05, 0.9},
	{"dolphin", 200, 0.1, 0.8}, {"whale", 30000, 0.1, 0.5},
	{"eagle", 6, 0.6, 0.5}, {"owl", 2, 0.35, 0.75},
	{"crocodile", 500, 0.95, 0.1}, {"cobra", 6, 0.9, 0.08},
	{"tarantula", 0.09, 0.5, 0.05}, {"wasp", 0.0001, 0.55, 0.03},
	{"bee", 0.0001, 0.3, 0.4}, {"butterfly", 0.0005, 0.01, 0.8},
	{"squirrel", 0.5, 0.05, 0.85}, {"hedgehog", 0.8, 0.05, 0.9},
	{"otter", 10, 0.1, 0.92}, {"seal", 120, 0.1, 0.8},
	{"walrus", 1200, 0.3, 0.4}, {"bat", 0.05, 0.2, 0.25},
	{"pig", 150, 0.1, 0.55}, {"goat", 60, 0.15, 0.6},
	{"sheep", 80, 0.02, 0.65}, {"cow", 600, 0.05, 0.5},
	{"horse", 500, 0.15, 0.7}, {"donkey", 250, 0.05, 0.6},
	{"chicken", 2.5, 0.05, 0.45}, {"duck", 1.5, 0.05, 0.65},
	{"swan", 10, 0.3, 0.7}, {"peacock", 5, 0.1, 0.7},
	{"leopard", 60, 0.9, 0.4}, {"cheetah", 50, 0.8, 0.5},
	{"jaguar", 90, 0.9, 0.35}, {"hyena", 50, 0.8, 0.15},
	{"gorilla", 160, 0.55, 0.45}, {"chimpanzee", 50, 0.45, 0.6},
	{"lemur", 2.2, 0.05, 0.8}, {"sloth", 5, 0.01, 0.8},
	{"armadillo", 5, 0.05, 0.4}, {"porcupine", 10, 0.2, 0.35},
	{"skunk", 3, 0.15, 0.4}, {"raccoon", 8, 0.25, 0.6},
	{"jellyfish", 0.2, 0.5, 0.15}, {"piranha", 1, 0.85, 0.05},
	{"mosquito", 0.000002, 0.6, 0.01}, {"ant", 0.000003, 0.1, 0.1},
}

// Animals builds the animal domain: the 20 Figure-10 animals (with their
// reported AMT cute votes stored as an attribute) plus a broader set.
func (b *Builder) Animals() {
	f10Weights := map[string]float64{
		"pony": 200, "spider": 0.02, "koala": 10, "rat": 0.3,
		"scorpion": 0.03, "crow": 0.5, "kitten": 1, "monkey": 8,
		"octopus": 15, "beaver": 20, "goose": 4, "tiger": 220,
		"moose": 450, "frog": 0.05, "grizzly bear": 300, "alligator": 360,
		"puppy": 4, "camel": 500, "white shark": 1100, "lion": 190,
	}
	f10Ferocity := map[string]float64{
		"pony": 0.05, "spider": 0.5, "koala": 0.1, "rat": 0.3,
		"scorpion": 0.7, "crow": 0.2, "kitten": 0.02, "monkey": 0.3,
		"octopus": 0.25, "beaver": 0.15, "goose": 0.35, "tiger": 0.95,
		"moose": 0.5, "frog": 0.02, "grizzly bear": 0.9, "alligator": 0.95,
		"puppy": 0.02, "camel": 0.2, "white shark": 0.98, "lion": 0.95,
	}
	for _, a := range figure10Animals {
		b.kb.Add(Entity{
			Name: a.name, Type: "animal", Proper: false,
			Attributes: map[string]float64{
				"weight_kg":  f10Weights[a.name],
				"ferocity":   f10Ferocity[a.name],
				"cuteness":   float64(a.cuteVotes) / 20,
				"cute_votes": float64(a.cuteVotes),
			},
		})
	}
	for _, a := range extraAnimals {
		b.kb.Add(Entity{
			Name: a.name, Type: "animal", Proper: false,
			Attributes: map[string]float64{
				"weight_kg": a.weight,
				"ferocity":  a.ferocity,
				"cuteness":  a.cuteness,
			},
		})
	}
}

var celebFirst = []string{"Ava", "Ben", "Cara", "Dex", "Ella", "Finn",
	"Gia", "Hugo", "Iris", "Jack", "Kira", "Liam", "Mona", "Nico", "Opal",
	"Pax", "Quinn", "Rosa", "Seth", "Tara", "Uma", "Vito", "Wren", "Ximena",
	"Yara", "Zane"}
var celebLast = []string{"Archer", "Bellweather", "Castellan", "Draper",
	"Ellsworth", "Fairbanks", "Goldwyn", "Harrington", "Ives", "Jansen",
	"Kingsley", "Lockhart", "Merriweather", "Northcote", "Osborne",
	"Pemberton", "Quillfeather", "Ravenscroft", "Sinclair", "Thorne",
	"Underwood", "Vanterpool", "Whitlock", "Yardley", "Zimmerman"}

// Celebrities builds n synthetic celebrities with age and fame attributes.
func (b *Builder) Celebrities(n int) {
	seen := map[string]bool{}
	for len(seen) < n {
		name := celebFirst[b.rng.Intn(len(celebFirst))] + " " +
			celebLast[b.rng.Intn(len(celebLast))]
		if seen[strings.ToLower(name)] {
			continue
		}
		seen[strings.ToLower(name)] = true
		b.kb.Add(Entity{
			Name: name, Type: "celebrity", Proper: true,
			Attributes: map[string]float64{
				"age":  float64(b.rng.IntRange(17, 85)),
				"fame": b.rng.Float64(),
			},
		})
	}
}

// professions with risk (0-1), salary (relative), and scarcity (0-1).
var professions = []struct {
	name                   string
	risk, salary, scarcity float64
}{
	{"firefighter", 0.9, 0.5, 0.4}, {"police officer", 0.85, 0.5, 0.3},
	{"miner", 0.95, 0.45, 0.5}, {"soldier", 0.95, 0.4, 0.4},
	{"pilot", 0.6, 0.85, 0.6}, {"astronaut", 0.9, 0.9, 0.99},
	{"surgeon", 0.3, 0.95, 0.8}, {"doctor", 0.3, 0.9, 0.6},
	{"nurse", 0.35, 0.55, 0.3}, {"teacher", 0.1, 0.45, 0.2},
	{"librarian", 0.02, 0.4, 0.4}, {"accountant", 0.02, 0.6, 0.2},
	{"lawyer", 0.05, 0.85, 0.4}, {"engineer", 0.1, 0.8, 0.3},
	{"programmer", 0.02, 0.8, 0.3}, {"farmer", 0.5, 0.4, 0.3},
	{"fisherman", 0.85, 0.35, 0.5}, {"lumberjack", 0.9, 0.4, 0.6},
	{"electrician", 0.6, 0.6, 0.3}, {"plumber", 0.35, 0.55, 0.3},
	{"carpenter", 0.4, 0.5, 0.3}, {"chef", 0.25, 0.5, 0.25},
	{"waiter", 0.1, 0.3, 0.1}, {"journalist", 0.4, 0.5, 0.4},
	{"photographer", 0.15, 0.45, 0.3}, {"actor", 0.1, 0.5, 0.5},
	{"musician", 0.05, 0.45, 0.45}, {"dancer", 0.3, 0.4, 0.5},
	{"athlete", 0.55, 0.7, 0.7}, {"stuntman", 0.98, 0.55, 0.9},
	{"racer", 0.9, 0.7, 0.85}, {"bodyguard", 0.7, 0.5, 0.6},
	{"detective", 0.6, 0.6, 0.6}, {"scientist", 0.1, 0.7, 0.5},
	{"archaeologist", 0.3, 0.55, 0.8}, {"astronomer", 0.02, 0.65, 0.85},
	{"veterinarian", 0.25, 0.7, 0.5}, {"dentist", 0.05, 0.85, 0.4},
	{"pharmacist", 0.02, 0.75, 0.4}, {"paramedic", 0.65, 0.5, 0.4},
}

// Professions builds the profession domain.
func (b *Builder) Professions() {
	for _, p := range professions {
		b.kb.Add(Entity{
			Name: p.name, Type: "profession", Proper: false,
			Attributes: map[string]float64{
				"risk": p.risk, "salary": p.salary, "scarcity": p.scarcity,
			},
		})
	}
}

// sports with speed (0-1), risk (0-1), and popularity (0-1).
var sports = []struct {
	name                    string
	speed, risk, popularity float64
}{
	{"soccer", 0.7, 0.35, 0.98}, {"basketball", 0.8, 0.3, 0.9},
	{"tennis", 0.75, 0.15, 0.8}, {"baseball", 0.5, 0.2, 0.75},
	{"cricket", 0.45, 0.2, 0.8}, {"rugby", 0.7, 0.8, 0.6},
	{"hockey", 0.85, 0.7, 0.6}, {"golf", 0.15, 0.05, 0.6},
	{"chess", 0.05, 0.01, 0.5}, {"boxing", 0.8, 0.95, 0.55},
	{"wrestling", 0.6, 0.7, 0.45}, {"skiing", 0.9, 0.75, 0.55},
	{"snowboarding", 0.9, 0.75, 0.5}, {"surfing", 0.8, 0.7, 0.5},
	{"skateboarding", 0.8, 0.65, 0.45}, {"climbing", 0.3, 0.85, 0.4},
	{"cycling", 0.75, 0.5, 0.65}, {"running", 0.6, 0.15, 0.7},
	{"swimming", 0.5, 0.2, 0.7}, {"diving", 0.4, 0.6, 0.35},
	{"gymnastics", 0.7, 0.55, 0.45}, {"volleyball", 0.65, 0.15, 0.6},
	{"badminton", 0.8, 0.05, 0.5}, {"table tennis", 0.9, 0.02, 0.5},
	{"archery", 0.2, 0.1, 0.3}, {"fencing", 0.85, 0.25, 0.3},
	{"rowing", 0.5, 0.2, 0.3}, {"sailing", 0.4, 0.45, 0.3},
	{"karate", 0.75, 0.5, 0.4}, {"judo", 0.7, 0.5, 0.4},
	{"motocross", 0.95, 0.95, 0.35}, {"parkour", 0.85, 0.9, 0.3},
	{"skydiving", 0.95, 0.98, 0.25}, {"bungee jumping", 0.9, 0.95, 0.2},
	{"darts", 0.1, 0.01, 0.35}, {"bowling", 0.2, 0.02, 0.45},
	{"billiards", 0.1, 0.01, 0.4}, {"polo", 0.7, 0.6, 0.15},
	{"lacrosse", 0.75, 0.5, 0.25}, {"handball", 0.75, 0.3, 0.35},
}

// Sports builds the sport domain.
func (b *Builder) Sports() {
	for _, s := range sports {
		b.kb.Add(Entity{
			Name: s.name, Type: "sport", Proper: false,
			Attributes: map[string]float64{
				"speed": s.speed, "risk": s.risk, "popularity": s.popularity,
			},
		})
	}
}

// countries with approximate 2013 GDP per capita in USD (Appendix A's
// "wealthy country" proxy).
var countries = []struct {
	name string
	gdp  float64
}{
	{"Luxembourg", 110000}, {"Norway", 100000}, {"Switzerland", 85000},
	{"Australia", 68000}, {"Denmark", 59000}, {"Sweden", 58000},
	{"Singapore", 55000}, {"United States", 53000}, {"Canada", 52000},
	{"Austria", 50000}, {"Netherlands", 51000}, {"Ireland", 51000},
	{"Finland", 49000}, {"Iceland", 47000}, {"Belgium", 46000},
	{"Germany", 45000}, {"France", 44000}, {"New Zealand", 42000},
	{"United Kingdom", 41000}, {"Japan", 38000}, {"Italy", 35000},
	{"Israel", 36000}, {"Spain", 29000}, {"South Korea", 26000},
	{"Slovenia", 23000}, {"Greece", 21000}, {"Portugal", 21000},
	{"Czechia", 19000}, {"Estonia", 19000}, {"Slovakia", 18000},
	{"Chile", 15500}, {"Uruguay", 16000}, {"Poland", 13600},
	{"Hungary", 13500}, {"Croatia", 13500}, {"Russia", 14600},
	{"Brazil", 11200}, {"Turkey", 10800}, {"Mexico", 10300},
	{"Argentina", 14700}, {"Malaysia", 10500}, {"Romania", 9500},
	{"Kazakhstan", 13600}, {"Bulgaria", 7500}, {"China", 6800},
	{"Thailand", 6200}, {"Colombia", 8000}, {"Peru", 6600},
	{"Ecuador", 6000}, {"South Africa", 6600}, {"Serbia", 6100},
	{"Jordan", 5200}, {"Albania", 4400}, {"Indonesia", 3600},
	{"Ukraine", 4000}, {"Morocco", 3100}, {"Philippines", 2800},
	{"Egypt", 3200}, {"Vietnam", 1900}, {"India", 1500},
	{"Nigeria", 3000}, {"Kenya", 1200}, {"Ghana", 1800},
	{"Bangladesh", 1000}, {"Pakistan", 1300}, {"Cambodia", 1000},
	{"Nepal", 700}, {"Tanzania", 900}, {"Uganda", 600},
	{"Ethiopia", 500}, {"Mozambique", 600}, {"Madagascar", 460},
	{"Malawi", 270}, {"Burundi", 260}, {"Niger", 410},
	{"Chad", 1050}, {"Mali", 700}, {"Haiti", 800},
	{"Bolivia", 2900}, {"Honduras", 2300}, {"Nicaragua", 1800},
	{"Paraguay", 4200}, {"Georgia", 3600}, {"Armenia", 3500},
	{"Mongolia", 4400}, {"Laos", 1600}, {"Myanmar", 1200},
	{"Sri Lanka", 3200}, {"Tunisia", 4200}, {"Algeria", 5400},
	{"Lebanon", 9900}, {"Oman", 21000}, {"Qatar", 94000},
	{"Kuwait", 52000}, {"Bahrain", 24000}, {"Saudi Arabia", 26000},
	{"Panama", 11000}, {"Costa Rica", 10200}, {"Jamaica", 5200},
	{"Cuba", 6800}, {"Venezuela", 12200}, {"Belarus", 7600},
	{"Lithuania", 15700}, {"Latvia", 15000}, {"Moldova", 2200},
	{"Azerbaijan", 7800}, {"Uzbekistan", 1900}, {"Turkmenistan", 7100},
	{"Fiji", 4600}, {"Samoa", 4000}, {"Bhutan", 2500},
	{"Botswana", 7300}, {"Namibia", 5700}, {"Zambia", 1800},
	{"Zimbabwe", 1000}, {"Senegal", 1000}, {"Cameroon", 1300},
}

// Countries builds the country domain (Appendix A, "wealthy").
func (b *Builder) Countries() {
	for _, c := range countries {
		b.kb.Add(Entity{
			Name: c.name, Type: "country", Proper: true,
			Attributes: map[string]float64{"gdp_per_capita": c.gdp},
		})
	}
}

// realSwissLakes with surface area in square kilometres.
var realSwissLakes = []struct {
	name string
	area float64
}{
	{"Lake Geneva", 580}, {"Lake Constance", 536}, {"Lake Neuchatel", 218},
	{"Lake Maggiore", 212}, {"Lake Lucerne", 114}, {"Lake Zurich", 88},
	{"Lake Lugano", 49}, {"Lake Thun", 48}, {"Lake Biel", 39},
	{"Lake Zug", 38}, {"Lake Brienz", 30}, {"Lake Walen", 24},
	{"Lake Murten", 23}, {"Lake Sempach", 14}, {"Lake Sils", 4.1},
	{"Lake Hallwil", 10}, {"Lake Greifen", 8.5}, {"Lake Sarnen", 7.4},
	{"Lake Aegeri", 7.2}, {"Lake Baldegg", 5.2}, {"Lake Silvaplana", 2.7},
	{"Lake Lauerz", 3.1}, {"Lake Pfaeffikon", 3.3}, {"Lake Oeschinen", 1.1},
	{"Lake Klontal", 3.3}, {"Lake Cauma", 0.1}, {"Lake Blausee", 0.007},
}

var lakeStems = []string{"Brunnen", "Gletscher", "Felsen", "Tannen",
	"Birken", "Adler", "Stein", "Wolken", "Nebel", "Silber", "Gold",
	"Kristall", "Schatten", "Morgen", "Abend", "Winter", "Alpen"}

// SwissLakes builds n lakes of type "lake" with area_km2 (Appendix A,
// "big").
func (b *Builder) SwissLakes(n int) {
	seen := map[string]bool{}
	add := func(name string, area float64) {
		if seen[strings.ToLower(name)] || len(seen) >= n {
			return
		}
		seen[strings.ToLower(name)] = true
		b.kb.Add(Entity{
			Name: name, Type: "lake", Proper: true,
			Attributes: map[string]float64{"area_km2": area},
		})
	}
	for _, l := range realSwissLakes {
		add(l.name, l.area)
	}
	for len(seen) < n {
		name := "Lake " + lakeStems[b.rng.Intn(len(lakeStems))] +
			[]string{"see", "bach", "tal"}[b.rng.Intn(3)]
		area := math.Exp(b.rng.Float64()*(math.Log(50)-math.Log(0.01)) + math.Log(0.01))
		add(name, math.Round(area*100)/100)
	}
}

// realBritishMountains with relative height (prominence) in metres.
var realBritishMountains = []struct {
	name   string
	height float64
}{
	{"Ben Nevis", 1345}, {"Ben Macdui", 950}, {"Snowdon", 1038},
	{"Scafell Pike", 912}, {"Carnedd Llewelyn", 749}, {"Ben Lomond", 834},
	{"Helvellyn", 712}, {"Cadair Idris", 608}, {"Goat Fell", 874},
	{"Slieve Donard", 822}, {"Pen y Fan", 672}, {"Skiddaw", 709},
	{"Ben More", 966}, {"Schiehallion", 716}, {"Cairn Gorm", 651},
	{"The Cheviot", 556}, {"Plynlimon", 530}, {"Cross Fell", 651},
	{"Mickle Fell", 513}, {"Worcestershire Beacon", 389},
	{"Kinder Scout", 497}, {"Black Mountain", 585}, {"Moel Siabod", 553},
	{"Tryfan", 557}, {"Crib Goch", 457},
}

var mountainStems = []string{"Raven", "Eagle", "Thunder", "Mist", "Stone",
	"Iron", "Grey", "Black", "White", "Red", "Wind", "Storm", "Heather",
	"Bracken", "Craggy"}

// BritishMountains builds n mountains of type "mountain" with height_m
// (Appendix A, "high").
func (b *Builder) BritishMountains(n int) {
	seen := map[string]bool{}
	add := func(name string, h float64) {
		if seen[strings.ToLower(name)] || len(seen) >= n {
			return
		}
		seen[strings.ToLower(name)] = true
		b.kb.Add(Entity{
			Name: name, Type: "mountain", Proper: true,
			Attributes: map[string]float64{"height_m": h},
		})
	}
	for _, m := range realBritishMountains {
		add(m.name, m.height)
	}
	for len(seen) < n {
		name := mountainStems[b.rng.Intn(len(mountainStems))] +
			[]string{" Pike", " Fell", " Crag", " Tor", " Ridge"}[b.rng.Intn(5)]
		h := 150 + b.rng.Float64()*1100
		add(name, math.Round(h))
	}
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

var randomTypeStems = []string{"gadget", "artifact", "remedy", "vessel",
	"garment", "beverage", "mineral", "herb", "engine", "fabric",
	"ornament", "utensil", "melody", "ritual", "pastry", "toy",
	"vehicle", "device", "compound", "specimen"}

var randomNameSyllables = []string{"ka", "lo", "mi", "ren", "tav", "sol",
	"ur", "vex", "wyn", "zor", "bel", "cor", "dra", "fen", "gal", "hol",
	"jin", "pry", "qua", "sten"}

// RandomDomains generates nTypes synthetic entity types with
// entitiesPerType entities each — the long tail of very specific entities
// ("Hiatal hernia", "Ford Cougar") that Appendix D samples from. Each
// entity gets a "prominence" attribute in (0,1] following a Zipf-like
// decay, so most are rarely mentioned.
func (b *Builder) RandomDomains(nTypes, entitiesPerType int) []string {
	var types []string
	for t := 0; t < nTypes; t++ {
		typ := fmt.Sprintf("%s%d", randomTypeStems[t%len(randomTypeStems)], t/len(randomTypeStems))
		types = append(types, typ)
		for e := 0; e < entitiesPerType; e++ {
			var sb strings.Builder
			k := 2 + b.rng.Intn(2)
			for s := 0; s < k; s++ {
				syl := randomNameSyllables[b.rng.Intn(len(randomNameSyllables))]
				if s == 0 {
					syl = strings.ToUpper(syl[:1]) + syl[1:]
				}
				sb.WriteString(syl)
			}
			name := fmt.Sprintf("%s %s", sb.String(), titleCase(typ))
			b.kb.Add(Entity{
				Name: name, Type: typ, Proper: true,
				Attributes: map[string]float64{
					"prominence": 1 / math.Pow(float64(e+1), 2.0),
					"latent":     b.rng.Float64(),
				},
			})
		}
	}
	return types
}
