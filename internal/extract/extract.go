// Package extract implements Surveyor's evidence-statement extraction
// (Section 4 of the paper): the three dependency patterns of Figure 4
// (adjectival modifier, adjectival complement, conjunction), the
// intrinsicness filters, and the negation-path polarity rule of Figure 5.
//
// The four historical pattern versions of Appendix B (Table 4) are
// available via VersionConfig, so the extraction-quality ablation can be
// reproduced.
package extract

import (
	"strings"

	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/tagger"
)

// Polarity of an evidence statement.
type Polarity int8

// Statement polarities. (Neutral exists only for aggregate results of
// downstream voters, never for extracted statements.)
const (
	Negative Polarity = -1
	Positive Polarity = +1
)

// Pattern identifies which extraction pattern produced a statement.
type Pattern int8

// The Figure-4 patterns.
const (
	AdjectivalModifier Pattern = iota
	AdjectivalComplement
	Conjunction
)

func (p Pattern) String() string {
	switch p {
	case AdjectivalModifier:
		return "amod"
	case AdjectivalComplement:
		return "acomp"
	case Conjunction:
		return "conj"
	}
	return "unknown"
}

// Statement is one extracted piece of evidence: a claim that Property
// does (Positive) or does not (Negative) apply to Entity.
type Statement struct {
	Entity   kb.EntityID
	Property string // normalised: optional degree adverbs + adjective, lower case
	Polarity Polarity
	Pattern  Pattern
}

// Version selects one of the four historical extraction configurations of
// Appendix B.
type Version int

// The pattern versions of Table 4.
const (
	V1 Version = iota + 1 // amod, broad copula class, no checks
	V2                    // amod+acomp, broad copula class, no checks
	V3                    // acomp only, "to be" only, intrinsicness checks
	V4                    // amod+acomp, "to be" only, checks — the shipped version
)

// Config is the knob set behind the versions.
type Config struct {
	UseAmod  bool // adjectival modifier pattern enabled
	UseAcomp bool // adjectival complement pattern enabled
	ToBeOnly bool // restrict the copular verb to forms of "to be"
	Checks   bool // intrinsicness filters (PP constriction + coreference)
}

// VersionConfig maps a Version to its Config.
func VersionConfig(v Version) Config {
	switch v {
	case V1:
		return Config{UseAmod: true}
	case V2:
		return Config{UseAmod: true, UseAcomp: true}
	case V3:
		return Config{UseAcomp: true, ToBeOnly: true, Checks: true}
	default:
		return Config{UseAmod: true, UseAcomp: true, ToBeOnly: true, Checks: true}
	}
}

// Extractor matches the extraction patterns against dependency trees. It
// is stateless and safe for concurrent use.
type Extractor struct {
	lex *lexicon.Lexicon
	cfg Config
}

// New returns an extractor with the given configuration.
func New(lex *lexicon.Lexicon, cfg Config) *Extractor {
	return &Extractor{lex: lex, cfg: cfg}
}

// NewVersion returns an extractor for one of the Appendix-B versions.
func NewVersion(lex *lexicon.Lexicon, v Version) *Extractor {
	return New(lex, VersionConfig(v))
}

// degreeAdverbs may become part of a property ("very big", "densely
// populated"); other adverbs ("also", "still") are ignored.
var degreeAdverbs = map[string]bool{
	"very": true, "really": true, "extremely": true, "incredibly": true,
	"quite": true, "rather": true, "truly": true, "so": true, "too": true,
	"highly": true, "fairly": true, "pretty": true, "remarkably": true,
	"surprisingly": true, "exceptionally": true, "particularly": true,
	"somewhat": true, "slightly": true, "absolutely": true, "totally": true,
	"completely": true, "utterly": true, "densely": true, "sparsely": true,
	"genuinely": true,
}

// Extract returns all evidence statements found in one parsed sentence.
// mentions must be the entity mentions of the same sentence.
func (x *Extractor) Extract(tree *depparse.Tree, mentions []tagger.Mention) []Statement {
	return x.ExtractInto(nil, tree, mentions)
}

// ExtractInto appends all evidence statements found in one parsed sentence
// to dst and returns the extended slice — the scratch-reuse variant of
// Extract. Deduplication is per sentence: only statements appended by this
// call are considered.
func (x *Extractor) ExtractInto(dst []Statement, tree *depparse.Tree, mentions []tagger.Mention) []Statement {
	if tree.Root() < 0 || len(mentions) == 0 {
		return dst
	}
	base := len(dst)
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		if n.Tag != lexicon.Adj {
			continue
		}
		switch {
		case x.cfg.UseAcomp && x.isAcompHead(tree, i):
			if x.cfg.Checks && x.subjectRestricted(tree, i) {
				continue
			}
			if ent, ok := x.subjectEntity(tree, i, mentions); ok {
				dst = x.emitWithConjuncts(dst, base, tree, i, i, ent, AdjectivalComplement)
			}
		case x.cfg.UseAmod && n.Rel == depparse.Amod:
			noun := n.Head
			if ent, ok := x.amodEntity(tree, noun, mentions); ok {
				dst = x.emitWithConjuncts(dst, base, tree, i, noun, ent, AdjectivalModifier)
			}
		}
	}
	return dst
}

// appendDedup appends s unless an equal claim (entity, property, polarity)
// was already appended by the current sentence (dst[base:]). Sentences
// yield a handful of statements at most, so a linear scan beats a map.
func appendDedup(dst []Statement, base int, s Statement) []Statement {
	for _, prev := range dst[base:] {
		if prev.Entity == s.Entity && prev.Polarity == s.Polarity && prev.Property == s.Property {
			return dst
		}
	}
	return append(dst, s)
}

// isAcompHead reports whether node i heads an adjectival-complement
// pattern: an adjective with a copula child satisfying the version's verb
// restriction and a subject.
func (x *Extractor) isAcompHead(tree *depparse.Tree, i int) bool {
	cop := tree.FirstChildWith(i, depparse.Cop)
	if cop < 0 {
		return false
	}
	if !x.verbOK(tree.Nodes[cop].Lower()) {
		return false
	}
	return tree.HasChildWith(i, depparse.Nsubj)
}

func (x *Extractor) verbOK(verb string) bool {
	if x.cfg.ToBeOnly {
		return x.lex.IsToBe(verb)
	}
	return x.lex.IsCopula(verb)
}

// subjectEntity resolves the entity of the nsubj child of node i.
func (x *Extractor) subjectEntity(tree *depparse.Tree, i int, mentions []tagger.Mention) (kb.EntityID, bool) {
	s := tree.FirstChildWith(i, depparse.Nsubj)
	if s < 0 {
		return 0, false
	}
	return entityAt(mentions, s)
}

// amodEntity resolves the entity an adjectival-modifier statement is
// about, given the modified noun. Two sub-cases:
//
//  1. Predicate nominal ("Snakes are dangerous animals"): the noun has a
//     copula and a subject; the statement is about the subject entity.
//     This is the coreferential configuration the checks require.
//  2. Direct modification ("the cute cat", "southern France"): the noun
//     itself is an entity mention. Only extracted when checks are off
//     (versions 1-2); the paper's coreference filter drops it otherwise.
func (x *Extractor) amodEntity(tree *depparse.Tree, noun int, mentions []tagger.Mention) (kb.EntityID, bool) {
	cop := tree.FirstChildWith(noun, depparse.Cop)
	if cop >= 0 && tree.HasChildWith(noun, depparse.Nsubj) {
		if !x.verbOK(tree.Nodes[cop].Lower()) {
			return 0, false
		}
		if x.cfg.Checks && (x.hasConstriction(tree, noun, noun) || x.subjectRestricted(tree, noun)) {
			return 0, false
		}
		return x.subjectEntity(tree, noun, mentions)
	}
	// Appositive rename ("San Francisco, a beautiful city, ..."): the
	// modified noun is coreferential with the entity it renames — the
	// other configuration the Section-4 coreference test accepts.
	if tree.Nodes[noun].Rel == depparse.Appos {
		if x.cfg.Checks && x.hasConstriction(tree, noun, noun) {
			return 0, false
		}
		return entityAt(mentions, tree.Nodes[noun].Head)
	}
	if x.cfg.Checks {
		return 0, false // non-coreferential amod: filtered (Section 4)
	}
	return entityAt(mentions, noun)
}

// emitWithConjuncts appends the statement for adjective adj plus one
// statement per conjoined adjective (Figure 4(c)); top is the pattern's
// top-level node, used by the constriction filter.
func (x *Extractor) emitWithConjuncts(dst []Statement, base int, tree *depparse.Tree, adj, top int, ent kb.EntityID, pat Pattern) []Statement {
	if x.cfg.Checks && x.hasConstriction(tree, adj, top) {
		return dst
	}
	dst = appendDedup(dst, base, Statement{
		Entity:   ent,
		Property: x.buildProperty(tree, adj),
		Polarity: x.pathPolarity(tree, adj),
		Pattern:  pat,
	})
	for _, c := range tree.Children(adj) {
		if tree.Nodes[c].Rel != depparse.Conj || tree.Nodes[c].Tag != lexicon.Adj {
			continue
		}
		if x.cfg.Checks && x.hasConstriction(tree, c, top) {
			continue
		}
		dst = appendDedup(dst, base, Statement{
			Entity:   ent,
			Property: x.buildProperty(tree, c),
			Polarity: x.pathPolarity(tree, c),
			Pattern:  Conjunction,
		})
	}
	return dst
}

// subjectRestricted reports whether the subject of the pattern at node i
// carries an adjectival modifier — "Southern France is warm" makes a claim
// about a part of the entity, not the entity itself, and is filtered by
// the coreference test of Section 4.
func (x *Extractor) subjectRestricted(tree *depparse.Tree, i int) bool {
	s := tree.FirstChildWith(i, depparse.Nsubj)
	if s < 0 {
		return false
	}
	return tree.HasChildWith(s, depparse.Amod)
}

// hasConstriction implements the non-intrinsic filter: a prepositional
// subtree attached to the adjective or to the pattern's top-level node,
// positioned after it, restricts the statement to an aspect ("bad for
// parking") and disqualifies it.
func (x *Extractor) hasConstriction(tree *depparse.Tree, adj, top int) bool {
	if prepAfter(tree, adj) {
		return true
	}
	return top != adj && prepAfter(tree, top)
}

// prepAfter reports whether node has a prepositional child positioned after
// it in the sentence.
func prepAfter(tree *depparse.Tree, node int) bool {
	for _, c := range tree.Children(node) {
		if c > node && tree.Nodes[c].Rel == depparse.Prep {
			return true
		}
	}
	return false
}

// buildProperty normalises the property phrase: the maximal chain of
// degree-adverb advmod children immediately preceding the adjective,
// followed by the adjective, all lower-cased.
func (x *Extractor) buildProperty(tree *depparse.Tree, adj int) string {
	// Children are in token order; walk backwards to find the contiguous
	// degree-adverb chain ending immediately before the adjective. Because
	// the chain is contiguous, the accepted adverbs are exactly the tokens
	// at positions want+1 .. adj-1.
	want := adj - 1
	children := tree.Children(adj)
	for k := len(children) - 1; k >= 0; k-- {
		c := children[k]
		if c == want && tree.Nodes[c].Rel == depparse.Advmod && degreeAdverbs[tree.Nodes[c].Lower()] {
			want = c - 1
		}
	}
	if want == adj-1 {
		// No adverbs: the property is the bare adjective — no building.
		return tree.Nodes[adj].Lower()
	}
	var b strings.Builder
	for a := want + 1; a <= adj; a++ {
		if a > want+1 {
			b.WriteByte(' ')
		}
		b.WriteString(tree.Nodes[a].Lower())
	}
	return b.String()
}

// pathPolarity implements Figure 5: starting at +1, flip the sign at every
// negated token on the path from the property token to the root. A cycle
// (a parser bug) yields Positive, matching PathToRoot's nil return.
func (x *Extractor) pathPolarity(tree *depparse.Tree, adj int) Polarity {
	pol := Positive
	steps := 0
	for n := adj; n >= 0; n = tree.Nodes[n].Head {
		if steps > len(tree.Nodes) {
			return Positive
		}
		steps++
		if tree.IsNegated(n) {
			pol = -pol
		}
	}
	return pol
}

// entityAt returns the entity of the mention whose head is token i, or
// that covers token i.
func entityAt(mentions []tagger.Mention, i int) (kb.EntityID, bool) {
	for _, m := range mentions {
		if m.Head == i {
			return m.Entity, true
		}
	}
	for _, m := range mentions {
		if m.Covers(i) {
			return m.Entity, true
		}
	}
	return 0, false
}
