package extract

import (
	"strings"
	"testing"

	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/tagger"
)

// FuzzExtract runs the full text path (tokenize, tag, mention-tag, parse,
// extract) for every Appendix-B pattern version on arbitrary text and
// checks the structural invariants of the emitted statements: known
// entity, non-empty lower-case property ending in an adjective present in
// the sentence, polarity in {-1,+1}, a valid pattern tag, and no
// duplicate (entity, property, polarity) claims within one sentence.
func FuzzExtract(f *testing.F) {
	f.Add("Kittens are very cute animals.")
	f.Add("I don't think that snakes are never dangerous.")
	f.Add("San Francisco, a beautiful city, is big and expensive.")
	f.Add("Rome is bad for parking but spiders seem scary.")
	f.Add("the cute cat sat, kittens are not cute")
	f.Add("spiders and kittens are cute, scary and small")

	lex := lexicon.Default()
	base := kb.New()
	known := map[kb.EntityID]bool{}
	for _, e := range []kb.Entity{
		{Name: "kitten", Type: "animal", Aliases: []string{"kittens"}},
		{Name: "snake", Type: "animal", Aliases: []string{"snakes"}},
		{Name: "spider", Type: "animal", Aliases: []string{"spiders"}},
		{Name: "San Francisco", Type: "city", Proper: true},
		{Name: "Rome", Type: "city", Proper: true},
	} {
		known[base.Add(e)] = true
	}
	base.RegisterLexicon(lex)

	tg := pos.New(lex)
	mt := tagger.New(base, lex)
	parser := depparse.New(lex)
	extractors := []*Extractor{
		NewVersion(lex, V1), NewVersion(lex, V2),
		NewVersion(lex, V3), NewVersion(lex, V4),
	}

	f.Fuzz(func(t *testing.T, text string) {
		for _, sent := range token.SplitSentences(text) {
			tagged := tg.Tag(sent)
			mentions := mt.Tag(tagged)
			tree := parser.Parse(tagged)
			adjs := map[string]bool{}
			for _, n := range tree.Nodes {
				if n.Tag == lexicon.Adj {
					adjs[n.Lower()] = true
				}
			}
			for _, x := range extractors {
				seen := map[Statement]bool{}
				for _, st := range x.Extract(tree, mentions) {
					if !known[st.Entity] {
						t.Fatalf("statement about unknown entity %d (%q)", st.Entity, sent.Text())
					}
					if st.Property == "" || st.Property != strings.ToLower(st.Property) {
						t.Fatalf("property %q not normalised (%q)", st.Property, sent.Text())
					}
					words := strings.Fields(st.Property)
					if !adjs[words[len(words)-1]] {
						t.Fatalf("property %q does not end in an adjective of the sentence (%q)",
							st.Property, sent.Text())
					}
					for _, w := range words[:len(words)-1] {
						if !degreeAdverbs[w] {
							t.Fatalf("property %q contains non-degree modifier %q", st.Property, w)
						}
					}
					if st.Polarity != Positive && st.Polarity != Negative {
						t.Fatalf("polarity %d out of range (%q)", st.Polarity, sent.Text())
					}
					if st.Pattern.String() == "unknown" {
						t.Fatalf("unknown pattern %d (%q)", st.Pattern, sent.Text())
					}
					k := st
					k.Pattern = 0 // dedup ignores the producing pattern
					if seen[k] {
						t.Fatalf("duplicate claim %+v in one sentence (%q)", st, sent.Text())
					}
					seen[k] = true
				}
			}
		}
	})
}
