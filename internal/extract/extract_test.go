package extract

import (
	"testing"

	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/tagger"
)

// rig bundles the full front-end: KB, lexicon, POS tagger, parser,
// entity tagger.
type rig struct {
	kb  *kb.KB
	lex *lexicon.Lexicon
	pt  *pos.Tagger
	dp  *depparse.Parser
	et  *tagger.Tagger
}

func newRig() *rig {
	base := kb.New()
	base.Add(kb.Entity{Name: "snake", Type: "animal"})
	base.Add(kb.Entity{Name: "kitten", Type: "animal"})
	base.Add(kb.Entity{Name: "soccer", Type: "sport"})
	base.Add(kb.Entity{Name: "Chicago", Type: "city", Proper: true})
	base.Add(kb.Entity{Name: "New York", Type: "city", Proper: true})
	base.Add(kb.Entity{Name: "San Francisco", Type: "city", Proper: true})
	base.Add(kb.Entity{Name: "Palo Alto", Type: "city", Proper: true})
	base.Add(kb.Entity{Name: "France", Type: "country", Proper: true})
	base.Add(kb.Entity{Name: "Greece", Type: "country", Proper: true})
	base.Add(kb.Entity{Name: "tiger", Type: "animal"})
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	return &rig{
		kb:  base,
		lex: lex,
		pt:  pos.New(lex),
		dp:  depparse.New(lex),
		et:  tagger.New(base, lex),
	}
}

func (r *rig) entity(t *testing.T, name string) kb.EntityID {
	t.Helper()
	cands := r.kb.Candidates(name)
	if len(cands) != 1 {
		t.Fatalf("entity %q: candidates %v", name, cands)
	}
	return cands[0]
}

func (r *rig) extract(t *testing.T, text string, v Version) []Statement {
	t.Helper()
	sents := token.SplitSentences(text)
	if len(sents) != 1 {
		t.Fatalf("want one sentence for %q", text)
	}
	tagged := r.pt.Tag(sents[0])
	tree := r.dp.Parse(tagged)
	mentions := r.et.Tag(tagged)
	return NewVersion(r.lex, v).Extract(tree, mentions)
}

func one(t *testing.T, stmts []Statement) Statement {
	t.Helper()
	if len(stmts) != 1 {
		t.Fatalf("want exactly one statement, got %v", stmts)
	}
	return stmts[0]
}

func TestTable1AdjectivalModifier(t *testing.T) {
	// "Snakes are dangerous animals" -> (snake, dangerous, +) via amod.
	r := newRig()
	s := one(t, r.extract(t, "Snakes are dangerous animals.", V4))
	if s.Entity != r.entity(t, "snake") || s.Property != "dangerous" ||
		s.Polarity != Positive || s.Pattern != AdjectivalModifier {
		t.Fatalf("got %+v", s)
	}
}

func TestTable1AdjectivalComplement(t *testing.T) {
	// "Chicago is very big" -> (Chicago, very big, +) via acomp.
	r := newRig()
	s := one(t, r.extract(t, "Chicago is very big.", V4))
	if s.Entity != r.entity(t, "chicago") || s.Property != "very big" ||
		s.Polarity != Positive || s.Pattern != AdjectivalComplement {
		t.Fatalf("got %+v", s)
	}
}

func TestTable1Conjunction(t *testing.T) {
	// "Soccer is a fast and exciting sport" -> fast (amod) + exciting (conj).
	r := newRig()
	stmts := r.extract(t, "Soccer is a fast and exciting sport.", V4)
	if len(stmts) != 2 {
		t.Fatalf("want 2 statements, got %v", stmts)
	}
	byProp := map[string]Statement{}
	for _, s := range stmts {
		byProp[s.Property] = s
	}
	if s := byProp["fast"]; s.Pattern != AdjectivalModifier || s.Polarity != Positive {
		t.Fatalf("fast: %+v", s)
	}
	if s := byProp["exciting"]; s.Pattern != Conjunction || s.Polarity != Positive {
		t.Fatalf("exciting: %+v", s)
	}
}

func TestSimpleNegation(t *testing.T) {
	r := newRig()
	s := one(t, r.extract(t, "Palo Alto is not big.", V4))
	if s.Polarity != Negative || s.Property != "big" {
		t.Fatalf("got %+v", s)
	}
}

func TestNegatedPredicateNominal(t *testing.T) {
	r := newRig()
	s := one(t, r.extract(t, "San Francisco is not a big city.", V4))
	if s.Entity != r.entity(t, "san francisco") || s.Polarity != Negative ||
		s.Property != "big" || s.Pattern != AdjectivalModifier {
		t.Fatalf("got %+v", s)
	}
}

func TestFigure5DoubleNegation(t *testing.T) {
	// "I don't think that snakes are never dangerous" -> positive.
	r := newRig()
	s := one(t, r.extract(t, "I don't think that snakes are never dangerous.", V4))
	if s.Polarity != Positive || s.Property != "dangerous" ||
		s.Entity != r.entity(t, "snake") {
		t.Fatalf("got %+v", s)
	}
}

func TestSingleEmbeddedNegation(t *testing.T) {
	// "I don't think that Chicago is big" -> negative.
	r := newRig()
	s := one(t, r.extract(t, "I don't think that Chicago is big.", V4))
	if s.Polarity != Negative {
		t.Fatalf("got %+v", s)
	}
}

func TestEmbeddedPositive(t *testing.T) {
	r := newRig()
	s := one(t, r.extract(t, "I think that Chicago is big.", V4))
	if s.Polarity != Positive {
		t.Fatalf("got %+v", s)
	}
}

func TestNonIntrinsicFilteredUnderChecks(t *testing.T) {
	// "New York is bad for parking" — PP constriction (Section 4).
	r := newRig()
	if stmts := r.extract(t, "New York is bad for parking.", V4); len(stmts) != 0 {
		t.Fatalf("non-intrinsic statement extracted under checks: %v", stmts)
	}
	// Without checks (V2) the statement comes through.
	if stmts := r.extract(t, "New York is bad for parking.", V2); len(stmts) != 1 {
		t.Fatalf("V2 should extract it: %v", stmts)
	}
}

func TestNonCoreferentialAmodFiltered(t *testing.T) {
	// "Southern France is warm": the subject is restricted by an
	// adjectival modifier — the sentence claims something about a part of
	// the entity, so the checks drop the whole pattern (the paper calls
	// its filter "rather conservative at times").
	r := newRig()
	if stmts := r.extract(t, "Southern France is warm.", V4); len(stmts) != 0 {
		t.Fatalf("got %v", stmts)
	}
	// An unrestricted subject still extracts.
	if stmts := r.extract(t, "France is warm.", V4); len(stmts) != 1 {
		t.Fatalf("unrestricted subject: %v", stmts)
	}
	// V2 extracts both (no coreference filter).
	stmts := r.extract(t, "Southern France is warm.", V2)
	props := map[string]bool{}
	for _, s := range stmts {
		props[s.Property] = true
	}
	if !props["southern"] || !props["warm"] {
		t.Fatalf("V2 got %v", stmts)
	}
}

func TestCoreferentialAmodKept(t *testing.T) {
	// "Greece is a southern country": predicate nominal — kept even under
	// checks, and it is about Greece.
	r := newRig()
	s := one(t, r.extract(t, "Greece is a southern country.", V4))
	if s.Entity != r.entity(t, "greece") || s.Property != "southern" {
		t.Fatalf("got %+v", s)
	}
}

func TestBroadCopulaOnlyWithoutToBeRestriction(t *testing.T) {
	r := newRig()
	// "seems" is in the broad copula class: V2 extracts, V4 does not.
	if stmts := r.extract(t, "Tigers seem dangerous.", V2); len(stmts) != 1 {
		t.Fatalf("V2 with seems: %v", stmts)
	}
	if stmts := r.extract(t, "Tigers seem dangerous.", V4); len(stmts) != 0 {
		t.Fatalf("V4 must not extract broad copulas: %v", stmts)
	}
}

func TestV3IsAcompOnly(t *testing.T) {
	r := newRig()
	// Predicate nominal amod is not extracted by V3.
	if stmts := r.extract(t, "Snakes are dangerous animals.", V3); len(stmts) != 0 {
		t.Fatalf("V3 extracted amod: %v", stmts)
	}
	if stmts := r.extract(t, "Snakes are dangerous.", V3); len(stmts) != 1 {
		t.Fatalf("V3 should extract acomp: %v", stmts)
	}
}

func TestV1IsAmodOnly(t *testing.T) {
	r := newRig()
	if stmts := r.extract(t, "Chicago is big.", V1); len(stmts) != 0 {
		t.Fatalf("V1 extracted acomp: %v", stmts)
	}
	if stmts := r.extract(t, "Chicago is a big city.", V1); len(stmts) != 1 {
		t.Fatalf("V1 should extract amod: %v", stmts)
	}
}

func TestDirectAmodOnEntityOnlyWithoutChecks(t *testing.T) {
	// "the cute kitten" inside a non-copular sentence.
	r := newRig()
	stmts := r.extract(t, "We saw the cute kitten.", V2)
	if len(stmts) != 1 || stmts[0].Entity != r.entity(t, "kitten") ||
		stmts[0].Property != "cute" {
		t.Fatalf("V2 direct amod: %v", stmts)
	}
	if stmts := r.extract(t, "We saw the cute kitten.", V4); len(stmts) != 0 {
		t.Fatalf("V4 must filter direct amod: %v", stmts)
	}
}

func TestNoEntityNoStatement(t *testing.T) {
	r := newRig()
	if stmts := r.extract(t, "The weather is cold.", V4); len(stmts) != 0 {
		t.Fatalf("statement without entity: %v", stmts)
	}
}

func TestNonDegreeAdverbNotInProperty(t *testing.T) {
	r := newRig()
	s := one(t, r.extract(t, "Chicago is still big.", V4))
	if s.Property != "big" {
		t.Fatalf("property = %q, want bare adjective", s.Property)
	}
}

func TestNeverCountsAsNegation(t *testing.T) {
	r := newRig()
	s := one(t, r.extract(t, "Kittens are never dangerous.", V4))
	if s.Polarity != Negative {
		t.Fatalf("got %+v", s)
	}
}

func TestIsntContraction(t *testing.T) {
	r := newRig()
	s := one(t, r.extract(t, "Chicago isn't cheap.", V4))
	if s.Polarity != Negative || s.Property != "cheap" {
		t.Fatalf("got %+v", s)
	}
}

func TestPredicateAdjectiveConjunction(t *testing.T) {
	r := newRig()
	stmts := r.extract(t, "Soccer is fast and exciting.", V4)
	if len(stmts) != 2 {
		t.Fatalf("got %v", stmts)
	}
}

func TestVersionConfigMatrix(t *testing.T) {
	cases := []struct {
		v    Version
		want Config
	}{
		{V1, Config{UseAmod: true}},
		{V2, Config{UseAmod: true, UseAcomp: true}},
		{V3, Config{UseAcomp: true, ToBeOnly: true, Checks: true}},
		{V4, Config{UseAmod: true, UseAcomp: true, ToBeOnly: true, Checks: true}},
	}
	for _, c := range cases {
		if got := VersionConfig(c.v); got != c.want {
			t.Errorf("VersionConfig(%d) = %+v, want %+v", c.v, got, c.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	if AdjectivalModifier.String() != "amod" ||
		AdjectivalComplement.String() != "acomp" ||
		Conjunction.String() != "conj" {
		t.Fatal("Pattern.String mismatch")
	}
	if Pattern(9).String() != "unknown" {
		t.Fatal("out-of-range Pattern.String")
	}
}

func TestEmptyInputs(t *testing.T) {
	r := newRig()
	x := NewVersion(r.lex, V4)
	if got := x.Extract(&depparse.Tree{}, nil); got != nil {
		t.Fatalf("Extract on empty tree = %v", got)
	}
}

func TestDegreeAdverbChain(t *testing.T) {
	r := newRig()
	s := one(t, r.extract(t, "Chicago is really very big.", V4))
	if s.Property != "really very big" {
		t.Fatalf("property = %q, want chained adverbs", s.Property)
	}
}

func TestDenselyPopulated(t *testing.T) {
	// The paper's own multi-word property example.
	r := newRig()
	s := one(t, r.extract(t, "Chicago is densely populated.", V4))
	if s.Property != "densely populated" {
		t.Fatalf("property = %q", s.Property)
	}
}

func TestMentionCoverPreference(t *testing.T) {
	// When the subject is a multi-token mention, the statement must be
	// attributed to that entity via the head token.
	r := newRig()
	s := one(t, r.extract(t, "New York is hectic.", V4))
	if r.kb.Get(s.Entity).Name != "New York" {
		t.Fatalf("entity = %q", r.kb.Get(s.Entity).Name)
	}
}

func TestTwoEntitiesTwoStatements(t *testing.T) {
	r := newRig()
	stmts := r.extract(t, "Chicago is big.", V4)
	stmts = append(stmts, r.extract(t, "Palo Alto is not big.", V4)...)
	if len(stmts) != 2 {
		t.Fatalf("statements = %v", stmts)
	}
	if stmts[0].Entity == stmts[1].Entity {
		t.Fatal("entities should differ")
	}
	if stmts[0].Polarity == stmts[1].Polarity {
		t.Fatal("polarities should differ")
	}
}

func TestDedupWithinSentence(t *testing.T) {
	// The same (entity, property, polarity) must not double-count from one
	// sentence even if reachable via multiple patterns.
	r := newRig()
	stmts := r.extract(t, "Soccer is a fast and fast sport.", V4)
	count := 0
	for _, s := range stmts {
		if s.Property == "fast" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("duplicate statements: %v", stmts)
	}
}

func TestNegatedConjunct(t *testing.T) {
	// "not fast and exciting": the negation attaches to the first
	// conjunct's head; both conjuncts sit under it on the path so both
	// come out negative — conservative but consistent.
	r := newRig()
	stmts := r.extract(t, "Soccer is not fast.", V4)
	if len(stmts) != 1 || stmts[0].Polarity != Negative {
		t.Fatalf("got %v", stmts)
	}
}

func TestAppositiveCoreference(t *testing.T) {
	// "San Francisco, a beautiful city, is expensive." — the appositive
	// renames the entity, so both the amod inside it and the main
	// predicate are statements about San Francisco.
	r := newRig()
	stmts := r.extract(t, "San Francisco, a beautiful city, is expensive.", V4)
	byProp := map[string]Statement{}
	for _, s := range stmts {
		byProp[s.Property] = s
	}
	sf := r.entity(t, "san francisco")
	if s, ok := byProp["beautiful"]; !ok || s.Entity != sf || s.Polarity != Positive {
		t.Fatalf("appositive amod: %v", stmts)
	}
	if s, ok := byProp["expensive"]; !ok || s.Entity != sf {
		t.Fatalf("main predicate: %v", stmts)
	}
}

func TestAppositiveRequiresDeterminer(t *testing.T) {
	// "In my opinion, Chicago is big." must NOT treat Chicago as an
	// appositive of "opinion" — the statement stays about Chicago.
	r := newRig()
	s := one(t, r.extract(t, "In my opinion, Chicago is big.", V4))
	if s.Entity != r.entity(t, "chicago") || s.Property != "big" {
		t.Fatalf("got %+v", s)
	}
}
