package extract

import (
	"reflect"
	"testing"

	"repro/internal/nlp/token"
)

// TestExtractIntoMatchesExtract reuses one statement buffer across a batch
// of sentences and versions, checking the appended statements against the
// allocating Extract each time.
func TestExtractIntoMatchesExtract(t *testing.T) {
	r := newRig()
	texts := []string{
		"Snakes are dangerous.",
		"Chicago is very big and beautiful.",
		"Snakes are not cute animals.",
		"The kitten is cute and the tiger is dangerous.",
		"Nothing about entities here.",
	}
	for _, v := range []Version{V1, V2, V3, V4} {
		x := NewVersion(r.lex, v)
		var buf []Statement
		for _, text := range texts {
			for _, sent := range token.SplitSentences(text) {
				tagged := r.pt.Tag(sent)
				mentions := r.et.Tag(tagged)
				tree := r.dp.Parse(tagged)
				want := x.Extract(tree, mentions)
				buf = x.ExtractInto(buf[:0], tree, mentions)
				if len(want) == 0 && len(buf) == 0 {
					continue
				}
				if !reflect.DeepEqual(buf, want) {
					t.Fatalf("v%d %q: ExtractInto = %+v, want %+v", v, text, buf, want)
				}
			}
		}
	}
}

// TestExtractIntoDedupScope pins that deduplication only covers the
// current call: the same claim appended by an earlier sentence in the
// buffer must not suppress a later sentence's statement.
func TestExtractIntoDedupScope(t *testing.T) {
	r := newRig()
	x := NewVersion(r.lex, V4)
	sent := token.SplitSentences("Snakes are dangerous.")[0]
	tagged := r.pt.Tag(sent)
	mentions := r.et.Tag(tagged)
	tree := r.dp.Parse(tagged)

	first := x.ExtractInto(nil, tree, mentions)
	if len(first) != 1 {
		t.Fatalf("fixture yields %d statements, want 1", len(first))
	}
	both := x.ExtractInto(first, tree, mentions)
	if len(both) != 2 {
		t.Fatalf("second sentence suppressed: %d statements, want 2", len(both))
	}
	if !reflect.DeepEqual(both[0], both[1]) {
		t.Fatalf("statements diverge: %+v", both)
	}
}
