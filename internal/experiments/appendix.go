package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/extract"
	"repro/internal/kb"
)

// Table4Row is one extraction-pattern version of Appendix B.
type Table4Row struct {
	Version    extract.Version
	Modifiers  string
	Verbs      string
	Checks     bool
	Statements int64
	// SurveyorF1 quantifies the "extraction quality" the paper assessed by
	// inspection: the downstream F1 of the full system when fed this
	// version's extractions.
	SurveyorF1 float64
	// ExtractionMillis is the extraction phase wall time.
	ExtractionMillis int64
}

// Table4 re-runs extraction and the full evaluation under all four
// historical pattern versions (Appendix B). Expected shape: v2 > v1 > v4
// > v3 in statement volume; v4 the best downstream quality.
func Table4(w *World, rho int64) []Table4Row {
	meta := []struct {
		v         extract.Version
		modifiers string
		verbs     string
		checks    bool
	}{
		{extract.V1, "amod", "copula", false},
		{extract.V2, "amod+acomp", "copula", false},
		{extract.V3, "acomp", "to be", true},
		{extract.V4, "amod+acomp", "to be", true},
	}
	var rows []Table4Row
	for _, m := range meta {
		res := w.RunVersion(m.v, rho)
		cases := w.EvalCasesFor(res)
		rows = append(rows, Table4Row{
			Version:          m.v,
			Modifiers:        m.modifiers,
			Verbs:            m.verbs,
			Checks:           m.checks,
			Statements:       res.TotalStatements,
			SurveyorF1:       eval.Score(cases, "Surveyor").F1,
			ExtractionMillis: res.Timings.Extraction.Milliseconds(),
		})
	}
	return rows
}

// FormatTable4 renders the version comparison.
func FormatTable4(rows []Table4Row) string {
	paper := map[extract.Version]int64{
		extract.V1: 1321194344, extract.V2: 1779253966,
		extract.V3: 98574972, extract.V4: 922299774,
	}
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "vers\tmodifiers\tverbs\tcheck\tstatements\tF1\ttime(ms)\t(paper stmts)")
	for _, r := range rows {
		check := "no"
		if r.Checks {
			check = "yes"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%.2f\t%d\t(%d)\n",
			r.Version, r.Modifiers, r.Verbs, check,
			r.Statements, r.SurveyorF1, r.ExtractionMillis, paper[r.Version])
	}
	tw.Flush()
	return b.String()
}

// Table5Result is the random-sample comparison of Appendix D.
type Table5Result struct {
	Combos   int
	Cases    int
	Rows     []MethodMetrics
	PaperRow []MethodMetrics
}

// Table5Config sizes the random-sample experiment. The paper sampled 803
// combinations with 7 entities each (5500+ cases).
type Table5Config struct {
	Seed            uint64
	Combos          int // number of random (type, property) combinations
	EntitiesPerType int
	CasesPerCombo   int
	Scale           float64
	Rho             int64
}

func (c Table5Config) withDefaults() Table5Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Combos == 0 {
		c.Combos = 803
	}
	if c.EntitiesPerType == 0 {
		c.EntitiesPerType = 40
	}
	if c.CasesPerCombo == 0 {
		c.CasesPerCombo = 7
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Rho == 0 {
		c.Rho = 40
	}
	return c
}

// Table5 builds the long-tail random world and compares all four methods.
// Expected shape: baseline coverage collapses (most sampled entities are
// never mentioned) while Surveyor stays ≈ 1 with comparable precision.
func Table5(cfg Table5Config) Table5Result {
	cfg = cfg.withDefaults()
	builder := kb.NewBuilder(cfg.Seed)
	types := builder.RandomDomains(cfg.Combos, cfg.EntitiesPerType)
	base := builder.KB()
	specs := corpus.RandomSpecs(types, propertyPool, cfg.Seed)

	w := BuildWorld(WorldConfig{
		Seed: cfg.Seed, Scale: cfg.Scale, Rho: cfg.Rho,
		EntitiesPerCombo: cfg.CasesPerCombo,
		UniformCases:     true, // Appendix D samples entities randomly
	}, base, specs)

	cases := w.EvalCases()
	res := Table5Result{Combos: cfg.Combos, Cases: len(cases), PaperRow: paperTable5}
	for _, m := range MethodNames {
		res.Rows = append(res.Rows, MethodMetrics{Method: m, Metrics: eval.Score(cases, m)})
	}
	return res
}

var paperTable5 = []MethodMetrics{
	{Method: "Majority Vote", Metrics: eval.Metrics{Coverage: 0.0766, Precision: 0.333, F1: 0.125}},
	{Method: "Scaled Majority Vote", Metrics: eval.Metrics{Coverage: 0.0773, Precision: 0.417, F1: 0.130}},
	{Method: "WebChild", Metrics: eval.Metrics{Coverage: 0.173, Precision: 0.615, F1: 0.270}},
	{Method: "Surveyor", Metrics: eval.Metrics{Coverage: 0.999, Precision: 0.784, F1: 0.879}},
}

// Format renders the random-sample comparison.
func (r Table5Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d random combos, %d test cases\n", r.Combos, r.Cases)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Approach\tCoverage\tPrecision\tF1\t(paper: cov/prec/F1)")
	for i, row := range r.Rows {
		p := r.PaperRow[i]
		fmt.Fprintf(tw, "%s\t%.4f\t%.3f\t%.3f\t(%.4f/%.3f/%.3f)\n",
			row.Method, row.Coverage, row.Precision, row.F1,
			p.Coverage, p.Precision, p.F1)
	}
	tw.Flush()
	return b.String()
}

// propertyPool is the deterministic pool of subjective adjectives the
// random (type, property) combinations draw from.
var propertyPool = []string{"big", "rare", "popular", "dangerous", "cheap",
	"boring", "exciting", "vital", "solid", "pretty", "cute", "fast",
	"quiet", "young", "friendly", "crazy", "cool", "deadly",
	"addictive", "hectic"}
