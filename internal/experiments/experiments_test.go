package experiments

import (
	"strings"
	"testing"

	"repro/internal/extract"
)

// testWorld is shared across tests in this package (building it runs the
// full pipeline; ~1s at scale 0.5).
var testWorldCache *World

func testWorld(t *testing.T) *World {
	t.Helper()
	if testWorldCache == nil {
		testWorldCache = BuildEvalWorld(WorldConfig{Seed: 1, Scale: 0.5})
	}
	return testWorldCache
}

func metricsOf(t *testing.T, rows []MethodMetrics, method string) MethodMetrics {
	t.Helper()
	for _, r := range rows {
		if r.Method == method {
			return r
		}
	}
	t.Fatalf("method %q missing from %v", method, rows)
	return MethodMetrics{}
}

// TestTable3Shape verifies the headline result: Surveyor beats every
// baseline on coverage, precision, and F1, with roughly the paper's
// relative ordering.
func TestTable3Shape(t *testing.T) {
	res := Table3(testWorld(t))
	mv := metricsOf(t, res.Rows, "Majority Vote")
	smv := metricsOf(t, res.Rows, "Scaled Majority Vote")
	wc := metricsOf(t, res.Rows, "WebChild")
	sv := metricsOf(t, res.Rows, "Surveyor")

	if sv.Coverage < 0.95 {
		t.Errorf("Surveyor coverage = %.3f, want ≈ 0.97", sv.Coverage)
	}
	if sv.Coverage < mv.Coverage*1.5 {
		t.Errorf("Surveyor coverage (%.3f) should be ~2× MV (%.3f)", sv.Coverage, mv.Coverage)
	}
	if mv.Coverage > 0.7 {
		t.Errorf("MV coverage = %.3f — about half the pairs should be silent/tied (paper: 0.48)", mv.Coverage)
	}
	if sv.Precision <= wc.Precision || sv.Precision <= smv.Precision || sv.Precision <= mv.Precision {
		t.Errorf("Surveyor precision (%.2f) must beat all baselines (MV %.2f, SMV %.2f, WC %.2f)",
			sv.Precision, mv.Precision, smv.Precision, wc.Precision)
	}
	if sv.Precision < 0.7 {
		t.Errorf("Surveyor precision = %.2f, want ≥ 0.7 (paper: 0.77)", sv.Precision)
	}
	if !(sv.F1 > wc.F1 && wc.F1 > smv.F1 && smv.F1 >= mv.F1) {
		t.Errorf("F1 ordering broken: SURV %.2f, WC %.2f, SMV %.2f, MV %.2f",
			sv.F1, wc.F1, smv.F1, mv.F1)
	}
	// The polarity bias must visibly hurt majority voting. Our synthetic
	// statements carry clean polarity, so MV does not fall all the way to
	// the paper's 0.29, but it must trail Surveyor clearly.
	if mv.Precision > sv.Precision-0.04 {
		t.Errorf("MV precision (%.2f) too close to Surveyor's (%.2f)", mv.Precision, sv.Precision)
	}
	if out := res.Format(); !strings.Contains(out, "Surveyor") {
		t.Error("Format output incomplete")
	}
}

func TestFig11Shape(t *testing.T) {
	r := Fig11(testWorld(t))
	if r.Mean < 15 || r.Mean > 19.5 {
		t.Errorf("mean agreement = %.1f, want ≈ 17", r.Mean)
	}
	if r.Perfect < 50 {
		t.Errorf("perfect-agreement cases = %d, want a large block (paper ≈ 180)", r.Perfect)
	}
	if r.Ties > 50 {
		t.Errorf("ties = %d, want ≈ 4%% of 500", r.Ties)
	}
	for i := 1; i < len(r.Cases); i++ {
		if r.Cases[i] > r.Cases[i-1] {
			t.Fatalf("threshold curve must be non-increasing: %v", r.Cases)
		}
	}
	if !strings.Contains(r.Format(), "agreement") {
		t.Error("Format output incomplete")
	}
}

// TestFig12Shape verifies that Surveyor precision rises with worker
// agreement while coverage stays near 1, and that it dominates baselines
// at every threshold.
func TestFig12Shape(t *testing.T) {
	r := Fig12(testWorld(t))
	if len(r.Points) < 5 {
		t.Fatalf("sweep points = %d", len(r.Points))
	}
	first := r.Points[0].ByMethod["Surveyor"]
	last := r.Points[len(r.Points)-1].ByMethod["Surveyor"]
	if last.Precision < first.Precision {
		t.Errorf("Surveyor precision should rise with agreement: %.2f -> %.2f",
			first.Precision, last.Precision)
	}
	if last.Precision < 0.8 {
		t.Errorf("Surveyor precision at perfect agreement = %.2f (paper: 0.87 at 19+)", last.Precision)
	}
	for _, pt := range r.Points {
		sv := pt.ByMethod["Surveyor"]
		mv := pt.ByMethod["Majority Vote"]
		if sv.Precision <= mv.Precision {
			t.Errorf("at threshold %d Surveyor (%.2f) should beat MV (%.2f)",
				pt.MinAgreement, sv.Precision, mv.Precision)
		}
		if sv.Coverage < 0.9 {
			t.Errorf("Surveyor coverage at threshold %d = %.2f", pt.MinAgreement, sv.Coverage)
		}
	}
	if !strings.Contains(r.Format(), "minAgree") {
		t.Error("Format output incomplete")
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(testWorld(t), 30)
	// Figure 9(a): skew — most entities get few statements, the top ones
	// get many.
	n := len(r.Percentiles)
	median := r.StatementsPerEntity[6] // p50
	top := r.StatementsPerEntity[n-1]  // p100
	if top < median*3 {
		t.Errorf("statements/entity should be skewed: p50=%.1f p100=%.1f", median, top)
	}
	// Percentile curves are non-decreasing.
	for i := 1; i < n; i++ {
		if r.StatementsPerEntity[i] < r.StatementsPerEntity[i-1] ||
			r.StatementsPerCombo[i] < r.StatementsPerCombo[i-1] ||
			r.PropertiesPerType[i] < r.PropertiesPerType[i-1] {
			t.Fatal("percentile curves must be non-decreasing")
		}
	}
	if !strings.Contains(r.Format(), "percentile") {
		t.Error("Format output incomplete")
	}
}

func TestScaleStats(t *testing.T) {
	s := Scale(testWorld(t))
	if s.Statements == 0 || s.CombosModelled == 0 || s.OpinionsProduced == 0 {
		t.Fatalf("scale stats empty: %+v", s)
	}
	if s.CombosBeforeFilter < s.CombosModelled {
		t.Fatalf("filter increased combos: %+v", s)
	}
	if !strings.Contains(s.Format(), "opinions produced") {
		t.Error("Format output incomplete")
	}
}

// TestFig3Shape verifies the Section-2 study: the model's polarity
// correlates with population far better than majority vote, and decides
// every city including zero-evidence ones.
func TestFig3Shape(t *testing.T) {
	r := Fig3(WorldConfig{Seed: 1, Scale: 0.5, Rho: 20})
	if len(r.Rows) != 461 {
		t.Fatalf("rows = %d, want 461", len(r.Rows))
	}
	if r.ModelCorrelation < 0.6 {
		t.Errorf("model correlation = %.2f, want strong", r.ModelCorrelation)
	}
	if r.ModelCorrelation <= r.MVCorrelation {
		t.Errorf("model correlation (%.2f) must beat MV (%.2f)",
			r.ModelCorrelation, r.MVCorrelation)
	}
	if r.ModelDecided < 0.99 {
		t.Errorf("model decided %.2f of cities, want ≈ 1", r.ModelDecided)
	}
	if r.MVDecided > 0.9 {
		t.Errorf("MV decided %.2f — zero-evidence cities should be undecidable", r.MVDecided)
	}
	if r.ZeroEvidence == 0 {
		t.Error("expected zero-evidence cities in the 461 sample")
	}
	if !strings.Contains(r.Format(), "correlation") {
		t.Error("Format output incomplete")
	}
}

func TestFig13Shape(t *testing.T) {
	results := Fig13(WorldConfig{Seed: 1, Scale: 0.5, Rho: 15})
	if len(results) != 3 {
		t.Fatalf("studies = %d, want 3", len(results))
	}
	for _, r := range results {
		// The model decides every entity and tracks the latent opinion far
		// better than majority vote, which leaves the long tail undecided.
		if r.ModelAccuracy < r.MVAccuracy+0.15 {
			t.Errorf("%s/%s: model accuracy (%.2f) must clearly beat MV (%.2f)",
				r.Property, r.Type, r.ModelAccuracy, r.MVAccuracy)
		}
		if r.ModelCorrelation < r.MVCorrelation-0.05 {
			t.Errorf("%s/%s: model correlation (%.2f) far below MV (%.2f)",
				r.Property, r.Type, r.ModelCorrelation, r.MVCorrelation)
		}
		if r.ModelDecided < 0.95 {
			t.Errorf("%s/%s: model decided only %.2f", r.Property, r.Type, r.ModelDecided)
		}
		if r.ZeroEvidence == 0 {
			t.Errorf("%s/%s: expected unmentioned entities in the long tail", r.Property, r.Type)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows := Fig10(1)
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20 Figure-10 animals", len(rows))
	}
	// Simulated votes should track the paper's votes closely.
	agreeDir, close := 0, 0
	for _, r := range rows {
		paperPos := r.PaperVotes >= 10
		simPos := r.SimVotes >= 10
		if paperPos == simPos {
			agreeDir++
		}
		diff := r.PaperVotes - r.SimVotes
		if diff < 0 {
			diff = -diff
		}
		if diff <= 5 {
			close++
		}
	}
	if agreeDir < 16 {
		t.Errorf("direction agreement %d/20", agreeDir)
	}
	if close < 14 {
		t.Errorf("only %d/20 within ±5 votes", close)
	}
	if !strings.Contains(FormatFig10(rows), "kitten") {
		t.Error("Format output incomplete")
	}
}

func TestFig6Shape(t *testing.T) {
	r := Fig6()
	if r.Example1Posterior <= 0.5 {
		t.Fatalf("Pr(D=+|60,3) = %v, the paper's X must be positive", r.Example1Posterior)
	}
	// The positive-dominant grid peaks near C+ = 90; the negative one
	// near C+ = 10.
	peakPos, peakNeg := 0, 0
	for i := range r.PosGrid {
		if r.PosGrid[i][0] > r.PosGrid[peakPos][0] {
			peakPos = i
		}
		if r.NegGrid[i][0] > r.NegGrid[peakNeg][0] {
			peakNeg = i
		}
	}
	if got := peakPos * r.Step; got < 70 || got > 110 {
		t.Errorf("positive grid peaks at C+=%d, want ≈ 90", got)
	}
	if got := peakNeg * r.Step; got > 20 {
		t.Errorf("negative grid peaks at C+=%d, want ≈ 10", got)
	}
	if !strings.Contains(r.Format(), "λ") {
		t.Error("Format output incomplete")
	}
}

func TestTable1Examples(t *testing.T) {
	rows := Table1()
	want := map[string]string{ // property -> pattern
		"dangerous": "amod",
		"very big":  "acomp",
		"fast":      "amod",
		"exciting":  "conj",
	}
	got := map[string]string{}
	for _, r := range rows {
		got[r.Property] = r.Pattern
	}
	for prop, pattern := range want {
		if got[prop] != pattern {
			t.Errorf("property %q: pattern %q, want %q (rows: %v)", prop, got[prop], pattern, rows)
		}
	}
	if !strings.Contains(FormatTable1(rows), "statement") {
		t.Error("Format output incomplete")
	}
}

// TestTable4Shape verifies the Appendix-B ablation: v2 extracts the most,
// v3 the least; the shipped v4 has the best downstream F1.
func TestTable4Shape(t *testing.T) {
	rows := Table4(testWorld(t), 30)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byV := map[extract.Version]Table4Row{}
	for _, r := range rows {
		byV[r.Version] = r
	}
	if !(byV[extract.V2].Statements > byV[extract.V1].Statements) {
		t.Errorf("v2 (%d) should extract more than v1 (%d)",
			byV[extract.V2].Statements, byV[extract.V1].Statements)
	}
	if !(byV[extract.V2].Statements > byV[extract.V4].Statements) {
		t.Errorf("v2 (%d) should extract more than v4 (%d)",
			byV[extract.V2].Statements, byV[extract.V4].Statements)
	}
	if !(byV[extract.V3].Statements < byV[extract.V4].Statements) {
		t.Errorf("v3 (%d) should extract less than v4 (%d)",
			byV[extract.V3].Statements, byV[extract.V4].Statements)
	}
	if byV[extract.V4].SurveyorF1 < byV[extract.V1].SurveyorF1 {
		t.Errorf("v4 F1 (%.2f) should be at least v1's (%.2f)",
			byV[extract.V4].SurveyorF1, byV[extract.V1].SurveyorF1)
	}
	if !strings.Contains(FormatTable4(rows), "modifiers") {
		t.Error("Format output incomplete")
	}
}

// TestTable5Shape verifies the Appendix-D collapse: baseline coverage
// falls to a fraction while Surveyor stays ≈ 1.
func TestTable5Shape(t *testing.T) {
	res := Table5(Table5Config{Seed: 1, Combos: 60, EntitiesPerType: 40, Rho: 25})
	mv := metricsOf(t, res.Rows, "Majority Vote")
	sv := metricsOf(t, res.Rows, "Surveyor")
	wc := metricsOf(t, res.Rows, "WebChild")
	if sv.Coverage < 0.9 {
		t.Errorf("Surveyor coverage = %.3f, want ≈ 1 (paper: 0.999)", sv.Coverage)
	}
	if mv.Coverage > 0.45 {
		t.Errorf("MV coverage = %.3f — should collapse on the long tail (paper: 0.077)", mv.Coverage)
	}
	if sv.Coverage < mv.Coverage*2 {
		t.Errorf("coverage gap too small: SURV %.3f vs MV %.3f", sv.Coverage, mv.Coverage)
	}
	if wc.Coverage < mv.Coverage {
		t.Errorf("WebChild coverage (%.3f) should exceed MV's (%.3f)", wc.Coverage, mv.Coverage)
	}
	if sv.F1 < mv.F1 {
		t.Errorf("Surveyor F1 (%.3f) below MV (%.3f)", sv.F1, mv.F1)
	}
	if !strings.Contains(res.Format(), "random combos") {
		t.Error("Format output incomplete")
	}
}

// TestFutureWorkRecoversGenerativeThresholds verifies the Section-9
// outlook implementation: the bound learned from mined opinions alone
// sits near the latent threshold the corpus was generated from.
func TestFutureWorkRecoversGenerativeThresholds(t *testing.T) {
	rows := FutureWork(WorldConfig{Seed: 1, Scale: 0.5, Rho: 20})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Rule.Support == 0 {
			t.Fatalf("%s/%s: no rule learned", r.Property, r.Type)
		}
		ratio := r.Rule.Threshold / r.GenerativeThreshold
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("%s/%s: learned bound %.4g too far from generative %.4g",
				r.Property, r.Type, r.Rule.Threshold, r.GenerativeThreshold)
		}
		// Domains with many borderline entities (mountain heights cluster
		// around the cut) cap agreement below the clean-data ideal.
		if r.Rule.Agreement < 0.75 {
			t.Errorf("%s/%s: agreement %.2f", r.Property, r.Type, r.Rule.Agreement)
		}
	}
	if !strings.Contains(FormatFutureWork(rows), "learned bound") {
		t.Error("Format output incomplete")
	}
}

// TestAntonymAblationShape verifies the Section-4 design decision: on a
// corpus where opinions are partly voiced through antonyms, IGNORING
// antonyms (the paper's choice) yields the best F1; folding them into
// negations loses coverage (tracked antonym pairs cannibalise each other)
// and the naive both-directions fold additionally loses precision
// ("not small" does not mean big).
func TestAntonymAblationShape(t *testing.T) {
	rows := AntonymAblation(WorldConfig{Seed: 1, Scale: 0.6}, 0.35)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[AntonymMode]AntonymRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	ignore, strict, naive := byMode[AntonymIgnore], byMode[AntonymStrict], byMode[AntonymNaive]
	if ignore.F1 < strict.F1 {
		t.Errorf("ignoring antonyms (F1 %.3f) should beat strict folding (%.3f)",
			ignore.F1, strict.F1)
	}
	if ignore.F1 <= naive.F1 {
		t.Errorf("ignoring antonyms (F1 %.3f) must beat naive folding (%.3f)",
			ignore.F1, naive.F1)
	}
	if naive.Precision >= strict.Precision {
		t.Errorf("naive folding (prec %.3f) should be less precise than strict (%.3f)",
			naive.Precision, strict.Precision)
	}
	if !strings.Contains(FormatAntonymAblation(rows), "fold") {
		t.Error("Format output incomplete")
	}
}

// TestTable3SeedRobustness verifies the headline shape is not an artifact
// of one seed.
func TestTable3SeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed run")
	}
	for _, seed := range []uint64{7, 42} {
		w := BuildEvalWorld(WorldConfig{Seed: seed, Scale: 0.4})
		res := Table3(w)
		mv := metricsOf(t, res.Rows, "Majority Vote")
		sv := metricsOf(t, res.Rows, "Surveyor")
		if sv.Coverage < 0.9 {
			t.Errorf("seed %d: Surveyor coverage %.3f", seed, sv.Coverage)
		}
		if sv.Coverage < mv.Coverage*1.4 {
			t.Errorf("seed %d: coverage gap too small (%.3f vs %.3f)", seed, sv.Coverage, mv.Coverage)
		}
		if sv.F1 <= mv.F1 {
			t.Errorf("seed %d: Surveyor F1 (%.3f) must beat MV (%.3f)", seed, sv.F1, mv.F1)
		}
		if sv.Precision <= mv.Precision {
			t.Errorf("seed %d: Surveyor precision (%.3f) must beat MV (%.3f)", seed, sv.Precision, mv.Precision)
		}
	}
}
