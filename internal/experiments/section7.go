package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/eval"
	"repro/internal/evidence"
	"repro/internal/stats"
)

// MethodMetrics is one row of Table 3 / Table 5.
type MethodMetrics struct {
	Method string
	eval.Metrics
}

// Table3Result compares the four methods on the curated 500-case test set.
type Table3Result struct {
	Rows []MethodMetrics
	// PaperRows are the values reported in the paper, for side-by-side
	// shape comparison.
	PaperRows []MethodMetrics
}

// Table3 runs the headline comparison (Section 7.4, Table 3).
func Table3(w *World) Table3Result {
	cases := w.EvalCases()
	res := Table3Result{PaperRows: paperTable3}
	for _, m := range MethodNames {
		res.Rows = append(res.Rows, MethodMetrics{Method: m, Metrics: eval.Score(cases, m)})
	}
	return res
}

var paperTable3 = []MethodMetrics{
	{Method: "Majority Vote", Metrics: eval.Metrics{Coverage: 0.483, Precision: 0.29, F1: 0.36}},
	{Method: "Scaled Majority Vote", Metrics: eval.Metrics{Coverage: 0.486, Precision: 0.37, F1: 0.42}},
	{Method: "WebChild", Metrics: eval.Metrics{Coverage: 0.477, Precision: 0.54, F1: 0.51}},
	{Method: "Surveyor", Metrics: eval.Metrics{Coverage: 0.966, Precision: 0.77, F1: 0.84}},
}

// Format renders the result as an aligned table.
func (r Table3Result) Format() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Approach\tCoverage\tPrecision\tF1\t(paper: cov/prec/F1)")
	for i, row := range r.Rows {
		p := r.PaperRows[i]
		fmt.Fprintf(tw, "%s\t%.3f\t%.2f\t%.2f\t(%.3f/%.2f/%.2f)\n",
			row.Method, row.Coverage, row.Precision, row.F1,
			p.Coverage, p.Precision, p.F1)
	}
	tw.Flush()
	return b.String()
}

// Fig11Result is the worker-agreement distribution (Figure 11).
type Fig11Result struct {
	Thresholds []int // 11..20
	Cases      []int // #cases with agreement >= threshold
	Mean       float64
	Perfect    int // cases with full agreement
	Ties       int
}

// Fig11 computes the agreement histogram of the simulated AMT panel.
func Fig11(w *World) Fig11Result {
	out := Fig11Result{}
	workers := w.Cases[0].Judgement.Workers
	minA := workers/2 + 1
	for t := minA; t <= workers; t++ {
		out.Thresholds = append(out.Thresholds, t)
	}
	counts := make([]int, len(out.Thresholds))
	sum := 0
	for _, c := range w.Cases {
		a := c.Judgement.Agreement()
		sum += a
		if a == workers {
			out.Perfect++
		}
		if c.Judgement.IsTie() {
			out.Ties++
		}
		for i, t := range out.Thresholds {
			if a >= t {
				counts[i]++
			}
		}
	}
	out.Cases = counts
	out.Mean = float64(sum) / float64(len(w.Cases))
	return out
}

// Format renders the histogram.
func (r Fig11Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mean agreement %.1f/20, %d perfect, %d ties (paper: 17/20, ~180, 4%%)\n",
		r.Mean, r.Perfect, r.Ties)
	for i, t := range r.Thresholds {
		fmt.Fprintf(&b, "agreement >= %2d: %4d cases\n", t, r.Cases[i])
	}
	return b.String()
}

// Fig12Result is the precision/coverage-vs-agreement sweep (Figure 12).
type Fig12Result struct {
	Points []eval.SweepPoint
}

// Fig12 sweeps the agreement threshold for all four methods.
func Fig12(w *World) Fig12Result {
	cases := w.EvalCases()
	workers := w.Cases[0].Judgement.Workers
	var thresholds []int
	for t := workers/2 + 1; t <= workers; t++ {
		thresholds = append(thresholds, t)
	}
	return Fig12Result{Points: eval.SweepAgreement(cases, MethodNames, thresholds)}
}

// Format renders precision and coverage series per method.
func (r Fig12Result) Format() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "minAgree\tcases")
	for _, m := range MethodNames {
		fmt.Fprintf(tw, "\t%s P/C", shortName(m))
	}
	fmt.Fprintln(tw)
	for _, pt := range r.Points {
		fmt.Fprintf(tw, "%d\t%d", pt.MinAgreement, pt.Cases)
		for _, m := range MethodNames {
			mm := pt.ByMethod[m]
			fmt.Fprintf(tw, "\t%.2f/%.2f", mm.Precision, mm.Coverage)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	return b.String()
}

func shortName(m string) string {
	switch m {
	case "Majority Vote":
		return "MV"
	case "Scaled Majority Vote":
		return "SMV"
	case "WebChild":
		return "WC"
	}
	return "SURV"
}

// Fig9Result holds the extraction statistics percentiles (Figure 9).
type Fig9Result struct {
	Percentiles []float64 // the x axis: 0..100
	// StatementsPerEntity: statements about each KB entity (all
	// properties), zero-evidence entities included — Figure 9(a).
	StatementsPerEntity []float64
	// StatementsPerCombo: statements per (type, property) pair with any
	// evidence — Figure 9(b).
	StatementsPerCombo []float64
	// PropertiesPerType: properties above the ρ threshold per type —
	// Figure 9(c).
	PropertiesPerType []float64
}

// Fig9 computes the three percentile curves from a pipeline run.
func Fig9(w *World, rho int64) Fig9Result {
	ps := []float64{0, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 95, 99, 100}

	perEntity := make([]float64, w.KB.Len())
	comboTotals := map[evidence.GroupKey]float64{}
	for _, e := range w.Result.Store.Snapshot() {
		perEntity[e.Entity] += float64(e.Total())
		gk := evidence.GroupKey{Type: w.KB.Get(e.Entity).Type, Property: e.Property}
		comboTotals[gk] += float64(e.Total())
	}
	var perCombo []float64
	propsPerType := map[string]float64{}
	for gk, total := range comboTotals {
		perCombo = append(perCombo, total)
		if total >= float64(rho) {
			propsPerType[gk.Type]++
		}
	}
	var perType []float64
	for _, t := range w.KB.Types() {
		perType = append(perType, propsPerType[t])
	}

	return Fig9Result{
		Percentiles:         ps,
		StatementsPerEntity: stats.Percentiles(perEntity, ps),
		StatementsPerCombo:  stats.Percentiles(perCombo, ps),
		PropertiesPerType:   stats.Percentiles(perType, ps),
	}
}

// Format renders the three percentile curves.
func (r Fig9Result) Format() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "percentile\tstmts/entity\tstmts/combo\tprops/type")
	for i, p := range r.Percentiles {
		fmt.Fprintf(tw, "%.0f\t%.1f\t%.1f\t%.1f\n",
			p, r.StatementsPerEntity[i], r.StatementsPerCombo[i], r.PropertiesPerType[i])
	}
	tw.Flush()
	return b.String()
}

// ScaleStats summarises the pipeline run in the style of Section 7.1.
type ScaleStats struct {
	Documents          int
	Sentences          int64
	Statements         int64
	EntityPropertyPair int
	CombosBeforeFilter int
	CombosModelled     int
	OpinionsProduced   int64
	ExtractionMillis   int64
	GroupingMillis     int64
	EMMillis           int64
}

// Scale extracts the Section-7.1 statistics from a world.
func Scale(w *World) ScaleStats {
	var opinions int64
	for i := range w.Result.Groups {
		opinions += int64(len(w.Result.Groups[i].Entities))
	}
	return ScaleStats{
		Documents:          w.Result.Documents,
		Sentences:          w.Result.Sentences,
		Statements:         w.Result.TotalStatements,
		EntityPropertyPair: w.Result.DistinctPairs,
		CombosBeforeFilter: w.Result.PairsBeforeFilter,
		CombosModelled:     len(w.Result.Groups),
		OpinionsProduced:   opinions,
		ExtractionMillis:   w.Result.Timings.Extraction.Milliseconds(),
		GroupingMillis:     w.Result.Timings.Grouping.Milliseconds(),
		EMMillis:           w.Result.Timings.EM.Milliseconds(),
	}
}

// Format renders the scale statistics.
func (s ScaleStats) Format() string {
	return fmt.Sprintf(`documents:            %d
sentences:            %d
evidence statements:  %d  (paper: 922M)
entity-property pairs: %d  (paper: 60M)
combos before filter: %d  (paper: 7M)
combos modelled:      %d  (paper: 380k)
opinions produced:    %d  (paper: 4B)
extraction time:      %d ms (paper: ~1h on 5000 nodes)
grouping time:        %d ms (paper: ~1h)
EM time:              %d ms (paper: 10 min)
`, s.Documents, s.Sentences, s.Statements, s.EntityPropertyPair,
		s.CombosBeforeFilter, s.CombosModelled, s.OpinionsProduced,
		s.ExtractionMillis, s.GroupingMillis, s.EMMillis)
}
