package experiments

import (
	"sort"
	"testing"

	"repro/internal/eval"
	"repro/internal/evidence"
)

// TestCalibrationReport logs the end-to-end calibration of the synthetic
// world against the paper's reported numbers; run with -v to inspect.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	w := BuildEvalWorld(WorldConfig{Seed: 1, Scale: 0.5})
	t.Logf("groups modelled: %d of %d before filter; statements %d",
		len(w.Result.Groups), w.Result.PairsBeforeFilter, w.Result.TotalStatements)
	modelled := map[string]bool{}
	for _, g := range w.Result.Groups {
		modelled[g.Key.Type+"/"+g.Key.Property] = true
	}
	for _, s := range w.Snapshot.Specs {
		key := s.Type + "/" + s.Property
		if !modelled[key] {
			t.Logf("NOT MODELLED: %s", key)
		}
	}
	cases := w.EvalCases()
	for _, m := range MethodNames {
		t.Logf("%-22s %+v", m, eval.Score(cases, m))
	}
	// How many test-case pairs have zero evidence?
	zero := 0
	for _, tc := range w.Cases {
		c := w.Result.Store.Get(evidence.Key{Entity: tc.Entity, Property: tc.Property})
		if c.Total() == 0 {
			zero++
		}
	}
	t.Logf("test cases with zero evidence: %d / %d", zero, len(w.Cases))

	// Per-combo breakdown: solved/correct for MV and Surveyor.
	type tally struct{ mvS, mvC, svS, svC, n, posT int }
	byCombo := map[string]*tally{}
	for _, tc := range w.Cases {
		if tc.Judgement.IsTie() {
			continue
		}
		key := tc.Type + "/" + tc.Property
		tl := byCombo[key]
		if tl == nil {
			tl = &tally{}
			byCombo[key] = tl
		}
		tl.n++
		truth := tc.Judgement.Dominant().String() == "+"
		if truth {
			tl.posT++
		}
		c := w.Result.Store.Get(evidence.Key{Entity: tc.Entity, Property: tc.Property})
		if c.Pos != c.Neg {
			tl.mvS++
			if (c.Pos > c.Neg) == truth {
				tl.mvC++
			}
		}
		if op, ok := w.Result.Opinion(tc.Entity, tc.Property); ok && op.Opinion != 0 {
			tl.svS++
			if (op.Opinion > 0) == truth {
				tl.svC++
			}
		}
	}
	keys := make([]string, 0, len(byCombo))
	for k := range byCombo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		tl := byCombo[k]
		t.Logf("%-28s n=%2d pos=%2d  MV %2d/%2d  SURV %2d/%2d", k, tl.n, tl.posT, tl.mvC, tl.mvS, tl.svC, tl.svS)
	}

	mtn := Fig13(WorldConfig{Seed: 1, Scale: 0.5, Rho: 15})
	for _, r := range mtn {
		t.Logf("fig13 %s/%s: MV corr %.2f dec %.2f | model corr %.2f dec %.2f | zeroEv %d",
			r.Property, r.Type, r.MVCorrelation, r.MVDecided,
			r.ModelCorrelation, r.ModelDecided, r.ZeroEvidence)
	}
}
