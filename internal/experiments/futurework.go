package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/kb"
	"repro/internal/threshold"
)

// FutureWorkRow is one learned subjective-to-objective rule compared with
// the generative threshold that produced the data.
type FutureWorkRow struct {
	Type, Property, Attribute string
	Rule                      threshold.Rule
	// GenerativeThreshold is the latent sigmoid midpoint the corpus was
	// generated from; recovery means the learned bound sits near it.
	GenerativeThreshold float64
	// RefinedChanges counts opinions the rule-feedback step flipped.
	RefinedChanges int
}

// FutureWork reproduces the paper's Section-9 outlook: learn, from the
// mined opinions alone, the attribute bound from which users apply a
// subjective property — "a lower bound on the population count of a city
// starting from which an average user would call that city big" — and
// use the rule to refine uncertain decisions.
func FutureWork(cfg WorldConfig) []FutureWorkRow {
	studies := []struct {
		spec      corpus.Spec
		attr      string
		genThresh float64
		build     func(b *kb.Builder)
	}{
		{corpus.Figure3Spec(), "population", 250_000,
			func(b *kb.Builder) { b.CalifornianCities(461) }},
		{corpus.AppendixASpecs()[0], "gdp_per_capita", 20_000,
			func(b *kb.Builder) { b.Countries() }},
		{corpus.AppendixASpecs()[2], "height_m", 700,
			func(b *kb.Builder) { b.BritishMountains(55) }},
	}

	var out []FutureWorkRow
	for _, st := range studies {
		b := kb.NewBuilder(cfg.withDefaults().Seed)
		st.build(b)
		b.AssignProminence(st.spec.Type, st.attr)
		spec := st.spec
		spec.PopularityWeighting = true
		w := BuildWorld(cfg, b.KB(), []corpus.Spec{spec})

		row := FutureWorkRow{
			Type: spec.Type, Property: spec.Property, Attribute: st.attr,
			GenerativeThreshold: st.genThresh,
		}
		g, ok := w.Result.Group(spec.Type, spec.Property)
		if !ok {
			out = append(out, row)
			continue
		}
		attrs := make([]float64, len(g.Entities))
		ops := make([]core.Opinion, len(g.Entities))
		probs := make([]float64, len(g.Entities))
		for i, eo := range g.Entities {
			attrs[i] = w.KB.Get(eo.Entity).Attr(st.attr, 0)
			ops[i] = eo.Opinion
			probs[i] = eo.Probability
		}
		rule, ok := threshold.Learn(attrs, ops)
		if !ok {
			out = append(out, row)
			continue
		}
		row.Rule = rule
		_, row.RefinedChanges = threshold.Refine(rule, attrs, probs, 0.15)
		out = append(out, row)
	}
	return out
}

// FormatFutureWork renders the learned rules.
func FormatFutureWork(rows []FutureWorkRow) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "property/type\tattribute\tlearned bound\tgenerative\tagreement\tcorr\trefined")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s %s\t%s %s\t%.4g\t%.4g\t%.0f%%\t%.2f\t%d\n",
			r.Property, r.Type, r.Attribute, r.Rule.Direction,
			r.Rule.Threshold, r.GenerativeThreshold,
			100*r.Rule.Agreement, r.Rule.Correlation, r.RefinedChanges)
	}
	tw.Flush()
	return b.String()
}
