// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7 plus the empirical studies of Section 2 and
// Appendices A, B, D) on the synthetic web snapshot. Each experiment
// returns a structured result that cmd/experiments renders and
// bench_test.go wraps in benchmarks.
package experiments

import (
	"repro/internal/annotate"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crowd"
	"repro/internal/eval"
	"repro/internal/evidence"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/pipeline"
)

// MethodNames in report order.
var MethodNames = []string{"Majority Vote", "Scaled Majority Vote", "WebChild", "Surveyor"}

// World bundles everything the Section-7 experiments share: the
// evaluation knowledge base, the generated snapshot, the V4 pipeline run,
// and the simulated AMT test cases.
type World struct {
	KB       *kb.KB
	Lex      *lexicon.Lexicon
	Snapshot *corpus.Snapshot
	Result   *pipeline.Result
	Cases    []crowd.TestCase
	Workers  int

	annotated []annotate.Document // lazy cache for version sweeps
}

// WorldConfig controls world construction.
type WorldConfig struct {
	Seed  uint64
	Scale float64 // corpus volume multiplier (1 = experiment scale)
	// Rho is the modelling threshold; 0 uses a scale-adjusted default.
	Rho int64
	// EntitiesPerCombo and WorkerPanel control the AMT simulation
	// (the paper used 20 and 20: 500 test cases).
	EntitiesPerCombo int
	WorkerPanel      int
	// UniformCases samples test entities uniformly (the Appendix-D random
	// protocol) instead of prominence-weighted (the Section-7.3 curated
	// protocol).
	UniformCases bool
}

func (c WorldConfig) withDefaults() WorldConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Rho == 0 {
		c.Rho = int64(40 * c.Scale)
		if c.Rho < 5 {
			c.Rho = 5
		}
	}
	if c.EntitiesPerCombo == 0 {
		c.EntitiesPerCombo = 20
	}
	if c.WorkerPanel == 0 {
		c.WorkerPanel = 20
	}
	return c
}

// BuildEvalWorld constructs the Section-7 evaluation world: the default
// knowledge base, the 25 Table-2 combinations, a generated snapshot, the
// V4 pipeline run, and 500 simulated AMT test cases.
func BuildEvalWorld(cfg WorldConfig) *World {
	cfg = cfg.withDefaults()
	base := kb.Default(cfg.Seed)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	specs := corpus.Table2Specs()
	snap := corpus.NewGenerator(base, specs, corpus.Config{
		Seed:  cfg.Seed + 100,
		Scale: cfg.Scale,
	}).Generate()
	res := pipeline.Run(snap.Documents, base, lex, pipeline.Config{Rho: cfg.Rho})
	cases := crowd.CollectCases(base, specs, cfg.EntitiesPerCombo, cfg.WorkerPanel, cfg.Seed+200)
	return &World{KB: base, Lex: lex, Snapshot: snap, Result: res, Cases: cases}
}

// EvalCases converts the crowd test cases into eval cases with the
// predictions of all four methods attached. Tied panels are dropped, as
// in Section 7.3.
func (w *World) EvalCases() []eval.Case {
	return w.EvalCasesFor(w.Result)
}

// EvalCasesFor builds eval cases against an alternative pipeline run
// (e.g. one produced under a different extraction pattern version).
func (w *World) EvalCasesFor(res *pipeline.Result) []eval.Case {
	kept := crowd.DropTies(w.Cases)
	smv := baselines.NewScaledMajorityVote(res.Store)
	wc := baselines.NewWebChild(res.Store, 2)
	out := make([]eval.Case, 0, len(kept))
	for _, tc := range kept {
		counts := res.Store.Get(evidence.Key{Entity: tc.Entity, Property: tc.Property})
		preds := map[string]core.Opinion{
			"Majority Vote":        baselines.MajorityVote{}.Decide(counts.Pos, counts.Neg),
			"Scaled Majority Vote": smv.Decide(counts.Pos, counts.Neg),
			"WebChild":             wc.DecideFor(tc.Entity, tc.Property),
			"Surveyor":             surveyorOpinion(res, tc.Entity, tc.Property),
		}
		out = append(out, eval.Case{
			Truth:       tc.Judgement.Dominant() == core.OpinionPositive,
			Agreement:   tc.Judgement.Agreement(),
			Predictions: preds,
		})
	}
	return out
}

func surveyorOpinion(res *pipeline.Result, e kb.EntityID, property string) core.Opinion {
	op, ok := res.Opinion(e, property)
	if !ok {
		return core.OpinionUnsolved
	}
	return op.Opinion
}

// RunVersion re-runs extraction and modelling under a different pattern
// version (for the Table-4 ablation). The snapshot is annotated once and
// cached; version sweeps only re-run extraction, as the paper's two-phase
// architecture (annotate, then extract) allows.
func (w *World) RunVersion(v extract.Version, rho int64) *pipeline.Result {
	if w.annotated == nil {
		w.annotated = pipeline.Annotate(w.Snapshot.Documents, w.KB, w.Lex, 0)
	}
	return pipeline.RunAnnotated(w.annotated, w.KB, w.Lex, pipeline.Config{
		Rho: rho, Version: v,
	})
}
