package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/crowd"
	"repro/internal/eval"
	"repro/internal/evidence"
	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/nlp/depparse"
	"repro/internal/nlp/lexicon"
	"repro/internal/nlp/pos"
	"repro/internal/nlp/token"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/tagger"
)

// BuildWorld constructs a world over arbitrary specs (used by the
// empirical studies which run one spec at a time).
func BuildWorld(cfg WorldConfig, base *kb.KB, specs []corpus.Spec) *World {
	cfg = cfg.withDefaults()
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	snap := corpus.NewGenerator(base, specs, corpus.Config{
		Seed:  cfg.Seed + 100,
		Scale: cfg.Scale,
	}).Generate()
	res := pipeline.Run(snap.Documents, base, lex, pipeline.Config{Rho: cfg.Rho})
	collect := crowd.CollectCases
	if cfg.UniformCases {
		collect = crowd.CollectCasesUniform
	}
	cases := collect(base, specs, cfg.EntitiesPerCombo, cfg.WorkerPanel, cfg.Seed+200)
	return &World{KB: base, Lex: lex, Snapshot: snap, Result: res, Cases: cases}
}

// AttributeStudyRow is one entity of a Figure-3/13 style study.
type AttributeStudyRow struct {
	Entity    string
	Attribute float64
	Pos, Neg  int64
	MV        core.Opinion
	Model     core.Opinion
}

// AttributeStudyResult is a Figure-3/13 style comparison: majority vote
// vs probabilistic model against an objective attribute.
type AttributeStudyResult struct {
	Type, Property, Attribute string
	Rows                      []AttributeStudyRow
	// Spearman rank correlation between polarity and attribute, per
	// method, plus the fraction of entities each method decides.
	MVCorrelation    float64
	ModelCorrelation float64
	MVDecided        float64
	ModelDecided     float64
	// MVAccuracy / ModelAccuracy measure agreement with the latent
	// dominant opinion over ALL entities of the type; an undecided entity
	// counts as incorrect (the paper's core point: the model decides
	// every entity, majority vote cannot).
	MVAccuracy    float64
	ModelAccuracy float64
	// ZeroEvidence counts entities with no statements at all; the model
	// classifies them, majority vote cannot.
	ZeroEvidence int
}

// attributeStudy runs one empirical-study combination end to end.
func attributeStudy(cfg WorldConfig, base *kb.KB, spec corpus.Spec, attr string) AttributeStudyResult {
	w := BuildWorld(cfg, base, []corpus.Spec{spec})
	out := AttributeStudyResult{Type: spec.Type, Property: spec.Property, Attribute: attr}

	group, ok := w.Result.Group(spec.Type, spec.Property)
	var byEntity map[kb.EntityID]pipeline.EntityOpinion
	if ok {
		byEntity = map[kb.EntityID]pipeline.EntityOpinion{}
		for _, eo := range group.Entities {
			byEntity[eo.Entity] = eo
		}
	}

	var mvPol, modelPol, attrs []float64
	mv := baselines.MajorityVote{}
	mvRight, modelRight := 0, 0
	for _, id := range base.OfType(spec.Type) {
		e := base.Get(id)
		counts := w.Result.Store.Get(evidence.Key{Entity: id, Property: spec.Property})
		row := AttributeStudyRow{
			Entity:    e.Name,
			Attribute: e.Attr(attr, 0),
			Pos:       counts.Pos,
			Neg:       counts.Neg,
			MV:        mv.Decide(counts.Pos, counts.Neg),
			Model:     core.OpinionUnsolved,
		}
		if byEntity != nil {
			if eo, found := byEntity[id]; found {
				row.Model = eo.Opinion
			}
		}
		if counts.Total() == 0 {
			out.ZeroEvidence++
		}
		truth := spec.LatentTruth(e, "com")
		if row.MV != core.OpinionUnsolved && (row.MV == core.OpinionPositive) == truth {
			mvRight++
		}
		if row.Model != core.OpinionUnsolved && (row.Model == core.OpinionPositive) == truth {
			modelRight++
		}
		out.Rows = append(out.Rows, row)
		mvPol = append(mvPol, float64(row.MV))
		modelPol = append(modelPol, float64(row.Model))
		attrs = append(attrs, row.Attribute)
	}
	if n := len(out.Rows); n > 0 {
		out.MVAccuracy = float64(mvRight) / float64(n)
		out.ModelAccuracy = float64(modelRight) / float64(n)
	}
	sort.Slice(out.Rows, func(a, b int) bool { return out.Rows[a].Attribute < out.Rows[b].Attribute })

	out.MVCorrelation = stats.Spearman(mvPol, attrs)
	out.ModelCorrelation = stats.Spearman(modelPol, attrs)
	mvOps := make([]core.Opinion, len(out.Rows))
	moOps := make([]core.Opinion, len(out.Rows))
	for i, r := range out.Rows {
		mvOps[i], moOps[i] = r.MV, r.Model
	}
	out.MVDecided = eval.DecisionRate(mvOps)
	out.ModelDecided = eval.DecisionRate(moOps)
	return out
}

// Fig3 reproduces the Section-2 empirical study: the property "big" over
// the Californian cities, interpreting statement counts with majority vote
// (Figure 3c) versus the probabilistic model (Figure 3d).
func Fig3(cfg WorldConfig) AttributeStudyResult {
	base := kb.NewBuilder(cfg.withDefaults().Seed)
	base.CalifornianCities(461)
	return attributeStudy(cfg, base.KB(), corpus.Figure3Spec(), "population")
}

// Fig13 reproduces the Appendix-A studies: wealthy countries, big Swiss
// lakes, high British mountains.
func Fig13(cfg WorldConfig) []AttributeStudyResult {
	attrs := map[string]string{
		"country": "gdp_per_capita", "lake": "area_km2", "mountain": "height_m",
	}
	var out []AttributeStudyResult
	for _, spec := range corpus.AppendixASpecs() {
		b := kb.NewBuilder(cfg.withDefaults().Seed)
		switch spec.Type {
		case "country":
			b.Countries()
		case "lake":
			b.SwissLakes(45)
		case "mountain":
			b.BritishMountains(55)
		}
		// Web visibility follows size/wealth with noise: obscure little
		// lakes are simply never written about (the sparsity that defeats
		// majority voting in Appendix A).
		b.AssignProminence(spec.Type, attrs[spec.Type])
		out = append(out, attributeStudy(cfg, b.KB(), spec, attrs[spec.Type]))
	}
	return out
}

// Format renders the study summary (row detail elided to the extremes).
func (r AttributeStudyResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s vs %s: correlation MV %.2f vs model %.2f; accuracy MV %.2f vs model %.2f; decided MV %.0f%% vs model %.0f%%; %d zero-evidence entities\n",
		r.Property, r.Type, r.Attribute,
		r.MVCorrelation, r.ModelCorrelation,
		r.MVAccuracy, r.ModelAccuracy,
		100*r.MVDecided, 100*r.ModelDecided, r.ZeroEvidence)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "entity\tattr\tC+\tC-\tMV\tmodel")
	show := append([]AttributeStudyRow{}, r.Rows...)
	if len(show) > 12 {
		show = append(show[:6], show[len(show)-6:]...)
	}
	for _, row := range show {
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%s\t%s\n",
			row.Entity, row.Attribute, row.Pos, row.Neg, row.MV, row.Model)
	}
	tw.Flush()
	return b.String()
}

// Fig10Row is one animal of Figure 10.
type Fig10Row struct {
	Animal     string
	PaperVotes int // AMT votes reported in the paper (out of 20)
	SimVotes   int // votes of our simulated panel (out of 20)
}

// Fig10 compares the paper's reported AMT votes for "cute" over the 20
// figure animals with our simulated panel.
func Fig10(seed uint64) []Fig10Row {
	base := kb.Default(seed)
	var cuteSpec corpus.Spec
	for _, s := range corpus.Table2Specs() {
		if s.Type == "animal" && s.Property == "cute" {
			cuteSpec = s
		}
	}
	panel := crowd.NewPanel(20, seed+7)
	var rows []Fig10Row
	for _, id := range base.OfType("animal") {
		e := base.Get(id)
		votes := e.Attr("cute_votes", -1)
		if votes < 0 {
			continue // not a Figure-10 animal
		}
		j := panel.Collect(cuteSpec.LatentPosFraction(e, "com"))
		rows = append(rows, Fig10Row{
			Animal:     e.Name,
			PaperVotes: int(votes),
			SimVotes:   j.PositiveVotes,
		})
	}
	return rows
}

// FormatFig10 renders the vote comparison.
func FormatFig10(rows []Fig10Row) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "animal\tpaper votes\tsimulated votes")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\n", r.Animal, r.PaperVotes, r.SimVotes)
	}
	tw.Flush()
	return b.String()
}

// Fig6Result samples the two count distributions of Figure 6 under the
// Example-3 parameters (pA = 0.9, np+S = 100, np−S = 5).
type Fig6Result struct {
	Params core.Params
	// LogProbPositive[i][j] = log Pr(C+ = i·step, C− = j | D = +); same
	// grid for the negative-dominant distribution.
	PosGrid, NegGrid [][]float64
	Step             int
	MaxNeg           int
	// Example1Posterior is Pr(D=+ | ⟨60, 3⟩), the X of Figure 6.
	Example1Posterior float64
}

// Fig6 computes the grids.
func Fig6() Fig6Result {
	params := core.Params{PA: 0.9, NpPlus: 100, NpMinus: 5}
	m := core.Model{Params: params}
	lpp, lnp, lpn, lnn := params.Lambdas()
	const step, maxPos, maxNeg = 10, 120, 10
	var pos, neg [][]float64
	for c := 0; c <= maxPos; c += step {
		var prow, nrow []float64
		for d := 0; d <= maxNeg; d++ {
			prow = append(prow, stats.LogPoissonPMF(c, lpp)+stats.LogPoissonPMF(d, lnp))
			nrow = append(nrow, stats.LogPoissonPMF(c, lpn)+stats.LogPoissonPMF(d, lnn))
		}
		pos = append(pos, prow)
		neg = append(neg, nrow)
	}
	return Fig6Result{
		Params: params, PosGrid: pos, NegGrid: neg, Step: step, MaxNeg: maxNeg,
		Example1Posterior: m.PosteriorPositive(core.Tuple{Pos: 60, Neg: 3}),
	}
}

// Format renders the grid summary.
func (r Fig6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "λ++=%.1f λ−+=%.1f λ+−=%.1f λ−−=%.1f; Pr(D=+|60,3) = %.3f (paper: positive)\n",
		r.Params.PA*r.Params.NpPlus, (1-r.Params.PA)*r.Params.NpMinus,
		(1-r.Params.PA)*r.Params.NpPlus, r.Params.PA*r.Params.NpMinus,
		r.Example1Posterior)
	return b.String()
}

// Table1Row is one example extraction of Table 1.
type Table1Row struct {
	Statement string
	Pattern   string
	Entity    string
	Property  string
}

// Table1 runs the extraction pipeline over the paper's three example
// statements.
func Table1() []Table1Row {
	base := kb.New()
	base.Add(kb.Entity{Name: "snake", Type: "animal"})
	base.Add(kb.Entity{Name: "Chicago", Type: "city", Proper: true})
	base.Add(kb.Entity{Name: "soccer", Type: "sport"})
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	pt := pos.New(lex)
	dp := depparse.New(lex)
	et := tagger.New(base, lex)
	ex := extract.NewVersion(lex, extract.V4)

	inputs := []string{
		"Snakes are dangerous animals.",
		"Chicago is very big.",
		"Soccer is a fast and exciting sport.",
	}
	var rows []Table1Row
	for _, text := range inputs {
		for _, sent := range token.SplitSentences(text) {
			tagged := pt.Tag(sent)
			tree := dp.Parse(tagged)
			mentions := et.Tag(tagged)
			for _, st := range ex.Extract(tree, mentions) {
				rows = append(rows, Table1Row{
					Statement: text,
					Pattern:   st.Pattern.String(),
					Entity:    base.Get(st.Entity).Name,
					Property:  st.Property,
				})
			}
		}
	}
	return rows
}

// FormatTable1 renders the example extractions.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "statement\tpattern\tentity\tproperty")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.Statement, r.Pattern, r.Entity, r.Property)
	}
	tw.Flush()
	return b.String()
}
