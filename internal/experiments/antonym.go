package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/corpus"
	"repro/internal/crowd"
	"repro/internal/eval"
	"repro/internal/evidence"
	"repro/internal/kb"
	"repro/internal/nlp/lexicon"
	"repro/internal/pipeline"
)

// AntonymMode selects how antonym statements are interpreted.
type AntonymMode int

// The three interpretations compared by the ablation.
const (
	AntonymIgnore AntonymMode = iota // the paper's choice: separate properties
	AntonymStrict                    // "X is small" -> (X, big, −) only
	AntonymNaive                     // additionally "X is not small" -> (X, big, +)
)

func (m AntonymMode) String() string {
	switch m {
	case AntonymStrict:
		return "fold-positive-only"
	case AntonymNaive:
		return "fold-both-directions"
	}
	return "ignore (paper)"
}

// AntonymRow is one mode of the ablation.
type AntonymRow struct {
	Mode       AntonymMode
	Statements int64 // statements attributed to tracked properties
	Precision  float64
	Coverage   float64
	F1         float64
}

// AntonymAblation quantifies the Section-4 design decision: on a corpus
// where a share of negative opinions is voiced through antonyms ("Palo
// Alto is small") and controversial entities attract "not small"
// statements, compare ignoring antonyms (the paper's choice) against
// folding them into negations, strictly or naively.
func AntonymAblation(cfg WorldConfig, antonymFrac float64) []AntonymRow {
	cfg = cfg.withDefaults()
	base := kb.Default(cfg.Seed)
	lex := lexicon.Default()
	base.RegisterLexicon(lex)
	specs := corpus.Table2Specs()
	snap := corpus.NewGenerator(base, specs, corpus.Config{
		Seed:        cfg.Seed + 100,
		Scale:       cfg.Scale,
		AntonymFrac: antonymFrac,
	}).Generate()

	baseRun := pipeline.Run(snap.Documents, base, lex, pipeline.Config{Rho: cfg.Rho})
	cases := crowd.CollectCases(base, specs, cfg.EntitiesPerCombo, cfg.WorkerPanel, cfg.Seed+200)
	w := &World{KB: base, Lex: lex, Snapshot: snap, Result: baseRun, Cases: cases}

	score := func(res *pipeline.Result) AntonymRow {
		m := eval.Score(w.EvalCasesFor(res), "Surveyor")
		return AntonymRow{
			Statements: res.TotalStatements,
			Precision:  m.Precision,
			Coverage:   m.Coverage,
			F1:         m.F1,
		}
	}

	rows := make([]AntonymRow, 0, 3)
	r := score(baseRun)
	r.Mode = AntonymIgnore
	rows = append(rows, r)

	resolver := evidence.PrimaryByVolume(baseRun.Store, lex.Antonyms)
	for _, mode := range []AntonymMode{AntonymStrict, AntonymNaive} {
		folded := evidence.FoldAntonyms(baseRun.Store, resolver, mode == AntonymNaive)
		res := pipeline.RunFromStore(folded, base, pipeline.Config{Rho: cfg.Rho})
		r := score(res)
		r.Mode = mode
		rows = append(rows, r)
	}
	return rows
}

// FormatAntonymAblation renders the comparison.
func FormatAntonymAblation(rows []AntonymRow) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "mode\tstatements\tcoverage\tprecision\tF1")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\t%.3f\n",
			r.Mode, r.Statements, r.Coverage, r.Precision, r.F1)
	}
	tw.Flush()
	return b.String()
}
