// Package eval implements the evaluation measures of Section 7.4 —
// coverage, precision, F1 — plus the agreement-threshold sweeps behind
// Figures 11/12 and the polarity-vs-attribute correlation analysis behind
// Figures 3 and 13.
package eval

import (
	"repro/internal/core"
	"repro/internal/stats"
)

// Metrics are the three evaluation measures of the paper. Coverage is the
// ratio of solved to total cases, precision the ratio of correctly solved
// to solved, F1 their harmonic mean.
type Metrics struct {
	Coverage  float64
	Precision float64
	F1        float64
	Total     int
	Solved    int
	Correct   int
}

// Case is one evaluated entity-property pair: the ground-truth dominant
// opinion (from the worker panel), the worker agreement, and each
// method's prediction.
type Case struct {
	Truth       bool // dominant opinion is positive
	Agreement   int  // workers sharing the majority opinion
	Predictions map[string]core.Opinion
}

// Score computes the metrics of one method over the cases.
func Score(cases []Case, method string) Metrics {
	m := Metrics{Total: len(cases)}
	for _, c := range cases {
		pred, ok := c.Predictions[method]
		if !ok || pred == core.OpinionUnsolved {
			continue
		}
		m.Solved++
		if (pred == core.OpinionPositive) == c.Truth {
			m.Correct++
		}
	}
	if m.Total > 0 {
		m.Coverage = float64(m.Solved) / float64(m.Total)
	}
	if m.Solved > 0 {
		m.Precision = float64(m.Correct) / float64(m.Solved)
	}
	m.F1 = F1(m.Precision, m.Coverage)
	return m
}

// F1 returns the harmonic mean of precision and coverage.
func F1(precision, coverage float64) float64 {
	if precision+coverage == 0 {
		return 0
	}
	return 2 * precision * coverage / (precision + coverage)
}

// FilterByAgreement keeps cases with worker agreement >= minAgreement.
func FilterByAgreement(cases []Case, minAgreement int) []Case {
	out := cases[:0:0]
	for _, c := range cases {
		if c.Agreement >= minAgreement {
			out = append(out, c)
		}
	}
	return out
}

// SweepPoint is one threshold of the Figure-12 sweep.
type SweepPoint struct {
	MinAgreement int
	Cases        int
	ByMethod     map[string]Metrics
}

// SweepAgreement evaluates every method at each agreement threshold —
// the Figure 12 series (precision and coverage vs minimum agreement).
func SweepAgreement(cases []Case, methods []string, thresholds []int) []SweepPoint {
	out := make([]SweepPoint, 0, len(thresholds))
	for _, th := range thresholds {
		sub := FilterByAgreement(cases, th)
		pt := SweepPoint{MinAgreement: th, Cases: len(sub), ByMethod: map[string]Metrics{}}
		for _, m := range methods {
			pt.ByMethod[m] = Score(sub, m)
		}
		out = append(out, pt)
	}
	return out
}

// PolarityAttributeCorrelation returns the Spearman rank correlation
// between predicted polarity (−1, 0, +1) and an objective attribute — the
// qualitative evaluation of Figures 3 and 13 (how well does predicted
// "big" track population?).
func PolarityAttributeCorrelation(opinions []core.Opinion, attrs []float64) float64 {
	if len(opinions) != len(attrs) {
		return 0
	}
	pol := make([]float64, len(opinions))
	for i, o := range opinions {
		pol[i] = float64(o)
	}
	return stats.Spearman(pol, attrs)
}

// DecisionRate returns the fraction of opinions that are not unsolved.
func DecisionRate(opinions []core.Opinion) float64 {
	if len(opinions) == 0 {
		return 0
	}
	solved := 0
	for _, o := range opinions {
		if o != core.OpinionUnsolved {
			solved++
		}
	}
	return float64(solved) / float64(len(opinions))
}
