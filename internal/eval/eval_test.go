package eval

import (
	"math"
	"testing"

	"repro/internal/core"
)

func mkCase(truth bool, agreement int, preds map[string]core.Opinion) Case {
	return Case{Truth: truth, Agreement: agreement, Predictions: preds}
}

func TestScoreBasic(t *testing.T) {
	cases := []Case{
		mkCase(true, 20, map[string]core.Opinion{"m": core.OpinionPositive}),  // correct
		mkCase(false, 20, map[string]core.Opinion{"m": core.OpinionPositive}), // wrong
		mkCase(true, 20, map[string]core.Opinion{"m": core.OpinionUnsolved}),  // unsolved
		mkCase(false, 20, map[string]core.Opinion{"m": core.OpinionNegative}), // correct
	}
	m := Score(cases, "m")
	if m.Total != 4 || m.Solved != 3 || m.Correct != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	if math.Abs(m.Coverage-0.75) > 1e-12 {
		t.Fatalf("coverage = %v", m.Coverage)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-12 {
		t.Fatalf("precision = %v", m.Precision)
	}
	wantF1 := 2 * (2.0 / 3) * 0.75 / (2.0/3 + 0.75)
	if math.Abs(m.F1-wantF1) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", m.F1, wantF1)
	}
}

func TestScoreMissingMethod(t *testing.T) {
	cases := []Case{mkCase(true, 20, map[string]core.Opinion{})}
	m := Score(cases, "absent")
	if m.Solved != 0 || m.Coverage != 0 || m.Precision != 0 || m.F1 != 0 {
		t.Fatalf("metrics for absent method = %+v", m)
	}
}

func TestScoreEmpty(t *testing.T) {
	m := Score(nil, "m")
	if m.Coverage != 0 || m.Precision != 0 {
		t.Fatalf("empty metrics = %+v", m)
	}
}

func TestF1(t *testing.T) {
	if got := F1(0, 0); got != 0 {
		t.Fatalf("F1(0,0) = %v", got)
	}
	if got := F1(1, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("F1(1,1) = %v", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("F1(.5,1) = %v", got)
	}
}

func TestFilterByAgreement(t *testing.T) {
	cases := []Case{
		mkCase(true, 11, nil), mkCase(true, 15, nil), mkCase(true, 20, nil),
	}
	if got := len(FilterByAgreement(cases, 15)); got != 2 {
		t.Fatalf("filtered = %d", got)
	}
	if got := len(FilterByAgreement(cases, 21)); got != 0 {
		t.Fatalf("filtered = %d", got)
	}
}

func TestSweepAgreement(t *testing.T) {
	preds := func(o core.Opinion) map[string]core.Opinion {
		return map[string]core.Opinion{"m": o}
	}
	cases := []Case{
		mkCase(true, 12, preds(core.OpinionNegative)),  // wrong, low agreement
		mkCase(true, 19, preds(core.OpinionPositive)),  // correct, high agreement
		mkCase(false, 20, preds(core.OpinionNegative)), // correct, high agreement
	}
	sweep := SweepAgreement(cases, []string{"m"}, []int{11, 18})
	if len(sweep) != 2 {
		t.Fatalf("sweep points = %d", len(sweep))
	}
	if sweep[0].Cases != 3 || sweep[1].Cases != 2 {
		t.Fatalf("case counts: %d, %d", sweep[0].Cases, sweep[1].Cases)
	}
	// Precision rises with the threshold (the Figure-12 shape).
	if sweep[1].ByMethod["m"].Precision <= sweep[0].ByMethod["m"].Precision {
		t.Fatalf("precision should rise: %v -> %v",
			sweep[0].ByMethod["m"].Precision, sweep[1].ByMethod["m"].Precision)
	}
}

func TestPolarityAttributeCorrelation(t *testing.T) {
	// Perfect alignment: positive on large attributes.
	ops := []core.Opinion{
		core.OpinionNegative, core.OpinionNegative,
		core.OpinionPositive, core.OpinionPositive,
	}
	attrs := []float64{10, 20, 1000, 2000}
	if got := PolarityAttributeCorrelation(ops, attrs); got < 0.8 {
		t.Fatalf("correlation = %v, want high", got)
	}
	// Anti-alignment.
	rev := []float64{2000, 1000, 20, 10}
	if got := PolarityAttributeCorrelation(ops, rev); got > -0.8 {
		t.Fatalf("correlation = %v, want strongly negative", got)
	}
}

func TestPolarityAttributeCorrelationLengthMismatch(t *testing.T) {
	if got := PolarityAttributeCorrelation([]core.Opinion{core.OpinionPositive}, nil); got != 0 {
		t.Fatalf("mismatch correlation = %v", got)
	}
}

func TestDecisionRate(t *testing.T) {
	ops := []core.Opinion{core.OpinionPositive, core.OpinionUnsolved, core.OpinionNegative, core.OpinionUnsolved}
	if got := DecisionRate(ops); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("DecisionRate = %v", got)
	}
	if got := DecisionRate(nil); got != 0 {
		t.Fatalf("DecisionRate(nil) = %v", got)
	}
}

func TestScoreAllUnsolved(t *testing.T) {
	cases := []Case{
		mkCase(true, 20, map[string]core.Opinion{"m": core.OpinionUnsolved}),
		mkCase(false, 20, map[string]core.Opinion{"m": core.OpinionUnsolved}),
	}
	m := Score(cases, "m")
	if m.Coverage != 0 || m.Precision != 0 || m.F1 != 0 {
		t.Fatalf("all-unsolved metrics = %+v", m)
	}
}

func TestFilterByAgreementEmpty(t *testing.T) {
	if got := FilterByAgreement(nil, 15); len(got) != 0 {
		t.Fatalf("filtered nil = %v", got)
	}
}

func TestSweepAgreementEmptyCases(t *testing.T) {
	sweep := SweepAgreement(nil, []string{"m"}, []int{11, 20})
	if len(sweep) != 2 || sweep[0].Cases != 0 {
		t.Fatalf("sweep = %v", sweep)
	}
}

func TestPolarityAttributeCorrelationWithUnsolved(t *testing.T) {
	// Unsolved (0) between the poles still yields a usable correlation.
	ops := []core.Opinion{
		core.OpinionNegative, core.OpinionUnsolved, core.OpinionPositive,
	}
	attrs := []float64{1, 50, 100}
	if got := PolarityAttributeCorrelation(ops, attrs); got < 0.9 {
		t.Fatalf("correlation = %v", got)
	}
}
