package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// paperParams are the parameters of Example 3: pA = 0.9, np+S = 100,
// np−S = 5, giving λ++ = 90, λ−+ = 0.5, λ−− = 4.5, λ+− = 10.
var paperParams = Params{PA: 0.9, NpPlus: 100, NpMinus: 5}

func TestLambdasExample3(t *testing.T) {
	lpp, lnp, lpn, lnn := paperParams.Lambdas()
	if math.Abs(lpp-90) > 1e-12 {
		t.Errorf("λ++ = %v, want 90", lpp)
	}
	if math.Abs(lnp-0.5) > 1e-12 {
		t.Errorf("λ−+ = %v, want 0.5", lnp)
	}
	if math.Abs(lnn-4.5) > 1e-12 {
		t.Errorf("λ−− = %v, want 4.5", lnn)
	}
	if math.Abs(lpn-10) > 1e-12 {
		t.Errorf("λ+− = %v, want 10", lpn)
	}
}

func TestPosteriorExample1(t *testing.T) {
	// The tuple ⟨60, 3⟩ of Example 1 must be classified positive.
	m := Model{Params: paperParams}
	p := m.PosteriorPositive(Tuple{Pos: 60, Neg: 3})
	if p <= 0.5 {
		t.Fatalf("Pr(+|60,3) = %v, want > 0.5", p)
	}
	if Decide(p) != OpinionPositive {
		t.Fatalf("Decide = %v", Decide(p))
	}
}

func TestPosteriorZeroEvidence(t *testing.T) {
	// With λ++ = 90, an entity nobody ever mentions is almost surely not
	// positive — the paper's "lack of evidence is evidence" inference.
	m := Model{Params: paperParams}
	p := m.PosteriorPositive(Tuple{})
	if p >= 0.01 {
		t.Fatalf("Pr(+|0,0) = %v, want ≈ 0", p)
	}
	if Decide(p) != OpinionNegative {
		t.Fatalf("zero-evidence decision = %v", Decide(p))
	}
}

func TestPosteriorManyNegatives(t *testing.T) {
	m := Model{Params: paperParams}
	p := m.PosteriorPositive(Tuple{Pos: 2, Neg: 8})
	if p >= 0.5 {
		t.Fatalf("Pr(+|2,8) = %v, want < 0.5", p)
	}
}

func TestPosteriorPolarityBias(t *testing.T) {
	// p+S ≫ p−S: a handful of positive statements should NOT trump the
	// bias the way majority vote would. ⟨6, 2⟩ with λ++ = 90 means a
	// positive entity would get ~90 positives; seeing only 6 is strong
	// evidence AGAINST positivity despite the 3:1 majority.
	m := Model{Params: paperParams}
	p := m.PosteriorPositive(Tuple{Pos: 6, Neg: 2})
	if p >= 0.5 {
		t.Fatalf("Pr(+|6,2) = %v — model should overrule the raw majority", p)
	}
}

func TestPosteriorInUnitIntervalProperty(t *testing.T) {
	m := Model{Params: paperParams}
	f := func(pos, neg uint8) bool {
		p := m.PosteriorPositive(Tuple{Pos: int(pos), Neg: int(neg)})
		return p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPosteriorMonotoneInPositives(t *testing.T) {
	// More positive statements, same negatives → posterior non-decreasing.
	m := Model{Params: paperParams}
	prev := 0.0
	for pos := 0; pos <= 120; pos += 5 {
		p := m.PosteriorPositive(Tuple{Pos: pos, Neg: 2})
		if p < prev-1e-9 {
			t.Fatalf("posterior decreased at pos=%d: %v -> %v", pos, prev, p)
		}
		prev = p
	}
	if prev < 0.99 {
		t.Fatalf("posterior at 120 positives = %v, want ≈ 1", prev)
	}
}

func TestPosteriorExactMatchesPoissonForLargeN(t *testing.T) {
	m := Model{Params: paperParams}
	n := 1_000_000
	for _, c := range []Tuple{{0, 0}, {60, 3}, {10, 10}, {90, 1}} {
		approx := m.PosteriorPositive(c)
		exact := m.PosteriorPositiveExact(c, n)
		if math.Abs(approx-exact) > 1e-3 {
			t.Fatalf("tuple %+v: poisson %v vs exact %v", c, approx, exact)
		}
	}
}

func TestDecide(t *testing.T) {
	if Decide(0.7) != OpinionPositive || Decide(0.3) != OpinionNegative {
		t.Fatal("Decide thresholds wrong")
	}
	if Decide(0.5) != OpinionUnsolved {
		t.Fatal("Decide(0.5) should be unsolved")
	}
}

func TestOpinionString(t *testing.T) {
	if OpinionPositive.String() != "+" || OpinionNegative.String() != "-" ||
		OpinionUnsolved.String() != "N" {
		t.Fatal("Opinion.String mismatch")
	}
}

func TestParamsValid(t *testing.T) {
	cases := []struct {
		p    Params
		want bool
	}{
		{Params{PA: 0.9, NpPlus: 10, NpMinus: 1}, true},
		{Params{PA: 0.5, NpPlus: 10, NpMinus: 1}, false}, // pA must exceed 1/2
		{Params{PA: 1.01, NpPlus: 10, NpMinus: 1}, false},
		{Params{PA: 0.9, NpPlus: -1, NpMinus: 1}, false},
		{Params{PA: 0.9, NpPlus: math.NaN(), NpMinus: 1}, false},
		{Params{PA: 0.9, NpPlus: math.Inf(1), NpMinus: 1}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestClassify(t *testing.T) {
	m := Model{Params: paperParams}
	res := m.Classify([]Tuple{{90, 0}, {0, 5}, {0, 0}})
	if res[0].Opinion != OpinionPositive {
		t.Errorf("⟨90,0⟩ -> %v", res[0].Opinion)
	}
	if res[1].Opinion != OpinionNegative {
		t.Errorf("⟨0,5⟩ -> %v", res[1].Opinion)
	}
	if res[2].Opinion != OpinionNegative {
		t.Errorf("⟨0,0⟩ -> %v", res[2].Opinion)
	}
}

func TestLogLikelihoodFiniteAndOrdered(t *testing.T) {
	tuples := []Tuple{{80, 1}, {95, 0}, {2, 4}, {0, 6}, {0, 0}}
	good := Model{Params: paperParams}
	bad := Model{Params: Params{PA: 0.55, NpPlus: 1, NpMinus: 50}}
	llGood, llBad := good.LogLikelihood(tuples), bad.LogLikelihood(tuples)
	if math.IsNaN(llGood) || math.IsInf(llGood, 0) {
		t.Fatalf("llGood = %v", llGood)
	}
	if llGood <= llBad {
		t.Fatalf("true-ish params should fit better: %v vs %v", llGood, llBad)
	}
}

func TestGenerateTuplesMatchesRates(t *testing.T) {
	rng := stats.NewRNG(7)
	opinions := make([]bool, 4000)
	for i := range opinions {
		opinions[i] = i%2 == 0
	}
	tuples := GenerateTuples(paperParams, opinions, rng)
	var posSumP, negSumP float64 // over positive entities
	for i, c := range tuples {
		if opinions[i] {
			posSumP += float64(c.Pos)
			negSumP += float64(c.Neg)
		}
	}
	nPos := 2000.0
	if math.Abs(posSumP/nPos-90) > 2 {
		t.Fatalf("mean C+ for positive entities = %v, want ≈ 90", posSumP/nPos)
	}
	if math.Abs(negSumP/nPos-0.5) > 0.2 {
		t.Fatalf("mean C− for positive entities = %v, want ≈ 0.5", negSumP/nPos)
	}
}
