package core

import (
	"math"

	"repro/internal/stats"
)

// EMConfig controls the expectation-maximization fit (Algorithm 2).
type EMConfig struct {
	// MaxIterations bounds the EM loop; the fit stops earlier when the
	// log-likelihood improvement drops below Tolerance.
	MaxIterations int
	// Tolerance is the minimum log-likelihood gain to keep iterating.
	Tolerance float64
	// PAGrid is the fixed set of pA values tried in the M-step (the paper
	// speeds up maximisation the same way). Values must lie in (0.5, 1].
	PAGrid []float64
	// Init seeds the first E-step. Zero value → heuristic init from data.
	Init Params
	// Observer, when non-nil, receives the model state after every
	// iteration (0-based index, parameters after the M-step, observed-data
	// log-likelihood). It is strictly write-only convergence telemetry:
	// the fit never consults it, so a nil and a non-nil observer produce
	// bit-identical models.
	Observer func(iter int, p Params, logLikelihood float64)
}

// DefaultEMConfig returns the configuration used throughout the
// experiments: 50 iterations max, 1e-6 tolerance, a 16-point pA grid.
func DefaultEMConfig() EMConfig {
	return EMConfig{
		MaxIterations: 50,
		Tolerance:     1e-6,
		PAGrid:        DefaultPAGrid(),
	}
}

// DefaultPAGrid returns the standard pA grid: 0.55 .. 0.99.
func DefaultPAGrid() []float64 {
	return []float64{0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.84, 0.88,
		0.91, 0.93, 0.95, 0.96, 0.97, 0.98, 0.99, 0.995}
}

// Trace records the EM fit for diagnostics and the §7.1 timing analysis.
type Trace struct {
	Iterations     int
	LogLikelihoods []float64 // observed-data log-likelihood after each iteration
	Converged      bool
}

// FitEM learns the model parameters for one (type, property) combination
// from its evidence tuples (Algorithm 2). Each iteration is O(m) in the
// number of entities and independent of the number of statements, because
// both the E-step aggregates and the closed-form M-step work on the
// counters only.
func FitEM(tuples []Tuple, cfg EMConfig) (Model, Trace) {
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 50
	}
	if len(cfg.PAGrid) == 0 {
		cfg.PAGrid = DefaultPAGrid()
	}
	params := cfg.Init
	if !params.Valid() || (params.NpPlus == 0 && params.NpMinus == 0) {
		params = heuristicInit(tuples)
	}

	var trace Trace
	model := Model{Params: params}
	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIterations; iter++ {
		// E-step: responsibilities r+_i = Pr(Di=+ | E_i, θ).
		g := aggregates(tuples, model)

		// M-step: grid over pA, closed-form np+S / np−S for each.
		best, ok := maximize(g, cfg.PAGrid)
		if ok {
			model = Model{Params: best}
		}

		ll := model.LogLikelihood(tuples)
		trace.LogLikelihoods = append(trace.LogLikelihoods, ll)
		trace.Iterations = iter + 1
		if cfg.Observer != nil {
			cfg.Observer(iter, model.Params, ll)
		}
		if ll-prevLL < cfg.Tolerance && iter > 0 {
			trace.Converged = true
			break
		}
		prevLL = ll
	}
	return model, trace
}

// heuristicInit seeds EM from the data: assume entities with more positive
// than negative statements are positive, and moment-match the rates.
func heuristicInit(tuples []Tuple) Params {
	var posSum, negSum float64
	nPos := 0
	for _, c := range tuples {
		posSum += float64(c.Pos)
		negSum += float64(c.Neg)
		if c.Pos > c.Neg {
			nPos++
		}
	}
	m := float64(len(tuples))
	if m == 0 {
		return Params{PA: 0.8, NpPlus: 1, NpMinus: 1}
	}
	fracPos := float64(nPos) / m
	if fracPos < 0.05 {
		fracPos = 0.05
	}
	npPlus := posSum / (m * fracPos) // statements concentrate on positives
	if npPlus < 0.1 {
		npPlus = 0.1
	}
	npMinus := negSum / m
	if npMinus < 0.01 {
		npMinus = 0.01
	}
	return Params{PA: 0.8, NpPlus: npPlus, NpMinus: npMinus}
}

// emAggregates are the sufficient statistics of Section 6:
// g^{σ2}_{σ1} (expected statement counts by polarity and dominant opinion)
// and g_{σ1} (expected entity counts by dominant opinion).
type emAggregates struct {
	gpp, gnp float64 // g++ (pos stmts, pos entities), g−+ (neg stmts, pos entities)
	gpn, gnn float64 // g+− (pos stmts, neg entities), g−− (neg stmts, neg entities)
	gp, gn   float64 // g+ (expected #positive entities), g− (negative)
}

// aggregates runs the E-step and reduces the responsibilities into the
// sufficient statistics — a single O(m) pass with the model's log-rates
// hoisted out of the loop.
func aggregates(tuples []Tuple, m Model) emAggregates {
	rates := newPoissonRates(m.Params)
	var g emAggregates
	for _, c := range tuples {
		r := rates.posterior(c)
		g.gpp += float64(c.Pos) * r
		g.gnp += float64(c.Neg) * r
		g.gpn += float64(c.Pos) * (1 - r)
		g.gnn += float64(c.Neg) * (1 - r)
		g.gp += r
		g.gn += 1 - r
	}
	return g
}

// maximize evaluates the closed-form optimum of Q′ for each pA on the grid
// (Section 6):
//
//	np+S = (g++ + g+−) / (g− + pA·g+ − pA·g−)
//	np−S = (g−+ + g−−) / (g+ + pA·g− − pA·g+)
//
// and returns the grid point with the highest Q′.
func maximize(g emAggregates, paGrid []float64) (Params, bool) {
	bestQ := math.Inf(-1)
	var best Params
	found := false
	for _, pa := range paGrid {
		denomPlus := g.gn + pa*g.gp - pa*g.gn
		denomMinus := g.gp + pa*g.gn - pa*g.gp
		if denomPlus <= 0 || denomMinus <= 0 {
			continue
		}
		p := Params{
			PA:      pa,
			NpPlus:  (g.gpp + g.gpn) / denomPlus,
			NpMinus: (g.gnp + g.gnn) / denomMinus,
		}
		if !p.Valid() {
			continue
		}
		q := qPrime(g, p)
		if q > bestQ {
			bestQ = q
			best = p
			found = true
		}
	}
	return best, found
}

// qPrime evaluates Q′(θ) of Section 6 from the sufficient statistics:
//
//	Q′ = g++·log λ++ − g+·λ++ + g−+·log λ−+ − g+·λ−+
//	   + g+−·log λ+− − g−·λ+− + g−−·log λ−− − g−·λ−−
func qPrime(g emAggregates, p Params) float64 {
	lpp, lnp, lpn, lnn := p.Lambdas()
	q := 0.0
	q += xlog(g.gpp, lpp) - g.gp*lpp
	q += xlog(g.gnp, lnp) - g.gp*lnp
	q += xlog(g.gpn, lpn) - g.gn*lpn
	q += xlog(g.gnn, lnn) - g.gn*lnn
	return q
}

// xlog returns x·log(y) with the conventions x·log(0) = −Inf for x > 0 and
// 0·log(0) = 0.
func xlog(x, y float64) float64 {
	if x == 0 {
		return 0
	}
	if y <= 0 {
		return math.Inf(-1)
	}
	return x * math.Log(y)
}

// FitAndClassify is the per-group step of Algorithm 1: fit the model on
// the group's tuples, then classify every entity (including zero-evidence
// ones).
func FitAndClassify(tuples []Tuple, cfg EMConfig) (Model, []Result, Trace) {
	model, trace := FitEM(tuples, cfg)
	return model, model.Classify(tuples), trace
}

// FitAndClassifyInto is FitAndClassify with a caller-provided result
// buffer, for re-fit loops that process many groups (the EM worker pool,
// the incremental miner): results are appended to dst, which is usually
// resliced to dst[:0] between groups. The fit and every classification
// are bit-identical to FitAndClassify.
func FitAndClassifyInto(dst []Result, tuples []Tuple, cfg EMConfig) (Model, []Result, Trace) {
	model, trace := FitEM(tuples, cfg)
	return model, model.ClassifyInto(dst, tuples), trace
}

// GenerateTuples draws m evidence tuples from the model itself given the
// latent opinions — the exact generative process of Figure 8. Used by
// tests (parameter recovery) and the model-faithful corpus mode.
func GenerateTuples(params Params, opinions []bool, rng *stats.RNG) []Tuple {
	lpp, lnp, lpn, lnn := params.Lambdas()
	out := make([]Tuple, len(opinions))
	for i, pos := range opinions {
		if pos {
			out[i] = Tuple{Pos: rng.Poisson(lpp), Neg: rng.Poisson(lnp)}
		} else {
			out[i] = Tuple{Pos: rng.Poisson(lpn), Neg: rng.Poisson(lnn)}
		}
	}
	return out
}
