// Package core implements the paper's primary contribution: the
// probabilistic model of how authors generate statements on the Web
// (Section 5) and the unsupervised expectation-maximization trainer with
// closed-form E and M steps (Section 6).
//
// The model, per (type, property) combination: each entity i has a hidden
// dominant opinion Di ∈ {+,−}. An author agrees with Di with probability
// pA; an author holding a positive opinion writes a positive statement
// with probability p+S, one holding a negative opinion writes a negative
// statement with probability p−S. Over n authors the counters (C+, C−)
// are approximately products of Poissons with rates
//
//	λ++ = n·pA·p+S        λ−+ = n·(1−pA)·p−S      (Di = +)
//	λ+− = n·(1−pA)·p+S    λ−− = n·pA·p−S          (Di = −)
//
// Because the three parameters only enter through the products n·p±S, the
// implementation works with NpPlus = n·p+S and NpMinus = n·p−S directly
// (as the paper does, "to minimize rounding errors").
package core

import (
	"math"

	"repro/internal/stats"
)

// Params are the model parameters for one (type, property) combination.
type Params struct {
	PA      float64 // probability an author agrees with the dominant opinion
	NpPlus  float64 // n·p+S: expected positive statements per positive-opinion population
	NpMinus float64 // n·p−S: expected negative statements per negative-opinion population
}

// Lambdas returns the four Poisson rates (λ++, λ−+, λ+−, λ−−): the
// subscript is the dominant opinion, the superscript the statement
// polarity.
func (p Params) Lambdas() (lpp, lnp, lpn, lnn float64) {
	lpp = p.PA * p.NpPlus
	lnp = (1 - p.PA) * p.NpMinus
	lpn = (1 - p.PA) * p.NpPlus
	lnn = p.PA * p.NpMinus
	return
}

// Valid reports whether the parameters are usable: pA in (0.5, 1] so that
// the positive label is identified, non-negative rates.
func (p Params) Valid() bool {
	return p.PA > 0.5 && p.PA <= 1 &&
		p.NpPlus >= 0 && p.NpMinus >= 0 &&
		!math.IsNaN(p.NpPlus) && !math.IsNaN(p.NpMinus) &&
		!math.IsInf(p.NpPlus, 0) && !math.IsInf(p.NpMinus, 0)
}

// Tuple is the observed evidence ⟨C+, C−⟩ for one entity.
type Tuple struct {
	Pos int
	Neg int
}

// Model is a fitted user-behaviour model for one (type, property)
// combination. The prior over Di is uniform (0.5/0.5), as in the paper.
type Model struct {
	Params Params
}

// poissonRates caches the four Poisson rates of a model together with
// their logarithms, so per-tuple likelihood evaluations cost a multiply
// and a table lookup instead of a math.Log and an Lgamma. logPoisson
// performs the exact operations of stats.LogPoissonPMF in the same order,
// so cached evaluation is bit-identical to the uncached API.
type poissonRates struct {
	lpp, lnp, lpn, lnn         float64
	logpp, lognp, logpn, lognn float64
}

func newPoissonRates(p Params) poissonRates {
	lpp, lnp, lpn, lnn := p.Lambdas()
	return poissonRates{
		lpp: lpp, lnp: lnp, lpn: lpn, lnn: lnn,
		logpp: safeLog(lpp), lognp: safeLog(lnp),
		logpn: safeLog(lpn), lognn: safeLog(lnn),
	}
}

func safeLog(x float64) float64 {
	if x <= 0 {
		return math.Inf(-1)
	}
	return math.Log(x)
}

func logPoisson(k int, lambda, logLambda float64) float64 {
	if k < 0 {
		return math.Inf(-1)
	}
	if lambda <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	return float64(k)*logLambda - lambda - stats.LogFactorial(k)
}

// logBranches returns the log-likelihoods of the tuple under the
// positive-opinion and negative-opinion branches.
func (r poissonRates) logBranches(c Tuple) (logPos, logNeg float64) {
	logPos = logPoisson(c.Pos, r.lpp, r.logpp) + logPoisson(c.Neg, r.lnp, r.lognp)
	logNeg = logPoisson(c.Pos, r.lpn, r.logpn) + logPoisson(c.Neg, r.lnn, r.lognn)
	return
}

func (r poissonRates) posterior(c Tuple) float64 {
	logPos, logNeg := r.logBranches(c)
	return posteriorFromLogs(logPos, logNeg)
}

// PosteriorPositive returns Pr(Di = + | C+ = c.Pos, C− = c.Neg) under the
// Poisson product approximation. It is defined for every tuple, including
// ⟨0, 0⟩ — the zero-evidence case the model can still classify.
func (m Model) PosteriorPositive(c Tuple) float64 {
	return newPoissonRates(m.Params).posterior(c)
}

// PosteriorPositiveExact computes the posterior with the exact trinomial
// likelihood instead of the Poisson approximation, given the author count
// n. Used by the approximation-quality ablation; O(1) but requires n.
func (m Model) PosteriorPositiveExact(c Tuple, n int) float64 {
	pp := m.Params.PA * m.Params.NpPlus / float64(n)
	np := (1 - m.Params.PA) * m.Params.NpMinus / float64(n)
	pn := (1 - m.Params.PA) * m.Params.NpPlus / float64(n)
	nn := m.Params.PA * m.Params.NpMinus / float64(n)
	logPos := stats.LogMultinomialTrinomialPMF(c.Pos, c.Neg, n, pp, np)
	logNeg := stats.LogMultinomialTrinomialPMF(c.Pos, c.Neg, n, pn, nn)
	return posteriorFromLogs(logPos, logNeg)
}

func posteriorFromLogs(logPos, logNeg float64) float64 {
	if math.IsInf(logPos, -1) && math.IsInf(logNeg, -1) {
		return 0.5 // both branches impossible: stay agnostic
	}
	z := stats.LogSumExp(logPos, logNeg)
	return math.Exp(logPos - z)
}

// LogLikelihood returns the total observed-data log-likelihood
// Σ_i log(0.5·Pr(E_i|D=+) + 0.5·Pr(E_i|D=−)) of the tuples under the model.
func (m Model) LogLikelihood(tuples []Tuple) float64 {
	r := newPoissonRates(m.Params)
	ll := 0.0
	log05 := math.Log(0.5)
	for _, c := range tuples {
		logPos := log05 + logPoisson(c.Pos, r.lpp, r.logpp) + logPoisson(c.Neg, r.lnp, r.lognp)
		logNeg := log05 + logPoisson(c.Pos, r.lpn, r.logpn) + logPoisson(c.Neg, r.lnn, r.lognn)
		ll += stats.LogSumExp(logPos, logNeg)
	}
	return ll
}

// Opinion is the polarity decision for one entity.
type Opinion int8

// Decision outcomes. Unsolved corresponds to a posterior of exactly 1/2
// (Algorithm 1 adds no tuple in that case).
const (
	OpinionNegative Opinion = -1
	OpinionUnsolved Opinion = 0
	OpinionPositive Opinion = +1
)

func (o Opinion) String() string {
	switch o {
	case OpinionPositive:
		return "+"
	case OpinionNegative:
		return "-"
	}
	return "N"
}

// decisionEpsilon guards the probability-one-half comparison of
// Algorithm 1 against floating-point noise.
const decisionEpsilon = 1e-9

// Decide maps a posterior probability to an Opinion with the paper's 1/2
// threshold.
func Decide(prob float64) Opinion {
	switch {
	case prob > 0.5+decisionEpsilon:
		return OpinionPositive
	case prob < 0.5-decisionEpsilon:
		return OpinionNegative
	default:
		return OpinionUnsolved
	}
}

// Result is the classification of one entity.
type Result struct {
	Probability float64 // Pr(property applies | evidence)
	Opinion     Opinion
}

// Classify returns the posterior probability and decision for every tuple.
func (m Model) Classify(tuples []Tuple) []Result {
	return m.ClassifyInto(make([]Result, 0, len(tuples)), tuples)
}

// ClassifyInto appends the posterior probability and decision for every
// tuple to dst and returns the extended slice — the scratch-reuse variant
// of Classify for per-group re-fit loops.
func (m Model) ClassifyInto(dst []Result, tuples []Tuple) []Result {
	r := newPoissonRates(m.Params)
	for _, c := range tuples {
		p := r.posterior(c)
		dst = append(dst, Result{Probability: p, Opinion: Decide(p)})
	}
	return dst
}
