package core

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// synthTuples draws tuples from the generative model with a given positive
// fraction.
func synthTuples(t *testing.T, params Params, m int, posFrac float64, seed uint64) ([]Tuple, []bool) {
	t.Helper()
	rng := stats.NewRNG(seed)
	opinions := make([]bool, m)
	for i := range opinions {
		opinions[i] = rng.Bernoulli(posFrac)
	}
	return GenerateTuples(params, opinions, rng), opinions
}

func TestFitEMRecoversParameters(t *testing.T) {
	truth := Params{PA: 0.88, NpPlus: 60, NpMinus: 4}
	tuples, _ := synthTuples(t, truth, 2000, 0.4, 11)
	model, trace := FitEM(tuples, DefaultEMConfig())
	p := model.Params
	if math.Abs(p.PA-truth.PA) > 0.06 {
		t.Errorf("pA = %v, want ≈ %v", p.PA, truth.PA)
	}
	if math.Abs(p.NpPlus-truth.NpPlus)/truth.NpPlus > 0.15 {
		t.Errorf("np+S = %v, want ≈ %v", p.NpPlus, truth.NpPlus)
	}
	if math.Abs(p.NpMinus-truth.NpMinus)/truth.NpMinus > 0.3 {
		t.Errorf("np−S = %v, want ≈ %v", p.NpMinus, truth.NpMinus)
	}
	if trace.Iterations == 0 {
		t.Error("trace should record iterations")
	}
}

func TestFitEMRecoversOpinions(t *testing.T) {
	truth := Params{PA: 0.9, NpPlus: 50, NpMinus: 6}
	tuples, opinions := synthTuples(t, truth, 1500, 0.3, 13)
	model, _ := FitEM(tuples, DefaultEMConfig())
	correct, decided := 0, 0
	for i, c := range tuples {
		op := Decide(model.PosteriorPositive(c))
		if op == OpinionUnsolved {
			continue
		}
		decided++
		if (op == OpinionPositive) == opinions[i] {
			correct++
		}
	}
	if decided < len(tuples)*95/100 {
		t.Fatalf("only %d/%d decided", decided, len(tuples))
	}
	acc := float64(correct) / float64(decided)
	if acc < 0.95 {
		t.Fatalf("opinion recovery accuracy = %v, want ≥ 0.95", acc)
	}
}

func TestFitEMLogLikelihoodNonDecreasing(t *testing.T) {
	truth := Params{PA: 0.85, NpPlus: 30, NpMinus: 3}
	tuples, _ := synthTuples(t, truth, 800, 0.5, 17)
	_, trace := FitEM(tuples, DefaultEMConfig())
	for i := 1; i < len(trace.LogLikelihoods); i++ {
		if trace.LogLikelihoods[i] < trace.LogLikelihoods[i-1]-1e-6 {
			t.Fatalf("log-likelihood decreased at iter %d: %v -> %v",
				i, trace.LogLikelihoods[i-1], trace.LogLikelihoods[i])
		}
	}
}

func TestFitEMConverges(t *testing.T) {
	truth := Params{PA: 0.9, NpPlus: 40, NpMinus: 2}
	tuples, _ := synthTuples(t, truth, 500, 0.5, 19)
	_, trace := FitEM(tuples, DefaultEMConfig())
	if !trace.Converged {
		t.Fatalf("EM did not converge in %d iterations", trace.Iterations)
	}
}

func TestFitEMPolarityBiasScenario(t *testing.T) {
	// The Section-2 big-cities shape: few entities positive, positive
	// statements an order of magnitude more common than negative ones,
	// and many zero-evidence entities. MV fails here; the model must not.
	truth := Params{PA: 0.92, NpPlus: 80, NpMinus: 3}
	tuples, opinions := synthTuples(t, truth, 461, 0.12, 23)
	model, _ := FitEM(tuples, DefaultEMConfig())

	// Zero-evidence entities decided negative.
	if got := Decide(model.PosteriorPositive(Tuple{})); got != OpinionNegative {
		t.Fatalf("zero evidence -> %v, want negative", got)
	}
	// High accuracy on the latent truth.
	correct := 0
	for i, c := range tuples {
		if (Decide(model.PosteriorPositive(c)) == OpinionPositive) == opinions[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(tuples)); acc < 0.93 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestFitEMEmptyInput(t *testing.T) {
	model, trace := FitEM(nil, DefaultEMConfig())
	if !model.Params.Valid() && trace.Iterations == 0 {
		t.Fatal("FitEM on empty input should still return something sane")
	}
	p := model.PosteriorPositive(Tuple{})
	if math.IsNaN(p) {
		t.Fatal("posterior NaN on empty-fit model")
	}
}

func TestFitEMAllZeroTuples(t *testing.T) {
	tuples := make([]Tuple, 100)
	model, _ := FitEM(tuples, DefaultEMConfig())
	p := model.PosteriorPositive(Tuple{})
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("posterior = %v", p)
	}
}

func TestFitEMSingleEntity(t *testing.T) {
	model, _ := FitEM([]Tuple{{5, 1}}, DefaultEMConfig())
	p := model.PosteriorPositive(Tuple{5, 1})
	if math.IsNaN(p) {
		t.Fatal("NaN posterior for single-entity fit")
	}
}

func TestFitEMRespectsInit(t *testing.T) {
	truth := Params{PA: 0.9, NpPlus: 45, NpMinus: 5}
	tuples, _ := synthTuples(t, truth, 1000, 0.4, 29)
	cfg := DefaultEMConfig()
	cfg.Init = Params{PA: 0.7, NpPlus: 10, NpMinus: 10}
	model, _ := FitEM(tuples, cfg)
	// Even from a poor init, EM should walk to the right neighbourhood.
	if math.Abs(model.Params.NpPlus-truth.NpPlus)/truth.NpPlus > 0.2 {
		t.Fatalf("np+S = %v from custom init", model.Params.NpPlus)
	}
}

func TestFitEMIterationCapRespected(t *testing.T) {
	truth := Params{PA: 0.85, NpPlus: 20, NpMinus: 2}
	tuples, _ := synthTuples(t, truth, 300, 0.5, 31)
	cfg := DefaultEMConfig()
	cfg.MaxIterations = 3
	cfg.Tolerance = 0 // force full loop
	_, trace := FitEM(tuples, cfg)
	if trace.Iterations > 3 {
		t.Fatalf("iterations = %d, cap was 3", trace.Iterations)
	}
}

func TestMStepClosedFormMatchesGridOptimum(t *testing.T) {
	// For fixed pA the closed-form np±S must beat nearby perturbations.
	truth := Params{PA: 0.88, NpPlus: 35, NpMinus: 4}
	tuples, _ := synthTuples(t, truth, 600, 0.5, 37)
	model := Model{Params: truth}
	g := aggregates(tuples, model)
	best, ok := maximize(g, []float64{0.88})
	if !ok {
		t.Fatal("maximize failed")
	}
	qBest := qPrime(g, best)
	for _, scale := range []float64{0.9, 0.95, 1.05, 1.1} {
		alt := best
		alt.NpPlus *= scale
		if q := qPrime(g, alt); q > qBest+1e-9 {
			t.Fatalf("perturbed np+S (×%v) beats closed form: %v > %v", scale, q, qBest)
		}
		alt = best
		alt.NpMinus *= scale
		if q := qPrime(g, alt); q > qBest+1e-9 {
			t.Fatalf("perturbed np−S (×%v) beats closed form: %v > %v", scale, q, qBest)
		}
	}
}

func TestFitAndClassifyCoversAllEntities(t *testing.T) {
	truth := Params{PA: 0.9, NpPlus: 25, NpMinus: 2}
	tuples, _ := synthTuples(t, truth, 400, 0.3, 41)
	_, results, _ := FitAndClassify(tuples, DefaultEMConfig())
	if len(results) != len(tuples) {
		t.Fatalf("results = %d, tuples = %d", len(results), len(tuples))
	}
	unsolved := 0
	for _, r := range results {
		if r.Opinion == OpinionUnsolved {
			unsolved++
		}
	}
	// The model should decide nearly everything (Table 3: coverage 0.966).
	if unsolved > len(results)/20 {
		t.Fatalf("unsolved = %d of %d", unsolved, len(results))
	}
}

func TestEMScalingLinearInEntities(t *testing.T) {
	// One iteration's work is O(m): doubling entities should roughly
	// double aggregate time, and crucially the per-iteration cost must not
	// depend on the count magnitudes (mentions).
	truth := Params{PA: 0.9, NpPlus: 30, NpMinus: 3}
	small, _ := synthTuples(t, truth, 100, 0.5, 43)
	big := make([]Tuple, len(small))
	for i, c := range small {
		big[i] = Tuple{Pos: c.Pos * 1000, Neg: c.Neg * 1000} // 1000× mentions
	}
	cfg := DefaultEMConfig()
	cfg.MaxIterations = 5
	cfg.Tolerance = 0
	_, trSmall := FitEM(small, cfg)
	_, trBig := FitEM(big, cfg)
	if trSmall.Iterations != trBig.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", trSmall.Iterations, trBig.Iterations)
	}
}
