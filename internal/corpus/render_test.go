package corpus

import (
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/kb"
	"repro/internal/stats"
)

// TestAntonymSentenceRoundTrip verifies that antonym renders extract as
// statements about the ANTONYM property (not the primary one) with the
// right polarity — the separate-property behaviour the paper keeps.
func TestAntonymSentenceRoundTrip(t *testing.T) {
	base := smallKB()
	f := newFrontend(base, extract.V4)
	rng := stats.NewRNG(17)
	r := newRenderer(base, rng)
	spec := &Spec{Type: "city", Property: "big", PA: 0.9, NpPlus: 10, NpMinus: 1}
	e := base.Get(base.Candidates("tinytown")[0])

	posHits, negHits := 0, 0
	for i := 0; i < 300; i++ {
		negated := i%2 == 1
		text := r.antonymSentence(spec, e, negated)
		if text == "" {
			t.Fatal("big has antonyms; render must not be empty")
		}
		stmts := f.extractAll(text)
		if len(stmts) != 1 {
			t.Fatalf("antonym sentence %q extracted %v", text, stmts)
		}
		st := stmts[0]
		if st.Property == "big" {
			t.Fatalf("antonym sentence %q leaked into the primary property", text)
		}
		if !negated && st.Polarity == extract.Positive {
			posHits++
		}
		if negated && st.Polarity == extract.Negative {
			negHits++
		}
	}
	if posHits != 150 || negHits != 150 {
		t.Fatalf("polarity accounting: pos %d/150, neg %d/150", posHits, negHits)
	}
}

func TestAntonymSentenceNoAntonym(t *testing.T) {
	base := smallKB()
	rng := stats.NewRNG(19)
	r := newRenderer(base, rng)
	spec := &Spec{Type: "city", Property: "multicultural"}
	if got := r.antonymSentence(spec, base.Get(0), false); got == "" {
		// "multicultural" has the antonym "homogeneous" in the lexicon, so
		// pick a property that really has none.
		t.Skip()
	}
	spec2 := &Spec{Type: "city", Property: "addictive"}
	if got := r.antonymSentence(spec2, base.Get(0), false); got != "" {
		t.Fatalf("property without antonym rendered %q", got)
	}
}

// TestEvidenceTemplatesAllParse fires every template branch and confirms
// each render survives the full front end under the version that should
// see it.
func TestEvidenceTemplatesAllParse(t *testing.T) {
	base := smallKB()
	f4 := newFrontend(base, extract.V4)
	f2 := newFrontend(base, extract.V2)
	rng := stats.NewRNG(23)
	r := newRenderer(base, rng)
	cfg := Config{}.withDefaults()
	spec := &Spec{Type: "animal", Property: "cute", PA: 0.9, NpPlus: 10, NpMinus: 1}
	e := base.Get(base.Candidates("kitten")[0])

	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		text := r.evidenceSentence(spec, e, i%2 == 0, cfg)
		seen[templateShape(text)] = true
		stmts := f4.extractAll(text)
		if len(stmts) == 0 {
			stmts = f2.extractAll(text) // broad-copula renders need V2
		}
		if len(stmts) == 0 {
			t.Fatalf("template render %q extracted nothing under V2 either", text)
		}
	}
	// The renderer has many distinct shapes; require a healthy variety.
	if len(seen) < 8 {
		t.Fatalf("only %d template shapes observed: %v", len(seen), seen)
	}
}

// templateShape fingerprints a render for variety accounting.
func templateShape(text string) string {
	switch {
	case strings.Contains(text, "don't think") && strings.Contains(text, "never"):
		return "double-negation"
	case strings.Contains(text, "don't think"):
		return "embedded-negation"
	case strings.Contains(text, "seem"):
		return "broad-copula"
	case strings.Contains(text, "Everyone agrees"):
		return "opinion-prefix"
	case strings.Contains(text, "I think"):
		return "i-think"
	case strings.Contains(text, " and "):
		return "conjunction"
	case strings.Contains(text, "definitely"):
		return "adverb"
	case strings.Contains(text, "never"):
		return "never"
	case strings.Contains(text, "n't"):
		return "contraction"
	case strings.Contains(text, " not "):
		return "not"
	case strings.Contains(text, " animal"):
		return "pred-nominal"
	default:
		return "plain"
	}
}

func TestNoiseSentenceEmptyType(t *testing.T) {
	base := kb.New() // no entities at all
	rng := stats.NewRNG(29)
	r := newRenderer(base, rng)
	specs := []Spec{{Type: "ghost", Property: "spooky"}}
	if got := r.noiseSentence(specs, Config{}.withDefaults()); got == "" {
		t.Fatal("noise sentence for empty type should fall back, not be empty")
	}
}

func TestRealizeSubjectForms(t *testing.T) {
	base := smallKB()
	rng := stats.NewRNG(31)
	r := newRenderer(base, rng)
	proper := base.Get(base.Candidates("bigville")[0])
	if s := r.realizeSubject(proper); s.np != "Bigville" || s.plural {
		t.Fatalf("proper subject = %+v", s)
	}
	common := base.Get(base.Candidates("kitten")[0])
	forms := map[string]bool{}
	for i := 0; i < 50; i++ {
		forms[r.realizeSubject(common).np] = true
	}
	if !forms["kittens"] || !forms["The kitten"] {
		t.Fatalf("common-noun forms = %v", forms)
	}
}

func TestSubjectAgreementHelpers(t *testing.T) {
	sg := subject{np: "The kitten"}
	pl := subject{np: "kittens", plural: true}
	if sg.be() != "is" || pl.be() != "are" {
		t.Fatal("be() wrong")
	}
	if sg.beNot() != "isn't" || pl.beNot() != "aren't" {
		t.Fatal("beNot() wrong")
	}
	if sg.seems() != "seems" || pl.seems() != "seem" {
		t.Fatal("seems() wrong")
	}
	if sg.doesNotSeem() != "doesn't seem" || pl.doesNotSeem() != "don't seem" {
		t.Fatal("doesNotSeem() wrong")
	}
}

func TestArticleChoice(t *testing.T) {
	if article("exciting") != "an" || article("big") != "a" {
		t.Fatal("article choice wrong")
	}
}

func TestAntonymFracGeneratesAntonymEvidence(t *testing.T) {
	base := smallKB()
	specs := smallSpecs()
	snap := NewGenerator(base, specs, Config{Seed: 77, AntonymFrac: 0.6, Scale: 2}).Generate()
	joined := ""
	for _, d := range snap.Documents {
		joined += d.Text + " "
	}
	// "big" has antonyms small/tiny; with AntonymFrac 0.6 some negative
	// city opinions must surface as antonym assertions.
	if !strings.Contains(joined, "small") && !strings.Contains(joined, "tiny") {
		t.Fatal("no antonym statements rendered despite AntonymFrac")
	}
}
